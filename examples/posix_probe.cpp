// The gray-box library against the REAL operating system.
//
// Same Fccd code as every other example — different SysApi binding. Creates
// a scratch file in /tmp, reads half of it (warming the host's page cache),
// then asks the FCCD which half is cached: once by timed probes (works on
// any UNIX), once via mincore(2) (works here because Linux has it).
//
// Timing on a busy machine is noisy; this example prints what it sees and
// lets the mincore column arbitrate. Run it a few times — the statistics
// (sorting, not thresholds) are what keep the probes usable despite noise.

#include <cstdio>
#include <filesystem>
#include <string>
#include <fcntl.h>
#include <unistd.h>

#include "src/gray/fccd/fccd.h"
#include "src/gray/posix_sys.h"

int main() {
  gray::PosixSys sys;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("gb_posix_demo_" + std::to_string(::getpid())))
          .string();
  if (sys.Mkdir(dir) < 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  const std::string path = dir + "/scratch";
  constexpr std::uint64_t kMb = 1024 * 1024;
  constexpr std::uint64_t kBytes = 64 * kMb;

  std::printf("creating %llu MB scratch file at %s...\n", static_cast<unsigned long long>(kBytes / kMb), path.c_str());
  {
    const int fd = sys.Creat(path);
    if (fd < 0 || sys.Pwrite(fd, kBytes, 0) < 0) {
      std::fprintf(stderr, "write failed (disk space?)\n");
      return 1;
    }
    (void)sys.Fsync(fd);
    (void)sys.Close(fd);
  }

  // Best effort to cool the file, then warm the FIRST half.
  // (posix_fadvise DONTNEED is advisory; on a busy machine the file may stay
  // warm — the mincore column will tell the truth either way.)
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
      ::close(fd);
    }
  }
  {
    const int fd = sys.Open(path);
    (void)sys.Pread(fd, {}, kBytes / 2, 0);
    (void)sys.Close(fd);
  }

  gray::FccdOptions options;
  options.access_unit = 8 * kMb;
  options.prediction_unit = 2 * kMb;
  gray::Fccd probing(&sys, options);
  const auto probe_plan = probing.PlanFile(path);

  gray::FccdOptions mc = options;
  mc.try_mincore = true;
  gray::Fccd with_mincore(&sys, mc);
  const auto mincore_plan = with_mincore.PlanFile(path);

  if (!probe_plan.has_value() || !mincore_plan.has_value()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }
  std::printf("\n%-28s | %-28s\n", "probe order (timed, portable)",
              "mincore order (Linux-only)");
  for (std::size_t i = 0; i < probe_plan->units.size(); ++i) {
    std::printf("  offset %3llu MB %10.1f us  |   offset %3llu MB (%llu pages absent)\n",
                static_cast<unsigned long long>(probe_plan->units[i].extent.offset / kMb),
                static_cast<double>(probe_plan->units[i].probe_time) / 1000.0 /
                    std::max(1, probe_plan->units[i].probes),
                static_cast<unsigned long long>(mincore_plan->units[i].extent.offset / kMb),
                static_cast<unsigned long long>(mincore_plan->units[i].probe_time));
  }
  std::printf("\nmincore used: %s | probes issued by the timed detector: %llu\n",
              with_mincore.last_plan_used_mincore() ? "yes" : "no",
              static_cast<unsigned long long>(probing.probes_issued()));

  (void)sys.Unlink(path);
  (void)sys.Rmdir(dir);
  return 0;
}
