// Quickstart: the gray-box library in ~60 lines.
//
// Boots a simulated Linux-2.2-like machine, then uses each of the three
// ICLs through the public gray-box API:
//   * FCCD  — find out which half of a file is in the OS file cache;
//   * FLDC  — order a directory of small files by on-disk layout;
//   * MAC   — allocate as much memory as fits without paging.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "src/gray/fccd/fccd.h"
#include "src/gray/fldc/fldc.h"
#include "src/gray/mac/mac.h"
#include "src/gray/sim_sys.h"
#include "src/os/os.h"
#include "src/workloads/filegen.h"

int main() {
  constexpr std::uint64_t kMb = 1024 * 1024;

  // A simulated machine: 896 MB RAM, five disks, Linux 2.2-like policies.
  graysim::Os os(graysim::PlatformProfile::Linux22());
  const graysim::Pid pid = os.default_pid();
  gray::SimSys sys(&os, pid);  // the gray-box view: syscalls + a timer

  // --- FCCD: what is in the file cache? ---
  graywork::MakeFile(os, pid, "/d0/data", 100 * kMb);
  os.FlushFileCache();
  {  // warm the first half only
    const int fd = os.Open(pid, "/d0/data");
    (void)os.Pread(pid, fd, {}, 50 * kMb, 0);
    (void)os.Close(pid, fd);
  }
  gray::Fccd fccd(&sys);
  const auto plan = fccd.PlanFile("/d0/data");
  std::printf("FCCD plan for /d0/data (fastest units first):\n");
  for (std::size_t i = 0; i < 3 && i < plan->units.size(); ++i) {
    const gray::UnitPlan& u = plan->units[i];
    std::printf("  offset %3llu MB  probe time %8.1f us\n", static_cast<unsigned long long>(u.extent.offset / kMb),
                static_cast<double>(u.probe_time) / 1000.0);
  }
  std::printf("  ... (%zu units total; warm half ranks first)\n\n", plan->units.size());

  // --- FLDC: what order are these files on disk? ---
  const std::vector<std::string> files =
      graywork::MakeFileSet(os, pid, "/d0/small", 10, 8192);
  gray::Fldc fldc(&sys);
  std::printf("FLDC i-number order for /d0/small:\n  ");
  for (const gray::StatOrderEntry& e : fldc.OrderByInode(files)) {
    std::printf("%s(i%llu) ", e.path.substr(10).c_str(),
                static_cast<unsigned long long>(e.inum));
  }
  std::printf("\n\n");

  // --- MAC: how much memory can I use without paging? ---
  gray::Mac mac(&sys);
  auto memory = mac.GbAlloc(/*min=*/64 * kMb, /*max=*/512 * kMb, /*multiple=*/4096);
  if (memory.has_value()) {
    std::printf("MAC granted %llu MB without paging (probed %llu pages in %.1f ms)\n",
                static_cast<unsigned long long>(memory->bytes() / kMb),
                static_cast<unsigned long long>(mac.metrics().pages_probed),
                static_cast<double>(mac.metrics().probe_time) / 1e6);
    memory->Release();  // gb_free
  }
  return 0;
}
