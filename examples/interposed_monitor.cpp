// Interposition vs probing, live (paper §4.1.1 / §6).
//
// Runs a client whose file accesses flow through an interposition agent
// feeding an LRU cache model, then compares three detectors on the same
// question — "which half of this file is cached?":
//
//   * PassiveFccd  — answers from the interposed model, zero probes;
//   * Fccd         — answers by timing probes against the real system;
//   * SledOracle   — answers from the kernel's ground truth (the interface
//                    Van Meter & Gao proposed; cheating, for reference).
//
// Then an "unobserved" process trashes the cache behind the interposer's
// back, and the same three detectors answer again. Watch who survives.

#include <cstdio>
#include <string>

#include "src/gray/fccd/fccd.h"
#include "src/gray/fccd/sled_oracle.h"
#include "src/gray/interpose/interposer.h"
#include "src/gray/sim_sys.h"
#include "src/os/os.h"
#include "src/workloads/filegen.h"

namespace {

constexpr std::uint64_t kMb = 1024 * 1024;

void Report(const char* who, const gray::FilePlan& plan, const graysim::Os& os) {
  // How many of the plan's first-half units are genuinely (mostly) cached?
  const std::size_t half = plan.units.size() / 2;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < half; ++i) {
    const std::uint64_t first_page = plan.units[i].extent.offset / 4096;
    const std::uint64_t pages = plan.units[i].extent.length / 4096;
    std::uint64_t resident = 0;
    for (std::uint64_t p = 0; p < pages; ++p) {
      resident += os.PageResidentPath("/d0/data", first_page + p) ? 1 : 0;
    }
    correct += resident * 2 >= pages ? 1 : 0;
  }
  std::printf("  %-12s first-half precision: %zu/%zu\n", who, correct, half);
}

}  // namespace

int main() {
  graysim::Os os(graysim::PlatformProfile::Linux22());
  const graysim::Pid pid = os.default_pid();
  gray::SimSys sys(&os, pid);
  gray::CacheModel model(os.UsableMemBytes(), os.page_size());
  gray::Interposer agent(&sys, &model);

  graywork::MakeFile(os, pid, "/d0/data", 200 * kMb);
  os.FlushFileCache();

  // The observed client reads the first half through the interposer.
  std::printf("observed client reads the first 100 MB through the agent...\n");
  {
    const int fd = agent.Open("/d0/data");
    (void)agent.Pread(fd, {}, 100 * kMb, 0);
    (void)agent.Close(fd);
  }

  gray::PassiveFccd passive(&sys, &model);
  gray::Fccd probing(&sys);
  gray::SledOracle oracle(&os);
  std::printf("\nwith every input observed, everyone agrees:\n");
  Report("passive", *passive.PlanFile("/d0/data"), os);
  Report("probing", *probing.PlanFile("/d0/data"), os);
  Report("oracle", *oracle.PlanFile("/d0/data"), os);

  // An unobserved process replaces the cache contents directly.
  std::printf("\nan UNOBSERVED process flushes and reads the second half...\n");
  os.FlushFileCache();
  {
    const int fd = os.Open(pid, "/d0/data");
    (void)os.Pread(pid, fd, {}, 100 * kMb, 100 * kMb);
    (void)os.Close(pid, fd);
  }

  std::printf("\nnow the simulation is stale; only observation survives:\n");
  Report("passive", *passive.PlanFile("/d0/data"), os);
  Report("probing", *probing.PlanFile("/d0/data"), os);
  Report("oracle", *oracle.PlanFile("/d0/data"), os);

  std::printf(
      "\n\"if a single process does not obey the rules, our knowledge of what\n"
      "has been accessed is incomplete and our simulation will be inaccurate\"\n"
      "(paper, §4.1.1) — which is why the FCCD probes.\n");
  return 0;
}
