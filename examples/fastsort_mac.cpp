// gb-fastsort under memory pressure: the paper's §4.3.3 scenario, runnable.
//
// Launches N competing external sorts on the simulated machine. Each either
// uses a fixed pass size (pass it with --pass-mb) or lets MAC's
// gb_alloc(min=100 MB, max=input, multiple=100) size every pass to what is
// actually available. Watch the static version fall off the paging cliff
// when N x pass exceeds memory, while the MAC version adapts.
//
// Usage: fastsort_mac [--procs=4] [--input-mb=477] [--pass-mb=0 (0 = MAC)]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/os/os.h"
#include "src/workloads/fastsort.h"
#include "src/workloads/filegen.h"

namespace {

int Flag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint64_t kMb = 1024 * 1024;
  const int procs = Flag(argc, argv, "procs", 4);
  const std::uint64_t input_mb = static_cast<std::uint64_t>(Flag(argc, argv, "input-mb", 477));
  const std::uint64_t pass_mb = static_cast<std::uint64_t>(Flag(argc, argv, "pass-mb", 0));

  graysim::Os os(graysim::PlatformProfile::Linux22());
  const graysim::Pid setup = os.default_pid();
  std::printf("machine: %llu MB usable, %d disks (last one pages)\n",
              static_cast<unsigned long long>(os.UsableMemBytes() / kMb), os.num_disks());
  for (int i = 0; i < procs; ++i) {
    const std::string input = "/d" + std::to_string(i % (os.num_disks() - 1)) + "/in" +
                              std::to_string(i);
    if (!graywork::MakeFile(os, setup, input, input_mb * kMb)) {
      std::fprintf(stderr, "failed to create %s\n", input.c_str());
      return 1;
    }
  }
  os.FlushFileCache();

  std::vector<graywork::FastsortReport> reports(static_cast<std::size_t>(procs));
  std::vector<std::function<void(graysim::Pid)>> bodies;
  for (int i = 0; i < procs; ++i) {
    bodies.push_back([&, i](graysim::Pid pid) {
      const int disk = i % (os.num_disks() - 1);
      graywork::Fastsort sort(&os, pid);
      graywork::FastsortOptions options;
      options.input = "/d" + std::to_string(disk) + "/in" + std::to_string(i);
      options.run_dir = "/d" + std::to_string(disk) + "/runs" + std::to_string(i);
      options.record_bytes = 100;
      if (pass_mb == 0) {
        options.use_mac = true;
        options.mac_min = 100 * kMb;
        options.mac_max = input_mb * kMb;
      } else {
        options.pass_bytes = pass_mb * kMb;
      }
      reports[static_cast<std::size_t>(i)] = sort.Run(options);
    });
  }
  os.RunProcesses(bodies);

  std::printf("\n%-6s %10s %8s %8s %8s %8s %8s %10s\n", "proc", "total(s)", "read",
              "sort", "write", "probe", "wait", "avg pass");
  for (int i = 0; i < procs; ++i) {
    const graywork::FastsortReport& r = reports[static_cast<std::size_t>(i)];
    std::printf("%-6d %10.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.0fMB\n", i,
                static_cast<double>(r.total) / 1e9, static_cast<double>(r.read) / 1e9,
                static_cast<double>(r.sort) / 1e9, static_cast<double>(r.write) / 1e9,
                static_cast<double>(r.probe_overhead) / 1e9,
                static_cast<double>(r.wait_overhead) / 1e9, r.avg_pass_mb);
  }
  std::printf("\nswap-ins: %llu (paging activity; 0 means the sorts fit memory)\n",
              static_cast<unsigned long long>(os.stats().swap_ins));
  std::printf("mode: %s\n", pass_mb == 0 ? "MAC-adaptive (gb-fastsort)"
                                         : "static pass size");
  return 0;
}
