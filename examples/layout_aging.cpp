// Layout detection, aging, and directory refresh — FLDC end to end (§4.2).
//
// Creates a directory of small files, shows the i-number-order read winning
// over random order, ages the directory (delete 5 / create 5 per epoch)
// until the win decays, then refreshes the directory and shows the win
// restored.
//
// Usage: layout_aging [--files=100] [--epochs=30]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/gray/fldc/fldc.h"
#include "src/gray/sim_sys.h"
#include "src/os/os.h"
#include "src/sim/rng.h"
#include "src/workloads/aging.h"
#include "src/workloads/filegen.h"

namespace {

int Flag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double ColdReadSeconds(graysim::Os& os, graysim::Pid pid,
                       const std::vector<std::string>& order) {
  os.FlushFileCache();
  const graysim::Nanos t0 = os.Now();
  for (const std::string& path : order) {
    graysim::InodeAttr attr;
    if (os.Stat(pid, path, &attr) < 0) {
      continue;
    }
    const int fd = os.Open(pid, path);
    (void)os.Pread(pid, fd, {}, attr.size, 0);
    (void)os.Close(pid, fd);
  }
  return static_cast<double>(os.Now() - t0) / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const int files = Flag(argc, argv, "files", 100);
  const int epochs = Flag(argc, argv, "epochs", 30);

  graysim::Os os(graysim::PlatformProfile::Linux22());
  const graysim::Pid pid = os.default_pid();
  (void)graywork::MakeFileSet(os, pid, "/d0/dir", files, 8192);
  gray::SimSys sys(&os, pid);
  gray::Fldc fldc(&sys);
  graywork::DirectoryAger ager(&os, pid, "/d0/dir", 8192, /*seed=*/2026);
  graysim::Rng rng(5);

  auto report = [&](const char* label) {
    const std::vector<std::string> current = ager.Files();
    std::vector<std::string> shuffled = current;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
    }
    std::vector<std::string> inum_order;
    for (const gray::StatOrderEntry& e : fldc.OrderByInode(current)) {
      inum_order.push_back(e.path);
    }
    const double random_s = ColdReadSeconds(os, pid, shuffled);
    const double inum_s = ColdReadSeconds(os, pid, inum_order);
    std::printf("%-18s random=%6.3fs   i-number=%6.3fs   win=%4.1fx\n", label, random_s,
                inum_s, random_s / inum_s);
  };

  report("fresh");
  for (int e = 1; e <= epochs; ++e) {
    ager.RunEpoch();
  }
  report("aged (30 epochs)");
  if (fldc.RefreshDirectory("/d0/dir") == 0) {
    report("after refresh");
  } else {
    std::printf("refresh failed!\n");
  }
  std::printf("\nThe refresh rewrote the directory smallest-files-first, restoring\n"
              "the i-number/layout correlation (timestamps preserved for make).\n");
  return 0;
}
