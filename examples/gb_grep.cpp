// gb-grep: the paper's flagship application study (§4.1.3), runnable.
//
// Creates a corpus of text files whose total size exceeds the file cache,
// then repeatedly greps it three ways:
//   1. unmodified grep      — command-line order; repeated runs hit the
//                             LRU worst case and stream everything from disk;
//   2. gb-grep              — the 10-lines-became-30 modification: reorder
//                             the file list with the FCCD first;
//   3. grep `gbp -mem *`    — the unmodified binary fed by the gbp tool.
//
// Usage: gb_grep [--files=N] [--file-mb=M] [--runs=R]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/os/os.h"
#include "src/workloads/filegen.h"
#include "src/workloads/grep.h"

namespace {

int Flag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint64_t kMb = 1024 * 1024;
  const int files = Flag(argc, argv, "files", 100);
  const int file_mb = Flag(argc, argv, "file-mb", 10);
  const int runs = Flag(argc, argv, "runs", 3);

  graysim::Os os(graysim::PlatformProfile::Linux22());
  const graysim::Pid pid = os.default_pid();
  std::printf("creating %d x %d MB files (cache is %llu MB)...\n", files, file_mb,
              static_cast<unsigned long long>(os.UsableMemBytes() / kMb));
  const std::vector<std::string> corpus = graywork::MakeFileSet(
      os, pid, "/d0/corpus", files, static_cast<std::uint64_t>(file_mb) * kMb);
  os.FlushFileCache();

  graywork::Grep grep(&os, pid);
  std::printf("\n%-24s", "run");
  for (int r = 0; r < runs; ++r) {
    std::printf("   #%d(s)", r + 1);
  }
  std::printf("\n");

  std::printf("%-24s", "grep (unmodified)");
  for (int r = 0; r < runs; ++r) {
    std::printf(" %7.2f", static_cast<double>(grep.Run(corpus).elapsed) / 1e9);
  }
  std::printf("   <- LRU worst case: no reuse across runs\n");

  std::printf("%-24s", "gb-grep (FCCD order)");
  for (int r = 0; r < runs; ++r) {
    std::printf(" %7.2f", static_cast<double>(grep.RunGrayBox(corpus).elapsed) / 1e9);
  }
  std::printf("   <- cached files first; improves as feedback stabilizes\n");

  std::printf("%-24s", "grep `gbp -mem *`");
  for (int r = 0; r < runs; ++r) {
    std::printf(" %7.2f",
                static_cast<double>(grep.RunWithGbp(corpus, gray::GbpMode::kMem).elapsed) /
                    1e9);
  }
  std::printf("   <- unmodified binary, same benefit minus fork/exec\n");
  return 0;
}
