// gbp — the gray-box probe tool (§4.1.2, §4.2.4) as a CLI over the
// simulated machine.
//
// Demonstrates every mode of the tool applications use to get gray-box
// benefits without modification:
//   gbp -mem <files...>        order by file-cache contents (FCCD)
//   gbp -file <files...>       order by on-disk layout (FLDC)
//   gbp -compose <files...>    in-cache first (clustered), then layout order
//   gbp -mem -out <file>       stream one file's bytes cache-first
//
// This example sets up a scenario where some files are cached and some are
// not, then prints what each mode produces.

#include <cstdio>
#include <string>
#include <vector>

#include "src/gray/gbp/gbp.h"
#include "src/gray/sim_sys.h"
#include "src/os/os.h"
#include "src/workloads/filegen.h"

int main() {
  constexpr std::uint64_t kMb = 1024 * 1024;
  graysim::Os os(graysim::PlatformProfile::Linux22());
  const graysim::Pid pid = os.default_pid();
  gray::SimSys sys(&os, pid);

  const std::vector<std::string> files =
      graywork::MakeFileSet(os, pid, "/d0/docs", 8, 10 * kMb);
  os.FlushFileCache();
  // Warm files 5 and 2 so the cache has something to detect.
  for (const int i : {5, 2}) {
    const int fd = os.Open(pid, files[static_cast<std::size_t>(i)]);
    (void)os.Pread(pid, fd, {}, 10 * kMb, 0);
    (void)os.Close(pid, fd);
  }

  const auto print_order = [](const char* mode, const std::vector<std::string>& order) {
    std::printf("%-12s:", mode);
    for (const std::string& p : order) {
      std::printf(" %s", p.substr(p.find_last_of('/') + 1).c_str());
    }
    std::printf("\n");
  };

  gray::GbpOptions options;
  options.mode = gray::GbpMode::kMem;
  print_order("gbp -mem", gray::GbpOrderFiles(&sys, options, files).order);
  options.mode = gray::GbpMode::kFile;
  print_order("gbp -file", gray::GbpOrderFiles(&sys, options, files).order);
  options.mode = gray::GbpMode::kCompose;
  print_order("gbp -compose", gray::GbpOrderFiles(&sys, options, files).order);

  // Intra-file reordering: warm the second half of a big file, then plan an
  // -out stream for it.
  graywork::MakeFile(os, pid, "/d0/big", 80 * kMb);
  os.FlushFileCache();
  {
    const int fd = os.Open(pid, "/d0/big");
    (void)os.Pread(pid, fd, {}, 40 * kMb, 40 * kMb);
    (void)os.Close(pid, fd);
  }
  gray::GbpOptions out_options;
  out_options.align = 100;  // record-aligned extents for a sort consumer
  const gray::GbpOutPlan plan = gray::GbpPlanOut(&sys, out_options, "/d0/big");
  std::printf("\ngbp -mem -out /d0/big streams extents in this order:\n");
  for (const gray::Extent& e : plan.extents) {
    std::printf("  offset %5.1f MB, length %4.1f MB\n",
                static_cast<double>(e.offset) / kMb,
                static_cast<double>(e.length) / kMb);
  }
  const std::uint64_t streamed = gray::GbpStreamOut(&sys, plan);
  std::printf("streamed %llu MB through the pipe (cached half first)\n",
              static_cast<unsigned long long>(streamed / kMb));
  return 0;
}
