# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/mem_system_test[1]_include.cmake")
include("/root/repo/build/tests/ffs_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/toolbox_test[1]_include.cmake")
include("/root/repo/build/tests/fccd_test[1]_include.cmake")
include("/root/repo/build/tests/fldc_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/compose_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/classic_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/page_cache_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/governor_test[1]_include.cmake")
include("/root/repo/build/tests/interpose_test[1]_include.cmake")
include("/root/repo/build/tests/platform_props_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/posix_sys_test[1]_include.cmake")
