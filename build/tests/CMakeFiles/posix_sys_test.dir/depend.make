# Empty dependencies file for posix_sys_test.
# This may be replaced when dependencies are built.
