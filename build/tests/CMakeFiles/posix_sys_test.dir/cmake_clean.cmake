file(REMOVE_RECURSE
  "CMakeFiles/posix_sys_test.dir/posix_sys_test.cc.o"
  "CMakeFiles/posix_sys_test.dir/posix_sys_test.cc.o.d"
  "posix_sys_test"
  "posix_sys_test.pdb"
  "posix_sys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_sys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
