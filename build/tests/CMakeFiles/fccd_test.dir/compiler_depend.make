# Empty compiler generated dependencies file for fccd_test.
# This may be replaced when dependencies are built.
