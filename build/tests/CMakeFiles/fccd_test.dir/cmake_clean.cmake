file(REMOVE_RECURSE
  "CMakeFiles/fccd_test.dir/fccd_test.cc.o"
  "CMakeFiles/fccd_test.dir/fccd_test.cc.o.d"
  "fccd_test"
  "fccd_test.pdb"
  "fccd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fccd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
