file(REMOVE_RECURSE
  "CMakeFiles/fldc_test.dir/fldc_test.cc.o"
  "CMakeFiles/fldc_test.dir/fldc_test.cc.o.d"
  "fldc_test"
  "fldc_test.pdb"
  "fldc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fldc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
