# Empty compiler generated dependencies file for fldc_test.
# This may be replaced when dependencies are built.
