file(REMOVE_RECURSE
  "CMakeFiles/platform_props_test.dir/platform_props_test.cc.o"
  "CMakeFiles/platform_props_test.dir/platform_props_test.cc.o.d"
  "platform_props_test"
  "platform_props_test.pdb"
  "platform_props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
