# Empty dependencies file for platform_props_test.
# This may be replaced when dependencies are built.
