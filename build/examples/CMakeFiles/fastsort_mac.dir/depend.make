# Empty dependencies file for fastsort_mac.
# This may be replaced when dependencies are built.
