# Empty compiler generated dependencies file for fastsort_mac.
# This may be replaced when dependencies are built.
