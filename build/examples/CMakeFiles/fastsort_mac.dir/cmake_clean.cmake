file(REMOVE_RECURSE
  "CMakeFiles/fastsort_mac.dir/fastsort_mac.cpp.o"
  "CMakeFiles/fastsort_mac.dir/fastsort_mac.cpp.o.d"
  "fastsort_mac"
  "fastsort_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastsort_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
