# Empty compiler generated dependencies file for gb_grep.
# This may be replaced when dependencies are built.
