file(REMOVE_RECURSE
  "CMakeFiles/gb_grep.dir/gb_grep.cpp.o"
  "CMakeFiles/gb_grep.dir/gb_grep.cpp.o.d"
  "gb_grep"
  "gb_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
