file(REMOVE_RECURSE
  "CMakeFiles/posix_probe.dir/posix_probe.cpp.o"
  "CMakeFiles/posix_probe.dir/posix_probe.cpp.o.d"
  "posix_probe"
  "posix_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
