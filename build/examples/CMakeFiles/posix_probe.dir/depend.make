# Empty dependencies file for posix_probe.
# This may be replaced when dependencies are built.
