file(REMOVE_RECURSE
  "CMakeFiles/gbp_tool.dir/gbp_tool.cpp.o"
  "CMakeFiles/gbp_tool.dir/gbp_tool.cpp.o.d"
  "gbp_tool"
  "gbp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
