# Empty dependencies file for gbp_tool.
# This may be replaced when dependencies are built.
