file(REMOVE_RECURSE
  "CMakeFiles/layout_aging.dir/layout_aging.cpp.o"
  "CMakeFiles/layout_aging.dir/layout_aging.cpp.o.d"
  "layout_aging"
  "layout_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
