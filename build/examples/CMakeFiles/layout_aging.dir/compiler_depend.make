# Empty compiler generated dependencies file for layout_aging.
# This may be replaced when dependencies are built.
