# Empty compiler generated dependencies file for interposed_monitor.
# This may be replaced when dependencies are built.
