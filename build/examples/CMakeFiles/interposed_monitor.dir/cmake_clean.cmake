file(REMOVE_RECURSE
  "CMakeFiles/interposed_monitor.dir/interposed_monitor.cpp.o"
  "CMakeFiles/interposed_monitor.dir/interposed_monitor.cpp.o.d"
  "interposed_monitor"
  "interposed_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interposed_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
