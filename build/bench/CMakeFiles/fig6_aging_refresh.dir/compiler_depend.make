# Empty compiler generated dependencies file for fig6_aging_refresh.
# This may be replaced when dependencies are built.
