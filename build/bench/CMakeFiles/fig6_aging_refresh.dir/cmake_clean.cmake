file(REMOVE_RECURSE
  "CMakeFiles/fig6_aging_refresh.dir/fig6_aging_refresh.cc.o"
  "CMakeFiles/fig6_aging_refresh.dir/fig6_aging_refresh.cc.o.d"
  "fig6_aging_refresh"
  "fig6_aging_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aging_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
