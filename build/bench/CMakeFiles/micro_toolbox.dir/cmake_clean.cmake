file(REMOVE_RECURSE
  "CMakeFiles/micro_toolbox.dir/micro_toolbox.cc.o"
  "CMakeFiles/micro_toolbox.dir/micro_toolbox.cc.o.d"
  "micro_toolbox"
  "micro_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
