# Empty dependencies file for micro_toolbox.
# This may be replaced when dependencies are built.
