file(REMOVE_RECURSE
  "CMakeFiles/table2_case_studies.dir/table2_case_studies.cc.o"
  "CMakeFiles/table2_case_studies.dir/table2_case_studies.cc.o.d"
  "table2_case_studies"
  "table2_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
