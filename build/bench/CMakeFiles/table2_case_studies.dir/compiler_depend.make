# Empty compiler generated dependencies file for table2_case_studies.
# This may be replaced when dependencies are built.
