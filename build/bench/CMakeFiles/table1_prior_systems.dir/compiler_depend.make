# Empty compiler generated dependencies file for table1_prior_systems.
# This may be replaced when dependencies are built.
