file(REMOVE_RECURSE
  "CMakeFiles/table1_prior_systems.dir/table1_prior_systems.cc.o"
  "CMakeFiles/table1_prior_systems.dir/table1_prior_systems.cc.o.d"
  "table1_prior_systems"
  "table1_prior_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_prior_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
