# Empty compiler generated dependencies file for fig2_single_file_scan.
# This may be replaced when dependencies are built.
