file(REMOVE_RECURSE
  "CMakeFiles/fig2_single_file_scan.dir/fig2_single_file_scan.cc.o"
  "CMakeFiles/fig2_single_file_scan.dir/fig2_single_file_scan.cc.o.d"
  "fig2_single_file_scan"
  "fig2_single_file_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_single_file_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
