
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_single_file_scan.cc" "bench/CMakeFiles/fig2_single_file_scan.dir/fig2_single_file_scan.cc.o" "gcc" "bench/CMakeFiles/fig2_single_file_scan.dir/fig2_single_file_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gray/CMakeFiles/gb_gray.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/classic/CMakeFiles/gb_classic.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/gb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/gb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/gb_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
