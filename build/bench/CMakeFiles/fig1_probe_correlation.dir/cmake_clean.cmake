file(REMOVE_RECURSE
  "CMakeFiles/fig1_probe_correlation.dir/fig1_probe_correlation.cc.o"
  "CMakeFiles/fig1_probe_correlation.dir/fig1_probe_correlation.cc.o.d"
  "fig1_probe_correlation"
  "fig1_probe_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_probe_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
