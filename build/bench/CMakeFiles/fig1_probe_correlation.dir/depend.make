# Empty dependencies file for fig1_probe_correlation.
# This may be replaced when dependencies are built.
