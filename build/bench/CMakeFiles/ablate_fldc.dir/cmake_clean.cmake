file(REMOVE_RECURSE
  "CMakeFiles/ablate_fldc.dir/ablate_fldc.cc.o"
  "CMakeFiles/ablate_fldc.dir/ablate_fldc.cc.o.d"
  "ablate_fldc"
  "ablate_fldc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fldc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
