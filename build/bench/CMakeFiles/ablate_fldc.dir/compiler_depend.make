# Empty compiler generated dependencies file for ablate_fldc.
# This may be replaced when dependencies are built.
