# Empty compiler generated dependencies file for ablate_fccd.
# This may be replaced when dependencies are built.
