file(REMOVE_RECURSE
  "CMakeFiles/ablate_fccd.dir/ablate_fccd.cc.o"
  "CMakeFiles/ablate_fccd.dir/ablate_fccd.cc.o.d"
  "ablate_fccd"
  "ablate_fccd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fccd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
