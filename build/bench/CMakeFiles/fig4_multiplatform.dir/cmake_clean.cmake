file(REMOVE_RECURSE
  "CMakeFiles/fig4_multiplatform.dir/fig4_multiplatform.cc.o"
  "CMakeFiles/fig4_multiplatform.dir/fig4_multiplatform.cc.o.d"
  "fig4_multiplatform"
  "fig4_multiplatform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multiplatform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
