# Empty dependencies file for fig4_multiplatform.
# This may be replaced when dependencies are built.
