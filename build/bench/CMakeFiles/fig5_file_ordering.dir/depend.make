# Empty dependencies file for fig5_file_ordering.
# This may be replaced when dependencies are built.
