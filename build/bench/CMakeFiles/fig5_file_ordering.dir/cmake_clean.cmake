file(REMOVE_RECURSE
  "CMakeFiles/fig5_file_ordering.dir/fig5_file_ordering.cc.o"
  "CMakeFiles/fig5_file_ordering.dir/fig5_file_ordering.cc.o.d"
  "fig5_file_ordering"
  "fig5_file_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_file_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
