# Empty dependencies file for ablate_mac.
# This may be replaced when dependencies are built.
