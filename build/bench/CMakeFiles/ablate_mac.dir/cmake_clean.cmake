file(REMOVE_RECURSE
  "CMakeFiles/ablate_mac.dir/ablate_mac.cc.o"
  "CMakeFiles/ablate_mac.dir/ablate_mac.cc.o.d"
  "ablate_mac"
  "ablate_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
