file(REMOVE_RECURSE
  "CMakeFiles/fig7_mac_fastsort.dir/fig7_mac_fastsort.cc.o"
  "CMakeFiles/fig7_mac_fastsort.dir/fig7_mac_fastsort.cc.o.d"
  "fig7_mac_fastsort"
  "fig7_mac_fastsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mac_fastsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
