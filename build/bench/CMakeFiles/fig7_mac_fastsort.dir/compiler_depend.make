# Empty compiler generated dependencies file for fig7_mac_fastsort.
# This may be replaced when dependencies are built.
