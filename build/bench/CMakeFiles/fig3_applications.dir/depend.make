# Empty dependencies file for fig3_applications.
# This may be replaced when dependencies are built.
