# Empty dependencies file for gb_os.
# This may be replaced when dependencies are built.
