
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/os.cc" "src/os/CMakeFiles/gb_os.dir/os.cc.o" "gcc" "src/os/CMakeFiles/gb_os.dir/os.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/gb_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/gb_os.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/gb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/gb_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
