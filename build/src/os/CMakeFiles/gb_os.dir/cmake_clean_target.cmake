file(REMOVE_RECURSE
  "libgb_os.a"
)
