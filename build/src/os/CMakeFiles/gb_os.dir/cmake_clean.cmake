file(REMOVE_RECURSE
  "CMakeFiles/gb_os.dir/os.cc.o"
  "CMakeFiles/gb_os.dir/os.cc.o.d"
  "CMakeFiles/gb_os.dir/scheduler.cc.o"
  "CMakeFiles/gb_os.dir/scheduler.cc.o.d"
  "libgb_os.a"
  "libgb_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
