file(REMOVE_RECURSE
  "CMakeFiles/gb_mem.dir/mem_system.cc.o"
  "CMakeFiles/gb_mem.dir/mem_system.cc.o.d"
  "libgb_mem.a"
  "libgb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
