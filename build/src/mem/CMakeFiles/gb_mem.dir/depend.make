# Empty dependencies file for gb_mem.
# This may be replaced when dependencies are built.
