file(REMOVE_RECURSE
  "libgb_mem.a"
)
