file(REMOVE_RECURSE
  "libgb_disk.a"
)
