# Empty dependencies file for gb_disk.
# This may be replaced when dependencies are built.
