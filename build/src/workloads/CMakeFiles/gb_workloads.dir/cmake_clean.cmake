file(REMOVE_RECURSE
  "CMakeFiles/gb_workloads.dir/aging.cc.o"
  "CMakeFiles/gb_workloads.dir/aging.cc.o.d"
  "CMakeFiles/gb_workloads.dir/fastsort.cc.o"
  "CMakeFiles/gb_workloads.dir/fastsort.cc.o.d"
  "CMakeFiles/gb_workloads.dir/filegen.cc.o"
  "CMakeFiles/gb_workloads.dir/filegen.cc.o.d"
  "CMakeFiles/gb_workloads.dir/grep.cc.o"
  "CMakeFiles/gb_workloads.dir/grep.cc.o.d"
  "libgb_workloads.a"
  "libgb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
