file(REMOVE_RECURSE
  "CMakeFiles/gb_vm.dir/vm.cc.o"
  "CMakeFiles/gb_vm.dir/vm.cc.o.d"
  "libgb_vm.a"
  "libgb_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
