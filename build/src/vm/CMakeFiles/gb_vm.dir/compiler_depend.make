# Empty compiler generated dependencies file for gb_vm.
# This may be replaced when dependencies are built.
