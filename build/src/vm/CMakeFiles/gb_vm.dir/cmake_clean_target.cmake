file(REMOVE_RECURSE
  "libgb_vm.a"
)
