file(REMOVE_RECURSE
  "CMakeFiles/gb_cache.dir/page_cache.cc.o"
  "CMakeFiles/gb_cache.dir/page_cache.cc.o.d"
  "libgb_cache.a"
  "libgb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
