# Empty dependencies file for gb_fs.
# This may be replaced when dependencies are built.
