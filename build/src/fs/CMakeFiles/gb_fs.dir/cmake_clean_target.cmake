file(REMOVE_RECURSE
  "libgb_fs.a"
)
