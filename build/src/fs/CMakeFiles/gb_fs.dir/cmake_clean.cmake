file(REMOVE_RECURSE
  "CMakeFiles/gb_fs.dir/ffs.cc.o"
  "CMakeFiles/gb_fs.dir/ffs.cc.o.d"
  "libgb_fs.a"
  "libgb_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
