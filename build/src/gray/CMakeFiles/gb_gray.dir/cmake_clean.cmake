file(REMOVE_RECURSE
  "CMakeFiles/gb_gray.dir/compose/compose.cc.o"
  "CMakeFiles/gb_gray.dir/compose/compose.cc.o.d"
  "CMakeFiles/gb_gray.dir/fccd/fccd.cc.o"
  "CMakeFiles/gb_gray.dir/fccd/fccd.cc.o.d"
  "CMakeFiles/gb_gray.dir/fldc/fldc.cc.o"
  "CMakeFiles/gb_gray.dir/fldc/fldc.cc.o.d"
  "CMakeFiles/gb_gray.dir/gbp/gbp.cc.o"
  "CMakeFiles/gb_gray.dir/gbp/gbp.cc.o.d"
  "CMakeFiles/gb_gray.dir/interpose/interposer.cc.o"
  "CMakeFiles/gb_gray.dir/interpose/interposer.cc.o.d"
  "CMakeFiles/gb_gray.dir/mac/governor.cc.o"
  "CMakeFiles/gb_gray.dir/mac/governor.cc.o.d"
  "CMakeFiles/gb_gray.dir/mac/mac.cc.o"
  "CMakeFiles/gb_gray.dir/mac/mac.cc.o.d"
  "CMakeFiles/gb_gray.dir/posix_sys.cc.o"
  "CMakeFiles/gb_gray.dir/posix_sys.cc.o.d"
  "CMakeFiles/gb_gray.dir/toolbox/microbench.cc.o"
  "CMakeFiles/gb_gray.dir/toolbox/microbench.cc.o.d"
  "CMakeFiles/gb_gray.dir/toolbox/param_repository.cc.o"
  "CMakeFiles/gb_gray.dir/toolbox/param_repository.cc.o.d"
  "CMakeFiles/gb_gray.dir/toolbox/stats.cc.o"
  "CMakeFiles/gb_gray.dir/toolbox/stats.cc.o.d"
  "libgb_gray.a"
  "libgb_gray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_gray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
