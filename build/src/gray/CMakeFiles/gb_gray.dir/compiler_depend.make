# Empty compiler generated dependencies file for gb_gray.
# This may be replaced when dependencies are built.
