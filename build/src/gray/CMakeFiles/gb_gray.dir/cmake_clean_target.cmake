file(REMOVE_RECURSE
  "libgb_gray.a"
)
