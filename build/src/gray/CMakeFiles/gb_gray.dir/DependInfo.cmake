
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gray/compose/compose.cc" "src/gray/CMakeFiles/gb_gray.dir/compose/compose.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/compose/compose.cc.o.d"
  "/root/repo/src/gray/fccd/fccd.cc" "src/gray/CMakeFiles/gb_gray.dir/fccd/fccd.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/fccd/fccd.cc.o.d"
  "/root/repo/src/gray/fldc/fldc.cc" "src/gray/CMakeFiles/gb_gray.dir/fldc/fldc.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/fldc/fldc.cc.o.d"
  "/root/repo/src/gray/gbp/gbp.cc" "src/gray/CMakeFiles/gb_gray.dir/gbp/gbp.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/gbp/gbp.cc.o.d"
  "/root/repo/src/gray/interpose/interposer.cc" "src/gray/CMakeFiles/gb_gray.dir/interpose/interposer.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/interpose/interposer.cc.o.d"
  "/root/repo/src/gray/mac/governor.cc" "src/gray/CMakeFiles/gb_gray.dir/mac/governor.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/mac/governor.cc.o.d"
  "/root/repo/src/gray/mac/mac.cc" "src/gray/CMakeFiles/gb_gray.dir/mac/mac.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/mac/mac.cc.o.d"
  "/root/repo/src/gray/posix_sys.cc" "src/gray/CMakeFiles/gb_gray.dir/posix_sys.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/posix_sys.cc.o.d"
  "/root/repo/src/gray/toolbox/microbench.cc" "src/gray/CMakeFiles/gb_gray.dir/toolbox/microbench.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/toolbox/microbench.cc.o.d"
  "/root/repo/src/gray/toolbox/param_repository.cc" "src/gray/CMakeFiles/gb_gray.dir/toolbox/param_repository.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/toolbox/param_repository.cc.o.d"
  "/root/repo/src/gray/toolbox/stats.cc" "src/gray/CMakeFiles/gb_gray.dir/toolbox/stats.cc.o" "gcc" "src/gray/CMakeFiles/gb_gray.dir/toolbox/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/gb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/gb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/gb_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
