file(REMOVE_RECURSE
  "libgb_classic.a"
)
