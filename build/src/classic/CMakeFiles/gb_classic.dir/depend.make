# Empty dependencies file for gb_classic.
# This may be replaced when dependencies are built.
