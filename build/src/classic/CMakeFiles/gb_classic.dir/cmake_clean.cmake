file(REMOVE_RECURSE
  "CMakeFiles/gb_classic.dir/cosched.cc.o"
  "CMakeFiles/gb_classic.dir/cosched.cc.o.d"
  "CMakeFiles/gb_classic.dir/manners.cc.o"
  "CMakeFiles/gb_classic.dir/manners.cc.o.d"
  "CMakeFiles/gb_classic.dir/tcp.cc.o"
  "CMakeFiles/gb_classic.dir/tcp.cc.o.d"
  "libgb_classic.a"
  "libgb_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
