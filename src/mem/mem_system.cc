#include "src/mem/mem_system.h"

#include <cassert>

namespace graysim {

MemSystem::MemSystem(Config config) : config_(config) {
  assert(config_.total_pages > 0);
  if (config_.policy == MemPolicy::kPartitionedFixedFile) {
    assert(config_.file_cache_pages > 0);
    assert(config_.file_cache_pages < config_.total_pages);
  }
}

std::list<Page>* MemSystem::GlobalLruList() {
  if (file_lru_.empty() && anon_lru_.empty()) {
    return nullptr;
  }
  if (file_lru_.empty()) {
    return &anon_lru_;
  }
  if (anon_lru_.empty()) {
    return &file_lru_;
  }
  return file_lru_.front().last_touch <= anon_lru_.front().last_touch ? &file_lru_
                                                                      : &anon_lru_;
}

bool MemSystem::EvictOne(PageKind incoming, Nanos* evict_cost) {
  std::list<Page>* victim_list = nullptr;
  switch (config_.policy) {
    case MemPolicy::kUnifiedLru: {
      // Prefer reclaiming file pages while the file cache holds a
      // meaningful share of memory; below that, fall back to global LRU
      // (which starts swapping anonymous memory under overcommit).
      const std::uint64_t min_file = config_.total_pages / kMinFileShareDivisor;
      if (file_pages_ >= min_file && !file_lru_.empty()) {
        victim_list = &file_lru_;
      } else {
        victim_list = GlobalLruList();
      }
      break;
    }
    case MemPolicy::kPartitionedFixedFile:
      // Each partition reclaims from itself.
      victim_list = incoming == PageKind::kFile ? &file_lru_ : &anon_lru_;
      break;
    case MemPolicy::kStickyFile:
      if (incoming == PageKind::kFile) {
        // New file pages never displace anything.
        return false;
      }
      // Anonymous demand reclaims file pages first, then old anon pages.
      victim_list = !file_lru_.empty() ? &file_lru_ : &anon_lru_;
      break;
  }
  if (victim_list == nullptr || victim_list->empty()) {
    return false;
  }
  PageRef victim = victim_list->begin();
  if (victim_list == &file_lru_ && victim->dirty) {
    // Prefer a clean file page among the oldest few: reclaiming a dirty
    // page forces a synchronous single-page writeback, which kernels avoid
    // while clean pages are available (the write-behind flusher handles
    // dirty data in coalesced batches).
    PageRef scan = victim;
    for (int k = 0; k < 64 && scan != file_lru_.end(); ++k, ++scan) {
      if (!scan->dirty) {
        victim = scan;
        break;
      }
    }
  }
  if (evict_fn_) {
    *evict_cost += evict_fn_(*victim);
  }
  ++stats_.evictions;
  if (victim->kind == PageKind::kFile) {
    ++stats_.file_evictions;
    --file_pages_;
  } else {
    ++stats_.anon_evictions;
    --anon_pages_;
  }
  victim_list->erase(victim);
  return true;
}

std::optional<MemSystem::PageRef> MemSystem::Insert(Page page, Nanos* evict_cost) {
  assert(evict_cost != nullptr);
  const PageKind kind = page.kind;

  // Determine whether this insert needs a reclaim under the active policy.
  auto needs_eviction = [&]() -> bool {
    switch (config_.policy) {
      case MemPolicy::kUnifiedLru:
      case MemPolicy::kStickyFile:
        return used_pages() >= config_.total_pages;
      case MemPolicy::kPartitionedFixedFile:
        if (kind == PageKind::kFile) {
          return file_pages_ >= config_.file_cache_pages;
        }
        return anon_pages_ >= config_.total_pages - config_.file_cache_pages;
    }
    return false;
  };

  while (needs_eviction()) {
    if (!EvictOne(kind, evict_cost)) {
      ++stats_.admissions_denied;
      return std::nullopt;
    }
  }

  page.last_touch = ++touch_seq_;
  std::list<Page>& list = ListFor(kind);
  list.push_back(page);
  if (kind == PageKind::kFile) {
    ++file_pages_;
  } else {
    ++anon_pages_;
  }
  return std::prev(list.end());
}

void MemSystem::Touch(PageRef ref) {
  ref->last_touch = ++touch_seq_;
  std::list<Page>& list = ListFor(ref->kind);
  list.splice(list.end(), list, ref);
}

void MemSystem::Remove(PageRef ref) {
  if (ref->kind == PageKind::kFile) {
    --file_pages_;
  } else {
    --anon_pages_;
  }
  ListFor(ref->kind).erase(ref);
}

bool MemSystem::EvictCleanFileOne() {
  if (file_lru_.empty()) {
    return false;
  }
  if (config_.policy == MemPolicy::kUnifiedLru &&
      file_pages_ < config_.total_pages / kMinFileShareDivisor) {
    // Below the protected file share the policy victim would be anonymous
    // memory; that reclaim is never free.
    return false;
  }
  PageRef victim = file_lru_.end();
  PageRef scan = file_lru_.begin();
  for (int k = 0; k < 64 && scan != file_lru_.end(); ++k, ++scan) {
    if (!scan->dirty) {
      victim = scan;
      break;
    }
  }
  if (victim == file_lru_.end()) {
    return false;  // oldest pages are all dirty: wait for the flusher
  }
  Nanos unused_cost = 0;
  if (evict_fn_) {
    unused_cost += evict_fn_(*victim);
  }
  ++stats_.evictions;
  ++stats_.file_evictions;
  --file_pages_;
  file_lru_.erase(victim);
  return true;
}

std::uint64_t MemSystem::ReclaimToFree(std::uint64_t target_free, std::uint64_t max_pages) {
  std::uint64_t evicted = 0;
  while (evicted < max_pages && free_pages() < target_free) {
    if (!EvictCleanFileOne()) {
      break;
    }
    ++evicted;
  }
  return evicted;
}

Nanos MemSystem::Reclaim(std::uint64_t n) {
  Nanos cost = 0;
  for (std::uint64_t i = 0; i < n && used_pages() > 0; ++i) {
    if (!EvictOne(PageKind::kAnon, &cost)) {
      break;
    }
  }
  return cost;
}

}  // namespace graysim
