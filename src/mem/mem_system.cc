#include "src/mem/mem_system.h"

#include <cassert>

namespace graysim {

MemSystem::MemSystem(Config config) : config_(config) {
  assert(config_.total_pages > 0);
  if (config_.policy == MemPolicy::kPartitionedFixedFile) {
    assert(config_.file_cache_pages > 0);
    assert(config_.file_cache_pages < config_.total_pages);
  }
  // The slab can never exceed the physical pool: Insert evicts or denies
  // first. Reserving it up front makes Allocate allocation-free forever.
  frames_.Reserve(config_.total_pages);
}

LruList* MemSystem::GlobalLruList() {
  if (file_lru_.empty() && anon_lru_.empty()) {
    return nullptr;
  }
  if (file_lru_.empty()) {
    return &anon_lru_;
  }
  if (anon_lru_.empty()) {
    return &file_lru_;
  }
  return frames_.last_touch(file_lru_.front()) <= frames_.last_touch(anon_lru_.front())
             ? &file_lru_
             : &anon_lru_;
}

bool MemSystem::EvictOne(PageKind incoming, Nanos* evict_cost) {
  LruList* victim_list = nullptr;
  switch (config_.policy) {
    case MemPolicy::kUnifiedLru: {
      // Prefer reclaiming file pages while the file cache holds a
      // meaningful share of memory; below that, fall back to global LRU
      // (which starts swapping anonymous memory under overcommit).
      const std::uint64_t min_file = config_.total_pages / kMinFileShareDivisor;
      if (file_pages_ >= min_file && !file_lru_.empty()) {
        victim_list = &file_lru_;
      } else {
        victim_list = GlobalLruList();
      }
      break;
    }
    case MemPolicy::kPartitionedFixedFile:
      // Each partition reclaims from itself.
      victim_list = incoming == PageKind::kFile ? &file_lru_ : &anon_lru_;
      break;
    case MemPolicy::kStickyFile:
      if (incoming == PageKind::kFile) {
        // New file pages never displace anything.
        return false;
      }
      // Anonymous demand reclaims file pages first, then old anon pages.
      victim_list = !file_lru_.empty() ? &file_lru_ : &anon_lru_;
      break;
  }
  if (victim_list == nullptr || victim_list->empty()) {
    return false;
  }
  FrameId victim = victim_list->front();
  if (victim_list == &file_lru_ && frames_.dirty(victim)) {
    // Prefer a clean file page among the oldest few: reclaiming a dirty
    // page forces a synchronous single-page writeback, which kernels avoid
    // while clean pages are available (the write-behind flusher handles
    // dirty data in coalesced batches).
    FrameId scan = victim;
    for (int k = 0; k < 64 && scan != kNoFrame; ++k, scan = LruList::Next(frames_, scan)) {
      if (!frames_.dirty(scan)) {
        victim = scan;
        break;
      }
    }
  }
  // Copy out before the handler runs: it unlinks the page from its owner
  // (cache map / pte) and must see stable contents.
  const Page victim_page = frames_.PageOf(victim);
  if (evict_handler_ != nullptr) {
    *evict_cost += evict_handler_->OnEvict(victim_page);
  }
  ++stats_.evictions;
  if (victim_page.kind == PageKind::kFile) {
    ++stats_.file_evictions;
    --file_pages_;
  } else {
    ++stats_.anon_evictions;
    --anon_pages_;
  }
  victim_list->Remove(frames_, victim);
  frames_.Release(victim);
  return true;
}

MemSystem::PageRef MemSystem::Insert(Page page, Nanos* evict_cost) {
  assert(evict_cost != nullptr);
  const PageKind kind = page.kind;

  // Determine whether this insert needs a reclaim under the active policy.
  auto needs_eviction = [&]() -> bool {
    switch (config_.policy) {
      case MemPolicy::kUnifiedLru:
      case MemPolicy::kStickyFile:
        return used_pages() >= config_.total_pages;
      case MemPolicy::kPartitionedFixedFile:
        if (kind == PageKind::kFile) {
          return file_pages_ >= config_.file_cache_pages;
        }
        return anon_pages_ >= config_.total_pages - config_.file_cache_pages;
    }
    return false;
  };

  while (needs_eviction()) {
    if (!EvictOne(kind, evict_cost)) {
      ++stats_.admissions_denied;
      return kNoFrame;
    }
  }

  page.last_touch = ++touch_seq_;
  const FrameId id = frames_.Allocate();
  frames_.SetPage(id, page);
  ListFor(kind).PushBack(frames_, id);
  if (kind == PageKind::kFile) {
    ++file_pages_;
  } else {
    ++anon_pages_;
  }
  return id;
}

void MemSystem::Touch(PageRef ref) {
  frames_.set_last_touch(ref, ++touch_seq_);
  ListFor(frames_.kind(ref)).MoveToBack(frames_, ref);
}

void MemSystem::Remove(PageRef ref) {
  const PageKind kind = frames_.kind(ref);
  if (kind == PageKind::kFile) {
    --file_pages_;
  } else {
    --anon_pages_;
  }
  ListFor(kind).Remove(frames_, ref);
  frames_.Release(ref);
}

bool MemSystem::EvictCleanFileOne() {
  if (file_lru_.empty()) {
    return false;
  }
  if (config_.policy == MemPolicy::kUnifiedLru &&
      file_pages_ < config_.total_pages / kMinFileShareDivisor) {
    // Below the protected file share the policy victim would be anonymous
    // memory; that reclaim is never free.
    return false;
  }
  FrameId victim = kNoFrame;
  FrameId scan = file_lru_.front();
  for (int k = 0; k < 64 && scan != kNoFrame; ++k, scan = LruList::Next(frames_, scan)) {
    if (!frames_.dirty(scan)) {
      victim = scan;
      break;
    }
  }
  if (victim == kNoFrame) {
    return false;  // oldest pages are all dirty: wait for the flusher
  }
  const Page victim_page = frames_.PageOf(victim);
  if (evict_handler_ != nullptr) {
    (void)evict_handler_->OnEvict(victim_page);  // clean: no I/O cost
  }
  ++stats_.evictions;
  ++stats_.file_evictions;
  --file_pages_;
  file_lru_.Remove(frames_, victim);
  frames_.Release(victim);
  return true;
}

std::uint64_t MemSystem::ReclaimToFree(std::uint64_t target_free, std::uint64_t max_pages) {
  std::uint64_t evicted = 0;
  while (evicted < max_pages && free_pages() < target_free) {
    if (!EvictCleanFileOne()) {
      break;
    }
    ++evicted;
  }
  return evicted;
}

Nanos MemSystem::Reclaim(std::uint64_t n) {
  Nanos cost = 0;
  for (std::uint64_t i = 0; i < n && used_pages() > 0; ++i) {
    if (!EvictOne(PageKind::kAnon, &cost)) {
      break;
    }
  }
  return cost;
}

}  // namespace graysim
