// Physical memory accounting shared by the file cache and virtual memory.
//
// A fixed pool of page frames is managed under one of three policies that
// model the paper's three platforms:
//
//  * kUnifiedLru (Linux 2.2-like): file and anonymous pages compete for one
//    pool. Reclaim prefers the oldest FILE page while the file cache holds
//    at least 1/16 of memory (streaming "use-once" file data should not
//    displace a process's active heap); below that share reclaim falls back
//    to the globally least-recently-used page of either kind — which is
//    what swaps anonymous memory once processes overcommit (the Fig 7
//    paging cliff).
//  * kPartitionedFixedFile (NetBSD 1.5-like): the file cache is a fixed-size
//    partition (64 MB in the paper) with its own LRU; anonymous memory uses
//    the rest.
//  * kStickyFile (Solaris 7-like): once the pool is full a new *file* page
//    is refused admission instead of displacing an existing page ("once a
//    file is placed in the Solaris file cache, it is quite difficult to
//    dislodge"). Anonymous demand still reclaims file pages.
//
// Frames live in a contiguous FrameTable and the LRU lists are intrusive
// (see frame_table.h), so the per-touch hot path performs no heap
// allocation. Eviction I/O (writeback / swap-out) is delegated to an
// owner-installed EvictionHandler so the Os can charge the cost to the
// faulting process; the handler is a plain interface pointer — installing
// and invoking it never allocates either.
#ifndef SRC_MEM_MEM_SYSTEM_H_
#define SRC_MEM_MEM_SYSTEM_H_

#include <cstdint>

#include "src/mem/frame_table.h"
#include "src/sim/clock.h"

namespace graysim {

enum class MemPolicy : std::uint8_t {
  kUnifiedLru,            // Linux 2.2-like
  kPartitionedFixedFile,  // NetBSD 1.5-like
  kStickyFile,            // Solaris 7-like
};

struct MemStats {
  std::uint64_t evictions = 0;
  std::uint64_t file_evictions = 0;
  std::uint64_t anon_evictions = 0;
  std::uint64_t admissions_denied = 0;

  friend bool operator==(const MemStats&, const MemStats&) = default;
};

// Owner hook for eviction I/O: unmaps the page from its owner and returns
// the I/O cost of eviction (writeback for dirty file pages, swap-out for
// anon pages).
class EvictionHandler {
 public:
  virtual Nanos OnEvict(const Page& page) = 0;

 protected:
  ~EvictionHandler() = default;
};

class MemSystem {
 public:
  struct Config {
    std::uint64_t total_pages = 0;       // usable frames (after kernel reservation)
    MemPolicy policy = MemPolicy::kUnifiedLru;
    std::uint64_t file_cache_pages = 0;  // partition size for kPartitionedFixedFile
  };

  // Minimum share of memory the unified policy tries to keep available to
  // the file cache before it starts swapping anonymous pages (1/16).
  static constexpr std::uint64_t kMinFileShareDivisor = 16;

  // A resident page is named by its frame id; kNoFrame means "no page"
  // (admission denied).
  using PageRef = FrameId;

  explicit MemSystem(Config config);

  void set_evict_handler(EvictionHandler* handler) { evict_handler_ = handler; }

  // Inserts a page, evicting if necessary. Returns kNoFrame when the policy
  // refuses admission (sticky policy, file page, pool full). Eviction I/O
  // cost is accumulated into *evict_cost.
  [[nodiscard]] PageRef Insert(Page page, Nanos* evict_cost);

  // Moves the page to the MRU end of its list.
  void Touch(PageRef ref);

  void MarkDirty(PageRef ref) { frames_.set_dirty(ref, true); }
  void MarkClean(PageRef ref) { frames_.set_dirty(ref, false); }

  // Frees the frame without writeback; the caller is responsible for any
  // bookkeeping (used by unlink/truncate/VmFree).
  void Remove(PageRef ref);

  // Evicts up to n LRU pages (any kind); returns total eviction I/O cost.
  [[nodiscard]] Nanos Reclaim(std::uint64_t n);

  // Page-daemon reclaim: evicts CLEAN file pages (oldest first) until
  // free_pages() reaches `target_free`, up to `max_pages` in this batch.
  // Returns the number evicted; stops early when the next policy victim
  // would be dirty or anonymous — reclaiming those costs I/O, which real
  // kernels push into process context (direct reclaim) so the allocating
  // process pays the wait. That throttling is load-bearing here: MAC's
  // slow-touch signal exists precisely because a daemon cannot hand out
  // frames faster than the paging device retires eviction writes.
  std::uint64_t ReclaimToFree(std::uint64_t target_free, std::uint64_t max_pages);

  [[nodiscard]] std::uint64_t total_pages() const { return config_.total_pages; }
  [[nodiscard]] std::uint64_t used_pages() const { return file_pages_ + anon_pages_; }
  [[nodiscard]] std::uint64_t free_pages() const { return config_.total_pages - used_pages(); }
  [[nodiscard]] std::uint64_t file_pages() const { return file_pages_; }
  [[nodiscard]] std::uint64_t anon_pages() const { return anon_pages_; }
  [[nodiscard]] const MemStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

  // The shared frame slab: PageCache threads its dirty chain through it and
  // reads page identities by frame id.
  [[nodiscard]] FrameTable& frames() { return frames_; }
  [[nodiscard]] const FrameTable& frames() const { return frames_; }
  [[nodiscard]] Page page(PageRef ref) const { return frames_.PageOf(ref); }

  // Copies another MemSystem's simulation state (machine snapshot/fork):
  // the frame slab plus the intrusive list heads and counters. FrameIds are
  // stable across the slab copy, so the list heads transfer verbatim. The
  // config must already match (same profile); the eviction handler is
  // identity, not state — the restoring owner keeps its own.
  void CopyStateFrom(const MemSystem& other) {
    frames_.CopyFrom(other.frames_);
    file_lru_ = other.file_lru_;
    anon_lru_ = other.anon_lru_;
    file_pages_ = other.file_pages_;
    anon_pages_ = other.anon_pages_;
    touch_seq_ = other.touch_seq_;
    stats_ = other.stats_;
  }

  // --- checkpoint surface (machine_image_io) ------------------------------
  [[nodiscard]] const LruList& file_lru() const { return file_lru_; }
  [[nodiscard]] const LruList& anon_lru() const { return anon_lru_; }
  [[nodiscard]] std::uint64_t touch_seq() const { return touch_seq_; }

  void RestoreLists(const LruList& file, const LruList& anon) {
    file_lru_ = file;
    anon_lru_ = anon;
  }
  void RestoreCounters(std::uint64_t file_pages, std::uint64_t anon_pages,
                       std::uint64_t touch_seq, const MemStats& stats) {
    file_pages_ = file_pages;
    anon_pages_ = anon_pages;
    touch_seq_ = touch_seq;
    stats_ = stats;
  }

 private:
  // Evicts one page to make room for a page of `incoming` kind. Returns
  // false if nothing can be evicted (admission must be denied).
  bool EvictOne(PageKind incoming, Nanos* evict_cost);

  // Evicts one clean file page near the LRU end of the file list (if the
  // policy currently reclaims from it); false when none qualifies.
  bool EvictCleanFileOne();

  // The list holding the globally least-recently-touched page across both
  // kinds; nullptr when both are empty.
  [[nodiscard]] LruList* GlobalLruList();

  [[nodiscard]] LruList& ListFor(PageKind kind) {
    return kind == PageKind::kFile ? file_lru_ : anon_lru_;
  }

  Config config_;
  EvictionHandler* evict_handler_ = nullptr;
  FrameTable frames_;
  LruList file_lru_;
  LruList anon_lru_;
  std::uint64_t file_pages_ = 0;
  std::uint64_t anon_pages_ = 0;
  std::uint64_t touch_seq_ = 0;
  MemStats stats_;
};

}  // namespace graysim

#endif  // SRC_MEM_MEM_SYSTEM_H_
