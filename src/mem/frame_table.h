// Contiguous page-frame slab with intrusive LRU / dirty chains.
//
// Every resident page in the simulation — file-cache and anonymous alike —
// lives in one frame of a FrameTable and is named by a 32-bit FrameId. The
// replacement lists (MemSystem's file/anon LRUs) and the page cache's dirty
// chain are intrusive doubly-linked lists threaded through the frames, so a
// touch is a handful of id stores instead of a std::list node splice, and
// insert/evict never allocate: the slab is sized once to the machine's
// physical memory and frames recycle through a free list.
//
// The slab is split hot/cold by access frequency. The link records (16
// bytes), touch sequence numbers, and kind/dirty flag bytes each live in
// their own packed array — together well under the L2 of any modern host
// even for multi-GB simulated machines — while the page identity (which
// file/process, which page) is cold and only read when a page is inserted,
// evicted, or written back. An interleaved 48-byte Frame struct made every
// LRU splice pull four ~random cache lines from a slab bigger than L2; the
// split keeps the splice traffic L2-resident.
#ifndef SRC_MEM_FRAME_TABLE_H_
#define SRC_MEM_FRAME_TABLE_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace graysim {

enum class PageKind : std::uint8_t { kFile, kAnon };

struct Page {
  PageKind kind;
  std::uint64_t key1;  // file: inode number | anon: pid
  std::uint64_t key2;  // file: page index  | anon: virtual page number
  bool dirty = false;
  std::uint64_t last_touch = 0;  // global touch sequence number
};

using FrameId = std::uint32_t;
constexpr FrameId kNoFrame = 0xFFFFFFFFu;

// Hot per-frame state: the intrusive list links.
struct FrameHot {
  FrameId lru_prev = kNoFrame;    // MemSystem replacement list
  FrameId lru_next = kNoFrame;
  FrameId dirty_prev = kNoFrame;  // PageCache write-behind chain
  FrameId dirty_next = kNoFrame;
};

// The frame slab. Allocation pops a LIFO free list (or grows the slab while
// warming up); frame ids stay valid until Release. References into the slab
// are invalidated by Allocate (growth may move the arrays) — hold FrameIds
// across calls, not references.
class FrameTable {
 public:
  FrameTable() = default;

  FrameTable(const FrameTable&) = delete;
  FrameTable& operator=(const FrameTable&) = delete;

  // Pre-sizes the slab so Allocate never grows it (zero-allocation steady
  // state once the owner has reserved physical-memory capacity).
  void Reserve(std::uint64_t frames) {
    hot_.reserve(frames);
    touch_.reserve(frames);
    flags_.reserve(frames);
    key1_.reserve(frames);
    key2_.reserve(frames);
    free_.reserve(frames);
  }

  [[nodiscard]] FrameId Allocate() {
    if (!free_.empty()) {
      const FrameId id = free_.back();
      free_.pop_back();
      hot_[id] = FrameHot{};
      return id;
    }
    assert(hot_.size() < kNoFrame);
    hot_.emplace_back();
    touch_.push_back(0);
    flags_.push_back(0);
    key1_.push_back(0);
    key2_.push_back(0);
    return static_cast<FrameId>(hot_.size() - 1);
  }

  void Release(FrameId id) {
    assert(id < hot_.size());
    free_.push_back(id);
  }

  [[nodiscard]] FrameHot& hot(FrameId id) {
    assert(id < hot_.size());
    return hot_[id];
  }
  [[nodiscard]] const FrameHot& hot(FrameId id) const {
    assert(id < hot_.size());
    return hot_[id];
  }

  [[nodiscard]] std::uint64_t last_touch(FrameId id) const { return touch_[id]; }
  void set_last_touch(FrameId id, std::uint64_t seq) { touch_[id] = seq; }

  [[nodiscard]] PageKind kind(FrameId id) const {
    return (flags_[id] & kKindAnon) != 0 ? PageKind::kAnon : PageKind::kFile;
  }
  [[nodiscard]] bool dirty(FrameId id) const { return (flags_[id] & kDirty) != 0; }
  void set_dirty(FrameId id, bool dirty) {
    if (dirty) {
      flags_[id] |= kDirty;
    } else {
      flags_[id] &= static_cast<std::uint8_t>(~kDirty);
    }
  }

  [[nodiscard]] std::uint64_t key1(FrameId id) const { return key1_[id]; }
  [[nodiscard]] std::uint64_t key2(FrameId id) const { return key2_[id]; }

  // Stores a page's identity into the frame (insert path).
  void SetPage(FrameId id, const Page& page) {
    flags_[id] = static_cast<std::uint8_t>(
        (page.kind == PageKind::kAnon ? kKindAnon : 0) | (page.dirty ? kDirty : 0));
    key1_[id] = page.key1;
    key2_[id] = page.key2;
    touch_[id] = page.last_touch;
  }

  // Reassembles the page's identity (evict/writeback path — cold reads).
  [[nodiscard]] Page PageOf(FrameId id) const {
    return Page{kind(id), key1_[id], key2_[id], dirty(id), touch_[id]};
  }

  [[nodiscard]] std::uint64_t live_frames() const { return hot_.size() - free_.size(); }

  // Heap footprint of the slab arrays (snapshot-size accounting).
  [[nodiscard]] std::uint64_t ApproxBytes() const {
    return hot_.capacity() * sizeof(FrameHot) + touch_.capacity() * sizeof(std::uint64_t) +
           flags_.capacity() + key1_.capacity() * sizeof(std::uint64_t) +
           key2_.capacity() * sizeof(std::uint64_t) + free_.capacity() * sizeof(FrameId);
  }

  // Deep-copies another slab (machine snapshot/fork). FrameIds are plain
  // indices, so they stay valid across the copy — every FrameId-holding
  // structure (LRU lists, page tables, dirty chains) can be copied verbatim
  // alongside without translation.
  void CopyFrom(const FrameTable& other) {
    hot_ = other.hot_;
    touch_ = other.touch_;
    flags_ = other.flags_;
    key1_ = other.key1_;
    key2_ = other.key2_;
    free_ = other.free_;
  }

  // --- checkpoint surface -------------------------------------------------
  // The raw slab arrays, exposed verbatim for durable checkpoints. The free
  // list's LIFO *order* is part of machine state: Allocate pops the back, so
  // a reordered free list hands out different FrameIds after restore and
  // diverges a bit-identical replay.
  [[nodiscard]] const std::vector<FrameHot>& hot_array() const { return hot_; }
  [[nodiscard]] const std::vector<std::uint64_t>& touch_array() const { return touch_; }
  [[nodiscard]] const std::vector<std::uint8_t>& flags_array() const { return flags_; }
  [[nodiscard]] const std::vector<std::uint64_t>& key1_array() const { return key1_; }
  [[nodiscard]] const std::vector<std::uint64_t>& key2_array() const { return key2_; }
  [[nodiscard]] const std::vector<FrameId>& free_list() const { return free_; }

  void RestoreArrays(std::vector<FrameHot> hot, std::vector<std::uint64_t> touch,
                     std::vector<std::uint8_t> flags, std::vector<std::uint64_t> key1,
                     std::vector<std::uint64_t> key2, std::vector<FrameId> free_frames) {
    hot_ = std::move(hot);
    touch_ = std::move(touch);
    flags_ = std::move(flags);
    key1_ = std::move(key1);
    key2_ = std::move(key2);
    free_ = std::move(free_frames);
  }

 private:
  static constexpr std::uint8_t kKindAnon = 1u << 0;
  static constexpr std::uint8_t kDirty = 1u << 1;

  std::vector<FrameHot> hot_;          // links: touched by every list op
  std::vector<std::uint64_t> touch_;   // LRU sequence numbers
  std::vector<std::uint8_t> flags_;    // kind + dirty bits
  std::vector<std::uint64_t> key1_;    // cold identity
  std::vector<std::uint64_t> key2_;
  std::vector<FrameId> free_;
};

// Intrusive doubly-linked list over one prev/next id pair inside FrameHot.
// Holds only head/tail/size; every link lives in the slab, so membership
// changes are pure id stores. Instantiated once per link pair:
//   IntrusiveFrameList<&FrameHot::lru_prev, &FrameHot::lru_next>
template <FrameId FrameHot::*PrevM, FrameId FrameHot::*NextM>
class IntrusiveFrameList {
 public:
  [[nodiscard]] bool empty() const { return head_ == kNoFrame; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] FrameId front() const { return head_; }
  [[nodiscard]] FrameId back() const { return tail_; }

  [[nodiscard]] static FrameId Next(const FrameTable& t, FrameId id) {
    return t.hot(id).*NextM;
  }

  void PushBack(FrameTable& t, FrameId id) {
    FrameHot& f = t.hot(id);
    f.*PrevM = tail_;
    f.*NextM = kNoFrame;
    if (tail_ == kNoFrame) {
      head_ = id;
    } else {
      t.hot(tail_).*NextM = id;
    }
    tail_ = id;
    ++size_;
  }

  void Remove(FrameTable& t, FrameId id) {
    FrameHot& f = t.hot(id);
    const FrameId prev = f.*PrevM;
    const FrameId next = f.*NextM;
    if (prev == kNoFrame) {
      head_ = next;
    } else {
      t.hot(prev).*NextM = next;
    }
    if (next == kNoFrame) {
      tail_ = prev;
    } else {
      t.hot(next).*PrevM = prev;
    }
    f.*PrevM = kNoFrame;
    f.*NextM = kNoFrame;
    --size_;
  }

  // LRU refresh: unlink and re-append at the MRU end.
  void MoveToBack(FrameTable& t, FrameId id) {
    if (tail_ == id) {
      return;
    }
    Remove(t, id);
    PushBack(t, id);
  }

  void Clear() {
    head_ = tail_ = kNoFrame;
    size_ = 0;
  }

  // Checkpoint restore: the links themselves live in the slab arrays and
  // are restored with them; only the head/tail/size triple is list-local.
  void RestoreRaw(FrameId head, FrameId tail, std::uint64_t size) {
    head_ = head;
    tail_ = tail;
    size_ = size;
  }

 private:
  FrameId head_ = kNoFrame;
  FrameId tail_ = kNoFrame;
  std::uint64_t size_ = 0;
};

using LruList = IntrusiveFrameList<&FrameHot::lru_prev, &FrameHot::lru_next>;
using DirtyList = IntrusiveFrameList<&FrameHot::dirty_prev, &FrameHot::dirty_next>;

}  // namespace graysim

#endif  // SRC_MEM_FRAME_TABLE_H_
