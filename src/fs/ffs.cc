#include "src/fs/ffs.h"

#include <algorithm>
#include <cassert>

namespace graysim {

std::string_view FsErrName(FsErr err) {
  switch (err) {
    case FsErr::kOk:
      return "ok";
    case FsErr::kNotFound:
      return "not-found";
    case FsErr::kExists:
      return "exists";
    case FsErr::kNotDir:
      return "not-a-directory";
    case FsErr::kIsDir:
      return "is-a-directory";
    case FsErr::kNoSpace:
      return "no-space";
    case FsErr::kNotEmpty:
      return "not-empty";
    case FsErr::kInvalid:
      return "invalid";
    case FsErr::kIo:
      return "io-error";
    case FsErr::kTimedOut:
      return "timed-out";
    case FsErr::kConnReset:
      return "connection-reset";
  }
  return "unknown";
}

Ffs::Ffs(FsParams params, std::uint64_t disk_capacity_bytes) : params_(params) {
  if (params_.total_blocks == 0) {
    params_.total_blocks = disk_capacity_bytes / params_.block_size;
  }
  const std::uint64_t cg_count = params_.total_blocks / params_.blocks_per_cg;
  assert(cg_count > 0);
  const std::uint32_t inodes_per_block = params_.block_size / params_.inode_size;
  const std::uint64_t inode_table_blocks =
      (params_.inodes_per_cg + inodes_per_block - 1) / inodes_per_block;

  groups_.resize(cg_count);
  inodes_.resize(cg_count * params_.inodes_per_cg + 1);
  for (std::uint64_t c = 0; c < cg_count; ++c) {
    CylGroup& cg = groups_[c];
    cg.first_block = c * params_.blocks_per_cg;
    cg.data_start = cg.first_block + inode_table_blocks;
    cg.data_end = cg.first_block + params_.blocks_per_cg;
    cg.block_used.assign(cg.data_end - cg.data_start, false);
    cg.inode_used.assign(params_.inodes_per_cg, false);
    cg.free_blocks = cg.data_end - cg.data_start;
    cg.free_inodes = params_.inodes_per_cg;
    free_data_blocks_ += cg.free_blocks;
  }

  // Root directory lives in cylinder group 0.
  root_ = AllocInode(0, /*is_dir=*/true);
  assert(root_ != kInvalidInum);
}

// --- path helpers ---

std::vector<std::string> Ffs::SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') {
      ++j;
    }
    if (j > i) {
      parts.emplace_back(path.substr(i, j - i));
    }
    i = j;
  }
  return parts;
}

FsErr Ffs::ResolveInum(std::string_view path, Inum* out) const {
  const std::vector<std::string> parts = SplitPath(path);
  Inum cur = root_;
  for (const std::string& part : parts) {
    const Inode* node = Get(cur);
    if (node == nullptr) {
      return FsErr::kNotFound;
    }
    if (!node->is_dir) {
      return FsErr::kNotDir;
    }
    const auto it = node->children.find(part);
    if (it == node->children.end()) {
      return FsErr::kNotFound;
    }
    cur = it->second;
  }
  *out = cur;
  return FsErr::kOk;
}

FsErr Ffs::ResolveParent(std::string_view path, Inum* parent, std::string* leaf) const {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return FsErr::kInvalid;
  }
  Inum cur = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    const Inode* node = Get(cur);
    if (node == nullptr || !node->is_dir) {
      return FsErr::kNotDir;
    }
    const auto it = node->children.find(parts[i]);
    if (it == node->children.end()) {
      return FsErr::kNotFound;
    }
    cur = it->second;
  }
  const Inode* pnode = Get(cur);
  if (pnode == nullptr || !pnode->is_dir) {
    return FsErr::kNotDir;
  }
  *parent = cur;
  *leaf = parts.back();
  return FsErr::kOk;
}

const Ffs::Inode* Ffs::Get(Inum inum) const {
  if (inum == kInvalidInum || inum >= inodes_.size() || !inodes_[inum].in_use) {
    return nullptr;
  }
  return &inodes_[inum];
}

Ffs::Inode* Ffs::Get(Inum inum) {
  return const_cast<Inode*>(static_cast<const Ffs*>(this)->Get(inum));
}

// --- inode allocation ---

Inum Ffs::AllocInode(std::uint32_t cg_hint, bool is_dir) {
  for (std::uint32_t probe = 0; probe < groups_.size(); ++probe) {
    const std::uint32_t c = (cg_hint + probe) % groups_.size();
    CylGroup& cg = groups_[c];
    if (cg.free_inodes == 0) {
      continue;
    }
    // Lowest free slot first: freed i-numbers are reused immediately, which
    // is what makes i-number order decay under aging (Fig 6).
    for (std::uint32_t slot = 0; slot < params_.inodes_per_cg; ++slot) {
      if (!cg.inode_used[slot]) {
        cg.inode_used[slot] = true;
        --cg.free_inodes;
        const Inum inum = static_cast<Inum>(c * params_.inodes_per_cg + slot + 1);
        Inode& node = inodes_[inum];
        node = Inode{};
        node.in_use = true;
        node.is_dir = is_dir;
        node.cg = c;
        node.creation_seq = ++creation_counter_;
        node.atime = node.mtime = node.ctime = now_hint_;
        return inum;
      }
    }
  }
  return kInvalidInum;
}

void Ffs::FreeInode(Inum inum) {
  Inode* node = Get(inum);
  assert(node != nullptr);
  const std::uint32_t c = (inum - 1) / params_.inodes_per_cg;
  const std::uint32_t slot = (inum - 1) % params_.inodes_per_cg;
  CylGroup& cg = groups_[c];
  assert(cg.inode_used[slot]);
  cg.inode_used[slot] = false;
  ++cg.free_inodes;
  for (const std::uint64_t b : node->blocks) {
    FreeBlock(b);
  }
  *node = Inode{};
}

// --- block allocation ---

std::uint32_t Ffs::CgOfBlock(std::uint64_t block) const {
  return static_cast<std::uint32_t>(block / params_.blocks_per_cg);
}

bool Ffs::BlockIsFree(std::uint64_t block) const {
  const CylGroup& cg = groups_[CgOfBlock(block)];
  if (block < cg.data_start || block >= cg.data_end) {
    return false;  // inode-table block
  }
  return !cg.block_used[block - cg.data_start];
}

void Ffs::MarkBlock(std::uint64_t block, bool used) {
  CylGroup& cg = groups_[CgOfBlock(block)];
  assert(block >= cg.data_start && block < cg.data_end);
  const std::uint64_t idx = block - cg.data_start;
  assert(cg.block_used[idx] != used);
  cg.block_used[idx] = used;
  if (used) {
    --cg.free_blocks;
    --free_data_blocks_;
  } else {
    ++cg.free_blocks;
    ++free_data_blocks_;
  }
}

std::uint64_t Ffs::AllocBlock(Inode& inode, std::uint64_t prev) {
  if (params_.allocator == AllocatorKind::kLogStructured) {
    // LFS: every allocation appends at the log head regardless of which
    // file it belongs to. Holes from deletions are only reused when the log
    // wraps (we model no cleaner). Consequence: files written together sit
    // together, so mtime order — not i-number order — predicts layout.
    for (std::uint64_t k = 0; k < params_.total_blocks; ++k) {
      const std::uint64_t cand = (log_head_ + k) % params_.total_blocks;
      if (BlockIsFree(cand)) {
        MarkBlock(cand, true);
        log_head_ = (cand + 1) % params_.total_blocks;
        return cand;
      }
    }
    return 0;
  }
  // Contiguity preference: the block right after the file's previous block,
  // even across a cylinder-group boundary (skipping inode tables).
  if (prev != 0) {
    for (std::uint64_t cand = prev + 1; cand < params_.total_blocks; ++cand) {
      const CylGroup& cg = groups_[CgOfBlock(cand)];
      if (cand < cg.data_start) {
        cand = cg.data_start - 1;  // skip the inode table, then ++
        continue;
      }
      if (BlockIsFree(cand)) {
        MarkBlock(cand, true);
        return cand;
      }
      break;  // next block taken: fall through to a fresh scan
    }
  }

  // First block of a file (or contiguity broken): scan the file's cylinder
  // group, then spiral outward.
  const std::uint32_t home = inode.cg;
  for (std::uint32_t probe = 0; probe < groups_.size(); ++probe) {
    const std::uint32_t c = (home + probe) % groups_.size();
    CylGroup& cg = groups_[c];
    if (cg.free_blocks == 0) {
      continue;
    }
    const std::uint64_t span = cg.data_end - cg.data_start;
    // Next-fit from the group rotor (FFS-style): new files land after the
    // last allocation, so freed holes behind the rotor are only reused once
    // the rotor wraps. This is what makes aging destroy the i-number/layout
    // correlation (Fig 6) — freed i-numbers are reused low-first while data
    // blocks march forward.
    // kSparse additionally skips a gap after each file's first block, so
    // consecutive files are separated on disk (Solaris-like).
    const std::uint64_t scan_origin = prev == 0 ? cg.rotor : 0;
    for (std::uint64_t k = 0; k < span; ++k) {
      const std::uint64_t rel = (scan_origin + k) % span;
      if (!cg.block_used[rel]) {
        const std::uint64_t block = cg.data_start + rel;
        MarkBlock(block, true);
        if (prev == 0) {
          const std::uint64_t gap = params_.allocator == AllocatorKind::kSparse
                                        ? params_.sparse_file_gap_blocks
                                        : 0;
          cg.rotor = (rel + 1 + gap) % span;
        }
        return block;
      }
    }
  }
  return 0;  // no space
}

void Ffs::FreeBlock(std::uint64_t block) { MarkBlock(block, false); }

std::uint32_t Ffs::PickDirCg() {
  // FFS spreads directories across the disk (it picks the group with the
  // most free space). We stride by ~a quarter of the disk so sibling
  // directories land far apart — which is why random cross-directory access
  // pays long seeks (Fig 5).
  const auto n = static_cast<std::uint32_t>(groups_.size());
  const std::uint32_t stride = std::max<std::uint32_t>(1, n / 4 + 1);
  for (std::uint32_t probe = 0; probe < n; ++probe) {
    const std::uint32_t c = (dir_cg_rotor_ + probe * stride) % n;
    if (groups_[c].free_inodes > 0) {
      dir_cg_rotor_ = (c + stride) % n;
      return c;
    }
  }
  return 0;
}

// --- namespace operations ---

FsErr Ffs::Lookup(std::string_view path, Inum* out) const { return ResolveInum(path, out); }

FsErr Ffs::Create(std::string_view path, Inum* out) {
  Inum parent = kInvalidInum;
  std::string leaf;
  if (const FsErr err = ResolveParent(path, &parent, &leaf); err != FsErr::kOk) {
    return err;
  }
  Inode* pnode = Get(parent);
  if (pnode->children.contains(leaf)) {
    return FsErr::kExists;
  }
  const Inum inum = AllocInode(pnode->cg, /*is_dir=*/false);
  if (inum == kInvalidInum) {
    return FsErr::kNoSpace;
  }
  pnode = Get(parent);  // AllocInode may not invalidate, but be safe
  pnode->children.emplace(leaf, inum);
  pnode->child_order.push_back(leaf);
  pnode->size = pnode->children.size() * 64;
  pnode->mtime = now_hint_;
  if (out != nullptr) {
    *out = inum;
  }
  return FsErr::kOk;
}

FsErr Ffs::Mkdir(std::string_view path, Inum* out) {
  Inum parent = kInvalidInum;
  std::string leaf;
  if (const FsErr err = ResolveParent(path, &parent, &leaf); err != FsErr::kOk) {
    return err;
  }
  Inode* pnode = Get(parent);
  if (pnode->children.contains(leaf)) {
    return FsErr::kExists;
  }
  const Inum inum = AllocInode(PickDirCg(), /*is_dir=*/true);
  if (inum == kInvalidInum) {
    return FsErr::kNoSpace;
  }
  pnode = Get(parent);
  pnode->children.emplace(leaf, inum);
  pnode->child_order.push_back(leaf);
  pnode->size = pnode->children.size() * 64;
  pnode->mtime = now_hint_;
  if (out != nullptr) {
    *out = inum;
  }
  return FsErr::kOk;
}

FsErr Ffs::Unlink(std::string_view path) {
  Inum parent = kInvalidInum;
  std::string leaf;
  if (const FsErr err = ResolveParent(path, &parent, &leaf); err != FsErr::kOk) {
    return err;
  }
  Inode* pnode = Get(parent);
  const auto it = pnode->children.find(leaf);
  if (it == pnode->children.end()) {
    return FsErr::kNotFound;
  }
  const Inode* node = Get(it->second);
  if (node->is_dir) {
    return FsErr::kIsDir;
  }
  FreeInode(it->second);
  pnode->children.erase(it);
  std::erase(pnode->child_order, leaf);
  pnode->size = pnode->children.size() * 64;
  pnode->mtime = now_hint_;
  return FsErr::kOk;
}

FsErr Ffs::Rmdir(std::string_view path) {
  Inum parent = kInvalidInum;
  std::string leaf;
  if (const FsErr err = ResolveParent(path, &parent, &leaf); err != FsErr::kOk) {
    return err;
  }
  Inode* pnode = Get(parent);
  const auto it = pnode->children.find(leaf);
  if (it == pnode->children.end()) {
    return FsErr::kNotFound;
  }
  const Inode* node = Get(it->second);
  if (!node->is_dir) {
    return FsErr::kNotDir;
  }
  if (!node->children.empty()) {
    return FsErr::kNotEmpty;
  }
  FreeInode(it->second);
  pnode->children.erase(it);
  std::erase(pnode->child_order, leaf);
  pnode->size = pnode->children.size() * 64;
  pnode->mtime = now_hint_;
  return FsErr::kOk;
}

FsErr Ffs::Rename(std::string_view from, std::string_view to) {
  Inum from_parent = kInvalidInum;
  Inum to_parent = kInvalidInum;
  std::string from_leaf;
  std::string to_leaf;
  if (const FsErr err = ResolveParent(from, &from_parent, &from_leaf); err != FsErr::kOk) {
    return err;
  }
  if (const FsErr err = ResolveParent(to, &to_parent, &to_leaf); err != FsErr::kOk) {
    return err;
  }
  Inode* fp = Get(from_parent);
  const auto it = fp->children.find(from_leaf);
  if (it == fp->children.end()) {
    return FsErr::kNotFound;
  }
  const Inum moving = it->second;
  Inode* tp = Get(to_parent);
  if (const auto existing = tp->children.find(to_leaf); existing != tp->children.end()) {
    // POSIX rename over an existing file replaces it (files only).
    const Inode* target = Get(existing->second);
    const Inode* source = Get(moving);
    if (target->is_dir != source->is_dir) {
      return target->is_dir ? FsErr::kIsDir : FsErr::kNotDir;
    }
    if (target->is_dir && !target->children.empty()) {
      return FsErr::kNotEmpty;
    }
    FreeInode(existing->second);
    tp->children.erase(existing);
    std::erase(tp->child_order, to_leaf);
  }
  fp->children.erase(it);
  std::erase(fp->child_order, from_leaf);
  fp->size = fp->children.size() * 64;
  fp->mtime = now_hint_;
  tp->children.emplace(to_leaf, moving);
  tp->child_order.push_back(to_leaf);
  tp->size = tp->children.size() * 64;
  tp->mtime = now_hint_;
  return FsErr::kOk;
}

FsErr Ffs::ListDir(std::string_view path, std::vector<DirEntryInfo>* out) const {
  Inum inum = kInvalidInum;
  if (const FsErr err = ResolveInum(path, &inum); err != FsErr::kOk) {
    return err;
  }
  const Inode* node = Get(inum);
  if (!node->is_dir) {
    return FsErr::kNotDir;
  }
  out->clear();
  out->reserve(node->child_order.size());
  for (const std::string& name : node->child_order) {
    const Inum child = node->children.at(name);
    out->push_back(DirEntryInfo{name, child, Get(child)->is_dir});
  }
  return FsErr::kOk;
}

// --- inode operations ---

FsErr Ffs::GetAttr(Inum inum, InodeAttr* out) const {
  const Inode* node = Get(inum);
  if (node == nullptr) {
    return FsErr::kNotFound;
  }
  out->inum = inum;
  out->is_dir = node->is_dir;
  out->size = node->size;
  out->blocks = node->blocks.size();
  out->atime = node->atime;
  out->mtime = node->mtime;
  out->ctime = node->ctime;
  return FsErr::kOk;
}

FsErr Ffs::GetAttrPath(std::string_view path, InodeAttr* out) const {
  Inum inum = kInvalidInum;
  if (const FsErr err = ResolveInum(path, &inum); err != FsErr::kOk) {
    return err;
  }
  return GetAttr(inum, out);
}

FsErr Ffs::SetTimes(Inum inum, Nanos atime, Nanos mtime) {
  Inode* node = Get(inum);
  if (node == nullptr) {
    return FsErr::kNotFound;
  }
  node->atime = atime;
  node->mtime = mtime;
  return FsErr::kOk;
}

void Ffs::TouchAtime(Inum inum, Nanos now) {
  if (Inode* node = Get(inum); node != nullptr) {
    node->atime = now;
  }
}

FsErr Ffs::Resize(Inum inum, std::uint64_t new_size, Nanos now) {
  Inode* node = Get(inum);
  if (node == nullptr) {
    return FsErr::kNotFound;
  }
  if (node->is_dir) {
    return FsErr::kIsDir;
  }
  const std::uint64_t bs = params_.block_size;
  const std::uint64_t want_blocks = (new_size + bs - 1) / bs;
  while (node->blocks.size() < want_blocks) {
    const std::uint64_t prev = node->blocks.empty() ? 0 : node->blocks.back();
    const std::uint64_t b = AllocBlock(*node, prev);
    if (b == 0) {
      return FsErr::kNoSpace;
    }
    node->blocks.push_back(b);
  }
  while (node->blocks.size() > want_blocks) {
    FreeBlock(node->blocks.back());
    node->blocks.pop_back();
  }
  node->size = new_size;
  node->mtime = now;
  return FsErr::kOk;
}

// --- geometry ---

FsErr Ffs::BlockOf(Inum inum, std::uint64_t file_block, std::uint64_t* out) const {
  const Inode* node = Get(inum);
  if (node == nullptr) {
    return FsErr::kNotFound;
  }
  if (file_block >= node->blocks.size()) {
    return FsErr::kInvalid;
  }
  *out = node->blocks[file_block];
  return FsErr::kOk;
}

std::uint64_t Ffs::InodeBlockOf(Inum inum) const {
  const std::uint32_t c = (inum - 1) / params_.inodes_per_cg;
  const std::uint32_t slot = (inum - 1) % params_.inodes_per_cg;
  const std::uint32_t inodes_per_block = params_.block_size / params_.inode_size;
  return groups_[c].first_block + slot / inodes_per_block;
}

FsErr Ffs::DirBlocks(Inum dir_inum, std::vector<std::uint64_t>* out) const {
  const Inode* node = Get(dir_inum);
  if (node == nullptr) {
    return FsErr::kNotFound;
  }
  if (!node->is_dir) {
    return FsErr::kNotDir;
  }
  // Directory entries are modeled as living in the group's inode-table
  // region alongside the inode (one block per 64 entries).
  out->clear();
  const std::uint64_t entry_blocks =
      std::max<std::uint64_t>(1, (node->children.size() * 64 + params_.block_size - 1) /
                                     params_.block_size);
  const std::uint64_t base = InodeBlockOf(dir_inum);
  for (std::uint64_t i = 0; i < entry_blocks; ++i) {
    out->push_back(base + i);
  }
  return FsErr::kOk;
}

// --- introspection ---

double Ffs::ContiguityOf(Inum inum) const {
  const Inode* node = Get(inum);
  if (node == nullptr || node->blocks.size() < 2) {
    return 1.0;
  }
  std::uint64_t contiguous = 0;
  for (std::size_t i = 1; i < node->blocks.size(); ++i) {
    if (node->blocks[i] == node->blocks[i - 1] + 1) {
      ++contiguous;
    }
  }
  return static_cast<double>(contiguous) / static_cast<double>(node->blocks.size() - 1);
}

std::uint64_t Ffs::FirstBlockOf(Inum inum) const {
  const Inode* node = Get(inum);
  if (node == nullptr || node->blocks.empty()) {
    return 0;
  }
  return node->blocks.front();
}

std::uint64_t Ffs::creation_seq_of(Inum inum) const {
  const Inode* node = Get(inum);
  return node == nullptr ? 0 : node->creation_seq;
}

namespace {

void PutBits(ByteWriter& w, const std::vector<bool>& bits) {
  w.U64(bits.size());
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    acc |= static_cast<std::uint8_t>(bits[i] ? 1 : 0) << (i % 8);
    if (i % 8 == 7) {
      w.U8(acc);
      acc = 0;
    }
  }
  if (bits.size() % 8 != 0) {
    w.U8(acc);
  }
}

bool GetBits(ByteReader& r, std::vector<bool>* bits) {
  const std::uint64_t n = r.Count(0);
  if ((n + 7) / 8 > r.remaining()) {
    return false;
  }
  bits->assign(n, false);
  std::uint8_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      acc = r.U8();
    }
    (*bits)[i] = ((acc >> (i % 8)) & 1) != 0;
  }
  return r.ok();
}

}  // namespace

void Ffs::SerializeTo(ByteWriter& w) const {
  w.U32(params_.block_size);
  w.U64(params_.total_blocks);
  w.U64(params_.blocks_per_cg);
  w.U32(params_.inodes_per_cg);
  w.U32(params_.inode_size);
  w.U8(static_cast<std::uint8_t>(params_.allocator));
  w.U32(params_.sparse_file_gap_blocks);

  w.U64(groups_.size());
  for (const CylGroup& g : groups_) {
    w.U64(g.first_block);
    w.U64(g.data_start);
    w.U64(g.data_end);
    PutBits(w, g.block_used);
    PutBits(w, g.inode_used);
    w.U64(g.free_blocks);
    w.U32(g.free_inodes);
    w.U64(g.rotor);
  }

  w.U64(inodes_.size());
  for (const Inode& ino : inodes_) {
    w.Bool(ino.in_use);
    if (!ino.in_use) {
      continue;
    }
    w.Bool(ino.is_dir);
    w.U64(ino.size);
    w.I64(ino.atime);
    w.I64(ino.mtime);
    w.I64(ino.ctime);
    w.U64(ino.creation_seq);
    w.U32(ino.cg);
    w.U64(ino.blocks.size());
    for (const std::uint64_t b : ino.blocks) {
      w.U64(b);
    }
    // child_order is creation order; children re-derives from (name, inum)
    // pairs written in that same order.
    w.U64(ino.child_order.size());
    for (const std::string& name : ino.child_order) {
      w.Str(name);
      const auto it = ino.children.find(name);
      w.U32(it == ino.children.end() ? kInvalidInum : it->second);
    }
  }

  w.U32(root_);
  w.U64(free_data_blocks_);
  w.U64(creation_counter_);
  w.U32(dir_cg_rotor_);
  w.U64(log_head_);
  w.I64(now_hint_);
}

bool Ffs::DeserializeFrom(ByteReader& r) {
  params_.block_size = r.U32();
  params_.total_blocks = r.U64();
  params_.blocks_per_cg = r.U64();
  params_.inodes_per_cg = r.U32();
  params_.inode_size = r.U32();
  params_.allocator = static_cast<AllocatorKind>(r.U8());
  params_.sparse_file_gap_blocks = r.U32();

  groups_.clear();
  groups_.resize(r.Count(32));
  for (CylGroup& g : groups_) {
    g.first_block = r.U64();
    g.data_start = r.U64();
    g.data_end = r.U64();
    if (!GetBits(r, &g.block_used) || !GetBits(r, &g.inode_used)) {
      return false;
    }
    g.free_blocks = r.U64();
    g.free_inodes = r.U32();
    g.rotor = r.U64();
  }

  inodes_.clear();
  inodes_.resize(r.Count(1));
  for (Inode& ino : inodes_) {
    ino.in_use = r.Bool();
    if (!ino.in_use) {
      continue;
    }
    ino.is_dir = r.Bool();
    ino.size = r.U64();
    ino.atime = r.I64();
    ino.mtime = r.I64();
    ino.ctime = r.I64();
    ino.creation_seq = r.U64();
    ino.cg = r.U32();
    ino.blocks.resize(r.Count(8));
    for (std::uint64_t& b : ino.blocks) {
      b = r.U64();
    }
    const std::uint64_t n_children = r.Count(9);  // name length + inum
    ino.child_order.clear();
    ino.child_order.reserve(n_children);
    ino.children.clear();
    for (std::uint64_t i = 0; i < n_children; ++i) {
      std::string name = r.Str();
      const Inum child = r.U32();
      ino.children.emplace(name, child);
      ino.child_order.push_back(std::move(name));
    }
  }

  root_ = r.U32();
  free_data_blocks_ = r.U64();
  creation_counter_ = r.U64();
  dir_cg_rotor_ = r.U32();
  log_head_ = r.U64();
  now_hint_ = r.I64();
  return r.ok();
}

}  // namespace graysim
