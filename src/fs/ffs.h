// FFS-derived file system model: cylinder groups, inode tables, creation-order
// i-numbers, first-fit block allocation.
//
// FLDC's gray-box inferences depend on precisely the allocator properties
// modeled here:
//  * files created in the same directory land in the same cylinder group;
//  * within a clean directory, i-number order matches data-block layout;
//  * deleted inodes are reused lowest-first, so aging gradually destroys the
//    i-number/layout correlation;
//  * a Solaris-like "sparse" allocator leaves inter-file gaps, so layout-order
//    reads still pay rotational delay (paper §4.2.3).
//
// The class manages metadata only (the simulation never stores file bytes);
// data timing flows through the page cache and disk model in src/os.
#ifndef SRC_FS_FFS_H_
#define SRC_FS_FFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/byte_io.h"
#include "src/sim/clock.h"

namespace graysim {

using Inum = std::uint32_t;
constexpr Inum kInvalidInum = 0;

enum class FsErr : int {
  kOk = 0,
  kNotFound,
  kExists,
  kNotDir,
  kIsDir,
  kNoSpace,
  kNotEmpty,
  kInvalid,
  // Transient device error (EIO). Never produced by the file system itself;
  // injected by the chaos layer (src/os/chaos_engine.h) to model media
  // retries and flaky transport. Appended after kInvalid: FsErr values are
  // wire-frozen in negated-errno form across the SysApi boundary.
  kIo,
  // Blocking deadline expired (ETIMEDOUT): NetRecv with no arrival in time.
  // Like kIo, appended last to keep earlier values wire-frozen.
  kTimedOut,
  // Peer endpoint died under the receiver (ECONNRESET): the machine crashed
  // and tore down its endpoints while a fiber was blocked in NetRecv.
  // Appended last to keep earlier values wire-frozen.
  kConnReset,
};

[[nodiscard]] std::string_view FsErrName(FsErr err);

enum class AllocatorKind : std::uint8_t {
  kPacked,         // Linux/NetBSD-like: files packed back to back
  kSparse,         // Solaris-like: inter-file gaps
  kLogStructured,  // LFS-like: all writes append at the log head, so
                   // *temporal* write order == spatial order (paper §4.2.5)
};

struct FsParams {
  std::uint32_t block_size = 4096;
  std::uint64_t total_blocks = 0;    // derived from disk capacity when 0
  std::uint64_t blocks_per_cg = 8192;  // 32 MB cylinder groups
  std::uint32_t inodes_per_cg = 256;
  std::uint32_t inode_size = 128;    // 32 inodes per 4 KB block
  AllocatorKind allocator = AllocatorKind::kPacked;
  std::uint32_t sparse_file_gap_blocks = 12;  // gap left between files (kSparse)
};

struct InodeAttr {
  Inum inum = kInvalidInum;
  bool is_dir = false;
  std::uint64_t size = 0;
  std::uint64_t blocks = 0;
  Nanos atime = 0;
  Nanos mtime = 0;
  Nanos ctime = 0;
};

struct DirEntryInfo {
  std::string name;
  Inum inum = kInvalidInum;
  bool is_dir = false;
};

// File system metadata manager for one disk.
class Ffs {
 public:
  Ffs(FsParams params, std::uint64_t disk_capacity_bytes);

  // --- namespace operations (paths are absolute, '/'-separated) ---
  [[nodiscard]] FsErr Lookup(std::string_view path, Inum* out) const;
  FsErr Create(std::string_view path, Inum* out);
  FsErr Mkdir(std::string_view path, Inum* out);
  FsErr Unlink(std::string_view path);
  FsErr Rmdir(std::string_view path);
  FsErr Rename(std::string_view from, std::string_view to);
  [[nodiscard]] FsErr ListDir(std::string_view path, std::vector<DirEntryInfo>* out) const;

  // --- inode operations ---
  [[nodiscard]] FsErr GetAttr(Inum inum, InodeAttr* out) const;
  [[nodiscard]] FsErr GetAttrPath(std::string_view path, InodeAttr* out) const;
  FsErr SetTimes(Inum inum, Nanos atime, Nanos mtime);
  void TouchAtime(Inum inum, Nanos now);
  // Grows or shrinks the file, allocating/freeing blocks.
  FsErr Resize(Inum inum, std::uint64_t new_size, Nanos now);

  // --- block geometry (used by the Os layer to drive the disk model) ---
  // Disk block number backing file block `file_block` of `inum`.
  [[nodiscard]] FsErr BlockOf(Inum inum, std::uint64_t file_block, std::uint64_t* out) const;
  // Byte offset on disk of an fs block.
  [[nodiscard]] std::uint64_t DiskOffsetOfBlock(std::uint64_t fs_block) const {
    return fs_block * params_.block_size;
  }
  // Disk block holding the on-disk inode for `inum` (for stat-cost modeling).
  [[nodiscard]] std::uint64_t InodeBlockOf(Inum inum) const;
  // Blocks holding directory entries of `dir_inum`.
  [[nodiscard]] FsErr DirBlocks(Inum dir_inum, std::vector<std::uint64_t>* out) const;

  [[nodiscard]] const FsParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t free_blocks() const { return free_data_blocks_; }
  [[nodiscard]] Inum root() const { return root_; }

  // --- introspection for tests/benches (not visible to gray-box layers) ---
  // Fraction of adjacent file-block pairs that are contiguous on disk.
  [[nodiscard]] double ContiguityOf(Inum inum) const;
  // Disk block of the first data block, or 0 if empty.
  [[nodiscard]] std::uint64_t FirstBlockOf(Inum inum) const;
  [[nodiscard]] std::uint64_t creation_seq_of(Inum inum) const;

  void set_clock_hint(Nanos now) { now_hint_ = now; }

  // --- crash recovery (Os::Recover) ---
  // Number of cylinder groups, and the metadata block range
  // [first_block, data_start) of group `g` — superblock copy plus inode
  // table, the blocks a post-crash consistency scan must read.
  [[nodiscard]] std::size_t GroupCount() const { return groups_.size(); }
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> GroupMetaRange(std::size_t g) const {
    return {groups_[g].first_block, groups_[g].data_start};
  }

  // Durable checkpoint serialization (machine_image_io). Writes the complete
  // metadata state — geometry params, group bitmaps, inode table including
  // directory payloads — in deterministic (index / sorted-map) order.
  void SerializeTo(ByteWriter& w) const;
  [[nodiscard]] bool DeserializeFrom(ByteReader& r);

  // Rough heap footprint in bytes (snapshot-size accounting; directory
  // payload strings are counted structurally, not byte-exactly).
  [[nodiscard]] std::uint64_t ApproxBytes() const {
    std::uint64_t bytes = sizeof(Ffs);
    for (const Inode& ino : inodes_) {
      bytes += sizeof(Inode) + ino.blocks.capacity() * sizeof(std::uint64_t) +
               ino.child_order.capacity() * sizeof(std::string);
    }
    for (const CylGroup& g : groups_) {
      bytes += sizeof(CylGroup) + g.block_used.capacity() / 8 + g.inode_used.capacity() / 8;
    }
    return bytes;
  }

 private:
  struct Inode {
    bool in_use = false;
    bool is_dir = false;
    std::uint64_t size = 0;
    Nanos atime = 0;
    Nanos mtime = 0;
    Nanos ctime = 0;
    std::uint64_t creation_seq = 0;
    std::uint32_t cg = 0;
    std::vector<std::uint64_t> blocks;  // disk block numbers, one per file block
    // Directory payload (metadata only; timing modeled via DirBlocks()).
    std::map<std::string, Inum, std::less<>> children;
    std::vector<std::string> child_order;  // readdir order = creation order
  };

  struct CylGroup {
    std::uint64_t first_block = 0;      // first block of the group
    std::uint64_t data_start = 0;       // first data block (after inode table)
    std::uint64_t data_end = 0;         // one past last data block
    std::vector<bool> block_used;       // indexed by block - data_start
    std::vector<bool> inode_used;       // indexed by inode slot
    std::uint64_t free_blocks = 0;
    std::uint32_t free_inodes = 0;
    std::uint64_t rotor = 0;            // next-fit start for kSparse (relative)
  };

  [[nodiscard]] static std::vector<std::string> SplitPath(std::string_view path);
  [[nodiscard]] FsErr ResolveParent(std::string_view path, Inum* parent,
                                    std::string* leaf) const;
  [[nodiscard]] FsErr ResolveInum(std::string_view path, Inum* out) const;

  [[nodiscard]] const Inode* Get(Inum inum) const;
  [[nodiscard]] Inode* Get(Inum inum);

  // Allocates an inode in (preferably) cylinder group `cg_hint`, lowest free
  // slot first (FFS reuses freed inodes lowest-first — key to Fig 6 aging).
  [[nodiscard]] Inum AllocInode(std::uint32_t cg_hint, bool is_dir);
  void FreeInode(Inum inum);

  // Allocates one data block for `inode`; `prev` is the previous block of
  // the file (contiguity preference) or 0 for the first block.
  [[nodiscard]] std::uint64_t AllocBlock(Inode& inode, std::uint64_t prev);
  void FreeBlock(std::uint64_t block);

  [[nodiscard]] std::uint32_t CgOfBlock(std::uint64_t block) const;
  [[nodiscard]] bool BlockIsFree(std::uint64_t block) const;
  void MarkBlock(std::uint64_t block, bool used);

  // Picks the cylinder group for a new directory (round-robin, FFS-style
  // load spreading).
  [[nodiscard]] std::uint32_t PickDirCg();

  FsParams params_;
  std::vector<CylGroup> groups_;
  std::vector<Inode> inodes_;  // indexed by inum (slot 0 unused)
  Inum root_ = kInvalidInum;
  std::uint64_t free_data_blocks_ = 0;
  std::uint64_t creation_counter_ = 0;
  std::uint32_t dir_cg_rotor_ = 0;
  std::uint64_t log_head_ = 0;  // kLogStructured global append cursor
  Nanos now_hint_ = 0;
};

}  // namespace graysim

#endif  // SRC_FS_FFS_H_
