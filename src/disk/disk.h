// Mechanical disk model: seek curve + rotational latency + media transfer.
//
// Models an IBM 9LZX-class drive (the disks in the paper's testbed): ~5 ms
// average seek, 10k RPM (3 ms average rotational latency), ~20 MB/s media
// rate. The model keeps the head position between requests so contiguous
// accesses pay transfer cost only — the property both FLDC (layout matters)
// and FCCD (sequential access-unit reads amortize seeks) depend on.
#ifndef SRC_DISK_DISK_H_
#define SRC_DISK_DISK_H_

#include <cstdint>
#include <string>

#include "src/sim/clock.h"

namespace graysim {

struct DiskGeometry {
  std::uint64_t capacity_bytes = 9ULL * 1024 * 1024 * 1024;  // 9 GB
  std::uint32_t rpm = 10'000;
  // Any seek costs at least this much (arm settle dominates short seeks,
  // which is why sorting by directory only buys 10-25% in the paper).
  double min_seek_ms = 5.0;
  double full_stroke_seek_ms = 12.0;
  double transfer_mb_per_s = 20.0;
  double controller_overhead_us = 150.0;
  // Requests within this byte distance of the head are same-cylinder: no
  // seek, but rotational latency still applies.
  std::uint64_t cylinder_span_bytes = 128 * 1024;
  // A contiguous request issued as a separate command still misses part of
  // the rotation window while the host turns the I/O around.
  double inter_request_rotation_miss_ms = 0.7;

  // The paper's testbed drive.
  [[nodiscard]] static DiskGeometry Ibm9Lzx() { return DiskGeometry{}; }
};

// Aggregate statistics, exposed for tests and benches (ground truth — the
// gray-box layers never look at these).
struct DiskStats {
  std::uint64_t requests = 0;
  std::uint64_t sequential_requests = 0;  // no seek, no rotation
  std::uint64_t seeks = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  Nanos busy_time = 0;
};

// A single disk. Access() returns the service time of a contiguous request
// and updates the head position.
class Disk {
 public:
  Disk(DiskGeometry geometry, int disk_id);

  // Service time for a contiguous run of `bytes` at byte offset `offset`.
  [[nodiscard]] Nanos Access(std::uint64_t offset, std::uint64_t bytes, bool is_write);

  // Extends the request currently at the tail of the device queue by a
  // contiguous run starting exactly at the head position: the controller
  // keeps streaming, so only media transfer is charged (no controller
  // overhead, no rotation miss). Callers (DiskQueue) guarantee contiguity.
  [[nodiscard]] Nanos SequentialExtend(std::uint64_t offset, std::uint64_t bytes, bool is_write);

  [[nodiscard]] const DiskGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const DiskStats& stats() const { return stats_; }
  [[nodiscard]] int id() const { return disk_id_; }
  void ResetStats() { stats_ = DiskStats{}; }

  // Component costs, exposed so microbenchmarks in tests can validate the
  // model against first principles.
  [[nodiscard]] Nanos SeekTime(std::uint64_t from, std::uint64_t to) const;
  [[nodiscard]] Nanos RotationalLatency() const;  // average: half a revolution
  [[nodiscard]] Nanos TransferTime(std::uint64_t bytes) const;

  // --- checkpoint surface (machine_image_io) ------------------------------
  // Head position is mechanical state: the next request's seek cost depends
  // on it, so a restore that forgot it would diverge timing immediately.
  [[nodiscard]] std::uint64_t head_pos() const { return head_pos_; }
  [[nodiscard]] bool head_valid() const { return head_valid_; }
  void RestoreState(std::uint64_t head_pos, bool head_valid, const DiskStats& stats) {
    head_pos_ = head_pos;
    head_valid_ = head_valid;
    stats_ = stats;
  }

 private:
  DiskGeometry geometry_;
  int disk_id_;
  std::uint64_t head_pos_ = 0;
  bool head_valid_ = false;
  DiskStats stats_;
};

}  // namespace graysim

#endif  // SRC_DISK_DISK_H_
