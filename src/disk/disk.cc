#include "src/disk/disk.h"

#include <cassert>
#include <cmath>

namespace graysim {

Disk::Disk(DiskGeometry geometry, int disk_id) : geometry_(geometry), disk_id_(disk_id) {}

Nanos Disk::SeekTime(std::uint64_t from, std::uint64_t to) const {
  const std::uint64_t dist = from > to ? from - to : to - from;
  if (dist == 0) {
    return 0;
  }
  if (dist <= geometry_.cylinder_span_bytes) {
    return 0;  // same cylinder: settle cost folded into rotation
  }
  // Classic sqrt seek curve between the minimum (settle-dominated) seek and
  // the full stroke.
  const double frac =
      static_cast<double>(dist) / static_cast<double>(geometry_.capacity_bytes);
  const double ms = geometry_.min_seek_ms +
                    (geometry_.full_stroke_seek_ms - geometry_.min_seek_ms) *
                        std::sqrt(frac);
  return Millis(ms);
}

Nanos Disk::RotationalLatency() const {
  // Average latency: half a revolution.
  const double rev_ns = 60.0 * 1e9 / geometry_.rpm;
  return static_cast<Nanos>(rev_ns / 2.0);
}

Nanos Disk::TransferTime(std::uint64_t bytes) const {
  const double ns_per_byte = 1e9 / (geometry_.transfer_mb_per_s * 1024.0 * 1024.0);
  return static_cast<Nanos>(static_cast<double>(bytes) * ns_per_byte);
}

Nanos Disk::SequentialExtend(std::uint64_t offset, std::uint64_t bytes, bool is_write) {
  assert(head_valid_ && offset == head_pos_);
  assert(offset + bytes <= geometry_.capacity_bytes);
  const Nanos cost = TransferTime(bytes);
  head_pos_ = offset + bytes;
  ++stats_.requests;
  ++stats_.sequential_requests;
  if (is_write) {
    stats_.bytes_written += bytes;
  } else {
    stats_.bytes_read += bytes;
  }
  stats_.busy_time += cost;
  return cost;
}

Nanos Disk::Access(std::uint64_t offset, std::uint64_t bytes, bool is_write) {
  assert(offset + bytes <= geometry_.capacity_bytes);
  Nanos cost = Micros(geometry_.controller_overhead_us);
  const bool sequential = head_valid_ && offset == head_pos_;
  if (!sequential) {
    const Nanos seek = head_valid_ ? SeekTime(head_pos_, offset) : SeekTime(0, offset);
    if (seek > 0) {
      ++stats_.seeks;
    }
    cost += seek + RotationalLatency();
  } else {
    // Contiguous with the previous request, but issued as a new command:
    // the sector has partly rotated past by the time the command arrives.
    cost += Millis(geometry_.inter_request_rotation_miss_ms);
    ++stats_.sequential_requests;
  }
  cost += TransferTime(bytes);

  head_pos_ = offset + bytes;
  head_valid_ = true;
  ++stats_.requests;
  if (is_write) {
    stats_.bytes_written += bytes;
  } else {
    stats_.bytes_read += bytes;
  }
  stats_.busy_time += cost;
  return cost;
}

}  // namespace graysim
