// Per-device FCFS request queue with completion events.
//
// Submit() computes the request's service time against the mechanical model,
// appends it to the device's busy timeline (requests to one device
// serialize; different devices proceed in parallel), and schedules a
// completion event on the simulation's event queue. The submitter decides
// whether to block on the returned completion time (demand reads) or walk
// away (write-behind, readahead, swap-out) — that split is what makes
// eviction and prefetch I/O truly asynchronous.
//
// Contiguous-run coalescing: a request that starts exactly where the queue's
// tail request ends, in the same transfer direction, is merged into that
// tail — the controller keeps streaming, charging transfer time only. This
// models command queuing absorbing back-to-back sequential submissions
// (readahead chains, clustered writeback).
#ifndef SRC_DISK_DISK_QUEUE_H_
#define SRC_DISK_DISK_QUEUE_H_

#include <cstdint>
#include <functional>

#include "src/disk/disk.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/inline_fn.h"

namespace graysim {

class DiskQueue {
 public:
  // `jitter` (optional) perturbs each request's service time; the Os wires
  // its seeded timing jitter through it. Installed once at setup, so the
  // std::function indirection costs nothing per request.
  using Jitter = std::function<Nanos(Nanos)>;
  // `service_scale` (optional) rescales the already-jittered service time;
  // the chaos layer wires degraded-window / latency-spike multipliers
  // through it. Installed only while a FaultPlan is armed, so the unarmed
  // hot path pays a single null check.
  using ServiceScale = std::function<Nanos(Nanos)>;

  // Completion callbacks are stored inline (nested inside the completion
  // event), so submitting a request never allocates. 48 bytes fits the Os's
  // read-fill closure (this + inum + page range + token + flag).
  using CompletionFn = InlineFn<48>;

  DiskQueue(Disk* disk, SimClock* clock, EventQueue* events)
      : disk_(disk), clock_(clock), events_(events) {}

  DiskQueue(const DiskQueue&) = delete;
  DiskQueue& operator=(const DiskQueue&) = delete;

  void set_jitter(Jitter jitter) { jitter_ = std::move(jitter); }
  void set_service_scale(ServiceScale scale) { service_scale_ = std::move(scale); }

  // Enqueues a contiguous request of `bytes` at byte `offset`. Returns its
  // completion time; `on_complete` (may be null) runs at that instant in
  // Band::kCompletion — before any process waking at the same time.
  Nanos Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write,
               CompletionFn on_complete);

  // Timeline position after the last queued request completes.
  [[nodiscard]] Nanos busy_until() const { return busy_until_; }
  [[nodiscard]] std::uint64_t depth() const { return depth_; }
  [[nodiscard]] std::uint64_t max_depth() const { return max_depth_; }
  [[nodiscard]] std::uint64_t total_requests() const { return total_requests_; }
  [[nodiscard]] std::uint64_t coalesced_requests() const { return coalesced_requests_; }

  // Optional trace sink + the track ("disk/N" row) this device's request
  // lifecycle events land on. Each request becomes an "X" span over its
  // service window, plus a "queue" instant when it had to wait behind the
  // device's busy timeline.
  void set_trace(obs::TraceSink* trace, std::uint32_t track) {
    trace_ = trace;
    track_ = track;
  }

  // Per-request service times (ns), recorded on every Submit. Alloc-free.
  [[nodiscard]] const obs::Histogram& service_hist() const { return service_hist_; }

 private:
  Disk* disk_;
  SimClock* clock_;
  EventQueue* events_;
  Jitter jitter_;
  ServiceScale service_scale_;
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Histogram service_hist_;
  Nanos busy_until_ = 0;
  // End offset + direction of the tail request, for coalescing.
  std::uint64_t tail_end_offset_ = 0;
  bool tail_is_write_ = false;
  std::uint64_t depth_ = 0;
  std::uint64_t max_depth_ = 0;
  std::uint64_t total_requests_ = 0;
  std::uint64_t coalesced_requests_ = 0;
};

}  // namespace graysim

#endif  // SRC_DISK_DISK_QUEUE_H_
