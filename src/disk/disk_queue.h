// Per-disk FCFS request queue: the generic SimDevice queueing discipline
// bound to the mechanical disk model.
//
// All queueing behavior (busy-timeline serialization, contiguous-run
// coalescing, completion events in Band::kCompletion, trace spans, the
// service histogram) lives in SimDevice. DiskQueue contributes only the
// physics: a coalesced request extends the current sequential stream
// (transfer time only), anything else pays the full seek+rotate+transfer
// Access() cost.
#ifndef SRC_DISK_DISK_QUEUE_H_
#define SRC_DISK_DISK_QUEUE_H_

#include <cstdint>
#include <utility>

#include "src/disk/disk.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_device.h"

namespace graysim {

class DiskQueue : private SimDevice::ServiceModel {
 public:
  using Jitter = SimDevice::Jitter;
  using ServiceScale = SimDevice::ServiceScale;
  using CompletionFn = SimDevice::CompletionFn;

  DiskQueue(Disk* disk, SimClock* clock, EventQueue* events)
      : disk_(disk), device_(this, clock, events) {}

  DiskQueue(const DiskQueue&) = delete;
  DiskQueue& operator=(const DiskQueue&) = delete;

  void set_jitter(Jitter jitter) { device_.set_jitter(std::move(jitter)); }
  void set_service_scale(ServiceScale scale) { device_.set_service_scale(std::move(scale)); }

  // Enqueues a contiguous request of `bytes` at byte `offset`. Returns its
  // completion time; `on_complete` (may be null) runs at that instant in
  // Band::kCompletion — before any process waking at the same time. The
  // desc overload records a caller-supplied snapshot descriptor for the
  // completion event (needed when on_complete is non-null).
  Nanos Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write,
               CompletionFn on_complete) {
    return device_.Submit(offset, bytes, is_write, std::move(on_complete));
  }
  Nanos Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write,
               CompletionFn on_complete, const EventDesc& desc) {
    return device_.Submit(offset, bytes, is_write, std::move(on_complete), desc);
  }

  // The underlying generic device, for snapshot capture/restore and event
  // rebuild (the queueing state lives there, not here).
  [[nodiscard]] SimDevice& device() { return device_; }
  [[nodiscard]] const SimDevice& device() const { return device_; }

  // Timeline position after the last queued request completes.
  [[nodiscard]] Nanos busy_until() const { return device_.busy_until(); }
  [[nodiscard]] std::uint64_t depth() const { return device_.depth(); }
  [[nodiscard]] std::uint64_t max_depth() const { return device_.max_depth(); }
  [[nodiscard]] std::uint64_t total_requests() const { return device_.total_requests(); }
  [[nodiscard]] std::uint64_t coalesced_requests() const { return device_.coalesced_requests(); }

  void set_trace(obs::TraceSink* trace, std::uint32_t track) { device_.set_trace(trace, track); }

  // Per-request service times (ns), recorded on every Submit. Alloc-free.
  [[nodiscard]] const obs::Histogram& service_hist() const { return device_.service_hist(); }

 private:
  [[nodiscard]] Nanos Service(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                              bool coalesce) override {
    return coalesce ? disk_->SequentialExtend(offset, bytes, is_write)
                    : disk_->Access(offset, bytes, is_write);
  }

  Disk* disk_;
  SimDevice device_;
};

}  // namespace graysim

#endif  // SRC_DISK_DISK_QUEUE_H_
