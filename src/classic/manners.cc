#include "src/classic/manners.h"

#include <algorithm>
#include <vector>

#include "src/gray/toolbox/stats.h"

namespace grayclassic {

namespace {

// CPU model: in a window, if both processes run, each gets half the ticks
// (symmetric degradation — the gray-box assumption); alone, a process gets
// them all.
struct WindowOutcome {
  std::uint64_t bg = 0;
  std::uint64_t fg = 0;
};

WindowOutcome RunWindow(const MannersConfig& config, int start_tick, bool bg_running) {
  WindowOutcome out;
  for (int t = start_tick; t < start_tick + config.window_ticks && t < config.ticks; ++t) {
    const bool fg = config.foreground_active && config.foreground_active(t);
    if (fg && bg_running) {
      // Split the tick (model at half-progress each).
      out.fg += 1;
      out.bg += 1;
    } else if (fg) {
      out.fg += 2;
    } else if (bg_running) {
      out.bg += 2;
    }
  }
  return out;
}

std::uint64_t CountForegroundDemand(const MannersConfig& config) {
  std::uint64_t demand = 0;
  for (int t = 0; t < config.ticks; ++t) {
    if (config.foreground_active && config.foreground_active(t)) {
      demand += 2;  // full-speed progress units it would achieve alone
    }
  }
  return demand;
}

void Finalize(const MannersConfig& config, MannersResult* result) {
  result->fg_demand = CountForegroundDemand(config);
  result->fg_slowdown = result->fg_work > 0
                            ? static_cast<double>(result->fg_demand) /
                                  static_cast<double>(result->fg_work)
                            : 1.0;
  const std::uint64_t idle_units = 2ULL * static_cast<std::uint64_t>(config.ticks) -
                                   result->fg_demand;
  result->idle_utilization = idle_units > 0
                                 ? static_cast<double>(result->bg_work) /
                                       static_cast<double>(idle_units)
                                 : 0.0;
}

}  // namespace

MannersResult RunMannersSim(const MannersConfig& config) {
  MannersResult result;
  gray::ExponentialAverage progress_avg(config.ewma_alpha);
  // Calibrated uncontended baseline: a full window of unshared progress.
  const double baseline = 2.0 * config.window_ticks;
  std::vector<double> recent;    // recent progress samples
  std::vector<double> expected;  // paired baseline samples
  int backoff_windows = config.initial_backoff_windows;
  int suspended_until_window = -1;

  const int windows = (config.ticks + config.window_ticks - 1) / config.window_ticks;
  for (int w = 0; w < windows; ++w) {
    const int start = w * config.window_ticks;
    const bool bg_running = w >= suspended_until_window;
    const WindowOutcome out = RunWindow(config, start, bg_running);
    result.bg_work += out.bg;
    result.fg_work += out.fg;
    if (!bg_running) {
      continue;  // suspended: measuring nothing
    }

    const double sample = static_cast<double>(out.bg);
    progress_avg.Add(sample);
    recent.push_back(sample);
    expected.push_back(baseline * config.suspend_threshold);
    if (recent.size() > 8) {
      recent.erase(recent.begin());
      expected.erase(expected.begin());
    }

    // Contention inference: smoothed progress below threshold, confirmed by
    // a sign test over the recent samples (robust to one noisy window).
    const bool below = progress_avg.value() < baseline * config.suspend_threshold;
    const gray::SignTestResult sign = gray::SignTest(expected, recent);
    const bool confirmed = sign.plus > sign.minus;
    if (below && confirmed) {
      result.sign_test_fired = result.sign_test_fired || sign.significant;
      ++result.suspensions;
      suspended_until_window = w + 1 + backoff_windows;
      backoff_windows = std::min(backoff_windows * 2, config.max_backoff_windows);
      progress_avg = gray::ExponentialAverage(config.ewma_alpha);
      recent.clear();
      expected.clear();
    } else if (!below) {
      backoff_windows = config.initial_backoff_windows;  // healthy again
    }
  }

  Finalize(config, &result);
  return result;
}

MannersResult RunGreedyBackgroundSim(const MannersConfig& config) {
  MannersResult result;
  const int windows = (config.ticks + config.window_ticks - 1) / config.window_ticks;
  for (int w = 0; w < windows; ++w) {
    const WindowOutcome out = RunWindow(config, w * config.window_ticks, true);
    result.bg_work += out.bg;
    result.fg_work += out.fg;
  }
  Finalize(config, &result);
  return result;
}

}  // namespace grayclassic
