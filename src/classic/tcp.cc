#include "src/classic/tcp.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "src/sim/rng.h"

namespace grayclassic {

namespace {

struct Packet {
  int sender = 0;
  std::uint64_t seq = 0;
};

struct Sender {
  double cwnd = 1.0;
  double ssthresh = 64.0;
  std::uint64_t base_seq = 0;  // first unacknowledged sequence number
  std::uint64_t next_seq = 0;  // next sequence number to inject
  int oldest_unacked_tick = -1;
  std::uint64_t delivered = 0;
};

}  // namespace

TcpSimResult RunTcpSim(const TcpSimConfig& config) {
  graysim::Rng rng(config.seed);
  std::vector<Sender> senders(static_cast<std::size_t>(config.num_senders));
  std::vector<std::uint64_t> expected(static_cast<std::size_t>(config.num_senders), 0);
  std::deque<Packet> queue;  // router queue
  struct Ack {
    int tick;
    int sender;
    std::uint64_t cum_seq;  // cumulative: everything below is received
  };
  std::deque<Ack> acks;

  TcpSimResult result;
  std::uint64_t queue_sum = 0;

  for (int tick = 0; tick < config.ticks; ++tick) {
    // 1. Deliver due ACKs: cumulative acknowledgment advances the window.
    while (!acks.empty() && acks.front().tick <= tick) {
      const Ack ack = acks.front();
      acks.pop_front();
      Sender& s = senders[static_cast<std::size_t>(ack.sender)];
      if (ack.cum_seq <= s.base_seq) {
        continue;  // duplicate/stale ACK
      }
      const std::uint64_t newly_acked = ack.cum_seq - s.base_seq;
      s.base_seq = ack.cum_seq;
      s.oldest_unacked_tick = s.base_seq == s.next_seq ? -1 : tick;
      for (std::uint64_t k = 0; k < newly_acked; ++k) {
        ++s.delivered;
        if (s.cwnd < s.ssthresh) {
          s.cwnd += 1.0;  // slow start
        } else {
          s.cwnd += 1.0 / std::max(1.0, s.cwnd);  // congestion avoidance
        }
      }
    }

    // 2. Timeout detection: the gray-box inference — no ACK within RTO means
    //    loss, and loss is read as congestion (go-back-N retransmit).
    for (Sender& s : senders) {
      if (s.oldest_unacked_tick >= 0 && tick - s.oldest_unacked_tick > config.rto_ticks) {
        ++result.timeouts;
        s.ssthresh = std::max(2.0, s.cwnd / 2.0);
        s.cwnd = 1.0;
        s.next_seq = s.base_seq;  // resend everything outstanding
        s.oldest_unacked_tick = -1;
      }
    }

    // 3. Senders inject up to their window. The injection order rotates
    //    randomly each tick: real packet arrivals interleave, and without
    //    this the deterministic tail-drop queue exhibits phase effects that
    //    systematically favor one sender.
    const int start = static_cast<int>(rng.Below(static_cast<std::uint64_t>(
        config.num_senders)));
    for (int k = 0; k < config.num_senders; ++k) {
      const int i = (start + k) % config.num_senders;
      Sender& s = senders[static_cast<std::size_t>(i)];
      while (static_cast<double>(s.next_seq - s.base_seq) < s.cwnd) {
        const std::uint64_t seq = s.next_seq++;
        if (s.oldest_unacked_tick < 0) {
          s.oldest_unacked_tick = tick;
        }
        if (config.random_loss > 0.0 && rng.Chance(config.random_loss)) {
          ++result.random_losses;  // lost on the lossy medium: no ACK ever
          continue;
        }
        if (static_cast<int>(queue.size()) >= config.queue_capacity) {
          ++result.congestion_drops;  // router tail drop
          continue;
        }
        if (config.red) {
          // RED: drop with a probability that ramps up as the queue grows,
          // signaling congestion to gray-box senders before it happens.
          const double fill = static_cast<double>(queue.size()) /
                              static_cast<double>(config.queue_capacity);
          if (fill > config.red_min_fraction) {
            const double ramp =
                (fill - config.red_min_fraction) /
                (config.red_max_fraction - config.red_min_fraction);
            const double p = config.red_max_prob * std::min(1.0, ramp);
            if (rng.Chance(p)) {
              ++result.congestion_drops;  // early, deliberate drop
              continue;
            }
          }
        }
        queue.push_back(Packet{i, seq});
      }
    }

    // 4. Router drains; the receiver accepts in-order packets only and
    //    returns cumulative ACKs one RTT later.
    for (int d = 0; d < config.drain_per_tick && !queue.empty(); ++d) {
      const Packet p = queue.front();
      queue.pop_front();
      std::uint64_t& exp = expected[static_cast<std::size_t>(p.sender)];
      if (p.seq == exp) {
        ++exp;
        ++result.delivered;
      }
      // (Out-of-order packets are discarded; the duplicate ACK below still
      // tells the sender how far the in-order stream got.)
      acks.push_back(Ack{tick + config.rtt_ticks, p.sender, exp});
    }
    queue_sum += queue.size();
  }

  const double capacity =
      static_cast<double>(config.drain_per_tick) * static_cast<double>(config.ticks);
  result.goodput = static_cast<double>(result.delivered) / capacity;
  result.avg_queue = static_cast<double>(queue_sum) / static_cast<double>(config.ticks);

  double sum = 0.0;
  double sum_sq = 0.0;
  double cwnd_sum = 0.0;
  for (const Sender& s : senders) {
    const double x = static_cast<double>(s.delivered);
    sum += x;
    sum_sq += x * x;
    cwnd_sum += s.cwnd;
  }
  const double n = static_cast<double>(config.num_senders);
  result.fairness = sum_sq > 0.0 ? (sum * sum) / (n * sum_sq) : 0.0;
  result.avg_cwnd = cwnd_sum / n;
  return result;
}

}  // namespace grayclassic
