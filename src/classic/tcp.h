// TCP congestion control as a gray-box system (paper §3, Table 1).
//
// Clients combine algorithmic knowledge of the network ("the network drops
// packets when there is congestion") with observations (time before an ACK
// arrives) to infer hidden state (congestion) and control their send rate
// (AIMD with slow start, Tahoe-style).
//
// The simulation also reproduces the paper's cautionary tale: in a
// "wireless" network, losses happen without congestion, the gray-box
// assumption is violated, and the very same algorithm collapses its window
// for no reason — misidentified gray-box knowledge fails in new
// environments.
#ifndef SRC_CLASSIC_TCP_H_
#define SRC_CLASSIC_TCP_H_

#include <cstdint>

namespace grayclassic {

struct TcpSimConfig {
  int num_senders = 4;
  // Router: drains `drain_per_tick` packets per tick, queues up to
  // `queue_capacity`, drops the rest (tail drop).
  int queue_capacity = 128;  // > bandwidth-delay product
  int drain_per_tick = 10;
  int rtt_ticks = 10;         // propagation round trip (excluding queueing)
  int rto_ticks = 60;         // retransmission timeout
  int ticks = 20'000;
  // Random non-congestion loss rate (the "wireless" medium); 0 = wired.
  double random_loss = 0.0;
  // Random Early Detection (the paper's [16]): the router drops packets
  // probabilistically before the queue fills, signaling congestion early
  // instead of tail-dropping bursts.
  bool red = false;
  double red_min_fraction = 0.25;  // start dropping above this queue fill
  double red_max_fraction = 0.75;  // drop probability ramps to red_max_prob here
  double red_max_prob = 0.1;
  std::uint64_t seed = 1;
};

struct TcpSimResult {
  std::uint64_t delivered = 0;        // packets that reached the receiver
  std::uint64_t congestion_drops = 0; // router queue overflows
  std::uint64_t random_losses = 0;    // wireless losses
  std::uint64_t timeouts = 0;         // window collapses
  double goodput = 0.0;               // delivered / link capacity
  double avg_queue = 0.0;
  double fairness = 0.0;              // Jain's index across senders
  double avg_cwnd = 0.0;
};

[[nodiscard]] TcpSimResult RunTcpSim(const TcpSimConfig& config);

}  // namespace grayclassic

#endif  // SRC_CLASSIC_TCP_H_
