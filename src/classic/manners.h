// MS Manners as a gray-box system (paper §3, Table 1).
//
// A low-importance background process regulates itself so it only consumes
// resources that are otherwise idle. Gray-box knowledge: "one process
// competing with another usually degrades the progress of the other
// symmetrically to its own" — so by measuring its OWN progress rate against
// a calibrated uncontended baseline, the background process can infer that
// someone important is running and suspend itself.
//
// Statistics from the original system (and Table 1): exponential averaging
// of progress samples and a paired-sample sign test against the baseline.
#ifndef SRC_CLASSIC_MANNERS_H_
#define SRC_CLASSIC_MANNERS_H_

#include <cstdint>
#include <functional>

namespace grayclassic {

struct MannersConfig {
  int ticks = 100'000;
  int window_ticks = 200;        // progress-measurement window
  double suspend_threshold = 0.8;  // suspend below this fraction of baseline
  int initial_backoff_windows = 2;
  int max_backoff_windows = 32;
  double ewma_alpha = 0.3;
  // Foreground activity schedule: returns true when the important process
  // wants the CPU at the given tick.
  std::function<bool(int)> foreground_active;
};

struct MannersResult {
  std::uint64_t bg_work = 0;            // background progress units
  std::uint64_t fg_work = 0;            // foreground progress units
  std::uint64_t fg_demand = 0;          // ticks the foreground wanted the CPU
  double fg_slowdown = 0.0;             // fg demand / fg work (1.0 = no impact)
  double idle_utilization = 0.0;        // bg work / idle ticks available
  std::uint64_t suspensions = 0;
  bool sign_test_fired = false;         // statistics detected contention
};

// Runs the shared-CPU simulation with the background process governed by
// the Manners controller.
[[nodiscard]] MannersResult RunMannersSim(const MannersConfig& config);

// Baseline for comparison: the background process runs greedily with no
// regulation (what happens without gray-box techniques).
[[nodiscard]] MannersResult RunGreedyBackgroundSim(const MannersConfig& config);

}  // namespace grayclassic

#endif  // SRC_CLASSIC_MANNERS_H_
