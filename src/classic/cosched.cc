#include "src/classic/cosched.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace grayclassic {

namespace {

enum class ProcState : std::uint8_t {
  kComputing,
  kSpinning,
  kBlocked,
  kDone,
};

struct ParallelProc {
  ProcState state = ProcState::kComputing;
  int compute_left = 0;
  int iterations_done = 0;
  int spin_elapsed = 0;
  bool awaiting_response = false;
  bool response_arrived = false;
  int pending_requests = 0;  // partners waiting on us
  std::uint64_t finish_tick = 0;
};

struct Node {
  // Scheduler queue: index 0 is the parallel proc, 1..k are local jobs.
  std::deque<int> run_queue;
  int running = -1;
  int quantum_left = 0;
  int switch_left = 0;  // context-switch cost being paid
  std::uint64_t local_work = 0;
};

struct Response {
  int due_tick;
  int node;  // destination node's parallel proc
};

}  // namespace

CoschedResult RunCoschedSim(const CoschedConfig& config) {
  const int n = config.nodes;
  std::vector<ParallelProc> procs(static_cast<std::size_t>(n));
  std::vector<Node> nodes(static_cast<std::size_t>(n));
  std::deque<Response> responses;
  CoschedResult result;

  const int spin_limit = 2 * config.context_switch_ticks + config.rtt_ticks;

  for (int i = 0; i < n; ++i) {
    procs[static_cast<std::size_t>(i)].compute_left = config.compute_ticks;
    for (int j = 0; j <= config.local_jobs_per_node; ++j) {
      nodes[static_cast<std::size_t>(i)].run_queue.push_back(j);  // 0 = parallel proc
    }
  }

  auto runnable = [&](int node, int job) {
    if (job != 0) {
      return true;  // local jobs are always runnable
    }
    const ParallelProc& p = procs[static_cast<std::size_t>(node)];
    switch (p.state) {
      case ProcState::kComputing:
      case ProcState::kSpinning:
        return true;
      case ProcState::kBlocked:
        // Message arrival makes a blocked process runnable (and, under
        // implicit coscheduling, boosted — see the wake path below).
        return p.response_arrived || p.pending_requests > 0;
      case ProcState::kDone:
        // Finished processes still serve ring partners that lag behind.
        return p.pending_requests > 0;
    }
    return false;
  };

  std::uint64_t tick = 0;
  int done_count = 0;
  for (; tick < static_cast<std::uint64_t>(config.max_ticks) && done_count < n; ++tick) {
    // Deliver due responses; boost the receiver to the front of its queue.
    while (!responses.empty() && responses.front().due_tick <= static_cast<int>(tick)) {
      const Response r = responses.front();
      responses.pop_front();
      ParallelProc& p = procs[static_cast<std::size_t>(r.node)];
      p.response_arrived = true;
      // Priority boost on message arrival: this is implicit coscheduling's
      // lever. The plain local-scheduling baseline gets no boost — the
      // woken process waits for its regular round-robin turn.
      if (config.policy != WaitPolicy::kBlockImmediate) {
        Node& node = nodes[static_cast<std::size_t>(r.node)];
        auto it = std::find(node.run_queue.begin(), node.run_queue.end(), 0);
        if (it != node.run_queue.end()) {
          node.run_queue.erase(it);
          node.run_queue.push_front(0);
        }
      }
    }

    for (int i = 0; i < n; ++i) {
      Node& node = nodes[static_cast<std::size_t>(i)];
      ParallelProc& p = procs[static_cast<std::size_t>(i)];

      // Pick the next job if needed.
      if (node.running == -1 || node.quantum_left == 0 ||
          (node.running == 0 && !runnable(i, 0))) {
        if (node.running != -1) {
          node.run_queue.push_back(node.running);
          node.running = -1;
        }
        for (std::size_t scan = 0; scan < node.run_queue.size(); ++scan) {
          const int cand = node.run_queue.front();
          node.run_queue.pop_front();
          if (runnable(i, cand)) {
            node.running = cand;
            node.quantum_left = config.quantum_ticks;
            node.switch_left = config.context_switch_ticks;
            break;
          }
          node.run_queue.push_back(cand);
        }
        if (node.running == -1) {
          continue;  // everyone blocked on this node
        }
      }

      --node.quantum_left;
      if (node.switch_left > 0) {
        --node.switch_left;  // paying the context switch
        continue;
      }

      if (node.running != 0) {
        ++node.local_work;
        continue;
      }

      // The parallel process is on the CPU: first serve pending requests
      // (this is what makes "a response means the partner is scheduled"
      // true), then make progress.
      if (p.pending_requests > 0) {
        while (p.pending_requests > 0) {
          --p.pending_requests;
          const int requester = (i + n - 1) % n;  // ring: predecessor asks us
          responses.push_back(
              Response{static_cast<int>(tick) + config.rtt_ticks, requester});
        }
        continue;  // serving took this tick
      }

      switch (p.state) {
        case ProcState::kComputing:
          if (--p.compute_left <= 0) {
            // Send a request to the ring successor and start waiting.
            const int partner = (i + 1) % n;
            ++procs[static_cast<std::size_t>(partner)].pending_requests;
            p.awaiting_response = true;
            p.response_arrived = false;
            p.spin_elapsed = 0;
            p.state = config.policy == WaitPolicy::kBlockImmediate ? ProcState::kBlocked
                                                                   : ProcState::kSpinning;
            if (p.state == ProcState::kBlocked) {
              ++result.blocks;
            }
          }
          break;
        case ProcState::kSpinning:
          if (p.response_arrived) {
            p.awaiting_response = false;
            ++p.iterations_done;
            if (p.iterations_done >= config.iterations) {
              p.state = ProcState::kDone;
              p.finish_tick = tick;
              ++done_count;
            } else {
              p.state = ProcState::kComputing;
              p.compute_left = config.compute_ticks;
            }
          } else {
            ++result.spin_ticks;
            ++p.spin_elapsed;
            if (config.policy == WaitPolicy::kTwoPhase && p.spin_elapsed >= spin_limit) {
              p.state = ProcState::kBlocked;
              ++result.blocks;
            }
          }
          break;
        case ProcState::kBlocked:
          if (p.response_arrived) {
            p.awaiting_response = false;
            ++p.iterations_done;
            if (p.iterations_done >= config.iterations) {
              p.state = ProcState::kDone;
              p.finish_tick = tick;
              ++done_count;
            } else {
              p.state = ProcState::kComputing;
              p.compute_left = config.compute_ticks;
            }
          }
          break;
        case ProcState::kDone:
          break;
      }
    }
  }

  result.job_ticks = 0;
  for (const ParallelProc& p : procs) {
    result.job_ticks = std::max(result.job_ticks, p.finish_tick);
  }
  if (done_count < n) {
    result.job_ticks = tick;  // hit the safety cap
  }
  const double ideal = static_cast<double>(config.iterations) *
                       static_cast<double>(config.compute_ticks + config.rtt_ticks + 1);
  result.slowdown = static_cast<double>(result.job_ticks) / ideal;
  std::uint64_t local_total = 0;
  for (const Node& node : nodes) {
    local_total += node.local_work;
  }
  result.local_throughput = static_cast<double>(local_total) /
                            (static_cast<double>(n) * static_cast<double>(result.job_ticks));
  return result;
}

}  // namespace grayclassic
