// Implicit coscheduling as a gray-box system (paper §3, Table 1).
//
// Fine-grain parallel processes on independently scheduled nodes infer the
// remote scheduling state from message timing: a prompt response means the
// partner is scheduled; a missing one means it probably is not. The control
// action is the two-phase waiting policy — spin for about a context switch
// plus round trip (staying scheduled and keeping the job coordinated), then
// block and release the CPU.
//
// The simulation compares three waiting policies under multiprogramming:
//   kBlockImmediate — pure local scheduling (loses coordination),
//   kSpinForever    — stays coordinated, starves local jobs,
//   kTwoPhase       — implicit coscheduling.
#ifndef SRC_CLASSIC_COSCHED_H_
#define SRC_CLASSIC_COSCHED_H_

#include <cstdint>

namespace grayclassic {

enum class WaitPolicy : std::uint8_t { kBlockImmediate, kSpinForever, kTwoPhase };

struct CoschedConfig {
  int nodes = 8;
  int local_jobs_per_node = 2;   // CPU-bound competitors
  int iterations = 200;          // compute/communicate rounds per process
  int compute_ticks = 50;        // per-iteration compute time
  int rtt_ticks = 2;             // message round trip when both scheduled
  int context_switch_ticks = 5;
  int quantum_ticks = 100;       // local scheduler time slice
  WaitPolicy policy = WaitPolicy::kTwoPhase;
  int max_ticks = 5'000'000;     // safety cap
};

struct CoschedResult {
  std::uint64_t job_ticks = 0;       // parallel job completion time
  double slowdown = 0.0;             // vs dedicated coscheduled execution
  double local_throughput = 0.0;     // local-job work per node per tick
  std::uint64_t spin_ticks = 0;      // CPU burned spinning
  std::uint64_t blocks = 0;          // times a process blocked
};

[[nodiscard]] CoschedResult RunCoschedSim(const CoschedConfig& config);

}  // namespace grayclassic

#endif  // SRC_CLASSIC_COSCHED_H_
