#include "src/os/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

// ASan must be told about every stack switch or it reports false positives
// (and its fake-stack GC frees frames that are still live on other fibers).
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAYSIM_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GRAYSIM_ASAN_FIBERS 1
#endif

#if defined(GRAYSIM_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** bottom_old,
                                     size_t* size_old);
}
#endif

// TSan likewise needs explicit fiber bookkeeping: a ucontext switch moves
// the stack pointer out of the range it associates with the host thread,
// which it otherwise reports as a corrupted stack. Each fiber gets a TSan
// fiber object; switches are announced right before the swapcontext.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRAYSIM_TSAN_FIBERS 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define GRAYSIM_TSAN_FIBERS 1
#endif

#if defined(GRAYSIM_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace graysim {

namespace {

// 512 KB per fiber: simulated process bodies are shallow (no recursion into
// user data), but event closures — daemon reclaim, cache fills — run on
// whichever fiber stack is current, so leave generous headroom.
constexpr std::size_t kFiberStackBytes = 512 * 1024;

// The trampoline installed by makecontext takes no arguments, so the
// scheduler whose Run() is executing parks itself here. thread_local, not
// global: every machine runs its fibers wholly on one host thread, so N
// machines on N threads each get their own slot and never observe a
// neighbor's scheduler — the one cross-machine global the fleet refactor
// removed. Nested Run() calls remain forbidden per thread.
thread_local Scheduler* t_running = nullptr;

}  // namespace

void Scheduler::Trampoline() { t_running->FiberMain(); }

void Scheduler::FiberMain() {
  const int me = current_;
#if defined(GRAYSIM_ASAN_FIBERS)
  // First entry to this fiber: complete the switch and capture the bounds
  // of the stack we came from (the dispatch loop's host stack).
  __sanitizer_finish_switch_fiber(nullptr, &main_stack_bottom_, &main_stack_size_);
#endif
  (*bodies_)[me](me);
  fibers_[me]->state = State::kDone;
  ++done_count_;
  SwitchToMain(/*dying=*/true);
  assert(false && "resumed a finished fiber");
  std::abort();
}

void Scheduler::SwitchToFiber(int i) {
  Fiber& f = *fibers_[i];
  assert(f.state == State::kReady);
  current_ = i;
  f.slice_used = 0;
#if defined(GRAYSIM_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&main_fake_stack_, f.stack.get(), f.stack_size);
#endif
#if defined(GRAYSIM_TSAN_FIBERS)
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
  const bool traced = trace_ != nullptr && static_cast<std::size_t>(i) < fiber_tracks_.size();
  if (traced) {
    trace_->Begin(fiber_tracks_[i], "run", clock_->now());
  }
  swapcontext(&main_ctx_, &f.ctx);
#if defined(GRAYSIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(main_fake_stack_, nullptr, nullptr);
#endif
  if (traced) {
    trace_->End(fiber_tracks_[i], "run", clock_->now());
  }
  current_ = -1;
}

void Scheduler::SwitchToMain(bool dying) {
  Fiber& f = *fibers_[current_];
#if defined(GRAYSIM_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(dying ? nullptr : &f.fake_stack, main_stack_bottom_,
                                 main_stack_size_);
#else
  (void)dying;
#endif
#if defined(GRAYSIM_TSAN_FIBERS)
  __tsan_switch_to_fiber(main_tsan_fiber_, 0);
#endif
  swapcontext(&f.ctx, &main_ctx_);
  // Resumed (never reached when dying).
#if defined(GRAYSIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void Scheduler::Run(const std::vector<std::function<void(int)>>& bodies) {
  const int n = static_cast<int>(bodies.size());
  if (n == 0) {
    return;  // nothing to schedule
  }
  assert(!active_ && t_running == nullptr && "nested Scheduler::Run on this thread");
  bodies_ = &bodies;
  fibers_.clear();
  fibers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto f = std::make_unique<Fiber>();
    if (!stack_pool_.empty()) {
      f->stack = std::move(stack_pool_.back());
      stack_pool_.pop_back();
    } else {
      f->stack = std::make_unique<char[]>(kFiberStackBytes);
    }
    f->stack_size = kFiberStackBytes;
    getcontext(&f->ctx);
    f->ctx.uc_stack.ss_sp = f->stack.get();
    f->ctx.uc_stack.ss_size = f->stack_size;
    f->ctx.uc_link = nullptr;  // fibers exit via SwitchToMain, never return
    makecontext(&f->ctx, &Scheduler::Trampoline, 0);
#if defined(GRAYSIM_TSAN_FIBERS)
    f->tsan_fiber = __tsan_create_fiber(0);
#endif
    fibers_.push_back(std::move(f));
  }
#if defined(GRAYSIM_TSAN_FIBERS)
  main_tsan_fiber_ = __tsan_get_current_fiber();
#endif
  if (trace_ != nullptr) {
    // One "thread" row per fiber. RegisterTrack is idempotent by name, so
    // repeated Run() batches reuse the same rows.
    fiber_tracks_.resize(n);
    for (int i = 0; i < n; ++i) {
      fiber_tracks_[i] = trace_->RegisterTrack("fiber/" + std::to_string(i));
    }
  }
  done_count_ = 0;
  active_ = true;
  t_running = this;

  int last = n - 1;  // round-robin starts at proc 0
  while (done_count_ < n) {
    const int next = PickNext(last);
    if (next >= 0) {
      SwitchToFiber(next);
      last = next;
      continue;
    }
    // Nobody runnable: every live fiber sleeps on an event (its own wake,
    // or an I/O completion it waits behind). Jump to the next event.
    const Nanos when = events_->next_time();
    if (when == EventQueue::kNever) {
      std::fprintf(stderr, "graysim: scheduler deadlock — no runnable process, no event\n");
      std::abort();
    }
    clock_->AdvanceTo(std::max(clock_->now(), when));
    events_->RunDue(clock_->now());
  }

  t_running = nullptr;
  active_ = false;
  bodies_ = nullptr;
  for (auto& f : fibers_) {
#if defined(GRAYSIM_TSAN_FIBERS)
    __tsan_destroy_fiber(f->tsan_fiber);
#endif
    stack_pool_.push_back(std::move(f->stack));
  }
  fibers_.clear();
}

int Scheduler::PickNext(int from) const {
  const int n = static_cast<int>(fibers_.size());
  for (int k = 1; k <= n; ++k) {
    const int j = (from + k) % n;
    if (fibers_[j]->state == State::kReady) {
      return j;
    }
  }
  return -1;
}

void Scheduler::Charge(int proc, Nanos cost) {
  assert(proc == current_);
  clock_->Advance(cost);
  Fiber& f = *fibers_[proc];
  f.slice_used += cost;
  // Fast path: one heap-front comparison, no locks, no syscalls.
  if (events_->next_time() <= clock_->now()) {
    events_->RunDue(clock_->now());
  }
  if (f.slice_used >= slice_) {
    SwitchToMain(/*dying=*/false);  // stays kReady; dispatched again in turn
  }
}

void Scheduler::SleepUntil(int proc, Nanos deadline) {
  assert(proc == current_);
  if (deadline <= clock_->now()) {
    events_->RunDue(clock_->now());
    return;
  }
  Fiber& f = *fibers_[proc];
  f.state = State::kSleeping;
  // The closure re-checks the fiber before waking it: after a crash-stop,
  // WakeAll readies every sleeper and the unwound fibers are gone, but this
  // wake event may still be pending (Recover discards the queue, yet the
  // crash event itself dispatches from the same due-batch as its
  // neighbors). A stale wake must not index a cleared fiber table or
  // re-ready a fiber that already progressed.
  events_->ScheduleAt(deadline, EventQueue::Band::kWake, [this, proc] {
    if (static_cast<std::size_t>(proc) < fibers_.size() &&
        fibers_[proc]->state == State::kSleeping) {
      fibers_[proc]->state = State::kReady;
    }
  });
  SwitchToMain(/*dying=*/false);
}

void Scheduler::WakeAll() {
  for (auto& f : fibers_) {
    if (f->state == State::kSleeping) {
      f->state = State::kReady;
    }
  }
}

void Scheduler::Sleep(int proc, Nanos duration) {
  SleepUntil(proc, clock_->now() + duration);
}

void Scheduler::Yield([[maybe_unused]] int proc) {
  assert(proc == current_);
  events_->RunDue(clock_->now());
  SwitchToMain(/*dying=*/false);
}

}  // namespace graysim
