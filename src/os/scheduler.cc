#include "src/os/scheduler.h"

#include <algorithm>
#include <cassert>

namespace graysim {

void Scheduler::Run(const std::vector<std::function<void(int)>>& bodies) {
  const int n = static_cast<int>(bodies.size());
  assert(n > 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    procs_.clear();
    for (int i = 0; i < n; ++i) {
      procs_.push_back(std::make_unique<Proc>());
    }
    current_ = 0;
    done_count_ = 0;
    active_ = true;
  }

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([this, i, &bodies] {
      {
        std::unique_lock<std::mutex> lock(mu_);
        procs_[i]->cv.wait(lock, [this, i] { return current_ == i; });
      }
      bodies[i](i);
      {
        std::unique_lock<std::mutex> lock(mu_);
        procs_[i]->state = State::kDone;
        ++done_count_;
        const int next = PickNextLocked(i);
        HandOffLocked(lock, i, next);
        if (done_count_ == static_cast<int>(procs_.size())) {
          all_done_cv_.notify_all();
        }
      }
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_cv_.wait(lock, [this, n] { return done_count_ == n; });
    active_ = false;
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

int Scheduler::PickNextLocked(int from) {
  const int n = static_cast<int>(procs_.size());
  while (true) {
    // Wake any sleepers whose deadline has passed.
    for (int j = 0; j < n; ++j) {
      Proc& p = *procs_[j];
      if (p.state == State::kSleeping && p.wake_at <= clock_->now()) {
        p.state = State::kReady;
        p.slice_used = 0;
      }
    }
    // Round-robin scan starting after `from`.
    for (int k = 1; k <= n; ++k) {
      const int j = (from + k) % n;
      if (procs_[j]->state == State::kReady) {
        return j;
      }
    }
    // Nobody ready: either all done, or everyone sleeps — jump the clock.
    Nanos min_wake = 0;
    bool have_sleeper = false;
    for (int j = 0; j < n; ++j) {
      const Proc& p = *procs_[j];
      if (p.state == State::kSleeping) {
        if (!have_sleeper || p.wake_at < min_wake) {
          min_wake = p.wake_at;
          have_sleeper = true;
        }
      }
    }
    if (!have_sleeper) {
      return -1;  // all done
    }
    clock_->AdvanceTo(std::max(clock_->now(), min_wake));
  }
}

void Scheduler::HandOffLocked(std::unique_lock<std::mutex>& lock, int me, int next) {
  if (next == -1) {
    current_ = -1;
    return;
  }
  if (next == me && procs_[me]->state == State::kReady) {
    procs_[me]->slice_used = 0;
    return;  // nobody else to run; keep going
  }
  current_ = next;
  procs_[next]->slice_used = 0;
  procs_[next]->cv.notify_one();
  if (procs_[me]->state == State::kDone) {
    return;  // exiting thread never takes the turn again
  }
  procs_[me]->cv.wait(lock, [this, me] { return current_ == me; });
}

void Scheduler::Charge(int proc, Nanos cost) {
  std::unique_lock<std::mutex> lock(mu_);
  clock_->Advance(cost);
  Proc& p = *procs_[proc];
  p.slice_used += cost;
  if (p.slice_used >= slice_) {
    const int next = PickNextLocked(proc);
    HandOffLocked(lock, proc, next);
  }
}

void Scheduler::Sleep(int proc, Nanos duration) {
  std::unique_lock<std::mutex> lock(mu_);
  Proc& p = *procs_[proc];
  p.state = State::kSleeping;
  p.wake_at = clock_->now() + duration;
  const int next = PickNextLocked(proc);
  if (next == -1) {
    // Only sleeper left: PickNextLocked advanced the clock and made us ready
    // again — but it returns -1 only when no sleepers remain, so this means
    // everyone else is done and we were woken by the clock jump.
    p.state = State::kReady;
    clock_->AdvanceTo(std::max(clock_->now(), p.wake_at));
    return;
  }
  HandOffLocked(lock, proc, next);
}

void Scheduler::Yield(int proc) {
  std::unique_lock<std::mutex> lock(mu_);
  const int next = PickNextLocked(proc);
  HandOffLocked(lock, proc, next);
}

}  // namespace graysim
