#include "src/os/machine.h"

#include <utility>

#include "src/sim/rng.h"

namespace graysim {

namespace {

// Mixes the fleet seed with the machine id into one splitmix64 state. The
// +1 keeps machine 0 from collapsing to the bare fleet seed, and the odd
// golden-ratio multiplier spreads consecutive ids across the state space.
[[nodiscard]] std::uint64_t MachineState(std::uint64_t seed, std::uint32_t machine_id) {
  return seed ^ ((static_cast<std::uint64_t>(machine_id) + 1) * 0x9e3779b97f4a7c15ULL);
}

// Fork-path construction config: chaos is stripped so the Os constructor
// arms nothing — RestoreImage re-installs the plan, the mid-sequence chaos
// RNG, and the captured in-flight tick events instead.
[[nodiscard]] MachineConfig WithoutChaos(MachineConfig config) {
  config.chaos.enabled = false;
  return config;
}

}  // namespace

MachineConfig Machine::DeriveConfig(MachineConfig config, std::uint32_t machine_id,
                                    std::uint64_t seed) {
  std::uint64_t state = MachineState(seed, machine_id);
  // Fixed draw order — jitter, tie-break, chaos, net — so a machine's
  // streams are a pure function of (seed, id) regardless of which are
  // consumed. New streams append; the existing draws must never shift.
  config.jitter_seed = SplitMix64(state);
  config.event_tie_seed = SplitMix64(state);
  const std::uint64_t chaos_seed = SplitMix64(state);
  if (config.chaos.enabled) {
    config.chaos.seed = chaos_seed;
  }
  config.net.seed = SplitMix64(state);
  return config;
}

Machine::Machine(PlatformProfile profile, MachineConfig config, std::uint32_t machine_id,
                 std::uint64_t seed)
    : id_(machine_id),
      root_seed_(seed),
      os_(std::move(profile), DeriveConfig(config, machine_id, seed)) {
  os_.BindMetrics(&metrics_);
}

Machine::Machine(PlatformProfile profile, MachineConfig config)
    : id_(0), root_seed_(config.jitter_seed), os_(std::move(profile), config) {
  os_.BindMetrics(&metrics_);
}

Machine::Machine(const MachineImage& image)
    : id_(image.id),
      root_seed_(image.root_seed),
      os_(image.os.profile, WithoutChaos(image.os.config)) {
  os_.RestoreImage(image.os);
  os_.BindMetrics(&metrics_);
}

std::uint64_t Machine::DeriveSeed(std::uint64_t stream) const {
  // A distinct mixing constant keeps caller streams clear of the three
  // kernel draws in DeriveConfig even for small `stream` tags.
  std::uint64_t state =
      MachineState(root_seed_, id_) ^ ((stream + 1) * 0xbf58476d1ce4e5b9ULL);
  return SplitMix64(state);
}

}  // namespace graysim
