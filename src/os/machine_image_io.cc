#include "src/os/machine_image_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/byte_io.h"

namespace graysim {

namespace {

// "GSIMIMG1" — eight ASCII bytes, written verbatim (endianness-free).
constexpr std::uint8_t kMagic[8] = {'G', 'S', 'I', 'M', 'I', 'M', 'G', '1'};

// Section tags, written (and required on load) in exactly this order. The
// order is load-bearing: CONFIG must parse before any section that needs
// the profile/config to construct its objects (MEM builds the MemSystem
// from them, DISKS needs the geometry).
enum class Section : std::uint32_t {
  kIdentity = 1,
  kConfig = 2,
  kKernel = 3,
  kFilesystems = 4,
  kDisks = 5,
  kNet = 6,
  kMem = 7,
  kTables = 8,
  kChaos = 9,
};

constexpr Section kSectionOrder[] = {
    Section::kIdentity, Section::kConfig, Section::kKernel,
    Section::kFilesystems, Section::kDisks, Section::kNet,
    Section::kMem, Section::kTables, Section::kChaos,
};

void Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
}

// ---- small-struct encoders -------------------------------------------------

void PutRngState(ByteWriter& w, const Rng::State& s) {
  w.U64(s.s0);
  w.U64(s.s1);
}

[[nodiscard]] Rng::State GetRngState(ByteReader& r) {
  Rng::State s;
  s.s0 = r.U64();
  s.s1 = r.U64();
  return s;
}

void PutHist(ByteWriter& w, const obs::Histogram& h) {
  for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
    w.U64(h.bucket(i));
  }
  w.U64(h.count());
  w.U64(h.sum());
  w.U64(h.min());
  w.U64(h.max());
}

void GetHist(ByteReader& r, obs::Histogram* h) {
  std::uint64_t buckets[obs::Histogram::kBuckets];
  for (std::uint64_t& b : buckets) {
    b = r.U64();
  }
  const std::uint64_t count = r.U64();
  const std::uint64_t sum = r.U64();
  const std::uint64_t min = r.U64();
  const std::uint64_t max = r.U64();
  h->RestoreRaw(buckets, count, sum, min, max);
}

void PutDeviceState(ByteWriter& w, const SimDevice::State& s) {
  PutHist(w, s.service_hist);
  w.I64(s.busy_until);
  w.U64(s.tail_end_offset);
  w.Bool(s.tail_is_write);
  w.U64(s.depth);
  w.U64(s.max_depth);
  w.U64(s.total_requests);
  w.U64(s.coalesced_requests);
}

[[nodiscard]] SimDevice::State GetDeviceState(ByteReader& r) {
  SimDevice::State s;
  GetHist(r, &s.service_hist);
  s.busy_until = r.I64();
  s.tail_end_offset = r.U64();
  s.tail_is_write = r.Bool();
  s.depth = r.U64();
  s.max_depth = r.U64();
  s.total_requests = r.U64();
  s.coalesced_requests = r.U64();
  return s;
}

void PutFaultPlan(ByteWriter& w, const FaultPlan& p) {
  w.Bool(p.enabled);
  w.U64(p.seed);
  w.F64(p.read_eio_prob);
  w.F64(p.stat_eio_prob);
  w.F64(p.write_enospc_prob);
  w.F64(p.short_write_prob);
  w.I64(p.eio_latency);
  w.I64(p.stat_eio_latency);
  w.I64(p.degraded_disk);
  w.I64(p.degraded_period);
  w.F64(p.degraded_duty);
  w.F64(p.degraded_scale);
  w.F64(p.spike_prob);
  w.F64(p.spike_scale);
  w.I64(p.jitter_burst_period);
  w.F64(p.jitter_burst_duty);
  w.F64(p.jitter_burst_amplitude);
  w.I64(p.antagonist_period);
  w.U32(p.reader_burst_pages);
  w.U32(p.dirtier_burst_pages);
  w.I64(p.antagonist_disk);
  w.F64(p.net_drop_prob);
  w.I64(p.net_delay_period);
  w.F64(p.net_delay_duty);
  w.F64(p.net_delay_scale);
  w.I64(p.crash_at);
  w.I64(p.shock_period);
  w.I64(p.shock_duration);
  w.F64(p.shock_mem_fraction);
  w.I64(p.shock_alloc_stall);
}

[[nodiscard]] FaultPlan GetFaultPlan(ByteReader& r) {
  FaultPlan p;
  p.enabled = r.Bool();
  p.seed = r.U64();
  p.read_eio_prob = r.F64();
  p.stat_eio_prob = r.F64();
  p.write_enospc_prob = r.F64();
  p.short_write_prob = r.F64();
  p.eio_latency = r.I64();
  p.stat_eio_latency = r.I64();
  p.degraded_disk = static_cast<int>(r.I64());
  p.degraded_period = r.I64();
  p.degraded_duty = r.F64();
  p.degraded_scale = r.F64();
  p.spike_prob = r.F64();
  p.spike_scale = r.F64();
  p.jitter_burst_period = r.I64();
  p.jitter_burst_duty = r.F64();
  p.jitter_burst_amplitude = r.F64();
  p.antagonist_period = r.I64();
  p.reader_burst_pages = r.U32();
  p.dirtier_burst_pages = r.U32();
  p.antagonist_disk = static_cast<int>(r.I64());
  p.net_drop_prob = r.F64();
  p.net_delay_period = r.I64();
  p.net_delay_duty = r.F64();
  p.net_delay_scale = r.F64();
  p.crash_at = r.I64();
  p.shock_period = r.I64();
  p.shock_duration = r.I64();
  p.shock_mem_fraction = r.F64();
  p.shock_alloc_stall = r.I64();
  return p;
}

void PutNetSchedule(ByteWriter& w, const NetSchedule& n) {
  w.I64(n.latency);
  w.F64(n.bytes_per_sec);
  w.I64(n.send_overhead);
  w.F64(n.drop_prob);
  w.F64(n.reorder_prob);
  w.I64(n.reorder_delay);
  w.U64(n.queue_capacity);
  w.Bool(n.red);
  w.F64(n.red_min_fraction);
  w.F64(n.red_max_fraction);
  w.F64(n.red_max_prob);
  w.I64(n.recv_poll);
  w.U64(n.seed);
}

[[nodiscard]] NetSchedule GetNetSchedule(ByteReader& r) {
  NetSchedule n;
  n.latency = r.I64();
  n.bytes_per_sec = r.F64();
  n.send_overhead = r.I64();
  n.drop_prob = r.F64();
  n.reorder_prob = r.F64();
  n.reorder_delay = r.I64();
  n.queue_capacity = r.U64();
  n.red = r.Bool();
  n.red_min_fraction = r.F64();
  n.red_max_fraction = r.F64();
  n.red_max_prob = r.F64();
  n.recv_poll = r.I64();
  n.seed = r.U64();
  return n;
}

void PutOsStats(ByteWriter& w, const OsStats& s) {
  w.U64(s.syscalls);
  w.U64(s.batch_syscalls);
  w.U64(s.batched_ops);
  w.U64(s.cache_hits);
  w.U64(s.cache_misses);
  w.U64(s.disk_reads);
  w.U64(s.disk_writes);
  w.U64(s.swap_ins);
  w.U64(s.swap_outs);
  w.U64(s.readahead_pages);
  w.U64(s.writeback_pages);
  w.U64(s.daemon_wakeups);
  w.U64(s.queued_disk_requests);
  w.U64(s.net_sends);
  w.U64(s.net_recvs);
  w.U64(s.fsyncs);
  w.U64(s.syncfs_calls);
}

[[nodiscard]] OsStats GetOsStats(ByteReader& r) {
  OsStats s;
  s.syscalls = r.U64();
  s.batch_syscalls = r.U64();
  s.batched_ops = r.U64();
  s.cache_hits = r.U64();
  s.cache_misses = r.U64();
  s.disk_reads = r.U64();
  s.disk_writes = r.U64();
  s.swap_ins = r.U64();
  s.swap_outs = r.U64();
  s.readahead_pages = r.U64();
  s.writeback_pages = r.U64();
  s.daemon_wakeups = r.U64();
  s.queued_disk_requests = r.U64();
  s.net_sends = r.U64();
  s.net_recvs = r.U64();
  s.fsyncs = r.U64();
  s.syncfs_calls = r.U64();
  return s;
}

void PutChaosStats(ByteWriter& w, const ChaosStats& s) {
  w.U64(s.injected_read_errors);
  w.U64(s.injected_stat_errors);
  w.U64(s.injected_write_errors);
  w.U64(s.short_writes);
  w.U64(s.disk_spikes);
  w.U64(s.degraded_requests);
  w.U64(s.reader_ticks);
  w.U64(s.dirtier_ticks);
  w.U64(s.antagonist_pages);
  w.U64(s.pressure_shocks);
  w.U64(s.stalled_allocs);
  w.U64(s.injected_net_drops);
  w.U64(s.delayed_net_messages);
}

[[nodiscard]] ChaosStats GetChaosStats(ByteReader& r) {
  ChaosStats s;
  s.injected_read_errors = r.U64();
  s.injected_stat_errors = r.U64();
  s.injected_write_errors = r.U64();
  s.short_writes = r.U64();
  s.disk_spikes = r.U64();
  s.degraded_requests = r.U64();
  s.reader_ticks = r.U64();
  s.dirtier_ticks = r.U64();
  s.antagonist_pages = r.U64();
  s.pressure_shocks = r.U64();
  s.stalled_allocs = r.U64();
  s.injected_net_drops = r.U64();
  s.delayed_net_messages = r.U64();
  return s;
}

// ---- FlatMap: exact slot layout -------------------------------------------
// Written as (capacity, live count, then per live slot: index, key, value).
// The exact open-addressing layout is machine state: ForEach order is layout
// order, and a map rebuilt by reinsertion could legally iterate differently
// — enough to diverge a bit-identical replay.

template <typename V, typename PutV>
void PutFlatMap(ByteWriter& w, const FlatMap<V>& m, PutV put_value) {
  const std::size_t cap = m.slot_count();
  w.U64(cap);
  std::uint64_t live = 0;
  for (std::size_t i = 0; i < cap; ++i) {
    if (m.slot_key(i) != FlatMap<V>::kEmptyKey) {
      ++live;
    }
  }
  w.U64(live);
  for (std::size_t i = 0; i < cap; ++i) {
    if (m.slot_key(i) == FlatMap<V>::kEmptyKey) {
      continue;
    }
    w.U64(i);
    w.U64(m.slot_key(i));
    put_value(m.slot_value(i));
  }
}

template <typename V, typename GetV>
[[nodiscard]] bool GetFlatMap(ByteReader& r, FlatMap<V>* m, GetV get_value) {
  const std::uint64_t cap = r.U64();
  // Power-of-two (or empty) capacity, bounded well past any real machine
  // (2^28 slots ≈ 4 GB of page keys) so a corrupt count cannot OOM us.
  if (!r.ok() || cap > (1ULL << 28) || (cap != 0 && (cap & (cap - 1)) != 0)) {
    return false;
  }
  const std::uint64_t live = r.Count(17);  // index + key + >= 1 value byte
  if (!r.ok() || live > cap) {
    return false;
  }
  m->RestoreRawLayout(static_cast<std::size_t>(cap));
  for (std::uint64_t n = 0; n < live; ++n) {
    const std::uint64_t idx = r.U64();
    const std::uint64_t key = r.U64();
    if (!r.ok() || idx >= cap || key == FlatMap<V>::kEmptyKey) {
      return false;
    }
    m->RestoreRawSlot(static_cast<std::size_t>(idx), key, get_value());
  }
  return r.ok();
}

// ---- section payloads ------------------------------------------------------

void PutIdentity(ByteWriter& w, const MachineImage& image) {
  w.U32(image.id);
  w.U64(image.root_seed);
}

void PutConfig(ByteWriter& w, const MachineImage& image) {
  const PlatformProfile& p = image.os.profile;
  w.Str(p.name);
  w.U8(static_cast<std::uint8_t>(p.mem_policy));
  w.U64(p.file_cache_bytes);
  w.U8(static_cast<std::uint8_t>(p.fs_allocator));
  w.Bool(p.readahead);
  w.Bool(p.has_mincore);

  const MachineConfig& c = image.os.config;
  w.U64(c.phys_mem_bytes);
  w.U64(c.kernel_reserved_bytes);
  w.U32(c.page_size);
  w.I64(c.num_disks);
  w.U64(c.disk_geometry.capacity_bytes);
  w.U32(c.disk_geometry.rpm);
  w.F64(c.disk_geometry.min_seek_ms);
  w.F64(c.disk_geometry.full_stroke_seek_ms);
  w.F64(c.disk_geometry.transfer_mb_per_s);
  w.F64(c.disk_geometry.controller_overhead_us);
  w.U64(c.disk_geometry.cylinder_span_bytes);
  w.F64(c.disk_geometry.inter_request_rotation_miss_ms);
  w.U32(c.fs_params.block_size);
  w.U64(c.fs_params.total_blocks);
  w.U64(c.fs_params.blocks_per_cg);
  w.U32(c.fs_params.inodes_per_cg);
  w.U32(c.fs_params.inode_size);
  w.U8(static_cast<std::uint8_t>(c.fs_params.allocator));
  w.U32(c.fs_params.sparse_file_gap_blocks);
  w.I64(c.costs.syscall_overhead);
  w.F64(c.costs.copy_mb_per_s);
  w.I64(c.costs.mem_touch);
  w.I64(c.costs.zero_fill_page);
  w.I64(c.costs.page_fault_overhead);
  w.F64(c.costs.cpu_scan_mb_per_s);
  w.F64(c.costs.cpu_sort_mb_per_s);
  w.I64(c.costs.fork_exec);
  w.I64(c.scheduler_slice);
  w.F64(c.timing_jitter);
  w.U64(c.jitter_seed);
  w.U64(c.event_tie_seed);
  w.F64(c.dirty_ratio);
  w.U32(c.readahead_min_pages);
  w.U32(c.readahead_max_pages);
  PutFaultPlan(w, c.chaos);
  PutNetSchedule(w, c.net);
}

[[nodiscard]] bool GetConfig(ByteReader& r, PlatformProfile* profile, MachineConfig* config) {
  profile->name = r.Str();
  profile->mem_policy = static_cast<MemPolicy>(r.U8());
  profile->file_cache_bytes = r.U64();
  profile->fs_allocator = static_cast<AllocatorKind>(r.U8());
  profile->readahead = r.Bool();
  profile->has_mincore = r.Bool();

  config->phys_mem_bytes = r.U64();
  config->kernel_reserved_bytes = r.U64();
  config->page_size = r.U32();
  config->num_disks = static_cast<int>(r.I64());
  config->disk_geometry.capacity_bytes = r.U64();
  config->disk_geometry.rpm = r.U32();
  config->disk_geometry.min_seek_ms = r.F64();
  config->disk_geometry.full_stroke_seek_ms = r.F64();
  config->disk_geometry.transfer_mb_per_s = r.F64();
  config->disk_geometry.controller_overhead_us = r.F64();
  config->disk_geometry.cylinder_span_bytes = r.U64();
  config->disk_geometry.inter_request_rotation_miss_ms = r.F64();
  config->fs_params.block_size = r.U32();
  config->fs_params.total_blocks = r.U64();
  config->fs_params.blocks_per_cg = r.U64();
  config->fs_params.inodes_per_cg = r.U32();
  config->fs_params.inode_size = r.U32();
  config->fs_params.allocator = static_cast<AllocatorKind>(r.U8());
  config->fs_params.sparse_file_gap_blocks = r.U32();
  config->costs.syscall_overhead = r.I64();
  config->costs.copy_mb_per_s = r.F64();
  config->costs.mem_touch = r.I64();
  config->costs.zero_fill_page = r.I64();
  config->costs.page_fault_overhead = r.I64();
  config->costs.cpu_scan_mb_per_s = r.F64();
  config->costs.cpu_sort_mb_per_s = r.F64();
  config->costs.fork_exec = r.I64();
  config->scheduler_slice = r.I64();
  config->timing_jitter = r.F64();
  config->jitter_seed = r.U64();
  config->event_tie_seed = r.U64();
  config->dirty_ratio = r.F64();
  config->readahead_min_pages = r.U32();
  config->readahead_max_pages = r.U32();
  config->chaos = GetFaultPlan(r);
  config->net = GetNetSchedule(r);
  // Sanity floor: a config that fails these would make the object graph
  // below inconsistent (division by zero page size, no disks to restore).
  if (!r.ok() || config->page_size == 0 || config->num_disks < 1 ||
      config->num_disks > 64 ||
      config->phys_mem_bytes <= config->kernel_reserved_bytes) {
    return false;
  }
  return true;
}

void PutKernel(ByteWriter& w, const Os::Image& os) {
  w.I64(os.now);
  PutRngState(w, os.kernel.tie_rng);
  w.U64(os.kernel.next_id);
  w.U64(os.kernel.scheduled_total);
  PutRngState(w, os.jitter_rng);
  w.U64(os.events.size());
  for (const EventQueue::RawEvent& ev : os.events) {
    w.I64(ev.when);
    w.U64(ev.tie);
    w.U64(ev.id);
    w.U32(ev.desc.kind);
    w.I64(ev.desc.dev);
    for (const std::uint64_t a : ev.desc.arg) {
      w.U64(a);
    }
    w.U8(static_cast<std::uint8_t>(ev.band));
  }
}

[[nodiscard]] bool GetKernel(ByteReader& r, Os::Image* os) {
  os->now = r.I64();
  os->kernel.tie_rng = GetRngState(r);
  os->kernel.next_id = r.U64();
  os->kernel.scheduled_total = r.U64();
  os->jitter_rng = GetRngState(r);
  os->events.resize(r.Count(85));  // 8+8+8 + 4+8+48 + 1
  for (EventQueue::RawEvent& ev : os->events) {
    ev.when = r.I64();
    ev.tie = r.U64();
    ev.id = r.U64();
    ev.desc.kind = r.U32();
    ev.desc.dev = static_cast<std::int32_t>(r.I64());
    for (std::uint64_t& a : ev.desc.arg) {
      a = r.U64();
    }
    const std::uint8_t band = r.U8();
    if (band > 1) {
      return false;
    }
    ev.band = static_cast<EventQueue::Band>(band);
  }
  return r.ok();
}

void PutMem(ByteWriter& w, const Os::Image& os) {
  const FrameTable& frames = os.mem->frames();
  const std::size_t n = frames.hot_array().size();
  w.U64(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FrameHot& h = frames.hot_array()[i];
    w.U32(h.lru_prev);
    w.U32(h.lru_next);
    w.U32(h.dirty_prev);
    w.U32(h.dirty_next);
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.U64(frames.touch_array()[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.U8(frames.flags_array()[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.U64(frames.key1_array()[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.U64(frames.key2_array()[i]);
  }
  w.U64(frames.free_list().size());
  for (const FrameId f : frames.free_list()) {
    w.U32(f);
  }
  // Intrusive-list heads (links live in the slab above).
  w.U32(os.mem->file_lru().front());
  w.U32(os.mem->file_lru().back());
  w.U64(os.mem->file_lru().size());
  w.U32(os.mem->anon_lru().front());
  w.U32(os.mem->anon_lru().back());
  w.U64(os.mem->anon_lru().size());
  w.U64(os.mem->file_pages());
  w.U64(os.mem->anon_pages());
  w.U64(os.mem->touch_seq());
  const MemStats& ms = os.mem->stats();
  w.U64(ms.evictions);
  w.U64(ms.file_evictions);
  w.U64(ms.anon_evictions);
  w.U64(ms.admissions_denied);

  PutFlatMap(w, os.cache->pages_map(), [&w](const FrameId& f) { w.U32(f); });
  PutFlatMap(w, os.cache->per_file_counts(), [&w](const std::uint64_t& c) { w.U64(c); });
  w.U32(os.cache->dirty_list().front());
  w.U32(os.cache->dirty_list().back());
  w.U64(os.cache->dirty_list().size());

  os.vm->SerializeTo(w);
}

[[nodiscard]] bool GetMem(ByteReader& r, Os::Image* os) {
  const std::uint64_t n = r.Count(41);  // 16 + 8 + 1 + 8 + 8 bytes per frame
  if (!r.ok()) {
    return false;
  }
  std::vector<FrameHot> hot(n);
  for (FrameHot& h : hot) {
    h.lru_prev = r.U32();
    h.lru_next = r.U32();
    h.dirty_prev = r.U32();
    h.dirty_next = r.U32();
  }
  std::vector<std::uint64_t> touch(n);
  for (std::uint64_t& t : touch) {
    t = r.U64();
  }
  std::vector<std::uint8_t> flags(n);
  for (std::uint8_t& f : flags) {
    f = r.U8();
  }
  std::vector<std::uint64_t> key1(n);
  for (std::uint64_t& k : key1) {
    k = r.U64();
  }
  std::vector<std::uint64_t> key2(n);
  for (std::uint64_t& k : key2) {
    k = r.U64();
  }
  std::vector<FrameId> free_frames(r.Count(4));
  for (FrameId& f : free_frames) {
    f = r.U32();
  }
  if (!r.ok()) {
    return false;
  }
  os->mem->frames().RestoreArrays(std::move(hot), std::move(touch), std::move(flags),
                                  std::move(key1), std::move(key2), std::move(free_frames));
  LruList file_lru;
  LruList anon_lru;
  {
    const FrameId head = r.U32();
    const FrameId tail = r.U32();
    file_lru.RestoreRaw(head, tail, r.U64());
    const FrameId ahead = r.U32();
    const FrameId atail = r.U32();
    anon_lru.RestoreRaw(ahead, atail, r.U64());
  }
  os->mem->RestoreLists(file_lru, anon_lru);
  const std::uint64_t file_pages = r.U64();
  const std::uint64_t anon_pages = r.U64();
  const std::uint64_t touch_seq = r.U64();
  MemStats ms;
  ms.evictions = r.U64();
  ms.file_evictions = r.U64();
  ms.anon_evictions = r.U64();
  ms.admissions_denied = r.U64();
  os->mem->RestoreCounters(file_pages, anon_pages, touch_seq, ms);

  if (!GetFlatMap(r, &os->cache->pages_map_mutable(),
                  [&r]() -> FrameId { return r.U32(); })) {
    return false;
  }
  if (!GetFlatMap(r, &os->cache->per_file_counts_mutable(),
                  [&r]() -> std::uint64_t { return r.U64(); })) {
    return false;
  }
  DirtyList dirty;
  {
    const FrameId head = r.U32();
    const FrameId tail = r.U32();
    dirty.RestoreRaw(head, tail, r.U64());
  }
  os->cache->RestoreDirtyList(dirty);

  return os->vm->DeserializeFrom(r) && r.ok();
}

void PutTables(ByteWriter& w, const Os::Image& os) {
  w.U64(os.fd_tables.size());
  for (const auto& table : os.fd_tables) {
    w.U64(table.size());
    for (const auto& fd : table) {
      w.Bool(fd.open);
      w.I64(fd.disk);
      w.U32(fd.inum);
      w.U64(fd.offset);
      w.U64(fd.next_seq_offset);
      w.U32(fd.ra_window_pages);
    }
  }
  PutFlatMap(w, os.inflight_reads, [&w](const auto& fill) {
    w.I64(fill.completion);
    w.U64(fill.token);
  });
  w.U64(os.next_read_token);
  w.Bool(os.flush_daemon_scheduled);
  w.Bool(os.page_daemon_scheduled);
  w.U32(os.next_pid);
  PutOsStats(w, os.os_stats);
}

[[nodiscard]] bool GetTables(ByteReader& r, Os::Image* os) {
  os->fd_tables.resize(r.Count(8));
  for (auto& table : os->fd_tables) {
    table.resize(r.Count(26));  // 1 + 8 + 4 + 8 + 8 + 4 per FdEntry (-3 slack)
    for (auto& fd : table) {
      fd.open = r.Bool();
      fd.disk = static_cast<int>(r.I64());
      fd.inum = r.U32();
      fd.offset = r.U64();
      fd.next_seq_offset = r.U64();
      fd.ra_window_pages = r.U32();
    }
  }
  // InflightRead is a private Os type; deduce it from the map's own value
  // accessor (access control restricts the name, not the type).
  using Fill = std::remove_cvref_t<decltype(os->inflight_reads.slot_value(0))>;
  if (!GetFlatMap(r, &os->inflight_reads, [&r]() {
        Fill fill;
        fill.completion = r.I64();
        fill.token = r.U64();
        return fill;
      })) {
    return false;
  }
  os->next_read_token = r.U64();
  os->flush_daemon_scheduled = r.Bool();
  os->page_daemon_scheduled = r.Bool();
  os->next_pid = r.U32();
  os->os_stats = GetOsStats(r);
  return r.ok();
}

void PutNet(ByteWriter& w, const NetDevice::State& s) {
  PutDeviceState(w, s.link);
  PutRngState(w, s.rng);
  w.U64(s.endpoints.size());
  for (const NetDevice::Endpoint& ep : s.endpoints) {
    w.U64(ep.inbox.size());
    for (const NetMessage& m : ep.inbox) {
      w.I64(m.from);
      w.U64(m.bytes);
      w.U64(m.tag);
      w.U64(m.seq);
      w.I64(m.sent_at);
    }
    w.U64(ep.in_flight.size());
    for (const Nanos t : ep.in_flight) {
      w.I64(t);
    }
    w.Bool(ep.closed);
  }
  PutHist(w, s.delivery_hist);
  w.U64(s.next_seq);
  w.U64(s.sent);
  w.U64(s.delivered);
  w.U64(s.loss_drops);
  w.U64(s.congestion_drops);
  w.U64(s.red_drops);
  w.U64(s.chaos_drops);
  w.U64(s.reordered);
}

[[nodiscard]] bool GetNet(ByteReader& r, NetDevice::State* s) {
  s->link = GetDeviceState(r);
  s->rng = GetRngState(r);
  s->endpoints.resize(r.Count(17));
  for (NetDevice::Endpoint& ep : s->endpoints) {
    const std::uint64_t inbox = r.Count(40);
    ep.inbox.clear();
    for (std::uint64_t i = 0; i < inbox; ++i) {
      NetMessage m;
      m.from = static_cast<std::int32_t>(r.I64());
      m.bytes = r.U64();
      m.tag = r.U64();
      m.seq = r.U64();
      m.sent_at = r.I64();
      ep.inbox.push_back(m);
    }
    ep.in_flight.resize(r.Count(8));
    for (Nanos& t : ep.in_flight) {
      t = r.I64();
    }
    ep.closed = r.Bool();
  }
  GetHist(r, &s->delivery_hist);
  s->next_seq = r.U64();
  s->sent = r.U64();
  s->delivered = r.U64();
  s->loss_drops = r.U64();
  s->congestion_drops = r.U64();
  s->red_drops = r.U64();
  s->chaos_drops = r.U64();
  s->reordered = r.U64();
  return r.ok();
}

void PutChaos(ByteWriter& w, const Os::Image& os) {
  w.Bool(os.chaos_armed);
  PutFaultPlan(w, os.chaos_plan);
  PutRngState(w, os.chaos_rng);
  PutChaosStats(w, os.chaos_stats);
  w.U64(os.chaos_epoch);
  w.U64(os.antagonist_reader_pos);
  w.U64(os.antagonist_dirty_pos);
}

[[nodiscard]] bool GetChaos(ByteReader& r, Os::Image* os) {
  os->chaos_armed = r.Bool();
  os->chaos_plan = GetFaultPlan(r);
  os->chaos_rng = GetRngState(r);
  os->chaos_stats = GetChaosStats(r);
  os->chaos_epoch = r.U64();
  os->antagonist_reader_pos = r.U64();
  os->antagonist_dirty_pos = r.U64();
  return r.ok();
}

// ---- file assembly ---------------------------------------------------------

void AppendSection(ByteWriter& file, Section tag, ByteWriter&& payload) {
  const std::vector<std::uint8_t> body = payload.Take();
  file.U32(static_cast<std::uint32_t>(tag));
  file.U64(body.size());
  file.U32(Crc32(body.data(), body.size()));
  file.Bytes(body.data(), body.size());
}

// Durable write: tmp file + fsync + rename + directory fsync — the host-side
// twin of the write-order model the simulated kernel exposes through Fsync.
[[nodiscard]] bool WriteFileDurably(const std::string& path,
                                    const std::vector<std::uint8_t>& bytes,
                                    std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    Fail(error, "open " + tmp + ": " + std::strerror(errno));
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      Fail(error, "write " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Fail(error, "fsync " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    Fail(error, "close " + tmp + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Fail(error, "rename " + tmp + " -> " + path + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  // fsync the directory so the rename itself is durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace

bool SaveMachineImage(const MachineImage& image, const std::string& path, std::string* error) {
  ByteWriter file;
  file.Bytes(kMagic, sizeof kMagic);
  file.U32(kMachineImageFormatVersion);
  file.U32(static_cast<std::uint32_t>(std::size(kSectionOrder)));

  {
    ByteWriter w;
    PutIdentity(w, image);
    AppendSection(file, Section::kIdentity, std::move(w));
  }
  {
    ByteWriter w;
    PutConfig(w, image);
    AppendSection(file, Section::kConfig, std::move(w));
  }
  {
    ByteWriter w;
    PutKernel(w, image.os);
    AppendSection(file, Section::kKernel, std::move(w));
  }
  {
    ByteWriter w;
    w.U64(image.os.filesystems.size());
    for (const Ffs& fs : image.os.filesystems) {
      fs.SerializeTo(w);
    }
    AppendSection(file, Section::kFilesystems, std::move(w));
  }
  {
    ByteWriter w;
    w.U64(image.os.disks.size());
    for (const Disk& d : image.os.disks) {
      w.U64(d.head_pos());
      w.Bool(d.head_valid());
      const DiskStats& s = d.stats();
      w.U64(s.requests);
      w.U64(s.sequential_requests);
      w.U64(s.seeks);
      w.U64(s.bytes_read);
      w.U64(s.bytes_written);
      w.I64(s.busy_time);
    }
    w.U64(image.os.disk_devices.size());
    for (const SimDevice::State& s : image.os.disk_devices) {
      PutDeviceState(w, s);
    }
    AppendSection(file, Section::kDisks, std::move(w));
  }
  {
    ByteWriter w;
    PutNet(w, image.os.net);
    AppendSection(file, Section::kNet, std::move(w));
  }
  {
    ByteWriter w;
    PutMem(w, image.os);
    AppendSection(file, Section::kMem, std::move(w));
  }
  {
    ByteWriter w;
    PutTables(w, image.os);
    AppendSection(file, Section::kTables, std::move(w));
  }
  {
    ByteWriter w;
    PutChaos(w, image.os);
    AppendSection(file, Section::kChaos, std::move(w));
  }

  return WriteFileDurably(path, file.data(), error);
}

bool LoadMachineImage(const std::string& path, MachineImage* out, std::string* error) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      Fail(error, "cannot open " + path);
      return false;
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    bytes.resize(static_cast<std::size_t>(size));
    if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
      Fail(error, "cannot read " + path);
      return false;
    }
  }

  ByteReader header(bytes.data(), bytes.size());
  std::uint8_t magic[sizeof kMagic];
  if (!header.Bytes(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    Fail(error, path + ": not a graysim machine image (bad magic)");
    return false;
  }
  const std::uint32_t version = header.U32();
  if (!header.ok() || version != kMachineImageFormatVersion) {
    Fail(error, path + ": unsupported format version " + std::to_string(version));
    return false;
  }
  const std::uint32_t section_count = header.U32();
  if (!header.ok() || section_count != std::size(kSectionOrder)) {
    Fail(error, path + ": unexpected section count");
    return false;
  }

  // Verify framing and CRCs for EVERY section before parsing any: a file
  // with a corrupt later section must be rejected without side effects.
  struct RawSection {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  RawSection sections[std::size(kSectionOrder)];
  for (std::size_t i = 0; i < std::size(kSectionOrder); ++i) {
    const std::uint32_t tag = header.U32();
    const std::uint64_t len = header.U64();
    const std::uint32_t crc = header.U32();
    if (!header.ok() || tag != static_cast<std::uint32_t>(kSectionOrder[i]) ||
        len > header.remaining()) {
      Fail(error, path + ": truncated or malformed section table");
      return false;
    }
    const std::uint8_t* payload = bytes.data() + (bytes.size() - header.remaining());
    if (Crc32(payload, static_cast<std::size_t>(len)) != crc) {
      Fail(error, path + ": section " + std::to_string(tag) + " checksum mismatch");
      return false;
    }
    sections[i] = RawSection{payload, static_cast<std::size_t>(len)};
    std::uint8_t sink = 0;
    for (std::uint64_t skipped = 0; skipped < len; ++skipped) {
      sink = header.U8();
    }
    (void)sink;
  }
  if (header.remaining() != 0) {
    Fail(error, path + ": trailing bytes after last section");
    return false;
  }

  auto reader = [&sections](Section s) {
    const RawSection& raw = sections[static_cast<std::size_t>(s) - 1];
    return ByteReader(raw.data, raw.size);
  };

  MachineImage image;
  {
    ByteReader r = reader(Section::kIdentity);
    image.id = r.U32();
    image.root_seed = r.U64();
    if (!r.Done()) {
      Fail(error, path + ": malformed identity section");
      return false;
    }
  }
  {
    ByteReader r = reader(Section::kConfig);
    if (!GetConfig(r, &image.os.profile, &image.os.config) || !r.Done()) {
      Fail(error, path + ": malformed config section");
      return false;
    }
  }
  const PlatformProfile& profile = image.os.profile;
  const MachineConfig& config = image.os.config;
  {
    ByteReader r = reader(Section::kKernel);
    if (!GetKernel(r, &image.os) || !r.Done()) {
      Fail(error, path + ": malformed kernel section");
      return false;
    }
  }
  {
    ByteReader r = reader(Section::kFilesystems);
    const std::uint64_t n = r.Count(32);
    if (!r.ok() || n != static_cast<std::uint64_t>(config.num_disks)) {
      Fail(error, path + ": filesystem count mismatch");
      return false;
    }
    // Construct with the config's fs params (as the Os constructor does);
    // DeserializeFrom overwrites every field including the params.
    FsParams fs_params = config.fs_params;
    fs_params.block_size = config.page_size;
    fs_params.allocator = profile.fs_allocator;
    image.os.filesystems.reserve(n);
    for (std::uint64_t d = 0; d < n; ++d) {
      image.os.filesystems.emplace_back(fs_params, config.disk_geometry.capacity_bytes);
      if (!image.os.filesystems.back().DeserializeFrom(r)) {
        Fail(error, path + ": malformed filesystem " + std::to_string(d));
        return false;
      }
    }
    if (!r.Done()) {
      Fail(error, path + ": malformed filesystem section");
      return false;
    }
  }
  {
    ByteReader r = reader(Section::kDisks);
    const std::uint64_t n = r.Count(57);
    if (!r.ok() || n != static_cast<std::uint64_t>(config.num_disks)) {
      Fail(error, path + ": disk count mismatch");
      return false;
    }
    image.os.disks.reserve(n);
    for (std::uint64_t d = 0; d < n; ++d) {
      image.os.disks.emplace_back(config.disk_geometry, static_cast<int>(d));
      const std::uint64_t head_pos = r.U64();
      const bool head_valid = r.Bool();
      DiskStats s;
      s.requests = r.U64();
      s.sequential_requests = r.U64();
      s.seeks = r.U64();
      s.bytes_read = r.U64();
      s.bytes_written = r.U64();
      s.busy_time = r.I64();
      image.os.disks.back().RestoreState(head_pos, head_valid, s);
    }
    const std::uint64_t nd = r.Count(8);
    if (!r.ok() || nd != n) {
      Fail(error, path + ": disk device count mismatch");
      return false;
    }
    image.os.disk_devices.reserve(nd);
    for (std::uint64_t d = 0; d < nd; ++d) {
      image.os.disk_devices.push_back(GetDeviceState(r));
    }
    if (!r.Done()) {
      Fail(error, path + ": malformed disk section");
      return false;
    }
  }
  {
    ByteReader r = reader(Section::kNet);
    if (!GetNet(r, &image.os.net) || !r.Done()) {
      Fail(error, path + ": malformed net section");
      return false;
    }
  }
  {
    // Build the memory hierarchy exactly as the Os constructor sizes it,
    // then overwrite with the captured state (mirrors Os::CaptureImage).
    image.os.mem = std::make_unique<MemSystem>(MemSystem::Config{
        (config.phys_mem_bytes - config.kernel_reserved_bytes) / config.page_size,
        profile.mem_policy, profile.file_cache_bytes / config.page_size});
    image.os.cache = std::make_unique<PageCache>(image.os.mem.get());
    image.os.vm = std::make_unique<Vm>(image.os.mem.get());
    ByteReader r = reader(Section::kMem);
    if (!GetMem(r, &image.os) || !r.Done()) {
      Fail(error, path + ": malformed memory section");
      return false;
    }
  }
  {
    ByteReader r = reader(Section::kTables);
    if (!GetTables(r, &image.os) || !r.Done()) {
      Fail(error, path + ": malformed tables section");
      return false;
    }
  }
  {
    ByteReader r = reader(Section::kChaos);
    if (!GetChaos(r, &image.os) || !r.Done()) {
      Fail(error, path + ": malformed chaos section");
      return false;
    }
  }

  *out = std::move(image);
  return true;
}

}  // namespace graysim
