// The simulated operating system: POSIX-flavoured syscalls over the disk
// model, FFS file systems, unified page cache, and virtual memory.
//
// This is the gray box. Every syscall charges virtual time to the calling
// process; elapsed virtual time is the only channel through which the
// gray-box layers in src/gray observe internal state. Ground-truth
// introspection methods (clearly marked) exist solely for tests and for
// reproducing the paper's "modified kernel" baselines (e.g., the presence
// bitmap used to validate Fig 1).
//
// The simulation core is a discrete-event kernel: every disk has a real
// request queue with completion events, and the page daemon, write-behind
// flusher, and readahead fills run as background work on the event queue.
// A faulting process blocks only until *its* request completes; eviction
// and prefetch I/O proceed asynchronously — except direct reclaim, where a
// foreground allocation that must evict a dirty victim waits for that
// eviction's I/O, exactly the slow-touch signal MAC depends on.
//
// Paths name a disk explicitly: "/d0/dir/file" is on disk 0. The last disk
// doubles as the paging (swap) device, as in the paper's Fig 7 setup.
#ifndef SRC_OS_OS_H_
#define SRC_OS_OS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/disk/disk.h"
#include "src/disk/disk_queue.h"
#include "src/fs/ffs.h"
#include "src/mem/mem_system.h"
#include "src/net/net_device.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/chaos_engine.h"
#include "src/os/platform.h"
#include "src/os/scheduler.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/flat_map.h"
#include "src/sim/rng.h"
#include "src/vm/vm.h"

namespace graysim {

struct OsStats {
  std::uint64_t syscalls = 0;
  std::uint64_t batch_syscalls = 0;  // batched entries (each counts 1 syscall)
  std::uint64_t batched_ops = 0;     // constituent ops carried by batches
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t swap_ins = 0;
  std::uint64_t swap_outs = 0;
  std::uint64_t readahead_pages = 0;
  std::uint64_t writeback_pages = 0;
  std::uint64_t daemon_wakeups = 0;        // page-daemon + flusher activations
  std::uint64_t queued_disk_requests = 0;  // requests submitted to device queues
  std::uint64_t net_sends = 0;
  std::uint64_t net_recvs = 0;  // NetRecv syscalls (including timeouts)
  std::uint64_t fsyncs = 0;
  std::uint64_t syncfs_calls = 0;

  friend bool operator==(const OsStats&, const OsStats&) = default;
};

// What a crash cost, reported by Os::Recover. Counters are cumulative over
// the machine's lifetime (a supervisor summing shards wants totals, and a
// replay pin wants one value to compare); recovery_time is the virtual time
// the LAST recovery's consistency scan consumed.
struct RecoveryStats {
  std::uint64_t crashes = 0;
  // Dirty page-cache pages (data + metadata) lost at the crash instant —
  // writes the kernel had accepted but not yet made durable.
  std::uint64_t lost_dirty_pages = 0;
  // Disk WRITE requests that were queued or in flight when the machine
  // died: under the write-order model their completion event never fired,
  // so their sectors hold torn state the scan must repair.
  std::uint64_t torn_writes = 0;
  // Metadata blocks among the lost dirty pages (inode table / directory /
  // bitmap blocks) — the blocks fsck re-reads and rewrites.
  std::uint64_t repaired_meta_blocks = 0;
  // Virtual time the last Recover() spent scanning cylinder-group metadata.
  Nanos recovery_time = 0;

  friend bool operator==(const RecoveryStats&, const RecoveryStats&) = default;
};

// One operation of a batched syscall (see Os::PreadBatch etc.). The batch
// crosses the syscall boundary — and pays the syscall overhead — once; each
// constituent operation is still executed and timed individually.
struct PreadBatchOp {
  int fd = -1;
  std::uint64_t len = 1;
  std::uint64_t offset = 0;
};

struct VmTouchBatchOp {
  VmAreaId area = 0;
  std::uint64_t page_index = 0;
  bool write = true;
};

struct BatchOpResult {
  Nanos latency_ns = 0;
  std::int64_t rc = 0;
};

// Os implements MemSystem's EvictionHandler directly (private base): the
// eviction hot path is a virtual call into OnEvict, with no std::function
// allocation or indirection.
class Os : private EvictionHandler {
 public:
  explicit Os(PlatformProfile profile, MachineConfig config = MachineConfig{});

  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // ---- processes ----
  // A default process (pid 0) exists for single-process experiments.
  [[nodiscard]] Pid default_pid() const { return 0; }
  // Runs the given bodies as concurrently scheduled processes. Each body
  // receives a fresh pid. Blocks until all complete.
  void RunProcesses(const std::vector<std::function<void(Pid)>>& bodies);

  // ---- time ----
  [[nodiscard]] Nanos Now() const { return clock_.now(); }
  void Sleep(Pid pid, Nanos duration);
  void Compute(Pid pid, Nanos duration);  // CPU burn, preemptible

  // ---- files ----
  // All calls return >= 0 on success; a negative value is
  // -static_cast<int>(FsErr).
  [[nodiscard]] int Open(Pid pid, std::string_view path);
  int Close(Pid pid, int fd);
  // Reads `len` bytes at `offset`. `buf` may be empty (timing-only read); if
  // non-empty, min(len, buf.size()) bytes of deterministic content are
  // produced.
  std::int64_t Pread(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                     std::uint64_t offset);
  std::int64_t Pwrite(Pid pid, int fd, std::uint64_t len, std::uint64_t offset);
  // Sequential variants: read/write at the fd's file offset, advancing it.
  std::int64_t Read(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len);
  std::int64_t Write(Pid pid, int fd, std::uint64_t len);
  // Repositions the fd offset (SEEK_SET semantics; pass kSeekEnd for EOF).
  static constexpr std::uint64_t kSeekEnd = ~0ULL;
  std::int64_t Lseek(Pid pid, int fd, std::uint64_t offset);
  int Fsync(Pid pid, int fd);
  // syncfs(2): flushes EVERY dirty page living on `disk` — file data and
  // metadata — and waits for the device to drain. The heavyweight durability
  // barrier checkpointing code reaches for when it cannot enumerate fds.
  int Syncfs(Pid pid, int disk);
  int Ftruncate(Pid pid, int fd, std::uint64_t size);

  // mincore(2): residency bitmap for a byte range of an open file. Returns
  // -kInvalid on platforms whose profile lacks the interface (paper §4.1
  // footnote 1).
  int Mincore(Pid pid, int fd, std::uint64_t offset, std::uint64_t length,
              std::vector<bool>* resident);

  int Creat(Pid pid, std::string_view path);  // returns fd; truncates
  int Stat(Pid pid, std::string_view path, InodeAttr* out);

  // ---- network ----
  // The machine has one simulated link (MachineConfig::net). Endpoints are
  // small integer handles shared machine-wide — communicating fibers
  // exchange datagrams with an opaque tag, and loss is silent to the sender
  // (inferring why a message vanished is the gray-box layers' job).
  [[nodiscard]] int NetEndpoint(Pid pid);
  // Queues `bytes` from endpoint `from` to `to`. Returns `bytes`, or
  // -kInvalid for a bad endpoint. Charged like a write: syscall overhead
  // plus the user->kernel copy.
  std::int64_t NetSend(Pid pid, int from, int to, std::uint64_t bytes, std::uint64_t tag);
  // Blocks until a message lands at `endpoint` or `timeout` elapses
  // (timeout 0 = non-blocking try-recv). Returns the message's byte count
  // and fills *out, or -kTimedOut. While blocked the process sleeps on the
  // scheduler in arrival-time increments, so other fibers run.
  std::int64_t NetRecv(Pid pid, int endpoint, Nanos timeout, NetMessage* out);
  // Delivered-and-unread message count at `endpoint` (the cheap spin-wait
  // primitive: a poll costs one syscall, not a blocking slot).
  std::int64_t NetPoll(Pid pid, int endpoint);

  // ---- batched syscalls ----
  // Each executes min(ops.size(), out.size()) operations in request order,
  // charging the syscall-entry overhead ONCE for the whole batch instead of
  // once per operation. Every constituent operation still runs the full
  // scalar path — same cache effects, same disk I/O, same per-byte costs —
  // and its individual elapsed virtual time is reported in out[i].latency_ns.
  // Batched reads are timing-only (no data buffer), matching their
  // probing/prefetch role.
  void PreadBatch(Pid pid, std::span<const PreadBatchOp> ops, std::span<BatchOpResult> out);
  void StatBatch(Pid pid, std::span<const std::string> paths, std::span<InodeAttr> attrs,
                 std::span<BatchOpResult> out);
  // VmTouch is a memory access, not a syscall, so there is no overhead to
  // amortize; the batch still saves N-1 boundary crossings for callers.
  void VmTouchBatch(Pid pid, std::span<const VmTouchBatchOp> ops,
                    std::span<BatchOpResult> out);
  int Unlink(Pid pid, std::string_view path);
  int Mkdir(Pid pid, std::string_view path);
  int Rmdir(Pid pid, std::string_view path);
  int Rename(Pid pid, std::string_view from, std::string_view to);
  int ReadDir(Pid pid, std::string_view path, std::vector<DirEntryInfo>* out);
  int Utimes(Pid pid, std::string_view path, Nanos atime, Nanos mtime);

  // ---- memory ----
  [[nodiscard]] VmAreaId VmAlloc(Pid pid, std::uint64_t bytes);
  void VmFree(Pid pid, VmAreaId area);
  // Touches one page of the area; write=true models a store.
  void VmTouch(Pid pid, VmAreaId area, std::uint64_t page_index, bool write);

  [[nodiscard]] std::uint32_t page_size() const { return config_.page_size; }
  [[nodiscard]] const CostModel& costs() const { return config_.costs; }
  [[nodiscard]] const PlatformProfile& profile() const { return profile_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  // ---- experiment control (not part of the gray-box interface) ----
  // Drops the entire file cache without charging time ("reboot-fresh" cache,
  // used between experiment trials exactly as the paper flushes caches).
  // In-flight readahead fills are invalidated so stale data cannot land.
  void FlushFileCache();

  // Arms the chaos layer with `plan` (replacing any armed plan) starting at
  // the current virtual time. A disabled plan is equivalent to DisarmChaos.
  // Benches arm after building their file sets so setup stays fault-free;
  // MachineConfig::chaos arms at construction for whole-run interference.
  void ArmChaos(const FaultPlan& plan);
  // Disarms injection, cancels antagonist/shock ticks, and drops the pages
  // the antagonists held (their interference stops, not lingers).
  void DisarmChaos();
  [[nodiscard]] bool chaos_armed() const { return chaos_ != nullptr; }
  // Injected-fault counters of the armed plan (zeros when disarmed). By
  // value: determinism tests snapshot it next to OsStats.
  [[nodiscard]] ChaosStats chaos_stats() const {
    return chaos_ != nullptr ? chaos_->stats() : ChaosStats{};
  }

  // ---- crash-stop & recovery ----
  // True between the FaultPlan::crash_at instant taking effect and the next
  // Recover() call. While crashed, every syscall a still-running fiber
  // attempts unwinds that fiber (its "stack died with the machine"); the
  // owner must not start new work until Recover() has run.
  [[nodiscard]] bool crashed() const { return crashed_; }
  // Post-crash restart: discards volatile state (dirty page-cache pages,
  // in-flight disk and net requests, fd tables, pending events), then runs
  // a deterministic FFS consistency scan that re-reads every cylinder
  // group's metadata range and rewrites the blocks torn writes touched,
  // charging the scan's virtual time. Returns the cumulative RecoveryStats
  // (also available via recovery_stats()). Chaos stays armed with the same
  // plan — its crash_at is in the past, so it cannot re-fire. Must be
  // called at quiescence (between RunProcesses calls).
  RecoveryStats Recover();
  [[nodiscard]] const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // ---- observability (tests & benches only; never part of the gray-box
  // interface — an ICL that read the trace would be an X-ray, not a gray
  // box) ----
  // Starts recording trace events into a ring of `capacity` events.
  // Tracing is passive: it never touches the virtual clock, the jitter
  // stream, or event ordering, so a traced run is bit-identical in virtual
  // time and OsStats to an untraced one (pinned by tests/trace_test.cc).
  void StartTrace(std::size_t capacity = obs::TraceSink::kDefaultCapacity);
  void StopTrace() { trace_.Disable(); }
  [[nodiscard]] bool TraceEnabled() const {
    return obs::TraceSink::compiled_in() && trace_.enabled();
  }
  [[nodiscard]] obs::TraceSink& trace() { return trace_; }
  [[nodiscard]] const obs::TraceSink& trace() const { return trace_; }

  // Binds this kernel's counters, chaos stats, and per-disk service-time
  // histograms into `registry` (pull model: values are read at Collect
  // time). Names are prefixed "os." / "chaos." / "disk<N>.".
  void BindMetrics(obs::MetricsRegistry* registry) const;

  // ---- ground truth introspection (tests & benches only) ----
  [[nodiscard]] bool PageResidentPath(std::string_view path, std::uint64_t page_index) const;
  [[nodiscard]] double ResidentFraction(std::string_view path) const;
  [[nodiscard]] std::uint64_t FileCachePages() const { return cache_.resident_pages(); }
  [[nodiscard]] std::uint64_t FreeMemBytes() const {
    return mem_.free_pages() * config_.page_size;
  }
  [[nodiscard]] std::uint64_t UsableMemBytes() const {
    return mem_.total_pages() * config_.page_size;
  }
  [[nodiscard]] const OsStats& stats() const { return os_stats_; }
  // Total events ever scheduled on the kernel queue — the natural "ops"
  // denominator for host-side throughput numbers in the benches.
  [[nodiscard]] std::uint64_t events_scheduled() const { return events_.scheduled_total(); }
  [[nodiscard]] const MemStats& mem_stats() const { return mem_.stats(); }
  [[nodiscard]] const DiskStats& disk_stats(int disk) const { return disks_[disk].stats(); }
  [[nodiscard]] const DiskQueue& disk_queue(int disk) const { return *disk_queues_[disk]; }
  [[nodiscard]] std::uint64_t MaxDiskQueueDepth(int disk) const {
    return disk_queues_[disk]->max_depth();
  }
  [[nodiscard]] const NetDevice& net() const { return *net_; }
  [[nodiscard]] const Ffs& fs(int disk) const { return *filesystems_[disk]; }
  [[nodiscard]] Ffs& fs_mutable(int disk) { return *filesystems_[disk]; }
  [[nodiscard]] int num_disks() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] std::uint64_t VmResidentPages(Pid pid) const { return vm_.ResidentPages(pid); }

 private:
  struct FdEntry {
    bool open = false;
    int disk = -1;
    Inum inum = kInvalidInum;
    // File offset for the sequential Read/Write variants.
    std::uint64_t offset = 0;
    // Sequential-readahead state.
    std::uint64_t next_seq_offset = 0;
    std::uint32_t ra_window_pages = 0;
  };

  struct PathRef {
    int disk = -1;
    std::string sub;  // path within the file system
  };

  // A demand or readahead read whose completion event has not yet filled
  // the cache. The token guards against ABA: a drop + re-read of the same
  // page must not let the older fill install stale contents.
  struct InflightRead {
    Nanos completion = 0;
    std::uint64_t token = 0;
  };

  // Splits "/dN/rest" into (N, "/rest"). Returns false on malformed paths.
  [[nodiscard]] bool ParsePath(std::string_view path, PathRef* out) const;

  // Charges CPU-side `cost` to pid (advances clock; may yield under the
  // scheduler). Applies the configured multiplicative timing jitter and
  // drains newly due events.
  void Charge(Pid pid, Nanos cost);
  [[nodiscard]] Nanos Jittered(Nanos cost);

  // Blocks pid until `deadline` (no-op if already past). Under the
  // scheduler other processes run meanwhile; standalone, the clock jumps
  // and due events (completions, daemons) are drained.
  void WaitUntil(Pid pid, Nanos deadline);

  // If the current foreground operation triggered direct reclaim of a
  // dirty/anon victim, block until that eviction I/O completes — the
  // process-context reclaim wait of the modeled kernels.
  void DrainDirectReclaim(Pid pid);

  // MemSystem eviction callback (file writeback / swap-out); see the
  // EvictionHandler base.
  Nanos OnEvict(const Page& page) override;

  // RAII marker for work running off the event queue (daemons, cache
  // fills): evictions it triggers are background, so no direct-reclaim
  // wait is recorded against a foreground process.
  class BackgroundScope {
   public:
    explicit BackgroundScope(Os* os) : os_(os), prev_(os->in_background_) {
      os_->in_background_ = true;
    }
    ~BackgroundScope() { os_->in_background_ = prev_; }
    BackgroundScope(const BackgroundScope&) = delete;
    BackgroundScope& operator=(const BackgroundScope&) = delete;

   private:
    Os* os_;
    bool prev_;
  };

  // Submits a request to a device queue; returns its completion time. The
  // caller decides whether to wait (demand I/O) or not (background I/O).
  Nanos SubmitDiskIo(int disk, std::uint64_t block, std::uint64_t pages, bool is_write,
                     DiskQueue::CompletionFn on_complete);
  // Variant with an explicit snapshot descriptor for the completion event —
  // required when on_complete is non-null, since the closure itself cannot
  // be captured into a machine image.
  Nanos SubmitDiskIo(int disk, std::uint64_t block, std::uint64_t pages, bool is_write,
                     DiskQueue::CompletionFn on_complete, const EventDesc& desc);
  // Disk request to the swap partition (last disk, upper half).
  Nanos SubmitSwapIo(std::uint64_t slot, bool is_write);

  // Submits a read whose completion fills the cache with pages
  // [first_page, first_page + npages) of `tagged`, registered in the
  // in-flight map so concurrent readers wait instead of re-issuing.
  Nanos SubmitReadFill(int disk, Inum tagged, std::uint64_t first_page, std::uint64_t npages,
                       std::uint64_t start_block, bool readahead);
  void FillPages(Inum tagged, std::uint64_t first_page, std::uint64_t npages,
                 std::uint64_t token, bool readahead);
  // Forgets in-flight fills for pages >= from_page of a file whose cache
  // entries were dropped (truncate/unlink/replace).
  void InvalidateInflight(Inum tagged, std::uint64_t from_page);

  // Deterministic synthesized file content (the simulation stores no data).
  [[nodiscard]] static std::uint8_t ContentByte(Inum tagged, std::uint64_t offset);

  // Reads a metadata block (inode table / directory) through the cache.
  void MetaRead(Pid pid, int disk, std::uint64_t block);
  void MetaDirty(Pid pid, int disk, std::uint64_t block);

  // Charges the directory walk + final inode read for resolving `path`.
  void ChargeWalk(Pid pid, const PathRef& ref);

  // Background daemons, both running as event-queue closures.
  // Write-behind flusher: batches the oldest dirty pages to disk when the
  // dirty limit is exceeded.
  void MaybeWakeFlushDaemon();
  void FlushDaemonRun();
  // Page daemon (unified-LRU profile): keeps the free list between its
  // watermarks, paced by the completion of the eviction I/O it submits.
  void MaybeWakePageDaemon();
  void PageDaemonRun();

  // Maps dirty pages to disk blocks, coalesces contiguous runs, and submits
  // them as background writes. Returns the last completion time (0 if
  // nothing was submitted).
  Nanos SubmitWritebackRuns(std::vector<std::pair<Inum, std::uint64_t>> pages);

  // Page-cache keys tag the fs-local inum with its disk so files on
  // different disks never collide: tagged = (disk << 24) | inum. The top of
  // the local range is reserved for pseudo-files whose page index is a raw
  // disk block number, not a file page: 0xFFFFFF is that disk's metadata
  // (inode table and directory blocks), 0xFFFFFE holds antagonist-daemon
  // pages, and 0xFFFFFD holds memory-pressure-shock pages.
  static constexpr Inum kMetaLocalInum = 0xFFFFFF;
  static constexpr Inum kAntagonistLocalInum = 0xFFFFFE;
  static constexpr Inum kShockLocalInum = 0xFFFFFD;
  [[nodiscard]] static Inum Tag(int disk, Inum inum) {
    return (static_cast<Inum>(disk) << 24) | inum;
  }
  [[nodiscard]] static Inum LocalInum(Inum tagged) { return tagged & kMetaLocalInum; }
  [[nodiscard]] static int DiskOfInum(Inum tagged) { return static_cast<int>(tagged >> 24); }
  [[nodiscard]] static bool IsMetaInum(Inum tagged) {
    return LocalInum(tagged) == kMetaLocalInum;
  }
  // True for every reserved pseudo-file: their dirty pages write back to the
  // block named by the page key directly, with no Ffs::BlockOf translation.
  [[nodiscard]] static bool IsPseudoInum(Inum tagged) {
    return LocalInum(tagged) >= kShockLocalInum;
  }
  // Same packing as PageCache::Key, for the in-flight read map.
  [[nodiscard]] static std::uint64_t PageKey(Inum tagged, std::uint64_t page) {
    return (static_cast<std::uint64_t>(tagged) << 32) | page;
  }

  [[nodiscard]] FdEntry* GetFd(Pid pid, int fd);

  // Syscall bodies shared by the scalar and batched entry points. Neither
  // counts a syscall nor charges entry overhead — the public wrappers do.
  std::int64_t PreadImpl(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                         std::uint64_t offset);
  int StatImpl(Pid pid, std::string_view path, InodeAttr* out);

  // Chaos-layer tick bodies, self-rescheduling on the event queue while
  // their arming epoch is current (DisarmChaos bumps the epoch, orphaning
  // any in-flight ticks instead of hunting them down in the heap).
  void AntagonistTick(std::uint64_t epoch);
  void ShockTick(std::uint64_t epoch);

  // Thrown through a fiber body when the machine crash-stops: RunProcesses
  // catches it per process, so each still-running fiber unwinds cleanly
  // (destructors run — the fiber's host-side stack must not leak even
  // though the simulated stack "died"). Internal: never escapes Os.
  struct CrashUnwind {};

  // The kCrash event body. Only sets flags and readies sleepers — it runs
  // inside EventQueue dispatch, where throwing would corrupt the queue; the
  // actual unwind happens at each fiber's next charge/wake boundary.
  void CrashNow(std::uint64_t epoch);
  // Throws CrashUnwind out of the calling fiber when the machine has
  // crashed and a fiber context is live (standalone callers — benches
  // driving pid 0 outside RunProcesses — see the flag via crashed()).
  void ThrowIfCrashed();

  // ---- snapshot internals ----
  // Rebuilds the closure for one captured event descriptor, bound to this
  // Os's own subsystems (the EventKind registry names every pendable event).
  [[nodiscard]] EventFn MaterializeEvent(const EventDesc& desc);
  // Installs the chaos engine and the device/net hooks for `plan` WITHOUT
  // scheduling the initial antagonist/shock ticks: ArmChaos schedules fresh
  // ones, RestoreImage re-imports the captured in-flight ticks instead.
  void ArmChaosHooks(const FaultPlan& plan);

  PlatformProfile profile_;
  MachineConfig config_;
  SimClock clock_;
  EventQueue events_;
  Scheduler scheduler_;
  MemSystem mem_;
  PageCache cache_;
  Vm vm_;
  std::vector<Disk> disks_;
  std::vector<std::unique_ptr<DiskQueue>> disk_queues_;
  std::unique_ptr<NetDevice> net_;
  std::vector<std::unique_ptr<Ffs>> filesystems_;
  std::vector<std::vector<FdEntry>> fd_tables_;  // per pid
  // pid -> scheduler slot (-1 when not scheduled); dense because pids are
  // assigned sequentially. Read on every Charge, so it must be a flat
  // array, not a hash map.
  std::vector<int> sched_slots_;
  FlatMap<InflightRead> inflight_reads_;  // PageKey -> fill
  std::uint64_t next_read_token_ = 1;
  // Completion time of eviction I/O submitted by the current foreground
  // operation; consumed by DrainDirectReclaim.
  Nanos direct_reclaim_wait_ = 0;
  bool in_background_ = false;
  bool flush_daemon_scheduled_ = false;
  bool page_daemon_scheduled_ = false;
  std::uint64_t page_daemon_low_pages_ = 0;
  std::uint64_t page_daemon_high_pages_ = 0;
  std::uint64_t dirty_limit_pages_ = 0;
  std::uint64_t swap_base_offset_ = 0;
  int swap_disk_ = 0;
  bool in_scheduler_run_ = false;
  Pid next_pid_ = 1;
  Rng jitter_rng_;
  OsStats os_stats_;
  // Trace sink, wired into events_/scheduler_/disk queues by the
  // constructor. Inert (one disabled-branch per emitter) until StartTrace.
  obs::TraceSink trace_;
  // Chaos layer (null when disarmed — the common case; every hook starts
  // with a null check so an unarmed kernel takes no chaos branches beyond
  // that).
  std::unique_ptr<ChaosEngine> chaos_;
  std::uint64_t chaos_epoch_ = 0;
  std::uint64_t antagonist_reader_pos_ = 0;
  std::uint64_t antagonist_dirty_pos_ = 0;
  // Crash-stop state: set by CrashNow, cleared by Recover.
  bool crashed_ = false;
  Nanos crash_instant_ = 0;
  RecoveryStats recovery_stats_;

 public:
  // ---- snapshot / fork ----
  // A self-contained copy of one Os's complete simulation state, captured
  // at quiescence (between RunProcesses calls — ucontext fiber stacks
  // cannot be serialized, and none exist then). Pending events are pure
  // data (EventDesc); the noncopyable memory-hierarchy classes are held
  // behind pointers and state-copied both ways. An Image is immutable after
  // capture and safe to share across threads, so any number of machines can
  // fork from one image concurrently. Declared after the private section
  // because it embeds the private FdEntry/InflightRead table types.
  struct Image {
    PlatformProfile profile;
    MachineConfig config;
    Nanos now = 0;
    // Kernel event core: every pending event plus the queue's tie-RNG /
    // id-counter state (see EventQueue::KernelState for why the tie stream
    // must survive the fork mid-sequence).
    std::vector<EventQueue::RawEvent> events;
    EventQueue::KernelState kernel;
    Rng::State jitter_rng;
    // Storage stack: file systems, disk head/stats, device busy timelines.
    std::vector<Ffs> filesystems;
    std::vector<Disk> disks;
    std::vector<SimDevice::State> disk_devices;
    NetDevice::State net;
    // Memory hierarchy. FrameIds are indices into the copied slab, so the
    // cache and VM bookkeeping transfer verbatim, with no id translation.
    std::unique_ptr<MemSystem> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Vm> vm;
    // Process-visible kernel tables.
    std::vector<std::vector<FdEntry>> fd_tables;
    FlatMap<InflightRead> inflight_reads;
    std::uint64_t next_read_token = 1;
    bool flush_daemon_scheduled = false;
    bool page_daemon_scheduled = false;
    Pid next_pid = 1;
    OsStats os_stats;
    // Chaos layer: plan + mid-sequence RNG + counters + the arming epoch
    // (captured tick events carry epochs; the restored kernel must agree).
    bool chaos_armed = false;
    FaultPlan chaos_plan;
    Rng::State chaos_rng;
    ChaosStats chaos_stats;
    std::uint64_t chaos_epoch = 0;
    std::uint64_t antagonist_reader_pos = 0;
    std::uint64_t antagonist_dirty_pos = 0;

    // Rough in-memory footprint (bytes), for the fork-cost benchmarks.
    [[nodiscard]] std::uint64_t ApproxBytes() const;
  };

  // Captures this Os's state. Asserts quiescence: no scheduler run active
  // and every pending event carries a rebuildable descriptor.
  [[nodiscard]] Image CaptureImage() const;
  // Overwrites a FRESHLY CONSTRUCTED Os — built from image.profile and
  // image.config with chaos disabled, so construction schedules nothing —
  // with the image's state, materializing event closures from their
  // descriptors. From the capture instant on, execution is bit-identical to
  // the original's: same virtual times, same stats, same trace.
  void RestoreImage(const Image& image);
};

}  // namespace graysim

#endif  // SRC_OS_OS_H_
