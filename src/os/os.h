// The simulated operating system: POSIX-flavoured syscalls over the disk
// model, FFS file systems, unified page cache, and virtual memory.
//
// This is the gray box. Every syscall charges virtual time to the calling
// process; elapsed virtual time is the only channel through which the
// gray-box layers in src/gray observe internal state. Ground-truth
// introspection methods (clearly marked) exist solely for tests and for
// reproducing the paper's "modified kernel" baselines (e.g., the presence
// bitmap used to validate Fig 1).
//
// Paths name a disk explicitly: "/d0/dir/file" is on disk 0. The last disk
// doubles as the paging (swap) device, as in the paper's Fig 7 setup.
#ifndef SRC_OS_OS_H_
#define SRC_OS_OS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/disk/disk.h"
#include "src/fs/ffs.h"
#include "src/mem/mem_system.h"
#include "src/os/platform.h"
#include "src/os/scheduler.h"
#include "src/sim/clock.h"
#include "src/sim/rng.h"
#include "src/vm/vm.h"

namespace graysim {

struct OsStats {
  std::uint64_t syscalls = 0;
  std::uint64_t batch_syscalls = 0;  // batched entries (each counts 1 syscall)
  std::uint64_t batched_ops = 0;     // constituent ops carried by batches
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t swap_ins = 0;
  std::uint64_t swap_outs = 0;
  std::uint64_t readahead_pages = 0;
  std::uint64_t writeback_pages = 0;
};

// One operation of a batched syscall (see Os::PreadBatch etc.). The batch
// crosses the syscall boundary — and pays the syscall overhead — once; each
// constituent operation is still executed and timed individually.
struct PreadBatchOp {
  int fd = -1;
  std::uint64_t len = 1;
  std::uint64_t offset = 0;
};

struct VmTouchBatchOp {
  VmAreaId area = 0;
  std::uint64_t page_index = 0;
  bool write = true;
};

struct BatchOpResult {
  Nanos latency_ns = 0;
  std::int64_t rc = 0;
};

class Os {
 public:
  explicit Os(PlatformProfile profile, MachineConfig config = MachineConfig{});

  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // ---- processes ----
  // A default process (pid 0) exists for single-process experiments.
  [[nodiscard]] Pid default_pid() const { return 0; }
  // Runs the given bodies as concurrently scheduled processes. Each body
  // receives a fresh pid. Blocks until all complete.
  void RunProcesses(const std::vector<std::function<void(Pid)>>& bodies);

  // ---- time ----
  [[nodiscard]] Nanos Now() const { return clock_.now(); }
  void Sleep(Pid pid, Nanos duration);
  void Compute(Pid pid, Nanos duration);  // CPU burn, preemptible

  // ---- files ----
  // All calls return >= 0 on success; a negative value is
  // -static_cast<int>(FsErr).
  [[nodiscard]] int Open(Pid pid, std::string_view path);
  int Close(Pid pid, int fd);
  // Reads `len` bytes at `offset`. `buf` may be empty (timing-only read); if
  // non-empty, min(len, buf.size()) bytes of deterministic content are
  // produced.
  std::int64_t Pread(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                     std::uint64_t offset);
  std::int64_t Pwrite(Pid pid, int fd, std::uint64_t len, std::uint64_t offset);
  // Sequential variants: read/write at the fd's file offset, advancing it.
  std::int64_t Read(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len);
  std::int64_t Write(Pid pid, int fd, std::uint64_t len);
  // Repositions the fd offset (SEEK_SET semantics; pass kSeekEnd for EOF).
  static constexpr std::uint64_t kSeekEnd = ~0ULL;
  std::int64_t Lseek(Pid pid, int fd, std::uint64_t offset);
  int Fsync(Pid pid, int fd);
  int Ftruncate(Pid pid, int fd, std::uint64_t size);

  // mincore(2): residency bitmap for a byte range of an open file. Returns
  // -kInvalid on platforms whose profile lacks the interface (paper §4.1
  // footnote 1).
  int Mincore(Pid pid, int fd, std::uint64_t offset, std::uint64_t length,
              std::vector<bool>* resident);

  int Creat(Pid pid, std::string_view path);  // returns fd; truncates
  int Stat(Pid pid, std::string_view path, InodeAttr* out);

  // ---- batched syscalls ----
  // Each executes min(ops.size(), out.size()) operations in request order,
  // charging the syscall-entry overhead ONCE for the whole batch (one
  // turnstile crossing) instead of once per operation. Every constituent
  // operation still runs the full scalar path — same cache effects, same
  // disk I/O, same per-byte costs — and its individual elapsed virtual time
  // is reported in out[i].latency_ns. Batched reads are timing-only (no
  // data buffer), matching their probing/prefetch role.
  void PreadBatch(Pid pid, std::span<const PreadBatchOp> ops, std::span<BatchOpResult> out);
  void StatBatch(Pid pid, std::span<const std::string> paths, std::span<InodeAttr> attrs,
                 std::span<BatchOpResult> out);
  // VmTouch is a memory access, not a syscall, so there is no overhead to
  // amortize; the batch still saves N-1 boundary crossings for callers.
  void VmTouchBatch(Pid pid, std::span<const VmTouchBatchOp> ops,
                    std::span<BatchOpResult> out);
  int Unlink(Pid pid, std::string_view path);
  int Mkdir(Pid pid, std::string_view path);
  int Rmdir(Pid pid, std::string_view path);
  int Rename(Pid pid, std::string_view from, std::string_view to);
  int ReadDir(Pid pid, std::string_view path, std::vector<DirEntryInfo>* out);
  int Utimes(Pid pid, std::string_view path, Nanos atime, Nanos mtime);

  // ---- memory ----
  [[nodiscard]] VmAreaId VmAlloc(Pid pid, std::uint64_t bytes);
  void VmFree(Pid pid, VmAreaId area);
  // Touches one page of the area; write=true models a store.
  void VmTouch(Pid pid, VmAreaId area, std::uint64_t page_index, bool write);

  [[nodiscard]] std::uint32_t page_size() const { return config_.page_size; }
  [[nodiscard]] const CostModel& costs() const { return config_.costs; }
  [[nodiscard]] const PlatformProfile& profile() const { return profile_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  // ---- experiment control (not part of the gray-box interface) ----
  // Drops the entire file cache without charging time ("reboot-fresh" cache,
  // used between experiment trials exactly as the paper flushes caches).
  void FlushFileCache();
  // Also returns all swapped anon pages to the untouched state? No — swap
  // state belongs to processes; experiments recreate processes instead.

  // ---- ground truth introspection (tests & benches only) ----
  [[nodiscard]] bool PageResidentPath(std::string_view path, std::uint64_t page_index) const;
  [[nodiscard]] double ResidentFraction(std::string_view path) const;
  [[nodiscard]] std::uint64_t FileCachePages() const { return cache_.resident_pages(); }
  [[nodiscard]] std::uint64_t FreeMemBytes() const {
    return mem_.free_pages() * config_.page_size;
  }
  [[nodiscard]] std::uint64_t UsableMemBytes() const {
    return mem_.total_pages() * config_.page_size;
  }
  [[nodiscard]] const OsStats& stats() const { return os_stats_; }
  [[nodiscard]] const MemStats& mem_stats() const { return mem_.stats(); }
  [[nodiscard]] const DiskStats& disk_stats(int disk) const { return disks_[disk].stats(); }
  [[nodiscard]] const Ffs& fs(int disk) const { return *filesystems_[disk]; }
  [[nodiscard]] Ffs& fs_mutable(int disk) { return *filesystems_[disk]; }
  [[nodiscard]] int num_disks() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] std::uint64_t VmResidentPages(Pid pid) const { return vm_.ResidentPages(pid); }

 private:
  struct FdEntry {
    bool open = false;
    int disk = -1;
    Inum inum = kInvalidInum;
    // File offset for the sequential Read/Write variants.
    std::uint64_t offset = 0;
    // Sequential-readahead state.
    std::uint64_t next_seq_offset = 0;
    std::uint32_t ra_window_pages = 0;
  };

  struct PathRef {
    int disk = -1;
    std::string sub;  // path within the file system
  };

  // Splits "/dN/rest" into (N, "/rest"). Returns false on malformed paths.
  [[nodiscard]] bool ParsePath(std::string_view path, PathRef* out) const;

  // Charges CPU-side `cost` to pid (advances clock; may yield under the
  // scheduler). Applies the configured multiplicative timing jitter.
  void Charge(Pid pid, Nanos cost);
  [[nodiscard]] Nanos Jittered(Nanos cost);

  // Performs a disk access of `pages` pages starting at fs block `block`.
  // The wait accrues into io_accumulated_ (see below); callers drain it with
  // DrainIoWait once the logical operation's I/O is complete.
  void DiskIo(int disk, std::uint64_t block, std::uint64_t pages, bool is_write);
  // Disk access to the swap partition (last disk, upper half).
  void SwapIo(std::uint64_t slot, bool is_write);
  // Queues a service time on a disk's busy timeline. Requests to one device
  // serialize; different devices proceed in parallel. The incremental wait
  // (relative to clock + already-accumulated wait) accrues into
  // io_accumulated_ — chained requests inside one operation are therefore
  // accounted exactly once.
  void QueueOnDisk(int disk, Nanos service);
  // Blocks pid for all accumulated I/O wait (under the scheduler, other
  // processes run meanwhile — blocking I/O releases the CPU).
  void DrainIoWait(Pid pid);

  // Deterministic synthesized file content (the simulation stores no data).
  [[nodiscard]] static std::uint8_t ContentByte(Inum tagged, std::uint64_t offset);

  // Reads a metadata block (inode table / directory) through the cache.
  void MetaRead(Pid pid, int disk, std::uint64_t block);
  void MetaDirty(Pid pid, int disk, std::uint64_t block);

  // Charges the directory walk + final inode read for resolving `path`.
  void ChargeWalk(Pid pid, const PathRef& ref);

  // Write-behind: flush oldest dirty pages when over the dirty limit.
  void MaybeFlushDirty(Pid pid, bool force_all);
  // Writes the given file pages back to disk, coalescing contiguous runs.
  void WritebackPages(Pid pid, std::vector<std::pair<Inum, std::uint64_t>> pages);

  // Page-cache keys tag the fs-local inum with its disk so files on
  // different disks never collide: tagged = (disk << 24) | inum. The
  // reserved local value 0xFFFFFF denotes that disk's metadata pseudo-file
  // (inode table and directory blocks, keyed by disk block number).
  static constexpr Inum kMetaLocalInum = 0xFFFFFF;
  [[nodiscard]] static Inum Tag(int disk, Inum inum) {
    return (static_cast<Inum>(disk) << 24) | inum;
  }
  [[nodiscard]] static Inum LocalInum(Inum tagged) { return tagged & kMetaLocalInum; }
  [[nodiscard]] static int DiskOfInum(Inum tagged) { return static_cast<int>(tagged >> 24); }
  [[nodiscard]] static bool IsMetaInum(Inum tagged) {
    return LocalInum(tagged) == kMetaLocalInum;
  }

  [[nodiscard]] FdEntry* GetFd(Pid pid, int fd);

  // Syscall bodies shared by the scalar and batched entry points. Neither
  // counts a syscall nor charges entry overhead — the public wrappers do.
  std::int64_t PreadImpl(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                         std::uint64_t offset);
  int StatImpl(Pid pid, std::string_view path, InodeAttr* out);

  PlatformProfile profile_;
  MachineConfig config_;
  SimClock clock_;
  Scheduler scheduler_;
  MemSystem mem_;
  PageCache cache_;
  Vm vm_;
  std::vector<Disk> disks_;
  std::vector<Nanos> disk_busy_until_;
  // I/O wait accumulated by the operation currently executing (the
  // turnstile guarantees at most one operation runs at a time).
  Nanos io_accumulated_ = 0;
  std::vector<std::unique_ptr<Ffs>> filesystems_;
  std::vector<std::vector<FdEntry>> fd_tables_;  // per pid
  std::unordered_map<Pid, int> sched_index_;     // pid -> scheduler slot
  std::uint64_t dirty_limit_pages_ = 0;
  std::uint64_t swap_base_offset_ = 0;
  int swap_disk_ = 0;
  bool in_scheduler_run_ = false;
  Pid next_pid_ = 1;
  Rng jitter_rng_;
  OsStats os_stats_;
};

}  // namespace graysim

#endif  // SRC_OS_OS_H_
