#include "src/os/os.h"

#include <algorithm>
#include <cassert>
#include <initializer_list>

namespace graysim {

namespace {

constexpr int ToErr(FsErr err) { return -static_cast<int>(err); }

// Pages the page daemon reclaims per activation before re-arming; small
// batches keep its progress paced by the eviction I/O it submits.
constexpr std::uint64_t kPageDaemonBatch = 32;
// Re-arm interval while below the high watermark and no eviction I/O is
// outstanding (clean reclaim is CPU-bound).
constexpr Nanos kPageDaemonTick = Micros(100.0);

// Builds the snapshot descriptor scheduled alongside an event closure, so a
// machine image can rebuild the closure later (see Os::MaterializeEvent).
[[nodiscard]] EventDesc Desc(EventKind kind, std::int32_t dev = 0,
                             std::initializer_list<std::uint64_t> args = {}) {
  EventDesc d;
  d.kind = static_cast<std::uint32_t>(kind);
  d.dev = dev;
  std::size_t i = 0;
  for (const std::uint64_t a : args) {
    d.arg[i++] = a;
  }
  return d;
}

}  // namespace

Os::Os(PlatformProfile profile, MachineConfig config)
    : profile_(std::move(profile)),
      config_(config),
      events_(config_.event_tie_seed),
      scheduler_(&clock_, &events_, config_.scheduler_slice),
      mem_(MemSystem::Config{
          (config_.phys_mem_bytes - config_.kernel_reserved_bytes) / config_.page_size,
          profile_.mem_policy,
          profile_.file_cache_bytes / config_.page_size}),
      cache_(&mem_),
      vm_(&mem_),
      jitter_rng_(config.jitter_seed) {
  assert(config_.num_disks >= 1);
  FsParams fs_params = config_.fs_params;
  fs_params.block_size = config_.page_size;
  fs_params.allocator = profile_.fs_allocator;
  for (int d = 0; d < config_.num_disks; ++d) {
    disks_.emplace_back(config_.disk_geometry, d);
    // The swap disk's file system only uses the lower half; the upper half
    // is the paging area.
    FsParams p = fs_params;
    if (d == config_.num_disks - 1) {
      p.total_blocks = config_.disk_geometry.capacity_bytes / config_.page_size / 2;
    }
    filesystems_.push_back(std::make_unique<Ffs>(p, config_.disk_geometry.capacity_bytes));
  }
  // Queues are built after every Disk is emplaced: they hold raw pointers
  // into disks_, which must not reallocate afterwards.
  for (int d = 0; d < config_.num_disks; ++d) {
    disk_queues_.push_back(std::make_unique<DiskQueue>(&disks_[d], &clock_, &events_));
    disk_queues_.back()->set_jitter([this](Nanos cost) { return Jittered(cost); });
    disk_queues_.back()->device().set_snapshot_dev(d);
  }
  swap_disk_ = config_.num_disks - 1;
  swap_base_offset_ = config_.disk_geometry.capacity_bytes / 2;
  // Write-behind threshold. On the partitioned platform dirty data lives in
  // the fixed file partition, so the limit scales with that, not with all
  // of memory (which would never trigger).
  const std::uint64_t dirty_base = profile_.mem_policy == MemPolicy::kPartitionedFixedFile
                                       ? mem_.config().file_cache_pages
                                       : mem_.total_pages();
  dirty_limit_pages_ =
      static_cast<std::uint64_t>(static_cast<double>(dirty_base) * config_.dirty_ratio);
  page_daemon_low_pages_ = std::min<std::uint64_t>(256, mem_.total_pages() / 64);
  page_daemon_high_pages_ = 2 * page_daemon_low_pages_;

  mem_.set_evict_handler(this);

  // Wire the trace sink through the kernel components at construction so
  // StartTrace() later is a pure enable — no re-plumbing, and the track ids
  // are stable whether or not tracing is ever turned on.
  events_.set_trace(&trace_);
  scheduler_.set_trace(&trace_);
  for (int d = 0; d < config_.num_disks; ++d) {
    const std::uint32_t track = trace_.RegisterTrack("disk/" + std::to_string(d));
    disk_queues_[d]->set_trace(&trace_, track);
  }
  // The link is always constructed (an idle one schedules nothing and draws
  // nothing); timing noise on round trips comes from the jittered syscall
  // charges, so the link itself stays a pure function of NetSchedule::seed.
  net_ = std::make_unique<NetDevice>(config_.net, &clock_, &events_);
  net_->set_trace(&trace_, trace_.RegisterTrack("net/0"));

  fd_tables_.resize(1);  // default pid 0

  if (config_.chaos.enabled) {
    ArmChaos(config_.chaos);
  }
}

// ---- observability ----

void Os::StartTrace(std::size_t capacity) { trace_.Enable(capacity); }

void Os::BindMetrics(obs::MetricsRegistry* registry) const {
  obs::MetricsRegistry& r = *registry;
  r.AddCounter("os.syscalls", &os_stats_.syscalls);
  r.AddCounter("os.batch_syscalls", &os_stats_.batch_syscalls);
  r.AddCounter("os.batched_ops", &os_stats_.batched_ops);
  r.AddCounter("os.cache_hits", &os_stats_.cache_hits);
  r.AddCounter("os.cache_misses", &os_stats_.cache_misses);
  r.AddCounter("os.disk_reads", &os_stats_.disk_reads);
  r.AddCounter("os.disk_writes", &os_stats_.disk_writes);
  r.AddCounter("os.swap_ins", &os_stats_.swap_ins);
  r.AddCounter("os.swap_outs", &os_stats_.swap_outs);
  r.AddCounter("os.readahead_pages", &os_stats_.readahead_pages);
  r.AddCounter("os.writeback_pages", &os_stats_.writeback_pages);
  r.AddCounter("os.daemon_wakeups", &os_stats_.daemon_wakeups);
  r.AddCounter("os.queued_disk_requests", &os_stats_.queued_disk_requests);
  r.AddCounter("os.net_sends", &os_stats_.net_sends);
  r.AddCounter("os.net_recvs", &os_stats_.net_recvs);
  r.AddCounter("os.fsyncs", &os_stats_.fsyncs);
  r.AddCounter("os.syncfs_calls", &os_stats_.syncfs_calls);
  r.AddGauge("os.events_scheduled", "", [this] {
    return static_cast<double>(events_.scheduled_total());
  });
  r.AddGauge("os.virtual_time_ns", "ns", [this] { return static_cast<double>(clock_.now()); });
  r.AddGauge("os.file_cache_pages", "pages", [this] {
    return static_cast<double>(cache_.resident_pages());
  });
  r.AddGauge("os.free_mem_bytes", "bytes", [this] {
    return static_cast<double>(FreeMemBytes());
  });
  // Chaos counters read through chaos_stats(): zeros when disarmed, and the
  // ChaosStats struct itself stays untouched for the determinism snapshots.
  r.AddGauge("chaos.injected_read_errors", "", [this] {
    return static_cast<double>(chaos_stats().injected_read_errors);
  });
  r.AddGauge("chaos.injected_write_errors", "", [this] {
    return static_cast<double>(chaos_stats().injected_write_errors);
  });
  r.AddGauge("chaos.injected_stat_errors", "", [this] {
    return static_cast<double>(chaos_stats().injected_stat_errors);
  });
  r.AddGauge("chaos.short_writes", "", [this] {
    return static_cast<double>(chaos_stats().short_writes);
  });
  r.AddGauge("chaos.disk_spikes", "", [this] {
    return static_cast<double>(chaos_stats().disk_spikes);
  });
  r.AddGauge("chaos.degraded_requests", "", [this] {
    return static_cast<double>(chaos_stats().degraded_requests);
  });
  r.AddGauge("chaos.antagonist_pages", "pages", [this] {
    return static_cast<double>(chaos_stats().antagonist_pages);
  });
  r.AddGauge("chaos.pressure_shocks", "", [this] {
    return static_cast<double>(chaos_stats().pressure_shocks);
  });
  r.AddGauge("chaos.stalled_allocs", "", [this] {
    return static_cast<double>(chaos_stats().stalled_allocs);
  });
  r.AddGauge("chaos.injected_net_drops", "", [this] {
    return static_cast<double>(chaos_stats().injected_net_drops);
  });
  r.AddGauge("chaos.delayed_net_messages", "", [this] {
    return static_cast<double>(chaos_stats().delayed_net_messages);
  });
  const NetDevice* net = net_.get();
  r.AddGauge("net0.sent", "", [net] { return static_cast<double>(net->sent()); });
  r.AddGauge("net0.delivered", "", [net] { return static_cast<double>(net->delivered()); });
  r.AddGauge("net0.dropped", "", [net] { return static_cast<double>(net->dropped()); });
  r.AddGauge("net0.congestion_drops", "",
             [net] { return static_cast<double>(net->congestion_drops()); });
  r.AddGauge("net0.reordered", "", [net] { return static_cast<double>(net->reordered()); });
  r.AddGauge("net0.link_busy_ns", "ns",
             [net] { return static_cast<double>(net->link().busy_until()); });
  r.AddHistogram("net0.delivery_ns", "ns", &net_->delivery_hist());
  r.AddHistogram("net0.service_ns", "ns", &net_->link().service_hist());
  for (int d = 0; d < num_disks(); ++d) {
    const std::string prefix = "disk" + std::to_string(d);
    const DiskStats& ds = disks_[d].stats();
    r.AddCounter(prefix + ".requests", &ds.requests);
    r.AddCounter(prefix + ".seeks", &ds.seeks);
    r.AddCounter(prefix + ".bytes_read", &ds.bytes_read, "bytes");
    r.AddCounter(prefix + ".bytes_written", &ds.bytes_written, "bytes");
    const DiskQueue* q = disk_queues_[d].get();
    r.AddGauge(prefix + ".coalesced_requests", "",
               [q] { return static_cast<double>(q->coalesced_requests()); });
    r.AddGauge(prefix + ".max_depth", "", [q] { return static_cast<double>(q->max_depth()); });
    r.AddGauge(prefix + ".busy_ns", "ns", [q] { return static_cast<double>(q->busy_until()); });
    r.AddHistogram(prefix + ".service_ns", "ns", &q->service_hist());
  }
}

// ---- chaos layer ----

void Os::ArmChaosHooks(const FaultPlan& plan) {
  chaos_ = std::make_unique<ChaosEngine>(plan);
  if (plan.degraded_period > 0 || plan.spike_prob > 0.0) {
    for (std::size_t d = 0; d < disk_queues_.size(); ++d) {
      const int disk = static_cast<int>(d);
      disk_queues_[d]->set_service_scale([this, disk](Nanos service) {
        return chaos_->ScaleService(disk, clock_.now(), service);
      });
    }
  }
  if (plan.net_drop_prob > 0.0) {
    net_->set_drop_hook([this] { return chaos_->InjectNetDrop(); });
  }
  if (plan.net_delay_period > 0) {
    net_->set_delay_scale([this](Nanos now) { return chaos_->NetDelayScale(now); });
  }
}

void Os::ArmChaos(const FaultPlan& plan) {
  DisarmChaos();
  if (!plan.enabled) {
    return;
  }
  const std::uint64_t epoch = ++chaos_epoch_;
  antagonist_reader_pos_ = 0;
  antagonist_dirty_pos_ = 0;
  ArmChaosHooks(plan);
  if (plan.antagonist_period > 0 &&
      (plan.reader_burst_pages > 0 || plan.dirtier_burst_pages > 0)) {
    events_.ScheduleAt(clock_.now() + plan.antagonist_period, EventQueue::Band::kCompletion,
                       [this, epoch] { AntagonistTick(epoch); },
                       Desc(EventKind::kAntagonistTick, 0, {epoch}));
  }
  if (plan.shock_period > 0 && plan.shock_mem_fraction > 0.0) {
    events_.ScheduleAt(clock_.now() + plan.shock_period, EventQueue::Band::kCompletion,
                       [this, epoch] { ShockTick(epoch); },
                       Desc(EventKind::kShockTick, 0, {epoch}));
  }
  // Crash-stop: a plain scheduled event, not a draw, so a crash-only plan
  // perturbs nothing before the instant. Guarded `> now` so re-arming after
  // recovery (crash_at now in the past) cannot re-fire it.
  if (plan.crash_at > clock_.now()) {
    events_.ScheduleAt(plan.crash_at, EventQueue::Band::kCompletion,
                       [this, epoch] { CrashNow(epoch); },
                       Desc(EventKind::kCrash, 0, {epoch}));
  }
}

void Os::DisarmChaos() {
  if (chaos_ == nullptr) {
    return;
  }
  ++chaos_epoch_;  // orphans pending antagonist/shock ticks
  for (auto& q : disk_queues_) {
    q->set_service_scale(nullptr);
  }
  net_->set_drop_hook(nullptr);
  net_->set_delay_scale(nullptr);
  const int disk = std::clamp(chaos_->plan().antagonist_disk, 0, num_disks() - 1);
  cache_.DropFile(Tag(disk, kAntagonistLocalInum));
  cache_.DropFile(Tag(0, kShockLocalInum));
  chaos_.reset();
}

// ---- crash-stop & recovery ----

void Os::CrashNow(std::uint64_t epoch) {
  if (chaos_ == nullptr || epoch != chaos_epoch_ || crashed_) {
    return;  // stale event from a disarmed/re-armed plan, or already down
  }
  // Runs inside EventQueue dispatch: throwing here would corrupt the queue
  // mid-batch, so only mark the machine dead and ready every sleeper. Each
  // fiber unwinds at its own next charge/wake boundary — the same place a
  // real interrupt would find it.
  crashed_ = true;
  crash_instant_ = clock_.now();
  scheduler_.WakeAll();
}

void Os::ThrowIfCrashed() {
  // Only fiber contexts unwind; standalone callers (benches driving pid 0
  // outside RunProcesses) observe the crash via crashed() instead — there
  // is no fiber stack to kill.
  if (crashed_ && scheduler_.active()) {
    throw CrashUnwind{};
  }
}

RecoveryStats Os::Recover() {
  assert(!in_scheduler_run_ && "recovery runs at quiescence");
  assert(crashed_ && "Recover without a crash");
  ++recovery_stats_.crashes;
  const Nanos start = clock_.now();

  // Volatile state dies. First the pending event population: every disk
  // WRITE whose completion has not fired is torn — the write-order model
  // says a write is durable exactly when its completion event runs. Reads
  // (kDeviceCompletion with arg[0]==0, kReadFillCompletion) lose nothing,
  // and dev == -1 is the net link, whose loss is not disk damage.
  for (const EventQueue::RawEvent& ev : events_.ExportPending()) {
    if (ev.desc.kind == static_cast<std::uint32_t>(EventKind::kDeviceCompletion) &&
        ev.desc.dev >= 0 && ev.desc.arg[0] == 1) {
      ++recovery_stats_.torn_writes;
    }
  }
  events_.DiscardPending();

  // The page cache is RAM: every page goes, and the dirty ones — writes
  // the kernel accepted but never made durable — are the lost work. Dirty
  // metadata blocks are tracked separately; fsck rewrites those below.
  std::vector<std::pair<Inum, std::uint64_t>> dirty;
  cache_.DropAll(&dirty);
  std::vector<std::pair<int, std::uint64_t>> meta_repairs;
  for (const auto& [inum, page] : dirty) {
    ++recovery_stats_.lost_dirty_pages;
    if (IsMetaInum(inum)) {
      ++recovery_stats_.repaired_meta_blocks;
      meta_repairs.emplace_back(DiskOfInum(inum), page);  // page IS the block
    }
  }
  inflight_reads_.Clear();
  fd_tables_.clear();
  fd_tables_.resize(1);  // default pid 0, as at construction
  flush_daemon_scheduled_ = false;
  page_daemon_scheduled_ = false;
  direct_reclaim_wait_ = 0;
  in_background_ = false;
  net_->CrashReset(clock_.now());
  for (auto& q : disk_queues_) {
    q->device().CrashReset(clock_.now());
  }
  crashed_ = false;

  // fsck: re-read every cylinder group's metadata range (superblock copy +
  // inode table) on every disk, then rewrite the metadata blocks that were
  // dirty in RAM at the crash — their on-disk copies are stale or torn.
  // All real, charged I/O on the restarted machine's timeline: recovery
  // latency is a measured output, not a constant.
  Nanos last = 0;
  for (int d = 0; d < num_disks(); ++d) {
    const Ffs& f = *filesystems_[d];
    for (std::size_t g = 0; g < f.GroupCount(); ++g) {
      const auto [first_block, data_start] = f.GroupMetaRange(g);
      last = std::max(last, SubmitDiskIo(d, first_block, data_start - first_block,
                                         /*is_write=*/false, nullptr));
    }
  }
  for (const auto& [d, block] : meta_repairs) {
    last = std::max(last, SubmitDiskIo(d, block, 1, /*is_write=*/true, nullptr));
  }
  WaitUntil(default_pid(), last);
  recovery_stats_.recovery_time = clock_.now() - start;

  // The interference environment reboots with the machine: re-arm the same
  // plan from scratch (fresh chaos RNG, fresh antagonist/shock ticks). The
  // guard in ArmChaos keeps the now-past crash_at from re-firing.
  if (chaos_ != nullptr) {
    const FaultPlan plan = chaos_->plan();
    ArmChaos(plan);
  }
  return recovery_stats_;
}

void Os::AntagonistTick(std::uint64_t epoch) {
  if (chaos_ == nullptr || epoch != chaos_epoch_) {
    return;
  }
  BackgroundScope background(this);  // antagonists are daemons, not processes
  trace_.Instant(obs::kTrackChaos, "antagonist", clock_.now());
  const FaultPlan& plan = chaos_->plan();
  ChaosStats& cs = chaos_->stats_mutable();
  const int disk = std::clamp(plan.antagonist_disk, 0, num_disks() - 1);
  const Inum tagged = Tag(disk, kAntagonistLocalInum);
  // Pseudo-file page keys double as disk blocks; keep them in the (always
  // file-system-backed) lower half of the device. Reader and dirtier work
  // disjoint halves of that range so they never collide.
  const std::uint64_t blocks = config_.disk_geometry.capacity_bytes / config_.page_size / 2;
  const std::uint64_t half = blocks / 2;

  Nanos io_done = 0;  // antagonists self-clock on their own I/O (below)
  if (plan.reader_burst_pages > 0) {
    ++cs.reader_ticks;
    const std::uint64_t start = antagonist_reader_pos_ % half;
    const std::uint64_t run = std::min<std::uint64_t>(plan.reader_burst_pages, half - start);
    antagonist_reader_pos_ = (start + run) % half;
    // One streaming read on the device (queue contention)...
    io_done = std::max(io_done, SubmitDiskIo(disk, start, run, /*is_write=*/false, nullptr));
    // ...whose pages land in the cache (LRU pollution).
    for (std::uint64_t k = 0; k < run; ++k) {
      if (!cache_.Resident(tagged, start + k)) {
        Nanos evict_cost = 0;
        (void)cache_.Insert(tagged, start + k, /*dirty=*/false, &evict_cost);
        ++cs.antagonist_pages;
      }
    }
  }

  // Dirtiers are throttled at the dirty limit, as real kernels throttle any
  // writer: an open-loop dirty source would outrun writeback bandwidth and
  // grow the disk queue (and virtual time) without bound.
  if (plan.dirtier_burst_pages > 0 && cache_.dirty_pages() < dirty_limit_pages_) {
    ++cs.dirtier_ticks;
    for (std::uint32_t k = 0; k < plan.dirtier_burst_pages; ++k) {
      const std::uint64_t block = half + (antagonist_dirty_pos_++ % half);
      Nanos evict_cost = 0;
      if (cache_.Resident(tagged, block)) {
        cache_.MarkDirty(tagged, block);
      } else if (!cache_.Insert(tagged, block, /*dirty=*/true, &evict_cost)) {
        // Sticky cache refused admission: write through.
        io_done = std::max(io_done, SubmitDiskIo(disk, block, 1, /*is_write=*/true, nullptr));
      }
      ++cs.antagonist_pages;
    }
    MaybeWakeFlushDaemon();
  }

  MaybeWakePageDaemon();
  // Self-clocking, like a real streaming process: the next burst cannot be
  // issued before this one's I/O completes. Without this the antagonist
  // outruns a degraded disk and the queue — and virtual time — diverge.
  const Nanos next = std::max(clock_.now() + plan.antagonist_period, io_done);
  events_.ScheduleAt(next, EventQueue::Band::kCompletion,
                     [this, epoch] { AntagonistTick(epoch); },
                     Desc(EventKind::kAntagonistTick, 0, {epoch}));
}

void Os::ShockTick(std::uint64_t epoch) {
  if (chaos_ == nullptr || epoch != chaos_epoch_) {
    return;
  }
  BackgroundScope background(this);
  const FaultPlan& plan = chaos_->plan();
  ++chaos_->stats_mutable().pressure_shocks;
  trace_.Instant(obs::kTrackChaos, "shock", clock_.now(), "grab_pages",
                 static_cast<std::uint64_t>(plan.shock_mem_fraction *
                                            static_cast<double>(mem_.total_pages())));
  const Inum tagged = Tag(0, kShockLocalInum);
  const std::uint64_t grab = static_cast<std::uint64_t>(
      plan.shock_mem_fraction * static_cast<double>(mem_.total_pages()));
  for (std::uint64_t k = 0; k < grab; ++k) {
    // Clean pages: the grab's job is cache displacement. The competitor's
    // contention cost is charged separately — every zero-fill inside the
    // shock window pays plan.shock_alloc_stall (see ChaosEngine::AllocStall)
    // — because an eviction-side charge would be absorbed by the background
    // page daemon and never reach a foreground prober's touch timings.
    if (!cache_.Resident(tagged, k)) {
      Nanos evict_cost = 0;
      (void)cache_.Insert(tagged, k, /*dirty=*/false, &evict_cost);
    }
  }
  MaybeWakePageDaemon();
  // Release the grabbed memory when the shock subsides.
  if (plan.shock_duration > 0) {
    events_.ScheduleAt(clock_.now() + plan.shock_duration, EventQueue::Band::kCompletion,
                       [this, epoch] {
                         if (chaos_ != nullptr && epoch == chaos_epoch_) {
                           cache_.DropFile(Tag(0, kShockLocalInum));
                         }
                       },
                       Desc(EventKind::kShockRelease, 0, {epoch}));
  }
  events_.ScheduleAt(clock_.now() + plan.shock_period, EventQueue::Band::kCompletion,
                     [this, epoch] { ShockTick(epoch); },
                     Desc(EventKind::kShockTick, 0, {epoch}));
}

Nanos Os::OnEvict(const Page& page) {
  if (page.kind == PageKind::kFile) {
    const Inum tagged = static_cast<Inum>(page.key1);
    // Cluster writeback: when reclaim lands on a dirty page, clean the
    // contiguous dirty run behind it in the same request (those pages are
    // next in LRU order anyway and will be reclaimed for free once clean).
    std::uint64_t run = 0;
    if (page.dirty) {
      run = cache_.CleanDirtyRunAfter(tagged, page.key2, 255);
    }
    const bool dirty = cache_.OnEvicted(page);
    if (!dirty) {
      return 0;
    }
    const int disk = DiskOfInum(tagged);
    std::uint64_t block = page.key2;
    if (!IsPseudoInum(tagged)) {
      if (filesystems_[disk]->BlockOf(LocalInum(tagged), page.key2, &block) != FsErr::kOk) {
        return 0;  // file vanished concurrently; nothing to write
      }
    }
    os_stats_.writeback_pages += 1 + run;
    const Nanos done = SubmitDiskIo(disk, block, 1 + run, /*is_write=*/true, nullptr);
    if (!in_background_) {
      // Direct reclaim in process context: the faulting process waits for
      // this writeback (DrainDirectReclaim), as real kernels make it.
      direct_reclaim_wait_ = std::max(direct_reclaim_wait_, done);
    }
    return 0;
  }
  const std::uint64_t slot = vm_.OnEvicted(page);
  ++os_stats_.swap_outs;
  const Nanos done = SubmitSwapIo(slot, /*is_write=*/true);
  if (!in_background_) {
    direct_reclaim_wait_ = std::max(direct_reclaim_wait_, done);
  }
  return 0;
}

// ---- helpers ----

bool Os::ParsePath(std::string_view path, PathRef* out) const {
  if (path.size() < 2 || path[0] != '/' || path[1] != 'd') {
    return false;
  }
  std::size_t i = 2;
  int disk = 0;
  bool any = false;
  while (i < path.size() && path[i] >= '0' && path[i] <= '9') {
    disk = disk * 10 + (path[i] - '0');
    ++i;
    any = true;
  }
  if (!any || disk >= static_cast<int>(disks_.size())) {
    return false;
  }
  if (i < path.size() && path[i] != '/') {
    return false;
  }
  out->disk = disk;
  out->sub = std::string(path.substr(i));
  return true;
}

Nanos Os::Jittered(Nanos cost) {
  double amplitude = config_.timing_jitter;
  if (chaos_ != nullptr) {
    // Jitter bursts are a square wave over virtual time, not a draw, so the
    // jitter stream consumes exactly one draw per charged cost either way.
    amplitude = chaos_->JitterAmplitude(clock_.now(), amplitude);
  }
  if (amplitude <= 0.0 || cost == 0) {
    return cost;
  }
  const double factor = 1.0 + amplitude * (2.0 * jitter_rng_.NextDouble() - 1.0);
  return static_cast<Nanos>(static_cast<double>(cost) * factor);
}

void Os::Charge(Pid pid, Nanos cost) {
  // Crash boundary, checked before the jitter draw so a dead machine stops
  // consuming the RNG stream, and again after the scheduler charge — the
  // crash event fires mid-advance, and the fiber must die on return rather
  // than run on past the instant.
  ThrowIfCrashed();
  cost = Jittered(cost);
  if (in_scheduler_run_ && pid < sched_slots_.size() && sched_slots_[pid] >= 0) {
    scheduler_.Charge(sched_slots_[pid], cost);
    ThrowIfCrashed();
    return;
  }
  clock_.Advance(cost);
  if (events_.next_time() <= clock_.now()) {
    events_.RunDue(clock_.now());
  }
}

void Os::WaitUntil(Pid pid, Nanos deadline) {
  if (in_scheduler_run_ && pid < sched_slots_.size() && sched_slots_[pid] >= 0) {
    // Blocking releases the CPU: other processes run until the deadline.
    scheduler_.SleepUntil(sched_slots_[pid], deadline);
    // A crash readies every sleeper early (WakeAll); the woken fiber dies
    // here instead of resuming its syscall against a dead machine.
    ThrowIfCrashed();
    return;
  }
  if (deadline > clock_.now()) {
    clock_.AdvanceTo(deadline);
  }
  events_.RunDue(clock_.now());
}

void Os::DrainDirectReclaim(Pid pid) {
  if (direct_reclaim_wait_ == 0) {
    return;
  }
  const Nanos deadline = direct_reclaim_wait_;
  direct_reclaim_wait_ = 0;
  WaitUntil(pid, deadline);
}

Nanos Os::SubmitDiskIo(int disk, std::uint64_t block, std::uint64_t pages, bool is_write,
                       DiskQueue::CompletionFn on_complete) {
  if (is_write) {
    ++os_stats_.disk_writes;
  } else {
    ++os_stats_.disk_reads;
  }
  ++os_stats_.queued_disk_requests;
  return disk_queues_[disk]->Submit(block * config_.page_size, pages * config_.page_size,
                                    is_write, on_complete);
}

Nanos Os::SubmitDiskIo(int disk, std::uint64_t block, std::uint64_t pages, bool is_write,
                       DiskQueue::CompletionFn on_complete, const EventDesc& desc) {
  if (is_write) {
    ++os_stats_.disk_writes;
  } else {
    ++os_stats_.disk_reads;
  }
  ++os_stats_.queued_disk_requests;
  return disk_queues_[disk]->Submit(block * config_.page_size, pages * config_.page_size,
                                    is_write, on_complete, desc);
}

Nanos Os::SubmitSwapIo(std::uint64_t slot, bool is_write) {
  const std::uint64_t offset = swap_base_offset_ + slot * config_.page_size;
  assert(offset + config_.page_size <= config_.disk_geometry.capacity_bytes);
  if (is_write) {
    ++os_stats_.disk_writes;
  } else {
    ++os_stats_.disk_reads;
  }
  ++os_stats_.queued_disk_requests;
  return disk_queues_[swap_disk_]->Submit(offset, config_.page_size, is_write, nullptr);
}

Nanos Os::SubmitReadFill(int disk, Inum tagged, std::uint64_t first_page,
                         std::uint64_t npages, std::uint64_t start_block, bool readahead) {
  const std::uint64_t token = next_read_token_++;
  const Nanos done = SubmitDiskIo(
      disk, start_block, npages, /*is_write=*/false,
      [this, tagged, first_page, npages, token, readahead] {
        FillPages(tagged, first_page, npages, token, readahead);
      },
      Desc(EventKind::kReadFillCompletion, disk,
           {tagged, first_page, npages, token, readahead ? 1u : 0u}));
  for (std::uint64_t k = 0; k < npages; ++k) {
    inflight_reads_[PageKey(tagged, first_page + k)] = InflightRead{done, token};
  }
  return done;
}

void Os::FillPages(Inum tagged, std::uint64_t first_page, std::uint64_t npages,
                   std::uint64_t token, bool readahead) {
  BackgroundScope background(this);  // runs off a completion event
  for (std::uint64_t k = 0; k < npages; ++k) {
    const std::uint64_t page = first_page + k;
    const InflightRead* fill = inflight_reads_.Find(PageKey(tagged, page));
    if (fill == nullptr || fill->token != token) {
      continue;  // invalidated (truncate/unlink/flush) while in flight
    }
    inflight_reads_.Erase(PageKey(tagged, page));
    if (cache_.Resident(tagged, page)) {
      continue;  // dirtied by an overlapping write while the read was queued
    }
    Nanos evict_cost = 0;
    (void)cache_.Insert(tagged, page, /*dirty=*/false, &evict_cost);
    if (readahead) {
      ++os_stats_.readahead_pages;
    }
  }
  MaybeWakePageDaemon();
}

void Os::InvalidateInflight(Inum tagged, std::uint64_t from_page) {
  inflight_reads_.EraseIf([tagged, from_page](std::uint64_t key, const InflightRead&) {
    return static_cast<Inum>(key >> 32) == tagged && (key & 0xFFFFFFFFULL) >= from_page;
  });
}

void Os::MetaRead(Pid pid, int disk, std::uint64_t block) {
  const Inum meta = Tag(disk, kMetaLocalInum);
  if (cache_.Access(meta, block)) {
    ++os_stats_.cache_hits;
    Charge(pid, config_.costs.mem_touch);
    return;
  }
  ++os_stats_.cache_misses;
  if (const InflightRead* fill = inflight_reads_.Find(PageKey(meta, block)); fill != nullptr) {
    WaitUntil(pid, fill->completion);
  } else {
    WaitUntil(pid, SubmitReadFill(disk, meta, block, 1, block, /*readahead=*/false));
  }
  Charge(pid, config_.costs.mem_touch);
}

void Os::MetaDirty(Pid pid, int disk, std::uint64_t block) {
  const Inum meta = Tag(disk, kMetaLocalInum);
  Nanos evict_cost = 0;
  if (cache_.Insert(meta, block, /*dirty=*/true, &evict_cost)) {
    DrainDirectReclaim(pid);  // any reclaim writeback triggered by the insert
    Charge(pid, config_.costs.mem_touch);
  } else {
    // Sticky cache refused admission: write through.
    WaitUntil(pid, SubmitDiskIo(disk, block, 1, /*is_write=*/true, nullptr));
  }
  MaybeWakeFlushDaemon();
}

void Os::ChargeWalk(Pid pid, const PathRef& ref) {
  Ffs& f = *filesystems_[ref.disk];
  // Walk each directory on the path, reading its entry blocks, then read the
  // final component's inode block.
  std::vector<std::uint64_t> blocks;
  Inum cur = f.root();
  std::string_view rest = ref.sub;
  while (!rest.empty()) {
    while (!rest.empty() && rest.front() == '/') {
      rest.remove_prefix(1);
    }
    if (rest.empty()) {
      break;
    }
    const std::size_t slash = rest.find('/');
    const std::string_view comp = rest.substr(0, slash);
    // Read the directory we are searching.
    if (f.DirBlocks(cur, &blocks) == FsErr::kOk) {
      for (const std::uint64_t b : blocks) {
        MetaRead(pid, ref.disk, b);
      }
    }
    // Advance `cur` by resolving the accumulated path prefix.
    const std::string prefix(ref.sub.substr(0, ref.sub.size() - rest.size()));
    const std::string upto = prefix + std::string(comp);
    Inum next = kInvalidInum;
    if (f.Lookup(upto, &next) != FsErr::kOk) {
      return;  // component missing; caller already handled the error
    }
    cur = next;
    if (slash == std::string_view::npos) {
      rest = std::string_view();
    } else {
      rest.remove_prefix(slash);
    }
  }
  // Final inode block.
  MetaRead(pid, ref.disk, f.InodeBlockOf(cur));
}

std::uint8_t Os::ContentByte(Inum tagged, std::uint64_t offset) {
  std::uint64_t x = (static_cast<std::uint64_t>(tagged) << 32) ^ offset;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::uint8_t>(x & 0xff);
}

Os::FdEntry* Os::GetFd(Pid pid, int fd) {
  if (pid >= fd_tables_.size()) {
    return nullptr;
  }
  auto& table = fd_tables_[pid];
  if (fd < 0 || fd >= static_cast<int>(table.size()) || !table[fd].open) {
    return nullptr;
  }
  return &table[fd];
}

// ---- processes ----

void Os::RunProcesses(const std::vector<std::function<void(Pid)>>& bodies) {
  assert(!in_scheduler_run_);
  std::vector<Pid> pids;
  pids.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const Pid pid = next_pid_++;
    pids.push_back(pid);
    if (pid >= fd_tables_.size()) {
      fd_tables_.resize(pid + 1);
    }
  }
  sched_slots_.assign(next_pid_, -1);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    sched_slots_[pids[i]] = static_cast<int>(i);
  }
  std::vector<std::function<void(int)>> wrapped;
  wrapped.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    wrapped.push_back([this, &bodies, &pids, i](int) {
      try {
        bodies[i](pids[i]);
      } catch (const CrashUnwind&) {
        // Crash-stop: this fiber's stack dies here. Destructors already ran
        // during the unwind; fall through to release so the host-side
        // process bookkeeping (anon memory, fds) dies with it.
      }
      // Process exit: release anonymous memory and fd table.
      vm_.ReleaseProcess(pids[i]);
      fd_tables_[pids[i]].clear();
    });
  }
  in_scheduler_run_ = true;
  scheduler_.Run(wrapped);
  in_scheduler_run_ = false;
  std::fill(sched_slots_.begin(), sched_slots_.end(), -1);
}

void Os::Sleep(Pid pid, Nanos duration) { WaitUntil(pid, clock_.now() + duration); }

// ---- network ----

int Os::NetEndpoint(Pid pid) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  return net_->CreateEndpoint();
}

std::int64_t Os::NetSend(Pid pid, int from, int to, std::uint64_t bytes, std::uint64_t tag) {
  ++os_stats_.syscalls;
  ++os_stats_.net_sends;
  // Charged like a write: syscall entry plus the user->kernel copy; the
  // wire time is the link's, not the caller's.
  Charge(pid, config_.costs.syscall_overhead + config_.costs.CopyCost(bytes));
  if (from < 0 || from >= net_->num_endpoints() || to < 0 || to >= net_->num_endpoints()) {
    return ToErr(FsErr::kInvalid);
  }
  (void)net_->Send(from, to, bytes, tag);
  return static_cast<std::int64_t>(bytes);
}

std::int64_t Os::NetRecv(Pid pid, int endpoint, Nanos timeout, NetMessage* out) {
  ++os_stats_.syscalls;
  ++os_stats_.net_recvs;
  Charge(pid, config_.costs.syscall_overhead);
  if (endpoint < 0 || endpoint >= net_->num_endpoints()) {
    return ToErr(FsErr::kInvalid);
  }
  // Saturating: a "forever" timeout must not wrap past the clock.
  const Nanos deadline = timeout > EventQueue::kNever - clock_.now()
                             ? EventQueue::kNever
                             : clock_.now() + timeout;
  while (true) {
    // A crashed peer machine (or this machine's own past crash) closes the
    // endpoint via NetDevice::CrashReset. Fail fast, ECONNRESET-style: the
    // in-flight messages were wiped with the endpoint, so blocking on
    // EarliestArrival would otherwise sleep forever on kNever.
    if (net_->Closed(endpoint)) {
      return ToErr(FsErr::kConnReset);
    }
    if (net_->Recv(endpoint, out)) {
      Charge(pid, config_.costs.CopyCost(out->bytes));
      return static_cast<std::int64_t>(out->bytes);
    }
    if (clock_.now() >= deadline) {
      return ToErr(FsErr::kTimedOut);
    }
    // Sleep to the earliest known arrival when one is in flight (the
    // delivery event runs in Band::kCompletion before this wake), else in
    // recv_poll increments so a not-yet-sent message is still noticed.
    const Nanos arrival = net_->EarliestArrival(endpoint);
    Nanos wake = arrival == EventQueue::kNever ? clock_.now() + config_.net.recv_poll : arrival;
    wake = std::min(std::max(wake, clock_.now() + 1), deadline);
    WaitUntil(pid, wake);
  }
}

std::int64_t Os::NetPoll(Pid pid, int endpoint) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  if (endpoint < 0 || endpoint >= net_->num_endpoints()) {
    return ToErr(FsErr::kInvalid);
  }
  return static_cast<std::int64_t>(net_->Pending(endpoint));
}

void Os::Compute(Pid pid, Nanos duration) {
  while (duration > 0) {
    const Nanos q = std::min(duration, config_.scheduler_slice);
    Charge(pid, q);
    duration -= q;
  }
}

// ---- files ----

int Os::Open(Pid pid, std::string_view path) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  Inum inum = kInvalidInum;
  if (const FsErr err = f.Lookup(ref.sub, &inum); err != FsErr::kOk) {
    return ToErr(err);
  }
  InodeAttr attr;
  (void)f.GetAttr(inum, &attr);
  if (attr.is_dir) {
    return ToErr(FsErr::kIsDir);
  }
  ChargeWalk(pid, ref);
  auto& table = fd_tables_[pid];
  int fd = -1;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!table[i].open) {
      fd = static_cast<int>(i);
      break;
    }
  }
  if (fd < 0) {
    table.emplace_back();
    fd = static_cast<int>(table.size()) - 1;
  }
  table[fd] = FdEntry{true, ref.disk, inum, 0, 0, 0};
  return fd;
}

int Os::Close(Pid pid, int fd) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  e->open = false;
  return 0;
}

std::int64_t Os::Pread(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                       std::uint64_t offset) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  return PreadImpl(pid, fd, buf, len, offset);
}

std::int64_t Os::PreadImpl(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                           std::uint64_t offset) {
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  if (chaos_ != nullptr && chaos_->InjectReadError()) {
    // Transient media error. The kernel burned time on command retries
    // before giving up, so the failure is slow — naive probe statistics that
    // fold failed samples in get badly skewed, which is the point.
    trace_.Instant(obs::kTrackChaos, "eio.read", clock_.now());
    Charge(pid, chaos_->plan().eio_latency);
    return ToErr(FsErr::kIo);
  }
  Ffs& f = *filesystems_[e->disk];
  InodeAttr attr;
  if (f.GetAttr(e->inum, &attr) != FsErr::kOk) {
    return ToErr(FsErr::kNotFound);
  }
  if (offset >= attr.size || len == 0) {
    return 0;
  }
  len = std::min(len, attr.size - offset);
  const std::uint64_t ps = config_.page_size;
  const std::uint64_t first = offset / ps;
  const std::uint64_t last = (offset + len - 1) / ps;
  const std::uint64_t file_pages = (attr.size + ps - 1) / ps;
  const Inum tagged = Tag(e->disk, e->inum);

  // Sequential readahead window.
  const bool sequential = profile_.readahead && offset == e->next_seq_offset;
  if (sequential) {
    e->ra_window_pages = e->ra_window_pages == 0
                             ? config_.readahead_min_pages
                             : std::min(e->ra_window_pages * 2, config_.readahead_max_pages);
  } else {
    e->ra_window_pages = 0;
  }
  e->next_seq_offset = offset + len;

  Nanos copy_cost = 0;
  for (std::uint64_t p = first; p <= last; ++p) {
    const std::uint64_t page_start = p * ps;
    const std::uint64_t lo = std::max(offset, page_start);
    const std::uint64_t hi = std::min(offset + len, page_start + ps);
    if (cache_.Access(tagged, p)) {
      ++os_stats_.cache_hits;
      copy_cost += config_.costs.CopyCost(hi - lo);
      continue;
    }
    ++os_stats_.cache_misses;
    // A readahead (or a concurrent reader's demand fetch) already has this
    // page on the wire: wait for that request instead of re-issuing it.
    if (const InflightRead* fill = inflight_reads_.Find(PageKey(tagged, p)); fill != nullptr) {
      WaitUntil(pid, fill->completion);
      (void)cache_.Access(tagged, p);
      copy_cost += config_.costs.CopyCost(hi - lo);
      continue;
    }
    // Build the demand run: missing, disk-contiguous pages of this request.
    std::uint64_t start_block = 0;
    if (f.BlockOf(e->inum, p, &start_block) != FsErr::kOk) {
      return ToErr(FsErr::kInvalid);
    }
    std::uint64_t run = 1;
    while (p + run <= last) {
      std::uint64_t b = 0;
      if (f.BlockOf(e->inum, p + run, &b) != FsErr::kOk || b != start_block + run) {
        break;
      }
      if (cache_.Resident(tagged, p + run) ||
          inflight_reads_.Contains(PageKey(tagged, p + run))) {
        break;
      }
      ++run;
    }
    const Nanos done = SubmitReadFill(e->disk, tagged, p, run, start_block,
                                      /*readahead=*/false);
    // When reading sequentially, push the readahead window beyond the
    // request as a separate background fill: the process blocks only for
    // its demand pages while the prefetch queues behind them (contiguous,
    // so the device coalesces it into the same sequential stream).
    if (e->ra_window_pages > 0 && p + run == last + 1) {
      const std::uint64_t ra_limit = std::min(file_pages - 1, p + e->ra_window_pages - 1);
      std::uint64_t ra_run = 0;
      while (last + 1 + ra_run <= ra_limit) {
        const std::uint64_t q = last + 1 + ra_run;
        std::uint64_t b = 0;
        if (f.BlockOf(e->inum, q, &b) != FsErr::kOk || b != start_block + (q - p)) {
          break;
        }
        if (cache_.Resident(tagged, q) || inflight_reads_.Contains(PageKey(tagged, q))) {
          break;
        }
        ++ra_run;
      }
      if (ra_run > 0) {
        (void)SubmitReadFill(e->disk, tagged, last + 1, ra_run,
                             start_block + (last + 1 - p), /*readahead=*/true);
      }
    }
    WaitUntil(pid, done);
    // Copy the requested portion of the run.
    const std::uint64_t run_hi = std::min(offset + len, (p + run) * ps);
    copy_cost += config_.costs.CopyCost(run_hi - lo);
    p += run - 1;
  }
  Charge(pid, copy_cost);
  f.TouchAtime(e->inum, clock_.now());

  if (!buf.empty()) {
    const std::uint64_t fill = std::min<std::uint64_t>(len, buf.size());
    for (std::uint64_t i = 0; i < fill; ++i) {
      buf[i] = ContentByte(tagged, offset + i);
    }
  }
  return static_cast<std::int64_t>(len);
}

std::int64_t Os::Pwrite(Pid pid, int fd, std::uint64_t len, std::uint64_t offset) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  if (len == 0) {
    return 0;
  }
  if (chaos_ != nullptr) {
    if (chaos_->InjectWriteError()) {
      trace_.Instant(obs::kTrackChaos, "enospc.write", clock_.now());
      Charge(pid, chaos_->plan().eio_latency);
      return ToErr(FsErr::kNoSpace);
    }
    // A short write persists a non-empty prefix: the call below proceeds
    // with the truncated length and returns it, exactly as POSIX allows.
    const std::uint64_t want = len;
    len = chaos_->MaybeShortWrite(len);
    if (len != want) {
      trace_.Instant(obs::kTrackChaos, "short_write", clock_.now(), "len", len);
    }
  }
  Ffs& f = *filesystems_[e->disk];
  InodeAttr attr;
  if (f.GetAttr(e->inum, &attr) != FsErr::kOk) {
    return ToErr(FsErr::kNotFound);
  }
  const std::uint64_t old_size = attr.size;
  const std::uint64_t new_size = std::max(old_size, offset + len);
  if (const FsErr err = f.Resize(e->inum, new_size, clock_.now()); err != FsErr::kOk) {
    return ToErr(err);
  }
  const std::uint64_t ps = config_.page_size;
  const std::uint64_t first = offset / ps;
  const std::uint64_t last = (offset + len - 1) / ps;
  const Inum tagged = Tag(e->disk, e->inum);

  Nanos copy_cost = config_.costs.CopyCost(len);
  for (std::uint64_t p = first; p <= last; ++p) {
    const std::uint64_t page_start = p * ps;
    const bool covers_whole_page = offset <= page_start && offset + len >= page_start + ps;
    const bool existed_before = page_start < old_size;
    if (!covers_whole_page && existed_before && !cache_.Resident(tagged, p)) {
      // Read-modify-write of a partially overwritten page.
      ++os_stats_.cache_misses;
      if (const InflightRead* fill = inflight_reads_.Find(PageKey(tagged, p));
          fill != nullptr) {
        WaitUntil(pid, fill->completion);
      } else {
        std::uint64_t block = 0;
        if (f.BlockOf(e->inum, p, &block) == FsErr::kOk) {
          WaitUntil(pid, SubmitReadFill(e->disk, tagged, p, 1, block, /*readahead=*/false));
        }
      }
    }
    Nanos evict_cost = 0;
    if (!cache_.Insert(tagged, p, /*dirty=*/true, &evict_cost)) {
      // Sticky cache refused admission: write through.
      std::uint64_t block = 0;
      if (f.BlockOf(e->inum, p, &block) == FsErr::kOk) {
        WaitUntil(pid, SubmitDiskIo(e->disk, block, 1, /*is_write=*/true, nullptr));
      }
    }
    DrainDirectReclaim(pid);
  }
  Charge(pid, copy_cost);
  e->next_seq_offset = offset + len;  // writes also train the sequence detector
  MaybeWakeFlushDaemon();
  MaybeWakePageDaemon();
  // Dirty throttle: a writer far ahead of the flusher blocks until the
  // device catches up (balance_dirty_pages-style backpressure).
  if (cache_.dirty_pages() > 2 * dirty_limit_pages_) {
    WaitUntil(pid, disk_queues_[e->disk]->busy_until());
  }
  return static_cast<std::int64_t>(len);
}

std::int64_t Os::Read(Pid pid, int fd, std::span<std::uint8_t> buf, std::uint64_t len) {
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  const std::uint64_t offset = e->offset;
  const std::int64_t n = Pread(pid, fd, buf, len, offset);
  if (n > 0) {
    // Pread may have been interleaved with other calls; re-fetch the entry
    // (fd tables can grow) before advancing the offset.
    if (FdEntry* e2 = GetFd(pid, fd); e2 != nullptr) {
      e2->offset = offset + static_cast<std::uint64_t>(n);
    }
  }
  return n;
}

std::int64_t Os::Write(Pid pid, int fd, std::uint64_t len) {
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  const std::uint64_t offset = e->offset;
  const std::int64_t n = Pwrite(pid, fd, len, offset);
  if (n > 0) {
    if (FdEntry* e2 = GetFd(pid, fd); e2 != nullptr) {
      e2->offset = offset + static_cast<std::uint64_t>(n);
    }
  }
  return n;
}

std::int64_t Os::Lseek(Pid pid, int fd, std::uint64_t offset) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  if (offset == kSeekEnd) {
    InodeAttr attr;
    if (filesystems_[e->disk]->GetAttr(e->inum, &attr) != FsErr::kOk) {
      return ToErr(FsErr::kNotFound);
    }
    e->offset = attr.size;
  } else {
    e->offset = offset;
  }
  return static_cast<std::int64_t>(e->offset);
}

int Os::Fsync(Pid pid, int fd) {
  ++os_stats_.syscalls;
  ++os_stats_.fsyncs;
  Charge(pid, config_.costs.syscall_overhead);
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  const Inum tagged = Tag(e->disk, e->inum);
  std::vector<std::pair<Inum, std::uint64_t>> pages;
  for (const std::uint64_t p : cache_.TakeDirtyOfFile(tagged)) {
    pages.emplace_back(tagged, p);
  }
  Nanos done = SubmitWritebackRuns(std::move(pages));
  // fsync also covers writes the flusher already has in flight for this
  // file; FCFS queues mean waiting for the device drain is sufficient.
  done = std::max(done, disk_queues_[e->disk]->busy_until());
  WaitUntil(pid, done);
  return 0;
}

int Os::Syncfs(Pid pid, int disk) {
  ++os_stats_.syscalls;
  ++os_stats_.syncfs_calls;
  Charge(pid, config_.costs.syscall_overhead);
  if (disk < 0 || disk >= num_disks()) {
    return ToErr(FsErr::kInvalid);
  }
  // Everything dirty on this disk — file data AND metadata (fsync skips
  // the latter; a checkpoint barrier cannot). Dirtying order is preserved
  // by TakeDirtyMatching, so submission respects the write-order model.
  Nanos done = SubmitWritebackRuns(cache_.TakeDirtyMatching(
      [disk](Inum inum) { return DiskOfInum(inum) == disk; }));
  done = std::max(done, disk_queues_[disk]->busy_until());
  WaitUntil(pid, done);
  return 0;
}

int Os::Ftruncate(Pid pid, int fd, std::uint64_t size) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[e->disk];
  InodeAttr attr;
  (void)f.GetAttr(e->inum, &attr);
  if (const FsErr err = f.Resize(e->inum, size, clock_.now()); err != FsErr::kOk) {
    return ToErr(err);
  }
  if (size < attr.size) {
    const std::uint64_t ps = config_.page_size;
    const std::uint64_t keep = (size + ps - 1) / ps;
    const Inum tagged = Tag(e->disk, e->inum);
    cache_.DropFilePagesFrom(tagged, keep);
    InvalidateInflight(tagged, keep);
  }
  return 0;
}

int Os::Mincore(Pid pid, int fd, std::uint64_t offset, std::uint64_t length,
                std::vector<bool>* resident) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  if (!profile_.has_mincore) {
    return ToErr(FsErr::kInvalid);  // interface not available on this platform
  }
  FdEntry* e = GetFd(pid, fd);
  if (e == nullptr) {
    return ToErr(FsErr::kInvalid);
  }
  graysim::InodeAttr attr;
  if (filesystems_[e->disk]->GetAttr(e->inum, &attr) != FsErr::kOk) {
    return ToErr(FsErr::kNotFound);
  }
  const std::uint64_t ps = config_.page_size;
  const std::uint64_t end = std::min(attr.size, offset + length);
  resident->clear();
  if (offset >= end) {
    return 0;
  }
  const Inum tagged = Tag(e->disk, e->inum);
  Nanos walk_cost = 0;
  for (std::uint64_t p = offset / ps; p <= (end - 1) / ps; ++p) {
    resident->push_back(cache_.Resident(tagged, p));
    walk_cost += 50;  // the kernel walks page-table/radix entries
  }
  Charge(pid, walk_cost);
  return 0;
}

int Os::Creat(Pid pid, std::string_view path) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  f.set_clock_hint(clock_.now());
  Inum inum = kInvalidInum;
  const FsErr lookup = f.Lookup(ref.sub, &inum);
  if (lookup == FsErr::kOk) {
    // POSIX creat truncates an existing file.
    InodeAttr attr;
    (void)f.GetAttr(inum, &attr);
    if (attr.is_dir) {
      return ToErr(FsErr::kIsDir);
    }
    cache_.DropFile(Tag(ref.disk, inum));
    InvalidateInflight(Tag(ref.disk, inum), 0);
    if (const FsErr err = f.Resize(inum, 0, clock_.now()); err != FsErr::kOk) {
      return ToErr(err);
    }
  } else if (lookup == FsErr::kNotFound) {
    if (const FsErr err = f.Create(ref.sub, &inum); err != FsErr::kOk) {
      return ToErr(err);
    }
  } else {
    return ToErr(lookup);
  }
  ChargeWalk(pid, ref);
  MetaDirty(pid, ref.disk, f.InodeBlockOf(inum));
  auto& table = fd_tables_[pid];
  int fd = -1;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!table[i].open) {
      fd = static_cast<int>(i);
      break;
    }
  }
  if (fd < 0) {
    table.emplace_back();
    fd = static_cast<int>(table.size()) - 1;
  }
  table[fd] = FdEntry{true, ref.disk, inum, 0, 0, 0};
  return fd;
}

int Os::Stat(Pid pid, std::string_view path, InodeAttr* out) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  return StatImpl(pid, path, out);
}

int Os::StatImpl(Pid pid, std::string_view path, InodeAttr* out) {
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  if (chaos_ != nullptr && chaos_->InjectStatError()) {
    trace_.Instant(obs::kTrackChaos, "eio.stat", clock_.now());
    Charge(pid, chaos_->plan().stat_eio_latency);
    return ToErr(FsErr::kIo);
  }
  Ffs& f = *filesystems_[ref.disk];
  if (const FsErr err = f.GetAttrPath(ref.sub, out); err != FsErr::kOk) {
    return ToErr(err);
  }
  ChargeWalk(pid, ref);
  return 0;
}

// ---- batched syscalls ----

void Os::PreadBatch(Pid pid, std::span<const PreadBatchOp> ops,
                    std::span<BatchOpResult> out) {
  ++os_stats_.syscalls;
  ++os_stats_.batch_syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  const std::size_t n = std::min(ops.size(), out.size());
  os_stats_.batched_ops += n;
  for (std::size_t i = 0; i < n; ++i) {
    const Nanos t0 = clock_.now();
    const std::int64_t rc = PreadImpl(pid, ops[i].fd, {}, ops[i].len, ops[i].offset);
    out[i] = BatchOpResult{clock_.now() - t0, rc};
  }
}

void Os::StatBatch(Pid pid, std::span<const std::string> paths, std::span<InodeAttr> attrs,
                   std::span<BatchOpResult> out) {
  ++os_stats_.syscalls;
  ++os_stats_.batch_syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  const std::size_t n = std::min({paths.size(), attrs.size(), out.size()});
  os_stats_.batched_ops += n;
  for (std::size_t i = 0; i < n; ++i) {
    const Nanos t0 = clock_.now();
    const int rc = StatImpl(pid, paths[i], &attrs[i]);
    out[i] = BatchOpResult{clock_.now() - t0, rc};
  }
}

void Os::VmTouchBatch(Pid pid, std::span<const VmTouchBatchOp> ops,
                      std::span<BatchOpResult> out) {
  // Memory accesses: no syscall entry to count or charge.
  const std::size_t n = std::min(ops.size(), out.size());
  os_stats_.batched_ops += n;
  for (std::size_t i = 0; i < n; ++i) {
    const Nanos t0 = clock_.now();
    VmTouch(pid, ops[i].area, ops[i].page_index, ops[i].write);
    out[i] = BatchOpResult{clock_.now() - t0, 0};
  }
}

int Os::Unlink(Pid pid, std::string_view path) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  f.set_clock_hint(clock_.now());
  Inum inum = kInvalidInum;
  if (const FsErr err = f.Lookup(ref.sub, &inum); err != FsErr::kOk) {
    return ToErr(err);
  }
  ChargeWalk(pid, ref);
  cache_.DropFile(Tag(ref.disk, inum));
  InvalidateInflight(Tag(ref.disk, inum), 0);
  const std::uint64_t inode_block = f.InodeBlockOf(inum);
  if (const FsErr err = f.Unlink(ref.sub); err != FsErr::kOk) {
    return ToErr(err);
  }
  MetaDirty(pid, ref.disk, inode_block);
  return 0;
}

int Os::Mkdir(Pid pid, std::string_view path) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  f.set_clock_hint(clock_.now());
  Inum inum = kInvalidInum;
  if (const FsErr err = f.Mkdir(ref.sub, &inum); err != FsErr::kOk) {
    return ToErr(err);
  }
  MetaDirty(pid, ref.disk, f.InodeBlockOf(inum));
  return 0;
}

int Os::Rmdir(Pid pid, std::string_view path) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  f.set_clock_hint(clock_.now());
  Inum inum = kInvalidInum;
  if (const FsErr err = f.Lookup(ref.sub, &inum); err != FsErr::kOk) {
    return ToErr(err);
  }
  const std::uint64_t inode_block = f.InodeBlockOf(inum);
  if (const FsErr err = f.Rmdir(ref.sub); err != FsErr::kOk) {
    return ToErr(err);
  }
  MetaDirty(pid, ref.disk, inode_block);
  return 0;
}

int Os::Rename(Pid pid, std::string_view from, std::string_view to) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef rfrom;
  PathRef rto;
  if (!ParsePath(from, &rfrom) || !ParsePath(to, &rto)) {
    return ToErr(FsErr::kInvalid);
  }
  if (rfrom.disk != rto.disk) {
    return ToErr(FsErr::kInvalid);  // no cross-device rename
  }
  Ffs& f = *filesystems_[rfrom.disk];
  f.set_clock_hint(clock_.now());
  // If the rename replaces an existing file, drop its pages.
  Inum existing = kInvalidInum;
  if (f.Lookup(rto.sub, &existing) == FsErr::kOk) {
    cache_.DropFile(Tag(rto.disk, existing));
    InvalidateInflight(Tag(rto.disk, existing), 0);
  }
  ChargeWalk(pid, rfrom);
  if (const FsErr err = f.Rename(rfrom.sub, rto.sub); err != FsErr::kOk) {
    return ToErr(err);
  }
  Inum moved = kInvalidInum;
  if (f.Lookup(rto.sub, &moved) == FsErr::kOk) {
    MetaDirty(pid, rfrom.disk, f.InodeBlockOf(moved));
  }
  return 0;
}

int Os::ReadDir(Pid pid, std::string_view path, std::vector<DirEntryInfo>* out) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  Inum inum = kInvalidInum;
  if (const FsErr err = f.Lookup(ref.sub, &inum); err != FsErr::kOk) {
    return ToErr(err);
  }
  std::vector<std::uint64_t> blocks;
  if (f.DirBlocks(inum, &blocks) == FsErr::kOk) {
    for (const std::uint64_t b : blocks) {
      MetaRead(pid, ref.disk, b);
    }
  }
  if (const FsErr err = f.ListDir(ref.sub, out); err != FsErr::kOk) {
    return ToErr(err);
  }
  return 0;
}

int Os::Utimes(Pid pid, std::string_view path, Nanos atime, Nanos mtime) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return ToErr(FsErr::kInvalid);
  }
  Ffs& f = *filesystems_[ref.disk];
  Inum inum = kInvalidInum;
  if (const FsErr err = f.Lookup(ref.sub, &inum); err != FsErr::kOk) {
    return ToErr(err);
  }
  (void)f.SetTimes(inum, atime, mtime);
  MetaDirty(pid, ref.disk, f.InodeBlockOf(inum));
  return 0;
}

// ---- memory ----

VmAreaId Os::VmAlloc(Pid pid, std::uint64_t bytes) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  const std::uint64_t pages = (bytes + config_.page_size - 1) / config_.page_size;
  return vm_.Alloc(pid, pages);
}

void Os::VmFree(Pid pid, VmAreaId area) {
  ++os_stats_.syscalls;
  Charge(pid, config_.costs.syscall_overhead);
  vm_.Free(pid, area);
}

void Os::VmTouch(Pid pid, VmAreaId area, std::uint64_t page_index, bool write) {
  // A memory access, not a syscall: no syscall overhead.
  const VmTouchResult r = vm_.Touch(pid, area, page_index, write);
  switch (r.outcome) {
    case TouchOutcome::kResident:
    case TouchOutcome::kZeroRead:
      Charge(pid, config_.costs.mem_touch);
      return;
    case TouchOutcome::kZeroFill: {
      DrainDirectReclaim(pid);  // reclaim writeback/swap-out triggered by the fill
      Nanos cost = config_.costs.zero_fill_page;
      if (chaos_ != nullptr) {
        cost += chaos_->AllocStall(clock_.now());
      }
      Charge(pid, cost);
      MaybeWakePageDaemon();
      return;
    }
    case TouchOutcome::kSwapIn: {
      ++os_stats_.swap_ins;
      DrainDirectReclaim(pid);
      WaitUntil(pid, SubmitSwapIo(r.swap_slot, /*is_write=*/false));
      Charge(pid, config_.costs.page_fault_overhead);
      MaybeWakePageDaemon();
      return;
    }
    case TouchOutcome::kDenied:
      // Should be unreachable under all three policies; model as a hard
      // fault so misconfigurations surface in experiments rather than hang.
      Charge(pid, config_.costs.page_fault_overhead + Millis(10.0));
      return;
  }
}

// ---- background daemons ----

void Os::MaybeWakeFlushDaemon() {
  if (flush_daemon_scheduled_ || cache_.dirty_pages() <= dirty_limit_pages_) {
    return;
  }
  flush_daemon_scheduled_ = true;
  events_.ScheduleAt(clock_.now(), EventQueue::Band::kCompletion,
                     [this] { FlushDaemonRun(); }, Desc(EventKind::kFlushDaemon));
}

void Os::FlushDaemonRun() {
  BackgroundScope background(this);  // daemon work runs off an event, not a process
  flush_daemon_scheduled_ = false;
  ++os_stats_.daemon_wakeups;
  if (cache_.dirty_pages() <= dirty_limit_pages_) {
    return;
  }
  trace_.Begin(obs::kTrackFlushDaemon, "flush", clock_.now());
  const std::uint64_t target = dirty_limit_pages_ / 2;
  const std::uint64_t excess = cache_.dirty_pages() - target;
  (void)SubmitWritebackRuns(cache_.TakeOldestDirty(excess));
  trace_.End(obs::kTrackFlushDaemon, "flush", clock_.now());
}

void Os::MaybeWakePageDaemon() {
  if (profile_.mem_policy != MemPolicy::kUnifiedLru || page_daemon_scheduled_) {
    return;
  }
  if (mem_.free_pages() >= page_daemon_low_pages_) {
    return;
  }
  page_daemon_scheduled_ = true;
  events_.ScheduleAt(clock_.now(), EventQueue::Band::kCompletion,
                     [this] { PageDaemonRun(); }, Desc(EventKind::kPageDaemon));
}

void Os::PageDaemonRun() {
  BackgroundScope background(this);  // daemon work runs off an event, not a process
  ++os_stats_.daemon_wakeups;
  if (mem_.free_pages() >= page_daemon_high_pages_) {
    page_daemon_scheduled_ = false;
    return;
  }
  trace_.Begin(obs::kTrackPageDaemon, "reclaim", clock_.now());
  const std::uint64_t evicted =
      mem_.ReclaimToFree(page_daemon_high_pages_, kPageDaemonBatch);
  trace_.End(obs::kTrackPageDaemon, "reclaim", clock_.now());
  if (evicted == 0) {
    // Nothing clean to take. Dirty and anonymous reclaim costs I/O, which
    // stays in process context (direct reclaim) so the allocator pays the
    // wait — the signal MAC reads. Go idle until the next fault re-arms us.
    page_daemon_scheduled_ = false;
    return;
  }
  events_.ScheduleAt(clock_.now() + kPageDaemonTick, EventQueue::Band::kCompletion,
                     [this] { PageDaemonRun(); }, Desc(EventKind::kPageDaemon));
}

Nanos Os::SubmitWritebackRuns(std::vector<std::pair<Inum, std::uint64_t>> pages) {
  if (pages.empty()) {
    return 0;
  }
  // Map to (disk, disk block), sort, and coalesce contiguous runs so each
  // run goes to the device as one request.
  struct Target {
    int disk;
    std::uint64_t block;
  };
  std::vector<Target> targets;
  targets.reserve(pages.size());
  for (const auto& [tagged, page] : pages) {
    const int disk = DiskOfInum(tagged);
    std::uint64_t block = page;
    if (!IsPseudoInum(tagged)) {
      if (filesystems_[disk]->BlockOf(LocalInum(tagged), page, &block) != FsErr::kOk) {
        continue;  // truncated/unlinked since dirtying
      }
    }
    targets.push_back(Target{disk, block});
  }
  std::sort(targets.begin(), targets.end(), [](const Target& a, const Target& b) {
    return a.disk != b.disk ? a.disk < b.disk : a.block < b.block;
  });
  Nanos done = 0;
  std::size_t i = 0;
  while (i < targets.size()) {
    std::size_t j = i + 1;
    while (j < targets.size() && targets[j].disk == targets[i].disk &&
           targets[j].block == targets[j - 1].block + 1) {
      ++j;
    }
    os_stats_.writeback_pages += j - i;
    done = std::max(done, SubmitDiskIo(targets[i].disk, targets[i].block, j - i,
                                       /*is_write=*/true, nullptr));
    i = j;
  }
  return done;
}

// ---- experiment control & introspection ----

void Os::FlushFileCache() {
  cache_.DropAll(nullptr);
  inflight_reads_.Clear();
}

bool Os::PageResidentPath(std::string_view path, std::uint64_t page_index) const {
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return false;
  }
  Inum inum = kInvalidInum;
  if (filesystems_[ref.disk]->Lookup(ref.sub, &inum) != FsErr::kOk) {
    return false;
  }
  return cache_.Resident(Tag(ref.disk, inum), page_index);
}

double Os::ResidentFraction(std::string_view path) const {
  PathRef ref;
  if (!ParsePath(path, &ref)) {
    return 0.0;
  }
  InodeAttr attr;
  if (filesystems_[ref.disk]->GetAttrPath(ref.sub, &attr) != FsErr::kOk) {
    return 0.0;
  }
  Inum inum = kInvalidInum;
  (void)filesystems_[ref.disk]->Lookup(ref.sub, &inum);
  const std::uint64_t pages = (attr.size + config_.page_size - 1) / config_.page_size;
  if (pages == 0) {
    return 1.0;
  }
  const std::uint64_t resident = cache_.ResidentPagesOfFile(Tag(ref.disk, inum));
  return static_cast<double>(resident) / static_cast<double>(pages);
}

// ---- snapshot / fork ----

Os::Image Os::CaptureImage() const {
  assert(!in_scheduler_run_ && "snapshot requires quiescence (no live fiber stacks)");
  assert(direct_reclaim_wait_ == 0 && !in_background_);
  assert(!crashed_ && "checkpoint after Recover(), not mid-crash");
  Image img;
  img.profile = profile_;
  img.config = config_;
  img.now = clock_.now();
  img.events = events_.ExportPending();
#ifndef NDEBUG
  for (const EventQueue::RawEvent& ev : img.events) {
    assert(ev.desc.kind != static_cast<std::uint32_t>(EventKind::kNone) &&
           "pending event lacks a snapshot descriptor");
  }
#endif
  img.kernel = events_.SnapshotKernelState();
  img.jitter_rng = jitter_rng_.state();
  img.filesystems.reserve(filesystems_.size());
  for (const auto& fs : filesystems_) {
    img.filesystems.push_back(*fs);
  }
  img.disks = disks_;
  img.disk_devices.reserve(disk_queues_.size());
  for (const auto& q : disk_queues_) {
    img.disk_devices.push_back(q->device().CaptureState());
  }
  img.net = net_->CaptureState();
  img.mem = std::make_unique<MemSystem>(mem_.config());
  img.mem->CopyStateFrom(mem_);
  img.cache = std::make_unique<PageCache>(img.mem.get());
  img.cache->CopyStateFrom(cache_);
  img.vm = std::make_unique<Vm>(img.mem.get());
  img.vm->CopyStateFrom(vm_);
  img.fd_tables = fd_tables_;
  img.inflight_reads = inflight_reads_;
  img.next_read_token = next_read_token_;
  img.flush_daemon_scheduled = flush_daemon_scheduled_;
  img.page_daemon_scheduled = page_daemon_scheduled_;
  img.next_pid = next_pid_;
  img.os_stats = os_stats_;
  img.chaos_epoch = chaos_epoch_;
  img.antagonist_reader_pos = antagonist_reader_pos_;
  img.antagonist_dirty_pos = antagonist_dirty_pos_;
  if (chaos_ != nullptr) {
    img.chaos_armed = true;
    img.chaos_plan = chaos_->plan();
    img.chaos_rng = chaos_->rng_state();
    img.chaos_stats = chaos_->stats();
  }
  return img;
}

void Os::RestoreImage(const Image& img) {
  assert(!in_scheduler_run_);
  assert(events_.empty() && clock_.now() == 0 && chaos_ == nullptr &&
         "RestoreImage overwrites a freshly constructed, chaos-free Os");
  // Restore the full config (construction ran with chaos stripped so the
  // constructor's ArmChaos scheduled nothing; see Machine's fork path).
  config_.chaos = img.config.chaos;
  clock_.AdvanceTo(img.now);
  events_.RestoreKernelState(img.kernel);
  jitter_rng_.set_state(img.jitter_rng);
  for (std::size_t d = 0; d < filesystems_.size(); ++d) {
    *filesystems_[d] = img.filesystems[d];
    disks_[d] = img.disks[d];
    disk_queues_[d]->device().RestoreState(img.disk_devices[d]);
  }
  net_->RestoreState(img.net);
  mem_.CopyStateFrom(*img.mem);
  cache_.CopyStateFrom(*img.cache);
  vm_.CopyStateFrom(*img.vm);
  fd_tables_ = img.fd_tables;
  inflight_reads_ = img.inflight_reads;
  next_read_token_ = img.next_read_token;
  flush_daemon_scheduled_ = img.flush_daemon_scheduled;
  page_daemon_scheduled_ = img.page_daemon_scheduled;
  next_pid_ = img.next_pid;
  os_stats_ = img.os_stats;
  antagonist_reader_pos_ = img.antagonist_reader_pos;
  antagonist_dirty_pos_ = img.antagonist_dirty_pos;
  if (img.chaos_armed) {
    ArmChaosHooks(img.chaos_plan);
    chaos_->set_rng_state(img.chaos_rng);
    chaos_->set_stats(img.chaos_stats);
  }
  // The epoch transfers verbatim — the captured tick events carry the
  // original's epoch values and must match (or stay orphaned, if the
  // original had disarmed a plan with ticks still in flight).
  chaos_epoch_ = img.chaos_epoch;
  // Events last: every subsystem a rebuilt closure can touch is in place.
  for (const EventQueue::RawEvent& ev : img.events) {
    events_.ImportPending(ev, MaterializeEvent(ev.desc));
  }
}

EventFn Os::MaterializeEvent(const EventDesc& d) {
  switch (static_cast<EventKind>(d.kind)) {
    case EventKind::kDeviceCompletion: {
      // A completion with no callback: plain disk I/O, swap, writeback, or
      // (dev == -1) the net link's serialization slot.
      SimDevice& dev = d.dev < 0 ? net_->link_mutable() : disk_queues_[d.dev]->device();
      return dev.MakeCompletionEvent(nullptr);
    }
    case EventKind::kReadFillCompletion: {
      const Inum tagged = static_cast<Inum>(d.arg[0]);
      const std::uint64_t first_page = d.arg[1];
      const std::uint64_t npages = d.arg[2];
      const std::uint64_t token = d.arg[3];
      const bool readahead = d.arg[4] != 0;
      return disk_queues_[d.dev]->device().MakeCompletionEvent(
          [this, tagged, first_page, npages, token, readahead] {
            FillPages(tagged, first_page, npages, token, readahead);
          });
    }
    case EventKind::kNetDeliver: {
      NetMessage msg;
      msg.from = static_cast<std::int32_t>(d.arg[1]);
      msg.bytes = d.arg[2];
      msg.tag = d.arg[3];
      msg.seq = d.arg[4];
      msg.sent_at = static_cast<Nanos>(d.arg[5]);
      return net_->RebuildDeliver(d.dev, msg, static_cast<Nanos>(d.arg[0]));
    }
    case EventKind::kAntagonistTick: {
      const std::uint64_t epoch = d.arg[0];
      return EventFn([this, epoch] { AntagonistTick(epoch); });
    }
    case EventKind::kShockTick: {
      const std::uint64_t epoch = d.arg[0];
      return EventFn([this, epoch] { ShockTick(epoch); });
    }
    case EventKind::kCrash: {
      const std::uint64_t epoch = d.arg[0];
      return EventFn([this, epoch] { CrashNow(epoch); });
    }
    case EventKind::kShockRelease: {
      const std::uint64_t epoch = d.arg[0];
      return EventFn([this, epoch] {
        if (chaos_ != nullptr && epoch == chaos_epoch_) {
          cache_.DropFile(Tag(0, kShockLocalInum));
        }
      });
    }
    case EventKind::kFlushDaemon:
      return EventFn([this] { FlushDaemonRun(); });
    case EventKind::kPageDaemon:
      return EventFn([this] { PageDaemonRun(); });
    case EventKind::kNone:
      break;
  }
  assert(false && "unmaterializable event descriptor");
  return EventFn([] {});
}

std::uint64_t Os::Image::ApproxBytes() const {
  std::uint64_t bytes = sizeof(Image);
  bytes += events.capacity() * sizeof(EventQueue::RawEvent);
  for (const Ffs& f : filesystems) {
    bytes += f.ApproxBytes();
  }
  bytes += disks.capacity() * sizeof(Disk);
  bytes += disk_devices.capacity() * sizeof(SimDevice::State);
  for (const NetDevice::Endpoint& ep : net.endpoints) {
    bytes += sizeof(ep) + ep.inbox.size() * sizeof(NetMessage) +
             ep.in_flight.capacity() * sizeof(Nanos);
  }
  if (mem != nullptr) {
    bytes += sizeof(MemSystem) + mem->frames().ApproxBytes();
  }
  if (cache != nullptr) {
    bytes += cache->ApproxBytes();
  }
  if (vm != nullptr) {
    bytes += vm->ApproxBytes();
  }
  for (const auto& table : fd_tables) {
    bytes += table.capacity() * sizeof(FdEntry);
  }
  bytes += inflight_reads.capacity_bytes();
  return bytes;
}

}  // namespace graysim
