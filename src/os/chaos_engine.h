// ChaosEngine: executes a FaultPlan against the simulated kernel.
//
// The engine owns the plan, a dedicated RNG stream (seeded from the plan, so
// fault decisions never perturb the kernel's jitter or tie-break streams),
// and the injected-fault counters. It is pure decision logic: the Os asks it
// "should this Pread fail?" / "how slow is disk d right now?" and applies
// the answer itself. Keeping all randomness here gives the replay guarantee:
// with the same plan and the same (deterministic) syscall/request sequence,
// every injected fault lands at the same virtual instant, run after run.
#ifndef SRC_OS_CHAOS_ENGINE_H_
#define SRC_OS_CHAOS_ENGINE_H_

#include <cstdint>

#include "src/sim/clock.h"
#include "src/sim/fault_plan.h"
#include "src/sim/rng.h"

namespace graysim {

// Counts of injected interference, exposed through Os::chaos_stats(). The
// determinism tests snapshot this next to OsStats: two runs of the same plan
// must agree on every counter, not just on the virtual clock.
struct ChaosStats {
  std::uint64_t injected_read_errors = 0;
  std::uint64_t injected_stat_errors = 0;
  std::uint64_t injected_write_errors = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t disk_spikes = 0;
  std::uint64_t degraded_requests = 0;  // disk requests inside a degraded window
  std::uint64_t reader_ticks = 0;
  std::uint64_t dirtier_ticks = 0;
  std::uint64_t antagonist_pages = 0;  // cache pages touched by antagonists
  std::uint64_t pressure_shocks = 0;
  std::uint64_t stalled_allocs = 0;  // zero-fills stalled inside shock windows
  std::uint64_t injected_net_drops = 0;
  std::uint64_t delayed_net_messages = 0;  // sends inside a net-delay window

  friend bool operator==(const ChaosStats&, const ChaosStats&) = default;
};

class ChaosEngine {
 public:
  explicit ChaosEngine(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const ChaosStats& stats() const { return stats_; }
  // The Os-side antagonist/shock tick bodies record their work here.
  [[nodiscard]] ChaosStats& stats_mutable() { return stats_; }

  // Snapshot support: a forked machine rebuilds the engine from the plan,
  // then restores the RNG mid-sequence (fault decisions must continue the
  // original draw stream, not restart it) and the counters.
  [[nodiscard]] Rng::State rng_state() const { return rng_.state(); }
  void set_rng_state(const Rng::State& s) { rng_.set_state(s); }
  void set_stats(const ChaosStats& s) { stats_ = s; }

  // Per-operation fault decisions. Each draws from the chaos RNG only when
  // its probability is non-zero, so the draw sequence is a pure function of
  // the operation sequence.
  [[nodiscard]] bool InjectReadError() {
    return Roll(plan_.read_eio_prob, &stats_.injected_read_errors);
  }
  [[nodiscard]] bool InjectStatError() {
    return Roll(plan_.stat_eio_prob, &stats_.injected_stat_errors);
  }
  [[nodiscard]] bool InjectWriteError() {
    return Roll(plan_.write_enospc_prob, &stats_.injected_write_errors);
  }

  [[nodiscard]] bool InjectNetDrop() {
    return Roll(plan_.net_drop_prob, &stats_.injected_net_drops);
  }

  // Latency multiplier for a message sent at virtual time `now`: the
  // congestion square wave stretches propagation inside its duty window.
  // Draw-free.
  [[nodiscard]] double NetDelayScale(Nanos now) {
    if (plan_.net_delay_period == 0 ||
        !InWindow(now, plan_.net_delay_period, plan_.net_delay_duty)) {
      return 1.0;
    }
    ++stats_.delayed_net_messages;
    return plan_.net_delay_scale;
  }

  // Possibly truncates a write to a strict non-empty prefix (POSIX short
  // write). Returns `len` unchanged when no fault fires.
  [[nodiscard]] std::uint64_t MaybeShortWrite(std::uint64_t len) {
    if (len <= 1 || !Roll(plan_.short_write_prob, &stats_.short_writes)) {
      return len;
    }
    return rng_.Range(1, len - 1);
  }

  // Jitter amplitude at virtual time `now`: the burst square wave replaces
  // the configured base amplitude inside its duty window. Draw-free.
  [[nodiscard]] double JitterAmplitude(Nanos now, double base) const {
    if (plan_.jitter_burst_period == 0) {
      return base;
    }
    return InWindow(now, plan_.jitter_burst_period, plan_.jitter_burst_duty)
               ? plan_.jitter_burst_amplitude
               : base;
  }

  // Extra latency for a zero-fill page allocation at virtual time `now`:
  // inside a shock window (the same square wave that paces ShockTick's
  // grabs) the shock competitor contends for free lists and LRU locks, so
  // fresh pages are slow machine-wide. Draw-free.
  [[nodiscard]] Nanos AllocStall(Nanos now) {
    if (plan_.shock_period == 0 || plan_.shock_alloc_stall == 0 ||
        plan_.shock_duration == 0) {
      return 0;
    }
    // The first window opens with the first ShockTick grab at t = period,
    // not at t = 0: an ICL calibrating on first contact must see the clean
    // machine, exactly as a process starting before the competitor would.
    if (now < plan_.shock_period || now % plan_.shock_period >= plan_.shock_duration) {
      return 0;
    }
    ++stats_.stalled_allocs;
    return plan_.shock_alloc_stall;
  }

  // Scales one disk request's service time: degraded-window multiplier
  // (draw-free square wave) times an occasional random spike.
  [[nodiscard]] Nanos ScaleService(int disk, Nanos now, Nanos service) {
    double scale = 1.0;
    if (plan_.degraded_period > 0 &&
        (plan_.degraded_disk < 0 || plan_.degraded_disk == disk) &&
        InWindow(now, plan_.degraded_period, plan_.degraded_duty)) {
      scale *= plan_.degraded_scale;
      ++stats_.degraded_requests;
    }
    if (plan_.spike_prob > 0.0 && rng_.Chance(plan_.spike_prob)) {
      scale *= plan_.spike_scale;
      ++stats_.disk_spikes;
    }
    if (scale == 1.0) {
      return service;
    }
    return static_cast<Nanos>(static_cast<double>(service) * scale);
  }

 private:
  [[nodiscard]] bool Roll(double prob, std::uint64_t* counter) {
    if (prob <= 0.0 || !rng_.Chance(prob)) {
      return false;
    }
    ++*counter;
    return true;
  }

  [[nodiscard]] static bool InWindow(Nanos now, Nanos period, double duty) {
    const Nanos phase = now % period;
    return static_cast<double>(phase) < duty * static_cast<double>(period);
  }

  FaultPlan plan_;
  Rng rng_;
  ChaosStats stats_;
};

}  // namespace graysim

#endif  // SRC_OS_CHAOS_ENGINE_H_
