// Platform profiles and the machine cost model.
//
// A PlatformProfile bundles the policy knobs that distinguish the paper's
// three evaluation platforms (Linux 2.2.17, NetBSD 1.5, Solaris 7). The
// CostModel holds the latency/bandwidth constants of the simulated machine
// (2×P-III class, 896 MB RAM, IBM 9LZX disks).
#ifndef SRC_OS_PLATFORM_H_
#define SRC_OS_PLATFORM_H_

#include <cstdint>
#include <string>

#include "src/disk/disk.h"
#include "src/fs/ffs.h"
#include "src/mem/mem_system.h"
#include "src/net/net_schedule.h"
#include "src/sim/clock.h"
#include "src/sim/fault_plan.h"

namespace graysim {

struct CostModel {
  Nanos syscall_overhead = Micros(1.5);
  double copy_mb_per_s = 320.0;        // kernel<->user copy bandwidth
  Nanos mem_touch = 150;               // touching a resident page (user level)
  Nanos zero_fill_page = Micros(3.0);  // allocate + zero one page
  Nanos page_fault_overhead = Micros(2.0);
  double cpu_scan_mb_per_s = 150.0;    // application CPU processing rate
  double cpu_sort_mb_per_s = 40.0;     // in-memory sort rate (fastsort)
  Nanos fork_exec = Millis(2.0);       // fork+exec for the gbp pipe path

  [[nodiscard]] Nanos CopyCost(std::uint64_t bytes) const {
    const double ns_per_byte = 1e9 / (copy_mb_per_s * 1024.0 * 1024.0);
    return static_cast<Nanos>(static_cast<double>(bytes) * ns_per_byte);
  }
  [[nodiscard]] Nanos ScanCost(std::uint64_t bytes) const {
    const double ns_per_byte = 1e9 / (cpu_scan_mb_per_s * 1024.0 * 1024.0);
    return static_cast<Nanos>(static_cast<double>(bytes) * ns_per_byte);
  }
  [[nodiscard]] Nanos SortCost(std::uint64_t bytes) const {
    const double ns_per_byte = 1e9 / (cpu_sort_mb_per_s * 1024.0 * 1024.0);
    return static_cast<Nanos>(static_cast<double>(bytes) * ns_per_byte);
  }
};

struct PlatformProfile {
  std::string name;
  MemPolicy mem_policy = MemPolicy::kUnifiedLru;
  std::uint64_t file_cache_bytes = 0;  // partition size (kPartitionedFixedFile)
  AllocatorKind fs_allocator = AllocatorKind::kPacked;
  bool readahead = true;
  // Whether the platform offers a mincore(2)-style residency syscall
  // (paper §4.1 footnote 1: not broadly available).
  bool has_mincore = false;

  // Linux 2.2-like: unified clock-LRU; nearly all memory is file cache.
  [[nodiscard]] static PlatformProfile Linux22() {
    PlatformProfile p;
    p.name = "linux2.2";
    p.mem_policy = MemPolicy::kUnifiedLru;
    p.fs_allocator = AllocatorKind::kPacked;
    p.has_mincore = true;  // Linux exposes mincore(2)
    return p;
  }

  // NetBSD 1.5-like: fixed 64 MB buffer cache ("a throwback to early UNIX").
  [[nodiscard]] static PlatformProfile NetBsd15() {
    PlatformProfile p;
    p.name = "netbsd1.5";
    p.mem_policy = MemPolicy::kPartitionedFixedFile;
    p.file_cache_bytes = 64ULL * 1024 * 1024;
    p.fs_allocator = AllocatorKind::kPacked;
    return p;
  }

  // Solaris 7-like: sticky file cache (hard to dislodge), sparser on-disk
  // packing of small files.
  [[nodiscard]] static PlatformProfile Solaris7() {
    PlatformProfile p;
    p.name = "solaris7";
    p.mem_policy = MemPolicy::kStickyFile;
    p.fs_allocator = AllocatorKind::kSparse;
    return p;
  }

  // Hypothetical LFS platform (paper §4.2.5: porting FLDC means swapping
  // the layout heuristic from i-number order to write-time order).
  [[nodiscard]] static PlatformProfile LfsVariant() {
    PlatformProfile p;
    p.name = "lfs";
    p.mem_policy = MemPolicy::kUnifiedLru;
    p.fs_allocator = AllocatorKind::kLogStructured;
    return p;
  }
};

struct MachineConfig {
  std::uint64_t phys_mem_bytes = 896ULL * 1024 * 1024;
  std::uint64_t kernel_reserved_bytes = 66ULL * 1024 * 1024;  // leaves ~830 MB
  std::uint32_t page_size = 4096;
  int num_disks = 5;
  DiskGeometry disk_geometry = DiskGeometry::Ibm9Lzx();
  FsParams fs_params;  // allocator overridden by the platform profile
  CostModel costs;
  Nanos scheduler_slice = Millis(10.0);
  // Multiplicative timing noise on every charged cost, uniform in
  // [1-jitter, 1+jitter]. Real machines are never noiseless; the gray-box
  // statistics only make sense against jittered observations. Deterministic
  // (seeded) so experiments stay reproducible.
  double timing_jitter = 0.10;
  std::uint64_t jitter_seed = 0x6a17;
  // Seed for the event queue's same-instant tie-breaking draws.
  std::uint64_t event_tie_seed = 0x5eed;
  // Write-behind: flush begins above this fraction of memory dirty.
  double dirty_ratio = 0.125;
  std::uint32_t readahead_min_pages = 8;
  std::uint32_t readahead_max_pages = 64;
  // Fault & interference schedule (disabled by default). When enabled the Os
  // arms a ChaosEngine at construction; see Os::ArmChaos for late arming.
  FaultPlan chaos;
  // Simulated network link (NetSend/NetRecv/NetPoll). Always constructed —
  // an idle link costs nothing; `net.seed` is machine-derived in fleets.
  NetSchedule net;
};

}  // namespace graysim

#endif  // SRC_OS_PLATFORM_H_
