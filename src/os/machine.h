// graysim::Machine — the facade over one complete simulated host.
//
// A Machine owns everything one simulated computer needs: the Os (which in
// turn owns the event queue, scheduler, disks, file systems, page cache,
// VM, and chaos engine), the Os-bound MetricsRegistry, a machine id, and a
// root seed from which every per-subsystem random stream derives. It is
// constructed from pure data — {PlatformProfile, MachineConfig, machine_id,
// seed} — so any machine in a fleet is reconstructible anywhere and
// bit-identical on replay: same arguments, same virtual timeline, same
// stats, wherever and whenever it runs.
//
// Machines share NOTHING. The Os has no globals, the scheduler's
// running-slot is thread_local, each RNG stream is owned by its subsystem,
// and the trace sink and metrics registry live inside the machine. That
// makes machines embarrassingly parallel: a fleet is N Machine instances
// driven by N host threads (one machine runs on one thread at a time — the
// kernel inside is still deterministic single-threaded discrete-event
// simulation), and is exactly how bench/scale_fleet reaches millions of
// simulated processes.
//
// Two construction modes:
//  * fleet (id + seed): jitter, event tie-break, chaos, and net seeds are
//    all derived from (seed, machine_id), so distinct machines get distinct
//    decorrelated streams and a (seed, id) pair names a reproducible
//    machine;
//  * config-seeded: uses the seeds already in MachineConfig verbatim —
//    bit-compatible with the historical hand-assembled `Os os(profile,
//    config)` pattern, which keeps every committed single-machine baseline
//    unchanged.
#ifndef SRC_OS_MACHINE_H_
#define SRC_OS_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/os.h"
#include "src/os/platform.h"

namespace graysim {

// A machine frozen at one virtual instant: identity plus the Os's complete
// state image (see Os::Image). Immutable after capture and safe to share
// across threads — a warmed machine can be snapshotted once and forked into
// any number of divergent what-if runs, each bit-identical to continuing
// the original until its own inputs differ. Move-only (the image owns deep
// copies of the memory hierarchy).
struct MachineImage {
  std::uint32_t id = 0;
  std::uint64_t root_seed = 0;
  Os::Image os;
};

class Machine {
 public:
  // Fleet mode: derives every per-subsystem seed from (seed, machine_id).
  Machine(PlatformProfile profile, MachineConfig config, std::uint32_t machine_id,
          std::uint64_t seed);

  // Config-seeded mode: machine 0, streams seeded exactly as `config` says.
  // `Machine m(profile, config)` simulates bit-identically to the
  // historical `Os os(profile, config)`.
  explicit Machine(PlatformProfile profile, MachineConfig config = MachineConfig{});

  // Fork mode: reconstructs the machine `image` describes, resuming at its
  // capture instant. The fork's subsequent execution is bit-identical to
  // the original's (same virtual times, same stats, same trace), so a bench
  // can warm one machine and fork it per experiment cell instead of
  // re-warming per cell.
  explicit Machine(const MachineImage& image);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Captures this machine's complete state at the current virtual instant.
  // Requires quiescence (no RunProcesses in progress).
  [[nodiscard]] MachineImage Snapshot() const {
    return MachineImage{id_, root_seed_, os_.CaptureImage()};
  }

  // Named fork. Machine is pinned (noncopyable, nonmovable — subsystems
  // hold raw pointers into each other), so forks come back heap-allocated.
  [[nodiscard]] static std::unique_ptr<Machine> Fork(const MachineImage& image) {
    return std::make_unique<Machine>(image);
  }

  // ---- the simulated host ----
  [[nodiscard]] Os& os() { return os_; }
  [[nodiscard]] const Os& os() const { return os_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] std::uint64_t root_seed() const { return root_seed_; }

  // Derives a deterministic seed for a caller-owned stream (workload RNGs,
  // file-set shuffles) from this machine's identity. Distinct `stream`
  // tags give decorrelated streams; the same (machine seed, id, tag) always
  // yields the same value, preserving replay.
  [[nodiscard]] std::uint64_t DeriveSeed(std::uint64_t stream) const;

  // ---- observability ----
  // Registry pre-bound to the kernel (Os::BindMetrics ran at construction).
  // ICLs add their probe-engine sections here; benches collect or snapshot.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
  // Owned, mergeable copy of the current metric values — the fleet roll-up
  // unit (see obs::MetricsSnapshot).
  [[nodiscard]] obs::MetricsSnapshot SnapshotMetrics() const { return metrics_.Snapshot(); }
  [[nodiscard]] obs::TraceSink& trace() { return os_.trace(); }

  // ---- convenience passthroughs (the common bench/test surface) ----
  [[nodiscard]] Pid default_pid() const { return os_.default_pid(); }
  void RunProcesses(const std::vector<std::function<void(Pid)>>& bodies) {
    os_.RunProcesses(bodies);
  }
  [[nodiscard]] Nanos Now() const { return os_.Now(); }
  [[nodiscard]] const PlatformProfile& profile() const { return os_.profile(); }
  [[nodiscard]] const MachineConfig& config() const { return os_.config(); }

 private:
  // Rewrites config's jitter/event-tie/chaos/net seeds from (seed,
  // machine_id).
  [[nodiscard]] static MachineConfig DeriveConfig(MachineConfig config,
                                                  std::uint32_t machine_id,
                                                  std::uint64_t seed);

  std::uint32_t id_;
  std::uint64_t root_seed_;
  Os os_;
  obs::MetricsRegistry metrics_;
};

}  // namespace graysim

#endif  // SRC_OS_MACHINE_H_
