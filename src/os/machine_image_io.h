// Durable machine checkpoints: MachineImage <-> versioned binary file.
//
// SaveMachineImage serializes a captured MachineImage (see Os::Image) into
// a self-describing binary file: an 8-byte magic, a format version, and a
// sequence of tagged sections, each carrying its payload length and a CRC32
// of the payload. LoadMachineImage rebuilds a MachineImage that forks
// bit-identically to the original — the file carries every RNG stream
// mid-sequence, every pending event's (when, band, tie, id) key, the exact
// FlatMap slot layouts and free-list orders, and the disks' head positions,
// because any of those reconstructed "almost right" would silently diverge
// a resumed run.
//
// The save is atomic and durable: the image is written to `path + ".tmp"`,
// fsync'd, renamed over `path`, and the containing directory is fsync'd —
// the same write-order discipline the simulated kernel models. A crash
// during save leaves either the old file or the new one, never a torn mix.
//
// The load rejects — with a clean error and no partial restore — any file
// that is truncated, carries the wrong magic or version, fails a section
// CRC, or parses inconsistently. Corruption can cost the checkpoint, never
// the process.
#ifndef SRC_OS_MACHINE_IMAGE_IO_H_
#define SRC_OS_MACHINE_IMAGE_IO_H_

#include <string>

#include "src/os/machine.h"

namespace graysim {

// Current checkpoint format version. Bump on any encoding change; loaders
// reject other versions outright (no cross-version migration).
inline constexpr std::uint32_t kMachineImageFormatVersion = 1;

// Writes `image` to `path` atomically (tmp + fsync + rename + dir fsync).
// Returns false and fills *error (if non-null) on any I/O failure; `path`
// then still holds its previous contents, if any.
[[nodiscard]] bool SaveMachineImage(const MachineImage& image, const std::string& path,
                                    std::string* error = nullptr);

// Reads a checkpoint written by SaveMachineImage. On success *out holds a
// complete image (fork it with Machine::Fork). On any validation failure —
// wrong magic, wrong version, truncation, CRC mismatch, malformed section —
// returns false with *error describing the rejection and *out untouched.
[[nodiscard]] bool LoadMachineImage(const std::string& path, MachineImage* out,
                                    std::string* error = nullptr);

}  // namespace graysim

#endif  // SRC_OS_MACHINE_IMAGE_IO_H_
