// Deterministic cooperative round-robin scheduler for simulated processes.
//
// Each simulated process runs on a stackful fiber (ucontext) multiplexed on
// the single host thread that called Run(). Control transfers happen at
// syscall-charge points, sleeps, and exits — the same yield points as the
// old thread-per-process turnstile — but a switch is now two swapcontext
// calls instead of a mutex/condvar crossing, so the per-charge fast path
// takes no locks at all and scales to dozens of competing processes.
//
// Sleep/wake is delegated to the discrete-event queue: a sleeping fiber
// schedules its own wake event (Band::kWake), and when no fiber is runnable
// the dispatch loop advances the clock to the next pending event. Device
// completions and background daemons therefore interleave with process
// execution on one deterministic timeline.
//
// Each scheduler is confined to whichever host thread calls its Run(): the
// running-scheduler slot consulted by the makecontext trampoline is
// thread_local, so N independent machines may run on N host threads
// concurrently (the fleet model) with zero shared state between them.
#ifndef SRC_OS_SCHEDULER_H_
#define SRC_OS_SCHEDULER_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"

namespace graysim {

class Scheduler {
 public:
  Scheduler(SimClock* clock, EventQueue* events, Nanos slice)
      : clock_(clock), events_(events), slice_(slice) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Runs all bodies to completion; bodies[i] is invoked with proc index i.
  // Returns when every body has returned (a no-op for an empty vector).
  // Pending events (device completions, daemons) are drained along the way.
  void Run(const std::vector<std::function<void(int)>>& bodies);

  // True while Run() is executing. Single-threaded: only ever read from the
  // same host thread that runs the fibers.
  [[nodiscard]] bool active() const { return active_; }

  // Charges `cost` of virtual time to proc, drains newly due events, and
  // yields if the slice expired.
  void Charge(int proc, Nanos cost);

  // Puts proc to sleep for `duration` of virtual time / until `deadline`.
  void Sleep(int proc, Nanos duration);
  void SleepUntil(int proc, Nanos deadline);

  // Voluntarily gives up the remainder of the slice.
  void Yield(int proc);

  // Crash-stop support: marks every sleeping fiber ready so the dispatch
  // loop runs each one once more. The owner (Os) makes the next charge or
  // wake throw through the fiber body, unwinding its stack — the mechanism
  // by which "every fiber's stack dies" without the dispatch loop
  // deadlocking on wake events that will never fire.
  void WakeAll();

  [[nodiscard]] Nanos slice() const { return slice_; }

  // Optional trace sink: each fiber gets its own "fiber/N" track carrying
  // B/E "run" spans around every dispatch (one span per scheduling turn).
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  enum class State : std::uint8_t { kReady, kSleeping, kDone };

  struct Fiber {
    ucontext_t ctx{};
    std::unique_ptr<char[]> stack;
    std::size_t stack_size = 0;
    State state = State::kReady;
    Nanos slice_used = 0;
    // ASan bookkeeping: the fake-stack handle saved across switches away
    // from this fiber (see __sanitizer_start_switch_fiber).
    void* fake_stack = nullptr;
    // TSan bookkeeping: the __tsan_create_fiber handle announced before
    // every swapcontext into this fiber. Null outside TSan builds.
    void* tsan_fiber = nullptr;
  };

  // Entry point for every fiber (runs bodies_[current_]; never returns).
  static void Trampoline();
  void FiberMain();

  // Next ready fiber after `from` in round-robin order; -1 if none.
  [[nodiscard]] int PickNext(int from) const;

  // Transfers control main -> fiber i / fiber current_ -> main. `dying`
  // marks the fiber's final switch-out so ASan can retire its fake stack.
  void SwitchToFiber(int i);
  void SwitchToMain(bool dying);

  SimClock* clock_;
  EventQueue* events_;
  Nanos slice_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<std::uint32_t> fiber_tracks_;  // trace track id per fiber index
  std::vector<std::unique_ptr<Fiber>> fibers_;
  // Fiber stacks recycled across Run() calls: repeated process batches
  // (experiment trials, benchmark rounds) reuse warm stacks instead of
  // paying a 512 KB allocation per process per run.
  std::vector<std::unique_ptr<char[]>> stack_pool_;
  const std::vector<std::function<void(int)>>* bodies_ = nullptr;
  ucontext_t main_ctx_{};
  void* main_fake_stack_ = nullptr;
  // TSan handle of the dispatch loop's host thread, captured at Run() entry.
  void* main_tsan_fiber_ = nullptr;
  // Host-stack bounds of the dispatch loop, captured at first fiber entry.
  const void* main_stack_bottom_ = nullptr;
  std::size_t main_stack_size_ = 0;
  int current_ = -1;
  int done_count_ = 0;
  bool active_ = false;
};

}  // namespace graysim

#endif  // SRC_OS_SCHEDULER_H_
