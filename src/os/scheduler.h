// Deterministic cooperative round-robin scheduler for simulated processes.
//
// Each simulated process runs on its own host thread, but a turnstile
// guarantees that exactly one thread executes at a time: a thread only runs
// while it holds the turn, and turns are handed off at syscall-charge points,
// sleeps, and exits. Because hand-off decisions depend only on virtual time
// and a fixed round-robin order, execution is fully deterministic regardless
// of host scheduling.
//
// This gives the paper's multiprogrammed experiments (4 competing fastsorts
// under MAC, Fig 7) interleaved execution on one virtual clock.
#ifndef SRC_OS_SCHEDULER_H_
#define SRC_OS_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/clock.h"

namespace graysim {

class Scheduler {
 public:
  Scheduler(SimClock* clock, Nanos slice) : clock_(clock), slice_(slice) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Runs all bodies to completion; bodies[i] is invoked with proc index i.
  // Blocks the calling thread until every body returns.
  void Run(const std::vector<std::function<void(int)>>& bodies);

  // True while Run() is executing (i.e., charges should consider yielding).
  [[nodiscard]] bool active() const { return active_; }

  // Charges `cost` of virtual time to proc and yields if its slice expired.
  void Charge(int proc, Nanos cost);

  // Puts proc to sleep for `duration` of virtual time.
  void Sleep(int proc, Nanos duration);

  // Voluntarily gives up the remainder of the slice.
  void Yield(int proc);

  [[nodiscard]] Nanos slice() const { return slice_; }

 private:
  enum class State : std::uint8_t { kReady, kSleeping, kDone };

  struct Proc {
    State state = State::kReady;
    Nanos wake_at = 0;
    Nanos slice_used = 0;
    std::condition_variable cv;
  };

  // Picks the next runnable proc after `from` (round-robin), waking sleepers
  // whose deadline has passed and advancing the clock if everyone sleeps.
  // Returns -1 when all procs are done. Requires mu_ held.
  [[nodiscard]] int PickNextLocked(int from);

  // Hands the turn to `next` and, unless this proc is done, blocks until the
  // turn comes back. Requires lock held (released while waiting).
  void HandOffLocked(std::unique_lock<std::mutex>& lock, int me, int next);

  SimClock* clock_;
  Nanos slice_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Proc>> procs_;
  int current_ = -1;
  int done_count_ = 0;
  bool active_ = false;
  std::condition_variable all_done_cv_;
};

}  // namespace graysim

#endif  // SRC_OS_SCHEDULER_H_
