// The graysimd load-scenario DSL: pure data describing an open-loop replay.
//
// A LoadScenario is to the trace-replay service what a FaultPlan is to the
// chaos layer: a plain struct of numbers plus one seed, parseable from a
// small text format (see examples/*.scn), from which every random decision
// — arrival gaps, request-mix draws, chaos injections — derives
// deterministically. The same scenario file therefore yields a bit-identical
// latency digest on every host, on every rerun, and whether the fleet runs
// on one thread or sixteen (pinned by the `load`-labeled tests).
//
// The text format is line-based `key = value`, with `#` comments and blank
// lines ignored. The parser is strict: unknown keys, malformed numbers, and
// out-of-range values are rejected with a line-numbered error rather than
// silently defaulted — a scenario that drives a ten-minute nightly run must
// not typo its way into a different experiment.
#ifndef SRC_SERVICE_SCENARIO_H_
#define SRC_SERVICE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace grayservice {

// How request arrival instants are generated for one client stream. All
// three are open-loop: arrival times are drawn up front from the stream's
// seed and never depend on when earlier requests completed, so a slow
// server accumulates queueing delay instead of throttling its offered load.
enum class ArrivalKind : std::uint8_t {
  kFixedRate,  // evenly spaced: one arrival every 1/rate_hz seconds
  kPoisson,    // exponential gaps with mean 1/rate_hz, drawn from the seed
  kBurst,      // burst_size back-to-back arrivals every burst_size/rate_hz
};

// The request types a scenario mixes, each an existing workload bounded to
// one per-request unit (see load_service.cc::RunRequest).
enum class RequestKind : std::uint8_t {
  kFastsort,  // read phase of a small fastsort (sequential read + CPU)
  kGrep,      // full scan of the machine's grep file set
  kAging,     // one delete/create epoch in the client's aging directory
  kFilegen,   // rewrite + fsync of the client's scratch file
};
inline constexpr int kNumRequestKinds = 4;

struct LoadScenario {
  std::string name = "unnamed";
  // Fleet shape: total streams = machines * clients. Machines are standard
  // fleet-mode graysim::Machines (id 0..machines-1, root seed below), so a
  // scenario names a reproducible fleet the same way scale_fleet does.
  int machines = 8;
  int clients = 16;  // concurrent client streams (fibers) per machine
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_hz = 50.0;  // per-client mean arrival rate, in virtual time
  int burst_size = 4;     // kBurst only: arrivals per burst instant
  double duration_s = 1.0;  // virtual window during which arrivals occur
  // Relative request-mix weights, indexed by RequestKind. Zero disables a
  // kind; the sum must be positive.
  int mix[kNumRequestKinds] = {1, 4, 2, 1};
  // Chaos intensity in [0, 1], applied as FaultPlan::Interference per
  // machine (each machine derives its own decorrelated chaos seed).
  double chaos = 0.0;
  // Requests whose latency reaches this threshold emit a trace span on the
  // svc/slow track (when tracing is enabled) and count in LoadCounts::slow.
  double slow_ms = 50.0;
  // Requests slower than this count as timeouts and are excluded from
  // goodput (the request still runs to completion; an open-loop client
  // cannot cancel work the kernel already accepted).
  double timeout_ms = 500.0;
  std::uint64_t seed = 0x10AD;
  std::string profile = "linux2.2";  // linux2.2 | netbsd1.5 | solaris7

  [[nodiscard]] int total_streams() const { return machines * clients; }

  friend bool operator==(const LoadScenario&, const LoadScenario&) = default;
};

// Parses the scenario DSL. On success fills *out (fields not mentioned in
// the text keep their defaults) and returns true. On failure returns false
// with a "line N: ..." message in *error and *out untouched.
[[nodiscard]] bool ParseLoadScenario(std::string_view text, LoadScenario* out,
                                     std::string* error);

// Inverse of ParseLoadScenario: emits every field, in a fixed order, such
// that parsing the result reproduces `scenario` exactly (round-trip pinned
// by tests/load_test.cc).
[[nodiscard]] std::string FormatLoadScenario(const LoadScenario& scenario);

// Human-readable names used by the DSL and reports.
[[nodiscard]] const char* ArrivalKindName(ArrivalKind kind);
[[nodiscard]] const char* RequestKindName(RequestKind kind);

}  // namespace grayservice

#endif  // SRC_SERVICE_SCENARIO_H_
