// graysimd: the trace-replay load service over the machine fleet.
//
// This is the "millions of users" front-end the ROADMAP asks for: a
// LoadScenario (pure data, see scenario.h) is replayed as machines * clients
// concurrent open-loop request streams. Each client is a fiber on its
// machine's deterministic kernel: it draws arrival instants from its own
// seeded ArrivalProcess, sleeps in virtual time until each arrival, runs one
// bounded workload unit (fastsort read pass / grep scan / aging epoch /
// scratch-file rewrite), and records the request's latency — measured from
// the SCHEDULED arrival, so queueing delay from a backed-up stream counts,
// exactly as a web user experiences it — into the machine's MetricsRegistry
// histogram. Machines shard across host threads (the PR 6 fleet model);
// per-machine snapshots bucket-merge into fleet-wide p50/p99/p999, never
// averaged percentiles.
//
// Everything here is deterministic end to end: the same scenario file
// yields bit-identical per-machine latency digests whether the fleet runs
// threaded or sequentially, traced or untraced (tracing stays passive).
// Requests whose latency reaches scenario.slow_ms emit a Complete span on
// the per-machine "svc/slow" TraceSink track, so a reviewer can export and
// open exactly the slow tail in Perfetto.
#ifndef SRC_SERVICE_LOAD_SERVICE_H_
#define SRC_SERVICE_LOAD_SERVICE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/scenario.h"
#include "src/sim/clock.h"

namespace grayservice {

// Request-outcome tallies for one machine (or, summed, the fleet).
struct LoadCounts {
  std::uint64_t requests = 0;  // completed requests
  std::uint64_t ok = 0;        // no injected I/O error and under the timeout
  std::uint64_t errors = 0;    // >= 1 failed syscall inside the request
  std::uint64_t timeouts = 0;  // latency above scenario.timeout_ms
  std::uint64_t slow = 0;      // latency at/above scenario.slow_ms
  std::uint64_t late_starts = 0;  // arrivals that found the stream still busy

  friend bool operator==(const LoadCounts&, const LoadCounts&) = default;
};

// One machine's replay result: counts, the end-of-run virtual clock, the
// latency digest (FNV-1a over the merged histogram's raw buckets plus the
// counts — the bit-identity unit the tests and the bench's sequential
// verify pin), the full metrics snapshot, and the slow-request spans
// captured from the machine's trace ring (empty when tracing was off).
struct MachineLoadResult {
  LoadCounts counts;
  graysim::Nanos virtual_time = 0;
  std::uint64_t digest = 0;
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceEvent> slow_spans;
};

// Fleet-wide roll-up. `metrics` merges the per-machine snapshots in machine
// id order (merge is commutative, but a fixed order keeps even the
// first-seen name ordering identical between threaded and sequential runs),
// so its svc.request_latency_ns histogram is the genuine fleet-wide bucket
// merge the percentiles come from. `digest` combines the per-machine
// digests in id order.
struct FleetLoadReport {
  LoadCounts counts;
  obs::MetricsSnapshot metrics;
  std::vector<std::uint64_t> machine_digests;
  std::uint64_t digest = 0;
  graysim::Nanos fleet_virtual = 0;  // sum of per-machine end clocks
  // (machine id, slow spans) for machines that emitted any.
  std::vector<std::pair<std::uint32_t, std::vector<obs::TraceEvent>>> slow;
};

// Latency digest: FNV-1a 64 over the histogram's raw state and the counts.
[[nodiscard]] std::uint64_t LatencyDigest(const obs::Histogram& latency,
                                          const LoadCounts& counts);

// Replays `scenario`'s per-machine share on machine `machine_id`.
// trace_capacity > 0 enables the machine's TraceSink (ring of that many
// events) so slow-request spans are captured; 0 runs untraced. Tracing is
// passive, so the digest is identical either way.
[[nodiscard]] MachineLoadResult RunLoadMachine(const LoadScenario& scenario,
                                               std::uint32_t machine_id,
                                               std::size_t trace_capacity = 0);

// Replays the whole scenario, spreading machines across `threads` host
// threads (1 = sequential; machines share nothing, so any thread count
// computes bit-identical per-machine results).
[[nodiscard]] FleetLoadReport RunLoadFleet(const LoadScenario& scenario, int threads,
                                           std::size_t trace_capacity = 0);

// Writes the fleet's slow-request spans as Chrome trace_event JSON (one
// "process" per machine), loadable in Perfetto. Returns false on I/O error
// or when no spans were captured.
[[nodiscard]] bool WriteSlowTrace(const FleetLoadReport& report, const std::string& path);

}  // namespace grayservice

#endif  // SRC_SERVICE_LOAD_SERVICE_H_
