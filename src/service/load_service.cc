#include "src/service/load_service.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <thread>

#include "src/os/machine.h"
#include "src/os/os.h"
#include "src/service/arrival.h"
#include "src/sim/fault_plan.h"
#include "src/sim/rng.h"
#include "src/workloads/aging.h"
#include "src/workloads/fastsort.h"
#include "src/workloads/filegen.h"
#include "src/workloads/grep.h"

namespace grayservice {

namespace {

using graysim::Machine;
using graysim::MachineConfig;
using graysim::Nanos;
using graysim::Os;
using graysim::Pid;
using graysim::PlatformProfile;

constexpr std::uint64_t kMb = 1024ULL * 1024;

// DeriveSeed stream tags. Client streams get a disjoint tag per role so a
// client's arrival schedule, its request-mix draws, and its ager churn are
// three decorrelated streams of the one (fleet seed, machine id) identity.
constexpr std::uint64_t kChaosStream = 0x5E27ECE;
constexpr std::uint64_t kArrivalStreamBase = 0x10000000;
constexpr std::uint64_t kMixStreamBase = 0x20000000;
constexpr std::uint64_t kAgerStreamBase = 0x30000000;

// One service machine is a small host, same shape as scale_fleet's: the
// scenario's pressure comes from stream count across the fleet, not memory
// pressure within one box.
MachineConfig ServiceConfig() {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 64 * kMb;
  cfg.kernel_reserved_bytes = 16 * kMb;
  cfg.num_disks = 2;
  return cfg;
}

PlatformProfile ProfileByName(const std::string& name) {
  if (name == "netbsd1.5") {
    return PlatformProfile::NetBsd15();
  }
  if (name == "solaris7") {
    return PlatformProfile::Solaris7();
  }
  return PlatformProfile::Linux22();
}

// The machine's file population: a shared sort input and grep set, plus a
// per-client aging directory and scratch slot so concurrent clients churn
// disjoint namespaces.
void SetupLoadMachine(Machine& m, int clients, std::vector<std::string>* grep_paths) {
  Os& os = m.os();
  const Pid pid = os.default_pid();
  graywork::MakeFile(os, pid, "/d0/sort_in", 256 * 1024);
  *grep_paths = graywork::MakeFileSet(os, pid, "/d1/src", 4, 64 * 1024);
  for (int c = 0; c < clients; ++c) {
    (void)graywork::MakeFileSet(os, pid, "/d0/age" + std::to_string(c), 2, 16 * 1024);
  }
  os.FlushFileCache();
}

// Weighted draw over the scenario mix. `total` is the precomputed weight
// sum (validated positive by the parser).
RequestKind DrawKind(graysim::Rng& rng, const int (&mix)[kNumRequestKinds], int total) {
  auto pick = static_cast<int>(rng.Below(static_cast<std::uint64_t>(total)));
  for (int k = 0; k < kNumRequestKinds; ++k) {
    pick -= mix[k];
    if (pick < 0) {
      return static_cast<RequestKind>(k);
    }
  }
  return RequestKind::kGrep;
}

// One bounded request unit. Returns true when the request hit at least one
// failed syscall (chaos EIO/ENOSPC, missing file) — the workloads surface
// these as io_errors / failure returns instead of swallowing them.
bool RunRequest(Os& os, Pid pid, RequestKind kind,
                const std::vector<std::string>& grep_paths, graywork::DirectoryAger& ager,
                const std::string& scratch) {
  switch (kind) {
    case RequestKind::kFastsort: {
      graywork::FastsortOptions opt;
      opt.input = "/d0/sort_in";
      opt.record_bytes = 128;
      opt.write_runs = false;  // read phase only: no run files to age the FS
      const graywork::FastsortReport r = graywork::Fastsort(&os, pid).Run(opt);
      return r.io_errors > 0;
    }
    case RequestKind::kGrep: {
      const graywork::GrepResult r = graywork::Grep(&os, pid).Run(grep_paths);
      return r.io_errors > 0;
    }
    case RequestKind::kAging:
      return ager.RunEpoch(2) > 0;
    case RequestKind::kFilegen:
      return !graywork::MakeFile(os, pid, scratch, 32 * 1024);
  }
  return false;
}

void Accumulate(LoadCounts* into, const LoadCounts& from) {
  into->requests += from.requests;
  into->ok += from.ok;
  into->errors += from.errors;
  into->timeouts += from.timeouts;
  into->slow += from.slow;
  into->late_starts += from.late_starts;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvMix(std::uint64_t* state, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *state ^= (value >> (8 * i)) & 0xFF;
    *state *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t LatencyDigest(const obs::Histogram& latency, const LoadCounts& counts) {
  std::uint64_t digest = kFnvOffset;
  for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
    FnvMix(&digest, latency.bucket(i));
  }
  FnvMix(&digest, latency.count());
  FnvMix(&digest, latency.sum());
  FnvMix(&digest, latency.min());
  FnvMix(&digest, latency.max());
  FnvMix(&digest, counts.requests);
  FnvMix(&digest, counts.ok);
  FnvMix(&digest, counts.errors);
  FnvMix(&digest, counts.timeouts);
  FnvMix(&digest, counts.slow);
  FnvMix(&digest, counts.late_starts);
  return digest;
}

MachineLoadResult RunLoadMachine(const LoadScenario& scenario, std::uint32_t machine_id,
                                 std::size_t trace_capacity) {
  Machine m(ProfileByName(scenario.profile), ServiceConfig(), machine_id, scenario.seed);
  Os& os = m.os();
  if (trace_capacity > 0) {
    os.StartTrace(trace_capacity);
  }
  const std::uint32_t slow_track = os.trace().RegisterTrack("svc/slow");

  std::vector<std::string> grep_paths;
  SetupLoadMachine(m, scenario.clients, &grep_paths);

  if (scenario.chaos > 0.0) {
    os.ArmChaos(
        graysim::FaultPlan::Interference(scenario.chaos, m.DeriveSeed(kChaosStream)));
  }

  // Service-owned series, registered into the machine's registry so they
  // ride the standard snapshot/merge path next to the kernel's own.
  obs::Histogram latency;
  LoadCounts counts;
  m.metrics().AddHistogram("svc.request_latency_ns", "ns", &latency);
  m.metrics().AddCounter("svc.requests", &counts.requests);
  m.metrics().AddCounter("svc.ok", &counts.ok);
  m.metrics().AddCounter("svc.errors", &counts.errors);
  m.metrics().AddCounter("svc.timeouts", &counts.timeouts);
  m.metrics().AddCounter("svc.slow", &counts.slow);
  m.metrics().AddCounter("svc.late_starts", &counts.late_starts);

  const auto window_ns = static_cast<Nanos>(graysim::Seconds(scenario.duration_s));
  const auto slow_ns = static_cast<Nanos>(graysim::Millis(scenario.slow_ms));
  const auto timeout_ns = static_cast<Nanos>(graysim::Millis(scenario.timeout_ms));
  int mix_total = 0;
  for (const int w : scenario.mix) {
    mix_total += w;
  }

  // Captured BEFORE RunProcesses and shared by every client: fibers first
  // run at different Now() values (earlier fibers advance the clock), so
  // arrival instants must anchor to one common origin or the schedule —
  // and with it the digest — would depend on fiber start order.
  const Nanos window_start = os.Now();

  std::vector<std::function<void(Pid)>> bodies;
  bodies.reserve(static_cast<std::size_t>(scenario.clients));
  for (int c = 0; c < scenario.clients; ++c) {
    bodies.push_back([&, c](Pid pid) {
      const auto cc = static_cast<std::uint64_t>(c);
      ArrivalProcess arrivals(scenario, m.DeriveSeed(kArrivalStreamBase + cc));
      graysim::Rng mix_rng(m.DeriveSeed(kMixStreamBase + cc));
      graywork::DirectoryAger ager(&os, pid, "/d0/age" + std::to_string(c), 16 * 1024,
                                   m.DeriveSeed(kAgerStreamBase + cc));
      const std::string scratch = "/d0/scratch" + std::to_string(c);
      for (;;) {
        const Nanos offset = arrivals.Next();
        if (offset >= window_ns || os.crashed()) {
          break;
        }
        const Nanos scheduled = window_start + offset;
        const Nanos now = os.Now();
        if (now < scheduled) {
          os.Sleep(pid, scheduled - now);
        } else if (now > scheduled) {
          // Open loop: the stream was still serving the previous request
          // when this one arrived. It runs immediately and its latency
          // includes the queueing delay it already accumulated.
          ++counts.late_starts;
        }
        const RequestKind kind = DrawKind(mix_rng, scenario.mix, mix_total);
        const bool error = RunRequest(os, pid, kind, grep_paths, ager, scratch);
        const Nanos request_latency = os.Now() - scheduled;
        latency.Record(request_latency);
        ++counts.requests;
        if (error) {
          ++counts.errors;
        }
        if (request_latency >= slow_ns) {
          ++counts.slow;
          os.trace().Complete(slow_track, "slow_request", scheduled, request_latency,
                              "client", cc);
        }
        if (request_latency > timeout_ns) {
          ++counts.timeouts;
        } else if (!error) {
          ++counts.ok;
        }
      }
    });
  }
  m.RunProcesses(bodies);

  MachineLoadResult result;
  result.counts = counts;
  result.virtual_time = os.Now();
  result.digest = LatencyDigest(latency, counts);
  result.metrics = m.SnapshotMetrics();
  if (trace_capacity > 0) {
    std::vector<obs::TraceEvent> events;
    os.trace().Snapshot(&events);
    for (const obs::TraceEvent& e : events) {
      if (e.track == slow_track) {
        result.slow_spans.push_back(e);
      }
    }
  }
  return result;
}

FleetLoadReport RunLoadFleet(const LoadScenario& scenario, int threads,
                             std::size_t trace_capacity) {
  const int machines = scenario.machines;
  threads = std::max(1, std::min(threads, machines));

  std::vector<MachineLoadResult> results(static_cast<std::size_t>(machines));
  if (threads == 1) {
    for (int id = 0; id < machines; ++id) {
      results[static_cast<std::size_t>(id)] =
          RunLoadMachine(scenario, static_cast<std::uint32_t>(id), trace_capacity);
    }
  } else {
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int id = next.fetch_add(1, std::memory_order_relaxed); id < machines;
             id = next.fetch_add(1, std::memory_order_relaxed)) {
          results[static_cast<std::size_t>(id)] =
              RunLoadMachine(scenario, static_cast<std::uint32_t>(id), trace_capacity);
        }
      });
    }
    for (std::thread& th : pool) {
      th.join();
    }
  }

  // Roll up in machine-id order regardless of which thread ran what, so the
  // merged snapshot (and hence every derived percentile) is identical
  // between threaded and sequential runs.
  FleetLoadReport report;
  std::uint64_t digest = kFnvOffset;
  for (int id = 0; id < machines; ++id) {
    MachineLoadResult& r = results[static_cast<std::size_t>(id)];
    Accumulate(&report.counts, r.counts);
    report.metrics.Merge(r.metrics);
    report.machine_digests.push_back(r.digest);
    report.fleet_virtual += r.virtual_time;
    FnvMix(&digest, r.digest);
    if (!r.slow_spans.empty()) {
      report.slow.emplace_back(static_cast<std::uint32_t>(id), std::move(r.slow_spans));
    }
  }
  report.digest = digest;
  return report;
}

bool WriteSlowTrace(const FleetLoadReport& report, const std::string& path) {
  if (report.slow.empty()) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fputs("{\"traceEvents\":[", f);
  bool first = true;
  for (const auto& [machine_id, spans] : report.slow) {
    std::fprintf(f,
                 "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"name\":\"machine%u\"}}",
                 first ? "" : ",", machine_id, machine_id);
    first = false;
    for (const obs::TraceEvent& e : spans) {
      // Chrome trace timestamps are microseconds; keep ns precision in the
      // fraction.
      std::fprintf(f,
                   ",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":0,"
                   "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"%s\":%llu}}",
                   e.name, machine_id, static_cast<double>(e.virtual_ns) / 1000.0,
                   static_cast<double>(e.dur_ns) / 1000.0,
                   e.arg_name != nullptr ? e.arg_name : "arg",
                   static_cast<unsigned long long>(e.arg));
    }
  }
  std::fputs("]}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace grayservice
