// Open-loop arrival processes for graysimd client streams.
//
// An ArrivalProcess turns (scenario, one stream seed) into a monotone
// sequence of virtual arrival offsets. The sequence is a pure function of
// its inputs: it consumes only its own Rng stream and never looks at the
// clock or at request completions, which is what makes the replay open-loop
// (a slow server sees requests pile up, not back off) and bit-identical
// across reruns and thread counts. Per *The Computer System Trail*, this is
// the property a serving-system benchmark must not lose: a closed loop
// self-throttles and hides exactly the tail the p99 is supposed to expose.
#ifndef SRC_SERVICE_ARRIVAL_H_
#define SRC_SERVICE_ARRIVAL_H_

#include <cmath>
#include <cstdint>

#include "src/service/scenario.h"
#include "src/sim/clock.h"
#include "src/sim/rng.h"

namespace grayservice {

class ArrivalProcess {
 public:
  ArrivalProcess(const LoadScenario& scenario, std::uint64_t stream_seed)
      : kind_(scenario.arrival),
        period_ns_(PeriodNs(scenario.rate_hz)),
        burst_size_(scenario.burst_size),
        rng_(stream_seed) {
    if (kind_ == ArrivalKind::kBurst) {
      // Each stream's burst train starts at a seed-drawn phase inside one
      // full burst interval. Without the phase every client in the fleet
      // would slam the identical instants — a synchronized thundering herd
      // that collapses any queue regardless of the configured mean rate.
      // Fixed-rate deliberately stays lockstep (the synchronized worst
      // case is sometimes exactly what an experiment wants).
      next_ = static_cast<graysim::Nanos>(rng_.Below(
          static_cast<std::uint64_t>(period_ns_) *
          static_cast<std::uint64_t>(burst_size_)));
    }
  }

  // Next arrival offset from the window start. Non-decreasing; successive
  // calls walk the stream's whole schedule (the caller stops at the
  // scenario's duration). Burst arrivals share one instant — burst_size
  // requests land together every burst_size * period (from the stream's
  // phase), preserving the configured mean rate.
  graysim::Nanos Next() {
    switch (kind_) {
      case ArrivalKind::kFixedRate:
        next_ += period_ns_;
        return next_;
      case ArrivalKind::kPoisson: {
        // Exponential gap with mean `period`: -ln(1 - U), U uniform in
        // [0, 1) so the argument stays in (0, 1]. Clamped to >= 1 ns so the
        // sequence is strictly increasing (equal-instant arrivals are the
        // burst process's job, not noise in this one).
        const double u = rng_.NextDouble();
        const double gap = -std::log(1.0 - u) * static_cast<double>(period_ns_);
        next_ += gap < 1.0 ? 1 : static_cast<graysim::Nanos>(gap);
        return next_;
      }
      case ArrivalKind::kBurst: {
        const graysim::Nanos at = next_;
        if (++burst_pos_ == burst_size_) {
          burst_pos_ = 0;
          next_ += period_ns_ * static_cast<graysim::Nanos>(burst_size_);
        }
        return at;
      }
    }
    return next_;
  }

 private:
  [[nodiscard]] static graysim::Nanos PeriodNs(double rate_hz) {
    const double p = 1e9 / rate_hz;
    return p < 1.0 ? 1 : static_cast<graysim::Nanos>(p);
  }

  ArrivalKind kind_;
  graysim::Nanos period_ns_;
  int burst_size_;
  graysim::Rng rng_;
  graysim::Nanos next_ = 0;
  int burst_pos_ = 0;
};

}  // namespace grayservice

#endif  // SRC_SERVICE_ARRIVAL_H_
