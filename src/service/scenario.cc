#include "src/service/scenario.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace grayservice {

namespace {

// Strips leading/trailing spaces and tabs.
std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view value, double* out) {
  const std::string buf(value);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || buf.empty()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseInt(std::string_view value, int* out) {
  const std::string buf(value);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size() || buf.empty() ||
      v < static_cast<long>(INT_MIN) || v > static_cast<long>(INT_MAX)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// Base 0: accepts decimal and 0x-prefixed hex (seeds read naturally either
// way, and FormatLoadScenario emits hex).
bool ParseU64(std::string_view value, std::uint64_t* out) {
  const std::string buf(value);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
  if (errno != 0 || end != buf.c_str() + buf.size() || buf.empty()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseArrival(std::string_view value, ArrivalKind* out) {
  if (value == "fixed") {
    *out = ArrivalKind::kFixedRate;
  } else if (value == "poisson") {
    *out = ArrivalKind::kPoisson;
  } else if (value == "burst") {
    *out = ArrivalKind::kBurst;
  } else {
    return false;
  }
  return true;
}

// "fastsort:1 grep:4 aging:2 filegen:1" — any subset, unlisted kinds get
// weight 0. Every token must be <kind>:<non-negative int>.
bool ParseMix(std::string_view value, int (*mix)[kNumRequestKinds],
              std::string* why) {
  int parsed[kNumRequestKinds] = {};
  std::size_t pos = 0;
  bool any = false;
  while (pos < value.size()) {
    while (pos < value.size() && (value[pos] == ' ' || value[pos] == '\t')) {
      ++pos;
    }
    if (pos >= value.size()) {
      break;
    }
    std::size_t end = pos;
    while (end < value.size() && value[end] != ' ' && value[end] != '\t') {
      ++end;
    }
    const std::string_view token = value.substr(pos, end - pos);
    pos = end;
    const std::size_t colon = token.find(':');
    if (colon == std::string_view::npos) {
      *why = "mix token '" + std::string(token) + "' is not <kind>:<weight>";
      return false;
    }
    const std::string_view kind = token.substr(0, colon);
    int weight = 0;
    if (!ParseInt(token.substr(colon + 1), &weight) || weight < 0) {
      *why = "mix weight in '" + std::string(token) + "' is not a non-negative integer";
      return false;
    }
    int index = -1;
    for (int k = 0; k < kNumRequestKinds; ++k) {
      if (kind == RequestKindName(static_cast<RequestKind>(k))) {
        index = k;
      }
    }
    if (index < 0) {
      *why = "unknown request kind '" + std::string(kind) + "'";
      return false;
    }
    parsed[index] = weight;
    any = true;
  }
  if (!any) {
    *why = "mix is empty";
    return false;
  }
  for (int k = 0; k < kNumRequestKinds; ++k) {
    (*mix)[k] = parsed[k];
  }
  return true;
}

// Post-parse sanity: rejects shapes that cannot run rather than letting a
// typo'd scenario execute as a different experiment.
bool Validate(const LoadScenario& s, std::string* error) {
  const auto fail = [error](const std::string& why) {
    *error = "scenario: " + why;
    return false;
  };
  if (s.machines <= 0) {
    return fail("machines must be positive");
  }
  if (s.clients <= 0) {
    return fail("clients must be positive");
  }
  if (!(s.rate_hz > 0.0)) {
    return fail("rate_hz must be positive");
  }
  if (s.burst_size <= 0) {
    return fail("burst_size must be positive");
  }
  if (!(s.duration_s > 0.0)) {
    return fail("duration_s must be positive");
  }
  if (s.chaos < 0.0 || s.chaos > 1.0) {
    return fail("chaos must be in [0, 1]");
  }
  if (!(s.slow_ms > 0.0)) {
    return fail("slow_ms must be positive");
  }
  if (!(s.timeout_ms > 0.0)) {
    return fail("timeout_ms must be positive");
  }
  int mix_total = 0;
  for (const int w : s.mix) {
    mix_total += w;
  }
  if (mix_total <= 0) {
    return fail("mix weights sum to zero");
  }
  if (s.profile != "linux2.2" && s.profile != "netbsd1.5" && s.profile != "solaris7") {
    return fail("unknown profile '" + s.profile + "'");
  }
  return true;
}

}  // namespace

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kFixedRate:
      return "fixed";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBurst:
      return "burst";
  }
  return "?";
}

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kFastsort:
      return "fastsort";
    case RequestKind::kGrep:
      return "grep";
    case RequestKind::kAging:
      return "aging";
    case RequestKind::kFilegen:
      return "filegen";
  }
  return "?";
}

bool ParseLoadScenario(std::string_view text, LoadScenario* out, std::string* error) {
  LoadScenario s;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    const auto fail = [&](const std::string& why) {
      *error = "line " + std::to_string(line_no) + ": " + why;
      return false;
    };
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected key = value");
    }
    const std::string_view key = Trim(line.substr(0, eq));
    const std::string_view value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return fail("expected key = value");
    }
    const auto bad_value = [&] {
      return fail("bad value '" + std::string(value) + "' for key '" + std::string(key) +
                  "'");
    };
    if (key == "name") {
      s.name = std::string(value);
    } else if (key == "machines") {
      if (!ParseInt(value, &s.machines)) {
        return bad_value();
      }
    } else if (key == "clients") {
      if (!ParseInt(value, &s.clients)) {
        return bad_value();
      }
    } else if (key == "arrival") {
      if (!ParseArrival(value, &s.arrival)) {
        return bad_value();
      }
    } else if (key == "rate_hz") {
      if (!ParseDouble(value, &s.rate_hz)) {
        return bad_value();
      }
    } else if (key == "burst_size") {
      if (!ParseInt(value, &s.burst_size)) {
        return bad_value();
      }
    } else if (key == "duration_s") {
      if (!ParseDouble(value, &s.duration_s)) {
        return bad_value();
      }
    } else if (key == "mix") {
      std::string why;
      if (!ParseMix(value, &s.mix, &why)) {
        return fail(why);
      }
    } else if (key == "chaos") {
      if (!ParseDouble(value, &s.chaos)) {
        return bad_value();
      }
    } else if (key == "slow_ms") {
      if (!ParseDouble(value, &s.slow_ms)) {
        return bad_value();
      }
    } else if (key == "timeout_ms") {
      if (!ParseDouble(value, &s.timeout_ms)) {
        return bad_value();
      }
    } else if (key == "seed") {
      if (!ParseU64(value, &s.seed)) {
        return bad_value();
      }
    } else if (key == "profile") {
      s.profile = std::string(value);
    } else {
      return fail("unknown key '" + std::string(key) + "'");
    }
  }
  if (!Validate(s, error)) {
    return false;
  }
  *out = std::move(s);
  return true;
}

std::string FormatLoadScenario(const LoadScenario& s) {
  char buf[256];
  std::string out;
  out += "# graysimd load scenario (see src/service/scenario.h)\n";
  out += "name = " + s.name + "\n";
  out += "machines = " + std::to_string(s.machines) + "\n";
  out += "clients = " + std::to_string(s.clients) + "\n";
  out += std::string("arrival = ") + ArrivalKindName(s.arrival) + "\n";
  // %.17g survives a text round-trip bit-exactly for any double.
  std::snprintf(buf, sizeof(buf), "rate_hz = %.17g\n", s.rate_hz);
  out += buf;
  out += "burst_size = " + std::to_string(s.burst_size) + "\n";
  std::snprintf(buf, sizeof(buf), "duration_s = %.17g\n", s.duration_s);
  out += buf;
  out += "mix =";
  for (int k = 0; k < kNumRequestKinds; ++k) {
    out += std::string(" ") + RequestKindName(static_cast<RequestKind>(k)) + ":" +
           std::to_string(s.mix[k]);
  }
  out += "\n";
  std::snprintf(buf, sizeof(buf), "chaos = %.17g\n", s.chaos);
  out += buf;
  std::snprintf(buf, sizeof(buf), "slow_ms = %.17g\n", s.slow_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), "timeout_ms = %.17g\n", s.timeout_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), "seed = 0x%llx\n",
                static_cast<unsigned long long>(s.seed));
  out += buf;
  out += "profile = " + s.profile + "\n";
  return out;
}

}  // namespace grayservice
