// Pure-data description of the simulated network link (FaultPlan style).
//
// A NetSchedule is plain numbers plus one seed: propagation latency,
// serialization bandwidth, loss/reorder probabilities, and an optional
// bounded router queue with RED early drop. The NetDevice draws every random
// decision from a dedicated RNG stream seeded here, so a schedule replays
// bit-identically — same drops, same reorders — run after run, and the
// kernel's own jitter/tie-break streams are never perturbed. Machine-derived
// configs overwrite `seed` per machine id so fleet runs stay decorrelated.
#ifndef SRC_NET_NET_SCHEDULE_H_
#define SRC_NET_NET_SCHEDULE_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace graysim {

struct NetSchedule {
  // One-way propagation delay, charged after the link finishes serializing
  // the message. Round trip for a ping-pong pair is therefore
  // 2*(serialize + latency) plus endpoint processing.
  Nanos latency = Micros(50.0);
  // Link serialization rate. Default ~100 Mbit/s: big enough that small
  // control messages are latency-dominated, small enough that bulk
  // transfers queue visibly.
  double bytes_per_sec = 12.5e6;
  // Fixed per-message controller overhead (interrupt coalescing, DMA
  // setup), charged as part of serialization.
  Nanos send_overhead = Micros(5.0);

  // Random per-message loss (the "wireless" knob from the paper's TCP
  // study: loss that is NOT congestion, which a congestion-inferring ICL
  // must distinguish from router drops).
  double drop_prob = 0.0;
  // Random per-message reordering: a reordered message is delayed an extra
  // `reorder_delay`, so it arrives behind messages sent after it.
  double reorder_prob = 0.0;
  Nanos reorder_delay = Micros(200.0);

  // Bounded router queue, measured in messages in flight on the link.
  // 0 = unbounded (no congestion drops). When bounded, a message arriving
  // to a full queue is tail-dropped — the congestion signal TCP infers.
  std::uint64_t queue_capacity = 0;
  // RED early drop: between min and max occupancy fractions the drop
  // probability ramps linearly from 0 to red_max_prob; above max the
  // message is always dropped. Off by default.
  bool red = false;
  double red_min_fraction = 0.25;
  double red_max_fraction = 0.75;
  double red_max_prob = 0.1;

  // How long a blocked NetRecv sleeps between inbox checks when no arrival
  // time is known yet (e.g. the peer has not sent). Bounds the busy-wait.
  Nanos recv_poll = Micros(100.0);

  // Seed of the dedicated net RNG stream (loss/reorder draws). Rewritten by
  // Machine::DeriveConfig from (root seed, machine id).
  std::uint64_t seed = 0x7e77;

  friend bool operator==(const NetSchedule&, const NetSchedule&) = default;
};

}  // namespace graysim

#endif  // SRC_NET_NET_SCHEDULE_H_
