#include "src/net/net_device.h"

#include <algorithm>
#include <cassert>

namespace graysim {

NetDevice::NetDevice(const NetSchedule& schedule, SimClock* clock, EventQueue* events)
    : schedule_(schedule),
      clock_(clock),
      events_(events),
      link_(this, clock, events),
      rng_(schedule.seed) {
  // Back-to-back messages never merge on a wire, and both directions are
  // the same serialization operation.
  link_.set_coalescing(false);
  link_.set_op_names("xmit", "xmit");
  link_.set_snapshot_dev(-1);  // -1 = the net link in event descriptors
}

int NetDevice::CreateEndpoint() {
  endpoints_.emplace_back();
  return static_cast<int>(endpoints_.size()) - 1;
}

Nanos NetDevice::Service(std::uint64_t /*offset*/, std::uint64_t bytes, bool /*is_write*/,
                         bool /*coalesce*/) {
  const double wire = static_cast<double>(bytes) * kSecond / schedule_.bytes_per_sec;
  return schedule_.send_overhead + static_cast<Nanos>(wire);
}

Nanos NetDevice::Send(int from, int to, std::uint64_t bytes, std::uint64_t tag) {
  assert(from >= 0 && from < num_endpoints());
  assert(to >= 0 && to < num_endpoints());
  ++sent_;
  // Fixed draw order per Send, regardless of outcome: the loss, RED, and
  // reorder uniforms are always consumed so one dropped message never
  // shifts every later decision (bit-identical replay under sweeps).
  const double u_loss = rng_.NextDouble();
  const double u_red = rng_.NextDouble();
  const double u_reorder = rng_.NextDouble();

  const NetMessage msg{from, bytes, tag, next_seq_++, clock_->now()};

  const char* drop_reason = nullptr;
  if (u_loss < schedule_.drop_prob) {
    ++loss_drops_;
    drop_reason = "net.loss";
  } else if (schedule_.queue_capacity > 0) {
    const std::uint64_t depth = link_.depth();
    if (depth >= schedule_.queue_capacity) {
      ++congestion_drops_;
      drop_reason = "net.tail_drop";
    } else if (schedule_.red) {
      const double frac = static_cast<double>(depth) /
                          static_cast<double>(schedule_.queue_capacity);
      if (frac > schedule_.red_max_fraction) {
        ++red_drops_;
        drop_reason = "net.red_drop";
      } else if (frac > schedule_.red_min_fraction) {
        const double ramp = (frac - schedule_.red_min_fraction) /
                            (schedule_.red_max_fraction - schedule_.red_min_fraction);
        if (u_red < ramp * schedule_.red_max_prob) {
          ++red_drops_;
          drop_reason = "net.red_drop";
        }
      }
    }
  }
  if (drop_reason == nullptr && drop_hook_ && drop_hook_()) {
    ++chaos_drops_;
    drop_reason = "net.chaos_drop";
  }
  if (drop_reason != nullptr) {
    if (trace_ != nullptr) {
      trace_->Instant(track_, drop_reason, clock_->now(), "seq", msg.seq);
    }
    return 0;
  }

  // Serialize through the link, then fly for the propagation latency
  // (chaos may stretch it), plus the reorder penalty when drawn.
  const Nanos serialized = link_.Submit(msg.seq, bytes, true, nullptr);
  double scale = 1.0;
  if (delay_scale_) {
    scale = delay_scale_(clock_->now());
  }
  Nanos arrival = serialized + static_cast<Nanos>(static_cast<double>(schedule_.latency) * scale);
  if (u_reorder < schedule_.reorder_prob) {
    ++reordered_;
    arrival += schedule_.reorder_delay;
  }

  endpoints_[static_cast<std::size_t>(to)].in_flight.push_back(arrival);
  EventDesc desc;
  desc.kind = static_cast<std::uint32_t>(EventKind::kNetDeliver);
  desc.dev = to;
  desc.arg = {arrival, static_cast<std::uint64_t>(msg.from), msg.bytes,
              msg.tag, msg.seq,  msg.sent_at};
  events_->ScheduleAt(arrival, EventQueue::Band::kCompletion, RebuildDeliver(to, msg, arrival),
                      desc);
  return arrival;
}

void NetDevice::Deliver(int to, const NetMessage& msg, Nanos arrival) {
  Endpoint& ep = endpoints_[static_cast<std::size_t>(to)];
  auto it = std::find(ep.in_flight.begin(), ep.in_flight.end(), arrival);
  if (it != ep.in_flight.end()) {
    // Swap-and-pop: in_flight is unordered by design.
    *it = ep.in_flight.back();
    ep.in_flight.pop_back();
  }
  ep.inbox.push_back(msg);
  ++delivered_;
  delivery_hist_.Record(arrival - msg.sent_at);
  if (trace_ != nullptr) {
    trace_->Instant(track_, "net.deliver", clock_->now(), "seq", msg.seq);
  }
}

bool NetDevice::Recv(int endpoint, NetMessage* out) {
  Endpoint& ep = endpoints_[static_cast<std::size_t>(endpoint)];
  if (ep.inbox.empty()) {
    return false;
  }
  *out = ep.inbox.front();
  ep.inbox.pop_front();
  return true;
}

NetDevice::State NetDevice::CaptureState() const {
  State s;
  s.link = link_.CaptureState();
  s.rng = rng_.state();
  s.endpoints = endpoints_;
  s.delivery_hist = delivery_hist_;
  s.next_seq = next_seq_;
  s.sent = sent_;
  s.delivered = delivered_;
  s.loss_drops = loss_drops_;
  s.congestion_drops = congestion_drops_;
  s.red_drops = red_drops_;
  s.chaos_drops = chaos_drops_;
  s.reordered = reordered_;
  return s;
}

void NetDevice::RestoreState(const State& s) {
  link_.RestoreState(s.link);
  rng_.set_state(s.rng);
  endpoints_ = s.endpoints;
  delivery_hist_ = s.delivery_hist;
  next_seq_ = s.next_seq;
  sent_ = s.sent;
  delivered_ = s.delivered;
  loss_drops_ = s.loss_drops;
  congestion_drops_ = s.congestion_drops;
  red_drops_ = s.red_drops;
  chaos_drops_ = s.chaos_drops;
  reordered_ = s.reordered;
}

void NetDevice::CrashReset(Nanos now) {
  for (Endpoint& ep : endpoints_) {
    ep.inbox.clear();
    ep.in_flight.clear();
    ep.closed = true;
  }
  link_.CrashReset(now);
}

Nanos NetDevice::EarliestArrival(int endpoint) const {
  const Endpoint& ep = endpoints_[static_cast<std::size_t>(endpoint)];
  Nanos earliest = EventQueue::kNever;
  for (const Nanos t : ep.in_flight) {
    earliest = std::min(earliest, t);
  }
  return earliest;
}

}  // namespace graysim
