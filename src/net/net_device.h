// Simulated network link: SimDevice serialization + latency/loss/reorder.
//
// One NetDevice models one shared link (think: the machine's NIC plus the
// first-hop router). Messages between endpoints serialize through a
// SimDevice in FCFS order — that busy-timeline queueing is what a
// congestion-inferring ICL observes — then spend a propagation latency in
// flight before landing in the destination endpoint's inbox. Loss comes
// from three places, each visible in its own counter: random per-message
// drops (the "wireless" knob), tail drops when the bounded router queue is
// full, and RED early drops as the queue fills. All randomness comes from
// one dedicated RNG stream (NetSchedule::seed), drawn in a fixed order per
// Send regardless of outcome, so runs replay bit-identically and the
// kernel's jitter/tie streams never shift.
//
// Blocking lives in the Os (NetRecv sleeps on the scheduler); NetDevice
// itself is non-blocking and synchronous with the event queue.
#ifndef SRC_NET_NET_DEVICE_H_
#define SRC_NET_NET_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/net/net_schedule.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_device.h"

namespace graysim {

// One delivered message, as seen by the receiver.
struct NetMessage {
  std::int32_t from = -1;     // sender endpoint id
  std::uint64_t bytes = 0;    // payload size
  std::uint64_t tag = 0;      // opaque application tag (seq/ack number)
  std::uint64_t seq = 0;      // device-global send sequence number
  Nanos sent_at = 0;          // virtual time the send was submitted
};

class NetDevice : private SimDevice::ServiceModel {
 public:
  // Chaos hooks, installed by the Os while a FaultPlan is armed. The drop
  // hook draws from the chaos stream and returns true to swallow the
  // message; the delay scale multiplies propagation latency (square-wave
  // congestion windows). Both are null when chaos is off.
  using DropHook = std::function<bool()>;
  using DelayScale = std::function<double(Nanos)>;

  struct Endpoint {
    std::deque<NetMessage> inbox;
    std::vector<Nanos> in_flight;  // scheduled arrival times, unsorted
    // Set by CrashReset: the endpoint died with the machine. A receiver
    // blocked on (or later handed) a closed endpoint fails ECONNRESET-style
    // instead of waiting for traffic that can never arrive.
    bool closed = false;
  };

  NetDevice(const NetSchedule& schedule, SimClock* clock, EventQueue* events);

  NetDevice(const NetDevice&) = delete;
  NetDevice& operator=(const NetDevice&) = delete;

  // Endpoints are small integer handles; the Os hands them to processes.
  int CreateEndpoint();
  [[nodiscard]] int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  // Submits a message. Returns the scheduled delivery time, or 0 when the
  // message was dropped (loss is silent to the sender, as on a real
  // datagram socket — inferring *why* is the ICLs' job).
  Nanos Send(int from, int to, std::uint64_t bytes, std::uint64_t tag);

  // Pops the oldest delivered message; false when the inbox is empty.
  bool Recv(int endpoint, NetMessage* out);

  [[nodiscard]] bool Closed(int endpoint) const {
    return endpoints_[static_cast<std::size_t>(endpoint)].closed;
  }

  // Crash-stop teardown: every endpoint's volatile state dies — queued
  // inbox messages, in-flight arrival bookkeeping (the delivery events
  // themselves were discarded wholesale) — and the endpoint is marked
  // closed. The link device's queue collapses alongside. Counters survive:
  // they are observability, and a restarted run keeps accumulating.
  void CrashReset(Nanos now);

  // Delivered-and-unread messages waiting at `endpoint`.
  [[nodiscard]] std::uint64_t Pending(int endpoint) const {
    return endpoints_[static_cast<std::size_t>(endpoint)].inbox.size();
  }

  // Earliest known arrival time of an in-flight message headed to
  // `endpoint`; EventQueue::kNever when nothing is in flight. The Os uses
  // this to sleep a blocked NetRecv precisely instead of polling.
  [[nodiscard]] Nanos EarliestArrival(int endpoint) const;

  // --- counters (cumulative) ---
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return loss_drops_ + congestion_drops_ + red_drops_ + chaos_drops_;
  }
  [[nodiscard]] std::uint64_t loss_drops() const { return loss_drops_; }
  [[nodiscard]] std::uint64_t congestion_drops() const { return congestion_drops_; }
  [[nodiscard]] std::uint64_t red_drops() const { return red_drops_; }
  [[nodiscard]] std::uint64_t chaos_drops() const { return chaos_drops_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }

  // Send-to-delivery times (ns) of delivered messages. Alloc-free.
  [[nodiscard]] const obs::Histogram& delivery_hist() const { return delivery_hist_; }

  // The underlying link queue (busy timeline, depth, service histogram).
  [[nodiscard]] const SimDevice& link() const { return link_; }
  // Mutable access for snapshot restore: a captured link completion event
  // (kDeviceCompletion, dev == -1) is rebuilt against this device.
  [[nodiscard]] SimDevice& link_mutable() { return link_; }

  void set_trace(obs::TraceSink* trace, std::uint32_t track) {
    trace_ = trace;
    track_ = track;
    link_.set_trace(trace, track);
  }

  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }
  void set_delay_scale(DelayScale scale) { delay_scale_ = std::move(scale); }

  [[nodiscard]] const NetSchedule& schedule() const { return schedule_; }

  // --- Snapshot surface ----------------------------------------------
  // Everything simulation-visible as pure data: the link-device timeline,
  // the mid-sequence RNG (the fixed three-draw-per-Send order means a
  // reseeded stream would re-decide every later loss/RED/reorder), inboxes
  // and in-flight arrival times, and the counters. In-flight deliveries
  // themselves live in the event image as kNetDeliver descriptors —
  // RestoreState must therefore never re-push in_flight entries (the copied
  // endpoints already hold them).
  struct State {
    SimDevice::State link;
    Rng::State rng;
    std::vector<Endpoint> endpoints;
    obs::Histogram delivery_hist;
    std::uint64_t next_seq = 1;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t loss_drops = 0;
    std::uint64_t congestion_drops = 0;
    std::uint64_t red_drops = 0;
    std::uint64_t chaos_drops = 0;
    std::uint64_t reordered = 0;
  };

  [[nodiscard]] State CaptureState() const;
  void RestoreState(const State& s);

  // Rebuilds a captured in-flight delivery event bound to this device.
  [[nodiscard]] EventFn RebuildDeliver(int to, const NetMessage& msg, Nanos arrival) {
    return EventFn([this, to, msg, arrival]() { Deliver(to, msg, arrival); });
  }

 private:
  // Link physics: every message pays controller overhead plus wire time.
  // Coalescing is off — back-to-back messages don't merge on a link.
  [[nodiscard]] Nanos Service(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                              bool coalesce) override;

  void Deliver(int to, const NetMessage& msg, Nanos arrival);

  NetSchedule schedule_;
  SimClock* clock_;
  EventQueue* events_;
  SimDevice link_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t track_ = 0;
  DropHook drop_hook_;
  DelayScale delay_scale_;
  obs::Histogram delivery_hist_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t loss_drops_ = 0;
  std::uint64_t congestion_drops_ = 0;
  std::uint64_t red_drops_ = 0;
  std::uint64_t chaos_drops_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace graysim

#endif  // SRC_NET_NET_DEVICE_H_
