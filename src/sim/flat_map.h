// Open-addressed hash map from packed 64-bit keys, for the simulation's
// page-state tables.
//
// One cache line of linear probing replaces the node allocation plus pointer
// chase of std::unordered_map on every page lookup/insert/erase — the
// operations the page cache, the VM page tables, and the in-flight read map
// perform millions of times per simulated second. Erase uses backward-shift
// deletion (no tombstones), so probe sequences stay short regardless of
// churn, and steady-state operation performs zero heap allocations (growth
// is amortized doubling, eliminable entirely via Reserve).
//
// Keys are arbitrary 64-bit values except kEmptyKey (all ones), which no
// producer generates: page keys pack a 32-bit tagged inum over a 32-bit page
// index, virtual page numbers count up from 1, and ids count up from 0.
#ifndef SRC_SIM_FLAT_MAP_H_
#define SRC_SIM_FLAT_MAP_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace graysim {

template <typename V>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  // Heap footprint of the slot array (snapshot-size accounting).
  [[nodiscard]] std::size_t capacity_bytes() const { return slots_.size() * sizeof(Slot); }

  // Pre-sizes the table for `n` entries so no insert up to that count ever
  // rehashes (the zero-allocation steady state). Sized to keep the load
  // factor at or under 1/2: reserved maps sit on the miss-heavy
  // insert/erase path (page-cache evict cycles probe the table three times
  // per recycled page), and linear probing with backward-shift deletion
  // degrades quickly past half full.
  void Reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap < n * 2) {
      cap *= 2;
    }
    if (cap > slots_.size()) {
      Rehash(cap);
    }
  }

  [[nodiscard]] V* Find(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (slots_.empty()) {
      return nullptr;
    }
    std::size_t i = Hash(key) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) {
        return &s.value;
      }
      if (s.key == kEmptyKey) {
        return nullptr;
      }
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] const V* Find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  [[nodiscard]] bool Contains(std::uint64_t key) const { return Find(key) != nullptr; }

  // Returns the value for `key`, default-constructing it if absent.
  V& operator[](std::uint64_t key) {
    assert(key != kEmptyKey);
    MaybeGrow();
    std::size_t i = Hash(key) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) {
        return s.value;
      }
      if (s.key == kEmptyKey) {
        s.key = key;
        s.value = V{};
        ++size_;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  // Inserts (key -> value); overwrites an existing entry.
  void Put(std::uint64_t key, V value) { (*this)[key] = std::move(value); }

  // Removes `key`; returns false when absent.
  bool Erase(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (slots_.empty()) {
      return false;
    }
    std::size_t i = Hash(key) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) {
        EraseAt(i);
        return true;
      }
      if (s.key == kEmptyKey) {
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

  // Calls fn(key, value&) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != kEmptyKey) {
        fn(s.key, s.value);
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) {
        fn(s.key, s.value);
      }
    }
  }

  // Erases every entry for which pred(key, value&) returns true. Because
  // backward-shift deletion can cyclically re-home surviving entries, pred
  // may be evaluated more than once for an entry it declines — it must be a
  // pure predicate over (key, value).
  template <typename Pred>
  void EraseIf(Pred&& pred) {
    for (std::size_t i = 0; i < slots_.size();) {
      Slot& s = slots_[i];
      if (s.key != kEmptyKey && pred(s.key, s.value)) {
        EraseAt(i);  // re-examine slot i: deletion may shift an entry into it
      } else {
        ++i;
      }
    }
  }

  void Clear() {
    for (Slot& s : slots_) {
      s.key = kEmptyKey;
      s.value = V{};
    }
    size_ = 0;
  }

  // --- checkpoint surface -------------------------------------------------
  // A durable checkpoint stores the raw slot array, not a logical set of
  // entries: ForEach order is layout order, layout depends on insertion
  // history, and a map rebuilt by reinsertion could legally iterate in a
  // different order — enough to diverge a bit-identical replay.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t slot_key(std::size_t i) const { return slots_[i].key; }
  [[nodiscard]] const V& slot_value(std::size_t i) const { return slots_[i].value; }

  // Resets to an empty table of exactly `capacity` slots (0, or a power of
  // two >= kMinCapacity); follow with RestoreRawSlot for each live slot.
  void RestoreRawLayout(std::size_t capacity) {
    assert(capacity == 0 ||
           (capacity >= kMinCapacity && (capacity & (capacity - 1)) == 0));
    slots_.assign(capacity, Slot{});
    mask_ = capacity == 0 ? 0 : capacity - 1;
    size_ = 0;
  }

  void RestoreRawSlot(std::size_t i, std::uint64_t key, V value) {
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    if (key != kEmptyKey) {
      ++size_;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  static constexpr std::size_t kMinCapacity = 16;

  // splitmix64 finalizer: full-avalanche mix of the packed key.
  [[nodiscard]] static std::size_t Hash(std::uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {  // load factor 3/4
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) {
        continue;
      }
      std::size_t i = Hash(s.key) & mask_;
      while (slots_[i].key != kEmptyKey) {
        i = (i + 1) & mask_;
      }
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  // Backward-shift deletion: close the hole at `i` by walking the probe
  // chain and pulling back any entry whose ideal slot lies at or before the
  // hole, preserving lookup invariants without tombstones.
  void EraseAt(std::size_t i) {
    --size_;
    std::size_t j = i;
    while (true) {
      slots_[i].key = kEmptyKey;
      slots_[i].value = V{};
      while (true) {
        j = (j + 1) & mask_;
        if (slots_[j].key == kEmptyKey) {
          return;
        }
        // If the entry's ideal position lies cyclically within (i, j], it
        // already sits at or after its home and must not move back past it.
        const std::size_t ideal = Hash(slots_[j].key) & mask_;
        const bool reachable =
            i <= j ? (ideal > i && ideal <= j) : (ideal > i || ideal <= j);
        if (!reachable) {
          break;
        }
      }
      slots_[i].key = slots_[j].key;
      slots_[i].value = std::move(slots_[j].value);
      i = j;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace graysim

#endif  // SRC_SIM_FLAT_MAP_H_
