// Virtual-time clock for the graysim simulated machine.
//
// All activity in the simulated OS is accounted in virtual nanoseconds on a
// single monotonically increasing clock. The clock is the covert channel the
// gray-box ICLs observe: it plays the role that rdtsc/gettimeofday play on a
// real machine.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>

namespace graysim {

// Virtual nanoseconds since machine boot.
using Nanos = std::uint64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

constexpr Nanos Micros(double us) { return static_cast<Nanos>(us * kMicrosecond); }
constexpr Nanos Millis(double ms) { return static_cast<Nanos>(ms * kMillisecond); }
constexpr Nanos Seconds(double s) { return static_cast<Nanos>(s * kSecond); }

constexpr double ToSeconds(Nanos t) { return static_cast<double>(t) / kSecond; }
constexpr double ToMillis(Nanos t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToMicros(Nanos t) { return static_cast<double>(t) / kMicrosecond; }

// Monotonic virtual clock. Only ever advances.
class SimClock {
 public:
  SimClock() = default;

  [[nodiscard]] Nanos now() const { return now_; }

  void Advance(Nanos delta) { now_ += delta; }

  void AdvanceTo(Nanos t) {
    assert(t >= now_);
    now_ = t;
  }

 private:
  Nanos now_ = 0;
};

}  // namespace graysim

#endif  // SRC_SIM_CLOCK_H_
