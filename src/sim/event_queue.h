// Deterministic discrete-event queue: the heart of the simulation kernel.
//
// Events are closures scheduled at a virtual time. Execution order is a
// total order on (virtual_time, band, tie, seq): the band separates device
// completions from process wake-ups at the same instant (completions first,
// so a process waking at its I/O completion time observes the completion's
// effects), `tie` is a seeded RNG draw taken at scheduling time (seeded
// tie-breaking keeps same-band, same-time ordering independent of heap
// internals yet fully reproducible), and `seq` is a monotonic id that makes
// the order total even on tie collisions.
//
// Single-threaded by design: closures run inline from RunDue on whichever
// (fiber) stack called it, and may schedule further events while running.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/inline_fn.h"
#include "src/sim/rng.h"

namespace graysim {

// Event closures are stored inline in the heap (no per-event heap
// allocation). 88 bytes fits the largest kernel closure — a disk completion
// wrapper carrying a nested CompletionFn — with headroom for new captures.
using EventFn = InlineFn<88>;

class EventQueue {
 public:
  using EventId = std::uint64_t;
  static constexpr Nanos kNever = ~Nanos{0};

  enum class Band : std::uint8_t {
    kCompletion = 0,  // device completions, daemon work
    kWake = 1,        // process wake-ups
  };

  explicit EventQueue(std::uint64_t tie_seed) : tie_rng_(tie_seed) {
    heap_.reserve(kInitialCapacity);
    fns_.reserve(kInitialCapacity);
    free_fn_slots_.reserve(kInitialCapacity);
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventId ScheduleAt(Nanos when, Band band, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Earliest pending event time; kNever when empty. Cheap enough for the
  // per-charge fast path (one vector-front read, no locks).
  [[nodiscard]] Nanos next_time() const { return heap_.empty() ? kNever : heap_.front().when; }

  // Runs every event due at or before `now`, in deterministic order,
  // including events scheduled by the closures themselves.
  void RunDue(Nanos now);

  // Advances the clock to the earliest pending event and runs everything
  // due at that instant. Returns false when the queue is empty.
  bool RunNext(SimClock* clock);

  [[nodiscard]] std::uint64_t scheduled_total() const { return scheduled_total_; }

  // Optional trace sink; dispatch spans land on obs::kTrackKernel. Tracing
  // observes the already-decided execution order — it never perturbs it.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  // Enough for any workload's steady-state pending-event population; the
  // vector only allocates beyond this under extreme fan-out.
  static constexpr std::size_t kInitialCapacity = 256;

  // The binary heap holds only 32-byte ordering keys; the (much wider)
  // closure bodies live in a side pool indexed by `slot` and never move.
  // Heap sifts are the queue's dominant memory traffic, and moving a full
  // InlineFn-carrying event through every sift level measurably outweighed
  // the allocation it saved.
  struct HeapKey {
    Nanos when = 0;
    std::uint64_t tie = 0;
    EventId id = 0;
    std::uint32_t slot = 0;
    Band band = Band::kCompletion;
  };

  // std::push_heap builds a max-heap; "later" events sink to the back.
  struct Later {
    bool operator()(const HeapKey& a, const HeapKey& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      if (a.band != b.band) {
        return a.band > b.band;
      }
      if (a.tie != b.tie) {
        return a.tie > b.tie;
      }
      return a.id > b.id;
    }
  };

  std::vector<HeapKey> heap_;
  std::vector<EventFn> fns_;                   // closure pool, slot-addressed
  std::vector<std::uint32_t> free_fn_slots_;   // recycled pool slots (LIFO)
  Rng tie_rng_;
  obs::TraceSink* trace_ = nullptr;
  EventId next_id_ = 1;
  std::uint64_t scheduled_total_ = 0;
};

}  // namespace graysim

#endif  // SRC_SIM_EVENT_QUEUE_H_
