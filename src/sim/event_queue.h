// Deterministic discrete-event queue: the heart of the simulation kernel.
//
// Events are closures scheduled at a virtual time. Execution order is a
// total order on (virtual_time, band, tie, seq): the band separates device
// completions from process wake-ups at the same instant (completions first,
// so a process waking at its I/O completion time observes the completion's
// effects), `tie` is a seeded RNG draw taken at scheduling time (seeded
// tie-breaking keeps same-band, same-time ordering independent of container
// internals yet fully reproducible), and `seq` is a monotonic id that makes
// the order total even on tie collisions.
//
// Internally the queue is a hierarchical timer wheel rather than a binary
// heap: 4 levels x 256 slots over 1024 ns ticks, so schedule and dispatch
// are O(1) instead of O(log n) at fleet event rates. Events past the
// wheel's ~73-virtual-minute horizon fall back to a small calendar heap and
// re-enter the wheel as the cursor advances. The wheel is the non-hashed
// variant (each level's slots hold disjoint, ordered tick ranges), which is
// what makes an exact O(1) next_time() and the exact (when, band, tie, seq)
// order possible — a hashed wheel would interleave near and far ticks in
// one slot. The dispatch order is bit-identical to the historical binary
// heap, pinned by a differential test against ref_event_heap.h.
//
// Single-threaded by design: closures run inline from RunDue on whichever
// (fiber) stack called it, and may schedule further events while running.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/inline_fn.h"
#include "src/sim/rng.h"

namespace graysim {

// Event closures are stored inline in the slot pool (no per-event heap
// allocation). 88 bytes fits the largest kernel closure — a disk completion
// wrapper carrying a nested CompletionFn — with headroom for new captures.
using EventFn = InlineFn<88>;

// Closures capture raw pointers into one machine (Os, devices, caches), so
// they cannot be copied into another machine's address space. A machine
// snapshot instead exports each pending event as an EventDesc — enough pure
// data for the restoring Os to rebuild an equivalent closure bound to its
// own subsystems. The kind registry lives here with the kernel so every
// layer (disk, net, os) shares one namespace; the queue itself treats the
// descriptor as an opaque payload.
enum class EventKind : std::uint32_t {
  kNone = 0,             // not rebuildable; Snapshot refuses to capture it
  kDeviceCompletion,     // SimDevice completion, no callback; dev = device id
  kReadFillCompletion,   // disk completion carrying the Os read-fill callback
  kNetDeliver,           // NetDevice in-flight packet delivery
  kAntagonistTick,       // chaos antagonist daemon self-clock
  kShockTick,            // chaos memory-pressure shock edge
  kShockRelease,         // chaos shock-window page release
  kFlushDaemon,          // dirty-page flush daemon run
  kPageDaemon,           // page daemon run
  kCrash,                // chaos crash-stop instant; arg[0] = chaos epoch
};

struct EventDesc {
  std::uint32_t kind = 0;  // EventKind; default kNone
  std::int32_t dev = 0;
  std::array<std::uint64_t, 6> arg{};
};

class EventQueue {
 public:
  using EventId = std::uint64_t;
  static constexpr Nanos kNever = ~Nanos{0};

  enum class Band : std::uint8_t {
    kCompletion = 0,  // device completions, daemon work
    kWake = 1,        // process wake-ups
  };

  // One pending event as pure data: the full ordering key plus the typed
  // descriptor. `tie` and `id` are preserved verbatim across a snapshot —
  // replaying them (instead of redrawing) is what keeps a forked machine's
  // dispatch order bit-identical to the original's.
  struct RawEvent {
    Nanos when = 0;
    std::uint64_t tie = 0;
    EventId id = 0;
    EventDesc desc;
    Band band = Band::kCompletion;
  };

  // The queue's own mutable kernel state beyond the pending events: the
  // tie-RNG mid-sequence state (future ScheduleAt calls must draw the same
  // tie values the original would have drawn — a reseeded stream would
  // reorder same-instant events and fork divergence would follow), plus the
  // id and stat counters.
  struct KernelState {
    Rng::State tie_rng;
    EventId next_id = 1;
    std::uint64_t scheduled_total = 0;
  };

  explicit EventQueue(std::uint64_t tie_seed) : tie_rng_(tie_seed) {
    due_.reserve(kInitialCapacity);
    fns_.reserve(kInitialCapacity);
    descs_.reserve(kInitialCapacity);
    free_fn_slots_.reserve(kInitialCapacity);
    for (auto& level : slot_min_) {
      level.fill(kNever);
    }
    for (auto& level : occupied_) {
      level.fill(0);
    }
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventId ScheduleAt(Nanos when, Band band, EventFn fn) {
    return ScheduleAt(when, band, fn, EventDesc{});
  }
  EventId ScheduleAt(Nanos when, Band band, EventFn fn, const EventDesc& desc);

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  // Earliest pending event time; kNever when empty. Exact (not
  // tick-granular) and O(1). Cached: Insert can only lower the minimum, so
  // a min-update keeps a clean cache exact; dispatch is the sole removal
  // path and marks it dirty, after which the next read recomputes from the
  // due_ head / per-slot minima / occupancy bitmaps. Callers (Os::Charge,
  // Scheduler::Charge) poll this once per charged cost, so the common case
  // must stay a load and a branch.
  [[nodiscard]] Nanos next_time() const {
    if (next_dirty_) {
      next_cache_ = head_ < due_.size() ? due_[head_].when : WheelMinWhen();
      next_dirty_ = false;
    }
    return next_cache_;
  }

  // Runs every event due at or before `now`, in deterministic order,
  // including events scheduled by the closures themselves.
  void RunDue(Nanos now);

  // Advances the clock to the earliest pending event and runs everything
  // due at that instant. Returns false when the queue is empty.
  bool RunNext(SimClock* clock);

  [[nodiscard]] std::uint64_t scheduled_total() const { return scheduled_total_; }

  // Optional trace sink; dispatch spans land on obs::kTrackKernel. Tracing
  // observes the already-decided execution order — it never perturbs it.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  // --- Snapshot surface ----------------------------------------------
  // Pending events as pure data, sorted by dispatch order (deterministic
  // image bytes). Closures are NOT exported; callers rebuild them from the
  // descriptors via ImportPending.
  [[nodiscard]] std::vector<RawEvent> ExportPending() const;

  // Re-inserts one exported event with a freshly built closure, preserving
  // its (when, band, tie, id) key verbatim: no tie draw, no id allocation,
  // no scheduled_total bump (RestoreKernelState carries the counters).
  void ImportPending(const RawEvent& ev, EventFn fn);

  // Crash-stop surface: drops every pending event — closures, descriptors,
  // wheel and overflow contents — without running anything. The tie RNG, id
  // counter, and scheduled_total survive (they are kernel identity, and the
  // post-crash kernel must keep drawing the same tie stream); the wheel
  // cursor keeps its position so the clock cannot move backwards.
  void DiscardPending();

  [[nodiscard]] KernelState SnapshotKernelState() const {
    return KernelState{tie_rng_.state(), next_id_, scheduled_total_};
  }
  void RestoreKernelState(const KernelState& s) {
    tie_rng_.set_state(s.tie_rng);
    next_id_ = s.next_id;
    scheduled_total_ = s.scheduled_total;
  }

 private:
  // Enough for any workload's steady-state pending-event population; the
  // vectors only allocate beyond this under extreme fan-out.
  static constexpr std::size_t kInitialCapacity = 256;

  // Wheel geometry: 1024 ns ticks, 4 levels x 256 slots. Level 0 resolves
  // single ticks; each higher level covers 256x the span below it. Events
  // whose tick differs from the cursor above bit 32 (~73 virtual minutes
  // out) wait in the overflow heap.
  static constexpr int kTickBits = 10;
  static constexpr int kLevelBits = 8;
  static constexpr int kLevels = 4;
  static constexpr std::size_t kSlotsPerLevel = std::size_t{1} << kLevelBits;
  static constexpr int kWordsPerLevel = 4;  // 256 slots / 64 bits
  static constexpr int kOverflowShift = kLevels * kLevelBits;

  // 32-byte ordering key; the (much wider) closure bodies live in a side
  // pool indexed by `slot` and never move. Keeping keys small keeps slot
  // drains and due_ inserts cheap — the lesson from the binary-heap era,
  // where sifting full InlineFn-carrying events dominated memory traffic.
  struct Entry {
    Nanos when = 0;
    std::uint64_t tie = 0;
    EventId id = 0;
    std::uint32_t slot = 0;
    Band band = Band::kCompletion;
  };

  // Strict-weak "dispatches earlier" order: the total order on
  // (when, band, tie, seq).
  struct EarlierCmp {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when < b.when;
      }
      if (a.band != b.band) {
        return a.band < b.band;
      }
      if (a.tie != b.tie) {
        return a.tie < b.tie;
      }
      return a.id < b.id;
    }
  };

  // std::push_heap builds a max-heap; comparing with "later" puts the
  // earliest event at the front (min-heap by dispatch order).
  struct LaterCmp {
    bool operator()(const Entry& a, const Entry& b) const {
      return EarlierCmp{}(b, a);
    }
  };

  std::uint32_t AllocSlot(const EventFn& fn, const EventDesc& desc);
  void Insert(const Entry& e);
  void PlaceInWheel(const Entry& e);  // requires tick > cur_tick_, in horizon
  [[nodiscard]] Nanos WheelMinWhen() const;
  // Advances the cursor to the earliest occupied tick (cascading higher
  // levels and the overflow prefix as needed) and appends that tick's
  // events, sorted, to due_. Requires WheelMinWhen() != kNever.
  void PullEarliest();
  void AppendBatchToDue(std::vector<Entry>* batch);
  void Dispatch(const Entry& e);
  // First occupied slot of `level`, or -1. Slots behind the cursor are
  // always empty (inserts at or before the cursor go to due_), so the
  // lowest set bit is always the earliest tick range.
  [[nodiscard]] int FirstOccupiedSlot(int level) const;

  std::vector<Entry> due_;  // sorted by EarlierCmp from head_ onward
  std::size_t head_ = 0;
  std::array<std::array<std::vector<Entry>, kSlotsPerLevel>, kLevels> wheel_;
  std::array<std::array<Nanos, kSlotsPerLevel>, kLevels> slot_min_;
  std::array<std::array<std::uint64_t, kWordsPerLevel>, kLevels> occupied_;
  std::vector<Entry> overflow_;  // heap via LaterCmp: front = earliest
  std::vector<Entry> batch_;     // reusable scratch for slot drains
  std::uint64_t cur_tick_ = 0;
  std::size_t count_ = 0;
  // next_time() cache; mutable because a dirty read-side recompute is
  // logically const. Exact whenever clean — see next_time().
  mutable Nanos next_cache_ = kNever;
  mutable bool next_dirty_ = false;

  std::vector<EventFn> fns_;                  // closure pool, slot-addressed
  std::vector<EventDesc> descs_;              // parallel typed descriptors
  std::vector<std::uint32_t> free_fn_slots_;  // recycled pool slots (LIFO)
  Rng tie_rng_;
  obs::TraceSink* trace_ = nullptr;
  EventId next_id_ = 1;
  std::uint64_t scheduled_total_ = 0;
};

}  // namespace graysim

#endif  // SRC_SIM_EVENT_QUEUE_H_
