#include "src/sim/event_queue.h"

#include <algorithm>

namespace graysim {

EventQueue::EventId EventQueue::ScheduleAt(Nanos when, Band band, EventFn fn) {
  const EventId id = next_id_++;
  ++scheduled_total_;
  std::uint32_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    fns_[slot] = fn;
  } else {
    slot = static_cast<std::uint32_t>(fns_.size());
    fns_.push_back(fn);
  }
  heap_.push_back(HeapKey{when, tie_rng_.Next(), id, slot, band});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventQueue::RunDue(Nanos now) {
  while (!heap_.empty() && heap_.front().when <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapKey key = heap_.back();
    heap_.pop_back();
    // Copy the closure out before running it: the body may schedule events,
    // which can grow the pool and move fns_ underneath an in-place call.
    EventFn fn = fns_[key.slot];
    free_fn_slots_.push_back(key.slot);
    if (trace_ != nullptr) {
      trace_->Begin(obs::kTrackKernel, "dispatch", key.when);
      fn();
      trace_->End(obs::kTrackKernel, "dispatch", key.when);
    } else {
      fn();
    }
  }
}

bool EventQueue::RunNext(SimClock* clock) {
  if (heap_.empty()) {
    return false;
  }
  const Nanos when = heap_.front().when;
  clock->AdvanceTo(std::max(clock->now(), when));
  RunDue(clock->now());
  return true;
}

}  // namespace graysim
