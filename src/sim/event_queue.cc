#include "src/sim/event_queue.h"

#include <algorithm>

namespace graysim {

EventQueue::EventId EventQueue::ScheduleAt(Nanos when, Band band, std::function<void()> fn) {
  const EventId id = next_id_++;
  ++scheduled_total_;
  heap_.push_back(Event{when, tie_rng_.Next(), id, band, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventQueue::RunDue(Nanos now) {
  while (!heap_.empty() && heap_.front().when <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    ev.fn();
  }
}

bool EventQueue::RunNext(SimClock* clock) {
  if (heap_.empty()) {
    return false;
  }
  const Nanos when = heap_.front().when;
  clock->AdvanceTo(std::max(clock->now(), when));
  RunDue(clock->now());
  return true;
}

}  // namespace graysim
