#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace graysim {

namespace {

[[nodiscard]] constexpr std::uint64_t TickOf(Nanos when) {
  return when >> 10;  // kTickBits; constexpr-friendly duplicate
}

}  // namespace

std::uint32_t EventQueue::AllocSlot(const EventFn& fn, const EventDesc& desc) {
  std::uint32_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    fns_[slot] = fn;
    descs_[slot] = desc;
  } else {
    slot = static_cast<std::uint32_t>(fns_.size());
    fns_.push_back(fn);
    descs_.push_back(desc);
  }
  return slot;
}

EventQueue::EventId EventQueue::ScheduleAt(Nanos when, Band band, EventFn fn,
                                           const EventDesc& desc) {
  const EventId id = next_id_++;
  ++scheduled_total_;
  const std::uint32_t slot = AllocSlot(fn, desc);
  Insert(Entry{when, tie_rng_.Next(), id, slot, band});
  ++count_;
  return id;
}

void EventQueue::ImportPending(const RawEvent& ev, EventFn fn) {
  const std::uint32_t slot = AllocSlot(fn, ev.desc);
  Insert(Entry{ev.when, ev.tie, ev.id, slot, ev.band});
  ++count_;
}

void EventQueue::Insert(const Entry& e) {
  // An insert can only lower the minimum, so a clean cache stays exact
  // with a min-update; a dirty cache stays dirty and recomputes on read.
  if (!next_dirty_ && e.when < next_cache_) {
    next_cache_ = e.when;
  }
  const std::uint64_t tick = TickOf(e.when);
  if (tick <= cur_tick_) {
    // At or before the cursor (including schedule-into-the-past from a
    // running closure): keep the due_ working set sorted so dispatch order
    // stays the exact (when, band, tie, seq) total order.
    const auto pos =
        std::upper_bound(due_.begin() + static_cast<std::ptrdiff_t>(head_), due_.end(), e,
                         EarlierCmp{});
    due_.insert(pos, e);
    return;
  }
  if (((tick ^ cur_tick_) >> kOverflowShift) != 0) {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), LaterCmp{});
    return;
  }
  PlaceInWheel(e);
}

void EventQueue::PlaceInWheel(const Entry& e) {
  const std::uint64_t tick = TickOf(e.when);
  const std::uint64_t diff = tick ^ cur_tick_;
  assert(diff != 0 && (diff >> kOverflowShift) == 0);
  const int level = (63 - __builtin_clzll(diff)) / kLevelBits;
  const auto slot =
      static_cast<std::size_t>((tick >> (level * kLevelBits)) & (kSlotsPerLevel - 1));
  wheel_[static_cast<std::size_t>(level)][slot].push_back(e);
  auto& word = occupied_[static_cast<std::size_t>(level)][slot >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (slot & 63);
  auto& min_when = slot_min_[static_cast<std::size_t>(level)][slot];
  if ((word & bit) == 0) {
    word |= bit;
    min_when = e.when;
  } else if (e.when < min_when) {
    min_when = e.when;
  }
}

int EventQueue::FirstOccupiedSlot(int level) const {
  const auto& words = occupied_[static_cast<std::size_t>(level)];
  for (int w = 0; w < kWordsPerLevel; ++w) {
    if (words[static_cast<std::size_t>(w)] != 0) {
      return w * 64 + __builtin_ctzll(words[static_cast<std::size_t>(w)]);
    }
  }
  return -1;
}

Nanos EventQueue::WheelMinWhen() const {
  // Levels hold strictly increasing tick ranges (level 0 nearest, overflow
  // farthest), so the first occupied slot of the first occupied level holds
  // the global minimum.
  for (int level = 0; level < kLevels; ++level) {
    const int slot = FirstOccupiedSlot(level);
    if (slot >= 0) {
      return slot_min_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)];
    }
  }
  return overflow_.empty() ? kNever : overflow_.front().when;
}

void EventQueue::AppendBatchToDue(std::vector<Entry>* batch) {
  std::sort(batch->begin(), batch->end(), EarlierCmp{});
  // Every entry already in due_ has tick <= the old cursor < the pulled
  // tick, hence a strictly smaller `when`: a sorted append keeps due_
  // sorted. Compact the consumed prefix first when it dominates.
  if (head_ >= 1024 && head_ * 2 >= due_.size()) {
    due_.erase(due_.begin(), due_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  due_.insert(due_.end(), batch->begin(), batch->end());
  batch->clear();
}

void EventQueue::PullEarliest() {
  for (;;) {
    // Level 0: the slot holds exactly one tick; drain it straight to due_.
    int slot = FirstOccupiedSlot(0);
    if (slot >= 0) {
      cur_tick_ = ((cur_tick_ >> kLevelBits) << kLevelBits) | static_cast<std::uint64_t>(slot);
      auto& bucket = wheel_[0][static_cast<std::size_t>(slot)];
      batch_.swap(bucket);
      occupied_[0][static_cast<std::size_t>(slot) >> 6] &=
          ~(std::uint64_t{1} << (slot & 63));
      AppendBatchToDue(&batch_);
      // batch_ now holds bucket's old (empty) storage; swap capacity back so
      // the slot keeps its steady-state allocation.
      batch_.swap(bucket);
      return;
    }
    // Higher levels: move the cursor to the slot's base tick and cascade its
    // events downward; entries landing exactly on the base go due.
    bool cascaded = false;
    for (int level = 1; level < kLevels && !cascaded; ++level) {
      slot = FirstOccupiedSlot(level);
      if (slot < 0) {
        continue;
      }
      const int shift = (level + 1) * kLevelBits;
      const std::uint64_t base = ((cur_tick_ >> shift) << shift) |
                                 (static_cast<std::uint64_t>(slot) << (level * kLevelBits));
      cur_tick_ = base;
      auto& bucket = wheel_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)];
      occupied_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot) >> 6] &=
          ~(std::uint64_t{1} << (slot & 63));
      for (const Entry& e : bucket) {
        if (TickOf(e.when) == base) {
          batch_.push_back(e);
        } else {
          PlaceInWheel(e);
        }
      }
      bucket.clear();
      if (!batch_.empty()) {
        AppendBatchToDue(&batch_);
        return;
      }
      cascaded = true;  // redistribution done; rescan from level 0
    }
    if (cascaded) {
      continue;
    }
    // Wheel empty: jump the cursor to the overflow's earliest tick and pull
    // the whole now-in-horizon prefix back in. The heap is ordered by
    // dispatch time and the horizon test is a prefix of the `when` bits, so
    // qualifying entries form a prefix of the pop order.
    assert(!overflow_.empty());
    const std::uint64_t front_tick = TickOf(overflow_.front().when);
    cur_tick_ = front_tick;
    while (!overflow_.empty() &&
           (TickOf(overflow_.front().when) >> kOverflowShift) ==
               (front_tick >> kOverflowShift)) {
      std::pop_heap(overflow_.begin(), overflow_.end(), LaterCmp{});
      const Entry e = overflow_.back();
      overflow_.pop_back();
      if (TickOf(e.when) == front_tick) {
        batch_.push_back(e);
      } else {
        PlaceInWheel(e);
      }
    }
    AppendBatchToDue(&batch_);  // nonempty: the old front had the front tick
    return;
  }
}

void EventQueue::Dispatch(const Entry& e) {
  // Copy the closure out before running it: the body may schedule events,
  // which can grow the pool and move fns_ underneath an in-place call.
  EventFn fn = fns_[e.slot];
  free_fn_slots_.push_back(e.slot);
  if (trace_ != nullptr) {
    trace_->Begin(obs::kTrackKernel, "dispatch", e.when);
    fn();
    trace_->End(obs::kTrackKernel, "dispatch", e.when);
  } else {
    fn();
  }
}

void EventQueue::RunDue(Nanos now) {
  for (;;) {
    if (head_ < due_.size()) {
      if (due_[head_].when > now) {
        return;
      }
      const Entry e = due_[head_];
      ++head_;
      if (head_ == due_.size()) {
        due_.clear();
        head_ = 0;
      }
      --count_;
      next_dirty_ = true;  // removal: the minimum may have risen
      Dispatch(e);
      continue;
    }
    // due_ exhausted; anything due must still be in the wheel/overflow.
    // (due_ events always precede wheel events, so the converse — a due
    // wheel event hiding behind a future due_ head — cannot happen.)
    if (WheelMinWhen() > now) {
      return;
    }
    PullEarliest();
  }
}

bool EventQueue::RunNext(SimClock* clock) {
  const Nanos when = next_time();
  if (when == kNever) {
    return false;
  }
  clock->AdvanceTo(std::max(clock->now(), when));
  RunDue(clock->now());
  return true;
}

std::vector<EventQueue::RawEvent> EventQueue::ExportPending() const {
  std::vector<Entry> entries;
  entries.reserve(count_);
  entries.insert(entries.end(), due_.begin() + static_cast<std::ptrdiff_t>(head_), due_.end());
  for (const auto& level : wheel_) {
    for (const auto& bucket : level) {
      entries.insert(entries.end(), bucket.begin(), bucket.end());
    }
  }
  entries.insert(entries.end(), overflow_.begin(), overflow_.end());
  std::sort(entries.begin(), entries.end(), EarlierCmp{});
  std::vector<RawEvent> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) {
    out.push_back(RawEvent{e.when, e.tie, e.id, descs_[e.slot], e.band});
  }
  return out;
}

void EventQueue::DiscardPending() {
  due_.clear();
  head_ = 0;
  for (auto& level : wheel_) {
    for (auto& bucket : level) {
      bucket.clear();
    }
  }
  for (auto& level : slot_min_) {
    level.fill(kNever);
  }
  for (auto& level : occupied_) {
    level.fill(0);
  }
  overflow_.clear();
  batch_.clear();
  fns_.clear();
  descs_.clear();
  free_fn_slots_.clear();
  count_ = 0;
  next_cache_ = kNever;
  next_dirty_ = false;
}

}  // namespace graysim
