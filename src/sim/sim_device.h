// Generic simulated device: FCFS request queue with completion events.
//
// Submit() computes the request's service time against an injected
// ServiceModel, appends it to the device's busy timeline (requests to one
// device serialize; different devices proceed in parallel), and schedules a
// completion event on the simulation's event queue. The submitter decides
// whether to block on the returned completion time (demand reads) or walk
// away (write-behind, readahead, swap-out) — that split is what makes
// background I/O truly asynchronous.
//
// Contiguous-run coalescing (optional, on by default): a request that starts
// exactly where the queue's tail request ends, in the same transfer
// direction, is merged into that tail — the controller keeps streaming, and
// the ServiceModel sees coalesce=true so it can charge transfer time only.
// Devices without a seek/stream distinction (the net link) switch it off.
//
// This is the device layer both DiskQueue (mechanical disk model) and
// NetDevice (link serialization) are built on. It deliberately knows nothing
// about disks or networks: the ServiceModel owns all device physics.
#ifndef SRC_SIM_SIM_DEVICE_H_
#define SRC_SIM_SIM_DEVICE_H_

#include <cstdint>
#include <functional>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/inline_fn.h"

namespace graysim {

class SimDevice {
 public:
  // Device physics live behind this interface; SimDevice owns only the
  // queueing discipline. `coalesce` is true when the request extends the
  // queue tail contiguously in the same direction.
  class ServiceModel {
   public:
    virtual ~ServiceModel() = default;
    [[nodiscard]] virtual Nanos Service(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                                        bool coalesce) = 0;
  };

  // `jitter` (optional) perturbs each request's service time; the Os wires
  // its seeded timing jitter through it. Installed once at setup, so the
  // std::function indirection costs nothing per request.
  using Jitter = std::function<Nanos(Nanos)>;
  // `service_scale` (optional) rescales the already-jittered service time;
  // the chaos layer wires degraded-window / latency-spike multipliers
  // through it. Installed only while a FaultPlan is armed, so the unarmed
  // hot path pays a single null check.
  using ServiceScale = std::function<Nanos(Nanos)>;

  // Completion callbacks are stored inline (nested inside the completion
  // event), so submitting a request never allocates. 48 bytes fits the Os's
  // read-fill closure (this + inum + page range + token + flag).
  using CompletionFn = InlineFn<48>;

  SimDevice(ServiceModel* model, SimClock* clock, EventQueue* events)
      : model_(model), clock_(clock), events_(events) {}

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  void set_jitter(Jitter jitter) { jitter_ = std::move(jitter); }
  void set_service_scale(ServiceScale scale) { service_scale_ = std::move(scale); }
  void set_coalescing(bool on) { coalescing_ = on; }

  // Trace span names for the two transfer directions; must be string
  // literals (or otherwise outlive the sink — TraceEvent stores pointers).
  // The disk keeps the default read/write pair; the net device renames both
  // directions "xmit".
  void set_op_names(const char* read_name, const char* write_name) {
    read_name_ = read_name;
    write_name_ = write_name;
  }

  // Enqueues a contiguous request of `bytes` at byte `offset`. Returns its
  // completion time; `on_complete` (may be null) runs at that instant in
  // Band::kCompletion — before any process waking at the same time.
  // `desc` describes the completion event for machine snapshots; callers
  // whose on_complete is null can use the overload, which records a plain
  // kDeviceCompletion against this device's snapshot id.
  Nanos Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write, CompletionFn on_complete,
               const EventDesc& desc);
  Nanos Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write,
               CompletionFn on_complete);

  // Timeline position after the last queued request completes.
  [[nodiscard]] Nanos busy_until() const { return busy_until_; }
  [[nodiscard]] std::uint64_t depth() const { return depth_; }
  [[nodiscard]] std::uint64_t max_depth() const { return max_depth_; }
  [[nodiscard]] std::uint64_t total_requests() const { return total_requests_; }
  [[nodiscard]] std::uint64_t coalesced_requests() const { return coalesced_requests_; }

  // Optional trace sink + the track ("disk/N", "net/0" row) this device's
  // request lifecycle events land on. Each request becomes an "X" span over
  // its service window, plus a "queue" instant when it had to wait behind
  // the device's busy timeline.
  void set_trace(obs::TraceSink* trace, std::uint32_t track) {
    trace_ = trace;
    track_ = track;
  }

  // Per-request service times (ns), recorded on every Submit. Alloc-free.
  [[nodiscard]] const obs::Histogram& service_hist() const { return service_hist_; }

  // --- Snapshot surface ----------------------------------------------
  // The device's simulation-visible state as pure data. The model/clock/
  // events pointers, jitter and chaos hooks, and trace wiring are identity,
  // not state — a forked machine rebinds them to its own subsystems.
  // `depth` counts in-flight requests whose completion events are captured
  // separately in the event image; restoring it wholesale keeps the
  // rebuilt events' --depth_ decrements balanced.
  struct State {
    obs::Histogram service_hist;
    Nanos busy_until = 0;
    std::uint64_t tail_end_offset = 0;
    bool tail_is_write = false;
    std::uint64_t depth = 0;
    std::uint64_t max_depth = 0;
    std::uint64_t total_requests = 0;
    std::uint64_t coalesced_requests = 0;
  };

  [[nodiscard]] State CaptureState() const {
    return State{service_hist_, busy_until_,    tail_end_offset_, tail_is_write_,
                 depth_,        max_depth_,     total_requests_,  coalesced_requests_};
  }
  void RestoreState(const State& s) {
    service_hist_ = s.service_hist;
    busy_until_ = s.busy_until;
    tail_end_offset_ = s.tail_end_offset;
    tail_is_write_ = s.tail_is_write;
    depth_ = s.depth;
    max_depth_ = s.max_depth;
    total_requests_ = s.total_requests;
    coalesced_requests_ = s.coalesced_requests;
  }

  // Identifies this device inside snapshot event descriptors (disk index,
  // or -1 for the net link). Set once at machine assembly.
  void set_snapshot_dev(std::int32_t dev) { snapshot_dev_ = dev; }

  // Crash-stop teardown: in-flight requests die with the machine (their
  // completion events have already been discarded wholesale), so the queue
  // empties and the busy timeline collapses to `now`. Cumulative counters
  // and the service histogram survive — they are observability, not device
  // state, and a restarted run keeps accumulating into them.
  void CrashReset(Nanos now) {
    depth_ = 0;
    busy_until_ = now;
    tail_end_offset_ = 0;
    tail_is_write_ = false;
  }

  // The completion-event closure Submit schedules, exposed so a restoring
  // Os can rebuild a captured in-flight completion bound to this device.
  [[nodiscard]] EventFn MakeCompletionEvent(CompletionFn cb) {
    return EventFn([this, cb]() mutable {
      --depth_;
      if (cb) {
        cb();
      }
    });
  }

 private:
  ServiceModel* model_;
  SimClock* clock_;
  EventQueue* events_;
  Jitter jitter_;
  ServiceScale service_scale_;
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t track_ = 0;
  const char* read_name_ = "read";
  const char* write_name_ = "write";
  obs::Histogram service_hist_;
  Nanos busy_until_ = 0;
  // End offset + direction of the tail request, for coalescing.
  std::uint64_t tail_end_offset_ = 0;
  bool tail_is_write_ = false;
  bool coalescing_ = true;
  std::uint64_t depth_ = 0;
  std::uint64_t max_depth_ = 0;
  std::uint64_t total_requests_ = 0;
  std::uint64_t coalesced_requests_ = 0;
  std::int32_t snapshot_dev_ = 0;
};

}  // namespace graysim

#endif  // SRC_SIM_SIM_DEVICE_H_
