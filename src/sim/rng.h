// Deterministic pseudo-random number generation for simulations and probes.
//
// xoroshiro128++ seeded through splitmix64. Deterministic across platforms
// (unlike std::mt19937 distributions), which keeps every experiment in the
// repository exactly reproducible.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cassert>
#include <cstdint>

namespace graysim {

// splitmix64: used to expand a single seed into stream state.
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoroshiro128++ generator.
class Rng {
 public:
  // Raw generator state, exposed so a machine snapshot can serialize every
  // RNG stream mid-sequence and a forked machine can resume drawing the
  // exact same values. A stream restored from State is indistinguishable
  // from one that kept running.
  struct State {
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
  };

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    s0_ = SplitMix64(sm);
    s1_ = SplitMix64(sm);
    if (s0_ == 0 && s1_ == 0) {
      s1_ = 1;
    }
  }

  std::uint64_t Next() {
    const std::uint64_t a = s0_;
    std::uint64_t b = s1_;
    const std::uint64_t result = Rotl(a + b, 17) + a;
    b ^= a;
    s0_ = Rotl(a, 49) ^ b ^ (b << 21);
    s1_ = Rotl(b, 28);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t Below(std::uint64_t bound) {
    assert(bound > 0);
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (true) {
      const std::uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  [[nodiscard]] State state() const { return State{s0_, s1_}; }
  void set_state(const State& s) {
    s0_ = s.s0;
    s1_ = s.s1;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace graysim

#endif  // SRC_SIM_RNG_H_
