#include "src/sim/sim_device.h"

#include <algorithm>
#include <utility>

namespace graysim {

Nanos SimDevice::Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                        CompletionFn on_complete) {
  EventDesc desc;
  desc.kind = static_cast<std::uint32_t>(EventKind::kDeviceCompletion);
  desc.dev = snapshot_dev_;
  // Direction matters to the crash write-order model: a pending write
  // completion at the crash instant is a torn write; a pending read is not.
  desc.arg[0] = is_write ? 1 : 0;
  return Submit(offset, bytes, is_write, on_complete, desc);
}

Nanos SimDevice::Submit(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                        CompletionFn on_complete, const EventDesc& desc) {
  const bool coalesce = coalescing_ && depth_ > 0 && is_write == tail_is_write_ &&
                        offset == tail_end_offset_;
  Nanos service = model_->Service(offset, bytes, is_write, coalesce);
  if (jitter_) {
    service = jitter_(service);
  }
  if (service_scale_) {
    service = service_scale_(service);
  }
  const Nanos start = std::max(clock_->now(), busy_until_);
  const Nanos completion = start + service;
  busy_until_ = completion;
  tail_end_offset_ = offset + bytes;
  tail_is_write_ = is_write;

  ++total_requests_;
  if (coalesce) {
    ++coalesced_requests_;
  }
  service_hist_.Record(service);
  if (trace_ != nullptr) {
    if (start > clock_->now()) {
      // Queued behind the device: record how long this request waited.
      trace_->Instant(track_, "queue", clock_->now(), "wait_ns", start - clock_->now());
    }
    trace_->Complete(track_, is_write ? write_name_ : read_name_, start, service, "bytes", bytes);
  }
  ++depth_;
  max_depth_ = std::max(max_depth_, depth_);
  events_->ScheduleAt(completion, EventQueue::Band::kCompletion, MakeCompletionEvent(on_complete),
                      desc);
  return completion;
}

}  // namespace graysim
