// Little-endian byte serialization for durable machine checkpoints.
//
// ByteWriter appends fixed-width scalars to a growable buffer; ByteReader
// consumes them with a sticky failure flag instead of per-call error
// returns. The checkpoint loader verifies a per-section CRC32 before it
// parses, so a reader only fails on content from a different format
// version — callers check ok() once per section and reject the whole file,
// never a partial restore.
//
// Encodings are explicit shifts, not memcpy of host structs: the file must
// mean the same bytes on any host, and no padding or struct layout may
// leak into the format.
#ifndef SRC_SIM_BYTE_IO_H_
#define SRC_SIM_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace graysim {

class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }

  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }

  void Str(const std::string& s) {
    U64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void Bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : p_(data), end_(data + size) {}

  [[nodiscard]] std::uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return *p_++;
  }

  [[nodiscard]] std::uint32_t U32() {
    if (!Need(4)) {
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::uint64_t U64() {
    if (!Need(8)) {
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  [[nodiscard]] bool Bool() { return U8() != 0; }

  [[nodiscard]] double F64() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  [[nodiscard]] std::string Str() {
    const std::uint64_t n = Count(1);
    std::string s;
    if (failed_) {
      return s;
    }
    s.assign(reinterpret_cast<const char*>(p_), static_cast<std::size_t>(n));
    p_ += n;
    return s;
  }

  [[nodiscard]] bool Bytes(void* out, std::size_t n) {
    if (!Need(n)) {
      return false;
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }

  // Reads an element count whose elements occupy at least `min_elem_bytes`
  // each; fails (rather than letting a caller resize a vector to a bogus
  // size) when the remaining input cannot possibly hold that many.
  [[nodiscard]] std::uint64_t Count(std::size_t min_elem_bytes) {
    const std::uint64_t n = U64();
    if (failed_) {
      return 0;
    }
    const std::uint64_t avail = static_cast<std::uint64_t>(end_ - p_);
    if (min_elem_bytes != 0 && n > avail / min_elem_bytes) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  // A fully-consumed, error-free read: the shape of a successful section.
  [[nodiscard]] bool Done() const { return !failed_ && p_ == end_; }

 private:
  [[nodiscard]] bool Need(std::size_t n) {
    if (failed_ || static_cast<std::size_t>(end_ - p_) < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool failed_ = false;
};

// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), bytewise table-free.
// Used as the per-section checksum in checkpoint files; speed is irrelevant
// next to the disk write, and having no table keeps the header dependency
// free for tests that corrupt sections deliberately.
[[nodiscard]] inline std::uint32_t Crc32(const std::uint8_t* data, std::size_t size,
                                         std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

}  // namespace graysim

#endif  // SRC_SIM_BYTE_IO_H_
