// Deterministic fault & interference schedule (the "chaos layer" input).
//
// A FaultPlan is pure data: probabilities, square-wave windows, and burst
// sizes, plus one seed. The ChaosEngine (src/os/chaos_engine.h) draws every
// random decision from a dedicated RNG stream seeded here, so a plan replays
// bit-identically — same injected faults, same spikes, same antagonist
// schedule — run after run, and the kernel's own jitter/tie-break streams
// are never perturbed. A default-constructed plan is disabled and costs
// nothing: no draws, no branches beyond one null check per hook.
//
// Two kinds of interference are modeled:
//  * random per-operation faults (EIO, ENOSPC, short writes, disk latency
//    spikes) drawn per syscall/request from the chaos RNG;
//  * time-varying windows (degraded disks, jitter bursts, memory-pressure
//    shocks, antagonist daemon bursts) driven by the virtual clock as square
//    waves — draw-free, so their phase is a pure function of time.
#ifndef SRC_SIM_FAULT_PLAN_H_
#define SRC_SIM_FAULT_PLAN_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace graysim {

struct FaultPlan {
  // Master switch. When false the Os never instantiates a ChaosEngine and
  // every hook reduces to a null-pointer check (zero-cost when off).
  bool enabled = false;
  // Seed of the dedicated chaos RNG stream (independent of jitter_seed and
  // event_tie_seed, which must stay untouched for zero-cost-when-off).
  std::uint64_t seed = 0xC4A05;

  // --- syscall-level failures ---
  // Per-operation probabilities; batched syscalls roll once per constituent
  // operation, exactly like the scalar path.
  double read_eio_prob = 0.0;     // Pread returns -EIO (transient)
  double stat_eio_prob = 0.0;     // Stat returns -EIO (transient)
  double write_enospc_prob = 0.0; // Pwrite returns -ENOSPC
  double short_write_prob = 0.0;  // Pwrite persists only a prefix
  // Virtual time charged on an injected read/write EIO: real kernels retry
  // failing commands several times before giving up, so an error return is
  // SLOW — which is precisely what poisons naive probe statistics.
  Nanos eio_latency = Millis(25.0);
  // Injected stat() failures are much cheaper: the error surfaces from the
  // (usually cached) inode path without the full command-retry dance.
  Nanos stat_eio_latency = Millis(5.0);

  // --- per-disk degraded windows & latency spikes ---
  int degraded_disk = -1;        // disk index, or -1 = every disk
  Nanos degraded_period = 0;     // 0 disables the square wave
  double degraded_duty = 0.0;    // fraction of each period spent degraded
  double degraded_scale = 1.0;   // service-time multiplier inside the window
  double spike_prob = 0.0;       // per-request latency spike probability
  double spike_scale = 1.0;      // spike service-time multiplier

  // --- jitter bursts (time-varying timing_jitter) ---
  Nanos jitter_burst_period = 0; // 0 disables bursts
  double jitter_burst_duty = 0.0;
  // Jitter amplitude inside a burst (replaces MachineConfig::timing_jitter
  // there; outside bursts the configured base amplitude applies).
  double jitter_burst_amplitude = 0.0;

  // --- antagonist daemons (event-queue background processes) ---
  Nanos antagonist_period = 0;        // tick period; 0 disables both daemons
  std::uint32_t reader_burst_pages = 0;   // streaming reader: pages per tick
  std::uint32_t dirtier_burst_pages = 0;  // dirtier: dirty pages per tick
  int antagonist_disk = 0;                // disk their I/O lands on

  // --- network interference ---
  // Per-message chaos drop, on top of the schedule's own loss/congestion
  // drops (models flaky middleboxes rather than the link itself).
  double net_drop_prob = 0.0;
  // Congestion square wave: inside the window every message's propagation
  // latency is multiplied by net_delay_scale. Draw-free.
  Nanos net_delay_period = 0;  // 0 disables the wave
  double net_delay_duty = 0.0;
  double net_delay_scale = 1.0;

  // --- crash-stop schedule ---
  // Absolute virtual time at which the machine crash-stops (0 = never).
  // At that instant volatile state dies — dirty page-cache pages, in-flight
  // disk/net requests, every fiber's stack — while durable disk state
  // survives under the write-order model (a write is durable once its
  // completion event has fired). The owner must call Os::Recover() before
  // using the machine again. Scheduled as a plain event, not a draw, so a
  // crash-only plan perturbs nothing before the crash instant.
  Nanos crash_at = 0;

  // --- memory-pressure shocks ---
  Nanos shock_period = 0;      // 0 disables shocks
  Nanos shock_duration = 0;    // grabbed memory is released after this long
  double shock_mem_fraction = 0.0;  // fraction of usable memory grabbed
  // Extra latency charged to every zero-fill page allocation inside a shock
  // window (a draw-free square wave on shock_period/shock_duration): the
  // shock competitor's allocator contends for the same free lists and LRU
  // locks, so fresh pages are slow machine-wide while it runs. This is the
  // signal a naive slow-touch detector misreads as "out of memory".
  // 0 disables the stall (the grab still pollutes the cache).
  Nanos shock_alloc_stall = 0;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

  // Preset used by bench/robustness_matrix: one knob scales every
  // interference axis together. intensity 0 = disabled; 1 = a pathologically
  // busy, half-broken machine. Values are calibrated so that at 0.5 every
  // ICL's inference is visibly perturbed but a hardened layer still retains
  // most of its win.
  [[nodiscard]] static FaultPlan Interference(double intensity,
                                              std::uint64_t seed = 0xC4A05) {
    FaultPlan p;
    if (intensity <= 0.0) {
      return p;  // disabled
    }
    p.enabled = true;
    p.seed = seed;
    p.read_eio_prob = 0.12 * intensity;
    // Slow enough that a probe timing the error path reads as "on disk"
    // even when the disk itself is degraded: folding one injected EIO into
    // a 4-probe unit average sinks a warm unit below genuinely cold ones.
    p.eio_latency = Millis(100.0);
    p.stat_eio_prob = 0.30 * intensity;
    p.write_enospc_prob = 0.002 * intensity;
    p.short_write_prob = 0.01 * intensity;
    p.degraded_disk = -1;
    p.degraded_period = Millis(200.0);
    p.degraded_duty = 0.35;
    p.degraded_scale = 1.0 + 3.0 * intensity;
    p.spike_prob = 0.05 * intensity;
    p.spike_scale = 8.0;
    p.jitter_burst_period = Millis(50.0);
    p.jitter_burst_duty = 0.4;
    p.jitter_burst_amplitude = 0.10 + 0.50 * intensity;
    p.net_drop_prob = 0.08 * intensity;
    p.net_delay_period = Millis(150.0);
    p.net_delay_duty = 0.3;
    p.net_delay_scale = 1.0 + 4.0 * intensity;
    p.antagonist_period = Millis(5.0);
    p.reader_burst_pages = static_cast<std::uint32_t>(24.0 * intensity);
    p.dirtier_burst_pages = static_cast<std::uint32_t>(8.0 * intensity);
    p.antagonist_disk = 0;
    // A competitor bursts in every 2 s; while it runs, page allocation
    // stalls ~140 µs — past a naive "30x the median zero-fill" slowness
    // threshold (~90 µs) even at the jitter floor, but inside a
    // recalibrated detector's clamp (~4x), so a fixed-threshold prober
    // false-aborts inside every window while a recalibrating one pays the
    // stall and carries on. The window scales with intensity; the stall
    // does not (it must straddle the two thresholds).
    p.shock_period = Millis(2000.0);
    p.shock_duration = Millis(300.0 * intensity);
    p.shock_mem_fraction = 0.10 * intensity;
    p.shock_alloc_stall = Micros(140.0);
    return p;
  }
};

}  // namespace graysim

#endif  // SRC_SIM_FAULT_PLAN_H_
