// Reference binary-heap event queue: the pre-timer-wheel EventQueue
// implementation, kept verbatim as a differential oracle. The timer wheel
// must dispatch in the exact (when, band, tie, seq) order this heap does —
// tests/event_queue_test.cc drives both with identical schedules and
// asserts identical dispatch sequences, and bench/micro_datastructures
// races the two at 1K/100K/1M pending events.
//
// Test- and bench-only: the simulation kernel links the wheel.
#ifndef SRC_SIM_REF_EVENT_HEAP_H_
#define SRC_SIM_REF_EVENT_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace graysim {

class RefEventHeap {
 public:
  using EventId = EventQueue::EventId;
  using Band = EventQueue::Band;
  static constexpr Nanos kNever = EventQueue::kNever;

  explicit RefEventHeap(std::uint64_t tie_seed) : tie_rng_(tie_seed) {
    heap_.reserve(kInitialCapacity);
    fns_.reserve(kInitialCapacity);
    free_fn_slots_.reserve(kInitialCapacity);
  }

  RefEventHeap(const RefEventHeap&) = delete;
  RefEventHeap& operator=(const RefEventHeap&) = delete;

  EventId ScheduleAt(Nanos when, Band band, EventFn fn) {
    const EventId id = next_id_++;
    ++scheduled_total_;
    std::uint32_t slot;
    if (!free_fn_slots_.empty()) {
      slot = free_fn_slots_.back();
      free_fn_slots_.pop_back();
      fns_[slot] = fn;
    } else {
      slot = static_cast<std::uint32_t>(fns_.size());
      fns_.push_back(fn);
    }
    heap_.push_back(HeapKey{when, tie_rng_.Next(), id, slot, band});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Nanos next_time() const { return heap_.empty() ? kNever : heap_.front().when; }

  void RunDue(Nanos now) {
    while (!heap_.empty() && heap_.front().when <= now) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      const HeapKey key = heap_.back();
      heap_.pop_back();
      EventFn fn = fns_[key.slot];
      free_fn_slots_.push_back(key.slot);
      fn();
    }
  }

  bool RunNext(SimClock* clock) {
    if (heap_.empty()) {
      return false;
    }
    const Nanos when = heap_.front().when;
    clock->AdvanceTo(std::max(clock->now(), when));
    RunDue(clock->now());
    return true;
  }

  [[nodiscard]] std::uint64_t scheduled_total() const { return scheduled_total_; }

 private:
  static constexpr std::size_t kInitialCapacity = 256;

  struct HeapKey {
    Nanos when = 0;
    std::uint64_t tie = 0;
    EventId id = 0;
    std::uint32_t slot = 0;
    Band band = Band::kCompletion;
  };

  struct Later {
    bool operator()(const HeapKey& a, const HeapKey& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      if (a.band != b.band) {
        return a.band > b.band;
      }
      if (a.tie != b.tie) {
        return a.tie > b.tie;
      }
      return a.id > b.id;
    }
  };

  std::vector<HeapKey> heap_;
  std::vector<EventFn> fns_;
  std::vector<std::uint32_t> free_fn_slots_;
  Rng tie_rng_;
  EventId next_id_ = 1;
  std::uint64_t scheduled_total_ = 0;
};

}  // namespace graysim

#endif  // SRC_SIM_REF_EVENT_HEAP_H_
