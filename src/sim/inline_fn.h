// Allocation-free callable for the simulation hot path.
//
// InlineFn<N> stores a callable of up to N bytes inline — no heap, no
// virtual dispatch beyond one function pointer. Captures must be trivially
// copyable and trivially destructible (this covers every closure the kernel
// schedules: `this` pointers plus integers), which makes InlineFn itself
// trivially copyable, so containers of events move by memcpy and a smaller
// InlineFn can be captured inside a larger one (DiskQueue completion
// callbacks ride inside EventQueue events this way).
//
// This replaces std::function on the event kernel's per-operation paths,
// where the old closure heap allocations dominated host time at
// millions-of-ops scale.
#ifndef SRC_SIM_INLINE_FN_H_
#define SRC_SIM_INLINE_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace graysim {

template <std::size_t Capacity>
class InlineFn {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Implicit from any callable with a fitting, trivially copyable capture.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for this InlineFn; raise its capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>,
                  "InlineFn captures must be trivially copyable (pointers and "
                  "scalars); anything owning heap state belongs elsewhere");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
  }

  // Trivially copyable by construction: default copy/move copy the bytes.
  InlineFn(const InlineFn&) = default;
  InlineFn& operator=(const InlineFn&) = default;

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  void (*invoke_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace graysim

#endif  // SRC_SIM_INLINE_FN_H_
