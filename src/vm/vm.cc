#include "src/vm/vm.h"

#include <cassert>

namespace graysim {

VmAreaId Vm::Alloc(Pid pid, std::uint64_t pages) {
  ProcessSpace& space = spaces_[pid];
  const VmAreaId id = next_area_++;
  space.areas.emplace(id, Area{space.next_vpage, pages});
  space.next_vpage += pages;
  return id;
}

void Vm::Free(Pid pid, VmAreaId area_id) {
  ProcessSpace& space = spaces_[pid];
  const auto it = space.areas.find(area_id);
  assert(it != space.areas.end());
  const Area area = it->second;
  for (std::uint64_t i = 0; i < area.pages; ++i) {
    const std::uint64_t vpage = area.base_vpage + i;
    const auto pte_it = space.table.find(vpage);
    if (pte_it == space.table.end()) {
      continue;
    }
    if (pte_it->second.state == PteState::kResident) {
      mem_->Remove(pte_it->second.ref);
    } else if (pte_it->second.state == PteState::kSwapped) {
      FreeSwapSlot(pte_it->second.swap_slot);
    }
    space.table.erase(pte_it);
  }
  space.areas.erase(it);
}

VmTouchResult Vm::Touch(Pid pid, VmAreaId area_id, std::uint64_t index, bool write) {
  ProcessSpace& space = spaces_[pid];
  const auto area_it = space.areas.find(area_id);
  assert(area_it != space.areas.end());
  assert(index < area_it->second.pages);
  const std::uint64_t vpage = area_it->second.base_vpage + index;

  VmTouchResult result;
  Pte& pte = space.table[vpage];
  switch (pte.state) {
    case PteState::kResident:
      mem_->Touch(pte.ref);
      result.outcome = TouchOutcome::kResident;
      return result;
    case PteState::kUnmapped: {
      if (!write) {
        // Copy-on-write zero page: no frame allocated.
        result.outcome = TouchOutcome::kZeroRead;
        return result;
      }
      const auto ref =
          mem_->Insert(Page{PageKind::kAnon, pid, vpage, /*dirty=*/true}, &result.evict_cost);
      if (!ref.has_value()) {
        result.outcome = TouchOutcome::kDenied;
        return result;
      }
      pte.state = PteState::kResident;
      pte.ref = *ref;
      result.outcome = TouchOutcome::kZeroFill;
      return result;
    }
    case PteState::kSwapped: {
      const std::uint64_t slot = pte.swap_slot;
      const auto ref =
          mem_->Insert(Page{PageKind::kAnon, pid, vpage, /*dirty=*/true}, &result.evict_cost);
      if (!ref.has_value()) {
        result.outcome = TouchOutcome::kDenied;
        return result;
      }
      FreeSwapSlot(slot);
      pte.state = PteState::kResident;
      pte.ref = *ref;
      result.outcome = TouchOutcome::kSwapIn;
      result.swap_slot = slot;
      return result;
    }
  }
  return result;
}

std::uint64_t Vm::OnEvicted(const Page& page) {
  const Pid pid = static_cast<Pid>(page.key1);
  const std::uint64_t vpage = page.key2;
  ProcessSpace& space = spaces_.at(pid);
  const auto it = space.table.find(vpage);
  assert(it != space.table.end());
  assert(it->second.state == PteState::kResident);
  const std::uint64_t slot = AllocSwapSlot();
  it->second.state = PteState::kSwapped;
  it->second.swap_slot = slot;
  return slot;
}

std::uint64_t Vm::ResidentPages(Pid pid) const {
  const auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return 0;
  }
  std::uint64_t n = 0;
  for (const auto& [vpage, pte] : it->second.table) {
    if (pte.state == PteState::kResident) {
      ++n;
    }
  }
  return n;
}

std::uint64_t Vm::AreaPages(Pid pid, VmAreaId area) const {
  const auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return 0;
  }
  const auto area_it = it->second.areas.find(area);
  return area_it == it->second.areas.end() ? 0 : area_it->second.pages;
}

bool Vm::PageResident(Pid pid, VmAreaId area, std::uint64_t index) const {
  const auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return false;
  }
  const auto area_it = it->second.areas.find(area);
  if (area_it == it->second.areas.end()) {
    return false;
  }
  const auto pte_it = it->second.table.find(area_it->second.base_vpage + index);
  return pte_it != it->second.table.end() && pte_it->second.state == PteState::kResident;
}

void Vm::ReleaseProcess(Pid pid) {
  const auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return;
  }
  for (auto& [vpage, pte] : it->second.table) {
    if (pte.state == PteState::kResident) {
      mem_->Remove(pte.ref);
    } else if (pte.state == PteState::kSwapped) {
      FreeSwapSlot(pte.swap_slot);
    }
  }
  spaces_.erase(it);
}

std::uint64_t Vm::AllocSwapSlot() {
  if (!free_swap_slots_.empty()) {
    const std::uint64_t slot = free_swap_slots_.back();
    free_swap_slots_.pop_back();
    return slot;
  }
  return next_swap_slot_++;
}

void Vm::FreeSwapSlot(std::uint64_t slot) { free_swap_slots_.push_back(slot); }

}  // namespace graysim
