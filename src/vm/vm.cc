#include "src/vm/vm.h"

#include <algorithm>
#include <cassert>

namespace graysim {

VmAreaId Vm::Alloc(Pid pid, std::uint64_t pages) {
  ProcessSpace& space = SpaceFor(pid);
  const VmAreaId id = next_area_++;
  space.areas.push_back(Area{id, space.next_vpage, pages});
  space.next_vpage += pages;
  space.table.resize(space.next_vpage);
  return id;
}

void Vm::Free(Pid pid, VmAreaId area_id) {
  ProcessSpace& space = SpaceFor(pid);
  const Area* area_ptr = FindArea(space, area_id);
  assert(area_ptr != nullptr);
  const Area area = *area_ptr;
  for (std::uint64_t i = 0; i < area.pages; ++i) {
    Pte& pte = space.table[area.base_vpage + i];
    if (pte.state() == PteState::kResident) {
      mem_->Remove(pte.ref());
    } else if (pte.state() == PteState::kSwapped) {
      FreeSwapSlot(pte.swap_slot());
    }
    pte = Pte{};
  }
  space.areas.erase(
      std::find_if(space.areas.begin(), space.areas.end(),
                   [area_id](const Area& a) { return a.id == area_id; }));
}

VmTouchResult Vm::Touch(Pid pid, VmAreaId area_id, std::uint64_t index, bool write) {
  ProcessSpace& space = SpaceFor(pid);
  const Area* area = FindArea(space, area_id);
  assert(area != nullptr);
  assert(index < area->pages);
  const std::uint64_t vpage = area->base_vpage + index;

  VmTouchResult result;
  Pte& pte = space.table[vpage];
  switch (pte.state()) {
    case PteState::kResident:
      mem_->Touch(pte.ref());
      result.outcome = TouchOutcome::kResident;
      return result;
    case PteState::kUnmapped: {
      if (!write) {
        // Copy-on-write zero page: no frame allocated.
        result.outcome = TouchOutcome::kZeroRead;
        return result;
      }
      const FrameId ref =
          mem_->Insert(Page{PageKind::kAnon, pid, vpage, /*dirty=*/true}, &result.evict_cost);
      if (ref == kNoFrame) {
        result.outcome = TouchOutcome::kDenied;
        return result;
      }
      pte.SetResident(ref);
      result.outcome = TouchOutcome::kZeroFill;
      return result;
    }
    case PteState::kSwapped: {
      const std::uint64_t slot = pte.swap_slot();
      const FrameId ref =
          mem_->Insert(Page{PageKind::kAnon, pid, vpage, /*dirty=*/true}, &result.evict_cost);
      if (ref == kNoFrame) {
        result.outcome = TouchOutcome::kDenied;
        return result;
      }
      FreeSwapSlot(slot);
      pte.SetResident(ref);
      result.outcome = TouchOutcome::kSwapIn;
      result.swap_slot = slot;
      return result;
    }
  }
  return result;
}

std::uint64_t Vm::OnEvicted(const Page& page) {
  const Pid pid = static_cast<Pid>(page.key1);
  const std::uint64_t vpage = page.key2;
  assert(pid < spaces_.size() && vpage < spaces_[pid].table.size());
  Pte& pte = spaces_[pid].table[vpage];
  assert(pte.state() == PteState::kResident);
  const std::uint64_t slot = AllocSwapSlot();
  pte.SetSwapped(slot);
  return slot;
}

std::uint64_t Vm::ResidentPages(Pid pid) const {
  const ProcessSpace* space = FindSpace(pid);
  if (space == nullptr) {
    return 0;
  }
  std::uint64_t n = 0;
  for (const Pte& pte : space->table) {
    if (pte.state() == PteState::kResident) {
      ++n;
    }
  }
  return n;
}

std::uint64_t Vm::AreaPages(Pid pid, VmAreaId area) const {
  const ProcessSpace* space = FindSpace(pid);
  if (space == nullptr) {
    return 0;
  }
  const Area* a = FindArea(*space, area);
  return a == nullptr ? 0 : a->pages;
}

bool Vm::PageResident(Pid pid, VmAreaId area, std::uint64_t index) const {
  const ProcessSpace* space = FindSpace(pid);
  if (space == nullptr) {
    return false;
  }
  const Area* a = FindArea(*space, area);
  if (a == nullptr) {
    return false;
  }
  const Pte& pte = space->table[a->base_vpage + index];
  return pte.state() == PteState::kResident;
}

void Vm::ReleaseProcess(Pid pid) {
  if (pid >= spaces_.size()) {
    return;
  }
  ProcessSpace& space = spaces_[pid];
  // Walk the table in vpage order: frame releases and swap-slot frees happen
  // in a fixed order regardless of how the pages were faulted in.
  for (const Pte& pte : space.table) {
    if (pte.state() == PteState::kResident) {
      mem_->Remove(pte.ref());
    } else if (pte.state() == PteState::kSwapped) {
      FreeSwapSlot(pte.swap_slot());
    }
  }
  space = ProcessSpace{};
}

void Vm::SerializeTo(ByteWriter& w) const {
  w.U64(spaces_.size());
  for (const ProcessSpace& s : spaces_) {
    w.U64(s.next_vpage);
    w.U64(s.areas.size());
    for (const Area& a : s.areas) {
      w.U64(a.id);
      w.U64(a.base_vpage);
      w.U64(a.pages);
    }
    w.U64(s.table.size());
    for (const Pte& pte : s.table) {
      w.U64(pte.raw());
    }
  }
  w.U64(next_area_);
  w.U64(next_swap_slot_);
  w.U64(free_swap_slots_.size());
  for (const std::uint64_t slot : free_swap_slots_) {
    w.U64(slot);
  }
}

bool Vm::DeserializeFrom(ByteReader& r) {
  spaces_.clear();
  spaces_.resize(r.Count(8));
  for (ProcessSpace& s : spaces_) {
    s.next_vpage = r.U64();
    s.areas.resize(r.Count(24));
    for (Area& a : s.areas) {
      a.id = r.U64();
      a.base_vpage = r.U64();
      a.pages = r.U64();
    }
    s.table.resize(r.Count(8));
    for (Pte& pte : s.table) {
      pte.set_raw(r.U64());
    }
  }
  next_area_ = r.U64();
  next_swap_slot_ = r.U64();
  free_swap_slots_.resize(r.Count(8));
  for (std::uint64_t& slot : free_swap_slots_) {
    slot = r.U64();
  }
  return r.ok();
}

std::uint64_t Vm::AllocSwapSlot() {
  if (!free_swap_slots_.empty()) {
    const std::uint64_t slot = free_swap_slots_.back();
    free_swap_slots_.pop_back();
    return slot;
  }
  return next_swap_slot_++;
}

void Vm::FreeSwapSlot(std::uint64_t slot) { free_swap_slots_.push_back(slot); }

}  // namespace graysim
