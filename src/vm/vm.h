// Virtual memory: per-process anonymous regions, demand zero-fill, swap.
//
// Semantics MAC depends on (paper §4.3.1):
//  * reading an unallocated page hits the copy-on-write zero page and does
//    NOT allocate a frame — probes must *write*;
//  * the first write allocates and zero-fills a frame (medium cost);
//  * a write to a swapped-out page pays a swap-in disk read (slow);
//  * frames come from the shared MemSystem pool, so anonymous demand
//    competes with the file cache exactly as in a unified VM system.
//
// Hot-path layout: process spaces live in a vector indexed by pid (pids are
// small and densely assigned by the Os), and because vpages are handed out
// sequentially per process, the page table is a dense vector indexed by
// vpage — the touch path, the single most frequent operation in MAC's probe
// loops, is two array indexes and no hashing at all. Areas are a short
// inline list (processes map a handful of regions) searched linearly.
#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/mem/mem_system.h"
#include "src/sim/byte_io.h"
#include "src/sim/clock.h"

namespace graysim {

using Pid = std::uint32_t;
using VmAreaId = std::uint64_t;

enum class TouchOutcome : std::uint8_t {
  kResident,   // already mapped: fast
  kZeroFill,   // first write: frame allocated and zeroed
  kZeroRead,   // read of unallocated page: COW zero page, no allocation
  kSwapIn,     // page was swapped out: disk read required
  kDenied,     // no frame could be obtained (pool exhausted and nothing
               // evictable)
};

struct VmTouchResult {
  TouchOutcome outcome = TouchOutcome::kResident;
  Nanos evict_cost = 0;          // writeback/swap-out I/O triggered by reclaim
  std::uint64_t swap_slot = 0;   // valid when outcome == kSwapIn
};

class Vm {
 public:
  explicit Vm(MemSystem* mem) : mem_(mem) {}

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Reserves `pages` of address space; no frames are allocated yet.
  [[nodiscard]] VmAreaId Alloc(Pid pid, std::uint64_t pages);

  // Releases the region, freeing resident frames and swap slots.
  void Free(Pid pid, VmAreaId area);

  // Touches page `index` within `area`. The Os layer translates the outcome
  // into time.
  [[nodiscard]] VmTouchResult Touch(Pid pid, VmAreaId area, std::uint64_t index, bool write);

  // Eviction callback: assigns a swap slot and unmaps. Returns the slot so
  // the Os can charge the swap-out write.
  std::uint64_t OnEvicted(const Page& page);

  [[nodiscard]] std::uint64_t ResidentPages(Pid pid) const;
  [[nodiscard]] std::uint64_t AreaPages(Pid pid, VmAreaId area) const;
  [[nodiscard]] bool PageResident(Pid pid, VmAreaId area, std::uint64_t index) const;

  // Releases everything belonging to a process (exit).
  void ReleaseProcess(Pid pid);

  // Copies another Vm's simulation state (machine snapshot/fork): page
  // tables, area lists, and swap-slot accounting. The PTE frame ids refer
  // into the MemSystem slab, which the owner copies alongside; mem_ stays
  // bound to this Vm's own MemSystem.
  void CopyStateFrom(const Vm& other) {
    spaces_ = other.spaces_;
    next_area_ = other.next_area_;
    next_swap_slot_ = other.next_swap_slot_;
    free_swap_slots_ = other.free_swap_slots_;
  }

  // Heap footprint of the page tables (snapshot-size accounting).
  [[nodiscard]] std::uint64_t ApproxBytes() const {
    std::uint64_t bytes = sizeof(Vm) + free_swap_slots_.capacity() * sizeof(std::uint64_t);
    for (const ProcessSpace& s : spaces_) {
      bytes += s.areas.capacity() * sizeof(Area) + s.table.capacity() * sizeof(Pte);
    }
    return bytes;
  }

  // Durable checkpoint serialization (machine_image_io). PTEs are written as
  // their raw packed 64-bit form; the frame ids inside refer into the
  // MemSystem slab serialized alongside. The mru_area hint is derived state
  // and is not written.
  void SerializeTo(ByteWriter& w) const;
  [[nodiscard]] bool DeserializeFrom(ByteReader& r);

 private:
  enum class PteState : std::uint8_t { kUnmapped, kResident, kSwapped };

  // Packed to 8 bytes — [63:62] state, [61:32] swap slot, [31:0] frame id —
  // so a page-table cache line covers 8 entries; the touch path reads
  // exactly one line per access. 2^30 swap slots bounds the swap device at
  // 4 TB of 4 KB slots, far beyond any simulated machine.
  class Pte {
   public:
    [[nodiscard]] PteState state() const { return static_cast<PteState>(bits_ >> 62); }
    [[nodiscard]] MemSystem::PageRef ref() const {
      return static_cast<MemSystem::PageRef>(bits_ & 0xFFFFFFFFULL);
    }
    [[nodiscard]] std::uint64_t swap_slot() const { return (bits_ >> 32) & kSlotMask; }

    void SetResident(MemSystem::PageRef ref) {
      bits_ = (static_cast<std::uint64_t>(PteState::kResident) << 62) | ref;
    }
    void SetSwapped(std::uint64_t slot) {
      assert(slot <= kSlotMask);
      bits_ = (static_cast<std::uint64_t>(PteState::kSwapped) << 62) | (slot << 32);
    }

    // Checkpoint form: the packed word itself (state/slot/frame in one).
    [[nodiscard]] std::uint64_t raw() const { return bits_; }
    void set_raw(std::uint64_t bits) { bits_ = bits; }

   private:
    static constexpr std::uint64_t kSlotMask = (1ULL << 30) - 1;
    std::uint64_t bits_ = 0;  // kUnmapped == 0: fresh entries are unmapped
  };

  struct Area {
    VmAreaId id = 0;
    std::uint64_t base_vpage = 0;
    std::uint64_t pages = 0;
  };

  struct ProcessSpace {
    std::uint64_t next_vpage = 1;
    std::vector<Area> areas;  // short; searched linearly by id
    std::vector<Pte> table;   // dense, indexed by vpage; sized by Alloc
    // Last-hit index into areas. Touch streams hammer one area at a time
    // (probe loops walk a chunk page by page), so this turns the per-touch
    // area lookup into one compare. Validated before use — a stale hint
    // after Free just falls back to the scan. Derived state: not
    // snapshotted, never affects results.
    std::size_t mru_area = 0;
  };

  // Grows the space vector on first touch of a pid (matching the previous
  // create-on-use map semantics).
  [[nodiscard]] ProcessSpace& SpaceFor(Pid pid) {
    if (pid >= spaces_.size()) {
      spaces_.resize(pid + 1);
    }
    return spaces_[pid];
  }
  [[nodiscard]] const ProcessSpace* FindSpace(Pid pid) const {
    return pid < spaces_.size() ? &spaces_[pid] : nullptr;
  }

  [[nodiscard]] static const Area* FindArea(const ProcessSpace& space, VmAreaId id) {
    for (const Area& a : space.areas) {
      if (a.id == id) {
        return &a;
      }
    }
    return nullptr;
  }
  // Hot-path variant: remembers the hit so the next lookup of the same
  // area (the overwhelmingly common case in touch loops) is one compare.
  [[nodiscard]] static const Area* FindArea(ProcessSpace& space, VmAreaId id) {
    if (space.mru_area < space.areas.size() && space.areas[space.mru_area].id == id) {
      return &space.areas[space.mru_area];
    }
    for (std::size_t i = 0; i < space.areas.size(); ++i) {
      if (space.areas[i].id == id) {
        space.mru_area = i;
        return &space.areas[i];
      }
    }
    return nullptr;
  }

  [[nodiscard]] std::uint64_t AllocSwapSlot();
  void FreeSwapSlot(std::uint64_t slot);

  MemSystem* mem_;
  std::vector<ProcessSpace> spaces_;  // indexed by pid
  VmAreaId next_area_ = 1;
  std::uint64_t next_swap_slot_ = 0;
  std::vector<std::uint64_t> free_swap_slots_;
};

}  // namespace graysim

#endif  // SRC_VM_VM_H_
