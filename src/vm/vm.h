// Virtual memory: per-process anonymous regions, demand zero-fill, swap.
//
// Semantics MAC depends on (paper §4.3.1):
//  * reading an unallocated page hits the copy-on-write zero page and does
//    NOT allocate a frame — probes must *write*;
//  * the first write allocates and zero-fills a frame (medium cost);
//  * a write to a swapped-out page pays a swap-in disk read (slow);
//  * frames come from the shared MemSystem pool, so anonymous demand
//    competes with the file cache exactly as in a unified VM system.
#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/mem/mem_system.h"
#include "src/sim/clock.h"

namespace graysim {

using Pid = std::uint32_t;
using VmAreaId = std::uint64_t;

enum class TouchOutcome : std::uint8_t {
  kResident,   // already mapped: fast
  kZeroFill,   // first write: frame allocated and zeroed
  kZeroRead,   // read of unallocated page: COW zero page, no allocation
  kSwapIn,     // page was swapped out: disk read required
  kDenied,     // no frame could be obtained (pool exhausted and nothing
               // evictable)
};

struct VmTouchResult {
  TouchOutcome outcome = TouchOutcome::kResident;
  Nanos evict_cost = 0;          // writeback/swap-out I/O triggered by reclaim
  std::uint64_t swap_slot = 0;   // valid when outcome == kSwapIn
};

class Vm {
 public:
  explicit Vm(MemSystem* mem) : mem_(mem) {}

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Reserves `pages` of address space; no frames are allocated yet.
  [[nodiscard]] VmAreaId Alloc(Pid pid, std::uint64_t pages);

  // Releases the region, freeing resident frames and swap slots.
  void Free(Pid pid, VmAreaId area);

  // Touches page `index` within `area`. The Os layer translates the outcome
  // into time.
  [[nodiscard]] VmTouchResult Touch(Pid pid, VmAreaId area, std::uint64_t index, bool write);

  // Eviction callback: assigns a swap slot and unmaps. Returns the slot so
  // the Os can charge the swap-out write.
  std::uint64_t OnEvicted(const Page& page);

  [[nodiscard]] std::uint64_t ResidentPages(Pid pid) const;
  [[nodiscard]] std::uint64_t AreaPages(Pid pid, VmAreaId area) const;
  [[nodiscard]] bool PageResident(Pid pid, VmAreaId area, std::uint64_t index) const;

  // Releases everything belonging to a process (exit).
  void ReleaseProcess(Pid pid);

 private:
  enum class PteState : std::uint8_t { kUnmapped, kResident, kSwapped };

  struct Pte {
    PteState state = PteState::kUnmapped;
    MemSystem::PageRef ref;       // valid when kResident
    std::uint64_t swap_slot = 0;  // valid when kSwapped
  };

  struct Area {
    std::uint64_t base_vpage = 0;
    std::uint64_t pages = 0;
  };

  struct ProcessSpace {
    std::uint64_t next_vpage = 1;
    std::unordered_map<VmAreaId, Area> areas;
    std::unordered_map<std::uint64_t, Pte> table;  // vpage -> pte
  };

  [[nodiscard]] std::uint64_t AllocSwapSlot();
  void FreeSwapSlot(std::uint64_t slot);

  MemSystem* mem_;
  std::unordered_map<Pid, ProcessSpace> spaces_;
  VmAreaId next_area_ = 1;
  std::uint64_t next_swap_slot_ = 0;
  std::vector<std::uint64_t> free_swap_slots_;
};

}  // namespace graysim

#endif  // SRC_VM_VM_H_
