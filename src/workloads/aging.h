// Directory-aging driver (paper §4.2.3, Fig 6).
//
// One epoch deletes `files_per_epoch` random files from the directory and
// creates the same number of new ones, which land in freed inode slots and
// data holes — gradually destroying the i-number/layout correlation.
#ifndef SRC_WORKLOADS_AGING_H_
#define SRC_WORKLOADS_AGING_H_

#include <string>
#include <vector>

#include "src/os/os.h"
#include "src/sim/rng.h"

namespace graywork {

class DirectoryAger {
 public:
  DirectoryAger(graysim::Os* os, graysim::Pid pid, std::string dir,
                std::uint64_t file_bytes, std::uint64_t seed)
      : os_(os), pid_(pid), dir_(std::move(dir)), file_bytes_(file_bytes), rng_(seed) {}

  // Runs one delete-5/create-5 epoch (counts configurable). Returns the
  // number of operations that failed (unlinks or file creations) — 0 on a
  // clean epoch; callers that don't care can ignore it.
  int RunEpoch(int files_per_epoch = 5);

  // Current file paths in the directory.
  [[nodiscard]] std::vector<std::string> Files() const;

 private:
  graysim::Os* os_;
  graysim::Pid pid_;
  std::string dir_;
  std::uint64_t file_bytes_;
  graysim::Rng rng_;
  std::uint64_t next_name_ = 0;
};

}  // namespace graywork

#endif  // SRC_WORKLOADS_AGING_H_
