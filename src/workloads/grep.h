// grep-like scanning workloads (paper §4.1.3 and Fig 3/4).
//
// Three variants of each run, mirroring the paper's application study:
//  * Unmodified: scans files in the order given (what GNU grep does);
//  * GrayBox (gb-grep): internally reorders files with the FCCD (the
//    "10 lines became 30" modification);
//  * WithGbp: the unmodified scan fed by `gbp` output — same ordering
//    benefit plus the extra fork/exec and the redundant opens the paper
//    measures.
//
// The scan itself reads each file sequentially in 64 KB requests and burns
// CPU at the configured scan rate.
#ifndef SRC_WORKLOADS_GREP_H_
#define SRC_WORKLOADS_GREP_H_

#include <span>
#include <string>
#include <vector>

#include "src/gray/gbp/gbp.h"
#include "src/os/os.h"

namespace graywork {

struct GrepResult {
  graysim::Nanos elapsed = 0;
  std::uint64_t bytes_scanned = 0;
  int files_scanned = 0;
  int io_errors = 0;  // failed stat/open/pread calls (chaos EIO, missing files)
  bool found = false;
};

class Grep {
 public:
  Grep(graysim::Os* os, graysim::Pid pid) : os_(os), pid_(pid) {}

  // Full scan of every file, in the given order.
  GrepResult Run(std::span<const std::string> paths);

  // gb-grep: reorders the file list with the FCCD first.
  GrepResult RunGrayBox(std::span<const std::string> paths);

  // Unmodified grep over `gbp <mode> *` output: adds the fork/exec of gbp
  // and gbp's own probe opens before the scan.
  GrepResult RunWithGbp(std::span<const std::string> paths, gray::GbpMode mode);

  // Search variant (Fig 4): scans until the file containing the match is
  // processed, then stops. `gray_order` reorders with FCCD first.
  GrepResult RunSearch(std::span<const std::string> paths, const std::string& match_path,
                       bool gray_order);

 private:
  // Scans one file completely; returns bytes read and counts failed
  // syscalls into *io_errors.
  std::uint64_t ScanFile(const std::string& path, int* io_errors);

  graysim::Os* os_;
  graysim::Pid pid_;
};

}  // namespace graywork

#endif  // SRC_WORKLOADS_GREP_H_
