#include "src/workloads/aging.h"

#include "src/workloads/filegen.h"

namespace graywork {

int DirectoryAger::RunEpoch(int files_per_epoch) {
  int errors = 0;
  std::vector<std::string> files = Files();
  for (int i = 0; i < files_per_epoch && !files.empty(); ++i) {
    const std::size_t victim = rng_.Below(files.size());
    if (os_->Unlink(pid_, files[victim]) < 0) {
      ++errors;
    }
    files.erase(files.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  for (int i = 0; i < files_per_epoch; ++i) {
    const std::string path = dir_ + "/aged" + std::to_string(next_name_++);
    if (!MakeFile(*os_, pid_, path, file_bytes_)) {
      ++errors;
    }
  }
  return errors;
}

std::vector<std::string> DirectoryAger::Files() const {
  std::vector<graysim::DirEntryInfo> entries;
  std::vector<std::string> files;
  if (os_->ReadDir(pid_, dir_, &entries) == 0) {
    for (const auto& e : entries) {
      if (!e.is_dir) {
        files.push_back(dir_ + "/" + e.name);
      }
    }
  }
  return files;
}

}  // namespace graywork
