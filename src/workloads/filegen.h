// File-set generation helpers shared by tests, examples, and benches.
#ifndef SRC_WORKLOADS_FILEGEN_H_
#define SRC_WORKLOADS_FILEGEN_H_

#include <string>
#include <vector>

#include "src/os/os.h"

namespace graywork {

// Creates (or truncates) a file of `bytes` by sequential writes; fsyncs.
// Returns false on failure.
bool MakeFile(graysim::Os& os, graysim::Pid pid, const std::string& path,
              std::uint64_t bytes);

// Creates `count` files of `bytes` each under `dir` (created if missing),
// named <prefix><i>. Returns their paths in creation order.
std::vector<std::string> MakeFileSet(graysim::Os& os, graysim::Pid pid,
                                     const std::string& dir, int count,
                                     std::uint64_t bytes,
                                     const std::string& prefix = "f");

}  // namespace graywork

#endif  // SRC_WORKLOADS_FILEGEN_H_
