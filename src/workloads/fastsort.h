// fastsort: the paper's highly tuned two-pass disk-to-disk sort (§4.1.3,
// §4.3.3; modeled on Agarwal's super-scalar sort).
//
// Pass structure: read up to one pass of 100-byte records into a memory
// buffer, sort the keys, write a sorted run; repeat; (optionally) merge the
// runs. Three knobs reproduce the paper's variants:
//  * read ordering: linear / FCCD plan (gb-fastsort's modified read loop) /
//    gbp -out pipe (unmodified sort reading the reordered stream);
//  * pass sizing: static (command-line) or MAC gb_alloc (gb-fastsort);
//  * phase accounting: read/sort/write plus MAC probe and wait overheads.
#ifndef SRC_WORKLOADS_FASTSORT_H_
#define SRC_WORKLOADS_FASTSORT_H_

#include <string>

#include "src/gray/mac/mac.h"
#include "src/os/os.h"

namespace graywork {

enum class ReadOrder : std::uint8_t {
  kLinear,   // unmodified
  kFccd,     // gb-fastsort: probe + in-cache-first access plan
  kGbpPipe,  // unmodified sort reading `gbp -mem -out` through a pipe
};

struct FastsortOptions {
  std::string input;
  std::string run_dir;  // sorted runs land here (same disk by default)
  std::uint64_t record_bytes = 100;
  // Static pass size; ignored when use_mac is true. Rounded down to records.
  std::uint64_t pass_bytes = 150ULL * 1024 * 1024;
  bool use_mac = false;
  std::uint64_t mac_min = 100ULL * 1024 * 1024;
  std::uint64_t mac_max = 0;  // 0 = remaining input
  gray::MacOptions mac;
  ReadOrder read_order = ReadOrder::kLinear;
  bool write_runs = true;  // false = read phase only (Fig 3)
};

struct FastsortReport {
  graysim::Nanos total = 0;
  graysim::Nanos read = 0;
  graysim::Nanos sort = 0;
  graysim::Nanos write = 0;
  graysim::Nanos probe_overhead = 0;  // time inside MAC probing
  graysim::Nanos wait_overhead = 0;   // time waiting for admission
  int passes = 0;
  int io_errors = 0;  // failed stat/open/pread/creat/pwrite calls
  std::uint64_t bytes_sorted = 0;
  double avg_pass_mb = 0.0;
};

struct MergeReport {
  graysim::Nanos total = 0;
  std::uint64_t bytes_merged = 0;
  int runs_merged = 0;
};

class Fastsort {
 public:
  Fastsort(graysim::Os* os, graysim::Pid pid) : os_(os), pid_(pid) {}

  // Runs the pass loop (read [+ sort + write]) over the whole input.
  FastsortReport Run(const FastsortOptions& options);

  // Second pass of the two-pass sort: merges the sorted runs in `run_dir`
  // into `output_path` (paper §4.1.3: "reads the sorted runs from disk,
  // merges them into a single sorted list, and writes the final output").
  // Reads all runs in interleaved chunks — the access pattern that makes
  // merge performance insensitive to the pass size (paper §4.3.3: "we do
  // not execute the merge phase, since its performance is not as
  // sensitive...").
  MergeReport Merge(const FastsortOptions& options, const std::string& output_path);

 private:
  graysim::Os* os_;
  graysim::Pid pid_;
};

}  // namespace graywork

#endif  // SRC_WORKLOADS_FASTSORT_H_
