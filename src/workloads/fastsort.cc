#include "src/workloads/fastsort.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <vector>

#include "src/gray/fccd/fccd.h"
#include "src/gray/gbp/gbp.h"
#include "src/gray/sim_sys.h"

namespace graywork {

using graysim::Nanos;
using graysim::Os;
using graysim::Pid;
using graysim::VmAreaId;

namespace {

constexpr std::uint64_t kChunk = 1ULL * 1024 * 1024;

// A pass buffer backed either by a MAC allocation or a plain VM area.
class PassBuffer {
 public:
  static PassBuffer FromMac(gray::GbAllocation allocation) {
    PassBuffer b;
    b.mac_alloc_ = std::move(allocation);
    b.from_mac_ = true;
    return b;
  }
  static PassBuffer FromVm(Os* os, Pid pid, std::uint64_t bytes) {
    PassBuffer b;
    b.os_ = os;
    b.pid_ = pid;
    b.area_ = os->VmAlloc(pid, bytes);
    return b;
  }

  void Touch(Os* os, Pid pid, std::uint64_t page, bool write) {
    if (from_mac_) {
      mac_alloc_.Touch(page, write);
    } else {
      os->VmTouch(pid, area_, page, write);
    }
  }

  void Free(Os* os, Pid pid) {
    if (from_mac_) {
      mac_alloc_.Release();
    } else if (area_ != 0) {
      os->VmFree(pid, area_);
      area_ = 0;
    }
  }

 private:
  bool from_mac_ = false;
  gray::GbAllocation mac_alloc_;
  Os* os_ = nullptr;
  Pid pid_ = 0;
  VmAreaId area_ = 0;
};

// Byte ranges of the input in read order, regardless of ordering policy.
std::deque<gray::Extent> BuildReadStream(Os* os, Pid pid, const FastsortOptions& options,
                                         std::uint64_t input_size, Nanos* plan_cost) {
  std::deque<gray::Extent> stream;
  switch (options.read_order) {
    case ReadOrder::kLinear:
      stream.push_back(gray::Extent{0, input_size});
      return stream;
    case ReadOrder::kFccd: {
      gray::SimSys sys(os, pid);
      gray::FccdOptions fccd_options;
      fccd_options.align = options.record_bytes;
      gray::Fccd fccd(&sys, fccd_options);
      const Nanos t0 = os->Now();
      const auto plan = fccd.PlanFile(options.input);
      *plan_cost += os->Now() - t0;
      if (!plan.has_value()) {
        stream.push_back(gray::Extent{0, input_size});
        return stream;
      }
      for (const gray::UnitPlan& u : plan->units) {
        stream.push_back(u.extent);
      }
      return stream;
    }
    case ReadOrder::kGbpPipe: {
      gray::SimSys sys(os, pid);
      // fork+exec of the gbp process.
      os->Compute(pid, os->costs().fork_exec);
      gray::GbpOptions gbp_options;
      gbp_options.align = options.record_bytes;
      const Nanos t0 = os->Now();
      const gray::GbpOutPlan plan = gray::GbpPlanOut(&sys, gbp_options, options.input);
      *plan_cost += os->Now() - t0;
      for (const gray::Extent& e : plan.extents) {
        stream.push_back(e);
      }
      if (stream.empty()) {
        stream.push_back(gray::Extent{0, input_size});
      }
      return stream;
    }
  }
  return stream;
}

}  // namespace

FastsortReport Fastsort::Run(const FastsortOptions& options) {
  FastsortReport report;
  graysim::InodeAttr attr;
  if (os_->Stat(pid_, options.input, &attr) < 0) {
    ++report.io_errors;
    return report;
  }
  if (attr.size == 0) {
    return report;
  }
  const std::uint64_t input_size = attr.size / options.record_bytes * options.record_bytes;
  const std::uint64_t ps = os_->page_size();
  const Nanos run_start = os_->Now();

  Nanos plan_cost = 0;
  std::deque<gray::Extent> stream =
      BuildReadStream(os_, pid_, options, input_size, &plan_cost);
  report.probe_overhead += plan_cost;

  const int fd = os_->Open(pid_, options.input);
  if (fd < 0) {
    ++report.io_errors;
    return report;
  }
  if (options.write_runs) {
    (void)os_->Mkdir(pid_, options.run_dir);
  }

  gray::SimSys sys(os_, pid_);
  std::optional<gray::Mac> mac;
  if (options.use_mac) {
    mac.emplace(&sys, options.mac);
  }

  std::uint64_t remaining = input_size;
  double pass_mb_sum = 0.0;
  while (remaining > 0) {
    // --- size and allocate the pass buffer ---
    std::uint64_t pass = 0;
    PassBuffer buffer;
    if (options.use_mac) {
      const std::uint64_t max_limit = options.mac_max == 0 ? remaining : options.mac_max;
      const std::uint64_t want_max = std::min(remaining, max_limit);
      const std::uint64_t want_min = std::min(options.mac_min, want_max);
      const gray::MacMetrics before = mac->metrics();
      const Nanos t0 = os_->Now();
      auto allocation = mac->GbAllocBlocking(want_min, want_max, options.record_bytes);
      const Nanos alloc_elapsed = os_->Now() - t0;
      const Nanos wait_delta = mac->metrics().wait_time - before.wait_time;
      report.wait_overhead += wait_delta;
      report.probe_overhead += alloc_elapsed - wait_delta;
      if (!allocation.has_value()) {
        break;  // admission never granted; bail out
      }
      pass = std::min(allocation->bytes(), remaining) / options.record_bytes *
             options.record_bytes;
      buffer = PassBuffer::FromMac(std::move(*allocation));
    } else {
      pass = std::min(options.pass_bytes / options.record_bytes * options.record_bytes,
                      remaining);
      if (pass == 0) {
        pass = std::min<std::uint64_t>(options.record_bytes, remaining);
      }
      buffer = PassBuffer::FromVm(os_, pid_, pass);
    }

    // --- read phase: fill the buffer from the (possibly reordered) stream ---
    Nanos t0 = os_->Now();
    std::uint64_t filled = 0;
    while (filled < pass && !stream.empty()) {
      gray::Extent& e = stream.front();
      const std::uint64_t n = std::min({kChunk, e.length, pass - filled});
      if (os_->Pread(pid_, fd, {}, n, e.offset) < 0) {
        ++report.io_errors;
      }
      if (options.read_order == ReadOrder::kGbpPipe) {
        // The pipe costs one extra copy of the data through the OS.
        os_->Compute(pid_, os_->costs().CopyCost(n));
      }
      for (std::uint64_t p = filled / ps; p <= (filled + n - 1) / ps; ++p) {
        buffer.Touch(os_, pid_, p, /*write=*/true);
      }
      e.offset += n;
      e.length -= n;
      if (e.length == 0) {
        stream.pop_front();
      }
      filled += n;
    }
    report.read += os_->Now() - t0;

    // --- sort phase: permute records in memory ---
    t0 = os_->Now();
    for (std::uint64_t p = 0; filled > 0 && p <= (filled - 1) / ps; ++p) {
      buffer.Touch(os_, pid_, p, /*write=*/true);
    }
    os_->Compute(pid_, os_->costs().SortCost(filled));
    report.sort += os_->Now() - t0;

    // --- write phase: emit the sorted run ---
    if (options.write_runs && filled > 0) {
      t0 = os_->Now();
      const std::string run_path =
          options.run_dir + "/run" + std::to_string(report.passes);
      const int run_fd = os_->Creat(pid_, run_path);
      if (run_fd >= 0) {
        for (std::uint64_t off = 0; off < filled; off += kChunk) {
          const std::uint64_t n = std::min(kChunk, filled - off);
          for (std::uint64_t p = off / ps; p <= (off + n - 1) / ps; ++p) {
            buffer.Touch(os_, pid_, p, /*write=*/false);
          }
          if (os_->Pwrite(pid_, run_fd, n, off) < 0) {
            ++report.io_errors;
          }
        }
        (void)os_->Close(pid_, run_fd);
      } else {
        ++report.io_errors;
      }
      report.write += os_->Now() - t0;
    }

    buffer.Free(os_, pid_);
    remaining -= filled;
    report.bytes_sorted += filled;
    pass_mb_sum += static_cast<double>(filled) / (1024.0 * 1024.0);
    ++report.passes;
    if (filled == 0) {
      break;  // stream exhausted unexpectedly
    }
  }

  (void)os_->Close(pid_, fd);
  report.total = os_->Now() - run_start;
  if (report.passes > 0) {
    report.avg_pass_mb = pass_mb_sum / report.passes;
  }
  return report;
}

MergeReport Fastsort::Merge(const FastsortOptions& options,
                            const std::string& output_path) {
  MergeReport report;
  const Nanos t0 = os_->Now();

  // Discover the sorted runs.
  std::vector<graysim::DirEntryInfo> entries;
  if (os_->ReadDir(pid_, options.run_dir, &entries) < 0) {
    return report;
  }
  struct Run {
    int fd = -1;
    std::uint64_t size = 0;
    std::uint64_t offset = 0;
  };
  std::vector<Run> runs;
  for (const auto& e : entries) {
    if (e.is_dir) {
      continue;
    }
    const std::string path = options.run_dir + "/" + e.name;
    graysim::InodeAttr attr;
    if (os_->Stat(pid_, path, &attr) < 0 || attr.size == 0) {
      continue;
    }
    const int fd = os_->Open(pid_, path);
    if (fd < 0) {
      continue;
    }
    runs.push_back(Run{fd, attr.size, 0});
  }
  report.runs_merged = static_cast<int>(runs.size());
  if (runs.empty()) {
    return report;
  }

  const int out_fd = os_->Creat(pid_, output_path);
  if (out_fd < 0) {
    for (const Run& r : runs) {
      (void)os_->Close(pid_, r.fd);
    }
    return report;
  }

  // Merge consumption: runs drain in interleaved chunks proportional to
  // their sizes (a k-way merge reads from every run as the heads advance).
  std::uint64_t out_offset = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (Run& r : runs) {
      if (r.offset >= r.size) {
        continue;
      }
      const std::uint64_t n = std::min(kChunk, r.size - r.offset);
      (void)os_->Pread(pid_, r.fd, {}, n, r.offset);
      // CPU: heap pops + record copies for this chunk.
      os_->Compute(pid_, os_->costs().ScanCost(n));
      (void)os_->Pwrite(pid_, out_fd, n, out_offset);
      r.offset += n;
      out_offset += n;
      report.bytes_merged += n;
      progress = true;
    }
  }
  (void)os_->Fsync(pid_, out_fd);
  (void)os_->Close(pid_, out_fd);
  for (const Run& r : runs) {
    (void)os_->Close(pid_, r.fd);
  }
  report.total = os_->Now() - t0;
  return report;
}

}  // namespace graywork
