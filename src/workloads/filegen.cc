#include "src/workloads/filegen.h"

#include <algorithm>

namespace graywork {

using graysim::Os;
using graysim::Pid;

bool MakeFile(Os& os, Pid pid, const std::string& path, std::uint64_t bytes) {
  const int fd = os.Creat(pid, path);
  if (fd < 0) {
    return false;
  }
  constexpr std::uint64_t kChunk = 1ULL * 1024 * 1024;
  for (std::uint64_t off = 0; off < bytes; off += kChunk) {
    const std::uint64_t n = std::min(kChunk, bytes - off);
    if (os.Pwrite(pid, fd, n, off) < 0) {
      (void)os.Close(pid, fd);
      return false;
    }
  }
  if (os.Fsync(pid, fd) < 0) {
    (void)os.Close(pid, fd);
    return false;
  }
  return os.Close(pid, fd) == 0;
}

std::vector<std::string> MakeFileSet(Os& os, Pid pid, const std::string& dir, int count,
                                     std::uint64_t bytes, const std::string& prefix) {
  (void)os.Mkdir(pid, dir);
  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string path = dir + "/" + prefix + std::to_string(i);
    if (!MakeFile(os, pid, path, bytes)) {
      break;
    }
    paths.push_back(path);
  }
  return paths;
}

}  // namespace graywork
