#include "src/workloads/grep.h"

#include <algorithm>

#include "src/gray/fccd/fccd.h"
#include "src/gray/sim_sys.h"

namespace graywork {

using graysim::Nanos;

std::uint64_t Grep::ScanFile(const std::string& path, int* io_errors) {
  graysim::InodeAttr attr;
  if (os_->Stat(pid_, path, &attr) < 0) {
    ++*io_errors;
    return 0;
  }
  if (attr.is_dir) {
    return 0;
  }
  const int fd = os_->Open(pid_, path);
  if (fd < 0) {
    ++*io_errors;
    return 0;
  }
  constexpr std::uint64_t kChunk = 64 * 1024;
  std::uint64_t scanned = 0;
  for (std::uint64_t off = 0; off < attr.size; off += kChunk) {
    const std::uint64_t n = std::min(kChunk, attr.size - off);
    if (os_->Pread(pid_, fd, {}, n, off) < 0) {
      ++*io_errors;
      break;
    }
    os_->Compute(pid_, os_->costs().ScanCost(n));
    scanned += n;
  }
  (void)os_->Close(pid_, fd);
  return scanned;
}

GrepResult Grep::Run(std::span<const std::string> paths) {
  GrepResult result;
  const Nanos t0 = os_->Now();
  for (const std::string& path : paths) {
    result.bytes_scanned += ScanFile(path, &result.io_errors);
    ++result.files_scanned;
  }
  result.elapsed = os_->Now() - t0;
  return result;
}

GrepResult Grep::RunGrayBox(std::span<const std::string> paths) {
  GrepResult result;
  const Nanos t0 = os_->Now();
  gray::SimSys sys(os_, pid_);
  gray::Fccd fccd(&sys);
  const std::vector<gray::RankedFile> ranked = fccd.OrderFiles(paths);
  for (const gray::RankedFile& rf : ranked) {
    result.bytes_scanned += ScanFile(rf.path, &result.io_errors);
    ++result.files_scanned;
  }
  result.elapsed = os_->Now() - t0;
  return result;
}

GrepResult Grep::RunWithGbp(std::span<const std::string> paths, gray::GbpMode mode) {
  GrepResult result;
  const Nanos t0 = os_->Now();
  // fork+exec of the gbp process.
  os_->Compute(pid_, os_->costs().fork_exec);
  gray::SimSys sys(os_, pid_);
  gray::GbpOptions options;
  options.mode = mode;
  const gray::GbpFileOrder order = gray::GbpOrderFiles(&sys, options, paths);
  // The unmodified application re-opens every file itself (the "redundant
  // file opens and closes" the paper calls out).
  for (const std::string& path : order.order) {
    result.bytes_scanned += ScanFile(path, &result.io_errors);
    ++result.files_scanned;
  }
  result.elapsed = os_->Now() - t0;
  return result;
}

GrepResult Grep::RunSearch(std::span<const std::string> paths, const std::string& match_path,
                           bool gray_order) {
  GrepResult result;
  const Nanos t0 = os_->Now();
  std::vector<std::string> order(paths.begin(), paths.end());
  if (gray_order) {
    gray::SimSys sys(os_, pid_);
    gray::Fccd fccd(&sys);
    order.clear();
    for (const gray::RankedFile& rf : fccd.OrderFiles(paths)) {
      order.push_back(rf.path);
    }
  }
  for (const std::string& path : order) {
    result.bytes_scanned += ScanFile(path, &result.io_errors);
    ++result.files_scanned;
    if (path == match_path) {
      result.found = true;
      break;
    }
  }
  result.elapsed = os_->Now() - t0;
  return result;
}

}  // namespace graywork
