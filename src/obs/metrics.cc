#include "src/obs/metrics.h"

#include <cmath>
#include <utility>

namespace obs {

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const double target = q * static_cast<double>(count_ - 1);
  double seen = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const double n = static_cast<double>(buckets_[i]);
    if (n == 0.0) {
      continue;
    }
    if (seen + n > target) {
      // Interpolate inside [lo, hi), clamped to the observed min/max so a
      // single-bucket distribution reports its true extremes.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double frac = n <= 1.0 ? 0.0 : (target - seen) / n;
      double v = lo + frac * (hi - lo);
      v = std::max(v, static_cast<double>(min()));
      v = std::min(v, static_cast<double>(max_));
      return v;
    }
    seen += n;
  }
  return static_cast<double>(max_);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
  }
}

void MetricsRegistry::AddGauge(std::string name, std::string unit,
                               std::function<double()> read) {
  entries_.push_back(Entry{std::move(name), std::move(unit), std::move(read), nullptr});
}

void MetricsRegistry::AddCounter(std::string name, const std::uint64_t* source,
                                 std::string unit) {
  entries_.push_back(Entry{std::move(name), std::move(unit),
                           [source] { return static_cast<double>(*source); }, nullptr});
}

void MetricsRegistry::AddHistogram(std::string name, std::string unit,
                                   const Histogram* source) {
  entries_.push_back(Entry{std::move(name), std::move(unit), nullptr, source});
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Collect() const {
  std::vector<Sample> out;
  out.reserve(entries_.size() * 2);
  for (const Entry& e : entries_) {
    if (e.histogram != nullptr) {
      const Histogram& h = *e.histogram;
      out.push_back(Sample{e.name + ".count", static_cast<double>(h.count()), ""});
      out.push_back(Sample{e.name + ".mean", h.mean(), e.unit});
      out.push_back(Sample{e.name + ".p50", h.Quantile(0.50), e.unit});
      out.push_back(Sample{e.name + ".p90", h.Quantile(0.90), e.unit});
      out.push_back(Sample{e.name + ".p99", h.Quantile(0.99), e.unit});
      out.push_back(Sample{e.name + ".max", static_cast<double>(h.max()), e.unit});
    } else {
      out.push_back(Sample{e.name, e.read(), e.unit});
    }
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const Entry& e : entries_) {
    if (e.histogram != nullptr) {
      snap.histograms_.push_back(
          MetricsSnapshot::NamedHistogram{e.name, e.unit, *e.histogram});
    } else {
      snap.scalars_.push_back(MetricsSnapshot::Scalar{e.name, e.read(), e.unit});
    }
  }
  return snap;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const Scalar& theirs : other.scalars_) {
    bool found = false;
    for (Scalar& mine : scalars_) {
      if (mine.name == theirs.name) {
        mine.value += theirs.value;
        found = true;
        break;
      }
    }
    if (!found) {
      scalars_.push_back(theirs);
    }
  }
  for (const NamedHistogram& theirs : other.histograms_) {
    bool found = false;
    for (NamedHistogram& mine : histograms_) {
      if (mine.name == theirs.name) {
        mine.histogram.Merge(theirs.histogram);
        found = true;
        break;
      }
    }
    if (!found) {
      histograms_.push_back(theirs);
    }
  }
}

std::vector<MetricsSnapshot::Scalar> MetricsSnapshot::Samples() const {
  std::vector<Scalar> out;
  out.reserve(scalars_.size() + histograms_.size() * 6);
  out = scalars_;
  for (const NamedHistogram& h : histograms_) {
    const Histogram& hist = h.histogram;
    out.push_back(Scalar{h.name + ".count", static_cast<double>(hist.count()), ""});
    out.push_back(Scalar{h.name + ".mean", hist.mean(), h.unit});
    out.push_back(Scalar{h.name + ".p50", hist.Quantile(0.50), h.unit});
    out.push_back(Scalar{h.name + ".p90", hist.Quantile(0.90), h.unit});
    out.push_back(Scalar{h.name + ".p99", hist.Quantile(0.99), h.unit});
    out.push_back(Scalar{h.name + ".max", static_cast<double>(hist.max()), h.unit});
  }
  return out;
}

const Histogram* MetricsSnapshot::FindHistogram(std::string_view name) const {
  for (const NamedHistogram& h : histograms_) {
    if (h.name == name) {
      return &h.histogram;
    }
  }
  return nullptr;
}

double MetricsSnapshot::ScalarValue(std::string_view name, double fallback) const {
  for (const Scalar& s : scalars_) {
    if (s.name == name) {
      return s.value;
    }
  }
  return fallback;
}

}  // namespace obs
