// Gray-glass metrics: one registry for every counter, gauge, and histogram
// the stack exposes.
//
// Before this layer, diagnostics were ad-hoc: OsStats printed by hand here,
// a ProbeReport printed there, ChaosStats somewhere else. The registry
// replaces the *printing*, not the structs — components keep their cheap
// plain-uint64 counters (the determinism tests compare those structs
// bit-for-bit), and bind them into a registry by name at dump time. Benches
// collect the registry into the results/BENCH_*.json writer, so every run
// ships its kernel-side story next to its timings.
//
// Histograms are log2-bucketed with fixed storage: Record() is a couple of
// arithmetic ops and never allocates, so hot paths (disk service times,
// probe latencies) can feed one unconditionally.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

// Log-bucketed histogram of non-negative 64-bit samples. Bucket 0 holds the
// value 0; bucket i (i >= 1) holds [2^(i-1), 2^i). Fixed storage, so a
// Histogram can live by value inside hot-path objects.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Record(std::uint64_t value) {
    ++buckets_[BucketOf(value)];
    ++count_;
    sum_ += value;
    min_ = value < min_ ? value : min_;
    max_ = value > max_ ? value : max_;
  }

  [[nodiscard]] static int BucketOf(std::uint64_t value) {
    return value == 0 ? 0 : 64 - std::countl_zero(value);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const { return buckets_[i]; }

  // Quantile estimate (q in [0, 1]): finds the bucket holding the q-th
  // sample and interpolates linearly inside it. Log buckets bound the
  // relative error at 2x — plenty for "did p99 move an order of magnitude".
  [[nodiscard]] double Quantile(double q) const;

  void Reset() { *this = Histogram{}; }

  void Merge(const Histogram& other);

  // Checkpoint restore: overwrite with raw captured state. `min` is the
  // value min() reported at capture; an empty histogram re-derives the
  // all-ones sentinel so a later Record() still tracks the true minimum.
  void RestoreRaw(const std::uint64_t buckets[kBuckets], std::uint64_t count,
                  std::uint64_t sum, std::uint64_t min, std::uint64_t max) {
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[i] = buckets[i];
    }
    count_ = count;
    sum_ = sum;
    min_ = count == 0 ? ~std::uint64_t{0} : min;
    max_ = max;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

class MetricsRegistry;

// A self-contained, mergeable copy of a registry's state at one instant:
// scalar values by value and histograms with their full bucket arrays (not
// just pre-computed percentiles, which cannot be combined). This is the
// fleet roll-up unit — each machine snapshots its registry when it
// finishes, the owning shard merges machine snapshots, and the driver
// merges shard snapshots, so fleet-wide p50/p99 come from genuinely merged
// buckets rather than averaged per-machine quantiles.
class MetricsSnapshot {
 public:
  struct Scalar {
    std::string name;
    double value = 0.0;
    std::string unit;
  };
  struct NamedHistogram {
    std::string name;
    std::string unit;
    Histogram histogram;
  };

  // Combines `other` into this snapshot, matching entries by name: scalar
  // values add (counters and gauges both roll up to fleet totals) and
  // histograms merge bucket-wise. Names present only in `other` are
  // appended, so merging heterogeneous machines (different disk counts,
  // chaos on/off) keeps every series.
  void Merge(const MetricsSnapshot& other);

  // Flattens to named samples, histograms expanded exactly like
  // MetricsRegistry::Collect (<name>.count/.mean/.p50/.p90/.p99/.max).
  [[nodiscard]] std::vector<Scalar> Samples() const;

  [[nodiscard]] const Histogram* FindHistogram(std::string_view name) const;
  [[nodiscard]] double ScalarValue(std::string_view name, double fallback = 0.0) const;

  [[nodiscard]] const std::vector<Scalar>& scalars() const { return scalars_; }
  [[nodiscard]] const std::vector<NamedHistogram>& histograms() const { return histograms_; }
  [[nodiscard]] bool empty() const { return scalars_.empty() && histograms_.empty(); }

 private:
  friend class MetricsRegistry;

  std::vector<Scalar> scalars_;
  std::vector<NamedHistogram> histograms_;
};

// A named view over metrics owned elsewhere. Sources are read lazily at
// Collect() time, so one registry bound once stays current run after run.
// Registration allocates (names, closures); binding happens at setup or
// dump time, never on a hot path.
class MetricsRegistry {
 public:
  struct Sample {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  // Pull-gauge: read through an arbitrary closure.
  void AddGauge(std::string name, std::string unit, std::function<double()> read);
  // Monotonic counter read straight from the owner's field. The pointee
  // must outlive the registry's Collect() calls.
  void AddCounter(std::string name, const std::uint64_t* source, std::string unit = "");
  // Histogram: expands to <name>.count/.mean/.p50/.p90/.p99/.max samples.
  void AddHistogram(std::string name, std::string unit, const Histogram* source);

  [[nodiscard]] std::vector<Sample> Collect() const;

  // Reads every source once into an owned, mergeable snapshot (see
  // MetricsSnapshot). Safe to take on the machine's own thread and ship
  // across threads by value.
  [[nodiscard]] MetricsSnapshot Snapshot() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    std::string unit;
    std::function<double()> read;     // null for histograms
    const Histogram* histogram = nullptr;
  };
  std::vector<Entry> entries_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_
