#include "src/obs/trace.h"

namespace obs {

TraceSink::TraceSink() : host_epoch_(std::chrono::steady_clock::now()) {
  track_names_.reserve(kNumWellKnownTracks);
  track_names_.emplace_back("kernel/events");
  track_names_.emplace_back("daemon/flush");
  track_names_.emplace_back("daemon/page");
  track_names_.emplace_back("chaos");
  track_names_.emplace_back("probe");
  track_names_.emplace_back("icl");
}

std::uint32_t TraceSink::RegisterTrack(const std::string& name) {
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) {
      return static_cast<std::uint32_t>(i);
    }
  }
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

void TraceSink::Enable(std::size_t capacity) {
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  host_epoch_ = std::chrono::steady_clock::now();
  enabled_ = true;
}

void TraceSink::Disable() { enabled_ = false; }

void TraceSink::Snapshot(std::vector<TraceEvent>* out) const {
  out->clear();
  out->reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    std::size_t at = head_ + i;
    if (at >= ring_.size()) {
      at -= ring_.size();
    }
    out->push_back(ring_[at]);
  }
}

namespace {

char PhaseLetter(Phase phase) {
  switch (phase) {
    case Phase::kBegin:
      return 'B';
    case Phase::kEnd:
      return 'E';
    case Phase::kInstant:
      return 'i';
    case Phase::kComplete:
      return 'X';
    case Phase::kCounter:
      return 'C';
  }
  return 'i';
}

// Timestamps are microseconds in the trace_event format; three decimals
// keep full nanosecond precision.
double ToUs(Nanos t) { return static_cast<double>(t) / 1e3; }

}  // namespace

bool TraceSink::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  WriteChromeJson(f);
  std::fclose(f);
  return true;
}

void TraceSink::WriteChromeJson(std::FILE* f) const {
  std::fprintf(f, "{\"traceEvents\": [\n");
  std::fprintf(f,
               "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
               "\"args\": {\"name\": \"graysim\"}}");
  for (std::size_t t = 0; t < track_names_.size(); ++t) {
    std::fprintf(f,
                 ",\n  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                 "\"tid\": %zu, \"args\": {\"name\": \"%s\"}}",
                 t, track_names_[t].c_str());
    // Row order in the viewer follows sort_index, not registration order:
    // keep kernel/daemons on top, then disks/fibers as registered.
    std::fprintf(f,
                 ",\n  {\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 1, "
                 "\"tid\": %zu, \"args\": {\"sort_index\": %zu}}",
                 t, t);
  }
  for (std::size_t i = 0; i < count_; ++i) {
    std::size_t at = head_ + i;
    if (at >= ring_.size()) {
      at -= ring_.size();
    }
    const TraceEvent& e = ring_[at];
    std::fprintf(f,
                 ",\n  {\"ph\": \"%c\", \"name\": \"%s\", \"pid\": 1, \"tid\": %u, "
                 "\"ts\": %.3f",
                 PhaseLetter(e.phase), e.name == nullptr ? "?" : e.name, e.track,
                 ToUs(e.virtual_ns));
    if (e.phase == Phase::kComplete) {
      std::fprintf(f, ", \"dur\": %.3f", ToUs(e.dur_ns));
    }
    if (e.phase == Phase::kInstant) {
      std::fprintf(f, ", \"s\": \"t\"");
    }
    // args always carry the host-time stamp; the optional typed arg and the
    // counter value ride alongside it.
    std::fprintf(f, ", \"args\": {\"host_us\": %.3f", ToUs(e.host_ns));
    if (e.arg_name != nullptr) {
      std::fprintf(f, ", \"%s\": %llu", e.arg_name,
                   static_cast<unsigned long long>(e.arg));
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n]");
  std::fprintf(f,
               ",\n\"displayTimeUnit\": \"ms\",\n"
               "\"otherData\": {\"dropped_events\": \"%llu\", \"retained_events\": \"%zu\"}\n",
               static_cast<unsigned long long>(dropped_), count_);
  std::fprintf(f, "}\n");
}

}  // namespace obs
