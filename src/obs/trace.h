// Gray-glass tracing: a ring-buffered sink of typed spans and instants.
//
// The paper's whole method is inference from observations; this layer turns
// the simulator itself into an observable system. Components emit spans
// (Begin/End or Complete), instants, and counters onto named tracks; every
// event carries BOTH a virtual-time stamp (the deterministic simulation
// clock) and a host-time stamp (wall clock since Enable), so a trace can
// answer "what did the kernel believe was happening" and "what did that
// cost the host" side by side. The sink exports Chrome trace_event JSON
// loadable in chrome://tracing or Perfetto, one "thread" row per track
// (fiber, disk, daemon, chaos, probe layer, ...).
//
// Gating contract (pinned by tests/trace_test.cc and the determinism
// suite): tracing never touches the virtual clock, the jitter stream, or
// the event queue — trace-on and trace-off runs are bit-identical in
// virtual time and OsStats. Disabled, every emitter is a single branch on
// `enabled_` (no allocation, no clock read); compiled out entirely with
// -DGRAYSIM_TRACE_COMPILED=0, the emitters are empty inline functions. The
// ring buffer is pre-sized at Enable(): recording never allocates, and
// overflow overwrites the OLDEST event, counted in dropped().
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#ifndef GRAYSIM_TRACE_COMPILED
#define GRAYSIM_TRACE_COMPILED 1
#endif

namespace obs {

using Nanos = std::uint64_t;

// Well-known tracks, registered by the TraceSink constructor in this order
// so components can emit with a constant id instead of a lookup. Dynamic
// tracks (one per disk, one per fiber) are appended by RegisterTrack.
inline constexpr std::uint32_t kTrackKernel = 0;      // event-queue dispatch
inline constexpr std::uint32_t kTrackFlushDaemon = 1; // write-behind flusher
inline constexpr std::uint32_t kTrackPageDaemon = 2;  // page daemon
inline constexpr std::uint32_t kTrackChaos = 3;       // injected interference
inline constexpr std::uint32_t kTrackProbe = 4;       // ProbeEngine batches
inline constexpr std::uint32_t kTrackIcl = 5;         // ICL decision instants
inline constexpr std::uint32_t kNumWellKnownTracks = 6;

enum class Phase : std::uint8_t {
  kBegin,     // span open ("B")
  kEnd,       // span close ("E")
  kInstant,   // point event ("i")
  kComplete,  // span with known duration ("X")
  kCounter,   // sampled value ("C")
};

// One record in the ring. Names are static string literals (never owned, so
// recording stays allocation-free); args are an optional (name, value) pair.
struct TraceEvent {
  Nanos virtual_ns = 0;
  Nanos dur_ns = 0;  // kComplete only
  std::uint64_t host_ns = 0;
  std::uint64_t arg = 0;
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr when the event carries no arg
  std::uint32_t track = 0;
  Phase phase = Phase::kInstant;
};

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Registers a track (a "thread" row in the exported trace); returns the
  // existing id when the name was registered before. Setup-time only.
  std::uint32_t RegisterTrack(const std::string& name);

  // Pre-sizes the ring and starts recording. Re-enabling clears previously
  // recorded events but keeps registered tracks.
  void Enable(std::size_t capacity = kDefaultCapacity);
  void Disable();

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] static constexpr bool compiled_in() { return GRAYSIM_TRACE_COMPILED != 0; }

  // ---- emitters (hot path: one branch when disabled) ----
  void Begin(std::uint32_t track, const char* name, Nanos vt) {
#if GRAYSIM_TRACE_COMPILED
    if (enabled_) {
      Push(TraceEvent{vt, 0, HostNs(), 0, name, nullptr, track, Phase::kBegin});
    }
#else
    (void)track, (void)name, (void)vt;
#endif
  }
  void End(std::uint32_t track, const char* name, Nanos vt) {
#if GRAYSIM_TRACE_COMPILED
    if (enabled_) {
      Push(TraceEvent{vt, 0, HostNs(), 0, name, nullptr, track, Phase::kEnd});
    }
#else
    (void)track, (void)name, (void)vt;
#endif
  }
  void Instant(std::uint32_t track, const char* name, Nanos vt,
               const char* arg_name = nullptr, std::uint64_t arg = 0) {
#if GRAYSIM_TRACE_COMPILED
    if (enabled_) {
      Push(TraceEvent{vt, 0, HostNs(), arg, name, arg_name, track, Phase::kInstant});
    }
#else
    (void)track, (void)name, (void)vt, (void)arg_name, (void)arg;
#endif
  }
  // A span whose start and duration are both known at emit time (e.g. a
  // disk request: service window computed at submit). `vt_start` may lie in
  // the virtual future — exporters sort by timestamp.
  void Complete(std::uint32_t track, const char* name, Nanos vt_start, Nanos dur,
                const char* arg_name = nullptr, std::uint64_t arg = 0) {
#if GRAYSIM_TRACE_COMPILED
    if (enabled_) {
      Push(TraceEvent{vt_start, dur, HostNs(), arg, name, arg_name, track, Phase::kComplete});
    }
#else
    (void)track, (void)name, (void)vt_start, (void)dur, (void)arg_name, (void)arg;
#endif
  }
  void Counter(std::uint32_t track, const char* name, Nanos vt, std::uint64_t value) {
#if GRAYSIM_TRACE_COMPILED
    if (enabled_) {
      Push(TraceEvent{vt, 0, HostNs(), value, name, "value", track, Phase::kCounter});
    }
#else
    (void)track, (void)name, (void)vt, (void)value;
#endif
  }

  // ---- inspection & export ----
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  // Events overwritten because the ring was full (oldest dropped first).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<std::string>& track_names() const { return track_names_; }

  // Copies the retained events, oldest first.
  void Snapshot(std::vector<TraceEvent>* out) const;

  // Chrome trace_event JSON (object form: {"traceEvents": [...]}), with
  // thread_name metadata per track. Returns false on I/O error.
  bool WriteChromeJson(const std::string& path) const;
  void WriteChromeJson(std::FILE* f) const;

 private:
  void Push(const TraceEvent& e) {
    if (ring_.empty()) {
      return;
    }
    if (count_ == ring_.size()) {
      ring_[head_] = e;  // overwrite the oldest retained event
      head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
      ++dropped_;
    } else {
      std::size_t at = head_ + count_;
      if (at >= ring_.size()) {
        at -= ring_.size();
      }
      ring_[at] = e;
      ++count_;
    }
  }

  [[nodiscard]] std::uint64_t HostNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - host_epoch_)
            .count());
  }

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   // index of the oldest retained event
  std::size_t count_ = 0;  // retained events
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
  std::chrono::steady_clock::time_point host_epoch_;
  std::vector<std::string> track_names_;
};

}  // namespace obs

#endif  // SRC_OBS_TRACE_H_
