#include "src/cache/page_cache.h"

#include <cassert>

namespace graysim {

bool PageCache::Access(Inum inum, std::uint64_t page) {
  const auto it = pages_.find(Key(inum, page));
  if (it == pages_.end()) {
    return false;
  }
  mem_->Touch(it->second.ref);
  return true;
}

bool PageCache::Insert(Inum inum, std::uint64_t page, bool dirty, Nanos* evict_cost) {
  const std::uint64_t key = Key(inum, page);
  if (const auto it = pages_.find(key); it != pages_.end()) {
    mem_->Touch(it->second.ref);
    if (dirty) {
      MarkDirty(inum, page);
    }
    return true;
  }
  const auto ref =
      mem_->Insert(Page{PageKind::kFile, inum, page, dirty}, evict_cost);
  if (!ref.has_value()) {
    return false;  // admission denied (sticky policy)
  }
  Entry entry{*ref, std::nullopt};
  if (dirty) {
    dirty_order_.push_back(key);
    entry.dirty_it = std::prev(dirty_order_.end());
  }
  pages_.emplace(key, entry);
  ++per_file_count_[inum];
  return true;
}

void PageCache::MarkDirty(Inum inum, std::uint64_t page) {
  const std::uint64_t key = Key(inum, page);
  const auto it = pages_.find(key);
  assert(it != pages_.end());
  if (!it->second.dirty_it.has_value()) {
    mem_->MarkDirty(it->second.ref);
    dirty_order_.push_back(key);
    it->second.dirty_it = std::prev(dirty_order_.end());
  }
}

void PageCache::ClearDirty(std::uint64_t key, Entry& entry) {
  (void)key;
  if (entry.dirty_it.has_value()) {
    dirty_order_.erase(*entry.dirty_it);
    entry.dirty_it = std::nullopt;
    mem_->MarkClean(entry.ref);
  }
}

bool PageCache::OnEvicted(const Page& page) {
  const std::uint64_t key = Key(static_cast<Inum>(page.key1), page.key2);
  const auto it = pages_.find(key);
  assert(it != pages_.end());
  const bool was_dirty = it->second.dirty_it.has_value();
  if (was_dirty) {
    dirty_order_.erase(*it->second.dirty_it);
  }
  if (--per_file_count_[static_cast<Inum>(page.key1)] == 0) {
    per_file_count_.erase(static_cast<Inum>(page.key1));
  }
  pages_.erase(it);
  return was_dirty;
}

void PageCache::DropFile(Inum inum) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (KeyInum(it->first) == inum) {
      ClearDirty(it->first, it->second);
      mem_->Remove(it->second.ref);
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  per_file_count_.erase(inum);
}

void PageCache::DropFilePagesFrom(Inum inum, std::uint64_t first_page) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (KeyInum(it->first) == inum && KeyPage(it->first) >= first_page) {
      ClearDirty(it->first, it->second);
      mem_->Remove(it->second.ref);
      it = pages_.erase(it);
      if (--per_file_count_[inum] == 0) {
        per_file_count_.erase(inum);
      }
    } else {
      ++it;
    }
  }
}

void PageCache::DropAll(std::vector<std::pair<Inum, std::uint64_t>>* dirty_dropped) {
  for (auto& [key, entry] : pages_) {
    if (entry.dirty_it.has_value() && dirty_dropped != nullptr) {
      dirty_dropped->emplace_back(KeyInum(key), KeyPage(key));
    }
    mem_->Remove(entry.ref);
  }
  pages_.clear();
  per_file_count_.clear();
  dirty_order_.clear();
}

std::vector<std::pair<Inum, std::uint64_t>> PageCache::TakeOldestDirty(
    std::uint64_t max_pages) {
  std::vector<std::pair<Inum, std::uint64_t>> result;
  while (!dirty_order_.empty() && result.size() < max_pages) {
    const std::uint64_t key = dirty_order_.front();
    auto it = pages_.find(key);
    assert(it != pages_.end());
    result.emplace_back(KeyInum(key), KeyPage(key));
    ClearDirty(key, it->second);
  }
  return result;
}

std::vector<std::uint64_t> PageCache::TakeDirtyOfFile(Inum inum) {
  std::vector<std::uint64_t> result;
  for (auto it = dirty_order_.begin(); it != dirty_order_.end();) {
    if (KeyInum(*it) == inum) {
      result.push_back(KeyPage(*it));
      auto entry_it = pages_.find(*it);
      assert(entry_it != pages_.end());
      entry_it->second.dirty_it = std::nullopt;
      mem_->MarkClean(entry_it->second.ref);
      it = dirty_order_.erase(it);
    } else {
      ++it;
    }
  }
  return result;
}

std::uint64_t PageCache::CleanDirtyRunAfter(Inum inum, std::uint64_t page,
                                            std::uint64_t max_pages) {
  std::uint64_t n = 0;
  while (n < max_pages) {
    const std::uint64_t key = Key(inum, page + 1 + n);
    const auto it = pages_.find(key);
    if (it == pages_.end() || !it->second.dirty_it.has_value()) {
      break;
    }
    ClearDirty(key, it->second);
    ++n;
  }
  return n;
}

std::uint64_t PageCache::ResidentPagesOfFile(Inum inum) const {
  const auto it = per_file_count_.find(inum);
  return it == per_file_count_.end() ? 0 : it->second;
}

}  // namespace graysim
