#include "src/cache/page_cache.h"

#include <cassert>

namespace graysim {

bool PageCache::Access(Inum inum, std::uint64_t page) {
  FrameId* ref = pages_.Find(Key(inum, page));
  if (ref == nullptr) {
    return false;
  }
  mem_->Touch(*ref);
  return true;
}

bool PageCache::Insert(Inum inum, std::uint64_t page, bool dirty, Nanos* evict_cost) {
  const std::uint64_t key = Key(inum, page);
  if (FrameId* ref = pages_.Find(key); ref != nullptr) {
    mem_->Touch(*ref);
    if (dirty) {
      MarkDirty(inum, page);
    }
    return true;
  }
  const FrameId ref =
      mem_->Insert(Page{PageKind::kFile, inum, page, dirty}, evict_cost);
  if (ref == kNoFrame) {
    return false;  // admission denied (sticky policy)
  }
  if (dirty) {
    dirty_order_.PushBack(mem_->frames(), ref);
  }
  pages_.Put(key, ref);
  ++per_file_count_[inum];
  return true;
}

void PageCache::MarkDirty(Inum inum, std::uint64_t page) {
  FrameId* ref = pages_.Find(Key(inum, page));
  assert(ref != nullptr);
  if (!mem_->frames().dirty(*ref)) {
    mem_->MarkDirty(*ref);
    dirty_order_.PushBack(mem_->frames(), *ref);
  }
}

void PageCache::ClearDirty(FrameId frame) {
  if (mem_->frames().dirty(frame)) {
    dirty_order_.Remove(mem_->frames(), frame);
    mem_->MarkClean(frame);
  }
}

bool PageCache::OnEvicted(const Page& page) {
  const Inum inum = static_cast<Inum>(page.key1);
  const std::uint64_t key = Key(inum, page.key2);
  FrameId* ref = pages_.Find(key);
  assert(ref != nullptr);
  const bool was_dirty = page.dirty;
  if (was_dirty) {
    // The frame is still live here (MemSystem releases it after the
    // handler returns), so its dirty links are intact.
    dirty_order_.Remove(mem_->frames(), *ref);
  }
  std::uint64_t* count = per_file_count_.Find(inum);
  assert(count != nullptr);
  if (--*count == 0) {
    per_file_count_.Erase(inum);
  }
  pages_.Erase(key);
  return was_dirty;
}

void PageCache::DropFile(Inum inum) {
  pages_.EraseIf([&](std::uint64_t key, FrameId ref) {
    if (KeyInum(key) != inum) {
      return false;
    }
    ClearDirty(ref);
    mem_->Remove(ref);
    return true;
  });
  per_file_count_.Erase(inum);
}

void PageCache::DropFilePagesFrom(Inum inum, std::uint64_t first_page) {
  pages_.EraseIf([&](std::uint64_t key, FrameId ref) {
    if (KeyInum(key) != inum || KeyPage(key) < first_page) {
      return false;
    }
    ClearDirty(ref);
    mem_->Remove(ref);
    std::uint64_t* count = per_file_count_.Find(inum);
    if (--*count == 0) {
      per_file_count_.Erase(inum);
    }
    return true;
  });
}

void PageCache::DropAll(std::vector<std::pair<Inum, std::uint64_t>>* dirty_dropped) {
  pages_.ForEach([&](std::uint64_t key, FrameId ref) {
    if (mem_->frames().dirty(ref) && dirty_dropped != nullptr) {
      dirty_dropped->emplace_back(KeyInum(key), KeyPage(key));
    }
    mem_->Remove(ref);
  });
  pages_.Clear();
  per_file_count_.Clear();
  dirty_order_.Clear();
}

std::vector<std::pair<Inum, std::uint64_t>> PageCache::TakeOldestDirty(
    std::uint64_t max_pages) {
  std::vector<std::pair<Inum, std::uint64_t>> result;
  while (!dirty_order_.empty() && result.size() < max_pages) {
    const FrameId ref = dirty_order_.front();
    result.emplace_back(static_cast<Inum>(mem_->frames().key1(ref)),
                        mem_->frames().key2(ref));
    ClearDirty(ref);
  }
  return result;
}

std::vector<std::uint64_t> PageCache::TakeDirtyOfFile(Inum inum) {
  std::vector<std::uint64_t> result;
  FrameId ref = dirty_order_.front();
  while (ref != kNoFrame) {
    const FrameId next = DirtyList::Next(mem_->frames(), ref);
    if (static_cast<Inum>(mem_->frames().key1(ref)) == inum) {
      result.push_back(mem_->frames().key2(ref));
      dirty_order_.Remove(mem_->frames(), ref);
      mem_->MarkClean(ref);
    }
    ref = next;
  }
  return result;
}

std::uint64_t PageCache::CleanDirtyRunAfter(Inum inum, std::uint64_t page,
                                            std::uint64_t max_pages) {
  std::uint64_t n = 0;
  while (n < max_pages) {
    FrameId* ref = pages_.Find(Key(inum, page + 1 + n));
    if (ref == nullptr || !mem_->frames().dirty(*ref)) {
      break;
    }
    ClearDirty(*ref);
    ++n;
  }
  return n;
}

std::uint64_t PageCache::ResidentPagesOfFile(Inum inum) const {
  const std::uint64_t* count = per_file_count_.Find(inum);
  return count == nullptr ? 0 : *count;
}

}  // namespace graysim
