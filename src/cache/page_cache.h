// File page cache: maps (inode, page-index) to resident frames.
//
// Pure bookkeeping — frames come from MemSystem (which applies the platform
// replacement policy) and all timing is charged by the Os layer. The cache
// also tracks dirty pages in age order so the Os can model write-behind and
// fsync.
//
// Hot-path layout: the residency map is an open-addressed FlatMap from the
// packed (inum, page) key to a FrameId, and the dirty chain is intrusive in
// the shared FrameTable (dirty_prev/dirty_next ids in each frame), so the
// access / insert / dirty paths perform no heap allocation. A file page's
// Page::dirty bit is exactly "on the dirty chain".
#ifndef SRC_CACHE_PAGE_CACHE_H_
#define SRC_CACHE_PAGE_CACHE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/fs/ffs.h"
#include "src/mem/mem_system.h"
#include "src/sim/clock.h"
#include "src/sim/flat_map.h"

namespace graysim {

class PageCache {
 public:
  explicit PageCache(MemSystem* mem) : mem_(mem) {
    pages_.Reserve(mem->total_pages());
  }

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // True (and LRU-refreshed) if the page is resident.
  bool Access(Inum inum, std::uint64_t page);

  [[nodiscard]] bool Resident(Inum inum, std::uint64_t page) const {
    return pages_.Contains(Key(inum, page));
  }

  // Inserts a page after a disk read (or for a write). Returns false when
  // the policy refuses admission (Solaris-like sticky cache when full).
  // Eviction I/O cost accumulates into *evict_cost.
  bool Insert(Inum inum, std::uint64_t page, bool dirty, Nanos* evict_cost);

  // Marks a resident page dirty (write path). The page must be resident.
  void MarkDirty(Inum inum, std::uint64_t page);

  // Called by the Os eviction handler when MemSystem evicts a file page:
  // removes the mapping. Returns true if the page was dirty.
  bool OnEvicted(const Page& page);

  // Drops every page of a file (unlink/truncate); dirty contents are
  // discarded (the file is going away).
  void DropFile(Inum inum);

  // Drops cached pages at or beyond `first_page` (shrinking truncate).
  void DropFilePagesFrom(Inum inum, std::uint64_t first_page);

  // Drops all file pages (experimental cache flush). Dirty pages are
  // reported through *dirty_dropped so the caller can charge writeback.
  void DropAll(std::vector<std::pair<Inum, std::uint64_t>>* dirty_dropped);

  // Oldest dirty pages, up to `max_pages` (write-behind flushing). Marks
  // them clean. Returned in dirtying order.
  [[nodiscard]] std::vector<std::pair<Inum, std::uint64_t>> TakeOldestDirty(
      std::uint64_t max_pages);

  // All dirty pages of one file, marked clean (fsync).
  [[nodiscard]] std::vector<std::uint64_t> TakeDirtyOfFile(Inum inum);

  // All dirty pages whose (disk-tagged) inum satisfies `pred`, marked clean
  // (syncfs). Returned in dirtying order so writeback submission preserves
  // the write-order model.
  template <typename Pred>
  [[nodiscard]] std::vector<std::pair<Inum, std::uint64_t>> TakeDirtyMatching(Pred&& pred) {
    std::vector<std::pair<Inum, std::uint64_t>> out;
    const FrameTable& frames = mem_->frames();
    FrameId f = dirty_order_.front();
    while (f != kNoFrame) {
      const FrameId next = DirtyList::Next(frames, f);
      const Page page = frames.PageOf(f);
      const Inum inum = static_cast<Inum>(page.key1);
      if (pred(inum)) {
        out.emplace_back(inum, page.key2);
        ClearDirty(f);
      }
      f = next;
    }
    return out;
  }

  // Marks clean (and returns the count of) the resident dirty pages
  // immediately following (inum, page) — i.e. pages page+1..page+n while
  // consecutive, resident, and dirty, up to max_pages. Used to cluster
  // writeback when reclaim hits a dirty page: the whole run is written in
  // one request instead of page-at-a-time.
  [[nodiscard]] std::uint64_t CleanDirtyRunAfter(Inum inum, std::uint64_t page,
                                                 std::uint64_t max_pages);

  [[nodiscard]] std::uint64_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] std::uint64_t dirty_pages() const { return dirty_order_.size(); }
  [[nodiscard]] std::uint64_t ResidentPagesOfFile(Inum inum) const;

  // Copies another cache's bookkeeping (machine snapshot/fork). The frame
  // ids in the maps and the intrusive dirty-chain head refer into the
  // MemSystem slab, which the owner copies alongside; mem_ stays bound to
  // this cache's own MemSystem.
  void CopyStateFrom(const PageCache& other) {
    pages_ = other.pages_;
    per_file_count_ = other.per_file_count_;
    dirty_order_ = other.dirty_order_;
  }

  // Heap footprint of the residency maps (snapshot-size accounting).
  [[nodiscard]] std::uint64_t ApproxBytes() const {
    return sizeof(PageCache) + pages_.capacity_bytes() + per_file_count_.capacity_bytes();
  }

  // --- checkpoint surface (machine_image_io) ------------------------------
  [[nodiscard]] const FlatMap<FrameId>& pages_map() const { return pages_; }
  [[nodiscard]] FlatMap<FrameId>& pages_map_mutable() { return pages_; }
  [[nodiscard]] const FlatMap<std::uint64_t>& per_file_counts() const {
    return per_file_count_;
  }
  [[nodiscard]] FlatMap<std::uint64_t>& per_file_counts_mutable() { return per_file_count_; }
  [[nodiscard]] const DirtyList& dirty_list() const { return dirty_order_; }
  void RestoreDirtyList(const DirtyList& list) { dirty_order_ = list; }

 private:
  // Key packing: the full 32-bit (disk-tagged) inum in the high bits and a
  // 32-bit page index below it. Page indexes stay < 2^32 (that would be a
  // 16 TB file at 4 KB pages; the modeled disks are 9 GB).
  [[nodiscard]] static std::uint64_t Key(Inum inum, std::uint64_t page) {
    return (static_cast<std::uint64_t>(inum) << 32) | page;
  }
  static Inum KeyInum(std::uint64_t key) { return static_cast<Inum>(key >> 32); }
  static std::uint64_t KeyPage(std::uint64_t key) { return key & 0xFFFFFFFFULL; }

  // Unlinks the frame from the dirty chain if dirty (clearing Page::dirty).
  void ClearDirty(FrameId frame);

  MemSystem* mem_;
  FlatMap<FrameId> pages_;               // packed key -> frame id
  FlatMap<std::uint64_t> per_file_count_;  // inum -> resident pages
  DirtyList dirty_order_;                // intrusive chain, oldest first
};

}  // namespace graysim

#endif  // SRC_CACHE_PAGE_CACHE_H_
