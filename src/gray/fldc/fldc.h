// File Layout Detector and Controller (paper §4.2).
//
// Detection: on FFS-derived file systems, files created together in one
// directory land in the same cylinder group, and within a clean directory
// i-number order matches data-block layout. FLDC therefore orders file
// accesses by stat()-observed i-number (which subsumes directory grouping),
// falling back to directory grouping alone when asked.
//
// Control: file-system aging destroys the i-number/layout correlation, so
// FLDC can "move the system to a known state" by refreshing a directory —
// the paper's six-step recipe: create a temp dir at the same level, sort
// files (smallest first so large files take late i-numbers), copy in sorted
// order, restore timestamps (so make(1) keeps working), delete the old
// directory, rename the temp into place.
#ifndef SRC_GRAY_FLDC_FLDC_H_
#define SRC_GRAY_FLDC_FLDC_H_

#include <span>
#include <string>
#include <vector>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"
#include "src/gray/toolbox/techniques.h"

namespace gray {

struct FldcOptions {
  // Copy chunk used while refreshing.
  std::uint64_t copy_chunk = 1ULL * 1024 * 1024;
  // Suffix of the temporary directory created during a refresh.
  std::string refresh_suffix = ".gbrefresh";
  // How the stat sweep is executed (see ProbeEngine).
  ProbeStrategy probe_strategy = ProbeStrategy::kBatched;
  // Interference hardening. When true: transiently failed stats are retried
  // with backoff (ProbeEngine), a sweep that still saw failures re-stats
  // just the failed paths once more (a transient EIO would otherwise dump
  // that file at the back of the order), and LayoutChanged() is available
  // for staleness checks. Costs nothing on a clean sweep. When false, the
  // legacy fire-once sweep runs for A/B comparison.
  bool hardened = true;
  // Paths LayoutChanged() re-stats, spread evenly across the order.
  int verify_sample = 4;
};

struct StatOrderEntry {
  std::string path;
  std::uint64_t inum = 0;
  std::uint64_t size = 0;
  Nanos mtime = 0;
  bool stat_ok = false;
};

class Fldc {
 public:
  explicit Fldc(SysApi* sys, FldcOptions options = FldcOptions{});

  // Stats every path and returns them ordered by (directory, i-number):
  // i-number sorting within a file system naturally groups directories too,
  // since inodes are allocated per-cylinder-group. Paths that fail stat()
  // keep their relative order at the end.
  [[nodiscard]] std::vector<StatOrderEntry> OrderByInode(std::span<const std::string> paths);

  // Groups paths by parent directory only (the weaker heuristic the paper
  // compares against in Fig 5).
  [[nodiscard]] std::vector<std::string> OrderByDirectory(std::span<const std::string> paths);

  // The LFS port of the detector (paper §4.2.5): on a log-structured file
  // system, writes that occur near one another in time lead to proximity in
  // space — so modification-time order predicts layout where i-number order
  // does not.
  [[nodiscard]] std::vector<StatOrderEntry> OrderByMtime(std::span<const std::string> paths);

  // The control half: rewrites `dir` so that i-number order again matches
  // layout. Returns 0 on success, negative on failure. Smallest files are
  // copied first (paper §4.2.1). The original timestamps are preserved.
  int RefreshDirectory(const std::string& dir);

  // Staleness check (hardened mode): re-stats a small, evenly spread sample
  // of a previously computed order and reports whether the observed
  // i-numbers still back it. A directory refresh, a rename sweep, or a
  // restore-from-backup underneath the application reassigns inums and the
  // cached order becomes worthless; on true, re-run OrderByInode instead of
  // trusting it. Costs verify_sample stats. Always false when unhardened.
  [[nodiscard]] bool LayoutChanged(std::span<const StatOrderEntry> entries);
  // Times LayoutChanged() found the layout moved underneath a cached order.
  [[nodiscard]] std::uint64_t redetections() const { return redetections_; }

  [[nodiscard]] const TechniqueUsage& usage() const { return usage_; }
  [[nodiscard]] std::uint64_t stats_issued() const { return stats_issued_; }
  // Observation-overhead accounting for the stat sweeps.
  [[nodiscard]] const ProbeReport& probe_report() const { return engine_.report(); }
  [[nodiscard]] const ProbeEngine& probe_engine() const { return engine_; }

 private:
  // Stats every path through the engine, in order.
  [[nodiscard]] std::vector<StatOrderEntry> StatAll(std::span<const std::string> paths);
  // Returns 0 on success or the first failing call's negative errno-style
  // code (never a bare -1: callers distinguish ENOSPC from EIO).
  int CopyFile(const std::string& from, const std::string& to, std::uint64_t size);

  SysApi* sys_;
  FldcOptions options_;
  ProbeEngine engine_;
  std::uint64_t stats_issued_ = 0;
  std::uint64_t redetections_ = 0;
  TechniqueUsage usage_;
};

// Path helper shared with the gbp tool: parent directory of a path ("" when
// none).
[[nodiscard]] std::string DirnameOf(const std::string& path);

}  // namespace gray

#endif  // SRC_GRAY_FLDC_FLDC_H_
