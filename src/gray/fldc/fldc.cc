#include "src/gray/fldc/fldc.h"

#include <algorithm>

namespace gray {

std::string DirnameOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

namespace {

ProbeEngineOptions EngineOptionsFor(const FldcOptions& options) {
  ProbeEngineOptions eo;
  eo.strategy = options.probe_strategy;
  if (!options.hardened) {
    eo.max_retries = 0;  // legacy behavior: fire once, take what came back
  }
  return eo;
}

}  // namespace

Fldc::Fldc(SysApi* sys, FldcOptions options)
    : sys_(sys),
      options_(std::move(options)),
      engine_(sys, EngineOptionsFor(options_)) {
  usage_.Record(Technique::kAlgorithmicKnowledge);
  usage_.Describe(Technique::kAlgorithmicKnowledge,
                  "FFS: same-dir files share a cylinder group; creation order "
                  "== layout order on a clean fs");
  usage_.Describe(Technique::kProbes, "stat() each file for its i-number");
  usage_.Describe(Technique::kKnownState, "directory refresh restores layout order");
  usage_.Describe(Technique::kStatistics, "clustering when composed with FCCD");
}

std::vector<StatOrderEntry> Fldc::StatAll(std::span<const std::string> paths) {
  std::vector<TimedStat> reqs(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    reqs[i].path = paths[i];
  }
  stats_issued_ += paths.size();
  usage_.Record(Technique::kProbes, paths.size());
  std::vector<FileInfo> infos;
  const std::vector<ProbeSample> samples = engine_.RunStats(reqs, &infos);
  auto fill = [](StatOrderEntry& entry, const FileInfo& info) {
    entry.inum = info.inum;
    entry.size = info.size;
    entry.mtime = info.mtime;
    entry.stat_ok = true;
  };
  std::vector<StatOrderEntry> entries(paths.size());
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    entries[i].path = paths[i];
    if (samples[i].rc == 0 && !infos[i].is_dir) {
      fill(entries[i], infos[i]);
    } else if (samples[i].rc < 0) {
      failed.push_back(i);
    }
  }
  if (options_.hardened && !failed.empty()) {
    // Second chance for the failures only: a transient EIO that survived the
    // engine's short backoffs may clear over a full extra sweep's worth of
    // time, and a file wrongly marked stat-failed sorts dead last. Clean
    // sweeps never reach this, so the hardening is free when nothing fails.
    std::vector<TimedStat> again(failed.size());
    for (std::size_t j = 0; j < failed.size(); ++j) {
      again[j].path = paths[failed[j]];
    }
    stats_issued_ += failed.size();
    usage_.Record(Technique::kProbes, failed.size());
    std::vector<FileInfo> retry_infos;
    const std::vector<ProbeSample> retried = engine_.RunStats(again, &retry_infos);
    for (std::size_t j = 0; j < failed.size(); ++j) {
      if (retried[j].rc == 0 && !retry_infos[j].is_dir) {
        fill(entries[failed[j]], retry_infos[j]);
      }
    }
  }
  return entries;
}

bool Fldc::LayoutChanged(std::span<const StatOrderEntry> entries) {
  if (!options_.hardened || entries.empty() || options_.verify_sample <= 0) {
    return false;
  }
  const std::size_t n = entries.size();
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(options_.verify_sample), n);
  std::vector<std::size_t> idx(k);
  std::vector<TimedStat> reqs(k);
  for (std::size_t j = 0; j < k; ++j) {
    idx[j] = j * n / k;  // even spread, front included
    reqs[j].path = entries[idx[j]].path;
  }
  stats_issued_ += k;
  usage_.Record(Technique::kProbes, k);
  std::vector<FileInfo> infos;
  const std::vector<ProbeSample> samples = engine_.RunStats(reqs, &infos);
  for (std::size_t j = 0; j < k; ++j) {
    const StatOrderEntry& e = entries[idx[j]];
    const bool ok = samples[j].rc == 0 && !infos[j].is_dir;
    if (ok != e.stat_ok || (ok && infos[j].inum != e.inum)) {
      ++redetections_;
      if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
        t->Instant(obs::kTrackIcl, "fldc.redetect", sys_->Now());
      }
      return true;
    }
  }
  return false;
}

std::vector<StatOrderEntry> Fldc::OrderByInode(std::span<const std::string> paths) {
  std::vector<StatOrderEntry> entries = StatAll(paths);
  std::stable_sort(entries.begin(), entries.end(),
                   [](const StatOrderEntry& a, const StatOrderEntry& b) {
                     if (a.stat_ok != b.stat_ok) {
                       return a.stat_ok;  // failures go last
                     }
                     return a.inum < b.inum;
                   });
  return entries;
}

std::vector<StatOrderEntry> Fldc::OrderByMtime(std::span<const std::string> paths) {
  std::vector<StatOrderEntry> entries = StatAll(paths);
  std::stable_sort(entries.begin(), entries.end(),
                   [](const StatOrderEntry& a, const StatOrderEntry& b) {
                     if (a.stat_ok != b.stat_ok) {
                       return a.stat_ok;
                     }
                     return a.mtime < b.mtime;
                   });
  return entries;
}

std::vector<std::string> Fldc::OrderByDirectory(std::span<const std::string> paths) {
  std::vector<std::string> sorted(paths.begin(), paths.end());
  std::stable_sort(sorted.begin(), sorted.end(), [](const std::string& a, const std::string& b) {
    return DirnameOf(a) < DirnameOf(b);
  });
  return sorted;
}

int Fldc::CopyFile(const std::string& from, const std::string& to, std::uint64_t size) {
  const int src = sys_->Open(from);
  if (src < 0) {
    return src;
  }
  const int dst = sys_->Creat(to);
  if (dst < 0) {
    (void)sys_->Close(src);
    return dst;
  }
  int rc = 0;
  for (std::uint64_t off = 0; off < size; off += options_.copy_chunk) {
    const std::uint64_t n = std::min(options_.copy_chunk, size - off);
    if (const std::int64_t r = sys_->Pread(src, {}, n, off); r < 0) {
      rc = static_cast<int>(r);
      break;
    }
    if (const std::int64_t w = sys_->Pwrite(dst, n, off); w < 0) {
      rc = static_cast<int>(w);
      break;
    }
  }
  (void)sys_->Close(src);
  (void)sys_->Close(dst);
  return rc;
}

int Fldc::RefreshDirectory(const std::string& dir) {
  usage_.Record(Technique::kKnownState);

  // Step 1: temporary directory at the same level of the hierarchy.
  const std::string tmp = dir + options_.refresh_suffix;
  if (const int rc = sys_->Mkdir(tmp); rc < 0) {
    return rc;
  }

  // Step 2: stat and sort the files, smallest first, so small files get the
  // first i-numbers and large files cannot break the correlation.
  std::vector<DirEntry> listing;
  if (const int rc = sys_->ReadDir(dir, &listing); rc < 0) {
    (void)sys_->Rmdir(tmp);
    return rc;
  }
  struct Entry {
    std::string name;
    FileInfo info;
  };
  std::vector<Entry> files;
  for (const DirEntry& de : listing) {
    if (de.is_dir) {
      continue;  // subdirectories are left in place
    }
    Entry e;
    e.name = de.name;
    if (sys_->Stat(dir + "/" + de.name, &e.info) == 0) {
      files.push_back(std::move(e));
    }
  }
  std::stable_sort(files.begin(), files.end(), [](const Entry& a, const Entry& b) {
    return a.info.size < b.info.size;
  });

  // Step 3: copy in sorted order; step 4: restore timestamps.
  for (const Entry& e : files) {
    const std::string from = dir + "/" + e.name;
    const std::string to = tmp + "/" + e.name;
    if (const int rc = CopyFile(from, to, e.info.size); rc < 0) {
      return rc;
    }
    (void)sys_->Utimes(to, e.info.atime, e.info.mtime);
  }

  // Step 5: delete the originals (and the directory if it empties).
  for (const Entry& e : files) {
    if (const int rc = sys_->Unlink(dir + "/" + e.name); rc < 0) {
      return rc;
    }
  }
  std::vector<DirEntry> leftover;
  (void)sys_->ReadDir(dir, &leftover);
  if (leftover.empty()) {
    if (const int rc = sys_->Rmdir(dir); rc < 0) {
      return rc;
    }
    // Step 6: rename the temporary directory into place.
    return sys_->Rename(tmp, dir);
  }
  // The directory still holds subdirectories: move the refreshed files back.
  for (const Entry& e : files) {
    if (const int rc = sys_->Rename(tmp + "/" + e.name, dir + "/" + e.name); rc < 0) {
      return rc;
    }
  }
  return sys_->Rmdir(tmp);
}

}  // namespace gray
