// MS Manners as a gray-box ICL (paper §3, Table 1).
//
// A low-importance background process regulates itself so it only consumes
// resources that are otherwise idle. Gray-box knowledge: "one process
// competing with another usually degrades the progress of the other
// symmetrically to its own" — so by measuring its OWN progress rate against
// a calibrated uncontended baseline, the background process infers that
// someone important is running and suspends itself.
//
// Rebuilt as a kernel citizen: the work units are real scheduler-charged
// computation plus ProbeEngine-timed page touches over a resident buffer,
// progress windows are measured on the virtual clock, and suspension is a
// real sleep that hands the CPU back. Statistics from the original system
// (Table 1): exponential averaging of progress samples and a paired-sample
// sign test against the baseline.
#ifndef SRC_GRAY_CLASSIC_MANNERS_H_
#define SRC_GRAY_CLASSIC_MANNERS_H_

#include <cstdint>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"

namespace grayclassic {

struct MannersIclOptions {
  gray::Nanos run_for = 4'000'000'000;  // 4 s of virtual time
  // Progress-measurement window; must exceed the scheduler slice or a
  // window sees only its own turn and contention is invisible.
  gray::Nanos window = 40'000'000;  // 40 ms
  gray::Nanos unit_compute = 200'000;  // CPU burn per work unit
  std::uint64_t buffer_pages = 32;     // resident working set
  int touches_per_unit = 8;            // ProbeEngine-timed page touches
  int calibrate_windows = 4;           // uncontended baseline measurement
  double suspend_threshold = 0.8;      // suspect contention below this fraction
  int initial_backoff_windows = 2;
  int max_backoff_windows = 32;
  double ewma_alpha = 0.3;
  int sign_window = 8;  // recent samples kept for the sign test
  // Hardened variant: the EWMA dip must be confirmed by the paired-sample
  // sign test AND hold for two consecutive windows before suspending —
  // robust to one noisy window (a chaos shock, a jitter spike). Legacy
  // suspends on the raw threshold immediately.
  bool hardened = true;
  // When false, the controller never suspends: the greedy baseline every
  // comparison runs against.
  bool governed = true;
};

struct MannersIclResult {
  std::uint64_t bg_units = 0;           // work units completed
  std::uint64_t windows = 0;            // measurement windows executed
  std::uint64_t suspensions = 0;
  std::uint64_t suspended_windows = 0;  // windows' worth of backoff slept
  bool sign_test_fired = false;         // the statistics confirmed contention
  double baseline_rate = 0.0;           // calibrated units per window
  double unit_cost_ns = 0.0;            // calibrated uncontended cost of one unit
  gray::ProbeReport probe_report;
};

class MannersIcl {
 public:
  MannersIcl(gray::SysApi* sys, const MannersIclOptions& options)
      : sys_(sys), options_(options) {}

  [[nodiscard]] MannersIclResult Run();

 private:
  // One unit of background work: timed page touches + a compute burn.
  void DoUnit(gray::ProbeEngine* engine, gray::MemHandle buffer);

  gray::SysApi* sys_;
  MannersIclOptions options_;
  std::uint64_t next_page_ = 0;
};

}  // namespace grayclassic

#endif  // SRC_GRAY_CLASSIC_MANNERS_H_
