// Implicit coscheduling as a gray-box ICL (paper §3, Table 1).
//
// Fine-grain parallel processes on an independently scheduled system infer
// remote scheduling state from message timing: a prompt response means the
// partner is scheduled; a missing one means it probably is not. The control
// action is the two-phase waiting policy — spin for about a round trip
// (staying scheduled so the response is consumed the instant it lands),
// then block and release the CPU to local competitors.
//
// Rebuilt as a kernel citizen: each process runs on a simulated-OS fiber,
// requests and responses are real datagrams through SysApi (charged through
// the turnstile), and the spin limit comes from a ProbeEngine round-trip
// benchmark against a known-scheduled echo fiber (Table 1's "Benchmarks"
// row: "round-trip time", "Known state: required for benchmarks").
#ifndef SRC_GRAY_CLASSIC_COSCHED_H_
#define SRC_GRAY_CLASSIC_COSCHED_H_

#include <cstdint>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"

namespace grayclassic {

enum class WaitPolicy : std::uint8_t { kBlockImmediate, kSpinForever, kTwoPhase };

struct CoschedIclOptions {
  int endpoint = -1;     // ours (requests from the predecessor land here too)
  int partner = -1;      // ring successor: we request from it
  int echo_peer = -1;    // known-scheduled echo fiber for the RTT benchmark
  int iterations = 200;  // compute/communicate rounds
  gray::Nanos compute = 50'000;     // 50 us per-iteration compute
  gray::Nanos spin_grain = 5'000;   // poll granularity while spinning
  WaitPolicy policy = WaitPolicy::kTwoPhase;
  int benchmark_pings = 6;
  gray::Nanos ping_timeout = 5'000'000;
  // Post-benchmark settle sleep: ring peers calibrate concurrently, and a
  // request landing inside a peer's ping run would be discarded as a stale
  // echo. Sleeping past the benchmark skew keeps first requests off that
  // window (the hardened resend path would recover anyway, at 20 ms a hit).
  gray::Nanos settle = 5'000'000;
  // Two-phase spin limit = spin_multiplier x rtt estimate, capped.
  double spin_multiplier = 8.0;
  gray::Nanos spin_cap = 2'000'000;  // 2 ms
  // Blocked-wait timeout; on expiry the hardened variant re-sends the
  // request (it may have been dropped by interference) up to max_resend
  // times before giving up on the iteration.
  gray::Nanos block_timeout = 100'000'000;  // 100 ms
  int max_resend = 20;
  // Hardened variant: timeout-driven resends plus EWMA recalibration of the
  // spin limit from gaps that were actually caught while spinning (the
  // coordinated-case response time, which is the only gap worth spinning
  // for). Legacy keeps the benchmark-time limit forever and never resends.
  bool hardened = true;
  double ewma_alpha = 0.2;
};

struct CoschedIclResult {
  std::uint64_t iterations_done = 0;
  gray::Nanos elapsed = 0;      // Run() wall time on the virtual clock
  gray::Nanos spin_time = 0;    // CPU burned polling
  std::uint64_t blocks = 0;     // times the process gave up the CPU
  std::uint64_t fast_waits = 0; // responses caught during the spin phase
  std::uint64_t resends = 0;    // hardened timeout recoveries
  std::uint64_t served = 0;     // partner requests answered
  bool gave_up = false;         // a wait exhausted max_resend
  gray::Nanos rtt_estimate = 0; // final spin-limit basis (gap EWMA)
  gray::Nanos benchmark_rtt = 0; // uncontended probe-run round trip
  gray::ProbeReport probe_report;
};

// One ring process. Construct per fiber, call Run(); partners must run
// concurrently (each serves its predecessor while waiting on its
// successor). RunCoschedEcho is the benchmark echo fiber.
class CoschedIcl {
 public:
  CoschedIcl(gray::SysApi* sys, const CoschedIclOptions& options)
      : sys_(sys), options_(options) {}

  [[nodiscard]] CoschedIclResult Run();

  // Serve the predecessor's stragglers after Run(): a ring peer may still
  // be a few iterations behind and needs responses. Returns once the ring
  // has been quiet for one block_timeout. Harnesses call this after
  // recording Run()'s result so job-time accounting excludes the tail.
  void Linger();

 private:
  // Handles one inbound message; returns true when it was the response we
  // are waiting for (tag == want).
  bool Handle(const gray::NetMessage& msg, std::uint64_t want);
  // Drains everything already delivered without blocking.
  void DrainInbox(std::uint64_t want, bool* got);

  gray::SysApi* sys_;
  CoschedIclOptions options_;
  CoschedIclResult result_;
  gray::Nanos spin_limit_ = 0;
  double gap_ewma_ = 0.0;
};

// Echo fiber: reflects probe pings until `idle_timeout` passes quietly.
// Returns the number of messages echoed.
std::uint64_t RunCoschedEcho(gray::SysApi* sys, int endpoint, gray::Nanos idle_timeout);

}  // namespace grayclassic

#endif  // SRC_GRAY_CLASSIC_COSCHED_H_
