#include "src/gray/classic/manners.h"

#include <algorithm>
#include <vector>

#include "src/gray/toolbox/stats.h"

namespace grayclassic {

void MannersIcl::DoUnit(gray::ProbeEngine* engine, gray::MemHandle buffer) {
  std::vector<gray::TimedMemTouch> touches(
      static_cast<std::size_t>(std::max(1, options_.touches_per_unit)));
  for (auto& t : touches) {
    t = gray::TimedMemTouch{buffer, next_page_, true};
    next_page_ = (next_page_ + 1) % std::max<std::uint64_t>(1, options_.buffer_pages);
  }
  engine->RunMemTouches(touches);
  sys_->Compute(options_.unit_compute);
}

MannersIclResult MannersIcl::Run() {
  MannersIclResult result;
  gray::ProbeEngine engine(sys_);
  const gray::MemHandle buffer =
      sys_->MemAlloc(options_.buffer_pages * sys_->PageSize());

  const gray::Nanos start = sys_->Now();
  const gray::Nanos end = start + options_.run_for;
  obs::TraceSink* trace = sys_->Trace();

  gray::ExponentialAverage progress(options_.ewma_alpha);
  std::vector<double> recent;    // recent progress samples
  std::vector<double> expected;  // paired threshold samples
  double baseline = 0.0;
  int backoff_windows = options_.initial_backoff_windows;
  int below_streak = 0;
  int calibrated = 0;
  double calibration_sum = 0.0;

  while (sys_->Now() < end) {
    // One measurement window of work.
    const gray::Nanos w0 = sys_->Now();
    const gray::Nanos w_end = std::min(end, w0 + options_.window);
    std::uint64_t units = 0;
    while (sys_->Now() < w_end) {
      DoUnit(&engine, buffer);
      ++units;
    }
    result.bg_units += units;
    ++result.windows;
    // Normalize short final windows to a full-window rate.
    const gray::Nanos w_len = std::max<gray::Nanos>(1, sys_->Now() - w0);
    const double sample = static_cast<double>(units) *
                          static_cast<double>(options_.window) /
                          static_cast<double>(w_len);

    if (calibrated < options_.calibrate_windows) {
      // Known state by construction: the scenario starts the background
      // process before any foreground burst, so the first windows measure
      // the uncontended rate.
      calibration_sum += sample;
      if (++calibrated == options_.calibrate_windows) {
        baseline = calibration_sum / static_cast<double>(calibrated);
        result.baseline_rate = baseline;
        result.unit_cost_ns =
            baseline > 0.0 ? static_cast<double>(options_.window) / baseline : 0.0;
      }
      continue;
    }
    if (!options_.governed) {
      continue;  // greedy baseline: measure, never yield
    }

    progress.Add(sample);
    recent.push_back(sample);
    expected.push_back(baseline * options_.suspend_threshold);
    if (recent.size() > static_cast<std::size_t>(options_.sign_window)) {
      recent.erase(recent.begin());
      expected.erase(expected.begin());
    }

    // Contention inference: smoothed progress below the threshold. The
    // hardened variant demands statistical confirmation (sign test) plus a
    // second consecutive bad window before giving up the CPU.
    const bool below = progress.value() < baseline * options_.suspend_threshold;
    bool suspend = false;
    if (below) {
      ++below_streak;
      if (options_.hardened) {
        const gray::SignTestResult sign = gray::SignTest(expected, recent);
        result.sign_test_fired = result.sign_test_fired || sign.significant;
        suspend = below_streak >= 2 && sign.plus > sign.minus;
      } else {
        suspend = true;
      }
    } else {
      below_streak = 0;
      backoff_windows = options_.initial_backoff_windows;  // healthy again
    }

    if (suspend) {
      ++result.suspensions;
      result.suspended_windows += static_cast<std::uint64_t>(backoff_windows);
      if (trace != nullptr) {
        trace->Instant(obs::kTrackIcl, "manners.suspend", sys_->Now(), "backoff_windows",
                       static_cast<std::uint64_t>(backoff_windows));
      }
      sys_->SleepNs(static_cast<gray::Nanos>(backoff_windows) * options_.window);
      if (trace != nullptr) {
        trace->Instant(obs::kTrackIcl, "manners.resume", sys_->Now());
      }
      backoff_windows = std::min(backoff_windows * 2, options_.max_backoff_windows);
      // Measurements taken before the suspension describe a contended
      // world that may be gone; start the statistics fresh.
      progress = gray::ExponentialAverage(options_.ewma_alpha);
      recent.clear();
      expected.clear();
      below_streak = 0;
    }
  }

  sys_->MemFree(buffer);
  result.probe_report = engine.report();
  return result;
}

}  // namespace grayclassic
