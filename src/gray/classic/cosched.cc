#include "src/gray/classic/cosched.h"

#include <algorithm>
#include <vector>

namespace grayclassic {

namespace {

// Datagram protocol: the low bits carry the iteration, the high bits say
// request or response. Probe pings keep their own marker bit.
constexpr std::uint64_t kReqBit = 1ULL << 40;
constexpr std::uint64_t kRespBit = 1ULL << 41;
constexpr std::uint64_t kIterMask = kReqBit - 1;
constexpr std::uint64_t kMsgBytes = 64;

}  // namespace

bool CoschedIcl::Handle(const gray::NetMessage& msg, std::uint64_t want) {
  if ((msg.tag & gray::ProbeEngine::kPingTagMarker) != 0) {
    (void)sys_->NetSend(options_.endpoint, msg.from, msg.bytes, msg.tag);
    return false;
  }
  if ((msg.tag & kReqBit) != 0) {
    // Serve the predecessor immediately — this promptness is exactly the
    // signal implicit coscheduling reads on the other side.
    (void)sys_->NetSend(options_.endpoint, msg.from, kMsgBytes,
                        kRespBit | (msg.tag & kIterMask));
    ++result_.served;
    return false;
  }
  return msg.tag == want;  // stale responses (earlier iterations) fall out
}

void CoschedIcl::DrainInbox(std::uint64_t want, bool* got) {
  gray::NetMessage msg;
  while (!*got && sys_->NetPoll(options_.endpoint) > 0) {
    if (sys_->NetRecv(options_.endpoint, 0, &msg) >= 0) {
      *got = Handle(msg, want);
    }
  }
}

CoschedIclResult CoschedIcl::Run() {
  const gray::Nanos start = sys_->Now();

  // Benchmark the coordinated-case round trip against the echo fiber. The
  // echo fiber blocks in receive, so it is scheduled the moment the ping
  // lands — the "known state" the benchmark requires.
  gray::ProbeEngine engine(sys_);
  {
    std::vector<gray::TimedNetPing> pings(
        static_cast<std::size_t>(std::max(1, options_.benchmark_pings)),
        gray::TimedNetPing{options_.endpoint, options_.echo_peer, kMsgBytes,
                           options_.ping_timeout});
    engine.RunNetPings(pings);
  }
  gray::Nanos rtt = engine.latency_stats().count() > 0
                        ? static_cast<gray::Nanos>(engine.latency_stats().mean())
                        : options_.ping_timeout / 8;
  result_.benchmark_rtt = rtt;
  gap_ewma_ = static_cast<double>(rtt);
  spin_limit_ = std::min(options_.spin_cap,
                         std::max(rtt, static_cast<gray::Nanos>(
                                           options_.spin_multiplier *
                                           static_cast<double>(rtt))));

  if (options_.settle > 0) {
    sys_->SleepNs(options_.settle);  // let every peer finish calibrating
  }

  obs::TraceSink* trace = sys_->Trace();
  gray::NetMessage msg;
  for (int iter = 1; iter <= options_.iterations; ++iter) {
    // Serve anything that queued up while we were away, then compute.
    bool got = false;
    DrainInbox(0, &got);
    sys_->Compute(options_.compute);

    const std::uint64_t tag = kReqBit | static_cast<std::uint64_t>(iter);
    const std::uint64_t want = kRespBit | static_cast<std::uint64_t>(iter);
    gray::Nanos sent_at = sys_->Now();
    (void)sys_->NetSend(options_.endpoint, options_.partner, kMsgBytes, tag);
    int resends = 0;
    bool abandoned = false;  // this wait exhausted max_resend
    got = false;

    // Phase 1: spin. Stay on the CPU polling so a prompt response is
    // consumed the instant it lands.
    if (options_.policy != WaitPolicy::kBlockImmediate) {
      const bool forever = options_.policy == WaitPolicy::kSpinForever;
      const gray::Nanos spin_deadline = sys_->Now() + spin_limit_;
      gray::Nanos resend_at = sent_at + options_.block_timeout;
      while (!got) {
        const gray::Nanos now = sys_->Now();
        if (!forever && now >= spin_deadline) {
          break;
        }
        DrainInbox(want, &got);
        if (got) {
          break;
        }
        if (forever && now >= resend_at) {
          // Spin-forever still needs a liveness bound: a dropped request
          // would otherwise spin the fiber to the end of time.
          if (++resends > options_.max_resend) {
            abandoned = true;
            break;
          }
          if (options_.hardened) {
            ++result_.resends;
            if (trace != nullptr) {
              trace->Instant(obs::kTrackIcl, "cosched.retry", now, "iter",
                             static_cast<std::uint64_t>(iter));
            }
            sent_at = sys_->Now();
            (void)sys_->NetSend(options_.endpoint, options_.partner, kMsgBytes, tag);
          }
          resend_at = sys_->Now() + options_.block_timeout;
        }
        sys_->Compute(options_.spin_grain);
        result_.spin_time += options_.spin_grain;
      }
      if (got) {
        ++result_.fast_waits;
        if (options_.hardened) {
          // Recalibrate the spin limit from gaps actually caught spinning —
          // the coordinated-case response time, the only gap worth the burn.
          const double sample = static_cast<double>(sys_->Now() - sent_at);
          gap_ewma_ = options_.ewma_alpha * sample + (1.0 - options_.ewma_alpha) * gap_ewma_;
          spin_limit_ = std::min(
              options_.spin_cap,
              std::max(gray::Nanos{1},
                       static_cast<gray::Nanos>(options_.spin_multiplier * gap_ewma_)));
        }
      }
    }

    // Phase 2: block. Release the CPU; the kernel wakes us on delivery.
    if (!got && !abandoned) {
      ++result_.blocks;
      if (trace != nullptr) {
        trace->Instant(obs::kTrackIcl, "cosched.block", sys_->Now(), "iter",
                       static_cast<std::uint64_t>(iter));
      }
      while (!got) {
        if (sys_->NetRecv(options_.endpoint, options_.block_timeout, &msg) >= 0) {
          got = Handle(msg, want);
          continue;
        }
        if (++resends > options_.max_resend) {
          abandoned = true;
          break;
        }
        if (options_.hardened) {
          ++result_.resends;
          if (trace != nullptr) {
            trace->Instant(obs::kTrackIcl, "cosched.retry", sys_->Now(), "iter",
                           static_cast<std::uint64_t>(iter));
          }
          (void)sys_->NetSend(options_.endpoint, options_.partner, kMsgBytes, tag);
        }
      }
    }
    result_.gave_up = result_.gave_up || abandoned;
    ++result_.iterations_done;
  }

  result_.elapsed = sys_->Now() - start;
  result_.rtt_estimate = static_cast<gray::Nanos>(gap_ewma_);
  result_.probe_report = engine.report();
  return result_;
}

void CoschedIcl::Linger() {
  gray::NetMessage msg;
  while (sys_->NetRecv(options_.endpoint, options_.block_timeout, &msg) >= 0) {
    (void)Handle(msg, 0);
  }
}

std::uint64_t RunCoschedEcho(gray::SysApi* sys, int endpoint, gray::Nanos idle_timeout) {
  std::uint64_t echoed = 0;
  gray::NetMessage msg;
  while (sys->NetRecv(endpoint, idle_timeout, &msg) >= 0) {
    if ((msg.tag & gray::ProbeEngine::kPingTagMarker) != 0) {
      (void)sys->NetSend(endpoint, msg.from, msg.bytes, msg.tag);
      ++echoed;
    }
  }
  return echoed;
}

}  // namespace grayclassic
