#include "src/gray/classic/scenario.h"

#include <algorithm>
#include <memory>

#include "src/gray/sim_sys.h"
#include "src/os/machine.h"

namespace grayclassic {

namespace {

// The classic scenarios exercise the CPU, the VM, and the link — not the
// disks — so a lean host keeps Machine construction cheap.
graysim::MachineConfig HostConfig(const graysim::NetSchedule& net,
                                  const graysim::FaultPlan& chaos) {
  graysim::MachineConfig config;
  config.phys_mem_bytes = 64ULL * 1024 * 1024;
  config.kernel_reserved_bytes = 16ULL * 1024 * 1024;
  config.num_disks = 1;
  config.net = net;
  config.chaos = chaos;
  return config;
}

}  // namespace

double JainFairness(const std::vector<std::uint64_t>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  double sumsq = 0.0;
  for (const std::uint64_t x : xs) {
    const auto v = static_cast<double>(x);
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0.0) {
    return 0.0;
  }
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

TcpScenarioResult RunTcpScenario(const TcpScenarioOptions& options) {
  graysim::Machine machine(options.profile, HostConfig(options.net, options.chaos));
  graysim::Os& os = machine.os();

  const int n = std::max(1, options.num_senders);
  // Endpoint ids are assigned in creation order; allocating them up front
  // from the driver keeps the assignment independent of fiber scheduling.
  const int receiver_ep = os.NetEndpoint(os.default_pid());
  std::vector<int> sender_eps(static_cast<std::size_t>(n));
  for (int& ep : sender_eps) {
    ep = os.NetEndpoint(os.default_pid());
  }

  TcpScenarioResult result;
  result.senders.resize(static_cast<std::size_t>(n));
  TcpReceiverStats receiver_stats;
  auto senders_left = std::make_shared<int>(n);
  double queue_samples = 0.0;
  double queue_depth_sum = 0.0;

  std::vector<std::function<void(graysim::Pid)>> bodies;
  // Receiver: outlives the senders' worst RTO backoff, then idles out.
  const graysim::Nanos idle_timeout = 2 * options.sender.max_rto + 50'000'000;
  bodies.push_back([&, receiver_ep](graysim::Pid pid) {
    gray::SimSys sys(&os, pid);
    receiver_stats = RunTcpReceiver(&sys, receiver_ep, idle_timeout);
  });
  for (int i = 0; i < n; ++i) {
    bodies.push_back([&, i](graysim::Pid pid) {
      gray::SimSys sys(&os, pid);
      if (options.sender_stagger > 0 && i > 0) {
        sys.SleepNs(static_cast<graysim::Nanos>(i) * options.sender_stagger);
      }
      TcpIclOptions opts = options.sender;
      opts.endpoint = sender_eps[static_cast<std::size_t>(i)];
      opts.peer = receiver_ep;
      TcpIcl icl(&sys, opts);
      result.senders[static_cast<std::size_t>(i)] = icl.Run();
      --*senders_left;
    });
  }
  // Queue sampler: kernel-side observer (harness privilege, not gray-box).
  bodies.push_back([&](graysim::Pid pid) {
    while (*senders_left > 0) {
      os.Sleep(pid, options.queue_sample_period);
      queue_depth_sum += static_cast<double>(os.net().link().depth());
      queue_samples += 1.0;
    }
  });

  os.RunProcesses(bodies);
  result.virtual_time = os.Now();

  std::vector<std::uint64_t> acked;
  acked.reserve(result.senders.size());
  for (const TcpIclResult& s : result.senders) {
    result.acked += s.acked;
    result.timeouts += s.timeouts;
    result.avg_cwnd += s.avg_cwnd / static_cast<double>(n);
    acked.push_back(s.acked);
  }
  result.delivered = receiver_stats.in_order;
  result.delivered_bytes = receiver_stats.bytes;
  result.congestion_drops = os.net().congestion_drops() + os.net().red_drops();
  result.random_losses = os.net().loss_drops();
  result.chaos_drops = os.net().chaos_drops();
  result.fairness = JainFairness(acked);
  result.avg_queue = queue_samples > 0.0 ? queue_depth_sum / queue_samples : 0.0;
  const double capacity_bytes = options.net.bytes_per_sec *
                                static_cast<double>(options.sender.run_for) / 1e9;
  result.goodput = capacity_bytes > 0.0
                       ? static_cast<double>(result.delivered_bytes) / capacity_bytes
                       : 0.0;
  return result;
}

CoschedScenarioResult RunCoschedScenario(const CoschedScenarioOptions& options) {
  graysim::MachineConfig host = HostConfig(graysim::NetSchedule{}, options.chaos);
  host.scheduler_slice = options.scheduler_slice;
  graysim::Machine machine(options.profile, host);
  graysim::Os& os = machine.os();

  const int n = std::max(2, options.procs);
  const int echo_ep = os.NetEndpoint(os.default_pid());
  std::vector<int> proc_eps(static_cast<std::size_t>(n));
  for (int& ep : proc_eps) {
    ep = os.NetEndpoint(os.default_pid());
  }

  CoschedScenarioResult result;
  result.procs.resize(static_cast<std::size_t>(n));
  auto ring_left = std::make_shared<int>(n);
  graysim::Nanos local_busy_total = 0;

  std::vector<std::function<void(graysim::Pid)>> bodies;
  bodies.push_back([&, echo_ep](graysim::Pid pid) {
    gray::SimSys sys(&os, pid);
    (void)RunCoschedEcho(&sys, echo_ep, 50'000'000);
  });
  for (int i = 0; i < n; ++i) {
    bodies.push_back([&, i](graysim::Pid pid) {
      gray::SimSys sys(&os, pid);
      CoschedIclOptions opts = options.proc;
      opts.endpoint = proc_eps[static_cast<std::size_t>(i)];
      opts.partner = proc_eps[static_cast<std::size_t>((i + 1) % n)];
      opts.echo_peer = echo_ep;
      CoschedIcl icl(&sys, opts);
      result.procs[static_cast<std::size_t>(i)] = icl.Run();
      --*ring_left;
      // Serve stragglers until the whole ring is done (a single quiet
      // Linger window is not enough when chaos can drop a resend); locals
      // already saw the job end, so job-time accounting excludes this tail.
      while (*ring_left > 0) {
        icl.Linger();
      }
    });
  }
  for (int j = 0; j < options.local_jobs; ++j) {
    bodies.push_back([&](graysim::Pid pid) {
      if (options.local_start_delay > 0) {
        os.Sleep(pid, options.local_start_delay);
      }
      while (*ring_left > 0) {
        os.Compute(pid, options.local_grain);
        local_busy_total += options.local_grain;
      }
    });
  }

  os.RunProcesses(bodies);
  result.virtual_time = os.Now();

  double bench_rtt_sum = 0.0;
  for (const CoschedIclResult& p : result.procs) {
    result.job_time = std::max(result.job_time, p.elapsed);
    result.spin_time += p.spin_time;
    result.blocks += p.blocks;
    result.fast_waits += p.fast_waits;
    result.resends += p.resends;
    result.any_gave_up = result.any_gave_up || p.gave_up;
    bench_rtt_sum += static_cast<double>(p.benchmark_rtt);
  }
  // Dedicated lock-step ideal: every ring process's compute serializes on
  // the one CPU, plus a round trip of coordination per iteration.
  const double ideal =
      static_cast<double>(options.proc.iterations) *
      (static_cast<double>(n) * static_cast<double>(options.proc.compute) +
       bench_rtt_sum / static_cast<double>(n));
  result.slowdown =
      ideal > 0.0 ? static_cast<double>(result.job_time) / ideal : 0.0;
  result.local_cpu_share =
      options.local_jobs > 0 && result.job_time > 0
          ? static_cast<double>(local_busy_total) /
                (static_cast<double>(result.job_time) *
                 static_cast<double>(options.local_jobs))
          : 0.0;
  return result;
}

MannersScenarioResult RunMannersScenario(const MannersScenarioOptions& options) {
  graysim::Machine machine(options.profile,
                           HostConfig(graysim::NetSchedule{}, options.chaos));
  graysim::Os& os = machine.os();

  MannersScenarioResult result;
  const graysim::Nanos run_for = options.bg.run_for;

  std::vector<std::function<void(graysim::Pid)>> bodies;
  bodies.push_back([&](graysim::Pid pid) {
    gray::SimSys sys(&os, pid);
    MannersIcl icl(&sys, options.bg);
    result.bg = icl.Run();
  });
  if (options.fg_active) {
    bodies.push_back([&](graysim::Pid pid) {
      gray::SimSys sys(&os, pid);
      const graysim::Nanos start = sys.Now();
      while (sys.Now() - start < run_for) {
        const graysim::Nanos offset = sys.Now() - start;
        if (options.fg_active(offset)) {
          const graysim::Nanos t0 = sys.Now();
          sys.Compute(options.fg_grain);
          result.fg_demand += options.fg_grain;
          result.fg_elapsed += sys.Now() - t0;
        } else {
          sys.SleepNs(options.fg_grain);
        }
      }
    });
  }

  os.RunProcesses(bodies);
  result.virtual_time = os.Now();

  result.fg_slowdown = result.fg_demand > 0
                           ? static_cast<double>(result.fg_elapsed) /
                                 static_cast<double>(result.fg_demand)
                           : 1.0;
  const double idle_ns =
      static_cast<double>(run_for) - static_cast<double>(result.fg_demand);
  result.idle_utilization =
      idle_ns > 0.0 ? static_cast<double>(result.bg.bg_units) * result.bg.unit_cost_ns /
                          idle_ns
                    : 0.0;
  return result;
}

}  // namespace grayclassic
