// TCP congestion control as a gray-box ICL (paper §3, Table 1).
//
// The sender combines algorithmic knowledge of the network ("the network
// drops packets when there is congestion") with observations (time before
// an ACK arrives) to infer hidden state (congestion) and control its send
// rate — Tahoe-style AIMD with slow start and go-back-N retransmission.
// Unlike the closed-form tick simulation this replaces, the ICL is a real
// gray-box client: it talks to the kernel's simulated link exclusively
// through SysApi's datagram calls, benchmarks the round-trip time with a
// ProbeEngine ping run (Table 1's "Benchmarks" row for TCP is "none"; the
// hardened variant adds one, which is exactly the paper's point about what
// the toolbox contributes), and estimates RTO with Jacobson's mean/variance
// filter (Table 1's "Statistics" row).
//
// The cautionary tale survives the rebuild: over a "wireless" link (random
// non-congestion loss) the very same inference misreads loss as congestion
// and collapses the window for no reason — misidentified gray-box knowledge
// fails in new environments.
#ifndef SRC_GRAY_CLASSIC_TCP_H_
#define SRC_GRAY_CLASSIC_TCP_H_

#include <cstdint>
#include <deque>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"

namespace grayclassic {

using gray::Nanos;

struct TcpIclOptions {
  int endpoint = -1;  // our endpoint (acks land here)
  int peer = -1;      // receiver's endpoint
  std::uint64_t packet_bytes = 1024;
  // Run until this much virtual time has elapsed, then stop sending; acked
  // packets within the window are what goodput is measured over.
  Nanos run_for = 200'000'000;  // 200 ms
  // Initial RTT benchmark: ProbeEngine ping run against the receiver (it
  // echoes probe-tagged messages).
  int benchmark_pings = 8;
  Nanos ping_timeout = 5'000'000;  // 5 ms
  // Congestion control.
  double initial_ssthresh = 64.0;
  double max_cwnd = 256.0;
  // Fast retransmit: this many duplicate cumulative acks mean the packet at
  // `base` is gone but later ones are arriving — halve and resend without
  // waiting for the RTO (loss inferred from ack pattern, not silence).
  int dupack_threshold = 3;
  Nanos min_rto = 1'000'000;    // 1 ms floor (standard tick coarseness)
  Nanos max_rto = 100'000'000;  // 100 ms backoff ceiling (hardened clamp)
  // Hardened variant: Karn's rule (never sample RTT off a retransmitted
  // packet), the max_rto clamp, and a ping-run recalibration after
  // `recalibrate_after` consecutive RTOs (the estimator has clearly lost
  // the plot — re-benchmark instead of doubling forever). Legacy keeps the
  // naive estimator for A/B comparison.
  bool hardened = true;
  int recalibrate_after = 4;
};

struct TcpIclResult {
  std::uint64_t acked = 0;          // packets cumulatively acknowledged
  std::uint64_t sent = 0;           // data packets put on the wire
  std::uint64_t retransmits = 0;    // go-back-N resends
  std::uint64_t timeouts = 0;       // window collapses (congestion inferred)
  std::uint64_t fast_retransmits = 0;  // dup-ack-triggered halvings
  std::uint64_t recalibrations = 0; // hardened ping-run re-benchmarks
  double avg_cwnd = 0.0;            // time-averaged congestion window
  Nanos srtt = 0;                   // final smoothed RTT estimate
  Nanos rto = 0;                    // final retransmission timeout
  gray::ProbeReport probe_report;   // the RTT benchmark's accounting
};

// One sender. Construct with the endpoints, call Run() from the sending
// process; the receiver side is RunTcpReceiver below (a different process).
class TcpIcl {
 public:
  TcpIcl(gray::SysApi* sys, const TcpIclOptions& options) : sys_(sys), options_(options) {}

  [[nodiscard]] TcpIclResult Run();

 private:
  struct InFlight {
    std::uint64_t seq = 0;
    Nanos sent_at = 0;
    bool retransmitted = false;
  };

  void SendPacket(std::uint64_t seq, bool retransmit);
  void UpdateRtt(Nanos sample);
  void OnTimeout();

  gray::SysApi* sys_;
  TcpIclOptions options_;
  TcpIclResult result_;

  std::uint64_t base_ = 1;  // oldest unacked sequence number
  std::uint64_t next_ = 1;  // next sequence number to send
  std::uint64_t highest_sent_ = 0;
  std::uint64_t recover_ = 0;  // NewReno guard: ignore dup-acks below this
  double cwnd_ = 1.0;
  double ssthresh_ = 0.0;
  Nanos srtt_ = 0;
  Nanos rttvar_ = 0;
  Nanos rto_ = 0;
  int consecutive_timeouts_ = 0;
  int dup_acks_ = 0;
  std::deque<InFlight> in_flight_;
  Nanos end_ = 0;
};

// Receiver stats: what landed, in order and out of it.
struct TcpReceiverStats {
  std::uint64_t in_order = 0;    // packets accepted at the expected seq
  std::uint64_t out_of_order = 0;  // arrivals past a hole (dup-acked)
  std::uint64_t bytes = 0;       // payload bytes of in-order packets
};

// The cooperating receiver loop: per-sender cumulative acks (the ack's tag
// is the next expected sequence number) plus echo service for probe pings.
// Returns when `idle_timeout` passes without traffic — after every sender
// has gone quiet.
TcpReceiverStats RunTcpReceiver(gray::SysApi* sys, int endpoint, Nanos idle_timeout,
                                std::uint64_t ack_bytes = 40);

}  // namespace grayclassic

#endif  // SRC_GRAY_CLASSIC_TCP_H_
