#include "src/gray/classic/tcp.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace grayclassic {

namespace {

// An ICL never sees the wire; congestion inference can only clamp what it
// controls. kNever-free local helper: saturating deadline math.
[[nodiscard]] Nanos SaturatingAdd(Nanos a, Nanos b) {
  return b > ~Nanos{0} - a ? ~Nanos{0} : a + b;
}

}  // namespace

void TcpIcl::SendPacket(std::uint64_t seq, bool retransmit) {
  if (sys_->NetSend(options_.endpoint, options_.peer, options_.packet_bytes, seq) < 0) {
    return;  // backend refused; the RTO path will retry
  }
  ++result_.sent;
  if (retransmit) {
    ++result_.retransmits;
  }
  in_flight_.push_back(InFlight{seq, sys_->Now(), retransmit});
}

void TcpIcl::UpdateRtt(Nanos sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    // Jacobson/Karels: srtt += err/8, rttvar += (|err| - rttvar)/4.
    const auto err = static_cast<std::int64_t>(sample) - static_cast<std::int64_t>(srtt_);
    srtt_ = static_cast<Nanos>(static_cast<std::int64_t>(srtt_) + err / 8);
    const auto abs_err = static_cast<Nanos>(err < 0 ? -err : err);
    rttvar_ += (abs_err - rttvar_) / 4;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, options_.min_rto, options_.max_rto);
}

void TcpIcl::OnTimeout() {
  ++result_.timeouts;
  ++consecutive_timeouts_;
  if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
    t->Instant(obs::kTrackIcl, "tcp.congestion", sys_->Now(), "cwnd",
               static_cast<std::uint64_t>(cwnd_));
  }
  // Congestion inferred: multiplicative decrease, slow-start restart,
  // go-back-N from the oldest unacked packet.
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  recover_ = highest_sent_;
  next_ = base_;
  in_flight_.clear();
  // Exponential RTO backoff. The legacy estimator doubles without a
  // ceiling, which is how a loss burst turns into a multi-second stall.
  const Nanos ceiling = options_.hardened ? options_.max_rto : ~Nanos{0} / 4;
  rto_ = std::min(rto_ * 2, ceiling);
}

TcpIclResult TcpIcl::Run() {
  // Benchmark phase: measure the uncontended round trip with probe pings
  // (the receiver echoes anything tagged with the probe marker).
  gray::ProbeEngine engine(sys_);
  const auto bench = [&] {
    std::vector<gray::TimedNetPing> pings(
        static_cast<std::size_t>(std::max(1, options_.benchmark_pings)),
        gray::TimedNetPing{options_.endpoint, options_.peer, options_.packet_bytes,
                           options_.ping_timeout});
    const std::uint64_t before = engine.latency_stats().count();
    engine.RunNetPings(pings);
    if (engine.latency_stats().count() > before) {
      srtt_ = static_cast<Nanos>(engine.latency_stats().mean());
      rttvar_ = std::max(static_cast<Nanos>(engine.latency_stats().stddev()), srtt_ / 4);
      rto_ = std::clamp(srtt_ + 4 * rttvar_, options_.min_rto, options_.max_rto);
    }
  };
  bench();
  if (rto_ == 0) {
    rto_ = options_.min_rto * 8;  // no echo came back; start conservative
  }
  ssthresh_ = options_.initial_ssthresh;

  const Nanos start = sys_->Now();
  end_ = SaturatingAdd(start, options_.run_for);
  double cwnd_integral = 0.0;
  Nanos integral_t = start;
  const auto integrate = [&](Nanos now) {
    if (now <= integral_t) {
      return;  // clock already past this point (e.g. final clamp to end_)
    }
    cwnd_integral += cwnd_ * static_cast<double>(now - integral_t);
    integral_t = now;
  };

  gray::NetMessage msg;
  while (sys_->Now() < end_) {
    // Fill the window.
    while (next_ < base_ + static_cast<std::uint64_t>(cwnd_) && sys_->Now() < end_) {
      const bool retransmit = next_ <= highest_sent_;
      SendPacket(next_, retransmit);
      highest_sent_ = std::max(highest_sent_, next_);
      ++next_;
    }
    const Nanos now = sys_->Now();
    if (now >= end_) {
      break;
    }
    // Wait for an ack until the oldest unacked packet's RTO expires.
    const Nanos deadline =
        std::min(end_, in_flight_.empty() ? SaturatingAdd(now, rto_)
                                          : SaturatingAdd(in_flight_.front().sent_at, rto_));
    const std::int64_t rc =
        sys_->NetRecv(options_.endpoint, deadline > now ? deadline - now : 0, &msg);
    if (rc >= 0) {
      if ((msg.tag & gray::ProbeEngine::kPingTagMarker) != 0) {
        continue;  // stale echo of an abandoned benchmark ping
      }
      const std::uint64_t ack = msg.tag;  // cumulative: next expected seq
      if (ack <= base_) {
        // Duplicate ack: the receiver is still seeing traffic but is stuck
        // at `base` — the gray-box read is "that one packet is gone, the
        // path is alive". Halve and go-back-N without waiting out the RTO.
        // Go-back-N resends packets the receiver already has; each one
        // yields another dup-ack. The recovery guard (NewReno) keeps those
        // self-inflicted dup-acks from cascading into more retransmits.
        if (ack == base_ && ++dup_acks_ >= options_.dupack_threshold &&
            base_ <= highest_sent_ && base_ > recover_) {
          ++result_.fast_retransmits;
          if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
            t->Instant(obs::kTrackIcl, "tcp.fast_rtx", sys_->Now(), "seq", base_);
          }
          integrate(sys_->Now());
          ssthresh_ = std::max(2.0, cwnd_ / 2.0);
          cwnd_ = ssthresh_;
          recover_ = highest_sent_;
          next_ = base_;
          in_flight_.clear();
          dup_acks_ = 0;
        }
        continue;
      }
      dup_acks_ = 0;
      const Nanos ack_now = sys_->Now();
      integrate(ack_now);
      std::uint64_t newly = ack - base_;
      result_.acked += newly;
      // RTT sample off the highest newly acked packet; Karn's rule
      // (hardened) refuses samples from retransmitted packets, whose ack is
      // ambiguous.
      while (!in_flight_.empty() && in_flight_.front().seq < ack) {
        const InFlight rec = in_flight_.front();
        in_flight_.pop_front();
        if (rec.seq == ack - 1 && (!options_.hardened || !rec.retransmitted)) {
          UpdateRtt(ack_now - rec.sent_at);
        }
      }
      consecutive_timeouts_ = 0;
      for (; newly > 0; --newly) {
        cwnd_ = cwnd_ < ssthresh_ ? cwnd_ + 1.0 : cwnd_ + 1.0 / cwnd_;
      }
      cwnd_ = std::min(cwnd_, options_.max_cwnd);
      base_ = ack;
    } else if (sys_->Now() >= deadline && deadline < end_) {
      integrate(sys_->Now());
      OnTimeout();
      if (options_.hardened && consecutive_timeouts_ >= options_.recalibrate_after) {
        // The estimator has clearly lost the plot (a loss burst, a shifted
        // delay regime): re-benchmark instead of doubling blindly.
        ++result_.recalibrations;
        if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
          t->Instant(obs::kTrackIcl, "tcp.recalibrate", sys_->Now(), "rto_ns", rto_);
        }
        srtt_ = 0;
        bench();
        if (rto_ == 0) {
          rto_ = options_.min_rto * 8;
        }
        consecutive_timeouts_ = 0;
      }
    }
    // rc < 0 before the deadline means a transient backend refusal; loop.
  }

  integrate(end_);
  result_.avg_cwnd = integral_t == start
                         ? cwnd_
                         : cwnd_integral / static_cast<double>(integral_t - start);
  result_.srtt = srtt_;
  result_.rto = rto_;
  result_.probe_report = engine.report();
  return result_;
}

TcpReceiverStats RunTcpReceiver(gray::SysApi* sys, int endpoint, Nanos idle_timeout,
                                std::uint64_t ack_bytes) {
  TcpReceiverStats stats;
  std::unordered_map<std::int32_t, std::uint64_t> expected;  // per sender endpoint
  gray::NetMessage msg;
  while (true) {
    if (sys->NetRecv(endpoint, idle_timeout, &msg) < 0) {
      return stats;  // idle long enough: every sender has gone quiet
    }
    if ((msg.tag & gray::ProbeEngine::kPingTagMarker) != 0) {
      (void)sys->NetSend(endpoint, msg.from, msg.bytes, msg.tag);  // echo service
      continue;
    }
    std::uint64_t& next = expected.try_emplace(msg.from, 1).first->second;
    if (msg.tag == next) {
      ++next;
      ++stats.in_order;
      stats.bytes += msg.bytes;
    } else if (msg.tag > next) {
      ++stats.out_of_order;  // a hole: the dup ack below asks for `next`
    }
    (void)sys->NetSend(endpoint, msg.from, ack_bytes, next);  // cumulative ack
  }
}

}  // namespace grayclassic
