// Scenario drivers for the classic gray-box systems (Table 1).
//
// This is harness code, not a gray-box layer: it builds a simulated
// Machine, spawns the cooperating processes (senders and receiver, ring
// peers and echo fiber, background and foreground), and aggregates
// per-process ICL results with kernel-side link counters into the report
// surfaces bench/table1_prior_systems and tests/classic_test consume. The
// ICLs themselves (tcp.h, cosched.h, manners.h) never see graysim — they
// observe and control strictly through SysApi.
#ifndef SRC_GRAY_CLASSIC_SCENARIO_H_
#define SRC_GRAY_CLASSIC_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/gray/classic/cosched.h"
#include "src/gray/classic/manners.h"
#include "src/gray/classic/tcp.h"
#include "src/os/platform.h"

namespace grayclassic {

// ---- TCP ----

struct TcpScenarioOptions {
  graysim::PlatformProfile profile = graysim::PlatformProfile::Linux22();
  int num_senders = 4;
  // The link under test. queue_capacity bounds the router queue (tail
  // drop), drop_prob models a wireless medium, red enables early drops.
  graysim::NetSchedule net;
  TcpIclOptions sender;  // template; endpoint/peer are filled per sender
  graysim::Nanos sender_stagger = 1'000'000;  // desynchronize start-up bursts
  graysim::Nanos queue_sample_period = 2'000'000;  // avg_queue sampling grain
  graysim::FaultPlan chaos;  // armed at construction when enabled
};

struct TcpScenarioResult {
  std::uint64_t delivered = 0;         // in-order packets at the receiver
  std::uint64_t delivered_bytes = 0;
  std::uint64_t acked = 0;             // sum of sender-side cumulative acks
  std::uint64_t congestion_drops = 0;  // router tail + RED drops
  std::uint64_t random_losses = 0;     // wireless (schedule) losses
  std::uint64_t chaos_drops = 0;       // interference-injected losses
  std::uint64_t timeouts = 0;          // window collapses across senders
  double goodput = 0.0;                // delivered bytes / link capacity
  double avg_queue = 0.0;              // sampled router queue depth
  double fairness = 0.0;               // Jain's index across senders' acks
  double avg_cwnd = 0.0;               // mean of the senders' time-averages
  graysim::Nanos virtual_time = 0;     // machine clock when the run ended
  std::vector<TcpIclResult> senders;
};

[[nodiscard]] TcpScenarioResult RunTcpScenario(const TcpScenarioOptions& options);

// ---- implicit coscheduling ----

struct CoschedScenarioOptions {
  graysim::PlatformProfile profile = graysim::PlatformProfile::Linux22();
  int procs = 4;            // ring size
  int local_jobs = 4;       // CPU-bound competitors sharing the host
  graysim::Nanos local_grain = 100'000;  // local-job compute granularity
  // Fine-grain communication needs a fine-grain scheduler: the default
  // 10 ms slice would make every response wait out multi-slice rotations.
  graysim::Nanos scheduler_slice = 1'000'000;
  // Local jobs hold off this long so the ring benchmarks its round trip on
  // a quiet host (Table 1: known state is required for benchmarks). The
  // spin limit then tracks the coordinated-case response, not the
  // rotation-inflated contended one.
  graysim::Nanos local_start_delay = 20'000'000;
  CoschedIclOptions proc;   // template; endpoints are filled per process
  graysim::FaultPlan chaos;
};

struct CoschedScenarioResult {
  graysim::Nanos job_time = 0;    // slowest ring process's Run() time
  double slowdown = 0.0;          // vs dedicated lock-step execution
  double local_cpu_share = 0.0;   // mean CPU fraction each local job got
  graysim::Nanos spin_time = 0;   // total CPU burned polling
  std::uint64_t blocks = 0;
  std::uint64_t fast_waits = 0;   // responses caught while spinning
  std::uint64_t resends = 0;
  bool any_gave_up = false;
  graysim::Nanos virtual_time = 0;    // machine clock when the run ended
  std::vector<CoschedIclResult> procs;
};

[[nodiscard]] CoschedScenarioResult RunCoschedScenario(const CoschedScenarioOptions& options);

// ---- MS Manners ----

struct MannersScenarioOptions {
  graysim::PlatformProfile profile = graysim::PlatformProfile::Linux22();
  MannersIclOptions bg;
  // Foreground demand schedule over the offset from scenario start; null =
  // no foreground. Callers must leave the calibration windows quiet — known
  // state is how Manners learns its baseline (Table 1: "none (slow
  // convergence)" — the rebuild calibrates explicitly instead).
  std::function<bool(graysim::Nanos)> fg_active;
  graysim::Nanos fg_grain = 2'000'000;  // foreground compute granularity
  graysim::FaultPlan chaos;
};

struct MannersScenarioResult {
  MannersIclResult bg;
  graysim::Nanos fg_demand = 0;   // compute the foreground wanted
  graysim::Nanos fg_elapsed = 0;  // wall time those bursts actually took
  double fg_slowdown = 0.0;       // fg_elapsed / fg_demand (1.0 = no impact)
  double idle_utilization = 0.0;  // bg work as a fraction of idle CPU
  graysim::Nanos virtual_time = 0;  // machine clock when the run ended
};

[[nodiscard]] MannersScenarioResult RunMannersScenario(const MannersScenarioOptions& options);

// Jain's fairness index over per-flow totals (1.0 = perfectly fair).
[[nodiscard]] double JainFairness(const std::vector<std::uint64_t>& xs);

}  // namespace grayclassic

#endif  // SRC_GRAY_CLASSIC_SCENARIO_H_
