#include "src/gray/compose/compose.h"

#include <algorithm>
#include <unordered_map>

#include "src/gray/toolbox/stats.h"

namespace gray {

Compose::Compose(SysApi* sys, FccdOptions fccd_options, FldcOptions fldc_options)
    : sys_(sys), fccd_(sys, fccd_options), fldc_(sys, std::move(fldc_options)) {}

ComposedOrder Compose::OrderFiles(std::span<const std::string> paths) {
  ComposedOrder result;
  if (paths.empty()) {
    return result;
  }

  // Probe times per file (FCCD) and i-numbers (FLDC).
  const std::vector<RankedFile> ranked = fccd_.OrderFiles(paths);
  std::unordered_map<std::string, std::uint64_t> inum_of;
  for (const StatOrderEntry& e : fldc_.OrderByInode(paths)) {
    inum_of[e.path] = e.stat_ok ? e.inum : ~0ULL;
  }

  std::vector<double> times;
  times.reserve(ranked.size());
  for (const RankedFile& rf : ranked) {
    times.push_back(static_cast<double>(rf.avg_probe_time));
  }
  const Clusters clusters = TwoMeans(times);
  result.clustered = clusters.separated;
  result.cluster_threshold_ns = clusters.threshold;

  std::vector<const RankedFile*> cached;
  std::vector<const RankedFile*> uncached;
  for (const RankedFile& rf : ranked) {
    if (clusters.separated && static_cast<double>(rf.avg_probe_time) < clusters.threshold) {
      cached.push_back(&rf);
    } else {
      uncached.push_back(&rf);
    }
  }
  result.predicted_in_cache = cached.size();

  // Predictions may be wrong, so each group is still sorted by i-number.
  const auto by_inum = [&](const RankedFile* a, const RankedFile* b) {
    return inum_of[a->path] < inum_of[b->path];
  };
  std::stable_sort(cached.begin(), cached.end(), by_inum);
  std::stable_sort(uncached.begin(), uncached.end(), by_inum);

  result.order.reserve(paths.size());
  for (const RankedFile* rf : cached) {
    result.order.push_back(rf->path);
  }
  for (const RankedFile* rf : uncached) {
    result.order.push_back(rf->path);
  }
  return result;
}

}  // namespace gray
