// Composition of FCCD and FLDC (paper §4.2.4).
//
// The best file order visits in-cache files first, then the rest in on-disk
// layout order. FCCD alone only ranks by probe time and never says which
// files ARE cached, so the composition applies two-group (2-means)
// clustering to the probe times: the fast cluster is predicted in-cache.
// Because predictions can be wrong (e.g. everything is on disk), BOTH groups
// are still sorted by i-number.
#ifndef SRC_GRAY_COMPOSE_COMPOSE_H_
#define SRC_GRAY_COMPOSE_COMPOSE_H_

#include <span>
#include <string>
#include <vector>

#include "src/gray/fccd/fccd.h"
#include "src/gray/fldc/fldc.h"
#include "src/gray/sys_api.h"

namespace gray {

struct ComposedOrder {
  std::vector<std::string> order;
  // True when probe times split into two clear groups.
  bool clustered = false;
  std::size_t predicted_in_cache = 0;
  double cluster_threshold_ns = 0.0;
};

class Compose {
 public:
  Compose(SysApi* sys, FccdOptions fccd_options = FccdOptions{},
          FldcOptions fldc_options = FldcOptions{});

  [[nodiscard]] ComposedOrder OrderFiles(std::span<const std::string> paths);

  [[nodiscard]] Fccd& fccd() { return fccd_; }
  [[nodiscard]] Fldc& fldc() { return fldc_; }
  // Combined observation overhead of both constituent ICLs.
  [[nodiscard]] ProbeReport probe_report() const {
    ProbeReport merged = fccd_.probe_report();
    merged.Merge(fldc_.probe_report());
    return merged;
  }

 private:
  SysApi* sys_;
  Fccd fccd_;
  Fldc fldc_;
};

}  // namespace gray

#endif  // SRC_GRAY_COMPOSE_COMPOSE_H_
