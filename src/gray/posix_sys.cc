#include "src/gray/posix_sys.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

namespace gray {

namespace {

// The simulated errors map onto errno loosely; callers only branch on < 0.
int NegErrno() { return errno != 0 ? -errno : -1; }

constexpr Nanos TimespecToNanos(const timespec& ts) {
  return static_cast<Nanos>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<Nanos>(ts.tv_nsec);
}

}  // namespace

PosixSys::~PosixSys() {
  for (auto& [handle, mapping] : mappings_) {
    ::munmap(mapping.addr, mapping.bytes);
  }
}

Nanos PosixSys::Now() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return TimespecToNanos(ts);
}

void PosixSys::SleepNs(Nanos duration) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(duration / 1'000'000'000ULL);
  ts.tv_nsec = static_cast<long>(duration % 1'000'000'000ULL);
  ::nanosleep(&ts, nullptr);
}

int PosixSys::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  return fd >= 0 ? fd : NegErrno();
}

int PosixSys::Creat(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  return fd >= 0 ? fd : NegErrno();
}

int PosixSys::Close(int fd) { return ::close(fd) == 0 ? 0 : NegErrno(); }

std::int64_t PosixSys::Pread(int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                             std::uint64_t offset) {
  if (!buf.empty()) {
    const std::size_t want = std::min<std::uint64_t>(len, buf.size());
    const ssize_t n = ::pread(fd, buf.data(), want, static_cast<off_t>(offset));
    return n >= 0 ? n : NegErrno();
  }
  // Timing-only read: the data still has to cross into user space (that IS
  // the probe), so read into a scratch buffer.
  std::array<std::uint8_t, 1 << 16> scratch;
  std::uint64_t done = 0;
  while (done < len) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(scratch.size(), len - done));
    const ssize_t n = ::pread(fd, scratch.data(), want, static_cast<off_t>(offset + done));
    if (n < 0) {
      return NegErrno();
    }
    if (n == 0) {
      break;  // EOF
    }
    done += static_cast<std::uint64_t>(n);
  }
  return static_cast<std::int64_t>(done);
}

std::int64_t PosixSys::Pwrite(int fd, std::uint64_t len, std::uint64_t offset) {
  static const std::array<std::uint8_t, 1 << 16> kZeros{};
  std::uint64_t done = 0;
  while (done < len) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(kZeros.size(), len - done));
    const ssize_t n = ::pwrite(fd, kZeros.data(), want, static_cast<off_t>(offset + done));
    if (n < 0) {
      return done > 0 ? static_cast<std::int64_t>(done) : NegErrno();
    }
    done += static_cast<std::uint64_t>(n);
  }
  return static_cast<std::int64_t>(done);
}

int PosixSys::Fsync(int fd) { return ::fsync(fd) == 0 ? 0 : NegErrno(); }

int PosixSys::Stat(const std::string& path, FileInfo* out) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return NegErrno();
  }
  out->inum = static_cast<std::uint64_t>(st.st_ino);
  out->size = static_cast<std::uint64_t>(st.st_size);
  out->is_dir = S_ISDIR(st.st_mode);
  out->atime = TimespecToNanos(st.st_atim);
  out->mtime = TimespecToNanos(st.st_mtim);
  return 0;
}

int PosixSys::ReadDir(const std::string& path, std::vector<DirEntry>* out) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return NegErrno();
  }
  out->clear();
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    out->push_back(DirEntry{name, entry->d_type == DT_DIR});
  }
  ::closedir(dir);
  return 0;
}

int PosixSys::Unlink(const std::string& path) {
  return ::unlink(path.c_str()) == 0 ? 0 : NegErrno();
}

int PosixSys::Mkdir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 ? 0 : NegErrno();
}

int PosixSys::Rmdir(const std::string& path) {
  return ::rmdir(path.c_str()) == 0 ? 0 : NegErrno();
}

int PosixSys::Rename(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str()) == 0 ? 0 : NegErrno();
}

int PosixSys::Utimes(const std::string& path, Nanos atime, Nanos mtime) {
  timespec times[2];
  times[0].tv_sec = static_cast<time_t>(atime / 1'000'000'000ULL);
  times[0].tv_nsec = static_cast<long>(atime % 1'000'000'000ULL);
  times[1].tv_sec = static_cast<time_t>(mtime / 1'000'000'000ULL);
  times[1].tv_nsec = static_cast<long>(mtime % 1'000'000'000ULL);
  return ::utimensat(AT_FDCWD, path.c_str(), times, 0) == 0 ? 0 : NegErrno();
}

int PosixSys::Mincore(int fd, std::uint64_t offset, std::uint64_t length,
                      std::vector<bool>* resident) {
  const std::uint32_t ps = PageSize();
  const std::uint64_t aligned = offset / ps * ps;
  const std::uint64_t span = (offset - aligned) + length;
  void* addr = ::mmap(nullptr, span, PROT_READ, MAP_SHARED, fd,
                      static_cast<off_t>(aligned));
  if (addr == MAP_FAILED) {
    return NegErrno();
  }
  const std::size_t pages = (span + ps - 1) / ps;
  std::vector<unsigned char> bitmap(pages, 0);
  const int rc = ::mincore(addr, span, bitmap.data());
  ::munmap(addr, span);
  if (rc != 0) {
    return NegErrno();
  }
  resident->clear();
  // Report only the pages covering [offset, offset+length).
  const std::size_t first = (offset - aligned) / ps;
  for (std::size_t p = first; p < pages; ++p) {
    resident->push_back((bitmap[p] & 1u) != 0);
  }
  return 0;
}

void PosixSys::PreadBatch(std::span<const PreadOp> ops, std::span<BatchResult> out) {
  const std::size_t n = std::min(ops.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Nanos t0 = Now();
    const std::int64_t rc = Pread(ops[i].fd, {}, ops[i].len, ops[i].offset);
    out[i] = BatchResult{Now() - t0, rc};
  }
}

void PosixSys::MemTouchBatch(std::span<const MemTouchOp> ops, std::span<BatchResult> out) {
  const std::size_t n = std::min(ops.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Nanos t0 = Now();
    MemTouch(ops[i].handle, ops[i].page_index, ops[i].write);
    out[i] = BatchResult{Now() - t0, 0};
  }
}

void PosixSys::StatBatch(std::span<const std::string> paths, std::span<FileInfo> infos,
                         std::span<BatchResult> out) {
  const std::size_t n = std::min({paths.size(), infos.size(), out.size()});
  for (std::size_t i = 0; i < n; ++i) {
    const Nanos t0 = Now();
    const int rc = Stat(paths[i], &infos[i]);
    out[i] = BatchResult{Now() - t0, rc};
  }
}

MemHandle PosixSys::MemAlloc(std::uint64_t bytes) {
  if (bytes == 0) {
    return kInvalidMem;
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return kInvalidMem;
  }
  const MemHandle handle = next_handle_++;
  mappings_.emplace(handle, Mapping{addr, bytes});
  return handle;
}

void PosixSys::MemFree(MemHandle handle) {
  const auto it = mappings_.find(handle);
  if (it == mappings_.end()) {
    return;
  }
  ::munmap(it->second.addr, it->second.bytes);
  mappings_.erase(it);
}

void PosixSys::MemTouch(MemHandle handle, std::uint64_t page_index, bool write) {
  const auto it = mappings_.find(handle);
  if (it == mappings_.end()) {
    return;
  }
  const std::uint64_t offset = page_index * PageSize();
  if (offset >= it->second.bytes) {
    return;
  }
  volatile std::uint8_t* page =
      static_cast<std::uint8_t*>(it->second.addr) + offset;
  if (write) {
    *page = static_cast<std::uint8_t>(*page + 1);
  } else {
    (void)*page;
  }
}

std::uint32_t PosixSys::PageSize() {
  static const auto page_size = static_cast<std::uint32_t>(::sysconf(_SC_PAGESIZE));
  return page_size;
}

}  // namespace gray
