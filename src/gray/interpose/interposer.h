// Interposition + passive cache modeling (paper §4.1.1 and §6).
//
// The paper's §4.1.1 describes the OTHER extreme of the design space:
// "Given complete knowledge of the behavior of the file-cache
// page-replacement algorithm as well as the ability to observe its every
// input, we could model or simulate which pages are in cache." Its §6 adds
// that interpositioning is how one would observe those inputs.
//
// This module implements that design so its weaknesses can be measured:
//  * Interposer — a SysApi decorator that forwards every call and feeds a
//    CacheModel with the observed inputs (Jones-style interposition agent);
//  * CacheModel — an LRU simulation of the OS file cache;
//  * PassiveFccd — an FCCD that answers from the model with ZERO probes.
//
// The paper's objection, which the tests and ablations reproduce: "all
// applications ... must provide inputs to the simulation; if a single
// process does not obey the rules, our knowledge of what has been accessed
// is incomplete and our simulation will be inaccurate."
#ifndef SRC_GRAY_INTERPOSE_INTERPOSER_H_
#define SRC_GRAY_INTERPOSE_INTERPOSER_H_

#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/gray/fccd/fccd.h"
#include "src/gray/sys_api.h"

namespace gray {

// LRU simulation of the OS file cache, driven by observed file accesses.
class CacheModel {
 public:
  CacheModel(std::uint64_t capacity_bytes, std::uint32_t page_size);

  void OnAccess(const std::string& path, std::uint64_t offset, std::uint64_t length);
  void OnRemove(const std::string& path);  // unlink / truncate-to-zero

  [[nodiscard]] bool PageResident(const std::string& path, std::uint64_t page) const;
  // Resident fraction of [offset, offset+length).
  [[nodiscard]] double ResidentFraction(const std::string& path, std::uint64_t offset,
                                        std::uint64_t length) const;
  [[nodiscard]] std::uint64_t resident_pages() const { return lru_.size(); }

 private:
  struct Key {
    std::uint64_t file_id;
    std::uint64_t page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ULL ^ k.page);
    }
  };

  [[nodiscard]] std::uint64_t IdOf(const std::string& path);
  [[nodiscard]] std::optional<std::uint64_t> IdOfConst(const std::string& path) const;

  std::uint64_t capacity_pages_;
  std::uint32_t page_size_;
  std::unordered_map<std::string, std::uint64_t> file_ids_;
  std::uint64_t next_file_id_ = 1;
  std::list<Key> lru_;  // front = LRU
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> index_;
};

// SysApi decorator: forwards everything to the inner system and feeds the
// CacheModel with every observed input.
class Interposer final : public SysApi {
 public:
  Interposer(SysApi* inner, CacheModel* model) : inner_(inner), model_(model) {}

  [[nodiscard]] Nanos Now() override { return inner_->Now(); }
  void SleepNs(Nanos duration) override { inner_->SleepNs(duration); }

  [[nodiscard]] int Open(const std::string& path) override;
  int Close(int fd) override;
  std::int64_t Pread(int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                     std::uint64_t offset) override;
  std::int64_t Pwrite(int fd, std::uint64_t len, std::uint64_t offset) override;
  [[nodiscard]] int Creat(const std::string& path) override;
  int Fsync(int fd) override { return inner_->Fsync(fd); }
  int Stat(const std::string& path, FileInfo* out) override {
    return inner_->Stat(path, out);
  }
  int ReadDir(const std::string& path, std::vector<DirEntry>* out) override {
    return inner_->ReadDir(path, out);
  }
  int Unlink(const std::string& path) override;
  int Mkdir(const std::string& path) override { return inner_->Mkdir(path); }
  int Rmdir(const std::string& path) override { return inner_->Rmdir(path); }
  int Rename(const std::string& from, const std::string& to) override;
  int Utimes(const std::string& path, Nanos atime, Nanos mtime) override {
    return inner_->Utimes(path, atime, mtime);
  }
  int Mincore(int fd, std::uint64_t offset, std::uint64_t length,
              std::vector<bool>* resident) override {
    return inner_->Mincore(fd, offset, length, resident);
  }

  // Batches forward to the inner system's (possibly native) batch path, then
  // feed the model with every constituent operation — a batch must not be a
  // blind spot, or the simulation silently rots (the paper's §4.1.1
  // objection).
  void PreadBatch(std::span<const PreadOp> ops, std::span<BatchResult> out) override;
  void MemTouchBatch(std::span<const MemTouchOp> ops, std::span<BatchResult> out) override {
    inner_->MemTouchBatch(ops, out);  // anonymous memory: not modeled
  }
  void StatBatch(std::span<const std::string> paths, std::span<FileInfo> infos,
                 std::span<BatchResult> out) override {
    inner_->StatBatch(paths, infos, out);  // stat reads no file pages
  }

  [[nodiscard]] MemHandle MemAlloc(std::uint64_t bytes) override {
    return inner_->MemAlloc(bytes);
  }
  void MemFree(MemHandle handle) override { inner_->MemFree(handle); }
  void MemTouch(MemHandle handle, std::uint64_t page_index, bool write) override {
    inner_->MemTouch(handle, page_index, write);
  }
  [[nodiscard]] std::uint32_t PageSize() override { return inner_->PageSize(); }

  [[nodiscard]] std::uint64_t observed_calls() const { return observed_calls_; }

 private:
  SysApi* inner_;
  CacheModel* model_;
  std::unordered_map<int, std::string> fd_paths_;
  std::uint64_t observed_calls_ = 0;
};

// FCCD answered entirely from the interposed cache model: zero probes, zero
// Heisenberg effect — and zero robustness against unobserved processes.
class PassiveFccd {
 public:
  PassiveFccd(SysApi* sys, const CacheModel* model, FccdOptions options = FccdOptions{})
      : sys_(sys), model_(model), options_(options) {}

  [[nodiscard]] std::optional<FilePlan> PlanFile(const std::string& path) const;

 private:
  SysApi* sys_;
  const CacheModel* model_;
  FccdOptions options_;
};

}  // namespace gray

#endif  // SRC_GRAY_INTERPOSE_INTERPOSER_H_
