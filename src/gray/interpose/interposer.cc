#include "src/gray/interpose/interposer.h"

#include <algorithm>

namespace gray {

// --- CacheModel ---

CacheModel::CacheModel(std::uint64_t capacity_bytes, std::uint32_t page_size)
    : capacity_pages_(capacity_bytes / page_size), page_size_(page_size) {}

std::uint64_t CacheModel::IdOf(const std::string& path) {
  const auto it = file_ids_.find(path);
  if (it != file_ids_.end()) {
    return it->second;
  }
  const std::uint64_t id = next_file_id_++;
  file_ids_.emplace(path, id);
  return id;
}

std::optional<std::uint64_t> CacheModel::IdOfConst(const std::string& path) const {
  const auto it = file_ids_.find(path);
  if (it == file_ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void CacheModel::OnAccess(const std::string& path, std::uint64_t offset,
                          std::uint64_t length) {
  if (length == 0) {
    return;
  }
  const std::uint64_t file_id = IdOf(path);
  const std::uint64_t first = offset / page_size_;
  const std::uint64_t last = (offset + length - 1) / page_size_;
  for (std::uint64_t p = first; p <= last; ++p) {
    const Key key{file_id, p};
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.end(), lru_, it->second);  // refresh
      continue;
    }
    while (lru_.size() >= capacity_pages_ && !lru_.empty()) {
      index_.erase(lru_.front());
      lru_.pop_front();
    }
    lru_.push_back(key);
    index_.emplace(key, std::prev(lru_.end()));
  }
}

void CacheModel::OnRemove(const std::string& path) {
  const auto id = IdOfConst(path);
  if (!id.has_value()) {
    return;
  }
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->file_id == *id) {
      index_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

bool CacheModel::PageResident(const std::string& path, std::uint64_t page) const {
  const auto id = IdOfConst(path);
  return id.has_value() && index_.contains(Key{*id, page});
}

double CacheModel::ResidentFraction(const std::string& path, std::uint64_t offset,
                                    std::uint64_t length) const {
  if (length == 0) {
    return 0.0;
  }
  const std::uint64_t first = offset / page_size_;
  const std::uint64_t last = (offset + length - 1) / page_size_;
  std::uint64_t resident = 0;
  for (std::uint64_t p = first; p <= last; ++p) {
    resident += PageResident(path, p) ? 1 : 0;
  }
  return static_cast<double>(resident) / static_cast<double>(last - first + 1);
}

// --- Interposer ---

int Interposer::Open(const std::string& path) {
  const int fd = inner_->Open(path);
  if (fd >= 0) {
    fd_paths_[fd] = path;
  }
  return fd;
}

int Interposer::Creat(const std::string& path) {
  const int fd = inner_->Creat(path);
  if (fd >= 0) {
    model_->OnRemove(path);  // creat truncates: old pages are gone
    fd_paths_[fd] = path;
  }
  return fd;
}

int Interposer::Close(int fd) {
  fd_paths_.erase(fd);
  return inner_->Close(fd);
}

std::int64_t Interposer::Pread(int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                               std::uint64_t offset) {
  const std::int64_t n = inner_->Pread(fd, buf, len, offset);
  if (n > 0) {
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) {
      ++observed_calls_;
      model_->OnAccess(it->second, offset, static_cast<std::uint64_t>(n));
    }
  }
  return n;
}

std::int64_t Interposer::Pwrite(int fd, std::uint64_t len, std::uint64_t offset) {
  const std::int64_t n = inner_->Pwrite(fd, len, offset);
  if (n > 0) {
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) {
      ++observed_calls_;
      model_->OnAccess(it->second, offset, static_cast<std::uint64_t>(n));
    }
  }
  return n;
}

void Interposer::PreadBatch(std::span<const PreadOp> ops, std::span<BatchResult> out) {
  inner_->PreadBatch(ops, out);
  const std::size_t n = std::min(ops.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i].rc <= 0) {
      continue;
    }
    const auto it = fd_paths_.find(ops[i].fd);
    if (it != fd_paths_.end()) {
      ++observed_calls_;
      model_->OnAccess(it->second, ops[i].offset, static_cast<std::uint64_t>(out[i].rc));
    }
  }
}

int Interposer::Unlink(const std::string& path) {
  const int rc = inner_->Unlink(path);
  if (rc == 0) {
    model_->OnRemove(path);
  }
  return rc;
}

int Interposer::Rename(const std::string& from, const std::string& to) {
  const int rc = inner_->Rename(from, to);
  if (rc == 0) {
    // Conservative: forget both names (the model keys pages by path).
    model_->OnRemove(from);
    model_->OnRemove(to);
  }
  return rc;
}

// --- PassiveFccd ---

std::optional<FilePlan> PassiveFccd::PlanFile(const std::string& path) const {
  FileInfo info;
  if (sys_->Stat(path, &info) < 0 || info.is_dir) {
    return std::nullopt;
  }
  FilePlan plan;
  plan.path = path;
  plan.file_size = info.size;
  const std::uint64_t au = options_.access_unit;
  for (std::uint64_t start = 0; start < info.size; start += au) {
    const std::uint64_t end = std::min(info.size, start + au);
    UnitPlan unit;
    unit.extent = Extent{start, end - start};
    // Ordering key: modeled absent fraction, scaled for stable integer sort.
    unit.probe_time = static_cast<Nanos>(
        (1.0 - model_->ResidentFraction(path, start, end - start)) * 1e6);
    unit.probes = 0;  // the whole point: no probes, no Heisenberg effect
    plan.units.push_back(unit);
  }
  std::stable_sort(plan.units.begin(), plan.units.end(),
                   [](const UnitPlan& a, const UnitPlan& b) {
                     return a.probe_time < b.probe_time;
                   });
  return plan;
}

}  // namespace gray
