#include "src/gray/mac/mac.h"

#include <algorithm>
#include <cassert>

#include "src/gray/toolbox/stats.h"

namespace gray {

// --- GbAllocation ---

GbAllocation& GbAllocation::operator=(GbAllocation&& other) noexcept {
  if (this != &other) {
    Release();
    sys_ = other.sys_;
    bytes_ = other.bytes_;
    page_size_ = other.page_size_;
    chunks_ = std::move(other.chunks_);
    other.sys_ = nullptr;
    other.bytes_ = 0;
    other.chunks_.clear();
  }
  return *this;
}

GbAllocation::~GbAllocation() { Release(); }

std::uint64_t GbAllocation::PageCount() const {
  std::uint64_t pages = 0;
  for (const Chunk& c : chunks_) {
    pages += c.pages;
  }
  return pages;
}

void GbAllocation::Touch(std::uint64_t index, bool write) {
  for (const Chunk& c : chunks_) {
    if (index < c.pages) {
      sys_->MemTouch(c.handle, index, write);
      return;
    }
    index -= c.pages;
  }
  assert(false && "page index out of range");
}

TimedMemTouch GbAllocation::TouchRequest(std::uint64_t index, bool write) const {
  for (const Chunk& c : chunks_) {
    if (index < c.pages) {
      return TimedMemTouch{c.handle, index, write};
    }
    index -= c.pages;
  }
  assert(false && "page index out of range");
  return TimedMemTouch{};
}

std::vector<TimedMemTouch> GbAllocation::AllTouchRequests(bool write) const {
  std::vector<TimedMemTouch> reqs;
  reqs.reserve(PageCount());
  for (const Chunk& c : chunks_) {
    for (std::uint64_t i = 0; i < c.pages; ++i) {
      reqs.push_back(TimedMemTouch{c.handle, i, write});
    }
  }
  return reqs;
}

void GbAllocation::Release() {
  if (sys_ != nullptr) {
    for (const Chunk& c : chunks_) {
      sys_->MemFree(c.handle);
    }
  }
  chunks_.clear();
  bytes_ = 0;
  sys_ = nullptr;
}

// --- Mac ---

Mac::Mac(SysApi* sys, MacOptions options, const ParamRepository* repo)
    : sys_(sys),
      options_(options),
      engine_(sys, ProbeEngineOptions{options.probe_strategy}) {
  usage_.Record(Technique::kAlgorithmicKnowledge);
  usage_.Describe(Technique::kAlgorithmicKnowledge,
                  "page daemon evicts when the working set exceeds memory; "
                  "writes allocate, reads hit the COW zero page");
  usage_.Describe(Technique::kMonitorOutputs, "per-page write-touch times");
  usage_.Describe(Technique::kStatistics, "median calibration; consecutive-slow runs");
  usage_.Describe(Technique::kMicrobenchmarks, "touch/zero-fill times from repository");
  usage_.Describe(Technique::kProbes, "two-loop page-touch probes");
  usage_.Describe(Technique::kKnownState, "first loop forces pages resident");

  if (options_.slow_threshold > 0) {
    slow_threshold_ = options_.slow_threshold;
  } else if (repo != nullptr && repo->Has(params::kMemZeroFillNs)) {
    // Anything much slower than an allocate+zero means the page daemon did
    // I/O on our behalf.
    slow_threshold_ =
        static_cast<Nanos>(repo->GetOr(params::kMemZeroFillNs, 3000.0) * 30.0);
    usage_.Record(Technique::kMicrobenchmarks);
  } else {
    SelfCalibrate();
  }
  base_threshold_ = slow_threshold_;
}

void Mac::SelfCalibrate() {
  // First contact without a repository: time first-touch zero-fills of a
  // small allocation (paper §4.3.2, second method).
  const std::uint64_t pages = 64;
  const MemHandle h = sys_->MemAlloc(pages * sys_->PageSize());
  std::vector<TimedMemTouch> reqs(pages);
  for (std::uint64_t i = 0; i < pages; ++i) {
    reqs[i] = TimedMemTouch{h, i, true};
  }
  std::vector<double> samples;
  samples.reserve(pages);
  for (const ProbeSample& s : engine_.RunMemTouches(reqs)) {
    samples.push_back(static_cast<double>(s.latency_ns));
  }
  sys_->MemFree(h);
  const std::vector<double> kept = DiscardOutliers(samples);
  usage_.Record(Technique::kStatistics);
  const double med = Median(kept);
  slow_threshold_ = static_cast<Nanos>(std::max(med * 30.0, 20'000.0));
}

void Mac::Recalibrate() {
  // Consecutive aborted verifications suggest the threshold no longer
  // matches reality — e.g. chaos jitter shifted the baseline touch cost so
  // honest fast touches read as "slow". Re-sample, but clamp against the
  // construction-time threshold: calibrating in the middle of a thrash
  // produces an inflated median, and accepting it unclamped would blind the
  // detector permanently.
  ++metrics_.recalibrations;
  SelfCalibrate();
  slow_threshold_ = std::clamp(slow_threshold_, base_threshold_, base_threshold_ * 4);
  if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
    t->Instant(obs::kTrackIcl, "mac.recalibrate", sys_->Now(), "threshold_ns",
               slow_threshold_);
  }
}

bool Mac::ProbeFits(GbAllocation& allocation) {
  const std::uint64_t pages = allocation.PageCount();
  const Nanos start = sys_->Now();
  usage_.Record(Technique::kProbes, pages);
  usage_.Record(Technique::kKnownState);

  const std::vector<TimedMemTouch> reqs = allocation.AllTouchRequests(/*write=*/true);
  assert(reqs.size() == pages);

  // Loop 1: move to a known state. Touch (write) every page. Times here mix
  // zero-fill, reclaim, and swap-in costs; they cannot prove the chunk
  // fits, but consecutive slow touches reveal page-daemon activity early.
  // Streamed (RunUntil), never batched: the early skip must stop probing.
  int consecutive_slow = 0;
  bool suspicious = false;
  engine_.RunMemTouchesUntil(reqs, [&](std::size_t, const ProbeSample& s) {
    ++metrics_.pages_probed;
    if (s.latency_ns > slow_threshold_) {
      ++metrics_.slow_touches;
      if (++consecutive_slow >= options_.consecutive_slow_skip) {
        suspicious = true;
        ++metrics_.early_skips;
        if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
          t->Instant(obs::kTrackIcl, "mac.early_skip", sys_->Now());
        }
        return false;  // skip straight to the verification loop
      }
    } else {
      consecutive_slow = 0;
    }
    return true;
  });

  // Loop 2: verification. Every page must re-touch fast; slow re-touches
  // mean some of the allocation was selected for replacement. Isolated slow
  // points are scheduling noise (a competitor's timeslice landing inside a
  // timed touch); paging shows up as several slow data points in near
  // succession (paper §4.3.2), because the daemon reclaims LRU runs.
  consecutive_slow = 0;
  std::uint64_t slow = 0;
  bool aborted = false;
  engine_.RunMemTouchesUntil(reqs, [&](std::size_t, const ProbeSample& s) {
    ++metrics_.pages_probed;
    if (s.latency_ns > slow_threshold_) {
      ++metrics_.slow_touches;
      ++slow;
      if (++consecutive_slow >= options_.consecutive_slow_abort) {
        aborted = true;
        return false;  // certainly paging; stop before thrashing further
      }
    } else {
      consecutive_slow = 0;
    }
    return true;
  });
  metrics_.probe_time += sys_->Now() - start;
  if (aborted) {
    ++metrics_.aborted_verifications;
    last_alloc_aborted_ = true;
    if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
      t->Instant(obs::kTrackIcl, "mac.abort", sys_->Now(), "pages", pages);
    }
    return false;
  }
  // No consecutive-slow run: isolated slow touches are tolerated unless
  // they amount to a sustained fraction of the allocation (alternating
  // reclaim patterns). Loop-1 suspicion tightens the fraction.
  const std::uint64_t limit = suspicious ? pages / 100 : pages / 20;
  (void)suspicious;
  return slow <= std::max<std::uint64_t>(limit, 1);
}

std::optional<GbAllocation> Mac::GbAlloc(std::uint64_t min, std::uint64_t max,
                                         std::uint64_t multiple) {
  if (multiple == 0) {
    multiple = sys_->PageSize();
  }
  const std::uint64_t ps = sys_->PageSize();
  auto round_down = [&](std::uint64_t v) { return v / multiple * multiple; };
  auto round_up = [&](std::uint64_t v) { return (v + multiple - 1) / multiple * multiple; };
  min = round_up(std::max<std::uint64_t>(min, 1));
  max = std::max(min, round_down(max));

  GbAllocation result;
  result.sys_ = sys_;
  result.page_size_ = ps;
  last_alloc_aborted_ = false;

  std::uint64_t increment = round_up(options_.initial_increment);
  bool failed_at_initial = false;
  while (result.bytes_ < max) {
    const std::uint64_t want = std::min(round_up(increment), max - result.bytes_);
    const MemHandle h = sys_->MemAlloc(want);
    if (h == kInvalidMem) {
      break;
    }
    result.chunks_.push_back(GbAllocation::Chunk{h, (want + ps - 1) / ps});
    if (ProbeFits(result)) {
      result.bytes_ += want;
      // Grow the increment while things fit (capped), TCP-style.
      increment = std::min(increment * 2, options_.max_increment);
      failed_at_initial = false;
      continue;
    }
    // Too big: free the chunk that pushed us over and back off completely.
    ++metrics_.failed_iterations;
    sys_->MemFree(h);
    result.chunks_.pop_back();
    if (increment <= round_up(options_.initial_increment)) {
      if (failed_at_initial || result.bytes_ >= max) {
        break;
      }
      failed_at_initial = true;
      // One more attempt at the smallest granularity (transient pressure,
      // e.g. a competitor mid-release, may clear).
      continue;
    }
    increment = round_up(options_.initial_increment);
  }

  if (result.bytes_ < min) {
    result.Release();
    return std::nullopt;
  }
  return result;
}

std::optional<GbAllocation> Mac::GbAllocBlocking(std::uint64_t min, std::uint64_t max,
                                                 std::uint64_t multiple) {
  if (!options_.hardened) {
    // Legacy fixed-period loop, kept for A/B comparison under interference.
    // Its failure mode: a fixed 500 ms sleep can lock step with periodic
    // pressure so every retry lands inside the next burst.
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (auto result = GbAlloc(min, max, multiple); result.has_value()) {
        return result;
      }
      ++metrics_.retries;
      const Nanos t0 = sys_->Now();
      sys_->SleepNs(options_.retry_sleep);
      metrics_.wait_time += sys_->Now() - t0;
    }
    return std::nullopt;
  }

  Nanos sleep = options_.backoff_initial;
  int abort_streak = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (auto result = GbAlloc(min, max, multiple); result.has_value()) {
      return result;
    }
    if (last_alloc_aborted_) {
      // The estimate collapsed hard (verification thrashed), not a mere
      // shortfall: after a streak, suspect the threshold itself.
      if (++abort_streak >= options_.abort_streak_backoff) {
        Recalibrate();
        abort_streak = 0;
      }
    } else {
      abort_streak = 0;
    }
    ++metrics_.retries;
    ++metrics_.backoffs;
    if (obs::TraceSink* t = sys_->Trace(); t != nullptr) {
      t->Instant(obs::kTrackIcl, "mac.backoff", sys_->Now(), "sleep_ns", sleep);
    }
    const Nanos t0 = sys_->Now();
    sys_->SleepNs(sleep);
    metrics_.wait_time += sys_->Now() - t0;
    sleep = std::min(static_cast<Nanos>(static_cast<double>(sleep) * options_.backoff_growth),
                     options_.backoff_max);
  }
  return std::nullopt;
}

}  // namespace gray
