// Memory-based Admission Controller (paper §4.3).
//
// gb_alloc(min, max, multiple) discovers how much memory can be used without
// paging and allocates it atomically; gb_free returns it. The probing
// algorithm is the paper's:
//
//  * memory is probed a page at a time in TWO sequential loops, writing to
//    each page (reads hit the COW zero page and allocate nothing);
//  * the first loop moves the system to a known state — its touch times mix
//    allocation/zeroing/reclaim costs and prove nothing by themselves, but
//    several consecutive slow touches mean the page daemon woke up, and the
//    prober skips straight to the verification loop;
//  * the second loop re-touches every page: if all are fast, nothing was
//    selected for replacement and the chunk fits; slow re-touches mean the
//    allocation exceeded available memory;
//  * the probe size grows conservatively — increments double while things
//    fit, up to a cap, and collapse back to the initial increment on
//    trouble ("analogous to but more conservative than TCP congestion
//    control");
//  * the slow/fast threshold comes from the microbenchmark repository, or
//    from self-calibration on first contact (paper §4.3.2).
//
// Blocking admission: GbAllocBlocking retries with sleeps until the minimum
// is available, which is what serializes competing gb-fastsorts in Fig 7.
#ifndef SRC_GRAY_MAC_MAC_H_
#define SRC_GRAY_MAC_MAC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"
#include "src/gray/toolbox/param_repository.h"
#include "src/gray/toolbox/techniques.h"

namespace gray {

struct MacOptions {
  std::uint64_t initial_increment = 16ULL * 1024 * 1024;
  std::uint64_t max_increment = 64ULL * 1024 * 1024;
  // Consecutive slow first-loop touches that trigger the early skip to the
  // verification loop.
  int consecutive_slow_skip = 4;
  // Consecutive slow second-loop touches that abort verification (the
  // answer is already "does not fit"; finishing would thrash).
  int consecutive_slow_abort = 4;
  // 0 = take the threshold from the repository / self-calibration.
  Nanos slow_threshold = 0;
  Nanos retry_sleep = 500ULL * 1000 * 1000;  // 500 ms between admission retries
  int max_retries = 240;                     // give up after ~2 virtual minutes
  // Execution strategy for calibration touches. The two admission loops are
  // always streamed one page at a time regardless of this knob: each sample
  // decides whether the next probe is issued (early skip/abort), and probing
  // past the abort point would keep dirtying pages mid-thrash.
  ProbeStrategy probe_strategy = ProbeStrategy::kBatched;
  // Interference hardening for the blocking path. Consecutive verification
  // aborts mean the memory estimate collapsed under interference (a shock,
  // a competitor's burst); hammering at a fixed period then thrashes — and
  // can lock step with periodic interference so every retry lands inside
  // the next burst. When true, GbAllocBlocking backs off exponentially
  // (backoff_initial × backoff_growth^k, capped at backoff_max — growth 1.5
  // deliberately breaks period-divisibility lockstep) and re-calibrates the
  // slow threshold after abort_streak_backoff consecutive aborted attempts,
  // clamped to [1x, 4x] of the construction-time threshold so a calibration
  // taken mid-thrash cannot blind the detector. When false, the legacy
  // fixed-retry_sleep loop runs for A/B comparison.
  bool hardened = true;
  int abort_streak_backoff = 2;
  Nanos backoff_initial = 100ULL * 1000 * 1000;  // 100 ms
  Nanos backoff_max = 2000ULL * 1000 * 1000;     // 2 s
  double backoff_growth = 1.5;
};

struct MacMetrics {
  std::uint64_t pages_probed = 0;
  std::uint64_t slow_touches = 0;
  std::uint64_t early_skips = 0;       // loop-1 early exits
  std::uint64_t failed_iterations = 0;
  std::uint64_t retries = 0;           // blocking-admission sleeps
  std::uint64_t aborted_verifications = 0;  // loop-2 consecutive-slow aborts
  std::uint64_t backoffs = 0;          // hardened exponential-backoff sleeps
  std::uint64_t recalibrations = 0;    // threshold re-calibrations
  Nanos probe_time = 0;                // time inside probing loops
  Nanos wait_time = 0;                 // time sleeping for admission
};

// RAII result of gb_alloc: owns one or more memory chunks totalling
// `bytes()`. Pages are addressed 0..PageCount()-1 across chunks.
class GbAllocation {
 public:
  GbAllocation() = default;
  GbAllocation(GbAllocation&& other) noexcept { *this = std::move(other); }
  GbAllocation& operator=(GbAllocation&& other) noexcept;
  GbAllocation(const GbAllocation&) = delete;
  GbAllocation& operator=(const GbAllocation&) = delete;
  ~GbAllocation();

  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t PageCount() const;
  [[nodiscard]] bool valid() const { return sys_ != nullptr && bytes_ > 0; }

  // Touches logical page `index` (spanning chunks transparently).
  void Touch(std::uint64_t index, bool write = true);
  // The same touch as a timed request for a ProbeEngine run.
  [[nodiscard]] TimedMemTouch TouchRequest(std::uint64_t index, bool write = true) const;
  // All PageCount() touches in logical-page order, one pass over the
  // chunks — equivalent to TouchRequest(0..pages) without the per-index
  // chunk walk that made request building quadratic in chunk count.
  [[nodiscard]] std::vector<TimedMemTouch> AllTouchRequests(bool write = true) const;

  void Release();  // explicit gb_free

 private:
  friend class Mac;
  struct Chunk {
    MemHandle handle = kInvalidMem;
    std::uint64_t pages = 0;
  };

  SysApi* sys_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint64_t page_size_ = 0;
  std::vector<Chunk> chunks_;
};

class Mac {
 public:
  explicit Mac(SysApi* sys, MacOptions options = MacOptions{},
               const ParamRepository* repo = nullptr);

  // Non-blocking gb_alloc: returns nullopt when `min` bytes are not
  // currently available without paging.
  [[nodiscard]] std::optional<GbAllocation> GbAlloc(std::uint64_t min, std::uint64_t max,
                                                    std::uint64_t multiple);

  // Blocking variant: sleeps and retries until the minimum is available (or
  // max_retries is exhausted, returning nullopt).
  [[nodiscard]] std::optional<GbAllocation> GbAllocBlocking(std::uint64_t min,
                                                            std::uint64_t max,
                                                            std::uint64_t multiple);

  static void GbFree(GbAllocation& allocation) { allocation.Release(); }

  [[nodiscard]] Nanos slow_threshold() const { return slow_threshold_; }
  [[nodiscard]] const MacMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const TechniqueUsage& usage() const { return usage_; }
  // Observation-overhead accounting for every page-touch probe.
  [[nodiscard]] const ProbeReport& probe_report() const { return engine_.report(); }
  [[nodiscard]] const ProbeEngine& probe_engine() const { return engine_; }

 private:
  // Probes every page of the allocation twice (the two loops). True when
  // the footprint fits in available memory.
  [[nodiscard]] bool ProbeFits(GbAllocation& allocation);
  void SelfCalibrate();
  // Re-runs self-calibration mid-flight, clamped against the construction
  // threshold (hardened blocking path only).
  void Recalibrate();

  SysApi* sys_;
  MacOptions options_;
  ProbeEngine engine_;
  Nanos slow_threshold_ = 0;
  Nanos base_threshold_ = 0;  // threshold at construction; recalibration clamp
  bool last_alloc_aborted_ = false;  // any verification abort in the last GbAlloc
  MacMetrics metrics_;
  TechniqueUsage usage_;
};

}  // namespace gray

#endif  // SRC_GRAY_MAC_MAC_H_
