#include "src/gray/mac/governor.h"

#include <algorithm>

namespace gray {

GbGovernor::GbGovernor(SysApi* sys, GovernorOptions options)
    : sys_(sys),
      options_(options),
      mac_(sys, options.mac),
      rng_state_((options.seed != 0 ? options.seed : sys->Now() ^ 0x90b3) | 1) {}

Nanos GbGovernor::NextBackoff() {
  // splitmix64 step for the jittered backoff.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  // Uniform in [0.5, 1.5] x base: competitors that fail together retry at
  // different times.
  const double factor = 0.5 + static_cast<double>(z % 1000) / 1000.0;
  return static_cast<Nanos>(static_cast<double>(options_.backoff_base) * factor);
}

std::optional<std::vector<GbAllocation>> GbGovernor::AcquireAll(
    std::span<const MemRequest> requests) {
  if (requests.empty()) {
    return std::vector<GbAllocation>{};
  }
  for (int round = 0; round < options_.max_rounds; ++round) {
    ++metrics_.rounds;
    std::vector<GbAllocation> held;
    held.reserve(requests.size());
    bool all_ok = true;
    for (const MemRequest& request : requests) {
      auto allocation = mac_.GbAlloc(request.min, request.max, request.multiple);
      if (!allocation.has_value()) {
        all_ok = false;
        break;
      }
      held.push_back(std::move(*allocation));
    }
    if (all_ok) {
      return held;
    }
    // Release-on-failure: give EVERYTHING back before waiting, so a peer in
    // the same bind can make progress (the classic deadlock-prevention
    // move the paper cites).
    if (!held.empty()) {
      ++metrics_.partial_releases;
      held.clear();  // RAII releases
    }
    const Nanos backoff = NextBackoff();
    metrics_.backoff_time += backoff;
    sys_->SleepNs(backoff);
  }
  return std::nullopt;
}

std::optional<GbAllocation> GbGovernor::AcquireFair(const MemRequest& request,
                                                    int expected_peers) {
  expected_peers = std::max(1, expected_peers);
  // Discover what is currently obtainable, then keep only a fair share of
  // it. The discovery allocation doubles as the reservation: shrink-in-place
  // by releasing and immediately reacquiring the capped amount (the gap is
  // covered by the backoff loop in case a peer grabs the released memory).
  for (int round = 0; round < options_.max_rounds; ++round) {
    ++metrics_.rounds;
    auto probe = mac_.GbAlloc(request.min, request.max, request.multiple);
    if (!probe.has_value()) {
      const Nanos backoff = NextBackoff();
      metrics_.backoff_time += backoff;
      sys_->SleepNs(backoff);
      continue;
    }
    const std::uint64_t discovered = probe->bytes();
    const std::uint64_t fair =
        std::max(request.min, discovered / static_cast<std::uint64_t>(expected_peers));
    if (discovered <= fair) {
      return probe;  // already within the fair share
    }
    probe->Release();
    auto capped = mac_.GbAlloc(request.min, std::min(fair, request.max),
                               request.multiple);
    if (capped.has_value()) {
      return capped;
    }
    ++metrics_.partial_releases;
  }
  return std::nullopt;
}

}  // namespace gray
