// GbGovernor — the higher-level MAC interface (paper §4.3.2).
//
// Raw gb_alloc can deadlock: "if two applications each allocate half of
// memory and then try to allocate more memory before releasing their
// initial memory, neither will ever be able to complete. Classic solutions
// for deadlock prevention, such as allocating all required memory at once
// or releasing memory if an allocation fails, solve this problem. In the
// future, we plan to investigate higher-level interfaces that will both
// hide this complexity and help provide fair allocation across competing
// processes."
//
// The governor implements exactly those two classic solutions on top of
// Mac:
//  * AcquireAll — all-or-nothing multi-request acquisition: on partial
//    failure everything is released before backing off (no hold-and-wait,
//    hence no deadlock) with randomized backoff (no lockstep livelock);
//  * AcquireFair — single acquisition whose maximum is capped to a fair
//    share of discoverable memory given an expected number of peers.
#ifndef SRC_GRAY_MAC_GOVERNOR_H_
#define SRC_GRAY_MAC_GOVERNOR_H_

#include <optional>
#include <span>
#include <vector>

#include "src/gray/mac/mac.h"
#include "src/gray/sys_api.h"

namespace gray {

struct MemRequest {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t multiple = 0;  // 0 = page size
};

struct GovernorOptions {
  MacOptions mac;
  Nanos backoff_base = 100ULL * 1000 * 1000;  // 100 ms
  int max_rounds = 120;
  std::uint64_t seed = 0;  // 0 = derive from the clock
};

struct GovernorMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t partial_releases = 0;  // times we gave everything back
  Nanos backoff_time = 0;
};

class GbGovernor {
 public:
  explicit GbGovernor(SysApi* sys, GovernorOptions options = GovernorOptions{});

  // Acquires every request or nothing. Deadlock-free: a partial acquisition
  // is never held across a wait. Returns nullopt after max_rounds.
  [[nodiscard]] std::optional<std::vector<GbAllocation>> AcquireAll(
      std::span<const MemRequest> requests);

  // Fair single acquisition: the request's max is capped at (discoverable
  // memory / expected_peers), so one early process cannot starve the rest.
  [[nodiscard]] std::optional<GbAllocation> AcquireFair(const MemRequest& request,
                                                        int expected_peers);

  [[nodiscard]] const GovernorMetrics& metrics() const { return metrics_; }
  [[nodiscard]] Mac& mac() { return mac_; }

 private:
  [[nodiscard]] Nanos NextBackoff();

  SysApi* sys_;
  GovernorOptions options_;
  Mac mac_;
  GovernorMetrics metrics_;
  std::uint64_t rng_state_;
};

}  // namespace gray

#endif  // SRC_GRAY_MAC_GOVERNOR_H_
