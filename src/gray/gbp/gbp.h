// gbp — the gray-box probe command-line tool (paper §4.1.2, §4.2.4).
//
// Lets UNMODIFIED applications benefit from the ICLs:
//   grep foo `gbp -mem *`          best cache order (FCCD)
//   grep foo `gbp -file *`         best layout order (FLDC)
//   grep foo `gbp -compose *`      in-cache first, then layout order
//   gbp -mem -out in | app -       intra-file reordering piped to stdin
//
// This header holds the tool's logic as a library so examples, tests, and
// benches can drive it; examples/gbp_tool.cpp wraps it in argv parsing.
#ifndef SRC_GRAY_GBP_GBP_H_
#define SRC_GRAY_GBP_GBP_H_

#include <span>
#include <string>
#include <vector>

#include "src/gray/compose/compose.h"
#include "src/gray/fccd/fccd.h"
#include "src/gray/fldc/fldc.h"
#include "src/gray/sys_api.h"

namespace gray {

enum class GbpMode : std::uint8_t {
  kMem,      // -mem: FCCD probe-time order
  kFile,     // -file: FLDC i-number order
  kCompose,  // -compose: clustering composition
};

struct GbpOptions {
  GbpMode mode = GbpMode::kMem;
  // Record alignment for -out extents (e.g. 100 for fastsort records).
  std::uint64_t align = 1;
  FccdOptions fccd;
  FldcOptions fldc;
};

struct GbpFileOrder {
  std::vector<std::string> order;
};

// Orders a set of files for processing (the `gbp <flags> *` form).
[[nodiscard]] GbpFileOrder GbpOrderFiles(SysApi* sys, const GbpOptions& options,
                                         std::span<const std::string> paths);

struct GbpOutPlan {
  std::string path;
  // Extents of the file in recommended read order; reading them in sequence
  // and concatenating reproduces the -out stream.
  std::vector<Extent> extents;
};

// Plans the `-out` intra-file reordering stream for one file.
[[nodiscard]] GbpOutPlan GbpPlanOut(SysApi* sys, const GbpOptions& options,
                                    const std::string& path);

// Executes an -out plan: reads the file in plan order (as the gbp process
// would) and "writes" it to a pipe, charging the extra copy the paper
// attributes to the pipe mechanism. Returns bytes streamed. The 1 MB
// prefetch reads go through `engine` when one is supplied (each extent is
// one engine run), so callers can account streaming against probing.
std::uint64_t GbpStreamOut(SysApi* sys, const GbpOutPlan& plan,
                           ProbeEngine* engine = nullptr);

}  // namespace gray

#endif  // SRC_GRAY_GBP_GBP_H_
