#include "src/gray/gbp/gbp.h"

namespace gray {

GbpFileOrder GbpOrderFiles(SysApi* sys, const GbpOptions& options,
                           std::span<const std::string> paths) {
  GbpFileOrder result;
  switch (options.mode) {
    case GbpMode::kMem: {
      Fccd fccd(sys, options.fccd);
      for (const RankedFile& rf : fccd.OrderFiles(paths)) {
        result.order.push_back(rf.path);
      }
      return result;
    }
    case GbpMode::kFile: {
      Fldc fldc(sys, options.fldc);
      for (const StatOrderEntry& e : fldc.OrderByInode(paths)) {
        result.order.push_back(e.path);
      }
      return result;
    }
    case GbpMode::kCompose: {
      Compose compose(sys, options.fccd, options.fldc);
      result.order = compose.OrderFiles(paths).order;
      return result;
    }
  }
  return result;
}

GbpOutPlan GbpPlanOut(SysApi* sys, const GbpOptions& options, const std::string& path) {
  GbpOutPlan plan;
  plan.path = path;
  FccdOptions fccd_options = options.fccd;
  fccd_options.align = options.align;
  Fccd fccd(sys, fccd_options);
  const auto file_plan = fccd.PlanFile(path);
  if (!file_plan.has_value()) {
    return plan;
  }
  plan.extents.reserve(file_plan->units.size());
  for (const UnitPlan& u : file_plan->units) {
    plan.extents.push_back(u.extent);
  }
  return plan;
}

std::uint64_t GbpStreamOut(SysApi* sys, const GbpOutPlan& plan, ProbeEngine* engine) {
  const int fd = sys->Open(plan.path);
  if (fd < 0) {
    return 0;
  }
  ProbeEngine local(sys);
  if (engine == nullptr) {
    engine = &local;
  }
  std::uint64_t streamed = 0;
  constexpr std::uint64_t kChunk = 1ULL * 1024 * 1024;
  for (const Extent& e : plan.extents) {
    std::vector<TimedPread> reqs;
    reqs.reserve(static_cast<std::size_t>((e.length + kChunk - 1) / kChunk));
    for (std::uint64_t off = 0; off < e.length; off += kChunk) {
      reqs.push_back(TimedPread{fd, std::min(kChunk, e.length - off), e.offset + off});
    }
    for (const ProbeSample& s : engine->RunPreads(reqs)) {
      if (s.rc < 0) {
        (void)sys->Close(fd);
        return streamed;
      }
      streamed += static_cast<std::uint64_t>(s.rc);
    }
  }
  (void)sys->Close(fd);
  return streamed;
}

}  // namespace gray
