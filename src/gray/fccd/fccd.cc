#include "src/gray/fccd/fccd.h"

#include <algorithm>
#include <cassert>

namespace gray {

std::uint64_t FilePlan::TotalBytes() const {
  std::uint64_t total = 0;
  for (const UnitPlan& u : units) {
    total += u.extent.length;
  }
  return total;
}

namespace {

ProbeEngineOptions EngineOptionsFor(const FccdOptions& options) {
  ProbeEngineOptions eo;
  eo.strategy = options.probe_strategy;
  if (!options.hardened) {
    eo.max_retries = 0;  // legacy behavior: fire once, fold whatever came back
  }
  return eo;
}

}  // namespace

Fccd::Fccd(SysApi* sys, FccdOptions options, const ParamRepository* repo)
    : sys_(sys),
      options_(options),
      rng_state_((options.seed != 0 ? options.seed : sys->Now() ^ 0x5eedULL) | 1),
      engine_(sys, EngineOptionsFor(options)) {
  if (repo != nullptr) {
    // The calibrated access unit from the microbenchmark repository; an
    // explicitly non-default option wins.
    if (options_.access_unit == FccdOptions{}.access_unit) {
      if (const auto v = repo->Get(params::kFccdAccessUnitBytes); v.has_value() && *v > 0) {
        options_.access_unit = static_cast<std::uint64_t>(*v);
      }
    }
    usage_.Record(Technique::kMicrobenchmarks);
  }
  // Snap units to the record alignment so extents never split a record.
  if (options_.align > 1) {
    options_.access_unit = std::max(options_.align,
                                    options_.access_unit / options_.align * options_.align);
    options_.prediction_unit =
        std::max(options_.align, options_.prediction_unit / options_.align * options_.align);
  }
  options_.prediction_unit = std::min(options_.prediction_unit, options_.access_unit);

  usage_.Record(Technique::kAlgorithmicKnowledge);
  usage_.Describe(Technique::kAlgorithmicKnowledge,
                  "LRU-like replacement evicts files in long runs");
  usage_.Describe(Technique::kMonitorOutputs, "time for 1-byte read probes");
  usage_.Describe(Technique::kStatistics, "sort units by probe time");
  usage_.Describe(Technique::kMicrobenchmarks, "access unit from disk bandwidth curve");
  usage_.Describe(Technique::kProbes, "random byte per prediction unit");
  usage_.Describe(Technique::kFeedback, "access-unit-sized reads recache in units");
}

std::uint64_t Fccd::NextRandom() {
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TimedPread Fccd::ProbeRequest(int fd, std::uint64_t lo, std::uint64_t hi) {
  assert(hi > lo);
  return TimedPread{fd, 1, lo + NextRandom() % (hi - lo)};
}

std::vector<ProbeSample> Fccd::RunProbes(std::span<const TimedPread> reqs) {
  probes_issued_ += reqs.size();
  usage_.Record(Technique::kProbes, reqs.size());
  usage_.Record(Technique::kMonitorOutputs, reqs.size());
  return engine_.RunPreads(reqs);
}

std::optional<FilePlan> Fccd::PlanFileViaMincore(const std::string& path,
                                                 std::uint64_t size) {
  const int fd = sys_->Open(path);
  if (fd < 0) {
    return std::nullopt;
  }
  std::vector<bool> resident;
  const int rc = sys_->Mincore(fd, 0, size, &resident);
  (void)sys_->Close(fd);
  if (rc < 0) {
    return std::nullopt;  // platform without mincore: caller probes instead
  }
  const std::uint64_t ps = sys_->PageSize();
  FilePlan plan;
  plan.path = path;
  plan.file_size = size;
  const std::uint64_t au = options_.access_unit;
  for (std::uint64_t start = 0; start < size; start += au) {
    const std::uint64_t end = std::min(size, start + au);
    UnitPlan unit;
    unit.extent = Extent{start, end - start};
    // Ordering key: number of absent pages (no timing involved).
    std::uint64_t absent = 0;
    for (std::uint64_t p = start / ps; p <= (end - 1) / ps && p < resident.size(); ++p) {
      absent += resident[p] ? 0 : 1;
    }
    unit.probe_time = absent;
    unit.probes = 0;
    plan.units.push_back(unit);
  }
  std::stable_sort(plan.units.begin(), plan.units.end(),
                   [](const UnitPlan& a, const UnitPlan& b) {
                     return a.probe_time < b.probe_time;
                   });
  return plan;
}

std::optional<FilePlan> Fccd::PlanFile(const std::string& path) {
  FileInfo info;
  if (sys_->Stat(path, &info) < 0 || info.is_dir) {
    return std::nullopt;
  }
  last_used_mincore_ = false;
  FilePlan plan;
  plan.path = path;
  plan.file_size = info.size;
  if (info.size == 0) {
    return plan;
  }
  if (options_.try_mincore && info.size >= sys_->PageSize()) {
    if (auto via_mincore = PlanFileViaMincore(path, info.size); via_mincore.has_value()) {
      last_used_mincore_ = true;
      return via_mincore;
    }
    // Not available here: continue with the portable probing path.
  }

  const std::uint64_t page = sys_->PageSize();
  if (info.size < page) {
    // Heisenberg guard: probing would fault in the whole file. Report a
    // fake high probe time instead (paper §4.1.4).
    plan.units.push_back(UnitPlan{Extent{0, info.size}, options_.fake_high_time, 0});
    return plan;
  }

  const int fd = sys_->Open(path);
  if (fd < 0) {
    return std::nullopt;
  }

  // Plan the whole file up front — one probe per prediction unit inside
  // each access unit (four per default 20 MB unit), offsets drawn in the
  // same order a scalar loop would — then execute as one engine run.
  const std::uint64_t au = options_.access_unit;
  const std::uint64_t pu = options_.prediction_unit;
  std::vector<TimedPread> reqs;
  for (std::uint64_t start = 0; start < info.size; start += au) {
    const std::uint64_t end = std::min(info.size, start + au);
    UnitPlan unit;
    unit.extent = Extent{start, end - start};
    for (std::uint64_t p = start; p < end; p += pu) {
      reqs.push_back(ProbeRequest(fd, p, std::min(end, p + pu)));
      ++unit.probes;
    }
    plan.units.push_back(unit);
  }
  const std::vector<ProbeSample> samples = RunProbes(reqs);
  plan.degraded = engine_.last_run_degraded();
  std::size_t next = 0;
  for (UnitPlan& unit : plan.units) {
    int counted = 0;
    Nanos total = 0;
    for (int i = 0; i < unit.probes; ++i) {
      const ProbeSample& s = samples[next++];
      if (options_.hardened && s.rc < 0) {
        continue;  // a failed probe timed the error path, not the cache
      }
      total += s.latency_ns;
      ++counted;
    }
    if (options_.hardened) {
      unit.probes = counted;
      // Every probe of the unit failed: no observation survives, so assume
      // the worst (on-disk) instead of ranking on error-path latency.
      unit.probe_time = counted > 0 ? total : options_.fake_high_time;
    } else {
      unit.probe_time = total;
    }
  }
  streak_ = 0;  // fresh plan, fresh staleness budget
  (void)sys_->Close(fd);

  // The sort IS the classifier: no in-cache threshold needed, and a
  // multi-level storage hierarchy comes out in nearest-first order.
  usage_.Record(Technique::kStatistics);
  std::stable_sort(plan.units.begin(), plan.units.end(),
                   [](const UnitPlan& a, const UnitPlan& b) {
                     // Compare per-probe averages so short tail units with
                     // fewer probes are comparable to full units.
                     const double ta = a.probes > 0
                                           ? static_cast<double>(a.probe_time) / a.probes
                                           : static_cast<double>(a.probe_time);
                     const double tb = b.probes > 0
                                           ? static_cast<double>(b.probe_time) / b.probes
                                           : static_cast<double>(b.probe_time);
                     return ta < tb;
                   });
  usage_.Record(Technique::kFeedback);
  return plan;
}

std::vector<RankedFile> Fccd::OrderFiles(std::span<const std::string> paths) {
  std::vector<RankedFile> ranked;
  ranked.reserve(paths.size());
  for (const std::string& path : paths) {
    RankedFile rf;
    rf.path = path;
    FileInfo info;
    if (sys_->Stat(path, &info) < 0 || info.is_dir) {
      rf.avg_probe_time = options_.fake_high_time * 2;  // rank last
      ranked.push_back(rf);
      continue;
    }
    rf.size = info.size;
    const std::uint64_t page = sys_->PageSize();
    if (info.size < page) {
      rf.avg_probe_time = rf.total_probe_time = options_.fake_high_time;
      ranked.push_back(rf);
      continue;
    }
    const int fd = sys_->Open(path);
    if (fd < 0) {
      rf.avg_probe_time = options_.fake_high_time * 2;
      ranked.push_back(rf);
      continue;
    }
    std::vector<TimedPread> reqs;
    for (std::uint64_t p = 0; p < info.size; p += options_.prediction_unit) {
      reqs.push_back(ProbeRequest(fd, p, std::min(info.size, p + options_.prediction_unit)));
    }
    for (const ProbeSample& s : RunProbes(reqs)) {
      if (options_.hardened && s.rc < 0) {
        continue;
      }
      rf.total_probe_time += s.latency_ns;
      ++rf.probes;
    }
    (void)sys_->Close(fd);
    if (rf.probes > 0) {
      rf.avg_probe_time = rf.total_probe_time / rf.probes;
    } else {
      // Hardened with every probe failed: assume cold rather than rank 0.
      rf.avg_probe_time = options_.hardened ? options_.fake_high_time : 0;
    }
    ranked.push_back(rf);
  }
  usage_.Record(Technique::kStatistics);
  std::stable_sort(ranked.begin(), ranked.end(), [](const RankedFile& a, const RankedFile& b) {
    return a.avg_probe_time < b.avg_probe_time;
  });
  return ranked;
}

}  // namespace gray
