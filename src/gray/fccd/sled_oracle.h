// SLED oracle: the baseline FCCD is measured against.
//
// Van Meter and Gao's Storage Latency Estimation Descriptors (OSDI 2000)
// propose a NEW kernel interface that reports predicted access times for
// sections of a file — i.e., the kernel tells applications what is cached.
// The paper's claim (§4.1): "a great deal of the utility of their proposed
// system can be obtained without any modification to the operating system."
//
// This class implements what an application would get WITH that kernel
// interface: a perfect-information access plan built from the simulator's
// ground-truth presence bitmap, at zero probing cost. Benches compare the
// gray-box FCCD plan against it to quantify how much of the white-box
// utility survives the gray-box constraint.
#ifndef SRC_GRAY_FCCD_SLED_ORACLE_H_
#define SRC_GRAY_FCCD_SLED_ORACLE_H_

#include <algorithm>
#include <optional>
#include <string>

#include "src/gray/fccd/fccd.h"
#include "src/os/os.h"

namespace gray {

class SledOracle {
 public:
  explicit SledOracle(graysim::Os* os, FccdOptions options = FccdOptions{})
      : os_(os), options_(options) {
    if (options_.align > 1) {
      options_.access_unit = std::max(
          options_.align, options_.access_unit / options_.align * options_.align);
    }
  }

  // Produces the plan a SLED-enabled kernel would hand out: access units
  // ordered by their true resident fraction, descending.
  [[nodiscard]] std::optional<FilePlan> PlanFile(const std::string& path) const {
    graysim::InodeAttr attr;
    if (os_->Stat(os_->default_pid(), path, &attr) < 0 || attr.is_dir) {
      return std::nullopt;
    }
    FilePlan plan;
    plan.path = path;
    plan.file_size = attr.size;
    const std::uint64_t au = options_.access_unit;
    const std::uint64_t ps = os_->page_size();
    for (std::uint64_t start = 0; start < attr.size; start += au) {
      const std::uint64_t end = std::min(attr.size, start + au);
      UnitPlan unit;
      unit.extent = Extent{start, end - start};
      // "Probe time" stands in for predicted latency: proportional to the
      // non-resident fraction (what the SLED interface would report).
      std::uint64_t absent = 0;
      const std::uint64_t first_page = start / ps;
      const std::uint64_t last_page = (end - 1) / ps;
      for (std::uint64_t p = first_page; p <= last_page; ++p) {
        absent += os_->PageResidentPath(path, p) ? 0 : 1;
      }
      unit.probe_time = absent;  // unit ordering key only
      unit.probes = 0;           // the kernel interface costs no probes
      plan.units.push_back(unit);
    }
    std::stable_sort(plan.units.begin(), plan.units.end(),
                     [](const UnitPlan& a, const UnitPlan& b) {
                       return a.probe_time < b.probe_time;
                     });
    return plan;
  }

 private:
  graysim::Os* os_;
  FccdOptions options_;
};

}  // namespace gray

#endif  // SRC_GRAY_FCCD_SLED_ORACLE_H_
