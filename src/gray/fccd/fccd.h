// File-Cache Content Detector (paper §4.1).
//
// Infers which parts of files are resident in the OS file cache by timing
// carefully chosen 1-byte read probes, then hands applications an access
// plan that visits cached data first.
//
// Design decisions straight from the paper:
//  * one probe per *prediction unit* (default 5 MB) inside each *access
//    unit* (default 20 MB, calibrated by microbenchmark to near-peak disk
//    bandwidth);
//  * probe offsets are RANDOM within the prediction unit, so repeated or
//    concurrent probe phases do not poison each other (§4.1.2);
//  * NO in-cache/on-disk threshold: access units are simply sorted by total
//    probe time, which also orders multi-level storage correctly;
//  * files smaller than one page are never probed (the probe would fault in
//    the whole file — the Heisenberg effect) and get a fake "high" time;
//  * extents can be aligned to an application record size.
#ifndef SRC_GRAY_FCCD_FCCD_H_
#define SRC_GRAY_FCCD_FCCD_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"
#include "src/gray/toolbox/param_repository.h"
#include "src/gray/toolbox/techniques.h"

namespace gray {

struct FccdOptions {
  std::uint64_t access_unit = 20ULL * 1024 * 1024;
  std::uint64_t prediction_unit = 5ULL * 1024 * 1024;
  // Returned extents never split an `align`-byte record (e.g. 100 for the
  // paper's sort).
  std::uint64_t align = 1;
  // 0 = seed the probe-offset generator from the current time. Fixing the
  // seed re-probes identical offsets across runs, which self-poisons: a
  // prior probe phase faults those exact pages in and every later probe
  // "hits" (§4.1.2 — this is why the paper probes a RANDOM byte per unit).
  std::uint64_t seed = 0;
  // Reported for sub-page files instead of probing them.
  Nanos fake_high_time = 250ULL * 1000 * 1000;  // 250 ms
  // Use the mincore(2) interface when the platform has one instead of
  // probing (paper §4.1 footnote 1). Off by default: mincore "is not
  // broadly available and thus cannot be relied upon" — and the probing
  // path is this library's whole point. When a mincore attempt fails, the
  // detector silently falls back to probes, so the same binary stays
  // portable.
  bool try_mincore = false;
  // How the probe plan is executed (see ProbeEngine); offsets and probe
  // order are identical either way, so the inference is too.
  ProbeStrategy probe_strategy = ProbeStrategy::kBatched;
  // Interference hardening. When true: transiently failed probes are
  // retried with backoff (ProbeEngine), samples that still fail are excluded
  // from unit totals (a unit with no surviving probe gets fake_high_time
  // instead of an error-path latency), and NoteUnitOutcome/ShouldReplan
  // track a misprediction streak so a stale ranking triggers a re-probe.
  // When false the detector reproduces the legacy behavior — every latency
  // folds in, failures and all — for A/B comparison under chaos.
  bool hardened = true;
  // Consecutive mispredicted units before ShouldReplan() reports the plan
  // stale. Small: three wrong-in-a-row is already past coincidence for a
  // sorted plan, and a re-probe costs little.
  int misprediction_streak = 3;
};

struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const Extent&, const Extent&) = default;
};

struct UnitPlan {
  Extent extent;
  Nanos probe_time = 0;  // total time of this unit's probes
  int probes = 0;
};

struct FilePlan {
  std::string path;
  std::uint64_t file_size = 0;
  // Access units in recommended order (fastest probes first).
  std::vector<UnitPlan> units;
  // True when the probe run behind this plan saw a high failure fraction
  // (ProbeEngine::last_run_degraded): the ordering is best-effort and the
  // application should expect mispredictions.
  bool degraded = false;

  // Total bytes covered (== file_size).
  [[nodiscard]] std::uint64_t TotalBytes() const;
};

struct RankedFile {
  std::string path;
  std::uint64_t size = 0;
  Nanos avg_probe_time = 0;  // per-probe average, comparable across sizes
  Nanos total_probe_time = 0;
  int probes = 0;
};

class Fccd {
 public:
  // `repo` (optional) supplies the calibrated access unit
  // (fccd.access_unit_bytes); explicit options win over the repository.
  explicit Fccd(SysApi* sys, FccdOptions options = FccdOptions{},
                const ParamRepository* repo = nullptr);

  // Probes one file and returns its access plan, or nullopt if the file
  // cannot be opened. The plan's extents partition [0, size).
  [[nodiscard]] std::optional<FilePlan> PlanFile(const std::string& path);

  // Probes each file once per prediction unit and returns the recommended
  // processing order (fastest average probe first). Unopenable files are
  // ranked last.
  [[nodiscard]] std::vector<RankedFile> OrderFiles(std::span<const std::string> paths);

  [[nodiscard]] const FccdOptions& options() const { return options_; }
  [[nodiscard]] const TechniqueUsage& usage() const { return usage_; }
  [[nodiscard]] std::uint64_t probes_issued() const { return probes_issued_; }
  // Observation-overhead accounting for every probe this detector issued.
  [[nodiscard]] const ProbeReport& probe_report() const { return engine_.report(); }
  [[nodiscard]] const ProbeEngine& probe_engine() const { return engine_; }
  // True when the last PlanFile was answered by mincore (no probes, no
  // Heisenberg effect).
  [[nodiscard]] bool last_plan_used_mincore() const { return last_used_mincore_; }

  // Staleness detection (hardened mode). The application reports, unit by
  // unit, whether the plan's prediction held up — e.g. "the unit ranked
  // resident read at memory speed". A streak of mispredictions means the
  // cache has moved on since probing; ShouldReplan() then tells the caller
  // to PlanFile again (which resets the streak) instead of trusting a cold
  // ranking to the end.
  void NoteUnitOutcome(bool as_predicted) {
    if (as_predicted) {
      streak_ = 0;
    } else {
      ++streak_;
      if (obs::TraceSink* t = sys_->Trace();
          t != nullptr && options_.hardened && streak_ == options_.misprediction_streak) {
        // The exact moment the detector loses faith in its plan.
        t->Instant(obs::kTrackIcl, "fccd.replan_signal", sys_->Now(), "streak",
                   static_cast<std::uint64_t>(streak_));
      }
    }
  }
  [[nodiscard]] bool ShouldReplan() const {
    return options_.hardened && streak_ >= options_.misprediction_streak;
  }
  [[nodiscard]] int current_misprediction_streak() const { return streak_; }

 private:
  // Plans a timed 1-byte read at a random offset within [lo, hi).
  [[nodiscard]] TimedPread ProbeRequest(int fd, std::uint64_t lo, std::uint64_t hi);
  // Executes a probe plan through the engine and updates the counters.
  [[nodiscard]] std::vector<ProbeSample> RunProbes(std::span<const TimedPread> reqs);
  [[nodiscard]] std::uint64_t NextRandom();

  // Builds a plan from a mincore bitmap; nullopt when the interface is
  // unavailable (caller falls back to probing).
  [[nodiscard]] std::optional<FilePlan> PlanFileViaMincore(const std::string& path,
                                                           std::uint64_t size);

  SysApi* sys_;
  FccdOptions options_;
  std::uint64_t rng_state_;
  ProbeEngine engine_;
  std::uint64_t probes_issued_ = 0;
  bool last_used_mincore_ = false;
  int streak_ = 0;
  TechniqueUsage usage_;
};

}  // namespace gray

#endif  // SRC_GRAY_FCCD_FCCD_H_
