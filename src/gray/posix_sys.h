// Binding of the gray-box SysApi to a real POSIX operating system.
//
// This is the deployment the paper actually targets: the ICL as a library
// between an application and an unmodified UNIX. The same Fccd/Fldc/Mac
// code that runs against graysim runs against the host kernel through this
// class — only the binding differs.
//
// Caveats for real use (all from the paper):
//  * run the toolbox microbenchmarks once on a quiet machine to populate
//    the ParamRepository before relying on MAC thresholds;
//  * timing observations on a busy host are noisy — that is exactly why the
//    library leans on statistics (sorting, clustering, outlier rejection);
//  * mincore(2) is available here, so FccdOptions::try_mincore works.
//
// The repository's tests only assert functional behaviour of this binding
// (never timing): CI machines make timing assertions meaningless — the
// paper's microbenchmarks "likely require a dedicated system".
#ifndef SRC_GRAY_POSIX_SYS_H_
#define SRC_GRAY_POSIX_SYS_H_

#include <cerrno>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/gray/sys_api.h"

namespace gray {

class PosixSys final : public SysApi {
 public:
  PosixSys() = default;
  ~PosixSys() override;

  PosixSys(const PosixSys&) = delete;
  PosixSys& operator=(const PosixSys&) = delete;

  [[nodiscard]] Nanos Now() override;
  void SleepNs(Nanos duration) override;

  // Real kernels surface flaky media and interrupted calls as EIO/EAGAIN/
  // EINTR; those are worth a retry. ENOENT and friends are definitive.
  [[nodiscard]] bool IsTransientError(std::int64_t rc) const override {
    return rc == -EIO || rc == -EAGAIN || rc == -EINTR;
  }

  [[nodiscard]] int Open(const std::string& path) override;
  int Close(int fd) override;
  std::int64_t Pread(int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                     std::uint64_t offset) override;
  std::int64_t Pwrite(int fd, std::uint64_t len, std::uint64_t offset) override;
  [[nodiscard]] int Creat(const std::string& path) override;
  int Fsync(int fd) override;
  int Stat(const std::string& path, FileInfo* out) override;
  int ReadDir(const std::string& path, std::vector<DirEntry>* out) override;
  int Unlink(const std::string& path) override;
  int Mkdir(const std::string& path) override;
  int Rmdir(const std::string& path) override;
  int Rename(const std::string& from, const std::string& to) override;
  int Utimes(const std::string& path, Nanos atime, Nanos mtime) override;
  int Mincore(int fd, std::uint64_t offset, std::uint64_t length,
              std::vector<bool>* resident) override;

  // Plain loops over the scalar calls: POSIX offers no portable batched
  // pread-at-arbitrary-offsets (preadv shares one offset; io_uring is not
  // broadly available — the same portability argument as mincore, §4.1
  // footnote 1). The batch calls still centralize timing in one place.
  void PreadBatch(std::span<const PreadOp> ops, std::span<BatchResult> out) override;
  void MemTouchBatch(std::span<const MemTouchOp> ops, std::span<BatchResult> out) override;
  void StatBatch(std::span<const std::string> paths, std::span<FileInfo> infos,
                 std::span<BatchResult> out) override;

  [[nodiscard]] MemHandle MemAlloc(std::uint64_t bytes) override;
  void MemFree(MemHandle handle) override;
  void MemTouch(MemHandle handle, std::uint64_t page_index, bool write) override;
  [[nodiscard]] std::uint32_t PageSize() override;

 private:
  struct Mapping {
    void* addr = nullptr;
    std::uint64_t bytes = 0;
  };

  std::unordered_map<MemHandle, Mapping> mappings_;
  MemHandle next_handle_ = 1;
};

}  // namespace gray

#endif  // SRC_GRAY_POSIX_SYS_H_
