#include "src/gray/toolbox/microbench.h"

#include <algorithm>
#include <vector>

#include "src/gray/toolbox/stats.h"

namespace gray {

namespace {
constexpr std::uint64_t kMb = 1024 * 1024;

double ToMbs(std::uint64_t bytes, Nanos elapsed) {
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0) /
         (static_cast<double>(elapsed) / 1e9);
}
}  // namespace

Microbench::Microbench(SysApi* sys, MicrobenchOptions options)
    : sys_(sys),
      options_(std::move(options)),
      engine_(sys, ProbeEngineOptions{options_.probe_strategy}),
      rng_state_(options_.seed | 1) {}

std::uint64_t Microbench::NextRandom() {
  // splitmix64 step — deterministic and dependency-free.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string Microbench::EnsureFile(const std::string& name, std::uint64_t bytes) {
  (void)sys_->Mkdir(options_.scratch_dir);
  const std::string path = options_.scratch_dir + "/" + name;
  FileInfo info;
  if (sys_->Stat(path, &info) == 0 && info.size >= bytes) {
    return path;
  }
  const int fd = sys_->Creat(path);
  if (fd < 0) {
    return {};
  }
  for (std::uint64_t off = 0; off < bytes; off += kMb) {
    const std::uint64_t n = std::min(kMb, bytes - off);
    if (sys_->Pwrite(fd, n, off) < 0) {
      (void)sys_->Close(fd);
      return {};
    }
  }
  (void)sys_->Fsync(fd);
  (void)sys_->Close(fd);
  return path;
}

void Microbench::PurgeCache() {
  // Reading a file larger than memory through an LRU-like cache leaves
  // (almost) nothing else resident.
  const std::uint64_t purge_bytes = options_.mem_hint_bytes + options_.mem_hint_bytes / 4;
  const std::string path = EnsureFile("purge.dat", purge_bytes);
  if (path.empty()) {
    return;
  }
  const int fd = sys_->Open(path);
  if (fd < 0) {
    return;
  }
  for (std::uint64_t off = 0; off < purge_bytes; off += kMb) {
    (void)sys_->Pread(fd, {}, std::min(kMb, purge_bytes - off), off);
  }
  (void)sys_->Close(fd);
}

double Microbench::MeasureSeqDiskBandwidthMbs() {
  const std::string path = EnsureFile("seq.dat", options_.disk_test_bytes);
  if (path.empty()) {
    return 0.0;
  }
  PurgeCache();
  const int fd = sys_->Open(path);
  if (fd < 0) {
    return 0.0;
  }
  const Nanos t0 = sys_->Now();
  for (std::uint64_t off = 0; off < options_.disk_test_bytes; off += kMb) {
    (void)sys_->Pread(fd, {}, kMb, off);
  }
  const Nanos elapsed = sys_->Now() - t0;
  (void)sys_->Close(fd);
  return ToMbs(options_.disk_test_bytes, elapsed);
}

double Microbench::MeasureRandomPageAccessNs() {
  const std::string path = EnsureFile("seq.dat", options_.disk_test_bytes);
  if (path.empty()) {
    return 0.0;
  }
  PurgeCache();
  const int fd = sys_->Open(path);
  if (fd < 0) {
    return 0.0;
  }
  const std::uint32_t ps = sys_->PageSize();
  const std::uint64_t pages = options_.disk_test_bytes / ps;
  std::vector<TimedPread> reqs;
  reqs.reserve(static_cast<std::size_t>(options_.random_probes));
  std::vector<bool> probed(pages, false);
  for (int i = 0; i < options_.random_probes; ++i) {
    std::uint64_t page = NextRandom() % pages;
    while (probed[page]) {
      page = (page + 1) % pages;  // never re-time a page we faulted in
    }
    probed[page] = true;
    reqs.push_back(TimedPread{fd, 1, page * ps});
  }
  std::vector<double> samples;
  for (const ProbeSample& s : engine_.RunPreads(reqs)) {
    samples.push_back(static_cast<double>(s.latency_ns));
  }
  (void)sys_->Close(fd);
  return Median(samples);
}

double Microbench::MeasureMemCopyMbs() {
  const std::uint64_t bytes = 16 * kMb;
  const std::string path = EnsureFile("warm.dat", bytes);
  if (path.empty()) {
    return 0.0;
  }
  const int fd = sys_->Open(path);
  if (fd < 0) {
    return 0.0;
  }
  // First pass warms the cache; second pass measures copy rate.
  for (std::uint64_t off = 0; off < bytes; off += kMb) {
    (void)sys_->Pread(fd, {}, kMb, off);
  }
  const Nanos t0 = sys_->Now();
  for (std::uint64_t off = 0; off < bytes; off += kMb) {
    (void)sys_->Pread(fd, {}, kMb, off);
  }
  const Nanos elapsed = sys_->Now() - t0;
  (void)sys_->Close(fd);
  return ToMbs(bytes, elapsed);
}

double Microbench::MeasureMemTouchNs() {
  const MemHandle h = sys_->MemAlloc(64 * sys_->PageSize());
  if (h == kInvalidMem) {
    return 0.0;
  }
  for (std::uint64_t i = 0; i < 64; ++i) {
    sys_->MemTouch(h, i, /*write=*/true);  // fault in
  }
  std::vector<TimedMemTouch> reqs(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    reqs[i] = TimedMemTouch{h, i, true};
  }
  std::vector<double> samples;
  for (const ProbeSample& s : engine_.RunMemTouches(reqs)) {
    samples.push_back(static_cast<double>(s.latency_ns));
  }
  sys_->MemFree(h);
  return Median(samples);
}

double Microbench::MeasureZeroFillNs() {
  const MemHandle h = sys_->MemAlloc(64 * sys_->PageSize());
  if (h == kInvalidMem) {
    return 0.0;
  }
  std::vector<TimedMemTouch> reqs(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    reqs[i] = TimedMemTouch{h, i, true};
  }
  std::vector<double> samples;
  for (const ProbeSample& s : engine_.RunMemTouches(reqs)) {
    samples.push_back(static_cast<double>(s.latency_ns));
  }
  sys_->MemFree(h);
  return Median(samples);
}

double Microbench::MeasureProbeHitNs() {
  const std::uint64_t bytes = kMb;
  const std::string path = EnsureFile("warm.dat", bytes);
  if (path.empty()) {
    return 0.0;
  }
  const int fd = sys_->Open(path);
  if (fd < 0) {
    return 0.0;
  }
  (void)sys_->Pread(fd, {}, bytes, 0);  // warm
  const std::uint32_t ps = sys_->PageSize();
  std::vector<TimedPread> reqs;
  reqs.reserve(bytes / ps);
  for (std::uint64_t p = 0; p < bytes / ps; ++p) {
    reqs.push_back(TimedPread{fd, 1, p * ps});
  }
  std::vector<double> samples;
  for (const ProbeSample& s : engine_.RunPreads(reqs)) {
    samples.push_back(static_cast<double>(s.latency_ns));
  }
  (void)sys_->Close(fd);
  return Median(samples);
}

double Microbench::CalibrateAccessUnitBytes() {
  const std::string path = EnsureFile("seq.dat", options_.disk_test_bytes);
  if (path.empty()) {
    return 0.0;
  }
  const std::vector<std::uint64_t> units = {1 * kMb, 2 * kMb, 5 * kMb,
                                            10 * kMb, 20 * kMb, 40 * kMb};
  std::vector<double> bandwidth(units.size(), 0.0);
  for (std::size_t u = 0; u < units.size(); ++u) {
    PurgeCache();
    const int fd = sys_->Open(path);
    if (fd < 0) {
      return 0.0;
    }
    const std::uint64_t unit = units[u];
    const std::uint64_t slots = options_.disk_test_bytes / unit;
    // Read a handful of units at pseudo-random positions: each read pays
    // one seek amortized over `unit` bytes.
    const int reads = static_cast<int>(std::min<std::uint64_t>(4, slots));
    std::uint64_t total = 0;
    const Nanos t0 = sys_->Now();
    for (int i = 0; i < reads; ++i) {
      const std::uint64_t slot = NextRandom() % slots;
      (void)sys_->Pread(fd, {}, unit, slot * unit);
      total += unit;
    }
    const Nanos elapsed = sys_->Now() - t0;
    bandwidth[u] = ToMbs(total, elapsed);
    (void)sys_->Close(fd);
  }
  const double peak = *std::max_element(bandwidth.begin(), bandwidth.end());
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (bandwidth[u] >= 0.9 * peak) {
      return static_cast<double>(units[u]);
    }
  }
  return static_cast<double>(units.back());
}

bool Microbench::RunAll(ParamRepository* repo) {
  if (sys_->Mkdir(options_.scratch_dir) < 0) {
    FileInfo info;
    if (sys_->Stat(options_.scratch_dir, &info) != 0 || !info.is_dir) {
      return false;
    }
  }
  repo->Set(params::kMemTouchNs, MeasureMemTouchNs());
  repo->Set(params::kMemZeroFillNs, MeasureZeroFillNs());
  repo->Set(params::kMemCopyMbs, MeasureMemCopyMbs());
  repo->Set(params::kCacheProbeHitNs, MeasureProbeHitNs());
  repo->Set(params::kDiskSeqBandwidthMbs, MeasureSeqDiskBandwidthMbs());
  repo->Set(params::kDiskRandomAccessNs, MeasureRandomPageAccessNs());
  repo->Set(params::kFccdAccessUnitBytes, CalibrateAccessUnitBytes());
  return true;
}

void Microbench::Cleanup() {
  for (const char* name : {"purge.dat", "seq.dat", "warm.dat"}) {
    (void)sys_->Unlink(options_.scratch_dir + "/" + name);
  }
  (void)sys_->Rmdir(options_.scratch_dir);
}

}  // namespace gray
