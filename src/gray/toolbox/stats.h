// Statistical routines of the gray toolbox (paper §5, "Interpreting
// Measurements").
//
// ICLs must turn noisy timing observations into robust inferences. The
// toolbox provides the operations the paper calls out: incremental mean and
// standard deviation, median, min/max, Pearson correlation, linear
// regression, exponential averaging, two-group (1-D 2-means) clustering,
// outlier rejection, and the paired-sample sign test used by MS Manners.
// Everything is incremental or O(n log n), cheap enough to run inline with
// measurements.
#ifndef SRC_GRAY_TOOLBOX_STATS_H_
#define SRC_GRAY_TOOLBOX_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace gray {

// Welford's incremental mean/variance with min/max tracking.
class RunningStats {
 public:
  void Add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  // Merges another accumulator (parallel Welford).
  void Merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponentially weighted moving average (MS Manners-style progress
// smoothing).
class ExponentialAverage {
 public:
  explicit ExponentialAverage(double alpha) : alpha_(alpha) {}

  void Add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

// Median of a sample (copies; does not reorder the input).
[[nodiscard]] double Median(std::span<const double> xs);

// Pearson correlation coefficient; returns 0 for degenerate inputs.
[[nodiscard]] double Pearson(std::span<const double> xs, std::span<const double> ys);

struct Regression {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

// Least-squares linear regression.
[[nodiscard]] Regression LinearFit(std::span<const double> xs, std::span<const double> ys);

struct Clusters {
  // Partition threshold: values < threshold belong to the low cluster.
  double threshold = 0.0;
  double low_mean = 0.0;
  double high_mean = 0.0;
  std::uint64_t low_count = 0;
  std::uint64_t high_count = 0;
  // True when the data genuinely splits into two groups (between-group
  // variance dominates).
  bool separated = false;
};

// Exact 1-D 2-means clustering: sorts and picks the split minimizing total
// within-group variance (O(n log n)). Used by the FCCD/FLDC composition to
// discriminate in-cache from on-disk probe times without a calibrated
// threshold (paper §4.2.4).
[[nodiscard]] Clusters TwoMeans(std::span<const double> xs);

// Removes outliers farther than `k` median-absolute-deviations from the
// median. Returns the retained values.
[[nodiscard]] std::vector<double> DiscardOutliers(std::span<const double> xs, double k = 5.0);

struct SignTestResult {
  std::uint64_t plus = 0;       // pairs where a > b
  std::uint64_t minus = 0;      // pairs where a < b
  double p_value = 1.0;         // two-sided, normal approximation
  bool significant = false;     // p < 0.05
};

// Paired-sample sign test: is sample `a` systematically different from `b`?
// (One of the statistics MS Manners relies on, Table 1.)
[[nodiscard]] SignTestResult SignTest(std::span<const double> a, std::span<const double> b);

}  // namespace gray

#endif  // SRC_GRAY_TOOLBOX_STATS_H_
