#include "src/gray/toolbox/param_repository.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gray {

std::string ParamRepository::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  for (const auto& [key, value] : values_) {
    out << key << ' ' << value << '\n';
  }
  return out.str();
}

bool ParamRepository::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    double value = 0.0;
    if (!(ls >> key >> value)) {
      return false;
    }
    values_[key] = value;
  }
  return true;
}

bool ParamRepository::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << Serialize();
  return static_cast<bool>(out);
}

bool ParamRepository::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Deserialize(buf.str());
}

}  // namespace gray
