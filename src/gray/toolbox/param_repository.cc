#include "src/gray/toolbox/param_repository.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gray {

namespace {

// Parses "key value" lines into `out`. '#' lines are comments; the
// "# gbparams-end n=<count>" trailer, when present, is captured in
// `declared`. False on any malformed line or on entries after the trailer.
bool ParseLines(const std::string& text, std::map<std::string, double>* out,
                std::optional<std::size_t>* declared) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::size_t n = 0;
      if (std::sscanf(line.c_str(), "# gbparams-end n=%zu", &n) == 1) {
        *declared = n;
      }
      continue;
    }
    if (declared->has_value()) {
      return false;  // data after the trailer: spliced or corrupt
    }
    std::istringstream ls(line);
    std::string key;
    double value = 0.0;
    if (!(ls >> key >> value)) {
      return false;
    }
    (*out)[key] = value;
  }
  return true;
}

}  // namespace

std::string ParamRepository::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  for (const auto& [key, value] : values_) {
    out << key << ' ' << value << '\n';
  }
  out << "# gbparams-end n=" << values_.size() << '\n';
  return out.str();
}

bool ParamRepository::Deserialize(const std::string& text) {
  std::map<std::string, double> parsed;
  std::optional<std::size_t> declared;
  if (!ParseLines(text, &parsed, &declared)) {
    return false;
  }
  if (declared.has_value() && *declared != parsed.size()) {
    return false;
  }
  for (const auto& [key, value] : parsed) {
    values_[key] = value;
  }
  return true;
}

bool ParamRepository::SaveToFile(const std::string& path) const {
  // Write + fsync + rename + directory fsync: readers either see the old
  // complete file or the new complete file, never a truncated mix — and
  // after a host crash the rename itself is durable, not just queued in the
  // directory's dirty buffers. POSIX fds instead of ofstream because only
  // fsync(2) gives the durability barrier (flush() stops at libc).
  const std::string tmp = path + ".tmp";
  const std::string body = Serialize();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      (void)std::remove(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  if (const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY); dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool ParamRepository::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::map<std::string, double> parsed;
  std::optional<std::size_t> declared;
  if (!ParseLines(buf.str(), &parsed, &declared)) {
    return false;
  }
  // Files on disk must carry the trailer with a matching count: anything
  // else is a truncated or corrupted save, and half a calibration table is
  // worse than none (an ICL trusting a partial repository would mix
  // measured and default thresholds).
  if (!declared.has_value() || *declared != parsed.size()) {
    return false;
  }
  for (const auto& [key, value] : parsed) {
    values_[key] = value;
  }
  return true;
}

}  // namespace gray
