// Microbenchmark suite of the gray toolbox (paper §5).
//
// Measures the platform parameters ICLs need — sequential disk bandwidth,
// random page access time, memory copy rate, resident-page touch time,
// zero-fill time, in-cache probe time — strictly through the gray-box
// SysApi, and records them in the shared ParamRepository. Also calibrates
// the FCCD access unit: the smallest request size that achieves near-peak
// disk bandwidth (the paper arrives at 20 MB on its platform).
//
// Like the paper's microbenchmarks, the suite assumes a quiet, dedicated
// system and is expected to run once per platform. It uses the "move the
// system to a known state" control technique: before cold-read measurements
// it purges the file cache by streaming a memory-sized eviction file.
#ifndef SRC_GRAY_TOOLBOX_MICROBENCH_H_
#define SRC_GRAY_TOOLBOX_MICROBENCH_H_

#include <string>

#include "src/gray/probe/probe_engine.h"
#include "src/gray/sys_api.h"
#include "src/gray/toolbox/param_repository.h"

namespace gray {

struct MicrobenchOptions {
  std::string scratch_dir = "/d0/.graybench";
  // Approximate physical memory; used to size the cache-purging stream.
  std::uint64_t mem_hint_bytes = 896ULL * 1024 * 1024;
  std::uint64_t disk_test_bytes = 256ULL * 1024 * 1024;
  int random_probes = 32;
  std::uint64_t seed = 0x9b5;
  // Matches the execution strategy the ICLs will use, so the measured
  // per-probe costs are the costs they will actually see.
  ProbeStrategy probe_strategy = ProbeStrategy::kBatched;
};

class Microbench {
 public:
  explicit Microbench(SysApi* sys, MicrobenchOptions options = MicrobenchOptions{});

  // Runs every benchmark and stores the results under the canonical keys.
  // Returns false if the scratch area could not be prepared.
  bool RunAll(ParamRepository* repo);

  // Individual measurements (units noted per key in param_repository.h).
  [[nodiscard]] double MeasureSeqDiskBandwidthMbs();
  [[nodiscard]] double MeasureRandomPageAccessNs();
  [[nodiscard]] double MeasureMemCopyMbs();
  [[nodiscard]] double MeasureMemTouchNs();
  [[nodiscard]] double MeasureZeroFillNs();
  [[nodiscard]] double MeasureProbeHitNs();
  // Smallest access unit reaching >= 90% of the largest tested unit's
  // effective bandwidth.
  [[nodiscard]] double CalibrateAccessUnitBytes();

  // Deletes scratch files.
  void Cleanup();

  // Observation overhead of the whole suite's timed samples.
  [[nodiscard]] const ProbeReport& probe_report() const { return engine_.report(); }

 private:
  // Creates (if needed) a scratch file of `bytes`; returns its path.
  [[nodiscard]] std::string EnsureFile(const std::string& name, std::uint64_t bytes);
  // Streams a memory-sized file through the cache to evict prior contents.
  void PurgeCache();
  [[nodiscard]] std::uint64_t NextRandom();

  SysApi* sys_;
  MicrobenchOptions options_;
  ProbeEngine engine_;
  std::uint64_t rng_state_;
};

}  // namespace gray

#endif  // SRC_GRAY_TOOLBOX_MICROBENCH_H_
