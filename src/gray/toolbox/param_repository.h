// Persistent microbenchmark parameter repository (paper §5, "Microbenchmarks
// for Configuration").
//
// Microbenchmark results are expensive to produce and shared by multiple
// ICLs, so they are measured once and stored in a common key/value
// repository: "each microbenchmark then only needs to be run once, or when
// the performance is suspected to have changed."
#ifndef SRC_GRAY_TOOLBOX_PARAM_REPOSITORY_H_
#define SRC_GRAY_TOOLBOX_PARAM_REPOSITORY_H_

#include <map>
#include <optional>
#include <string>

namespace gray {

// Canonical key names shared by the microbenchmark suite and the ICLs.
namespace params {
inline constexpr const char* kDiskSeqBandwidthMbs = "disk.seq_bandwidth_mbs";
inline constexpr const char* kDiskRandomAccessNs = "disk.random_page_access_ns";
inline constexpr const char* kMemCopyMbs = "mem.copy_mbs";
inline constexpr const char* kMemTouchNs = "mem.touch_ns";
inline constexpr const char* kMemZeroFillNs = "mem.zero_fill_ns";
inline constexpr const char* kCacheProbeHitNs = "cache.probe_hit_ns";
inline constexpr const char* kFccdAccessUnitBytes = "fccd.access_unit_bytes";
}  // namespace params

class ParamRepository {
 public:
  ParamRepository() = default;

  void Set(const std::string& key, double value) { values_[key] = value; }

  [[nodiscard]] std::optional<double> Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  [[nodiscard]] double GetOr(const std::string& key, double fallback) const {
    return Get(key).value_or(fallback);
  }

  [[nodiscard]] bool Has(const std::string& key) const { return values_.contains(key); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::map<std::string, double>& values() const { return values_; }

  // Serialization: "key value\n" lines, sorted by key, closed by a
  // "# gbparams-end n=<count>" trailer so readers can tell a complete file
  // from one cut off mid-write. '#' lines are comments to Deserialize, so
  // the trailer is backward compatible.
  [[nodiscard]] std::string Serialize() const;
  // Parses Serialize() output. All-or-nothing: malformed input returns
  // false and leaves the repository unchanged. A missing trailer is
  // tolerated (embedded snippets, hand-written files).
  bool Deserialize(const std::string& text);

  // Host-file persistence (the simulated machine has no host filesystem; the
  // repository lives beside the experiment like the paper's advertised file).
  // SaveToFile writes "<path>.tmp", fsyncs it, renames it into place, and
  // fsyncs the directory, so a crash mid-save never leaves a half-written
  // repository at `path` — and a completed save survives power loss (the
  // same write-order discipline machine_image_io uses). LoadFromFile
  // is strict: it requires the end trailer with a matching entry count, and
  // returns false on truncated or corrupt files without touching the current
  // values — the caller keeps its defaults.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  std::map<std::string, double> values_;
};

}  // namespace gray

#endif  // SRC_GRAY_TOOLBOX_PARAM_REPOSITORY_H_
