// Instrumented registry of gray-box technique usage.
//
// Each ICL records which of the paper's techniques (§2) it actually used
// during a run. The Table 2 bench prints the resulting matrix from live
// counters rather than hard-coding the paper's table.
#ifndef SRC_GRAY_TOOLBOX_TECHNIQUES_H_
#define SRC_GRAY_TOOLBOX_TECHNIQUES_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gray {

enum class Technique : std::size_t {
  kAlgorithmicKnowledge = 0,
  kMonitorOutputs,
  kStatistics,
  kMicrobenchmarks,
  kProbes,
  kKnownState,
  kFeedback,
  kCount,
};

[[nodiscard]] constexpr std::string_view TechniqueName(Technique t) {
  switch (t) {
    case Technique::kAlgorithmicKnowledge:
      return "Knowledge";
    case Technique::kMonitorOutputs:
      return "Outputs";
    case Technique::kStatistics:
      return "Statistics";
    case Technique::kMicrobenchmarks:
      return "Benchmarks";
    case Technique::kProbes:
      return "Probes";
    case Technique::kKnownState:
      return "Known state";
    case Technique::kFeedback:
      return "Feedback";
    case Technique::kCount:
      break;
  }
  return "?";
}

class TechniqueUsage {
 public:
  void Record(Technique t, std::uint64_t n = 1) {
    counts_[static_cast<std::size_t>(t)] += n;
  }
  // Describes *how* the technique is used (shown in the Table 2 matrix).
  void Describe(Technique t, std::string how) {
    notes_[static_cast<std::size_t>(t)] = std::move(how);
  }

  [[nodiscard]] std::uint64_t count(Technique t) const {
    return counts_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] bool used(Technique t) const { return count(t) > 0; }
  [[nodiscard]] const std::string& note(Technique t) const {
    return notes_[static_cast<std::size_t>(t)];
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Technique::kCount)> counts_{};
  std::array<std::string, static_cast<std::size_t>(Technique::kCount)> notes_{};
};

}  // namespace gray

#endif  // SRC_GRAY_TOOLBOX_TECHNIQUES_H_
