#include "src/gray/toolbox/stats.h"

#include <algorithm>
#include <cmath>

namespace gray {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void ExponentialAverage::Add(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
    return;
  }
  value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

double Median(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid), copy.end());
  if (copy.size() % 2 == 1) {
    return copy[mid];
  }
  const double hi = copy[mid];
  const double lo =
      *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

double Pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return 0.0;
  }
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double cov = 0;
  double vx = 0;
  double vy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx <= 0.0 || vy <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(vx * vy);
}

Regression LinearFit(std::span<const double> xs, std::span<const double> ys) {
  Regression r;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return r;
  }
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    r.intercept = my;
    return r;
  }
  r.slope = sxy / sxx;
  r.intercept = my - r.slope * mx;
  r.r2 = syy <= 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return r;
}

Clusters TwoMeans(std::span<const double> xs) {
  Clusters result;
  if (xs.empty()) {
    return result;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n == 1) {
    result.threshold = sorted[0];
    result.low_mean = result.high_mean = sorted[0];
    result.low_count = 1;
    return result;
  }

  // Prefix sums for O(1) per-split within-group variance.
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefix2(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + sorted[i];
    prefix2[i + 1] = prefix2[i] + sorted[i] * sorted[i];
  }
  auto sse = [&](std::size_t lo, std::size_t hi) {  // [lo, hi)
    const double cnt = static_cast<double>(hi - lo);
    if (cnt <= 0) {
      return 0.0;
    }
    const double sum = prefix[hi] - prefix[lo];
    const double sum2 = prefix2[hi] - prefix2[lo];
    return sum2 - sum * sum / cnt;
  };

  double best = -1.0;
  std::size_t best_k = 1;  // low cluster = [0, k)
  for (std::size_t k = 1; k < n; ++k) {
    const double total = sse(0, k) + sse(k, n);
    if (best < 0.0 || total < best) {
      best = total;
      best_k = k;
    }
  }
  result.low_count = best_k;
  result.high_count = n - best_k;
  result.low_mean = (prefix[best_k] - prefix[0]) / static_cast<double>(best_k);
  result.high_mean = (prefix[n] - prefix[best_k]) / static_cast<double>(n - best_k);
  result.threshold = (sorted[best_k - 1] + sorted[best_k]) / 2.0;
  // Separation test: within-group SSE must be a small fraction of total SSE.
  const double total_sse = sse(0, n);
  result.separated = total_sse > 0.0 && best < 0.5 * total_sse &&
                     result.high_mean > 2.0 * result.low_mean;
  return result;
}

std::vector<double> DiscardOutliers(std::span<const double> xs, double k) {
  if (xs.size() < 3) {
    return std::vector<double>(xs.begin(), xs.end());
  }
  const double med = Median(xs);
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (const double x : xs) {
    deviations.push_back(std::abs(x - med));
  }
  double mad = Median(deviations);
  if (mad == 0.0) {
    // Fall back to mean absolute deviation to avoid rejecting everything.
    double sum = 0.0;
    for (const double d : deviations) {
      sum += d;
    }
    mad = sum / static_cast<double>(deviations.size());
    if (mad == 0.0) {
      return std::vector<double>(xs.begin(), xs.end());
    }
  }
  std::vector<double> kept;
  kept.reserve(xs.size());
  for (const double x : xs) {
    if (std::abs(x - med) <= k * mad) {
      kept.push_back(x);
    }
  }
  return kept;
}

SignTestResult SignTest(std::span<const double> a, std::span<const double> b) {
  SignTestResult r;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) {
      ++r.plus;
    } else if (a[i] < b[i]) {
      ++r.minus;
    }
  }
  const double m = static_cast<double>(r.plus + r.minus);
  if (m == 0.0) {
    return r;
  }
  // Two-sided normal approximation to the binomial(m, 0.5).
  const double k = static_cast<double>(std::max(r.plus, r.minus));
  const double z = (k - m / 2.0 - 0.5) / std::sqrt(m / 4.0);
  const double zc = std::max(z, 0.0);
  r.p_value = std::erfc(zc / std::sqrt(2.0));
  r.significant = r.p_value < 0.05;
  return r;
}

}  // namespace gray
