// Fast timing helper of the gray toolbox (paper §5, "Measuring Output").
//
// On a real platform this wraps the cheapest high-resolution counter (rdtsc
// on x86); here it reads the SysApi clock. The Stopwatch costs nothing in
// virtual time, matching the paper's requirement that timing overhead stay
// negligible relative to the operations being measured.
#ifndef SRC_GRAY_TOOLBOX_STOPWATCH_H_
#define SRC_GRAY_TOOLBOX_STOPWATCH_H_

#include "src/gray/sys_api.h"

namespace gray {

class Stopwatch {
 public:
  explicit Stopwatch(SysApi* sys) : sys_(sys), start_(sys->Now()) {}

  void Restart() { start_ = sys_->Now(); }
  [[nodiscard]] Nanos Elapsed() const { return sys_->Now() - start_; }

  // Convenience: elapsed time of a single callable.
  template <typename Fn>
  [[nodiscard]] static Nanos Time(SysApi* sys, Fn&& fn) {
    const Nanos t0 = sys->Now();
    fn();
    return sys->Now() - t0;
  }

 private:
  SysApi* sys_;
  Nanos start_;
};

}  // namespace gray

#endif  // SRC_GRAY_TOOLBOX_STOPWATCH_H_
