// Binding of the gray-box SysApi to the graysim simulated OS.
//
// One SimSys represents one process's view of the system: the (os, pid)
// pair. Apart from the classic-scenario harness (src/gray/classic/scenario.h,
// which is driver code, not a layer), this is the only file in src/gray that
// knows graysim exists.
#ifndef SRC_GRAY_SIM_SYS_H_
#define SRC_GRAY_SIM_SYS_H_

#include <unordered_map>

#include "src/gray/sys_api.h"
#include "src/os/os.h"

namespace gray {

class SimSys final : public SysApi {
 public:
  SimSys(graysim::Os* os, graysim::Pid pid) : os_(os), pid_(pid) {}

  [[nodiscard]] Nanos Now() override { return os_->Now(); }
  void SleepNs(Nanos duration) override { os_->Sleep(pid_, duration); }

  [[nodiscard]] obs::TraceSink* Trace() override { return &os_->trace(); }

  // The simulated kernel's transient failures are the chaos layer's
  // injected device error and a network receive timeout (the peer may just
  // be slow or the message dropped — retry is the right reflex); everything
  // else (ENOENT, EISDIR, ...) is a definitive answer.
  [[nodiscard]] bool IsTransientError(std::int64_t rc) const override {
    return rc == -static_cast<std::int64_t>(graysim::FsErr::kIo) ||
           rc == -static_cast<std::int64_t>(graysim::FsErr::kTimedOut);
  }

  [[nodiscard]] int Open(const std::string& path) override { return os_->Open(pid_, path); }
  int Close(int fd) override { return os_->Close(pid_, fd); }
  std::int64_t Pread(int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                     std::uint64_t offset) override {
    return os_->Pread(pid_, fd, buf, len, offset);
  }
  std::int64_t Pwrite(int fd, std::uint64_t len, std::uint64_t offset) override {
    return os_->Pwrite(pid_, fd, len, offset);
  }
  [[nodiscard]] int Creat(const std::string& path) override { return os_->Creat(pid_, path); }
  int Fsync(int fd) override { return os_->Fsync(pid_, fd); }
  int Syncfs(int disk) override { return os_->Syncfs(pid_, disk); }
  int Stat(const std::string& path, FileInfo* out) override {
    graysim::InodeAttr attr;
    const int rc = os_->Stat(pid_, path, &attr);
    if (rc < 0) {
      return rc;
    }
    out->inum = attr.inum;
    out->size = attr.size;
    out->is_dir = attr.is_dir;
    out->atime = attr.atime;
    out->mtime = attr.mtime;
    return 0;
  }
  int ReadDir(const std::string& path, std::vector<DirEntry>* out) override {
    std::vector<graysim::DirEntryInfo> entries;
    const int rc = os_->ReadDir(pid_, path, &entries);
    if (rc < 0) {
      return rc;
    }
    out->clear();
    out->reserve(entries.size());
    for (const auto& e : entries) {
      out->push_back(DirEntry{e.name, e.is_dir});
    }
    return 0;
  }
  int Unlink(const std::string& path) override { return os_->Unlink(pid_, path); }
  int Mkdir(const std::string& path) override { return os_->Mkdir(pid_, path); }
  int Rmdir(const std::string& path) override { return os_->Rmdir(pid_, path); }
  int Rename(const std::string& from, const std::string& to) override {
    return os_->Rename(pid_, from, to);
  }
  int Utimes(const std::string& path, Nanos atime, Nanos mtime) override {
    return os_->Utimes(pid_, path, atime, mtime);
  }
  int Mincore(int fd, std::uint64_t offset, std::uint64_t length,
              std::vector<bool>* resident) override {
    return os_->Mincore(pid_, fd, offset, length, resident);
  }

  // Native batches: the whole batch crosses the simulated syscall boundary
  // (and the turnstile scheduler) once; graysim times each constituent
  // operation on its own clock.
  void PreadBatch(std::span<const PreadOp> ops, std::span<BatchResult> out) override {
    const std::size_t n = std::min(ops.size(), out.size());
    std::vector<graysim::PreadBatchOp> os_ops(n);
    std::vector<graysim::BatchOpResult> os_out(n);
    for (std::size_t i = 0; i < n; ++i) {
      os_ops[i] = graysim::PreadBatchOp{ops[i].fd, ops[i].len, ops[i].offset};
    }
    os_->PreadBatch(pid_, os_ops, os_out);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = BatchResult{os_out[i].latency_ns, os_out[i].rc};
    }
  }
  void MemTouchBatch(std::span<const MemTouchOp> ops, std::span<BatchResult> out) override {
    const std::size_t n = std::min(ops.size(), out.size());
    std::vector<graysim::VmTouchBatchOp> os_ops(n);
    std::vector<graysim::BatchOpResult> os_out(n);
    for (std::size_t i = 0; i < n; ++i) {
      os_ops[i] = graysim::VmTouchBatchOp{ops[i].handle, ops[i].page_index, ops[i].write};
    }
    os_->VmTouchBatch(pid_, os_ops, os_out);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = BatchResult{os_out[i].latency_ns, os_out[i].rc};
    }
  }
  void StatBatch(std::span<const std::string> paths, std::span<FileInfo> infos,
                 std::span<BatchResult> out) override {
    const std::size_t n = std::min({paths.size(), infos.size(), out.size()});
    std::vector<graysim::InodeAttr> attrs(n);
    std::vector<graysim::BatchOpResult> os_out(n);
    os_->StatBatch(pid_, paths.subspan(0, n), attrs, os_out);
    for (std::size_t i = 0; i < n; ++i) {
      if (os_out[i].rc == 0) {
        infos[i].inum = attrs[i].inum;
        infos[i].size = attrs[i].size;
        infos[i].is_dir = attrs[i].is_dir;
        infos[i].atime = attrs[i].atime;
        infos[i].mtime = attrs[i].mtime;
      }
      out[i] = BatchResult{os_out[i].latency_ns, os_out[i].rc};
    }
  }

  [[nodiscard]] int NetEndpoint() override { return os_->NetEndpoint(pid_); }
  std::int64_t NetSend(int from, int to, std::uint64_t bytes, std::uint64_t tag) override {
    return os_->NetSend(pid_, from, to, bytes, tag);
  }
  std::int64_t NetRecv(int endpoint, Nanos timeout, NetMessage* out) override {
    graysim::NetMessage msg;
    const std::int64_t rc = os_->NetRecv(pid_, endpoint, timeout, &msg);
    if (rc >= 0) {
      out->from = msg.from;
      out->bytes = msg.bytes;
      out->tag = msg.tag;
      out->seq = msg.seq;
      out->sent_at = msg.sent_at;
    }
    return rc;
  }
  std::int64_t NetPoll(int endpoint) override { return os_->NetPoll(pid_, endpoint); }

  // A simulated spin must charge virtual time (the clock only moves when
  // charged); Os::Compute stays preemptible in slice quanta, exactly like a
  // runnable busy-loop under the real scheduler.
  void Compute(Nanos duration) override { os_->Compute(pid_, duration); }

  [[nodiscard]] MemHandle MemAlloc(std::uint64_t bytes) override {
    const graysim::VmAreaId area = os_->VmAlloc(pid_, bytes);
    return static_cast<MemHandle>(area);
  }
  void MemFree(MemHandle handle) override { os_->VmFree(pid_, handle); }
  void MemTouch(MemHandle handle, std::uint64_t page_index, bool write) override {
    os_->VmTouch(pid_, handle, page_index, write);
  }
  [[nodiscard]] Nanos MemTouchTimed(MemHandle handle, std::uint64_t page_index,
                                    bool write) override {
    const graysim::Nanos t0 = os_->Now();
    os_->VmTouch(pid_, handle, page_index, write);
    return os_->Now() - t0;
  }
  [[nodiscard]] std::uint32_t PageSize() override { return os_->page_size(); }

  [[nodiscard]] graysim::Pid pid() const { return pid_; }
  [[nodiscard]] graysim::Os* os() const { return os_; }

 private:
  graysim::Os* os_;
  graysim::Pid pid_;
};

}  // namespace gray

#endif  // SRC_GRAY_SIM_SYS_H_
