// The gray-box boundary.
//
// Everything in the gray library observes and controls the operating system
// exclusively through this interface: the portable syscall surface any
// UNIX-like system offers, plus a high-resolution timer. No internal OS
// state is visible — exactly the constraint the paper's ICLs operate under.
//
// The repository binds SysApi to the graysim simulated OS (sim_sys.h); a
// port to a real OS would bind it to POSIX calls and rdtsc.
#ifndef SRC_GRAY_SYS_API_H_
#define SRC_GRAY_SYS_API_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace gray {

using Nanos = std::uint64_t;
using MemHandle = std::uint64_t;
constexpr MemHandle kInvalidMem = 0;

struct FileInfo {
  std::uint64_t inum = 0;
  std::uint64_t size = 0;
  bool is_dir = false;
  Nanos atime = 0;
  Nanos mtime = 0;
};

struct DirEntry {
  std::string name;
  bool is_dir = false;
};

// --- batched observation requests ---
//
// Every ICL in the paper reduces to the same loop: issue a syscall, time it,
// feed the sample to statistics. The batch calls below let that loop cross
// the system boundary once per batch instead of once per request. Batch
// reads are timing-only (no data out): they exist for probing and prefetch,
// where the response time IS the result.

struct PreadOp {
  int fd = -1;
  std::uint64_t len = 1;
  std::uint64_t offset = 0;
};

struct MemTouchOp {
  MemHandle handle = kInvalidMem;
  std::uint64_t page_index = 0;
  bool write = true;
};

// Per-operation outcome of a batch call: the return code the scalar call
// would have produced, plus the elapsed time of that one operation as
// observed by the executing layer's clock.
struct BatchResult {
  Nanos latency_ns = 0;
  std::int64_t rc = 0;
};

// One received network datagram. `tag` is opaque application data (sequence
// or ack numbers); `sent_at` is in the receiver's clock domain (the
// simulated machine has one clock, as does a single host's loopback).
struct NetMessage {
  std::int32_t from = -1;
  std::uint64_t bytes = 0;
  std::uint64_t tag = 0;
  std::uint64_t seq = 0;
  Nanos sent_at = 0;
};

class SysApi {
 public:
  virtual ~SysApi() = default;

  // --- timing (the covert channel) ---
  [[nodiscard]] virtual Nanos Now() = 0;
  virtual void SleepNs(Nanos duration) = 0;

  // Optional trace sink for the executing system, or nullptr (the default:
  // a real OS offers none). STRICTLY write-only for gray-box code: layers
  // may annotate the trace with their decisions (probe batches, replans,
  // backoffs) but must never read it back — reading would pierce the
  // gray-box boundary this interface exists to enforce.
  [[nodiscard]] virtual obs::TraceSink* Trace() { return nullptr; }

  // True when a negative return code is a *transient* failure (an EIO-style
  // hiccup) that a retry may clear, as opposed to a definitive answer like
  // ENOENT that a robust ICL must take at face value. Conservative default:
  // nothing is transient, so layers never spin on deterministic errors.
  [[nodiscard]] virtual bool IsTransientError(std::int64_t rc) const {
    (void)rc;
    return false;
  }

  // --- files ---
  // All calls return >= 0 on success and a negative errno-style value on
  // failure.
  [[nodiscard]] virtual int Open(const std::string& path) = 0;
  virtual int Close(int fd) = 0;
  virtual std::int64_t Pread(int fd, std::span<std::uint8_t> buf, std::uint64_t len,
                             std::uint64_t offset) = 0;
  virtual std::int64_t Pwrite(int fd, std::uint64_t len, std::uint64_t offset) = 0;
  [[nodiscard]] virtual int Creat(const std::string& path) = 0;
  virtual int Fsync(int fd) = 0;
  // syncfs(2)-style whole-filesystem durability barrier for the filesystem
  // holding `disk` (simulated machines name disks directly). Not broadly
  // available — default says unsupported, like Mincore on profiles that
  // lack it; callers needing portability fall back to per-fd Fsync.
  virtual int Syncfs(int disk) {
    (void)disk;
    return -22;  // EINVAL-style "not supported here"
  }
  virtual int Stat(const std::string& path, FileInfo* out) = 0;
  virtual int ReadDir(const std::string& path, std::vector<DirEntry>* out) = 0;
  virtual int Unlink(const std::string& path) = 0;
  virtual int Mkdir(const std::string& path) = 0;
  virtual int Rmdir(const std::string& path) = 0;
  virtual int Rename(const std::string& from, const std::string& to) = 0;
  virtual int Utimes(const std::string& path, Nanos atime, Nanos mtime) = 0;

  // mincore(2)-style residency query (paper §4.1 footnote 1: "some systems
  // provide information as to the contents of the file cache via the
  // mincore routine. However, this interface is not broadly available and
  // thus cannot be relied upon."). Fills one bool per page of the range.
  // Returns a negative value on platforms without the interface — portable
  // gray-box code must be prepared to fall back to probing.
  virtual int Mincore(int fd, std::uint64_t offset, std::uint64_t length,
                      std::vector<bool>* resident) = 0;

  // --- batched operations ---
  // Each call executes min(ops.size(), out.size()) operations in request
  // order and fills one BatchResult per operation. The default
  // implementations loop over the scalar calls, timing each with Now() —
  // exactly what a portable gray-box layer can do on any UNIX, preserving
  // the paper's constraint. Backends with a cheaper boundary crossing (the
  // simulated OS, or a kernel with vectored I/O) override them so the whole
  // batch pays the crossing once; per-operation latencies then exclude the
  // per-call syscall tax, which is the point of batching.
  virtual void PreadBatch(std::span<const PreadOp> ops, std::span<BatchResult> out) {
    const std::size_t n = std::min(ops.size(), out.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Nanos t0 = Now();
      const std::int64_t rc = Pread(ops[i].fd, {}, ops[i].len, ops[i].offset);
      out[i] = BatchResult{Now() - t0, rc};
    }
  }
  virtual void MemTouchBatch(std::span<const MemTouchOp> ops, std::span<BatchResult> out) {
    const std::size_t n = std::min(ops.size(), out.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Nanos t0 = Now();
      MemTouch(ops[i].handle, ops[i].page_index, ops[i].write);
      out[i] = BatchResult{Now() - t0, 0};
    }
  }
  // Stats every path; fills infos[i] on success (rc == 0).
  virtual void StatBatch(std::span<const std::string> paths, std::span<FileInfo> infos,
                         std::span<BatchResult> out) {
    const std::size_t n = std::min({paths.size(), infos.size(), out.size()});
    for (std::size_t i = 0; i < n; ++i) {
      const Nanos t0 = Now();
      const int rc = Stat(paths[i], &infos[i]);
      out[i] = BatchResult{Now() - t0, rc};
    }
  }

  // --- network ---
  // Datagram messaging over the host's link. Defaults return -1: a backend
  // without a network (or a port that has not wired one) is a valid SysApi,
  // and portable layers must check NetEndpoint() before relying on the rest.
  // Semantics when supported: endpoints are small non-negative handles;
  // NetSend queues `bytes` from `from` to `to` and returns `bytes` (loss is
  // silent — inferring why a message vanished is the gray-box layer's job);
  // NetRecv blocks up to `timeout` ns (0 = non-blocking) and returns the
  // received byte count or a negative timeout/error code; NetPoll returns
  // the delivered-and-unread count without blocking.
  [[nodiscard]] virtual int NetEndpoint() { return -1; }
  virtual std::int64_t NetSend(int from, int to, std::uint64_t bytes, std::uint64_t tag) {
    (void)from;
    (void)to;
    (void)bytes;
    (void)tag;
    return -1;
  }
  virtual std::int64_t NetRecv(int endpoint, Nanos timeout, NetMessage* out) {
    (void)endpoint;
    (void)timeout;
    (void)out;
    return -1;
  }
  virtual std::int64_t NetPoll(int endpoint) {
    (void)endpoint;
    return -1;
  }

  // --- CPU ---
  // Burns `duration` of CPU (preemptible). Spin-wait layers (two-phase
  // co-scheduling) use this instead of SleepNs so they stay runnable and
  // keep consuming their scheduler slot — that is what makes spinning
  // observable. Default: spin on the clock, which is exactly what a real
  // userland busy-loop does.
  virtual void Compute(Nanos duration) {
    const Nanos end = Now() + duration;
    while (Now() < end) {
    }
  }

  // --- memory ---
  [[nodiscard]] virtual MemHandle MemAlloc(std::uint64_t bytes) = 0;
  virtual void MemFree(MemHandle handle) = 0;
  // Touches one page; write=true models a store (reads hit the COW zero
  // page on most systems and do not allocate).
  virtual void MemTouch(MemHandle handle, std::uint64_t page_index, bool write) = 0;
  // One timed touch in a single dispatch: exactly Now(); MemTouch(); Now()
  // but one virtual hop instead of three. Probe loops issue hundreds of
  // millions of these per sweep, so backends with an inlinable clock (the
  // simulator) override it.
  [[nodiscard]] virtual Nanos MemTouchTimed(MemHandle handle, std::uint64_t page_index,
                                            bool write) {
    const Nanos t0 = Now();
    MemTouch(handle, page_index, write);
    return Now() - t0;
  }
  [[nodiscard]] virtual std::uint32_t PageSize() = 0;
};

}  // namespace gray

#endif  // SRC_GRAY_SYS_API_H_
