// The shared observation layer of the gray toolbox.
//
// Every ICL in the paper reduces to the same loop — issue a syscall, time
// it, feed the sample to statistics (FCCD times 1-byte reads, MAC times
// page touches, FLDC times stats). The ProbeEngine is that loop, written
// once: it plans, executes, and times probe batches, feeds every sample to
// an incremental RunningStats, and accounts probe overhead (probes issued,
// bytes touched, probe time vs useful-work time) in one place.
//
// Execution strategy is pluggable:
//  * kBatched (default) sends sub-batches through the SysApi batch calls,
//    so a backend with a cheap boundary crossing (graysim, vectored I/O)
//    pays the syscall tax once per batch;
//  * kScalar loops over the scalar calls with Now() around each — the
//    portable fallback every UNIX supports, and the paper's literal loop.
//
// Early-exit probe loops (MAC's consecutive-slow abort) use RunUntil
// variants, which are inherently sequential: each sample decides whether
// the next probe is issued at all, so they execute scalar regardless of
// strategy.
#ifndef SRC_GRAY_PROBE_PROBE_ENGINE_H_
#define SRC_GRAY_PROBE_PROBE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/gray/sys_api.h"
#include "src/gray/toolbox/stats.h"
#include "src/obs/metrics.h"

namespace gray {

// --- requests ---

// Time a read of `len` bytes at `offset` (len = 1 is the classic residency
// probe; larger lengths time prefetch-style reads).
struct TimedPread {
  int fd = -1;
  std::uint64_t len = 1;
  std::uint64_t offset = 0;
};

// Time a touch of one page of an anonymous allocation.
struct TimedMemTouch {
  MemHandle handle = kInvalidMem;
  std::uint64_t page_index = 0;
  bool write = true;
};

// Time a stat; the FileInfo comes back alongside the sample.
struct TimedStat {
  std::string path;
};

// Time one network round trip: send `bytes` from `endpoint` to `peer` and
// wait (up to `timeout`) for the peer to echo the same tag back. Requires a
// cooperating echo peer; the sample latency is the full RTT the application
// would see, which is what congestion and co-scheduling inference feed on.
struct TimedNetPing {
  int endpoint = -1;  // our endpoint (the echo lands here)
  int peer = -1;      // echo server's endpoint
  std::uint64_t bytes = 64;
  Nanos timeout = 5'000'000;  // 5 ms
};

// --- results ---

// One timed observation: the elapsed time of the operation (the covert
// channel) and the return code the scalar call would have produced.
struct ProbeSample {
  Nanos latency_ns = 0;
  std::int64_t rc = 0;
};

enum class ProbeStrategy {
  kScalar,   // portable loop over scalar syscalls
  kBatched,  // SysApi batch calls (one boundary crossing per sub-batch)
};

struct ProbeEngineOptions {
  ProbeStrategy strategy = ProbeStrategy::kBatched;
  // Requests per SysApi batch call; bounds per-batch memory and lets long
  // plans interleave with competitors at sub-batch boundaries.
  std::size_t max_batch = 256;
  // Failure-aware retry: a sample whose rc the backend classifies as
  // transient (SysApi::IsTransientError) is re-issued scalar up to this many
  // times, sleeping retry_backoff, 2*retry_backoff, ... between attempts so
  // a burst of interference can pass. The backoff sleep is NOT part of the
  // sample latency — only the operation itself is timed. 0 restores the
  // legacy fire-once behavior.
  std::size_t max_retries = 2;
  Nanos retry_backoff = 200'000;  // 200 us
  // A run whose (post-retry) failure fraction exceeds this marks the engine
  // degraded for that run — the ICL's cue to distrust the batch wholesale
  // rather than dissect poisoned samples.
  double degraded_failure_fraction = 0.25;
};

// Per-layer accounting of observation overhead. Everything an ICL needs to
// answer "what did probing cost me?" — printed per ICL by
// bench/table2_case_studies.
struct ProbeReport {
  std::uint64_t probes = 0;          // operations issued
  std::uint64_t batches = 0;         // SysApi batch calls made
  std::uint64_t pread_probes = 0;
  std::uint64_t memtouch_probes = 0;
  std::uint64_t stat_probes = 0;
  std::uint64_t net_probes = 0;  // round-trip pings issued
  std::uint64_t failed_probes = 0;   // rc < 0 after retries
  std::uint64_t retried_probes = 0;  // extra attempts issued by retry
  std::uint64_t bytes_touched = 0;   // bytes read + pages touched * page size
  Nanos probe_time = 0;              // virtual time spent inside probes

  // Folds another report in (Compose aggregates its sub-ICLs this way).
  void Merge(const ProbeReport& other);

  // Fraction of `lifetime` spent probing; the remainder is useful work.
  [[nodiscard]] double ProbeShare(Nanos lifetime) const {
    return lifetime == 0 ? 0.0
                         : static_cast<double>(probe_time) / static_cast<double>(lifetime);
  }
};

class ProbeEngine {
 public:
  explicit ProbeEngine(SysApi* sys, ProbeEngineOptions options = ProbeEngineOptions{});

  // Executes and times every request, in order; returns one sample per
  // request and feeds each latency to the incremental stats.
  std::vector<ProbeSample> RunPreads(std::span<const TimedPread> reqs);
  std::vector<ProbeSample> RunMemTouches(std::span<const TimedMemTouch> reqs);
  // infos->at(i) is filled when samples[i].rc == 0.
  std::vector<ProbeSample> RunStats(std::span<const TimedStat> reqs,
                                    std::vector<FileInfo>* infos);
  // Round-trip pings, inherently sequential (each ping is an RPC): a timed-
  // out ping is retried with fresh tags under the usual backoff schedule,
  // and stale echoes of abandoned pings are discarded by tag. Requires the
  // backend to support SysApi's net calls; without one, every sample fails.
  std::vector<ProbeSample> RunNetPings(std::span<const TimedNetPing> reqs);

  // Early-exit streaming: issues requests one at a time and calls `visit`
  // with each sample; stops (and stops probing) when visit returns false.
  // Returns the number of requests executed. Sequential by necessity: the
  // sample decides whether the next probe may be issued at all. Templated
  // on the visitor so the per-touch callback inlines — this loop carries
  // hundreds of millions of touches per MAC sweep and an indirect call per
  // sample is measurable.
  template <typename Visit>
  std::size_t RunMemTouchesUntil(std::span<const TimedMemTouch> reqs, Visit&& visit) {
    std::size_t executed = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const ProbeSample sample{
          sys_->MemTouchTimed(reqs[i].handle, reqs[i].page_index, reqs[i].write), 0};
      Account(Kind::kMemTouch, sample);
      ++executed;
      if (!visit(i, sample)) {
        break;
      }
    }
    return executed;
  }

  [[nodiscard]] const ProbeReport& report() const { return report_; }
  // Incremental statistics over every SUCCESSFUL sample since
  // construction/reset. Failed probes (rc < 0) are excluded: an injected
  // EIO's latency measures the kernel's retry loop, not cache state, and
  // folding it in would poison every mean/percentile downstream.
  [[nodiscard]] const RunningStats& latency_stats() const { return latency_stats_; }
  // True when the last Run* call's failure fraction exceeded
  // degraded_failure_fraction — the per-batch "don't trust this ranking"
  // signal hardened ICLs consult.
  [[nodiscard]] bool last_run_degraded() const { return last_run_degraded_; }
  // Virtual time since construction/reset; report().ProbeShare(lifetime())
  // is the probe-time share of this engine's owner.
  [[nodiscard]] Nanos lifetime() const;
  void Reset();

  [[nodiscard]] SysApi* sys() const { return sys_; }
  [[nodiscard]] const ProbeEngineOptions& options() const { return options_; }

  // Log-bucketed distribution of every successful sample latency — the
  // richer sibling of latency_stats() (which keeps only moments).
  [[nodiscard]] const obs::Histogram& latency_hist() const { return latency_hist_; }

  // Binds this engine's report counters and latency histogram into
  // `registry` under "<prefix>." names (e.g. "fccd.probes").
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& prefix) const;

  // Ping tags carry this marker so application protocols sharing an
  // endpoint can tell probe echoes from their own traffic — and so echo
  // peers (any loop willing to reflect messages) can tell which incoming
  // tags to bounce straight back.
  static constexpr std::uint64_t kPingTagMarker = 1ULL << 62;

 private:
  enum class Kind { kPread, kMemTouch, kStat, kNetPing };

  // One send + echo-wait round trip with a fresh tag.
  ProbeSample PingOnce(const TimedNetPing& req);

  // Accounts one executed sample into the report and incremental stats.
  void Account(Kind kind, const ProbeSample& sample);

  // Re-issues a transiently failed pread/stat scalar with exponential
  // backoff; returns the final sample (retry disabled => the input).
  ProbeSample RetryPread(const TimedPread& req, ProbeSample sample);
  ProbeSample RetryStat(const TimedStat& req, FileInfo* info, ProbeSample sample);
  [[nodiscard]] bool ShouldRetry(const ProbeSample& sample) const {
    return options_.max_retries > 0 && sample.rc < 0 && sys_->IsTransientError(sample.rc);
  }

  // Updates last_run_degraded_ from one run's final samples.
  void NoteRunOutcome(std::span<const ProbeSample> samples);

  SysApi* sys_;
  ProbeEngineOptions options_;
  ProbeReport report_;
  RunningStats latency_stats_;
  obs::Histogram latency_hist_;
  // Backend trace sink (nullptr on real-OS backends); batch spans land on
  // obs::kTrackProbe. Write-only — see SysApi::Trace().
  obs::TraceSink* trace_ = nullptr;
  // PageSize() is a per-machine constant; cached so Account's per-touch
  // bytes_touched bump does not pay a virtual dispatch.
  std::uint64_t page_size_ = 0;
  Nanos created_at_ = 0;
  std::uint64_t next_ping_tag_ = 1;
  bool last_run_degraded_ = false;
};

}  // namespace gray

#endif  // SRC_GRAY_PROBE_PROBE_ENGINE_H_
