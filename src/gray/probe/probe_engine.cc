#include "src/gray/probe/probe_engine.h"

#include <algorithm>

namespace gray {

void ProbeReport::Merge(const ProbeReport& other) {
  probes += other.probes;
  batches += other.batches;
  pread_probes += other.pread_probes;
  memtouch_probes += other.memtouch_probes;
  stat_probes += other.stat_probes;
  net_probes += other.net_probes;
  failed_probes += other.failed_probes;
  retried_probes += other.retried_probes;
  bytes_touched += other.bytes_touched;
  probe_time += other.probe_time;
}

ProbeEngine::ProbeEngine(SysApi* sys, ProbeEngineOptions options)
    : sys_(sys),
      options_(options),
      trace_(sys->Trace()),
      page_size_(sys->PageSize()),
      created_at_(sys->Now()) {
  if (options_.max_batch == 0) {
    options_.max_batch = 1;
  }
}

void ProbeEngine::BindMetrics(obs::MetricsRegistry* registry,
                              const std::string& prefix) const {
  obs::MetricsRegistry& r = *registry;
  r.AddCounter(prefix + ".probes", &report_.probes);
  r.AddCounter(prefix + ".batches", &report_.batches);
  r.AddCounter(prefix + ".pread_probes", &report_.pread_probes);
  r.AddCounter(prefix + ".memtouch_probes", &report_.memtouch_probes);
  r.AddCounter(prefix + ".stat_probes", &report_.stat_probes);
  r.AddCounter(prefix + ".net_probes", &report_.net_probes);
  r.AddCounter(prefix + ".failed_probes", &report_.failed_probes);
  r.AddCounter(prefix + ".retried_probes", &report_.retried_probes);
  r.AddCounter(prefix + ".bytes_touched", &report_.bytes_touched, "bytes");
  r.AddCounter(prefix + ".probe_time_ns", &report_.probe_time, "ns");
  r.AddHistogram(prefix + ".probe_latency_ns", "ns", &latency_hist_);
}

Nanos ProbeEngine::lifetime() const { return sys_->Now() - created_at_; }

ProbeSample ProbeEngine::RetryPread(const TimedPread& req, ProbeSample sample) {
  Nanos backoff = options_.retry_backoff;
  for (std::size_t attempt = 0; attempt < options_.max_retries && ShouldRetry(sample);
       ++attempt) {
    sys_->SleepNs(backoff);  // let the interference burst pass; not timed
    backoff *= 2;
    ++report_.retried_probes;
    const Nanos t0 = sys_->Now();
    const std::int64_t rc = sys_->Pread(req.fd, {}, req.len, req.offset);
    sample = ProbeSample{sys_->Now() - t0, rc};
  }
  return sample;
}

ProbeSample ProbeEngine::RetryStat(const TimedStat& req, FileInfo* info,
                                   ProbeSample sample) {
  Nanos backoff = options_.retry_backoff;
  for (std::size_t attempt = 0; attempt < options_.max_retries && ShouldRetry(sample);
       ++attempt) {
    sys_->SleepNs(backoff);
    backoff *= 2;
    ++report_.retried_probes;
    const Nanos t0 = sys_->Now();
    const int rc = sys_->Stat(req.path, info);
    sample = ProbeSample{sys_->Now() - t0, rc};
  }
  return sample;
}

void ProbeEngine::NoteRunOutcome(std::span<const ProbeSample> samples) {
  if (samples.empty()) {
    last_run_degraded_ = false;
    return;
  }
  std::size_t failed = 0;
  for (const ProbeSample& s : samples) {
    failed += s.rc < 0 ? 1 : 0;
  }
  last_run_degraded_ = static_cast<double>(failed) >
                       options_.degraded_failure_fraction * static_cast<double>(samples.size());
}

void ProbeEngine::Reset() {
  report_ = ProbeReport{};
  latency_stats_ = RunningStats{};
  latency_hist_.Reset();
  created_at_ = sys_->Now();
  last_run_degraded_ = false;
}

void ProbeEngine::Account(Kind kind, const ProbeSample& sample) {
  ++report_.probes;
  report_.probe_time += sample.latency_ns;
  if (sample.rc >= 0) {
    // Only successful observations feed the statistics: a failed probe's
    // latency times the error path, not the state being inferred.
    latency_stats_.Add(static_cast<double>(sample.latency_ns));
    latency_hist_.Record(sample.latency_ns);
  }
  switch (kind) {
    case Kind::kPread:
      ++report_.pread_probes;
      if (sample.rc > 0) {
        report_.bytes_touched += static_cast<std::uint64_t>(sample.rc);
      }
      break;
    case Kind::kMemTouch:
      ++report_.memtouch_probes;
      report_.bytes_touched += page_size_;
      break;
    case Kind::kStat:
      ++report_.stat_probes;
      break;
    case Kind::kNetPing:
      ++report_.net_probes;
      if (sample.rc > 0) {
        // Echo received: the payload crossed the wire both ways.
        report_.bytes_touched += 2 * static_cast<std::uint64_t>(sample.rc);
      }
      break;
  }
  if (sample.rc < 0) {
    ++report_.failed_probes;
  }
}

std::vector<ProbeSample> ProbeEngine::RunPreads(std::span<const TimedPread> reqs) {
  std::vector<ProbeSample> samples(reqs.size());
  if (options_.strategy == ProbeStrategy::kScalar) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const Nanos t0 = sys_->Now();
      const std::int64_t rc = sys_->Pread(reqs[i].fd, {}, reqs[i].len, reqs[i].offset);
      samples[i] = RetryPread(reqs[i], ProbeSample{sys_->Now() - t0, rc});
      Account(Kind::kPread, samples[i]);
    }
    NoteRunOutcome(samples);
    return samples;
  }
  std::vector<PreadOp> ops;
  std::vector<BatchResult> results;
  for (std::size_t start = 0; start < reqs.size(); start += options_.max_batch) {
    const std::size_t n = std::min(options_.max_batch, reqs.size() - start);
    ops.resize(n);
    results.assign(n, BatchResult{});
    for (std::size_t i = 0; i < n; ++i) {
      ops[i] = PreadOp{reqs[start + i].fd, reqs[start + i].len, reqs[start + i].offset};
    }
    const bool traced = trace_ != nullptr && trace_->enabled();
    const Nanos t0 = traced ? sys_->Now() : 0;
    sys_->PreadBatch(ops, results);
    ++report_.batches;
    if (traced) {
      trace_->Complete(obs::kTrackProbe, "pread.batch", t0, sys_->Now() - t0, "probes", n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      samples[start + i] =
          RetryPread(reqs[start + i], ProbeSample{results[i].latency_ns, results[i].rc});
      Account(Kind::kPread, samples[start + i]);
    }
  }
  NoteRunOutcome(samples);
  return samples;
}

std::vector<ProbeSample> ProbeEngine::RunMemTouches(std::span<const TimedMemTouch> reqs) {
  std::vector<ProbeSample> samples(reqs.size());
  if (options_.strategy == ProbeStrategy::kScalar) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      samples[i] = ProbeSample{
          sys_->MemTouchTimed(reqs[i].handle, reqs[i].page_index, reqs[i].write), 0};
      Account(Kind::kMemTouch, samples[i]);
    }
    last_run_degraded_ = false;  // memory touches cannot fail
    return samples;
  }
  std::vector<MemTouchOp> ops;
  std::vector<BatchResult> results;
  for (std::size_t start = 0; start < reqs.size(); start += options_.max_batch) {
    const std::size_t n = std::min(options_.max_batch, reqs.size() - start);
    ops.resize(n);
    results.assign(n, BatchResult{});
    for (std::size_t i = 0; i < n; ++i) {
      ops[i] = MemTouchOp{reqs[start + i].handle, reqs[start + i].page_index,
                          reqs[start + i].write};
    }
    const bool traced = trace_ != nullptr && trace_->enabled();
    const Nanos t0 = traced ? sys_->Now() : 0;
    sys_->MemTouchBatch(ops, results);
    ++report_.batches;
    if (traced) {
      trace_->Complete(obs::kTrackProbe, "memtouch.batch", t0, sys_->Now() - t0, "probes", n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      samples[start + i] = ProbeSample{results[i].latency_ns, results[i].rc};
      Account(Kind::kMemTouch, samples[start + i]);
    }
  }
  last_run_degraded_ = false;
  return samples;
}

std::vector<ProbeSample> ProbeEngine::RunStats(std::span<const TimedStat> reqs,
                                               std::vector<FileInfo>* infos) {
  std::vector<ProbeSample> samples(reqs.size());
  infos->assign(reqs.size(), FileInfo{});
  if (options_.strategy == ProbeStrategy::kScalar) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const Nanos t0 = sys_->Now();
      const int rc = sys_->Stat(reqs[i].path, &(*infos)[i]);
      samples[i] = RetryStat(reqs[i], &(*infos)[i], ProbeSample{sys_->Now() - t0, rc});
      Account(Kind::kStat, samples[i]);
    }
    NoteRunOutcome(samples);
    return samples;
  }
  std::vector<std::string> paths;
  std::vector<BatchResult> results;
  for (std::size_t start = 0; start < reqs.size(); start += options_.max_batch) {
    const std::size_t n = std::min(options_.max_batch, reqs.size() - start);
    paths.resize(n);
    results.assign(n, BatchResult{});
    for (std::size_t i = 0; i < n; ++i) {
      paths[i] = reqs[start + i].path;
    }
    const bool traced = trace_ != nullptr && trace_->enabled();
    const Nanos t0 = traced ? sys_->Now() : 0;
    sys_->StatBatch(paths, std::span<FileInfo>(infos->data() + start, n), results);
    ++report_.batches;
    if (traced) {
      trace_->Complete(obs::kTrackProbe, "stat.batch", t0, sys_->Now() - t0, "probes", n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      samples[start + i] =
          RetryStat(reqs[start + i], &(*infos)[start + i],
                    ProbeSample{results[i].latency_ns, results[i].rc});
      Account(Kind::kStat, samples[start + i]);
    }
  }
  NoteRunOutcome(samples);
  return samples;
}

ProbeSample ProbeEngine::PingOnce(const TimedNetPing& req) {
  const std::uint64_t tag = kPingTagMarker | next_ping_tag_++;
  const Nanos t0 = sys_->Now();
  std::int64_t rc = sys_->NetSend(req.endpoint, req.peer, req.bytes, tag);
  if (rc < 0) {
    return ProbeSample{sys_->Now() - t0, rc};
  }
  const Nanos deadline = t0 + req.timeout;
  NetMessage msg;
  while (true) {
    const Nanos now = sys_->Now();
    rc = sys_->NetRecv(req.endpoint, now < deadline ? deadline - now : 0, &msg);
    if (rc < 0 || msg.tag == tag) {
      return ProbeSample{sys_->Now() - t0, rc};
    }
    // A stale echo of an earlier, abandoned ping: discard and keep waiting
    // on the same deadline.
  }
}

std::vector<ProbeSample> ProbeEngine::RunNetPings(std::span<const TimedNetPing> reqs) {
  std::vector<ProbeSample> samples(reqs.size());
  const bool traced = trace_ != nullptr && trace_->enabled();
  const Nanos run_t0 = traced ? sys_->Now() : 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ProbeSample sample = PingOnce(reqs[i]);
    Nanos backoff = options_.retry_backoff;
    for (std::size_t attempt = 0; attempt < options_.max_retries && ShouldRetry(sample);
         ++attempt) {
      sys_->SleepNs(backoff);  // let the loss burst pass; not timed
      backoff *= 2;
      ++report_.retried_probes;
      sample = PingOnce(reqs[i]);
    }
    samples[i] = sample;
    Account(Kind::kNetPing, sample);
  }
  if (traced && !reqs.empty()) {
    trace_->Complete(obs::kTrackProbe, "netping.run", run_t0, sys_->Now() - run_t0, "probes",
                     reqs.size());
  }
  NoteRunOutcome(samples);
  return samples;
}

}  // namespace gray
