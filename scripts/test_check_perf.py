"""Unit tests for scripts/check_perf.py (the perf smoke gate).

Runs under pytest (CI lint job) and plain unittest
(`python3 -m unittest scripts.test_check_perf` or
`python3 -m unittest discover scripts`) for hosts without pytest.

The cases pin the gate's load-bearing behaviors: a baseline whose fresh
JSON is missing must FAIL (not silently skip), the additive floors/ceilings
bind on the correct side, the multiplicative latency/goodput gates bind on
the correct side, and --only restricts which baselines are compared.
"""

import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_perf  # noqa: E402


def bench_doc(metrics, host_time_s=0.05):
    return {
        "bench": "x",
        "virtual_time_s": 1.0,
        "host_time_s": host_time_s,
        "metrics": [
            {"metric": name, "value": value, "unit": unit}
            for name, value, unit in metrics
        ],
    }


class CheckPerfTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.fresh = root / "fresh"
        self.baseline = root / "baseline"
        self.fresh.mkdir()
        self.baseline.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, bench, doc):
        path = directory / f"BENCH_{bench}.json"
        path.write_text(json.dumps(doc))
        return path

    def run_gate(self, *extra_args):
        return check_perf.main([str(self.fresh), str(self.baseline), *extra_args])

    # ---- missing-fresh hard failure (the bugfix this suite exists for) ----

    def test_missing_fresh_result_fails(self):
        self.write(self.baseline, "alpha",
                   bench_doc([("throughput", 100.0, "ops/s")]))
        # No fresh/BENCH_alpha.json at all: the old behavior skipped with a
        # note and PASSED; a crashed bench must fail the gate.
        self.assertEqual(self.run_gate(), 1)

    def test_missing_fresh_fails_even_when_other_benches_pass(self):
        doc = bench_doc([("throughput", 100.0, "ops/s")])
        self.write(self.baseline, "alpha", doc)
        self.write(self.baseline, "beta", doc)
        self.write(self.fresh, "alpha", doc)
        self.assertEqual(self.run_gate(), 1)

    def test_extra_fresh_results_are_not_required_by_baseline(self):
        doc = bench_doc([("throughput", 100.0, "ops/s")])
        self.write(self.baseline, "alpha", doc)
        self.write(self.fresh, "alpha", doc)
        self.write(self.fresh, "newbench", doc)  # no baseline yet: fine
        self.assertEqual(self.run_gate(), 0)

    # ---- ops/s factor gate ----

    def test_ops_within_factor_passes(self):
        self.write(self.baseline, "alpha", bench_doc([("t", 100.0, "ops/s")]))
        self.write(self.fresh, "alpha", bench_doc([("t", 21.0, "ops/s")]))
        self.assertEqual(self.run_gate("--factor=5"), 0)

    def test_ops_below_factor_floor_fails(self):
        self.write(self.baseline, "alpha", bench_doc([("t", 100.0, "ops/s")]))
        self.write(self.fresh, "alpha", bench_doc([("t", 19.0, "ops/s")]))
        self.assertEqual(self.run_gate("--factor=5"), 1)

    # ---- additive floor (retained/efficiency/ratio) edge cases ----

    def test_additive_floor_binds_exactly(self):
        self.write(self.baseline, "alpha", bench_doc([("kept", 0.90, "retained")]))
        self.write(self.fresh, "alpha", bench_doc([("kept", 0.75, "retained")]))
        # floor = 0.90 - 0.15 = 0.75; at the floor passes...
        self.assertEqual(self.run_gate("--retained-slack=0.15"), 0)
        self.write(self.fresh, "alpha", bench_doc([("kept", 0.7499, "retained")]))
        # ...just under it fails.
        self.assertEqual(self.run_gate("--retained-slack=0.15"), 1)

    def test_additive_ceiling_binds_exactly(self):
        self.write(self.baseline, "alpha", bench_doc([("ovh", 0.10, "overhead")]))
        self.write(self.fresh, "alpha", bench_doc([("ovh", 0.25, "overhead")]))
        # ceiling = 0.10 + 0.15 = 0.25; at the ceiling passes...
        self.assertEqual(self.run_gate("--overhead-slack=0.15"), 0)
        self.write(self.fresh, "alpha", bench_doc([("ovh", 0.2501, "overhead")]))
        # ...just over it fails.
        self.assertEqual(self.run_gate("--overhead-slack=0.15"), 1)

    # ---- multiplicative latency ceiling / goodput floor ----

    def test_latency_regression_fails(self):
        self.write(self.baseline, "load",
                   bench_doc([("latency.p99_ns", 1000.0, "latency_ns")]))
        self.write(self.fresh, "load",
                   bench_doc([("latency.p99_ns", 1100.0, "latency_ns")]))
        self.assertEqual(self.run_gate("--latency-slack=0.10"), 0)  # at ceiling
        self.write(self.fresh, "load",
                   bench_doc([("latency.p99_ns", 1101.0, "latency_ns")]))
        self.assertEqual(self.run_gate("--latency-slack=0.10"), 1)

    def test_latency_improvement_passes(self):
        self.write(self.baseline, "load",
                   bench_doc([("latency.p99_ns", 1000.0, "latency_ns")]))
        self.write(self.fresh, "load",
                   bench_doc([("latency.p99_ns", 10.0, "latency_ns")]))
        self.assertEqual(self.run_gate(), 0)

    def test_goodput_regression_fails(self):
        self.write(self.baseline, "load", bench_doc([("goodput_rps", 500.0, "goodput")]))
        self.write(self.fresh, "load", bench_doc([("goodput_rps", 450.0, "goodput")]))
        self.assertEqual(self.run_gate("--goodput-slack=0.10"), 0)  # at floor
        self.write(self.fresh, "load", bench_doc([("goodput_rps", 449.0, "goodput")]))
        self.assertEqual(self.run_gate("--goodput-slack=0.10"), 1)

    # ---- host_time_s factor gate ----

    def test_small_baseline_host_time_is_not_gated(self):
        self.write(self.baseline, "alpha",
                   bench_doc([("t", 1.0, "ops/s")], host_time_s=0.1))
        self.write(self.fresh, "alpha",
                   bench_doc([("t", 1.0, "ops/s")], host_time_s=99.0))
        self.assertEqual(self.run_gate(), 0)

    def test_large_baseline_host_time_is_gated(self):
        self.write(self.baseline, "alpha",
                   bench_doc([("t", 1.0, "ops/s")], host_time_s=1.0))
        self.write(self.fresh, "alpha",
                   bench_doc([("t", 1.0, "ops/s")], host_time_s=5.1))
        self.assertEqual(self.run_gate("--factor=5"), 1)

    # ---- --only filter ----

    def test_only_restricts_comparison(self):
        good = bench_doc([("t", 100.0, "ops/s")])
        bad = bench_doc([("t", 1.0, "ops/s")])
        self.write(self.baseline, "alpha", good)
        self.write(self.baseline, "beta", good)
        self.write(self.fresh, "alpha", good)
        self.write(self.fresh, "beta", bad)
        self.assertEqual(self.run_gate("--only=alpha"), 0)
        self.assertEqual(self.run_gate("--only=alpha,beta"), 1)

    def test_only_still_fails_on_missing_fresh_inside_the_list(self):
        self.write(self.baseline, "alpha", bench_doc([("t", 100.0, "ops/s")]))
        self.write(self.baseline, "beta", bench_doc([("t", 100.0, "ops/s")]))
        self.write(self.fresh, "beta", bench_doc([("t", 100.0, "ops/s")]))
        self.assertEqual(self.run_gate("--only=beta"), 0)   # alpha ignored
        self.assertEqual(self.run_gate("--only=alpha"), 1)  # alpha required

    # ---- degenerate inputs ----

    def test_no_common_metrics_is_an_error(self):
        self.write(self.baseline, "alpha", bench_doc([]))
        self.write(self.fresh, "alpha", bench_doc([]))
        self.assertEqual(self.run_gate(), 1)


if __name__ == "__main__":
    unittest.main()
