#!/usr/bin/env python3
"""Perf smoke gate: compare fresh bench JSON against committed baselines.

Usage: check_perf.py <fresh_results_dir> <baseline_dir> [--factor=5]
                     [--retained-slack=0.15] [--efficiency-slack=0.25]
                     [--ratio-slack=0.10] [--host-slack=0.75]
                     [--overhead-slack=0.15] [--recovery-slack=0.5]
                     [--latency-slack=0.10] [--goodput-slack=0.10]
                     [--only=bench1,bench2]

For every BENCH_*.json present in BOTH directories, every metric with unit
"ops/s" must be no more than `factor` times slower than the committed
baseline value. Host wall times are compared with the same factor, but only
when the baseline run took at least 0.2 s (sub-100ms timings are noise on a
shared CI runner). The gate is deliberately loose — 5x — because CI
machines vary wildly; it exists to catch gross regressions (an accidental
O(n^2), a reintroduced per-op allocation storm), not small ones. Tight
tracking happens through the committed results/ JSONs reviewed in PRs.

Metrics with unit "retained" (the robustness matrix's interference-
retention ratios) are gated additively instead: fresh must be at least
baseline - retained_slack. These come from a deterministic simulation, so
they are bit-stable across hosts; the slack only absorbs deliberate
re-tunings of the interference preset, not machine noise. A PR that erodes
how much of its win a hardened ICL keeps under interference fails here.

Metrics with unit "ratio" (the Table 1 goodput/fairness/utilization
fractions from bench/table1_prior_systems) are likewise additive: the
classic scenarios run on the deterministic simulator, so a fresh value more
than ratio_slack below the committed baseline means the ICL itself got
worse — a regressed congestion response, a spin policy that starves local
jobs — not a noisy machine.

Metrics with unit "efficiency" (scale_fleet's parallel-scaling fraction:
achieved machines/sec over threads x single-thread machines/sec) are also
gated additively, with a wider slack: scaling on a shared CI runner is
noisy, but a reintroduced cross-machine global (a contended atomic, a lock
in the hot path) collapses efficiency far below any plausible noise floor,
which is exactly the regression this gate exists to catch.

Metrics with unit "overhead" (scale_fleet's checkpoint-overhead fraction:
host seconds spent in Snapshot+Save over the supervised run's total) and
unit "recovery_s" (host seconds to restore a crashed machine from its
durable image) are ceiling-gated additively: fresh must be at most
baseline + slack. Both are small host-time quantities on a shared runner,
so the slack is generous; the regressions they exist to catch — a
checkpoint serializer that starts deep-copying something huge, a loader
that re-parses per section — blow through any plausible noise.

Metrics with unit "host_s" (an explicit absolute wall-time metric a bench
opts into, e.g. the robustness matrix's sweep_host_s) are ceiling-gated:
fresh must be at most baseline * (1 + host_slack). This is much tighter
than the 5x host_time_s factor on purpose — the sweep takes tens of
seconds, so runner noise is a small fraction, and the regression this
catches (a reintroduced per-cell machine warm instead of a snapshot fork)
multiplies the time rather than nudging it.

Metrics with unit "latency_ns" (graysimd's fleet-merged request-latency
percentiles from bench/load_replay) are ceiling-gated multiplicatively:
fresh must be at most baseline * (1 + latency_slack). Latency comes from
the deterministic simulator's virtual clock, so it is bit-stable across
hosts — the slack absorbs deliberate re-tunings of the builtin scenario,
not noise. Unit "goodput" (requests that finished clean and under the
scenario timeout, per virtual second) is the matching multiplicative
floor: fresh must be at least baseline * (1 - goodput_slack).

A baseline whose fresh BENCH_*.json is MISSING is a hard failure: a bench
that crashed (or was dropped from the build) before writing its JSON must
not pass the gate by silence. Use --only=name1,name2 to restrict the
comparison to specific benches (nightly gates only the benches it runs);
baselines outside the list are ignored entirely, and a missing fresh file
is still a failure for benches inside it.

Exit status: 0 when every common metric passes, 1 otherwise.
"""

import argparse
import json
import pathlib
import sys


def load(path: pathlib.Path) -> dict:
    with open(path) as f:
        return json.load(f)


def ops_metrics(doc: dict) -> dict:
    return {
        m["metric"]: m["value"]
        for m in doc.get("metrics", [])
        if m.get("unit") == "ops/s" and m.get("value", 0) > 0
    }


def unit_metrics(doc: dict, unit: str) -> dict:
    return {
        m["metric"]: m["value"]
        for m in doc.get("metrics", [])
        if m.get("unit") == unit
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("--factor", type=float, default=5.0)
    parser.add_argument("--retained-slack", type=float, default=0.15)
    parser.add_argument("--efficiency-slack", type=float, default=0.25)
    parser.add_argument("--ratio-slack", type=float, default=0.10)
    parser.add_argument("--host-slack", type=float, default=0.75)
    parser.add_argument("--overhead-slack", type=float, default=0.15)
    parser.add_argument("--recovery-slack", type=float, default=0.5)
    parser.add_argument("--latency-slack", type=float, default=0.10)
    parser.add_argument("--goodput-slack", type=float, default=0.10)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated bench names; gate just these")
    args = parser.parse_args(argv)
    only = {name.strip() for name in args.only.split(",") if name.strip()}

    failures = []
    compared = 0
    for base_path in sorted(args.baseline.glob("BENCH_*.json")):
        bench_name = base_path.name[len("BENCH_"):-len(".json")]
        if only and bench_name not in only:
            continue
        fresh_path = args.fresh / base_path.name
        if not fresh_path.exists():
            # A bench that crashed before writing its JSON must not pass the
            # gate by silence.
            print(f"FAIL {base_path.name}: baseline exists but no fresh result "
                  f"was produced (bench crashed or was not run?)")
            failures.append(f"{base_path.name}:missing-fresh")
            continue
        base, fresh = load(base_path), load(fresh_path)

        base_ops, fresh_ops = ops_metrics(base), ops_metrics(fresh)
        for name in sorted(base_ops.keys() & fresh_ops.keys()):
            compared += 1
            floor = base_ops[name] / args.factor
            status = "ok" if fresh_ops[name] >= floor else "FAIL"
            print(f"{status:4} {base_path.name}:{name}: "
                  f"{fresh_ops[name]:.3g} ops/s vs baseline {base_ops[name]:.3g} "
                  f"(floor {floor:.3g})")
            if fresh_ops[name] < floor:
                failures.append(f"{base_path.name}:{name}")

        for unit, slack in (("retained", args.retained_slack),
                            ("efficiency", args.efficiency_slack),
                            ("ratio", args.ratio_slack)):
            base_add = unit_metrics(base, unit)
            fresh_add = unit_metrics(fresh, unit)
            for name in sorted(base_add.keys() & fresh_add.keys()):
                compared += 1
                floor = base_add[name] - slack
                status = "ok" if fresh_add[name] >= floor else "FAIL"
                print(f"{status:4} {base_path.name}:{name}: "
                      f"{fresh_add[name]:.3f} {unit} vs baseline "
                      f"{base_add[name]:.3f} (floor {floor:.3f})")
                if fresh_add[name] < floor:
                    failures.append(f"{base_path.name}:{name}")

        for unit, slack in (("overhead", args.overhead_slack),
                            ("recovery_s", args.recovery_slack)):
            base_ceil = unit_metrics(base, unit)
            fresh_ceil = unit_metrics(fresh, unit)
            for name in sorted(base_ceil.keys() & fresh_ceil.keys()):
                compared += 1
                ceiling = base_ceil[name] + slack
                status = "ok" if fresh_ceil[name] <= ceiling else "FAIL"
                print(f"{status:4} {base_path.name}:{name}: "
                      f"{fresh_ceil[name]:.3f} {unit} vs baseline "
                      f"{base_ceil[name]:.3f} (ceiling {ceiling:.3f})")
                if fresh_ceil[name] > ceiling:
                    failures.append(f"{base_path.name}:{name}")

        base_abs = unit_metrics(base, "host_s")
        fresh_abs = unit_metrics(fresh, "host_s")
        for name in sorted(base_abs.keys() & fresh_abs.keys()):
            compared += 1
            ceiling = base_abs[name] * (1.0 + args.host_slack)
            status = "ok" if fresh_abs[name] <= ceiling else "FAIL"
            print(f"{status:4} {base_path.name}:{name}: "
                  f"{fresh_abs[name]:.3g}s vs baseline {base_abs[name]:.3g}s "
                  f"(ceiling {ceiling:.3g}s)")
            if fresh_abs[name] > ceiling:
                failures.append(f"{base_path.name}:{name}")

        base_lat = unit_metrics(base, "latency_ns")
        fresh_lat = unit_metrics(fresh, "latency_ns")
        for name in sorted(base_lat.keys() & fresh_lat.keys()):
            compared += 1
            ceiling = base_lat[name] * (1.0 + args.latency_slack)
            status = "ok" if fresh_lat[name] <= ceiling else "FAIL"
            print(f"{status:4} {base_path.name}:{name}: "
                  f"{fresh_lat[name]:.4g} ns vs baseline {base_lat[name]:.4g} "
                  f"(ceiling {ceiling:.4g})")
            if fresh_lat[name] > ceiling:
                failures.append(f"{base_path.name}:{name}")

        base_good = unit_metrics(base, "goodput")
        fresh_good = unit_metrics(fresh, "goodput")
        for name in sorted(base_good.keys() & fresh_good.keys()):
            compared += 1
            floor = base_good[name] * (1.0 - args.goodput_slack)
            status = "ok" if fresh_good[name] >= floor else "FAIL"
            print(f"{status:4} {base_path.name}:{name}: "
                  f"{fresh_good[name]:.4g} req/s vs baseline {base_good[name]:.4g} "
                  f"(floor {floor:.4g})")
            if fresh_good[name] < floor:
                failures.append(f"{base_path.name}:{name}")

        base_host = base.get("host_time_s", 0.0)
        fresh_host = fresh.get("host_time_s", 0.0)
        if base_host >= 0.2:
            compared += 1
            ceiling = base_host * args.factor
            status = "ok" if fresh_host <= ceiling else "FAIL"
            print(f"{status:4} {base_path.name}:host_time_s: "
                  f"{fresh_host:.3g}s vs baseline {base_host:.3g}s "
                  f"(ceiling {ceiling:.3g}s)")
            if fresh_host > ceiling:
                failures.append(f"{base_path.name}:host_time_s")

    if failures:
        print(f"\nperf smoke FAILED ({len(failures)}): " + ", ".join(failures),
              file=sys.stderr)
        return 1
    if compared == 0:
        print("error: no common metrics to compare", file=sys.stderr)
        return 1
    print(f"\nperf smoke passed: {compared} metrics within bounds "
          f"(factor {args.factor}x, retained slack {args.retained_slack}, "
          f"efficiency slack {args.efficiency_slack}, "
          f"ratio slack {args.ratio_slack}, host slack {args.host_slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
