#!/bin/sh
# ctest_label_guard.sh LABEL [BUILD_DIR] — fail when a ctest label selects
# zero tests.
#
# `ctest -L <label>` exits 0 having run nothing when the label matches no
# tests, which turns a "run the <label> suite" CI step into a silent no-op
# the moment a label is renamed or a gb_test() entry loses its LABELS
# clause. Every labeled CI step calls this guard first: it counts the
# selection with `ctest -N` and fails on an empty net.
#
# BUILD_DIR defaults to the current directory (useful with
# `working-directory:` in a workflow step).
set -eu

label=${1:?usage: ctest_label_guard.sh LABEL [BUILD_DIR]}
build_dir=${2:-.}

count=$(ctest --test-dir "$build_dir" -L "$label" -N | awk '/Total Tests:/ {print $3}')
count=${count:-0}
echo "${label}-labeled tests selected in ${build_dir}: ${count}"
if [ "$count" -le 0 ]; then
    echo "error: label '${label}' selects no tests — renamed label or lost LABELS clause?" >&2
    exit 1
fi
