#include "src/disk/disk.h"

#include <gtest/gtest.h>

namespace graysim {
namespace {

TEST(DiskTest, SequentialAccessIsTransferOnly) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  // First access pays a seek + rotation.
  const Nanos first = disk.Access(0, 4096, false);
  // Second access is contiguous: controller + partial rotation miss +
  // transfer (no seek, no full rotational latency).
  const Nanos second = disk.Access(4096, 4096, false);
  EXPECT_LT(second, first);
  const Nanos expected = Micros(disk.geometry().controller_overhead_us) +
                         Millis(disk.geometry().inter_request_rotation_miss_ms) +
                         disk.TransferTime(4096);
  EXPECT_EQ(second, expected);
}

TEST(DiskTest, SeekTimeMonotonicInDistance) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  Nanos prev = 0;
  for (std::uint64_t dist = 4 * 1024 * 1024; dist < disk.geometry().capacity_bytes;
       dist *= 4) {
    const Nanos t = disk.SeekTime(0, dist);
    EXPECT_GE(t, prev) << "distance " << dist;
    prev = t;
  }
}

TEST(DiskTest, SameCylinderSkipsSeek) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  EXPECT_EQ(disk.SeekTime(0, disk.geometry().cylinder_span_bytes / 2), 0u);
  EXPECT_GT(disk.SeekTime(0, disk.geometry().cylinder_span_bytes * 10), 0u);
}

TEST(DiskTest, SequentialBandwidthNearSpec) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  const std::uint64_t mb = 1024 * 1024;
  const std::uint64_t total = 64 * mb;
  Nanos t = 0;
  for (std::uint64_t off = 0; off < total; off += mb) {
    t += disk.Access(off, mb, false);
  }
  const double seconds = ToSeconds(t);
  const double mbs = 64.0 / seconds;
  // Within 15% of the geometry's media rate.
  EXPECT_GT(mbs, disk.geometry().transfer_mb_per_s * 0.85);
  EXPECT_LE(mbs, disk.geometry().transfer_mb_per_s * 1.001);
}

TEST(DiskTest, RandomAccessDominatedBySeekAndRotation) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  // A 4 KB random read should take several milliseconds.
  const Nanos t = disk.Access(disk.geometry().capacity_bytes / 2, 4096, false);
  EXPECT_GT(t, Millis(3.0));
  EXPECT_LT(t, Millis(15.0));
}

TEST(DiskTest, StatsTrackReadsAndWrites) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  (void)disk.Access(0, 8192, false);
  (void)disk.Access(8192, 4096, true);
  EXPECT_EQ(disk.stats().requests, 2u);
  EXPECT_EQ(disk.stats().bytes_read, 8192u);
  EXPECT_EQ(disk.stats().bytes_written, 4096u);
  EXPECT_EQ(disk.stats().sequential_requests, 1u);
}

TEST(DiskTest, WritesAndReadsShareHeadPosition) {
  Disk disk(DiskGeometry::Ibm9Lzx(), 0);
  (void)disk.Access(0, 4096, true);
  const Nanos seq_read = disk.Access(4096, 4096, false);
  EXPECT_EQ(seq_read, Micros(disk.geometry().controller_overhead_us) +
                          Millis(disk.geometry().inter_request_rotation_miss_ms) +
                          disk.TransferTime(4096));
}

}  // namespace
}  // namespace graysim
