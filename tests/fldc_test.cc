#include "src/gray/fldc/fldc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/gray/sim_sys.h"
#include "src/sim/rng.h"
#include "src/workloads/aging.h"
#include "src/workloads/filegen.h"

namespace gray {
namespace {

using graysim::Nanos;
using graysim::Os;
using graysim::Pid;
using graysim::PlatformProfile;

struct Fixture {
  Fixture() : os(PlatformProfile::Linux22()), sys(&os, os.default_pid()) {}
  Os os;
  SimSys sys;
};

// Reads every file fully in the given order with a cold cache; returns the
// elapsed time.
Nanos TimedColdRead(Os& os, Pid pid, const std::vector<std::string>& order) {
  os.FlushFileCache();
  const Nanos t0 = os.Now();
  for (const std::string& path : order) {
    graysim::InodeAttr attr;
    if (os.Stat(pid, path, &attr) < 0) {
      continue;
    }
    const int fd = os.Open(pid, path);
    (void)os.Pread(pid, fd, {}, attr.size, 0);
    (void)os.Close(pid, fd);
  }
  return os.Now() - t0;
}

TEST(FldcTest, OrderByInodeMatchesCreationOrderOnCleanFs) {
  Fixture f;
  const Pid pid = f.os.default_pid();
  const std::vector<std::string> paths =
      graywork::MakeFileSet(f.os, pid, "/d0/dir", 20, 8192);
  // Shuffle deterministically, then recover creation order via i-numbers.
  std::vector<std::string> shuffled = paths;
  graysim::Rng rng(99);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
  }
  Fldc fldc(&f.sys);
  const auto ordered = fldc.OrderByInode(shuffled);
  ASSERT_EQ(ordered.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(ordered[i].path, paths[i]);
  }
}

TEST(FldcTest, MissingFilesRankLast) {
  Fixture f;
  const Pid pid = f.os.default_pid();
  const auto paths = graywork::MakeFileSet(f.os, pid, "/d0/dir", 3, 8192);
  std::vector<std::string> with_missing = {paths[2], "/d0/dir/ghost", paths[0]};
  Fldc fldc(&f.sys);
  const auto ordered = fldc.OrderByInode(with_missing);
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered.back().path, "/d0/dir/ghost");
  EXPECT_FALSE(ordered.back().stat_ok);
}

TEST(FldcTest, OrderByDirectoryGroups) {
  Fixture f;
  Fldc fldc(&f.sys);
  const std::vector<std::string> paths = {"/d0/b/1", "/d0/a/1", "/d0/b/2", "/d0/a/2"};
  const auto ordered = fldc.OrderByDirectory(paths);
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(DirnameOf(ordered[0]), DirnameOf(ordered[1]));
  EXPECT_EQ(DirnameOf(ordered[2]), DirnameOf(ordered[3]));
}

TEST(FldcTest, InodeOrderBeatsRandomOrderColdRead) {
  // Fig 5's core claim on a clean file system.
  Fixture f;
  const Pid pid = f.os.default_pid();
  const auto paths = graywork::MakeFileSet(f.os, pid, "/d0/dir", 100, 8192);
  std::vector<std::string> random_order = paths;
  graysim::Rng rng(7);
  for (std::size_t i = random_order.size(); i > 1; --i) {
    std::swap(random_order[i - 1], random_order[rng.Below(i)]);
  }
  const Nanos random_time = TimedColdRead(f.os, pid, random_order);

  Fldc fldc(&f.sys);
  std::vector<std::string> inode_order;
  for (const auto& e : fldc.OrderByInode(paths)) {
    inode_order.push_back(e.path);
  }
  const Nanos inode_time = TimedColdRead(f.os, pid, inode_order);
  EXPECT_LT(inode_time * 3, random_time)
      << "i-number order should be several times faster than random";
}

TEST(FldcTest, RefreshPreservesContentsAndTimes) {
  Fixture f;
  const Pid pid = f.os.default_pid();
  const auto paths = graywork::MakeFileSet(f.os, pid, "/d0/dir", 10, 8192);
  // Record sizes and times.
  std::vector<graysim::InodeAttr> before(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_EQ(f.os.Stat(pid, paths[i], &before[i]), 0);
  }
  Fldc fldc(&f.sys);
  ASSERT_EQ(fldc.RefreshDirectory("/d0/dir"), 0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    graysim::InodeAttr after;
    ASSERT_EQ(f.os.Stat(pid, paths[i], &after), 0) << paths[i];
    EXPECT_EQ(after.size, before[i].size);
    EXPECT_EQ(after.mtime, before[i].mtime) << "mtime must survive (make depends on it)";
  }
}

TEST(FldcTest, RefreshAssignsSmallFilesLowInums) {
  Fixture f;
  const Pid pid = f.os.default_pid();
  ASSERT_EQ(f.os.Mkdir(pid, "/d0/dir"), 0);
  // Create a large file first (low inum), small files after.
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/dir/big", 4 * 1024 * 1024));
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/dir/small1", 4096));
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/dir/small2", 4096));
  Fldc fldc(&f.sys);
  ASSERT_EQ(fldc.RefreshDirectory("/d0/dir"), 0);
  graysim::InodeAttr big;
  graysim::InodeAttr s1;
  graysim::InodeAttr s2;
  ASSERT_EQ(f.os.Stat(pid, "/d0/dir/big", &big), 0);
  ASSERT_EQ(f.os.Stat(pid, "/d0/dir/small1", &s1), 0);
  ASSERT_EQ(f.os.Stat(pid, "/d0/dir/small2", &s2), 0);
  EXPECT_LT(s1.inum, big.inum);
  EXPECT_LT(s2.inum, big.inum);
}

TEST(FldcTest, AgingDegradesInodeOrderAndRefreshRestoresIt) {
  // Fig 6 in miniature: age the directory, watch i-number order degrade,
  // refresh, watch it recover.
  Fixture f;
  const Pid pid = f.os.default_pid();
  (void)graywork::MakeFileSet(f.os, pid, "/d0/dir", 100, 8192);
  Fldc fldc(&f.sys);

  auto inode_order_time = [&] {
    std::vector<graysim::DirEntryInfo> entries;
    EXPECT_EQ(f.os.ReadDir(pid, "/d0/dir", &entries), 0);
    std::vector<std::string> paths;
    for (const auto& e : entries) {
      paths.push_back("/d0/dir/" + e.name);
    }
    std::vector<std::string> order;
    for (const auto& e : fldc.OrderByInode(paths)) {
      order.push_back(e.path);
    }
    return TimedColdRead(f.os, pid, order);
  };

  const Nanos fresh = inode_order_time();
  graywork::DirectoryAger ager(&f.os, pid, "/d0/dir", 8192, /*seed=*/11);
  for (int epoch = 0; epoch < 30; ++epoch) {
    ager.RunEpoch();
  }
  const Nanos aged = inode_order_time();
  EXPECT_GT(aged, fresh * 2) << "30 epochs of aging should badly hurt i-number order";

  ASSERT_EQ(fldc.RefreshDirectory("/d0/dir"), 0);
  const Nanos refreshed = inode_order_time();
  EXPECT_LT(refreshed, aged / 2) << "refresh should restore most of the loss";
  EXPECT_LT(refreshed, fresh * 2) << "refreshed layout should be near-fresh";
}

TEST(FldcTest, RefreshMissingDirFails) {
  Fixture f;
  Fldc fldc(&f.sys);
  EXPECT_LT(fldc.RefreshDirectory("/d0/ghost"), 0);
}

TEST(FldcTest, DirnameOfHandlesEdgeCases) {
  EXPECT_EQ(DirnameOf("/d0/a/b"), "/d0/a");
  EXPECT_EQ(DirnameOf("/file"), "/");
  EXPECT_EQ(DirnameOf("noslash"), "/");
}

TEST(FldcTest, MtimeOrderBeatsInumOrderOnLfsAfterChurn) {
  // The paper's LFS port (§4.2.5): on a log-structured fs, REWRITING files
  // moves their data to the log head, so write-time order predicts layout
  // while i-number order (fixed at creation) does not.
  graysim::Os os(graysim::PlatformProfile::LfsVariant());
  const Pid pid = os.default_pid();
  const auto paths = graywork::MakeFileSet(os, pid, "/d0/dir", 80, 8192);
  // Rewrite the files in a scrambled order: data moves to the log head in
  // rewrite order; i-numbers stay put.
  graysim::Rng rng(21);
  std::vector<std::string> rewrite_order = paths;
  for (std::size_t i = rewrite_order.size(); i > 1; --i) {
    std::swap(rewrite_order[i - 1], rewrite_order[rng.Below(i)]);
  }
  for (const std::string& path : rewrite_order) {
    ASSERT_TRUE(graywork::MakeFile(os, pid, path, 8192));  // creat truncates
  }

  gray::SimSys sys(&os, pid);
  Fldc fldc(&sys);
  std::vector<std::string> by_inum;
  for (const auto& e : fldc.OrderByInode(paths)) {
    by_inum.push_back(e.path);
  }
  std::vector<std::string> by_mtime;
  for (const auto& e : fldc.OrderByMtime(paths)) {
    by_mtime.push_back(e.path);
  }
  const Nanos inum_time = TimedColdRead(os, pid, by_inum);
  const Nanos mtime_time = TimedColdRead(os, pid, by_mtime);
  EXPECT_LT(mtime_time * 2, inum_time)
      << "on LFS, mtime order should be the layout order";
}

TEST(FldcTest, RefreshPropagatesRealErrorWhenDiskFills) {
  // A refresh doubles the directory's footprint while it copies; on a
  // nearly-full file system the copy must fail with the file system's
  // actual error code, not a generic -1.
  graysim::MachineConfig cfg;
  cfg.fs_params.total_blocks = 8192;  // one 32 MB cylinder group
  graysim::Os os(graysim::PlatformProfile::Linux22(), cfg);
  const Pid pid = os.default_pid();
  ASSERT_EQ(os.Mkdir(pid, "/d0/dir"), 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(graywork::MakeFile(os, pid, "/d0/dir/f" + std::to_string(i),
                                   5 * 1024 * 1024));
  }
  gray::SimSys sys(&os, pid);
  Fldc fldc(&sys);
  const int rc = fldc.RefreshDirectory("/d0/dir");
  EXPECT_EQ(rc, -static_cast<int>(graysim::FsErr::kNoSpace));
}

TEST(FldcTest, MtimeOrderMatchesRewriteOrderOnLfs) {
  graysim::Os os(graysim::PlatformProfile::LfsVariant());
  const Pid pid = os.default_pid();
  const auto paths = graywork::MakeFileSet(os, pid, "/d0/dir", 10, 4096);
  // Rewrite in reverse order.
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    os.Sleep(pid, graysim::Millis(1.0));  // distinct mtimes
    ASSERT_TRUE(graywork::MakeFile(os, pid, *it, 4096));
  }
  gray::SimSys sys(&os, pid);
  Fldc fldc(&sys);
  const auto ordered = fldc.OrderByMtime(paths);
  ASSERT_EQ(ordered.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(ordered[i].path, paths[paths.size() - 1 - i]);
  }
}

}  // namespace
}  // namespace gray
