#include "src/vm/vm.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace graysim {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest()
      : mem_(MemSystem::Config{32, MemPolicy::kUnifiedLru, 0}),
        vm_(&mem_),
        handler_([this](const Page& page) {
          if (page.kind == PageKind::kAnon) {
            last_slot_ = vm_.OnEvicted(page);
            ++swap_outs_;
          }
          return Nanos{0};
        }) {
    mem_.set_evict_handler(&handler_);
  }

  MemSystem mem_;
  Vm vm_;
  FnEviction handler_;
  std::uint64_t swap_outs_ = 0;
  std::uint64_t last_slot_ = 0;
};

TEST_F(VmTest, AllocReservesNoFrames) {
  const VmAreaId area = vm_.Alloc(1, 16);
  EXPECT_EQ(vm_.ResidentPages(1), 0u);
  EXPECT_EQ(vm_.AreaPages(1, area), 16u);
  EXPECT_EQ(mem_.used_pages(), 0u);
}

TEST_F(VmTest, ReadTouchHitsZeroPage) {
  const VmAreaId area = vm_.Alloc(1, 4);
  const VmTouchResult r = vm_.Touch(1, area, 2, /*write=*/false);
  EXPECT_EQ(r.outcome, TouchOutcome::kZeroRead);
  EXPECT_EQ(vm_.ResidentPages(1), 0u);
}

TEST_F(VmTest, WriteTouchZeroFillsThenStaysResident) {
  const VmAreaId area = vm_.Alloc(1, 4);
  EXPECT_EQ(vm_.Touch(1, area, 2, true).outcome, TouchOutcome::kZeroFill);
  EXPECT_EQ(vm_.Touch(1, area, 2, true).outcome, TouchOutcome::kResident);
  EXPECT_EQ(vm_.Touch(1, area, 2, false).outcome, TouchOutcome::kResident);
  EXPECT_TRUE(vm_.PageResident(1, area, 2));
  EXPECT_EQ(vm_.ResidentPages(1), 1u);
}

TEST_F(VmTest, OvercommitSwapsOutLruAndSwapsBackIn) {
  const VmAreaId area = vm_.Alloc(1, 40);  // pool holds 32
  for (std::uint64_t p = 0; p < 40; ++p) {
    (void)vm_.Touch(1, area, p, true);
  }
  EXPECT_EQ(swap_outs_, 8u);
  EXPECT_FALSE(vm_.PageResident(1, area, 0));
  const VmTouchResult r = vm_.Touch(1, area, 0, true);
  EXPECT_EQ(r.outcome, TouchOutcome::kSwapIn);
  EXPECT_TRUE(vm_.PageResident(1, area, 0));
}

TEST_F(VmTest, SwapSlotsAreRecycled) {
  const VmAreaId area = vm_.Alloc(1, 33);
  for (std::uint64_t p = 0; p < 33; ++p) {
    (void)vm_.Touch(1, area, p, true);
  }
  ASSERT_EQ(swap_outs_, 1u);
  const std::uint64_t first_slot = last_slot_;
  // Swapping page 0 back in evicts another page, whose slot is assigned
  // BEFORE page 0's slot is released (it is still occupied mid-swap-in), so
  // a fresh slot is used here...
  (void)vm_.Touch(1, area, 0, true);
  EXPECT_EQ(swap_outs_, 2u);
  EXPECT_NE(last_slot_, first_slot);
  // ...but the next swap-out reuses page 0's now-free slot.
  (void)vm_.Touch(1, area, 1, true);
  EXPECT_EQ(swap_outs_, 3u);
  EXPECT_EQ(last_slot_, first_slot) << "freed slot should be recycled";
}

TEST_F(VmTest, FreeReleasesFramesAndSlots) {
  const VmAreaId area = vm_.Alloc(1, 40);
  for (std::uint64_t p = 0; p < 40; ++p) {
    (void)vm_.Touch(1, area, p, true);
  }
  vm_.Free(1, area);
  EXPECT_EQ(vm_.ResidentPages(1), 0u);
  EXPECT_EQ(mem_.used_pages(), 0u);
}

TEST_F(VmTest, AreasAreIndependent) {
  const VmAreaId a = vm_.Alloc(1, 4);
  const VmAreaId b = vm_.Alloc(1, 4);
  (void)vm_.Touch(1, a, 0, true);
  EXPECT_TRUE(vm_.PageResident(1, a, 0));
  EXPECT_FALSE(vm_.PageResident(1, b, 0));
  vm_.Free(1, a);
  EXPECT_FALSE(vm_.PageResident(1, a, 0));
}

TEST_F(VmTest, ProcessesAreIsolated) {
  const VmAreaId a = vm_.Alloc(1, 4);
  const VmAreaId b = vm_.Alloc(2, 4);
  (void)vm_.Touch(1, a, 1, true);
  (void)vm_.Touch(2, b, 1, true);
  EXPECT_EQ(vm_.ResidentPages(1), 1u);
  EXPECT_EQ(vm_.ResidentPages(2), 1u);
  vm_.ReleaseProcess(1);
  EXPECT_EQ(vm_.ResidentPages(1), 0u);
  EXPECT_EQ(vm_.ResidentPages(2), 1u);
  EXPECT_EQ(mem_.used_pages(), 1u);
}

TEST_F(VmTest, ReleaseProcessFreesSwappedPagesToo) {
  const VmAreaId area = vm_.Alloc(1, 40);
  for (std::uint64_t p = 0; p < 40; ++p) {
    (void)vm_.Touch(1, area, p, true);
  }
  ASSERT_GT(swap_outs_, 0u);
  vm_.ReleaseProcess(1);
  EXPECT_EQ(mem_.used_pages(), 0u);
  // The freed swap slots get reused by the next process.
  const VmAreaId fresh = vm_.Alloc(2, 40);
  for (std::uint64_t p = 0; p < 40; ++p) {
    (void)vm_.Touch(2, fresh, p, true);
  }
  EXPECT_LE(last_slot_, 16u) << "slots recycled rather than growing unboundedly";
}

}  // namespace
}  // namespace graysim
