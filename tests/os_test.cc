#include "src/os/os.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace graysim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;

// Creates a file of `bytes` by writing it sequentially.
void MakeFile(Os& os, Pid pid, const std::string& path, std::uint64_t bytes) {
  const int fd = os.Creat(pid, path);
  ASSERT_GE(fd, 0) << path;
  const std::uint64_t chunk = 1 * kMb;
  for (std::uint64_t off = 0; off < bytes; off += chunk) {
    const std::uint64_t n = std::min(chunk, bytes - off);
    ASSERT_EQ(os.Pwrite(pid, fd, n, off), static_cast<std::int64_t>(n));
  }
  ASSERT_EQ(os.Fsync(pid, fd), 0);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, OpenMissingFileFails) {
  Os os(PlatformProfile::Linux22());
  EXPECT_LT(os.Open(os.default_pid(), "/d0/nothing"), 0);
}

TEST(OsTest, BadPathsRejected) {
  Os os(PlatformProfile::Linux22());
  EXPECT_LT(os.Open(os.default_pid(), "no-disk-prefix"), 0);
  EXPECT_LT(os.Open(os.default_pid(), "/d9/file"), 0);  // only 5 disks
}

TEST(OsTest, WriteThenReadBack) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 3 * kMb);
  InodeAttr attr;
  ASSERT_EQ(os.Stat(pid, "/d0/file", &attr), 0);
  EXPECT_EQ(attr.size, 3 * kMb);
  const int fd = os.Open(pid, "/d0/file");
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> buf(64);
  EXPECT_EQ(os.Pread(pid, fd, buf, 64, 0), 64);
  EXPECT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, ReadContentIsDeterministic) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", kMb);
  const int fd = os.Open(pid, "/d0/file");
  std::vector<std::uint8_t> a(128);
  std::vector<std::uint8_t> b(128);
  ASSERT_EQ(os.Pread(pid, fd, a, 128, 4096), 128);
  ASSERT_EQ(os.Pread(pid, fd, b, 128, 4096), 128);
  EXPECT_EQ(a, b);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, ColdReadSlowerThanWarmRead) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 16 * kMb);
  os.FlushFileCache();
  const int fd = os.Open(pid, "/d0/file");
  ASSERT_GE(fd, 0);

  const Nanos t0 = os.Now();
  ASSERT_EQ(os.Pread(pid, fd, {}, 16 * kMb, 0), static_cast<std::int64_t>(16 * kMb));
  const Nanos cold = os.Now() - t0;

  const Nanos t1 = os.Now();
  ASSERT_EQ(os.Pread(pid, fd, {}, 16 * kMb, 0), static_cast<std::int64_t>(16 * kMb));
  const Nanos warm = os.Now() - t1;

  EXPECT_GT(cold, warm * 5);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, SingleByteProbeTimesSeparateCacheStates) {
  // The heart of FCCD: a 1-byte read is microseconds when cached,
  // milliseconds when not.
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 64 * kMb);
  os.FlushFileCache();
  const int fd = os.Open(pid, "/d0/file");

  const Nanos t0 = os.Now();
  ASSERT_EQ(os.Pread(pid, fd, {}, 1, 32 * kMb), 1);
  const Nanos miss = os.Now() - t0;

  const Nanos t1 = os.Now();
  ASSERT_EQ(os.Pread(pid, fd, {}, 1, 32 * kMb), 1);
  const Nanos hit = os.Now() - t1;

  EXPECT_GT(miss, Millis(1.0));
  EXPECT_LT(hit, Micros(10.0));
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, ProbeBringsPageIn) {
  // The Heisenberg effect: probing a non-resident page faults it in.
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 8 * kMb);
  os.FlushFileCache();
  EXPECT_FALSE(os.PageResidentPath("/d0/file", 5));
  const int fd = os.Open(pid, "/d0/file");
  ASSERT_EQ(os.Pread(pid, fd, {}, 1, 5 * 4096), 1);
  EXPECT_TRUE(os.PageResidentPath("/d0/file", 5));
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, SequentialScanUsesReadahead) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 8 * kMb);
  os.FlushFileCache();
  const int fd = os.Open(pid, "/d0/file");
  for (std::uint64_t off = 0; off < 8 * kMb; off += 64 * 1024) {
    ASSERT_EQ(os.Pread(pid, fd, {}, 64 * 1024, off), 64 * 1024);
  }
  EXPECT_GT(os.stats().readahead_pages, 0u);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, LruEvictionWhenFileExceedsMemory) {
  // A scan of a file larger than memory leaves the tail resident, not the
  // head (LRU).
  MachineConfig cfg;
  cfg.phys_mem_bytes = 64 * kMb;
  cfg.kernel_reserved_bytes = 16 * kMb;  // 48 MB usable
  Os os(PlatformProfile::Linux22(), cfg);
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 96 * kMb);
  os.FlushFileCache();
  const int fd = os.Open(pid, "/d0/file");
  ASSERT_EQ(os.Pread(pid, fd, {}, 96 * kMb, 0), static_cast<std::int64_t>(96 * kMb));
  EXPECT_FALSE(os.PageResidentPath("/d0/file", 0));
  EXPECT_TRUE(os.PageResidentPath("/d0/file", 96 * kMb / 4096 - 1));
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, VmReadDoesNotAllocateButWriteDoes) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  const VmAreaId area = os.VmAlloc(pid, 16 * 4096);
  os.VmTouch(pid, area, 3, /*write=*/false);
  EXPECT_EQ(os.VmResidentPages(pid), 0u);
  os.VmTouch(pid, area, 3, /*write=*/true);
  EXPECT_EQ(os.VmResidentPages(pid), 1u);
  os.VmFree(pid, area);
  EXPECT_EQ(os.VmResidentPages(pid), 0u);
}

TEST(OsTest, OvercommitSwapsAndSwapInIsSlow) {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 32 * kMb;
  cfg.kernel_reserved_bytes = 8 * kMb;  // 24 MB usable = 6144 pages
  Os os(PlatformProfile::Linux22(), cfg);
  const Pid pid = os.default_pid();
  const std::uint64_t pages = 8000;  // exceeds memory
  const VmAreaId area = os.VmAlloc(pid, pages * 4096);
  for (std::uint64_t i = 0; i < pages; ++i) {
    os.VmTouch(pid, area, i, /*write=*/true);
  }
  EXPECT_GT(os.stats().swap_outs, 0u);
  // Page 0 was swapped out; touching it swaps in (slow).
  const Nanos t0 = os.Now();
  os.VmTouch(pid, area, 0, /*write=*/true);
  EXPECT_GT(os.Now() - t0, Millis(1.0));
  EXPECT_GT(os.stats().swap_ins, 0u);
}

TEST(OsTest, SchedulerInterleavesProcesses) {
  Os os(PlatformProfile::Linux22());
  std::vector<Nanos> finish(2, 0);
  os.RunProcesses({
      [&](Pid pid) {
        os.Compute(pid, Millis(100.0));
        finish[0] = os.Now();
      },
      [&](Pid pid) {
        os.Compute(pid, Millis(100.0));
        finish[1] = os.Now();
      },
  });
  // Both ran on one virtual clock; total is the sum of the compute time and
  // both finished near the end (interleaved, not serialized).
  EXPECT_GE(os.Now(), Millis(200.0));
  const Nanos gap = finish[1] > finish[0] ? finish[1] - finish[0] : finish[0] - finish[1];
  EXPECT_LE(gap, Millis(20.0));
}

TEST(OsTest, SchedulerIsDeterministic) {
  auto run = [] {
    Os os(PlatformProfile::Linux22());
    os.RunProcesses({
        [&](Pid pid) {
          MakeFile(os, pid, "/d0/a", 4 * kMb);
          os.Compute(pid, Millis(37.0));
        },
        [&](Pid pid) {
          MakeFile(os, pid, "/d1/b", 2 * kMb);
          os.Sleep(pid, Millis(5.0));
          os.Compute(pid, Millis(11.0));
        },
    });
    return os.Now();
  };
  const Nanos a = run();
  const Nanos b = run();
  EXPECT_EQ(a, b);
}

TEST(OsTest, SleepAdvancesVirtualTime) {
  Os os(PlatformProfile::Linux22());
  os.RunProcesses({[&](Pid pid) {
    const Nanos t0 = os.Now();
    os.Sleep(pid, Seconds(2.0));
    EXPECT_GE(os.Now() - t0, Seconds(2.0));
  }});
}

TEST(OsTest, UnlinkDropsCachedPages) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 4 * kMb);
  const std::uint64_t before = os.FileCachePages();
  EXPECT_GT(before, 0u);
  ASSERT_EQ(os.Unlink(pid, "/d0/file"), 0);
  EXPECT_LT(os.FileCachePages(), before);
}

TEST(OsTest, StatReportsInumAndTimes) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/a", 8192);
  MakeFile(os, pid, "/d0/b", 8192);
  InodeAttr a;
  InodeAttr b;
  ASSERT_EQ(os.Stat(pid, "/d0/a", &a), 0);
  ASSERT_EQ(os.Stat(pid, "/d0/b", &b), 0);
  EXPECT_LT(a.inum, b.inum);  // creation order
}

TEST(OsTest, ReadDirListsFiles) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  ASSERT_EQ(os.Mkdir(pid, "/d0/dir"), 0);
  MakeFile(os, pid, "/d0/dir/x", 4096);
  MakeFile(os, pid, "/d0/dir/y", 4096);
  std::vector<DirEntryInfo> entries;
  ASSERT_EQ(os.ReadDir(pid, "/d0/dir", &entries), 0);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "x");
  EXPECT_EQ(entries[1].name, "y");
}

TEST(OsTest, NetBsdFileCacheCappedAt64Mb) {
  Os os(PlatformProfile::NetBsd15());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 128 * kMb);
  os.FlushFileCache();
  const int fd = os.Open(pid, "/d0/file");
  ASSERT_EQ(os.Pread(pid, fd, {}, 128 * kMb, 0), static_cast<std::int64_t>(128 * kMb));
  EXPECT_LE(os.FileCachePages() * 4096, 64 * kMb);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, SolarisCacheIsSticky) {
  Os os(PlatformProfile::Solaris7());
  const Pid pid = os.default_pid();
  // First file fills the cache and stays; a second scan cannot dislodge it.
  MakeFile(os, pid, "/d0/a", 900 * kMb);
  os.FlushFileCache();
  int fd = os.Open(pid, "/d0/a");
  ASSERT_EQ(os.Pread(pid, fd, {}, 900 * kMb, 0), static_cast<std::int64_t>(900 * kMb));
  ASSERT_EQ(os.Close(pid, fd), 0);
  const double frac_a = os.ResidentFraction("/d0/a");
  EXPECT_GT(frac_a, 0.85);

  MakeFile(os, pid, "/d1/b", 512 * kMb);
  fd = os.Open(pid, "/d1/b");
  // b was just written, so flush to make this a cold read.
  // (Writes of b may have bypassed the full cache already.)
  ASSERT_EQ(os.Pread(pid, fd, {}, 512 * kMb, 0), static_cast<std::int64_t>(512 * kMb));
  ASSERT_EQ(os.Close(pid, fd), 0);
  EXPECT_GT(os.ResidentFraction("/d0/a"), 0.85) << "scan of b dislodged a";
}

TEST(OsTest, WritebackCoalescesRuns) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 32 * kMb);
  const auto& stats = os.disk_stats(0);
  // Writeback of a sequential file should need far fewer requests than
  // pages written.
  EXPECT_LT(stats.requests, 32 * kMb / 4096 / 4);
}

TEST(OsTest, SequentialReadAdvancesOffset) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 3 * 4096);
  const int fd = os.Open(pid, "/d0/file");
  std::vector<std::uint8_t> a(16);
  std::vector<std::uint8_t> b(16);
  ASSERT_EQ(os.Read(pid, fd, a, 16), 16);
  ASSERT_EQ(os.Read(pid, fd, b, 16), 16);
  // Sequential reads return different content (different offsets).
  EXPECT_NE(a, b);
  std::vector<std::uint8_t> b_again(16);
  ASSERT_EQ(os.Pread(pid, fd, b_again, 16, 16), 16);
  EXPECT_EQ(b, b_again);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, ReadStopsAtEof) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/small", 100);
  const int fd = os.Open(pid, "/d0/small");
  EXPECT_EQ(os.Read(pid, fd, {}, 64), 64);
  EXPECT_EQ(os.Read(pid, fd, {}, 64), 36);
  EXPECT_EQ(os.Read(pid, fd, {}, 64), 0);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, WriteAppendsSequentially) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  const int fd = os.Creat(pid, "/d0/log");
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(os.Write(pid, fd, 1000), 1000);
  }
  InodeAttr attr;
  ASSERT_EQ(os.Stat(pid, "/d0/log", &attr), 0);
  EXPECT_EQ(attr.size, 5000u);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, LseekRepositionsAndSeeksEnd) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/file", 9000);
  const int fd = os.Open(pid, "/d0/file");
  ASSERT_EQ(os.Lseek(pid, fd, 8000), 8000);
  EXPECT_EQ(os.Read(pid, fd, {}, 4096), 1000);  // clamped at EOF
  ASSERT_EQ(os.Lseek(pid, fd, Os::kSeekEnd), 9000);
  EXPECT_EQ(os.Read(pid, fd, {}, 10), 0);
  ASSERT_EQ(os.Lseek(pid, fd, 0), 0);
  EXPECT_EQ(os.Read(pid, fd, {}, 10), 10);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

TEST(OsTest, LfsProfileAppendsAllWritesAtLogHead) {
  Os os(PlatformProfile::LfsVariant());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/a", 8192);
  MakeFile(os, pid, "/d0/b", 8192);
  const auto& fs = os.fs(0);
  graysim::InodeAttr a;
  graysim::InodeAttr b;
  ASSERT_EQ(os.Stat(pid, "/d0/a", &a), 0);
  ASSERT_EQ(os.Stat(pid, "/d0/b", &b), 0);
  // b was written right after a: its data sits immediately after a's.
  EXPECT_EQ(fs.FirstBlockOf(static_cast<Inum>(b.inum)),
            fs.FirstBlockOf(static_cast<Inum>(a.inum)) + 2);
}

TEST(OsTest, FilesOnDifferentDisksDoNotCollideInCache) {
  // Regression: files on different disks share local i-numbers; the page
  // cache must key on (disk, inum, page) without truncation.
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/a", 8 * kMb);  // both get the first free inum
  MakeFile(os, pid, "/d1/a", 8 * kMb);  // of their respective filesystems
  InodeAttr a0;
  InodeAttr a1;
  ASSERT_EQ(os.Stat(pid, "/d0/a", &a0), 0);
  ASSERT_EQ(os.Stat(pid, "/d1/a", &a1), 0);
  ASSERT_EQ(a0.inum, a1.inum) << "precondition: same local inum";
  os.FlushFileCache();
  // Warm only the d0 file.
  const int fd = os.Open(pid, "/d0/a");
  ASSERT_EQ(os.Pread(pid, fd, {}, 8 * kMb, 0), static_cast<std::int64_t>(8 * kMb));
  ASSERT_EQ(os.Close(pid, fd), 0);
  EXPECT_TRUE(os.PageResidentPath("/d0/a", 0));
  EXPECT_FALSE(os.PageResidentPath("/d1/a", 0)) << "d1 twin must remain cold";
  // And timing agrees: a probe of the d1 twin goes to disk.
  const int fd1 = os.Open(pid, "/d1/a");
  const Nanos t0 = os.Now();
  ASSERT_EQ(os.Pread(pid, fd1, {}, 1, 0), 1);
  EXPECT_GT(os.Now() - t0, Millis(1.0));
  ASSERT_EQ(os.Close(pid, fd1), 0);
}

}  // namespace
}  // namespace graysim
