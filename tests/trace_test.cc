// The observability layer's contract, pinned:
//  * the ring drops OLDEST-first on overflow and counts every drop;
//  * B/E spans emitted by the kernel nest well-formed per track;
//  * the Chrome trace_event export is minimally schema-valid and names one
//    "thread" row per registered track (>= the six well-known tracks);
//  * tracing is PASSIVE — a traced run is bit-identical in virtual time and
//    OsStats to an untraced one, on every platform profile.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/machine.h"
#include "src/os/os.h"

namespace graysim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;

// ---- TraceSink unit behavior ----

TEST(TraceSink, DisabledEmittersRecordNothing) {
  obs::TraceSink sink;
  sink.Instant(obs::kTrackChaos, "noop", 10);
  sink.Begin(obs::kTrackKernel, "noop", 10);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RingWraparoundDropsOldestFirst) {
  if (!obs::TraceSink::compiled_in()) {
    GTEST_SKIP() << "built with GRAYSIM_TRACE=OFF";
  }
  obs::TraceSink sink;
  sink.Enable(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.Instant(obs::kTrackKernel, "e", /*vt=*/i);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<obs::TraceEvent> events;
  sink.Snapshot(&events);
  ASSERT_EQ(events.size(), 4u);
  // The oldest six (vt 0..5) were overwritten; 6..9 remain, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].virtual_ns, 6 + i);
  }
}

TEST(TraceSink, ReenableClearsEventsButKeepsTracks) {
  if (!obs::TraceSink::compiled_in()) {
    GTEST_SKIP() << "built with GRAYSIM_TRACE=OFF";
  }
  obs::TraceSink sink;
  const std::uint32_t t = sink.RegisterTrack("custom");
  EXPECT_EQ(t, obs::kNumWellKnownTracks);
  EXPECT_EQ(sink.RegisterTrack("custom"), t);  // idempotent by name
  sink.Enable(8);
  sink.Instant(t, "x", 1);
  EXPECT_EQ(sink.size(), 1u);
  sink.Enable(8);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.track_names().size(), obs::kNumWellKnownTracks + 1);
}

// ---- shared workload (mirrors determinism_test's event-source mix) ----

void MakeFile(Os& os, Pid pid, const std::string& path, std::uint64_t bytes) {
  const int fd = os.Creat(pid, path);
  ASSERT_GE(fd, 0) << path;
  for (std::uint64_t off = 0; off < bytes; off += kMb) {
    const std::uint64_t n = std::min(kMb, bytes - off);
    ASSERT_EQ(os.Pwrite(pid, fd, n, off), static_cast<std::int64_t>(n));
  }
  ASSERT_EQ(os.Fsync(pid, fd), 0);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

struct Snapshot {
  Nanos virtual_time = 0;
  OsStats stats;
  ChaosStats chaos;
  std::vector<std::uint64_t> queue_totals;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

// Runs a mixed multi-process workload (reads + readahead, dirty writes,
// memory churn, sleeps) with or without tracing; `sink_out` receives the
// Os's sink contents when traced.
Snapshot RunWorkload(const PlatformProfile& profile, bool traced,
                     std::vector<obs::TraceEvent>* events_out = nullptr,
                     std::vector<std::string>* tracks_out = nullptr) {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 160 * kMb;
  cfg.kernel_reserved_bytes = 32 * kMb;
  // Config-seeded Machine: bit-identical to the bare Os this test used to
  // assemble by hand (pinned by FleetSeeding.ConfigSeededMachineMatchesBareOs).
  Machine machine(profile, cfg);
  Os& os = machine.os();
  if (traced) {
    os.StartTrace(1 << 16);
  }
  const Pid setup = os.default_pid();
  for (int d = 0; d < 2; ++d) {
    MakeFile(os, setup, "/d" + std::to_string(d) + "/input", 16 * kMb);
  }
  os.FlushFileCache();

  std::vector<std::function<void(Pid)>> bodies;
  for (int i = 0; i < 5; ++i) {
    bodies.push_back([&os, i](Pid pid) {
      const int fd = os.Open(pid, "/d" + std::to_string(i % 2) + "/input");
      ASSERT_GE(fd, 0);
      std::uint64_t off = static_cast<std::uint64_t>(i) * 512 * 1024;
      for (int k = 0; k < 16; ++k) {
        (void)os.Pread(pid, fd, {}, 256 * 1024, off % (16 * kMb));
        off += 256 * 1024;
      }
      (void)os.Close(pid, fd);
      const int out =
          os.Creat(pid, "/d" + std::to_string(i % 2) + "/out" + std::to_string(i));
      ASSERT_GE(out, 0);
      for (int k = 0; k < 6; ++k) {
        (void)os.Pwrite(pid, out, 512 * 1024, static_cast<std::uint64_t>(k) * 512 * 1024);
      }
      (void)os.Close(pid, out);
      const VmAreaId area = os.VmAlloc(pid, (2 + i % 3) * kMb);
      const std::uint64_t pages = (2 + i % 3) * kMb / os.page_size();
      for (std::uint64_t p = 0; p < pages; ++p) {
        os.VmTouch(pid, area, p, /*write=*/true);
      }
      os.Sleep(pid, Millis(1.0 + i));
      os.VmFree(pid, area);
    });
  }
  os.RunProcesses(bodies);

  Snapshot snap;
  snap.virtual_time = os.Now();
  snap.stats = os.stats();
  snap.chaos = os.chaos_stats();
  for (int d = 0; d < os.num_disks(); ++d) {
    snap.queue_totals.push_back(os.disk_queue(d).total_requests());
  }
  if (events_out != nullptr) {
    os.trace().Snapshot(events_out);
  }
  if (tracks_out != nullptr) {
    *tracks_out = os.trace().track_names();
  }
  return snap;
}

// ---- span nesting ----

TEST(Trace, KernelSpansNestWellFormedPerTrack) {
  if (!obs::TraceSink::compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (GRAYSIM_TRACE=OFF)";
  }
  std::vector<obs::TraceEvent> events;
  std::vector<std::string> tracks;
  (void)RunWorkload(PlatformProfile::Linux22(), /*traced=*/true, &events, &tracks);
  ASSERT_FALSE(events.empty());

  // Per track: B/E strictly alternate into a stack, E matches the open B's
  // name, and B/E virtual timestamps never run backwards within the track.
  // (Only B/E carry the ordering contract: a disk "X" span is future-dated
  // to its service window, which can land beyond a later "queue" instant.)
  std::vector<std::vector<const char*>> open(tracks.size());
  std::vector<Nanos> last_vt(tracks.size(), 0);
  for (const obs::TraceEvent& e : events) {
    ASSERT_LT(e.track, tracks.size());
    if (e.phase != obs::Phase::kBegin && e.phase != obs::Phase::kEnd) {
      continue;
    }
    EXPECT_GE(e.virtual_ns, last_vt[e.track])
        << "virtual time ran backwards on track " << tracks[e.track];
    last_vt[e.track] = e.virtual_ns;
    if (e.phase == obs::Phase::kBegin) {
      open[e.track].push_back(e.name);
    } else if (e.phase == obs::Phase::kEnd) {
      ASSERT_FALSE(open[e.track].empty())
          << "E without open B on track " << tracks[e.track];
      EXPECT_STREQ(open[e.track].back(), e.name);
      open[e.track].pop_back();
    }
  }
  // The ring was large enough not to wrap, so every span must have closed.
  for (std::size_t t = 0; t < open.size(); ++t) {
    EXPECT_TRUE(open[t].empty()) << "unclosed span on track " << tracks[t];
  }

  // The workload drives daemons, disks, fibers, and dispatch: expect events
  // on the kernel track, at least one disk track, and at least one fiber.
  auto track_id = [&](const std::string& name) -> std::uint32_t {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i] == name) {
        return static_cast<std::uint32_t>(i);
      }
    }
    return ~0u;
  };
  std::vector<bool> seen(tracks.size(), false);
  for (const obs::TraceEvent& e : events) {
    seen[e.track] = true;
  }
  EXPECT_TRUE(seen[obs::kTrackKernel]);
  EXPECT_TRUE(seen[obs::kTrackFlushDaemon]);
  ASSERT_NE(track_id("disk/0"), ~0u);
  EXPECT_TRUE(seen[track_id("disk/0")]);
  ASSERT_NE(track_id("fiber/0"), ~0u);
  EXPECT_TRUE(seen[track_id("fiber/0")]);
}

// ---- Chrome JSON export ----

TEST(Trace, ChromeJsonExportIsMinimallyValid) {
  if (!obs::TraceSink::compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (GRAYSIM_TRACE=OFF)";
  }
  Machine machine(PlatformProfile::Linux22());
  Os& os = machine.os();
  os.StartTrace(1 << 14);
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/f", 4 * kMb);
  const int fd = os.Open(pid, "/d0/f");
  ASSERT_GE(fd, 0);
  (void)os.Pread(pid, fd, {}, kMb, 0);
  (void)os.Close(pid, fd);
  os.StopTrace();

  const std::string path = ::testing::TempDir() + "/graysim_trace_test.json";
  ASSERT_TRUE(os.trace().WriteChromeJson(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  // Minimal schema: object form with a traceEvents array, metadata naming
  // at least the six well-known tracks plus dynamic disk/fiber rows, and
  // phase/ts fields on the events.
  EXPECT_EQ(text.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\""), std::string::npos);
  const char* expected_tracks[] = {"kernel/events", "daemon/flush", "daemon/page",
                                   "chaos",         "probe",        "icl",
                                   "disk/0"};
  std::size_t named = 0;
  for (const char* t : expected_tracks) {
    if (text.find("\"name\": \"" + std::string(t) + "\"") != std::string::npos) {
      ++named;
    }
  }
  EXPECT_GE(named, 7u) << "expected the well-known tracks plus disk/0 in metadata";
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos) << "no disk request spans";
  EXPECT_NE(text.find("\"ts\": "), std::string::npos);
  // Balanced braces/brackets — cheap proxy for "a JSON parser would accept
  // the nesting" without pulling in a parser dependency.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"' && (i == 0 || text[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

// ---- tracing is passive ----

class TracePassivityTest : public ::testing::TestWithParam<const char*> {
 protected:
  static PlatformProfile ProfileFor(const std::string& name) {
    if (name == "linux2.2") {
      return PlatformProfile::Linux22();
    }
    if (name == "netbsd1.5") {
      return PlatformProfile::NetBsd15();
    }
    return PlatformProfile::Solaris7();
  }
};

TEST_P(TracePassivityTest, TraceOnAndOffAreBitIdentical) {
  const PlatformProfile profile = ProfileFor(GetParam());
  std::vector<obs::TraceEvent> events;
  const Snapshot off = RunWorkload(profile, /*traced=*/false);
  const Snapshot on = RunWorkload(profile, /*traced=*/true, &events);
  EXPECT_EQ(off.virtual_time, on.virtual_time);
  EXPECT_TRUE(off.stats == on.stats);
  EXPECT_TRUE(off.chaos == on.chaos);
  EXPECT_EQ(off.queue_totals, on.queue_totals);
  EXPECT_GT(off.virtual_time, 0u);
  if (obs::TraceSink::compiled_in()) {
    EXPECT_FALSE(events.empty()) << "traced run recorded nothing";
  }
}

INSTANTIATE_TEST_SUITE_P(Platforms, TracePassivityTest,
                         ::testing::Values("linux2.2", "netbsd1.5", "solaris7"));

// ---- metrics registry ----

TEST(Metrics, HistogramBucketsQuantilesAndMerge) {
  obs::Histogram h;
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(1024), 11);
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log buckets bound quantile error by 2x.
  EXPECT_GT(h.Quantile(0.5), 250.0);
  EXPECT_LT(h.Quantile(0.5), 1000.0);
  EXPECT_GE(h.Quantile(1.0), h.Quantile(0.0));

  obs::Histogram other;
  other.Record(5000);
  h.Merge(other);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_EQ(h.max(), 5000u);
}

TEST(Metrics, RegistryCollectsLiveSources) {
  std::uint64_t counter = 7;
  obs::Histogram hist;
  hist.Record(100);
  obs::MetricsRegistry r;
  r.AddCounter("c", &counter);
  r.AddGauge("g", "unit", [] { return 2.5; });
  r.AddHistogram("h", "ns", &hist);

  auto find = [](const std::vector<obs::MetricsRegistry::Sample>& samples,
                 const std::string& name) -> double {
    for (const auto& s : samples) {
      if (s.name == name) {
        return s.value;
      }
    }
    ADD_FAILURE() << "missing sample " << name;
    return -1.0;
  };

  auto samples = r.Collect();
  EXPECT_EQ(find(samples, "c"), 7.0);
  EXPECT_EQ(find(samples, "g"), 2.5);
  EXPECT_EQ(find(samples, "h.count"), 1.0);

  // Pull model: sources read at Collect time, not registration time.
  counter = 9;
  hist.Record(200);
  samples = r.Collect();
  EXPECT_EQ(find(samples, "c"), 9.0);
  EXPECT_EQ(find(samples, "h.count"), 2.0);
}

TEST(Metrics, MachineRegistryExportsKernelAndDiskCounters) {
  // The Machine pre-binds its Os into its registry at construction; the
  // kernel and per-disk series must be live in it after real work.
  Machine machine(PlatformProfile::Linux22());
  Os& os = machine.os();
  const Pid pid = os.default_pid();
  MakeFile(os, pid, "/d0/f", 2 * kMb);
  bool saw_syscalls = false;
  bool saw_disk_hist = false;
  for (const auto& s : machine.metrics().Collect()) {
    if (s.name == "os.syscalls") {
      saw_syscalls = true;
      EXPECT_GT(s.value, 0.0);
    }
    if (s.name == "disk0.service_ns.count") {
      saw_disk_hist = true;
      EXPECT_GT(s.value, 0.0);
    }
  }
  EXPECT_TRUE(saw_syscalls);
  EXPECT_TRUE(saw_disk_hist);
}

}  // namespace
}  // namespace graysim
