// The simulation must be a deterministic function of its seeds: repeated
// runs of the same workload produce bit-identical final virtual time and
// OsStats (including the event-kernel counters: daemon wakeups, queued
// disk requests, per-disk max queue depth) on every platform profile and
// under a 32-process stress mix.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/os/os.h"

namespace graysim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;

void MakeFile(Os& os, Pid pid, const std::string& path, std::uint64_t bytes) {
  const int fd = os.Creat(pid, path);
  ASSERT_GE(fd, 0) << path;
  const std::uint64_t chunk = 1 * kMb;
  for (std::uint64_t off = 0; off < bytes; off += chunk) {
    const std::uint64_t n = std::min(chunk, bytes - off);
    ASSERT_EQ(os.Pwrite(pid, fd, n, off), static_cast<std::int64_t>(n));
  }
  ASSERT_EQ(os.Fsync(pid, fd), 0);
  ASSERT_EQ(os.Close(pid, fd), 0);
}

struct Snapshot {
  Nanos virtual_time = 0;
  OsStats stats;
  std::vector<std::uint64_t> max_queue_depths;
  std::vector<std::uint64_t> queue_totals;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

// A mixed workload exercising every event source: demand reads with
// readahead, dirty writes (flush daemon), memory pressure (page daemon and
// direct reclaim), sleeps, and cross-process interleaving.
Snapshot RunWorkload(const PlatformProfile& profile, int nprocs) {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 160 * kMb;
  cfg.kernel_reserved_bytes = 32 * kMb;  // 128 MB usable: real pressure
  Os os(profile, cfg);
  const Pid setup = os.default_pid();
  for (int d = 0; d < 2; ++d) {
    MakeFile(os, setup, "/d" + std::to_string(d) + "/input", 24 * kMb);
  }
  os.FlushFileCache();

  std::vector<std::function<void(Pid)>> bodies;
  for (int i = 0; i < nprocs; ++i) {
    bodies.push_back([&os, i](Pid pid) {
      const std::string in = "/d" + std::to_string(i % 2) + "/input";
      const int fd = os.Open(pid, in);
      ASSERT_GE(fd, 0);
      // Staggered sequential reads (readahead + queue contention).
      std::uint64_t off = static_cast<std::uint64_t>(i) * 512 * 1024;
      for (int k = 0; k < 24; ++k) {
        (void)os.Pread(pid, fd, {}, 256 * 1024, off % (24 * kMb));
        off += 256 * 1024;
      }
      (void)os.Close(pid, fd);
      // Private dirty data (write-behind flusher).
      const int out =
          os.Creat(pid, "/d" + std::to_string(i % 2) + "/out" + std::to_string(i));
      ASSERT_GE(out, 0);
      for (int k = 0; k < 8; ++k) {
        (void)os.Pwrite(pid, out, 512 * 1024, static_cast<std::uint64_t>(k) * 512 * 1024);
      }
      if (i % 2 == 0) {
        (void)os.Fsync(pid, out);
      }
      (void)os.Close(pid, out);
      // Anonymous memory churn (zero fill; under enough processes, reclaim).
      const VmAreaId area = os.VmAlloc(pid, (2 + i % 3) * kMb);
      const std::uint64_t pages = (2 + i % 3) * kMb / os.page_size();
      for (std::uint64_t p = 0; p < pages; ++p) {
        os.VmTouch(pid, area, p, /*write=*/true);
      }
      os.Sleep(pid, Millis(1.0 + i));
      for (std::uint64_t p = 0; p < pages; p += 7) {
        os.VmTouch(pid, area, p, /*write=*/true);
      }
      os.VmFree(pid, area);
    });
  }
  os.RunProcesses(bodies);

  Snapshot snap;
  snap.virtual_time = os.Now();
  snap.stats = os.stats();
  for (int d = 0; d < os.num_disks(); ++d) {
    snap.max_queue_depths.push_back(os.MaxDiskQueueDepth(d));
    snap.queue_totals.push_back(os.disk_queue(d).total_requests());
  }
  return snap;
}

class DeterminismTest : public ::testing::TestWithParam<const char*> {
 protected:
  static PlatformProfile ProfileFor(const std::string& name) {
    if (name == "linux2.2") {
      return PlatformProfile::Linux22();
    }
    if (name == "netbsd1.5") {
      return PlatformProfile::NetBsd15();
    }
    return PlatformProfile::Solaris7();
  }
};

TEST_P(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const PlatformProfile profile = ProfileFor(GetParam());
  const Snapshot a = RunWorkload(profile, 6);
  const Snapshot b = RunWorkload(profile, 6);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.max_queue_depths, b.max_queue_depths);
  EXPECT_EQ(a.queue_totals, b.queue_totals);
  EXPECT_GT(a.virtual_time, 0u);
}

TEST_P(DeterminismTest, EventKernelCountersAreExercised) {
  const Snapshot s = RunWorkload(ProfileFor(GetParam()), 6);
  EXPECT_GT(s.stats.queued_disk_requests, 0u);
  // Some disk saw overlapping requests (the whole point of real queues).
  std::uint64_t deepest = 0;
  for (const std::uint64_t d : s.max_queue_depths) {
    deepest = std::max(deepest, d);
  }
  EXPECT_GT(deepest, 1u);
}

INSTANTIATE_TEST_SUITE_P(Platforms, DeterminismTest,
                         ::testing::Values("linux2.2", "netbsd1.5", "solaris7"));

TEST(DeterminismStressTest, ThirtyTwoProcessesBitIdentical) {
  const Snapshot a = RunWorkload(PlatformProfile::Linux22(), 32);
  const Snapshot b = RunWorkload(PlatformProfile::Linux22(), 32);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.max_queue_depths, b.max_queue_depths);
  EXPECT_EQ(a.queue_totals, b.queue_totals);
  EXPECT_GT(a.stats.daemon_wakeups, 0u) << "stress mix should wake the daemons";
}

}  // namespace
}  // namespace graysim
