#include "src/cache/page_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace graysim {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest()
      : mem_(MemSystem::Config{64, MemPolicy::kUnifiedLru, 0}),
        cache_(&mem_),
        handler_([this](const Page& page) {
          if (page.kind == PageKind::kFile) {
            evicted_dirty_ += cache_.OnEvicted(page) ? 1 : 0;
            ++evicted_;
          }
          return Nanos{0};
        }) {
    mem_.set_evict_handler(&handler_);
  }

  MemSystem mem_;
  PageCache cache_;
  FnEviction handler_;
  std::uint64_t evicted_ = 0;
  std::uint64_t evicted_dirty_ = 0;
  Nanos cost_ = 0;
};

TEST_F(PageCacheTest, InsertThenAccessHits) {
  EXPECT_FALSE(cache_.Access(1, 0));
  ASSERT_TRUE(cache_.Insert(1, 0, false, &cost_));
  EXPECT_TRUE(cache_.Access(1, 0));
  EXPECT_TRUE(cache_.Resident(1, 0));
  EXPECT_EQ(cache_.resident_pages(), 1u);
}

TEST_F(PageCacheTest, ReinsertIsIdempotent) {
  ASSERT_TRUE(cache_.Insert(1, 0, false, &cost_));
  ASSERT_TRUE(cache_.Insert(1, 0, false, &cost_));
  EXPECT_EQ(cache_.resident_pages(), 1u);
}

TEST_F(PageCacheTest, ReinsertDirtyMarksDirty) {
  ASSERT_TRUE(cache_.Insert(1, 0, false, &cost_));
  EXPECT_EQ(cache_.dirty_pages(), 0u);
  ASSERT_TRUE(cache_.Insert(1, 0, true, &cost_));
  EXPECT_EQ(cache_.dirty_pages(), 1u);
  EXPECT_EQ(cache_.resident_pages(), 1u);
}

TEST_F(PageCacheTest, DistinctFilesDoNotCollide) {
  ASSERT_TRUE(cache_.Insert(1, 7, false, &cost_));
  ASSERT_TRUE(cache_.Insert(2, 7, false, &cost_));
  EXPECT_EQ(cache_.resident_pages(), 2u);
  EXPECT_EQ(cache_.ResidentPagesOfFile(1), 1u);
  EXPECT_EQ(cache_.ResidentPagesOfFile(2), 1u);
}

TEST_F(PageCacheTest, DropFileRemovesOnlyThatFile) {
  for (std::uint64_t p = 0; p < 5; ++p) {
    ASSERT_TRUE(cache_.Insert(1, p, p % 2 == 0, &cost_));
    ASSERT_TRUE(cache_.Insert(2, p, false, &cost_));
  }
  cache_.DropFile(1);
  EXPECT_EQ(cache_.ResidentPagesOfFile(1), 0u);
  EXPECT_EQ(cache_.ResidentPagesOfFile(2), 5u);
  EXPECT_EQ(cache_.dirty_pages(), 0u) << "dirty bookkeeping cleaned with the file";
  EXPECT_EQ(mem_.used_pages(), 5u);
}

TEST_F(PageCacheTest, DropFilePagesFromTruncatesTail) {
  for (std::uint64_t p = 0; p < 10; ++p) {
    ASSERT_TRUE(cache_.Insert(3, p, true, &cost_));
  }
  cache_.DropFilePagesFrom(3, 6);
  EXPECT_EQ(cache_.ResidentPagesOfFile(3), 6u);
  EXPECT_TRUE(cache_.Resident(3, 5));
  EXPECT_FALSE(cache_.Resident(3, 6));
  EXPECT_EQ(cache_.dirty_pages(), 6u);
}

TEST_F(PageCacheTest, TakeOldestDirtyReturnsDirtyingOrder) {
  ASSERT_TRUE(cache_.Insert(1, 5, true, &cost_));
  ASSERT_TRUE(cache_.Insert(2, 9, true, &cost_));
  ASSERT_TRUE(cache_.Insert(1, 1, true, &cost_));
  const auto batch = cache_.TakeOldestDirty(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], (std::pair<Inum, std::uint64_t>{1, 5}));
  EXPECT_EQ(batch[1], (std::pair<Inum, std::uint64_t>{2, 9}));
  EXPECT_EQ(cache_.dirty_pages(), 1u);
}

TEST_F(PageCacheTest, TakeDirtyOfFileIsSelective) {
  ASSERT_TRUE(cache_.Insert(1, 0, true, &cost_));
  ASSERT_TRUE(cache_.Insert(2, 0, true, &cost_));
  ASSERT_TRUE(cache_.Insert(1, 3, true, &cost_));
  const auto pages = cache_.TakeDirtyOfFile(1);
  EXPECT_EQ(pages.size(), 2u);
  EXPECT_EQ(cache_.dirty_pages(), 1u);  // file 2's page remains dirty
}

TEST_F(PageCacheTest, CleanDirtyRunAfterStopsAtCleanOrAbsent) {
  for (std::uint64_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(cache_.Insert(1, p, /*dirty=*/p != 3, &cost_));
  }
  // Run after page 0: pages 1,2 dirty; page 3 clean stops it.
  EXPECT_EQ(cache_.CleanDirtyRunAfter(1, 0, 255), 2u);
  EXPECT_EQ(cache_.dirty_pages(), 3u);  // pages 0, 4, 5 still dirty
  // Run after page 4: page 5 dirty, page 6 absent stops it.
  EXPECT_EQ(cache_.CleanDirtyRunAfter(1, 4, 255), 1u);
}

TEST_F(PageCacheTest, CleanDirtyRunAfterRespectsCap) {
  for (std::uint64_t p = 0; p < 10; ++p) {
    ASSERT_TRUE(cache_.Insert(1, p, true, &cost_));
  }
  EXPECT_EQ(cache_.CleanDirtyRunAfter(1, 0, 4), 4u);
  EXPECT_EQ(cache_.dirty_pages(), 6u);
}

TEST_F(PageCacheTest, EvictionUnmapsAndReportsDirty) {
  // Fill the 64-frame pool with dirty pages, then overflow it.
  for (std::uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(cache_.Insert(1, p, true, &cost_));
  }
  ASSERT_TRUE(cache_.Insert(2, 0, false, &cost_));
  EXPECT_EQ(evicted_, 1u);
  EXPECT_EQ(evicted_dirty_, 1u);
  EXPECT_EQ(cache_.resident_pages(), 64u);
  EXPECT_EQ(cache_.dirty_pages(), 63u);
}

TEST_F(PageCacheTest, DropAllReportsDirtyPages) {
  ASSERT_TRUE(cache_.Insert(1, 0, true, &cost_));
  ASSERT_TRUE(cache_.Insert(1, 1, false, &cost_));
  std::vector<std::pair<Inum, std::uint64_t>> dirty;
  cache_.DropAll(&dirty);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].second, 0u);
  EXPECT_EQ(cache_.resident_pages(), 0u);
  EXPECT_EQ(mem_.used_pages(), 0u);
}

TEST_F(PageCacheTest, AccessRefreshesLruOrder) {
  for (std::uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(cache_.Insert(1, p, false, &cost_));
  }
  ASSERT_TRUE(cache_.Access(1, 0));  // refresh the oldest page
  ASSERT_TRUE(cache_.Insert(2, 0, false, &cost_));
  EXPECT_TRUE(cache_.Resident(1, 0)) << "refreshed page survived";
  EXPECT_FALSE(cache_.Resident(1, 1)) << "page 1 became LRU and was evicted";
}

}  // namespace
}  // namespace graysim
