#include "src/mem/mem_system.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace graysim {
namespace {

MemSystem::Config UnifiedConfig(std::uint64_t pages) {
  return MemSystem::Config{pages, MemPolicy::kUnifiedLru, 0};
}

TEST(MemSystemTest, InsertUntilFullThenEvictsLru) {
  MemSystem mem(UnifiedConfig(3));
  std::vector<Page> evicted;
  FnEviction handler([&](const Page& p) {
    evicted.push_back(p);
    return Nanos{0};
  });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  auto a = mem.Insert(Page{PageKind::kFile, 1, 0}, &cost);
  auto b = mem.Insert(Page{PageKind::kFile, 1, 1}, &cost);
  auto c = mem.Insert(Page{PageKind::kFile, 1, 2}, &cost);
  ASSERT_NE(a, kNoFrame);
  ASSERT_NE(b, kNoFrame);
  ASSERT_NE(c, kNoFrame);
  EXPECT_EQ(mem.free_pages(), 0u);

  // Touch page 0 so page 1 becomes LRU.
  mem.Touch(a);
  auto d = mem.Insert(Page{PageKind::kFile, 1, 3}, &cost);
  ASSERT_NE(d, kNoFrame);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key2, 1u);  // page 1 was least recently used
}

TEST(MemSystemTest, EvictionCostPropagates) {
  MemSystem mem(UnifiedConfig(1));
  FnEviction handler([](const Page&) { return Millis(5.0); });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 7, 0}, &cost), kNoFrame);
  EXPECT_EQ(cost, 0u);
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 7, 1}, &cost), kNoFrame);
  EXPECT_EQ(cost, Millis(5.0));
}

TEST(MemSystemTest, PartitionedFileCacheIsCapped) {
  MemSystem mem(MemSystem::Config{10, MemPolicy::kPartitionedFixedFile, 2});
  std::vector<Page> evicted;
  FnEviction handler([&](const Page& p) {
    evicted.push_back(p);
    return Nanos{0};
  });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 0}, &cost), kNoFrame);
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 1}, &cost), kNoFrame);
  // Third file page evicts within the file partition even though the pool
  // has free frames.
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 2}, &cost), kNoFrame);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key2, 0u);
  EXPECT_EQ(mem.file_pages(), 2u);
  // Anon pages can fill the rest.
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 9, i}, &cost), kNoFrame);
  }
  EXPECT_EQ(mem.anon_pages(), 8u);
  // Ninth anon page evicts an anon page, not a file page.
  evicted.clear();
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 9, 100}, &cost), kNoFrame);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].kind, PageKind::kAnon);
}

TEST(MemSystemTest, StickyPolicyRefusesFileAdmissionWhenFull) {
  MemSystem mem(MemSystem::Config{2, MemPolicy::kStickyFile, 0});
  FnEviction handler([](const Page&) { return Nanos{0}; });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 0}, &cost), kNoFrame);
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 1}, &cost), kNoFrame);
  // Pool full: new file page is refused, existing pages stay.
  EXPECT_EQ(mem.Insert(Page{PageKind::kFile, 2, 0}, &cost), kNoFrame);
  EXPECT_EQ(mem.stats().admissions_denied, 1u);
  EXPECT_EQ(mem.file_pages(), 2u);
}

TEST(MemSystemTest, StickyPolicyYieldsToAnonDemand) {
  MemSystem mem(MemSystem::Config{2, MemPolicy::kStickyFile, 0});
  std::vector<Page> evicted;
  FnEviction handler([&](const Page& p) {
    evicted.push_back(p);
    return Nanos{0};
  });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 0}, &cost), kNoFrame);
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 1}, &cost), kNoFrame);
  // Anonymous page evicts a file page.
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 5, 0}, &cost), kNoFrame);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].kind, PageKind::kFile);
  EXPECT_EQ(mem.anon_pages(), 1u);
}

TEST(MemSystemTest, RemoveFreesFrame) {
  MemSystem mem(UnifiedConfig(2));
  Nanos cost = 0;
  auto a = mem.Insert(Page{PageKind::kAnon, 1, 0}, &cost);
  ASSERT_NE(a, kNoFrame);
  EXPECT_EQ(mem.used_pages(), 1u);
  mem.Remove(a);
  EXPECT_EQ(mem.used_pages(), 0u);
}

TEST(MemSystemTest, ReclaimEvictsRequestedCount) {
  MemSystem mem(UnifiedConfig(4));
  FnEviction handler([](const Page&) { return Millis(1.0); });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, i}, &cost), kNoFrame);
  }
  const Nanos reclaim_cost = mem.Reclaim(2);
  EXPECT_EQ(mem.used_pages(), 2u);
  EXPECT_EQ(reclaim_cost, Millis(2.0));
}

TEST(MemSystemTest, UnifiedPolicyPrefersFileVictims) {
  // With the file cache above its minimum share, streaming file pages are
  // reclaimed in preference to anonymous memory — even when the anon page
  // is older.
  MemSystem mem(UnifiedConfig(16));
  std::vector<Page> evicted;
  FnEviction handler([&](const Page& p) {
    evicted.push_back(p);
    return Nanos{0};
  });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 9, 0}, &cost), kNoFrame);  // oldest page
  for (std::uint64_t i = 0; i < 15; ++i) {
    ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, i}, &cost), kNoFrame);
  }
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 100}, &cost), kNoFrame);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].kind, PageKind::kFile);
  EXPECT_EQ(evicted[0].key2, 0u);  // oldest file page
  EXPECT_EQ(mem.anon_pages(), 1u);
}

TEST(MemSystemTest, UnifiedPolicySwapsAnonOnceFileShareExhausted) {
  // Once the file cache drops below 1/16 of memory, reclaim falls back to
  // global LRU and starts evicting (swapping) anonymous pages.
  MemSystem mem(UnifiedConfig(32));  // min file share = 2 pages
  std::vector<Page> evicted;
  FnEviction handler([&](const Page& p) {
    evicted.push_back(p);
    return Nanos{0};
  });
  mem.set_evict_handler(&handler);
  Nanos cost = 0;
  ASSERT_NE(mem.Insert(Page{PageKind::kFile, 1, 0}, &cost), kNoFrame);  // 1 file page only
  for (std::uint64_t i = 0; i < 31; ++i) {
    ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 9, i}, &cost), kNoFrame);
  }
  // file share (1) < minimum (2): global LRU wins — the file page is the
  // globally oldest here, then anon pages follow.
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 9, 100}, &cost), kNoFrame);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].kind, PageKind::kFile);
  ASSERT_NE(mem.Insert(Page{PageKind::kAnon, 9, 101}, &cost), kNoFrame);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[1].kind, PageKind::kAnon);
  EXPECT_EQ(evicted[1].key2, 0u);  // oldest anon page
}

}  // namespace
}  // namespace graysim
