#include <gtest/gtest.h>

#include "src/classic/cosched.h"
#include "src/classic/manners.h"
#include "src/classic/tcp.h"

namespace grayclassic {
namespace {

// --- TCP ---

TEST(TcpTest, WiredNetworkAchievesHighGoodput) {
  TcpSimConfig config;
  const TcpSimResult r = RunTcpSim(config);
  EXPECT_GT(r.goodput, 0.80) << "AIMD should keep the wired link busy";
  EXPECT_GT(r.delivered, 0u);
}

TEST(TcpTest, CongestionDropsOccurAndWindowsAdapt) {
  TcpSimConfig config;
  config.num_senders = 8;
  config.queue_capacity = 32;
  const TcpSimResult r = RunTcpSim(config);
  EXPECT_GT(r.congestion_drops, 0u);
  EXPECT_GT(r.timeouts, 0u);
  // Windows stay bounded: the gray-box control works.
  EXPECT_LT(r.avg_cwnd, 2.0 * config.queue_capacity);
}

TEST(TcpTest, FairnessAcrossSenders) {
  TcpSimConfig config;
  config.ticks = 60'000;
  const TcpSimResult r = RunTcpSim(config);
  EXPECT_GT(r.fairness, 0.75) << "Jain index should show rough fairness";
}

TEST(TcpTest, WirelessLossesCollapseGoodput) {
  // The paper's point: the gray-box assumption (loss == congestion) fails on
  // a lossy medium and the algorithm needlessly collapses its window.
  TcpSimConfig wired;
  TcpSimConfig wireless = wired;
  wireless.random_loss = 0.02;
  const TcpSimResult w = RunTcpSim(wired);
  const TcpSimResult l = RunTcpSim(wireless);
  EXPECT_GT(l.random_losses, 0u);
  EXPECT_LT(l.goodput, w.goodput * 0.7)
      << "2% random loss should cost far more than 2% of goodput";
}

TEST(TcpTest, SingleSenderFillsPipe) {
  TcpSimConfig config;
  config.num_senders = 1;
  config.ticks = 40'000;
  const TcpSimResult r = RunTcpSim(config);
  EXPECT_GT(r.goodput, 0.85);
  EXPECT_DOUBLE_EQ(r.fairness, 1.0);
}

TEST(TcpTest, RedKeepsQueuesShorter) {
  // RED (the paper's [16]) drops before the queue fills: senders back off
  // earlier, so the average queue stays far shorter at similar goodput.
  TcpSimConfig tail;
  tail.num_senders = 8;
  tail.ticks = 60'000;
  TcpSimConfig red = tail;
  red.red = true;
  const TcpSimResult t = RunTcpSim(tail);
  const TcpSimResult r = RunTcpSim(red);
  EXPECT_LT(r.avg_queue, t.avg_queue * 0.7);
  EXPECT_GT(r.goodput, t.goodput * 0.85);
}

// --- implicit coscheduling ---

TEST(CoschedTest, DedicatedJobRunsNearIdeal) {
  CoschedConfig config;
  config.local_jobs_per_node = 0;
  config.policy = WaitPolicy::kTwoPhase;
  const CoschedResult r = RunCoschedSim(config);
  EXPECT_LT(r.slowdown, 1.5) << "no competition: near-dedicated speed";
}

TEST(CoschedTest, TwoPhaseBeatsBlockImmediateUnderMultiprogramming) {
  CoschedConfig base;
  base.local_jobs_per_node = 2;
  CoschedConfig two_phase = base;
  two_phase.policy = WaitPolicy::kTwoPhase;
  CoschedConfig block = base;
  block.policy = WaitPolicy::kBlockImmediate;
  const CoschedResult tp = RunCoschedSim(two_phase);
  const CoschedResult bl = RunCoschedSim(block);
  EXPECT_LT(tp.slowdown, bl.slowdown)
      << "implicit coscheduling should beat pure local scheduling";
}

TEST(CoschedTest, TwoPhaseSpinsLessThanSpinForever) {
  CoschedConfig base;
  base.local_jobs_per_node = 2;
  CoschedConfig two_phase = base;
  two_phase.policy = WaitPolicy::kTwoPhase;
  CoschedConfig spin = base;
  spin.policy = WaitPolicy::kSpinForever;
  const CoschedResult tp = RunCoschedSim(two_phase);
  const CoschedResult sp = RunCoschedSim(spin);
  EXPECT_LT(tp.spin_ticks, sp.spin_ticks);
  // Spin-forever starves local jobs relative to two-phase.
  EXPECT_GE(tp.local_throughput, sp.local_throughput);
}

TEST(CoschedTest, BlockingHappensOnlyWhenWarranted) {
  CoschedConfig config;
  config.local_jobs_per_node = 0;  // partners always scheduled
  config.policy = WaitPolicy::kTwoPhase;
  const CoschedResult r = RunCoschedSim(config);
  // With everyone coscheduled, responses come back within the spin window:
  // blocking should be rare.
  EXPECT_LT(r.blocks, static_cast<std::uint64_t>(config.nodes * config.iterations / 10));
}

// --- MS Manners ---

MannersConfig MakeMannersConfig() {
  MannersConfig config;
  // Foreground busy in the middle third of the run.
  config.foreground_active = [](int t) { return t >= 33'000 && t < 66'000; };
  return config;
}

TEST(MannersTest, BackgroundYieldsToForeground) {
  const MannersConfig config = MakeMannersConfig();
  const MannersResult manners = RunMannersSim(config);
  const MannersResult greedy = RunGreedyBackgroundSim(config);
  EXPECT_GT(greedy.fg_slowdown, 1.7) << "greedy background halves foreground progress";
  EXPECT_LT(manners.fg_slowdown, 1.25) << "manners should nearly eliminate the impact";
  EXPECT_GT(manners.suspensions, 0u);
}

TEST(MannersTest, BackgroundStillUsesIdleTime) {
  const MannersConfig config = MakeMannersConfig();
  const MannersResult manners = RunMannersSim(config);
  EXPECT_GT(manners.idle_utilization, 0.6)
      << "manners should still consume most idle capacity";
}

TEST(MannersTest, NoForegroundMeansNoSuspensions) {
  MannersConfig config;
  config.foreground_active = [](int) { return false; };
  const MannersResult r = RunMannersSim(config);
  EXPECT_EQ(r.suspensions, 0u);
  EXPECT_GT(r.idle_utilization, 0.95);
}

TEST(MannersTest, AlwaysBusyForegroundSuppressesBackground) {
  MannersConfig config;
  config.foreground_active = [](int) { return true; };
  const MannersResult manners = RunMannersSim(config);
  const MannersResult greedy = RunGreedyBackgroundSim(config);
  EXPECT_LT(manners.bg_work, greedy.bg_work / 4)
      << "manners backs off almost completely";
  EXPECT_LT(manners.fg_slowdown, 1.3);
}

}  // namespace
}  // namespace grayclassic
