// The classic gray-box systems (paper §3, Table 1), rebuilt as kernel
// citizens: real processes on a simulated Machine exchanging real datagrams
// through the simulated link.
//
// Three angles:
//  - Behavior: each ICL's gray-box inference does what the paper says it
//    does — TCP reads drops as congestion and converges to fairness, the
//    coscheduling ring reads scheduling state from response timing, MS
//    Manners reads contention from its own progress and backs off.
//  - Replay: every scenario is bit-identical run-to-run on every platform
//    profile, including with the chaos layer armed. The doubles in the
//    snapshots are compared exactly — same simulation, same bits.
//  - Hardening: with interference armed the ICLs recover via resends and
//    recalibration rather than wedge or give up.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/gray/classic/scenario.h"
#include "src/sim/fault_plan.h"

namespace grayclassic {
namespace {

using graysim::FaultPlan;
using graysim::PlatformProfile;

const PlatformProfile& Profile(int index) {
  static const PlatformProfile profiles[] = {PlatformProfile::Linux22(),
                                             PlatformProfile::NetBsd15(),
                                             PlatformProfile::Solaris7()};
  return profiles[index];
}

// ---- replay snapshots: every counter and double, compared exactly ----

struct TcpSnap {
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t acked = 0;
  std::uint64_t congestion_drops = 0;
  std::uint64_t random_losses = 0;
  std::uint64_t chaos_drops = 0;
  std::uint64_t timeouts = 0;
  double goodput = 0.0;
  double avg_queue = 0.0;
  double fairness = 0.0;
  double avg_cwnd = 0.0;
  graysim::Nanos virtual_time = 0;
  std::vector<std::uint64_t> per_sender;

  friend bool operator==(const TcpSnap&, const TcpSnap&) = default;
};

TcpSnap Snap(const TcpScenarioResult& r) {
  TcpSnap s{r.delivered,     r.delivered_bytes, r.acked,    r.congestion_drops,
            r.random_losses, r.chaos_drops,     r.timeouts, r.goodput,
            r.avg_queue,     r.fairness,        r.avg_cwnd, r.virtual_time,
            {}};
  for (const TcpIclResult& sender : r.senders) {
    s.per_sender.insert(s.per_sender.end(),
                        {sender.acked, sender.sent, sender.retransmits,
                         sender.timeouts, sender.fast_retransmits,
                         sender.recalibrations, sender.srtt, sender.rto});
  }
  return s;
}

struct CoschedSnap {
  graysim::Nanos job_time = 0;
  double slowdown = 0.0;
  double local_share = 0.0;
  graysim::Nanos spin_time = 0;
  std::uint64_t blocks = 0;
  std::uint64_t fast_waits = 0;
  std::uint64_t resends = 0;
  bool gave_up = false;
  graysim::Nanos virtual_time = 0;
  std::vector<std::uint64_t> per_proc;

  friend bool operator==(const CoschedSnap&, const CoschedSnap&) = default;
};

CoschedSnap Snap(const CoschedScenarioResult& r) {
  CoschedSnap s{r.job_time, r.slowdown,    r.local_cpu_share, r.spin_time,
                r.blocks,   r.fast_waits,  r.resends,         r.any_gave_up,
                r.virtual_time, {}};
  for (const CoschedIclResult& p : r.procs) {
    s.per_proc.insert(s.per_proc.end(),
                      {p.iterations_done, p.elapsed, p.spin_time, p.blocks,
                       p.fast_waits, p.resends, p.served, p.benchmark_rtt,
                       p.rtt_estimate});
  }
  return s;
}

struct MannersSnap {
  std::uint64_t bg_units = 0;
  std::uint64_t windows = 0;
  std::uint64_t suspensions = 0;
  std::uint64_t suspended_windows = 0;
  bool sign_fired = false;
  double baseline_rate = 0.0;
  double unit_cost_ns = 0.0;
  double fg_slowdown = 0.0;
  double idle_utilization = 0.0;
  graysim::Nanos fg_demand = 0;
  graysim::Nanos fg_elapsed = 0;
  graysim::Nanos virtual_time = 0;

  friend bool operator==(const MannersSnap&, const MannersSnap&) = default;
};

MannersSnap Snap(const MannersScenarioResult& r) {
  return MannersSnap{r.bg.bg_units,     r.bg.windows,
                     r.bg.suspensions,  r.bg.suspended_windows,
                     r.bg.sign_test_fired, r.bg.baseline_rate,
                     r.bg.unit_cost_ns, r.fg_slowdown,
                     r.idle_utilization, r.fg_demand,
                     r.fg_elapsed,      r.virtual_time};
}

bool MidFg(graysim::Nanos t) { return t >= 1'300'000'000 && t < 2'700'000'000; }

// ---- TCP behavior ----

TEST(ClassicTcp, SingleSenderIsPerfectlyFairAndMovesData) {
  TcpScenarioOptions o;
  o.num_senders = 1;
  o.net.queue_capacity = 64;
  const TcpScenarioResult r = RunTcpScenario(o);
  EXPECT_DOUBLE_EQ(r.fairness, 1.0);
  EXPECT_GT(r.goodput, 0.3);
  EXPECT_GT(r.delivered, 500u);
  EXPECT_EQ(r.random_losses, 0u);
  EXPECT_EQ(r.chaos_drops, 0u);
}

TEST(ClassicTcp, SendersShareABottleneckFairly) {
  TcpScenarioOptions o;
  o.num_senders = 4;
  o.net.queue_capacity = 64;
  const TcpScenarioResult r = RunTcpScenario(o);
  // Four AIMD senders converge: decent utilization, high Jain fairness, and
  // every window collapse traces back to a real router drop.
  EXPECT_GT(r.goodput, 0.5);
  EXPECT_GT(r.fairness, 0.8);
  EXPECT_GT(r.congestion_drops, 0u);
  EXPECT_EQ(r.random_losses, 0u);
  for (const TcpIclResult& s : r.senders) {
    EXPECT_GT(s.acked, 0u);
    EXPECT_LE(s.rto, o.sender.max_rto) << "hardened RTO must stay bounded";
  }
}

TEST(ClassicTcp, RandomWirelessLossIsMisreadAsCongestion) {
  TcpScenarioOptions o;
  o.num_senders = 1;
  o.net.queue_capacity = 64;
  TcpScenarioOptions wireless = o;
  wireless.net.drop_prob = 0.02;
  const TcpScenarioResult wired = RunTcpScenario(o);
  const TcpScenarioResult lossy = RunTcpScenario(wireless);
  // The paper's cautionary tale: the ICL's "drop means congestion"
  // assumption is false on a wireless link, so it collapses the window for
  // losses no router caused — every collapse happens with zero queue drops.
  EXPECT_GT(lossy.random_losses, 0u);
  EXPECT_EQ(lossy.congestion_drops, 0u);
  std::uint64_t collapses = lossy.timeouts;
  for (const TcpIclResult& s : lossy.senders) {
    collapses += s.fast_retransmits;
  }
  EXPECT_GT(collapses, 0u);
}

TEST(ClassicTcp, RedKeepsTheQueueShorterThanTailDrop) {
  TcpScenarioOptions tail;
  tail.num_senders = 4;
  tail.net.queue_capacity = 16;
  TcpScenarioOptions red = tail;
  red.net.red = true;
  const TcpScenarioResult t = RunTcpScenario(tail);
  const TcpScenarioResult r = RunTcpScenario(red);
  // Feedback through early drops: senders react before the queue is full,
  // so the standing queue stays shorter.
  EXPECT_GT(t.avg_queue, r.avg_queue);
  EXPECT_GT(r.congestion_drops, 0u);
}

TEST(ClassicTcp, SurvivesChaosInterference) {
  TcpScenarioOptions o;
  o.num_senders = 2;
  o.net.queue_capacity = 64;
  o.chaos = FaultPlan::Interference(0.5);
  const TcpScenarioResult r = RunTcpScenario(o);
  EXPECT_GT(r.chaos_drops, 0u) << "interference must actually hit the link";
  EXPECT_GT(r.delivered, 100u) << "the hardened ICL keeps the pipe moving";
  for (const TcpIclResult& s : r.senders) {
    EXPECT_GT(s.acked, 0u);
    EXPECT_LE(s.rto, o.sender.max_rto);
  }
}

// ---- implicit coscheduling behavior ----

CoschedScenarioOptions CoschedOpts(WaitPolicy policy) {
  CoschedScenarioOptions o;
  o.proc.policy = policy;
  return o;
}

std::uint64_t TotalWaits(const CoschedScenarioResult& r) {
  return static_cast<std::uint64_t>(r.procs.size()) * 200;
}

TEST(ClassicCosched, BlockImmediateNeverSpinsAndAlwaysBlocks) {
  const CoschedScenarioResult r =
      RunCoschedScenario(CoschedOpts(WaitPolicy::kBlockImmediate));
  EXPECT_EQ(r.spin_time, 0u);
  EXPECT_EQ(r.fast_waits, 0u);
  EXPECT_EQ(r.blocks, TotalWaits(r));
  EXPECT_FALSE(r.any_gave_up);
}

TEST(ClassicCosched, SpinForeverCatchesEverythingButBurnsTheCpu) {
  const CoschedScenarioResult r =
      RunCoschedScenario(CoschedOpts(WaitPolicy::kSpinForever));
  EXPECT_EQ(r.blocks, 0u);
  EXPECT_EQ(r.fast_waits, TotalWaits(r));
  EXPECT_GT(r.spin_time, 0u);
  EXPECT_FALSE(r.any_gave_up);
}

TEST(ClassicCosched, TwoPhaseSplitsWaitsByObservedResponseTime) {
  const CoschedScenarioResult r = RunCoschedScenario(CoschedOpts(WaitPolicy::kTwoPhase));
  // The implicit information at work: prompt responses are caught inside
  // the spin window (partner was scheduled), late ones fall through to a
  // block (it probably was not). Both must actually occur.
  EXPECT_GT(r.fast_waits, 0u);
  EXPECT_GT(r.blocks, 0u);
  EXPECT_EQ(r.fast_waits + r.blocks, TotalWaits(r));
  EXPECT_GT(r.spin_time, 0u);
  EXPECT_FALSE(r.any_gave_up);
  for (const CoschedIclResult& p : r.procs) {
    EXPECT_EQ(p.iterations_done, 200u);
    EXPECT_GT(p.benchmark_rtt, 0u) << "the RTT benchmark must have run";
    EXPECT_GT(p.rtt_estimate, 0u);
  }
}

TEST(ClassicCosched, BlockingHandsTheCpuToLocalJobs) {
  // On one CPU, spinning burns cycles the local jobs (and the partner!)
  // could use. Blocking must leave local jobs a larger share.
  const CoschedScenarioResult block =
      RunCoschedScenario(CoschedOpts(WaitPolicy::kBlockImmediate));
  const CoschedScenarioResult spin =
      RunCoschedScenario(CoschedOpts(WaitPolicy::kSpinForever));
  const CoschedScenarioResult two = RunCoschedScenario(CoschedOpts(WaitPolicy::kTwoPhase));
  EXPECT_GT(block.local_cpu_share, spin.local_cpu_share);
  EXPECT_GT(block.local_cpu_share, two.local_cpu_share);
}

TEST(ClassicCosched, UncontendedRingRunsFasterThanContended) {
  CoschedScenarioOptions contended = CoschedOpts(WaitPolicy::kTwoPhase);
  CoschedScenarioOptions alone = contended;
  alone.local_jobs = 0;
  const CoschedScenarioResult busy = RunCoschedScenario(contended);
  const CoschedScenarioResult idle = RunCoschedScenario(alone);
  EXPECT_LT(idle.job_time, busy.job_time);
}

TEST(ClassicCosched, SurvivesChaosInterference) {
  CoschedScenarioOptions o = CoschedOpts(WaitPolicy::kTwoPhase);
  o.chaos = FaultPlan::Interference(0.5);
  const CoschedScenarioResult r = RunCoschedScenario(o);
  EXPECT_FALSE(r.any_gave_up) << "hardened resends must recover dropped requests";
  for (const CoschedIclResult& p : r.procs) {
    EXPECT_EQ(p.iterations_done, 200u);
  }
}

// ---- MS Manners behavior ----

TEST(ClassicManners, BacksOffForTheForegroundWhereGreedyDoesNot) {
  MannersScenarioOptions governed;
  governed.fg_active = MidFg;
  MannersScenarioOptions greedy = governed;
  greedy.bg.governed = false;
  const MannersScenarioResult m = RunMannersScenario(governed);
  const MannersScenarioResult g = RunMannersScenario(greedy);
  EXPECT_GT(m.bg.suspensions, 0u);
  EXPECT_EQ(g.bg.suspensions, 0u);
  EXPECT_LT(m.fg_slowdown, g.fg_slowdown) << "self-regulation must shield the fg";
  EXPECT_LT(m.fg_slowdown, 1.5);
  EXPECT_GT(g.fg_slowdown, 1.5) << "greedy background must visibly hurt the fg";
  EXPECT_LT(m.bg.bg_units, g.bg.bg_units) << "politeness costs background work";
}

TEST(ClassicManners, QuietSystemMeansNoSuspensionsAndFullUtilization) {
  MannersScenarioOptions o;  // no foreground at all
  const MannersScenarioResult r = RunMannersScenario(o);
  EXPECT_EQ(r.bg.suspensions, 0u) << "no contention: the controller stays quiet";
  EXPECT_DOUBLE_EQ(r.fg_slowdown, 1.0);
  EXPECT_GT(r.idle_utilization, 0.9);
}

TEST(ClassicManners, SurvivesChaosInterference) {
  MannersScenarioOptions o;
  o.fg_active = MidFg;
  o.chaos = FaultPlan::Interference(0.5);
  const MannersScenarioResult r = RunMannersScenario(o);
  EXPECT_GT(r.bg.bg_units, 0u);
  EXPECT_GT(r.bg.windows, 10u);
}

// ---- bit-identical replay, all platforms, chaos armed and not ----

class ClassicReplayTest : public ::testing::TestWithParam<int> {};

TEST_P(ClassicReplayTest, TcpReplaysBitIdentically) {
  TcpScenarioOptions o;
  o.profile = Profile(GetParam());
  o.num_senders = 3;
  o.net.queue_capacity = 32;
  o.net.drop_prob = 0.005;
  EXPECT_EQ(Snap(RunTcpScenario(o)), Snap(RunTcpScenario(o)));
  o.chaos = FaultPlan::Interference(0.25);
  EXPECT_EQ(Snap(RunTcpScenario(o)), Snap(RunTcpScenario(o)));
}

TEST_P(ClassicReplayTest, CoschedReplaysBitIdentically) {
  CoschedScenarioOptions o = CoschedOpts(WaitPolicy::kTwoPhase);
  o.profile = Profile(GetParam());
  o.proc.iterations = 60;
  EXPECT_EQ(Snap(RunCoschedScenario(o)), Snap(RunCoschedScenario(o)));
  o.chaos = FaultPlan::Interference(0.25);
  EXPECT_EQ(Snap(RunCoschedScenario(o)), Snap(RunCoschedScenario(o)));
}

TEST_P(ClassicReplayTest, MannersReplaysBitIdentically) {
  MannersScenarioOptions o;
  o.profile = Profile(GetParam());
  o.fg_active = MidFg;
  o.bg.run_for = 2'000'000'000;
  EXPECT_EQ(Snap(RunMannersScenario(o)), Snap(RunMannersScenario(o)));
  o.chaos = FaultPlan::Interference(0.25);
  EXPECT_EQ(Snap(RunMannersScenario(o)), Snap(RunMannersScenario(o)));
}

std::string PlatformName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "Linux22";
    case 1:
      return "NetBsd15";
    default:
      return "Solaris7";
  }
}

INSTANTIATE_TEST_SUITE_P(Platforms, ClassicReplayTest, ::testing::Values(0, 1, 2),
                         PlatformName);

}  // namespace
}  // namespace grayclassic
