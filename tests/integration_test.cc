// Cross-module integration tests: the paper's end-to-end stories, asserted.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/gray/compose/compose.h"
#include "src/gray/fccd/fccd.h"
#include "src/gray/fldc/fldc.h"
#include "src/gray/gbp/gbp.h"
#include "src/gray/mac/mac.h"
#include "src/gray/sim_sys.h"
#include "src/gray/toolbox/microbench.h"
#include "src/sim/rng.h"
#include "src/workloads/fastsort.h"
#include "src/workloads/filegen.h"
#include "src/workloads/grep.h"

namespace {

using graysim::MachineConfig;
using graysim::Nanos;
using graysim::Os;
using graysim::Pid;
using graysim::PlatformProfile;

constexpr std::uint64_t kMb = 1024 * 1024;

// The full paper pipeline: microbenchmarks populate the shared repository,
// the FCCD configures itself from it, and the configured ICL still delivers
// its speedup.
TEST(IntegrationTest, MicrobenchRepositoryFeedsFccd) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  gray::SimSys sys(&os, pid);

  gray::MicrobenchOptions mb_options;
  mb_options.mem_hint_bytes = os.config().phys_mem_bytes;
  mb_options.disk_test_bytes = 64 * kMb;
  gray::Microbench bench(&sys, mb_options);
  gray::ParamRepository repo;
  ASSERT_TRUE(bench.RunAll(&repo));
  bench.Cleanup();

  // Round-trip the repository through its persistent form, as separate ICL
  // processes would.
  gray::ParamRepository loaded;
  ASSERT_TRUE(loaded.Deserialize(repo.Serialize()));

  gray::Fccd fccd(&sys, gray::FccdOptions{}, &loaded);
  EXPECT_EQ(fccd.options().access_unit,
            static_cast<std::uint64_t>(loaded.Get(gray::params::kFccdAccessUnitBytes).value()));

  // And the configured detector still detects.
  ASSERT_TRUE(graywork::MakeFile(os, pid, "/d0/data", 100 * kMb));
  os.FlushFileCache();
  const int fd = os.Open(pid, "/d0/data");
  ASSERT_EQ(os.Pread(pid, fd, {}, 50 * kMb, 0), static_cast<std::int64_t>(50 * kMb));
  ASSERT_EQ(os.Close(pid, fd), 0);
  const auto plan = fccd.PlanFile("/d0/data");
  ASSERT_TRUE(plan.has_value());
  EXPECT_LT(plan->units.front().extent.offset, 50 * kMb)
      << "first planned unit must be from the warm half";
}

// FCCD + FLDC composed through gbp: in-cache files first, then layout order,
// and the composed read order beats both naive orders.
TEST(IntegrationTest, ComposedOrderBeatsNaiveOrders) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  const std::vector<std::string> paths =
      graywork::MakeFileSet(os, pid, "/d0/dir", 60, 64 * 1024);
  os.FlushFileCache();
  // Warm five scattered files. (Small files so seek order, not transfer
  // time, dominates — the regime FLDC targets.)
  for (const int i : {3, 11, 27, 42, 58}) {
    const int fd = os.Open(pid, paths[static_cast<std::size_t>(i)]);
    ASSERT_EQ(os.Pread(pid, fd, {}, 64 * 1024, 0), 64 * 1024);
    ASSERT_EQ(os.Close(pid, fd), 0);
  }
  gray::SimSys sys(&os, pid);
  gray::GbpOptions options;
  options.mode = gray::GbpMode::kCompose;
  const gray::GbpFileOrder composed = gray::GbpOrderFiles(&sys, options, paths);
  ASSERT_EQ(composed.order.size(), paths.size());

  auto timed_read = [&](const std::vector<std::string>& order) {
    const Nanos t0 = os.Now();
    for (const std::string& path : order) {
      const int fd = os.Open(pid, path);
      (void)os.Pread(pid, fd, {}, 64 * 1024, 0);
      (void)os.Close(pid, fd);
    }
    return os.Now() - t0;
  };
  // NOTE: the composed read changes the cache, so compare one-shot runs on
  // identical cache states by re-warming between measurements. The baseline
  // is a shuffled order — the arbitrary order a user's command line gives.
  const Nanos composed_time = timed_read(composed.order);
  os.FlushFileCache();
  for (const int i : {3, 11, 27, 42, 58}) {
    const int fd = os.Open(pid, paths[static_cast<std::size_t>(i)]);
    (void)os.Pread(pid, fd, {}, 64 * 1024, 0);
    (void)os.Close(pid, fd);
  }
  std::vector<std::string> shuffled = paths;
  graysim::Rng rng(4242);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
  }
  const Nanos shuffled_time = timed_read(shuffled);
  EXPECT_LT(composed_time * 3 / 2, shuffled_time)
      << "composed order should clearly beat an arbitrary order";
}

// MAC admission control serializes two memory-hungry gb-fastsorts instead of
// letting them thrash (the paper's headline MAC claim, two-process version).
TEST(IntegrationTest, TwoGbFastsortsShareMemoryWithoutThrashing) {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 512 * kMb;
  cfg.kernel_reserved_bytes = 32 * kMb;  // 480 MB usable
  Os os(PlatformProfile::Linux22(), cfg);
  const Pid setup = os.default_pid();
  ASSERT_TRUE(graywork::MakeFile(os, setup, "/d0/in0", 300 * kMb));
  ASSERT_TRUE(graywork::MakeFile(os, setup, "/d1/in1", 300 * kMb));
  os.FlushFileCache();
  const std::uint64_t swap_before = os.stats().swap_ins;

  std::vector<graywork::FastsortReport> reports(2);
  os.RunProcesses({
      [&](Pid pid) {
        graywork::Fastsort sort(&os, pid);
        graywork::FastsortOptions options;
        options.input = "/d0/in0";
        options.run_dir = "/d0/runs";
        options.use_mac = true;
        options.mac_min = 64 * kMb;
        options.mac_max = 200 * kMb;
        reports[0] = sort.Run(options);
      },
      [&](Pid pid) {
        graywork::Fastsort sort(&os, pid);
        graywork::FastsortOptions options;
        options.input = "/d1/in1";
        options.run_dir = "/d1/runs";
        options.use_mac = true;
        options.mac_min = 64 * kMb;
        options.mac_max = 200 * kMb;
        reports[1] = sort.Run(options);
      },
  });
  EXPECT_EQ(reports[0].bytes_sorted, 300 * kMb / 100 * 100);
  EXPECT_EQ(reports[1].bytes_sorted, 300 * kMb / 100 * 100);
  // Bounded paging: a catastrophic thrash would swap in far more than a
  // few MB; MAC keeps the pair within memory.
  EXPECT_LT(os.stats().swap_ins - swap_before, 2000u);
}

// The same gray-box code runs unchanged across all three platform profiles
// (the paper's portability claim): the FCCD search win shows up everywhere.
TEST(IntegrationTest, SearchWinsOnEveryPlatform) {
  for (const PlatformProfile& profile :
       {PlatformProfile::Linux22(), PlatformProfile::NetBsd15(),
        PlatformProfile::Solaris7()}) {
    Os os(profile);
    const Pid pid = os.default_pid();
    const std::vector<std::string> paths =
        graywork::MakeFileSet(os, pid, "/d0/set", 20, 2 * kMb);
    os.FlushFileCache();
    const std::string& match = paths.back();
    {
      const int fd = os.Open(pid, match);
      ASSERT_EQ(os.Pread(pid, fd, {}, 2 * kMb, 0), static_cast<std::int64_t>(2 * kMb));
      ASSERT_EQ(os.Close(pid, fd), 0);
    }
    graywork::Grep grep(&os, pid);
    const graywork::GrepResult gray_search = grep.RunSearch(paths, match, true);
    const graywork::GrepResult plain_search = grep.RunSearch(paths, match, false);
    EXPECT_LT(gray_search.elapsed * 2, plain_search.elapsed) << profile.name;
  }
}

// Directory refresh composes with FCCD afterwards: refreshed files are cold
// (they were rewritten), and the FCCD correctly reports them cold.
TEST(IntegrationTest, RefreshThenProbeSeesColdFiles) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  const std::vector<std::string> paths =
      graywork::MakeFileSet(os, pid, "/d0/dir", 10, 6 * kMb);
  gray::SimSys sys(&os, pid);
  gray::Fldc fldc(&sys);
  ASSERT_EQ(fldc.RefreshDirectory("/d0/dir"), 0);
  os.FlushFileCache();

  gray::Fccd fccd(&sys);
  const std::vector<gray::RankedFile> ranked = fccd.OrderFiles(paths);
  for (const gray::RankedFile& rf : ranked) {
    EXPECT_GT(rf.avg_probe_time, 1'000'000u) << rf.path << " should be cold (ms probes)";
  }
}

}  // namespace
