#include "src/gray/toolbox/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gray {
namespace {

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ExponentialAverageTest, ConvergesToConstant) {
  ExponentialAverage avg(0.25);
  avg.Add(100.0);
  EXPECT_DOUBLE_EQ(avg.value(), 100.0);  // primed by first sample
  for (int i = 0; i < 200; ++i) {
    avg.Add(10.0);
  }
  EXPECT_NEAR(avg.value(), 10.0, 1e-6);
}

TEST(MedianTest, OddAndEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(PearsonTest, PerfectAndInverseCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(Pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(Pearson(xs, down), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsReturnZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> flat = {7, 7, 7};
  EXPECT_DOUBLE_EQ(Pearson(xs, flat), 0.0);
  EXPECT_DOUBLE_EQ(Pearson({}, {}), 0.0);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const Regression r = LinearFit(xs, ys);
  EXPECT_NEAR(r.slope, 3.0, 1e-9);
  EXPECT_NEAR(r.intercept, 7.0, 1e-9);
  EXPECT_NEAR(r.r2, 1.0, 1e-12);
}

TEST(TwoMeansTest, SeparatesBimodalData) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(1000.0 + i);       // fast cluster (~1 µs probes)
    xs.push_back(8000000.0 + i * 100);  // slow cluster (~8 ms probes)
  }
  const Clusters c = TwoMeans(xs);
  EXPECT_TRUE(c.separated);
  EXPECT_EQ(c.low_count, 20u);
  EXPECT_EQ(c.high_count, 20u);
  EXPECT_GT(c.threshold, 2000.0);
  EXPECT_LT(c.threshold, 8000000.0);
}

TEST(TwoMeansTest, UnimodalDataNotSeparated) {
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(1000.0 + (i % 7));
  }
  const Clusters c = TwoMeans(xs);
  EXPECT_FALSE(c.separated);
}

TEST(TwoMeansTest, HandlesTinyInputs) {
  EXPECT_EQ(TwoMeans({}).low_count, 0u);
  const std::vector<double> one = {5.0};
  EXPECT_EQ(TwoMeans(one).low_count, 1u);
  const std::vector<double> two = {1.0, 100.0};
  const Clusters c = TwoMeans(two);
  EXPECT_EQ(c.low_count, 1u);
  EXPECT_EQ(c.high_count, 1u);
}

TEST(DiscardOutliersTest, RemovesSpikes) {
  std::vector<double> xs(50, 10.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += static_cast<double>(i % 3);  // 10, 11, 12 pattern
  }
  xs.push_back(100000.0);  // scheduler hiccup
  const std::vector<double> kept = DiscardOutliers(xs);
  EXPECT_EQ(kept.size(), xs.size() - 1);
  for (const double x : kept) {
    EXPECT_LT(x, 1000.0);
  }
}

TEST(DiscardOutliersTest, AllIdenticalKept) {
  const std::vector<double> xs(10, 5.0);
  EXPECT_EQ(DiscardOutliers(xs).size(), 10u);
}

TEST(SignTestTest, DetectsSystematicDifference) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(10.0 + i);
    b.push_back(9.0 + i);  // a consistently larger
  }
  const SignTestResult r = SignTest(a, b);
  EXPECT_EQ(r.plus, 40u);
  EXPECT_EQ(r.minus, 0u);
  EXPECT_TRUE(r.significant);
}

TEST(SignTestTest, NoDifferenceNotSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(i);
    b.push_back(i % 2 == 0 ? i + 1.0 : i - 1.0);  // alternating winner
  }
  const SignTestResult r = SignTest(a, b);
  EXPECT_FALSE(r.significant);
}

TEST(SignTestTest, TiesIgnored) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 2, 3};
  const SignTestResult r = SignTest(a, b);
  EXPECT_EQ(r.plus + r.minus, 0u);
  EXPECT_FALSE(r.significant);
}

}  // namespace
}  // namespace gray
