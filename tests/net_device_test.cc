// NetDevice: the simulated link the classic ICLs observe.
//
// Pins the link physics (serialization + propagation arithmetic), each loss
// mechanism in its own counter (random loss, tail drop, RED early drop),
// reordering, the fixed RNG draw order that makes runs replay
// bit-identically, and the EarliestArrival contract the Os uses to sleep a
// blocked NetRecv precisely.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/net/net_device.h"
#include "src/net/net_schedule.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"

namespace graysim {
namespace {

struct LinkRig {
  explicit LinkRig(const NetSchedule& schedule) : dev(schedule, &clock, &events) {
    a = dev.CreateEndpoint();
    b = dev.CreateEndpoint();
  }

  void DrainTo(Nanos t) {
    clock.AdvanceTo(t);
    events.RunDue(t);
  }

  SimClock clock;
  EventQueue events{/*tie_seed=*/1};
  NetDevice dev;
  int a = -1;
  int b = -1;
};

NetSchedule Quiet() {
  NetSchedule s;  // defaults: no loss, unbounded queue
  return s;
}

TEST(NetDeviceLink, DeliveryTimeIsOverheadPlusWirePlusLatency) {
  LinkRig rig(Quiet());
  // 12500 bytes at 12.5 MB/s = 1 ms wire time, + 5 us overhead + 50 us
  // propagation. The link is idle, so serialization starts immediately.
  const Nanos arrival = rig.dev.Send(rig.a, rig.b, 12'500, /*tag=*/7);
  EXPECT_EQ(arrival, Millis(1.0) + Micros(5.0) + Micros(50.0));
  EXPECT_EQ(rig.dev.EarliestArrival(rig.b), arrival);
  EXPECT_EQ(rig.dev.Pending(rig.b), 0u) << "not delivered until the event fires";

  rig.DrainTo(arrival);
  EXPECT_EQ(rig.dev.Pending(rig.b), 1u);
  EXPECT_EQ(rig.dev.EarliestArrival(rig.b), EventQueue::kNever);
  NetMessage msg;
  ASSERT_TRUE(rig.dev.Recv(rig.b, &msg));
  EXPECT_EQ(msg.from, rig.a);
  EXPECT_EQ(msg.bytes, 12'500u);
  EXPECT_EQ(msg.tag, 7u);
  EXPECT_EQ(msg.sent_at, 0u);
  EXPECT_FALSE(rig.dev.Recv(rig.b, &msg)) << "inbox must now be empty";
  EXPECT_EQ(rig.dev.delivered(), 1u);
  EXPECT_EQ(rig.dev.dropped(), 0u);
}

TEST(NetDeviceLink, MessagesSerializeThroughTheSharedLink) {
  LinkRig rig(Quiet());
  const Nanos first = rig.dev.Send(rig.a, rig.b, 12'500, 1);
  const Nanos second = rig.dev.Send(rig.a, rig.b, 12'500, 2);
  // The second message queues behind the first on the wire; propagation
  // overlaps but serialization cannot.
  EXPECT_EQ(second, first + Millis(1.0) + Micros(5.0));
  EXPECT_EQ(rig.dev.link().depth(), 2u);
  EXPECT_EQ(rig.dev.link().coalesced_requests(), 0u)
      << "back-to-back messages never merge on a wire";
  rig.DrainTo(second);
  NetMessage msg;
  ASSERT_TRUE(rig.dev.Recv(rig.b, &msg));
  EXPECT_EQ(msg.tag, 1u) << "FCFS link: in-order delivery without reordering";
}

TEST(NetDeviceLink, RandomLossIsSilentAndCounted) {
  NetSchedule s;
  s.drop_prob = 1.0;
  LinkRig rig(s);
  EXPECT_EQ(rig.dev.Send(rig.a, rig.b, 64, 1), 0u) << "loss is silent to the sender";
  EXPECT_EQ(rig.dev.sent(), 1u);
  EXPECT_EQ(rig.dev.loss_drops(), 1u);
  EXPECT_EQ(rig.dev.congestion_drops(), 0u);
  EXPECT_EQ(rig.dev.delivered(), 0u);
}

TEST(NetDeviceLink, FullRouterQueueTailDrops) {
  NetSchedule s;
  s.queue_capacity = 4;
  LinkRig rig(s);
  std::uint64_t sent_ok = 0;
  for (int i = 0; i < 10; ++i) {
    sent_ok += rig.dev.Send(rig.a, rig.b, 12'500, static_cast<std::uint64_t>(i)) > 0;
  }
  EXPECT_EQ(sent_ok, 4u) << "everything past the queue bound tail-drops";
  EXPECT_EQ(rig.dev.congestion_drops(), 6u);
  EXPECT_EQ(rig.dev.loss_drops(), 0u);
  EXPECT_EQ(rig.dev.red_drops(), 0u);
  rig.DrainTo(Seconds(1.0));
  EXPECT_EQ(rig.dev.delivered(), 4u);
}

TEST(NetDeviceLink, RedDropsEarlyBeforeTheQueueFills) {
  NetSchedule s;
  s.queue_capacity = 16;
  s.red = true;
  LinkRig rig(s);
  for (int i = 0; i < 64; ++i) {
    (void)rig.dev.Send(rig.a, rig.b, 12'500, static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(rig.dev.red_drops(), 0u) << "RED must drop in the ramp region";
  EXPECT_LT(rig.dev.link().max_depth(), 16u)
      << "early drop keeps the queue away from its hard bound";
}

TEST(NetDeviceLink, ReorderedMessageArrivesBehindALaterSend) {
  NetSchedule s;
  s.reorder_prob = 1.0;  // every message draws the reorder penalty
  s.reorder_delay = Micros(200.0);
  LinkRig rig(s);
  const Nanos first = rig.dev.Send(rig.a, rig.b, 64, 1);
  s.reorder_prob = 0.0;
  EXPECT_EQ(rig.dev.reordered(), 1u);
  EXPECT_GT(first, Micros(200.0));
  rig.DrainTo(Seconds(1.0));
  NetMessage msg;
  ASSERT_TRUE(rig.dev.Recv(rig.b, &msg));
  EXPECT_EQ(msg.seq, 1u);
}

TEST(NetDeviceLink, IdenticalSchedulesReplayBitIdentically) {
  NetSchedule s;
  s.drop_prob = 0.3;
  s.queue_capacity = 8;
  s.red = true;
  const auto run = [&s] {
    LinkRig rig(s);
    std::vector<Nanos> arrivals;
    for (int i = 0; i < 200; ++i) {
      arrivals.push_back(rig.dev.Send(rig.a, rig.b, 1'024, static_cast<std::uint64_t>(i)));
      if (i % 8 == 7) {
        rig.DrainTo(rig.clock.now() + Millis(1.0));
      }
    }
    rig.DrainTo(Seconds(5.0));
    arrivals.push_back(rig.dev.delivered());
    arrivals.push_back(rig.dev.loss_drops());
    arrivals.push_back(rig.dev.congestion_drops());
    arrivals.push_back(rig.dev.red_drops());
    arrivals.push_back(rig.dev.link().busy_until());
    return arrivals;
  };
  EXPECT_EQ(run(), run());
}

TEST(NetDeviceLink, DrawOrderIsFixedPerSendRegardlessOfOutcome) {
  // Same seed, but one schedule tail-drops aggressively while the other
  // never drops. The loss stream must stay aligned: whether send k was
  // dropped for congestion cannot shift which later sends draw a random
  // loss. With capacity bounding OFF the loss pattern over 400 sends is the
  // reference; with bounding ON the subset of sends that pass the loss draw
  // must be identical.
  NetSchedule open;
  open.drop_prob = 0.25;
  NetSchedule bounded = open;
  bounded.queue_capacity = 2;

  const auto loss_pattern = [](const NetSchedule& s) {
    LinkRig rig(s);
    std::vector<bool> lost;
    std::uint64_t last = 0;
    for (int i = 0; i < 400; ++i) {
      (void)rig.dev.Send(rig.a, rig.b, 64, static_cast<std::uint64_t>(i));
      lost.push_back(rig.dev.loss_drops() > last);
      last = rig.dev.loss_drops();
    }
    return lost;
  };
  EXPECT_EQ(loss_pattern(open), loss_pattern(bounded))
      << "a tail drop consumed or skipped an RNG draw and shifted the loss stream";
}

TEST(NetDeviceLink, DistinctSeedsDecorrelateTheLossStream) {
  NetSchedule s1;
  s1.drop_prob = 0.5;
  NetSchedule s2 = s1;
  s2.seed = s1.seed + 1;
  const auto drops = [](const NetSchedule& s) {
    LinkRig rig(s);
    std::vector<bool> lost;
    std::uint64_t last = 0;
    for (int i = 0; i < 64; ++i) {
      (void)rig.dev.Send(rig.a, rig.b, 64, 0);
      lost.push_back(rig.dev.loss_drops() > last);
      last = rig.dev.loss_drops();
    }
    return lost;
  };
  EXPECT_NE(drops(s1), drops(s2));
}

TEST(NetDeviceLink, ChaosHooksDropAndStretch) {
  LinkRig rig(Quiet());
  rig.dev.set_delay_scale([](Nanos) { return 3.0; });
  const Nanos stretched = rig.dev.Send(rig.a, rig.b, 64, 1);
  // Serialization is unscaled; only propagation stretches.
  const Nanos wire = Micros(5.0) + static_cast<Nanos>(64 * kSecond / 12.5e6);
  EXPECT_EQ(stretched, wire + 3 * Micros(50.0));

  rig.dev.set_drop_hook([] { return true; });
  EXPECT_EQ(rig.dev.Send(rig.a, rig.b, 64, 2), 0u);
  EXPECT_EQ(rig.dev.chaos_drops(), 1u);
  EXPECT_EQ(rig.dev.loss_drops(), 0u) << "chaos drops must not masquerade as link loss";
}

TEST(NetDeviceLink, DeliveryHistogramRecordsSendToDeliveryTimes) {
  LinkRig rig(Quiet());
  const Nanos arrival = rig.dev.Send(rig.a, rig.b, 64, 1);
  rig.DrainTo(arrival);
  EXPECT_EQ(rig.dev.delivery_hist().count(), 1u);
  EXPECT_EQ(static_cast<Nanos>(rig.dev.delivery_hist().sum()), arrival);
}

}  // namespace
}  // namespace graysim
