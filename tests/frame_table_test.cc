// Equivalence suite for the frame-table memory hierarchy.
//
// Two layers of defense against behavioral drift in the intrusive-LRU
// rewrite:
//
//  1. A differential test: MemSystem (frame table + intrusive lists) runs a
//     deterministic pseudo-random op mix against a transparent reference
//     model built on std::list — the data structure the rewrite replaced.
//     Eviction sequences, stats, and occupancy must match exactly, for all
//     three replacement policies.
//
//  2. Golden snapshots: the multi-process determinism workload (mixed file
//     scans, writes, fsync, anonymous touch loops) must reproduce the
//     virtual time, OsStats, MemStats, and per-disk queue observations
//     captured on the pre-rewrite tree, for all three platform profiles —
//     and a rerun must be bit-identical.
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mem/mem_system.h"
#include "src/os/os.h"
#include "tests/test_util.h"

namespace graysim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;

// ---------------------------------------------------------------------------
// Differential reference model: the pre-rewrite std::list semantics.
// ---------------------------------------------------------------------------

struct RefPage {
  PageKind kind;
  std::uint64_t key1;
  std::uint64_t key2;
  bool dirty;
  std::uint64_t last_touch;
};

bool SamePage(const RefPage& a, const Page& b) {
  return a.kind == b.kind && a.key1 == b.key1 && a.key2 == b.key2 && a.dirty == b.dirty;
}

class RefModel {
 public:
  explicit RefModel(MemSystem::Config cfg) : cfg_(cfg) {}

  bool Insert(RefPage page) {
    while (NeedsEviction(page.kind)) {
      if (!EvictOne(page.kind)) {
        ++stats_.admissions_denied;
        return false;
      }
    }
    page.last_touch = ++touch_seq_;
    ListFor(page.kind).push_back(page);
    return true;
  }

  void Touch(std::uint64_t key1, std::uint64_t key2) {
    for (auto* list : {&file_lru_, &anon_lru_}) {
      for (auto it = list->begin(); it != list->end(); ++it) {
        if (it->key1 == key1 && it->key2 == key2) {
          RefPage page = *it;
          page.last_touch = ++touch_seq_;
          list->erase(it);
          list->push_back(page);
          return;
        }
      }
    }
    FAIL() << "touch of non-resident page";
  }

  void SetDirty(std::uint64_t key1, std::uint64_t key2, bool dirty) {
    for (auto* list : {&file_lru_, &anon_lru_}) {
      for (auto& page : *list) {
        if (page.key1 == key1 && page.key2 == key2) {
          page.dirty = dirty;
          return;
        }
      }
    }
  }

  void Remove(std::uint64_t key1, std::uint64_t key2) {
    for (auto* list : {&file_lru_, &anon_lru_}) {
      for (auto it = list->begin(); it != list->end(); ++it) {
        if (it->key1 == key1 && it->key2 == key2) {
          list->erase(it);
          return;
        }
      }
    }
  }

  bool EvictOne(PageKind incoming) {
    std::list<RefPage>* victim_list = nullptr;
    switch (cfg_.policy) {
      case MemPolicy::kUnifiedLru: {
        const std::uint64_t min_file = cfg_.total_pages / MemSystem::kMinFileShareDivisor;
        if (file_lru_.size() >= min_file && !file_lru_.empty()) {
          victim_list = &file_lru_;
        } else {
          victim_list = GlobalLru();
        }
        break;
      }
      case MemPolicy::kPartitionedFixedFile:
        victim_list = incoming == PageKind::kFile ? &file_lru_ : &anon_lru_;
        break;
      case MemPolicy::kStickyFile:
        if (incoming == PageKind::kFile) {
          return false;
        }
        victim_list = !file_lru_.empty() ? &file_lru_ : &anon_lru_;
        break;
    }
    if (victim_list == nullptr || victim_list->empty()) {
      return false;
    }
    auto victim = victim_list->begin();
    if (victim_list == &file_lru_ && victim->dirty) {
      auto scan = victim;
      for (int k = 0; k < 64 && scan != victim_list->end(); ++k, ++scan) {
        if (!scan->dirty) {
          victim = scan;
          break;
        }
      }
    }
    evictions_.push_back(*victim);
    ++stats_.evictions;
    if (victim->kind == PageKind::kFile) {
      ++stats_.file_evictions;
    } else {
      ++stats_.anon_evictions;
    }
    victim_list->erase(victim);
    return true;
  }

  [[nodiscard]] const std::vector<RefPage>& evictions() const { return evictions_; }
  [[nodiscard]] const MemStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t file_pages() const { return file_lru_.size(); }
  [[nodiscard]] std::uint64_t anon_pages() const { return anon_lru_.size(); }

 private:
  [[nodiscard]] bool NeedsEviction(PageKind kind) const {
    switch (cfg_.policy) {
      case MemPolicy::kUnifiedLru:
      case MemPolicy::kStickyFile:
        return file_lru_.size() + anon_lru_.size() >= cfg_.total_pages;
      case MemPolicy::kPartitionedFixedFile:
        if (kind == PageKind::kFile) {
          return file_lru_.size() >= cfg_.file_cache_pages;
        }
        return anon_lru_.size() >= cfg_.total_pages - cfg_.file_cache_pages;
    }
    return false;
  }

  [[nodiscard]] std::list<RefPage>* GlobalLru() {
    if (file_lru_.empty() && anon_lru_.empty()) {
      return nullptr;
    }
    if (file_lru_.empty()) {
      return &anon_lru_;
    }
    if (anon_lru_.empty()) {
      return &file_lru_;
    }
    return file_lru_.front().last_touch <= anon_lru_.front().last_touch ? &file_lru_
                                                                       : &anon_lru_;
  }

  [[nodiscard]] std::list<RefPage>& ListFor(PageKind kind) {
    return kind == PageKind::kFile ? file_lru_ : anon_lru_;
  }

  MemSystem::Config cfg_;
  std::list<RefPage> file_lru_;
  std::list<RefPage> anon_lru_;
  std::uint64_t touch_seq_ = 0;
  MemStats stats_;
  std::vector<RefPage> evictions_;
};

struct XorShift {
  std::uint64_t state;
  std::uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

MemSystem::Config ConfigFor(MemPolicy policy) {
  MemSystem::Config cfg;
  cfg.total_pages = 96;
  cfg.policy = policy;
  cfg.file_cache_pages = policy == MemPolicy::kPartitionedFixedFile ? 32 : 0;
  return cfg;
}

class LruEquivalenceTest : public ::testing::TestWithParam<MemPolicy> {};

TEST_P(LruEquivalenceTest, MatchesListReferenceModel) {
  const MemSystem::Config cfg = ConfigFor(GetParam());
  MemSystem mem(cfg);
  RefModel ref(cfg);

  struct Live {
    std::uint64_t key1;
    std::uint64_t key2;
    PageKind kind;
    FrameId ref;
  };
  std::vector<Live> live;
  std::vector<Page> evicted;

  FnEviction handler([&](const Page& page) -> Nanos {
    evicted.push_back(page);
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].key1 == page.key1 && live[i].key2 == page.key2) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    return 0;
  });
  mem.set_evict_handler(&handler);

  XorShift rng{0xABCDEF0123456789ULL};
  std::uint64_t next_key = 1;
  Nanos cost = 0;
  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t roll = rng.Next() % 100;
    if (roll < 50 && !live.empty()) {
      const Live& page = live[rng.Next() % live.size()];
      mem.Touch(page.ref);
      ref.Touch(page.key1, page.key2);
    } else if (roll < 80) {
      const bool dirty = (rng.Next() & 1) != 0;
      const std::uint64_t key = next_key++;
      const FrameId id = mem.Insert(Page{PageKind::kFile, key, key, dirty}, &cost);
      const bool admitted = ref.Insert(RefPage{PageKind::kFile, key, key, dirty, 0});
      ASSERT_EQ(id != kNoFrame, admitted);
      if (id != kNoFrame) {
        live.push_back(Live{key, key, PageKind::kFile, id});
      }
    } else if (roll < 92) {
      const std::uint64_t key = next_key++;
      const FrameId id = mem.Insert(Page{PageKind::kAnon, key, key, true}, &cost);
      const bool admitted = ref.Insert(RefPage{PageKind::kAnon, key, key, true, 0});
      ASSERT_EQ(id != kNoFrame, admitted);
      if (id != kNoFrame) {
        live.push_back(Live{key, key, PageKind::kAnon, id});
      }
    } else if (roll < 96 && !live.empty()) {
      const std::size_t pick = rng.Next() % live.size();
      const Live page = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      mem.Remove(page.ref);
      ref.Remove(page.key1, page.key2);
    } else if (!live.empty()) {
      const Live& page = live[rng.Next() % live.size()];
      if (page.kind == PageKind::kFile) {
        const bool dirty = (rng.Next() & 1) != 0;
        if (dirty) {
          mem.MarkDirty(page.ref);
        } else {
          mem.MarkClean(page.ref);
        }
        ref.SetDirty(page.key1, page.key2, dirty);
      }
    }
    ASSERT_EQ(mem.file_pages(), ref.file_pages()) << "op " << op;
    ASSERT_EQ(mem.anon_pages(), ref.anon_pages()) << "op " << op;
  }

  // Drain what's left: the full drain sequence exposes the complete
  // relative LRU order of both structures.
  while (true) {
    const std::size_t before = evicted.size();
    (void)mem.Reclaim(1);  // returns I/O cost, not a count; progress shows in evicted
    if (evicted.size() == before) {
      break;
    }
    ASSERT_TRUE(ref.EvictOne(PageKind::kAnon));
  }
  while (ref.EvictOne(PageKind::kAnon)) {
    // MemSystem stopped first: mismatch surfaces in the size check below.
  }

  ASSERT_EQ(evicted.size(), ref.evictions().size());
  for (std::size_t i = 0; i < evicted.size(); ++i) {
    EXPECT_TRUE(SamePage(ref.evictions()[i], evicted[i]))
        << "eviction " << i << ": ref(" << ref.evictions()[i].key1 << ","
        << ref.evictions()[i].key2 << ") vs mem(" << evicted[i].key1 << ","
        << evicted[i].key2 << ")";
  }
  EXPECT_EQ(mem.stats().evictions, ref.stats().evictions);
  EXPECT_EQ(mem.stats().file_evictions, ref.stats().file_evictions);
  EXPECT_EQ(mem.stats().anon_evictions, ref.stats().anon_evictions);
  EXPECT_EQ(mem.stats().admissions_denied, ref.stats().admissions_denied);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LruEquivalenceTest,
                         ::testing::Values(MemPolicy::kUnifiedLru,
                                           MemPolicy::kPartitionedFixedFile,
                                           MemPolicy::kStickyFile),
                         [](const ::testing::TestParamInfo<MemPolicy>& info) {
                           switch (info.param) {
                             case MemPolicy::kUnifiedLru:
                               return "UnifiedLru";
                             case MemPolicy::kPartitionedFixedFile:
                               return "PartitionedFixedFile";
                             case MemPolicy::kStickyFile:
                               return "StickyFile";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Golden workload snapshots (captured pre-rewrite).
// ---------------------------------------------------------------------------

struct WorkloadObservation {
  Nanos now = 0;
  OsStats os;
  MemStats mem;
  std::vector<std::uint64_t> max_depths;
  std::vector<std::uint64_t> total_requests;

  friend bool operator==(const WorkloadObservation&, const WorkloadObservation&) = default;
};

WorkloadObservation RunDeterminismWorkload(const PlatformProfile& profile, int nprocs) {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 160 * kMb;
  cfg.kernel_reserved_bytes = 32 * kMb;
  Os os(profile, cfg);
  const Pid setup = os.default_pid();
  for (int d = 0; d < 2; ++d) {
    const std::string path = "/d" + std::to_string(d) + "/input";
    const int fd = os.Creat(setup, path);
    for (std::uint64_t off = 0; off < 24 * kMb; off += kMb) {
      (void)os.Pwrite(setup, fd, kMb, off);
    }
    (void)os.Fsync(setup, fd);
    (void)os.Close(setup, fd);
  }
  os.FlushFileCache();

  std::vector<std::function<void(Pid)>> bodies;
  for (int i = 0; i < nprocs; ++i) {
    bodies.push_back([&os, i](Pid pid) {
      const std::string in = "/d" + std::to_string(i % 2) + "/input";
      const int fd = os.Open(pid, in);
      std::uint64_t off = static_cast<std::uint64_t>(i) * 512 * 1024;
      for (int k = 0; k < 24; ++k) {
        (void)os.Pread(pid, fd, {}, 256 * 1024, off % (24 * kMb));
        off += 256 * 1024;
      }
      (void)os.Close(pid, fd);
      const int out =
          os.Creat(pid, "/d" + std::to_string(i % 2) + "/out" + std::to_string(i));
      for (int k = 0; k < 8; ++k) {
        (void)os.Pwrite(pid, out, 512 * 1024, static_cast<std::uint64_t>(k) * 512 * 1024);
      }
      if (i % 2 == 0) {
        (void)os.Fsync(pid, out);
      }
      (void)os.Close(pid, out);
      const VmAreaId area = os.VmAlloc(pid, (2 + i % 3) * kMb);
      const std::uint64_t pages = (2 + i % 3) * kMb / os.page_size();
      for (std::uint64_t p = 0; p < pages; ++p) {
        os.VmTouch(pid, area, p, true);
      }
      os.Sleep(pid, Millis(1.0 + i));
      for (std::uint64_t p = 0; p < pages; p += 7) {
        os.VmTouch(pid, area, p, true);
      }
      os.VmFree(pid, area);
    });
  }
  os.RunProcesses(bodies);

  WorkloadObservation obs;
  obs.now = os.Now();
  obs.os = os.stats();
  obs.mem = os.mem_stats();
  for (int d = 0; d < os.num_disks(); ++d) {
    obs.max_depths.push_back(os.MaxDiskQueueDepth(d));
    obs.total_requests.push_back(os.disk_queue(d).total_requests());
  }
  return obs;
}

struct GoldenCase {
  const char* name;
  PlatformProfile (*profile)();
  Nanos now;
  OsStats os;
  MemStats mem;
  std::vector<std::uint64_t> max_depths;
  std::vector<std::uint64_t> total_requests;
};

// Values recorded by running this exact workload on the tree BEFORE the
// frame-table rewrite (std::list LRUs, hash-map page tables, heap-allocated
// event closures). Bit-identical equality here is the refactor's contract.
const GoldenCase kGoldenCases[] = {
    {"Linux22", &PlatformProfile::Linux22, 3763731016ULL,
     {285, 0, 0, 5080, 132, 68, 14, 0, 0, 0, 17412, 3, 82, 0, 0, 5},
     {0, 0, 0, 0},
     {4, 3, 0, 0, 0},
     {42, 40, 0, 0, 0}},
    {"NetBsd15", &PlatformProfile::NetBsd15, 3575018310ULL,
     {285, 0, 0, 5080, 132, 68, 22, 0, 0, 0, 17413, 10, 90, 0, 0, 5},
     {0, 0, 0, 0},
     {5, 5, 0, 0, 0},
     {46, 44, 0, 0, 0}},
    {"Solaris7", &PlatformProfile::Solaris7, 3763731016ULL,
     {285, 0, 0, 5080, 132, 68, 14, 0, 0, 0, 17412, 3, 82, 0, 0, 5},
     {0, 0, 0, 0},
     {4, 3, 0, 0, 0},
     {42, 40, 0, 0, 0}},
};

class GoldenWorkloadTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenWorkloadTest, MatchesPreRewriteObservations) {
  const GoldenCase& expected = GetParam();
  const WorkloadObservation obs = RunDeterminismWorkload(expected.profile(), 6);
  EXPECT_EQ(obs.now, expected.now);
  EXPECT_EQ(obs.os, expected.os);
  EXPECT_EQ(obs.mem.evictions, expected.mem.evictions);
  EXPECT_EQ(obs.mem.file_evictions, expected.mem.file_evictions);
  EXPECT_EQ(obs.mem.anon_evictions, expected.mem.anon_evictions);
  EXPECT_EQ(obs.mem.admissions_denied, expected.mem.admissions_denied);
  EXPECT_EQ(obs.max_depths, expected.max_depths);
  EXPECT_EQ(obs.total_requests, expected.total_requests);
}

TEST_P(GoldenWorkloadTest, RerunIsBitIdentical) {
  const GoldenCase& c = GetParam();
  EXPECT_EQ(RunDeterminismWorkload(c.profile(), 6), RunDeterminismWorkload(c.profile(), 6));
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, GoldenWorkloadTest, ::testing::ValuesIn(kGoldenCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           return info.param.name;
                         });

// The paging-heavy 32-process configuration exercises swap, direct reclaim,
// and the dirty-skip scan; one profile keeps runtime reasonable.
TEST(GoldenWorkloadTest, Linux22ThirtyTwoProcessPagingSnapshot) {
  const WorkloadObservation obs = RunDeterminismWorkload(PlatformProfile::Linux22(), 32);
  EXPECT_EQ(obs.now, 7879393643ULL);
  const OsStats expected_os = {1286, 0, 0, 38406, 294, 172, 52, 0, 0, 0, 43019, 298, 224, 0, 0, 18};
  EXPECT_EQ(obs.os, expected_os);
  EXPECT_EQ(obs.mem.evictions, 11778u);
  EXPECT_EQ(obs.mem.file_evictions, 11778u);
  EXPECT_EQ(obs.mem.anon_evictions, 0u);
  EXPECT_EQ(obs.mem.admissions_denied, 0u);
  EXPECT_EQ(obs.max_depths, (std::vector<std::uint64_t>{22, 16, 0, 0, 0}));
  EXPECT_EQ(obs.total_requests, (std::vector<std::uint64_t>{119, 105, 0, 0, 0}));
}

}  // namespace
}  // namespace graysim
