// Tests for the graysimd load service: scenario DSL round-trip and strict
// rejection, open-loop arrival determinism, threaded-vs-sequential
// bit-identical latency digests on every platform profile, slow-request
// trace spans gated by the threshold, and chaos-armed runs completing with
// bounded error counts.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/service/arrival.h"
#include "src/service/load_service.h"
#include "src/service/scenario.h"

namespace {

using grayservice::ArrivalKind;
using grayservice::ArrivalProcess;
using grayservice::FleetLoadReport;
using grayservice::LoadScenario;
using grayservice::MachineLoadResult;
using grayservice::ParseLoadScenario;
using grayservice::RequestKind;

// A small fleet that still exercises every moving part: multiple machines,
// multiple clients, a mixed request set, and a sub-second window.
LoadScenario TestScenario() {
  LoadScenario s;
  s.name = "test";
  s.machines = 3;
  s.clients = 4;
  s.arrival = ArrivalKind::kPoisson;
  s.rate_hz = 20.0;
  s.duration_s = 0.2;
  s.slow_ms = 1.0;
  s.timeout_ms = 100.0;
  s.seed = 0xBEEF;
  return s;
}

// ---- scenario DSL ---------------------------------------------------------

TEST(Scenario, FormatParseRoundTripIsExact) {
  LoadScenario s;
  s.name = "roundtrip";
  s.machines = 17;
  s.clients = 33;
  s.arrival = ArrivalKind::kBurst;
  s.rate_hz = 12.5;
  s.burst_size = 7;
  s.duration_s = 0.125;
  s.mix[0] = 0;
  s.mix[1] = 9;
  s.mix[2] = 1;
  s.mix[3] = 2;
  s.chaos = 0.33;
  s.slow_ms = 2.75;
  s.timeout_ms = 81.5;
  s.seed = 0xDEADBEEFCAFEULL;
  s.profile = "solaris7";

  LoadScenario parsed;
  std::string error;
  ASSERT_TRUE(ParseLoadScenario(FormatLoadScenario(s), &parsed, &error)) << error;
  EXPECT_EQ(s, parsed);
}

TEST(Scenario, ParsesDslWithCommentsAndDefaults) {
  const std::string text =
      "# a comment\n"
      "name = mini   # trailing comment\n"
      "machines = 2\n"
      "\n"
      "arrival = fixed\n"
      "mix = grep:1\n"
      "seed = 42\n";
  LoadScenario s;
  std::string error;
  ASSERT_TRUE(ParseLoadScenario(text, &s, &error)) << error;
  EXPECT_EQ(s.name, "mini");
  EXPECT_EQ(s.machines, 2);
  EXPECT_EQ(s.clients, 16);  // untouched default
  EXPECT_EQ(s.arrival, ArrivalKind::kFixedRate);
  EXPECT_EQ(s.mix[static_cast<int>(RequestKind::kGrep)], 1);
  EXPECT_EQ(s.mix[static_cast<int>(RequestKind::kFastsort)], 0);  // unlisted -> 0
  EXPECT_EQ(s.seed, 42u);
}

TEST(Scenario, RejectsMalformedInputWithLineNumbers) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"bogus_key = 3\n", "unknown key"},
      {"machines\n", "no equals sign"},
      {"machines = lots\n", "non-numeric value"},
      {"machines = 0\n", "zero machines"},
      {"rate_hz = -5\n", "negative rate"},
      {"chaos = 1.5\n", "chaos out of range"},
      {"mix = grep:fast\n", "non-numeric mix weight"},
      {"mix = dance:1\n", "unknown request kind"},
      {"mix = grep:0 aging:0\n", "all-zero mix"},
      {"arrival = sometimes\n", "unknown arrival kind"},
      {"profile = windows95\n", "unknown profile"},
      {"timeout_ms = 0\n", "zero timeout"},
  };
  for (const auto& c : cases) {
    LoadScenario s;
    std::string error;
    EXPECT_FALSE(ParseLoadScenario(c.text, &s, &error)) << c.why;
    EXPECT_FALSE(error.empty()) << c.why;
  }
  // Line numbers point at the offending line.
  LoadScenario s;
  std::string error;
  EXPECT_FALSE(ParseLoadScenario("machines = 2\n\nclients = zero\n", &s, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

// ---- arrival processes ----------------------------------------------------

TEST(Arrival, PoissonIsDeterministicFromOneSeed) {
  LoadScenario s = TestScenario();
  ArrivalProcess a(s, 0x5EED);
  ArrivalProcess b(s, 0x5EED);
  ArrivalProcess c(s, 0x0DD);
  std::uint64_t prev = 0;
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const graysim::Nanos x = a.Next();
    EXPECT_EQ(x, b.Next());  // same seed, same schedule, element by element
    EXPECT_GT(x, prev);      // strictly increasing
    prev = x;
    diverged = diverged || c.Next() != x;
  }
  EXPECT_TRUE(diverged);  // a different seed is a different schedule
}

TEST(Arrival, FixedRateIsEvenlySpaced) {
  LoadScenario s = TestScenario();
  s.arrival = ArrivalKind::kFixedRate;
  s.rate_hz = 1000.0;  // 1 ms period
  ArrivalProcess a(s, 1);
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(a.Next(), static_cast<graysim::Nanos>(i) * 1'000'000u);
  }
}

TEST(Arrival, BurstArrivesInGroupsAtTheConfiguredMeanRate) {
  LoadScenario s = TestScenario();
  s.arrival = ArrivalKind::kBurst;
  s.rate_hz = 1000.0;
  s.burst_size = 4;
  const graysim::Nanos interval = 4u * 1'000'000u;
  ArrivalProcess a(s, 1);
  const graysim::Nanos phase = a.Next();
  EXPECT_LT(phase, interval);  // seed-drawn phase inside one burst interval
  for (int burst = 0; burst < 3; ++burst) {
    const graysim::Nanos expect = phase + static_cast<graysim::Nanos>(burst) * interval;
    for (int k = burst == 0 ? 1 : 0; k < 4; ++k) {
      EXPECT_EQ(a.Next(), expect);  // whole burst shares one instant
    }
  }
  // The phase is a pure function of the stream seed: same seed, same
  // train; a different stream de-synchronizes.
  ArrivalProcess again(s, 1);
  EXPECT_EQ(again.Next(), phase);
  ArrivalProcess other(s, 2);
  EXPECT_NE(other.Next(), phase);
}

// ---- replay determinism ---------------------------------------------------

TEST(LoadFleet, ThreadedMatchesSequentialOnEveryProfile) {
  for (const char* profile : {"linux2.2", "netbsd1.5", "solaris7"}) {
    LoadScenario s = TestScenario();
    s.profile = profile;
    const FleetLoadReport threaded = RunLoadFleet(s, /*threads=*/3);
    const FleetLoadReport sequential = RunLoadFleet(s, /*threads=*/1);
    EXPECT_EQ(threaded.digest, sequential.digest) << profile;
    EXPECT_EQ(threaded.machine_digests, sequential.machine_digests) << profile;
    EXPECT_EQ(threaded.counts, sequential.counts) << profile;
    EXPECT_EQ(threaded.fleet_virtual, sequential.fleet_virtual) << profile;
    EXPECT_GT(threaded.counts.requests, 0u) << profile;
    // The merged latency series exists and holds every request.
    const obs::Histogram* h = threaded.metrics.FindHistogram("svc.request_latency_ns");
    ASSERT_NE(h, nullptr) << profile;
    EXPECT_EQ(h->count(), threaded.counts.requests) << profile;
  }
}

TEST(LoadFleet, RerunIsBitIdentical) {
  const LoadScenario s = TestScenario();
  const FleetLoadReport a = RunLoadFleet(s, 2);
  const FleetLoadReport b = RunLoadFleet(s, 2);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.counts, b.counts);
}

// ---- slow-request tracing -------------------------------------------------

TEST(LoadMachine, SlowSpansEmittedIffThresholdCrossed) {
  LoadScenario s = TestScenario();
  s.machines = 1;

  // Threshold far above anything the window can produce: no spans.
  s.slow_ms = 1e9;
  const MachineLoadResult none = RunLoadMachine(s, 0, /*trace_capacity=*/4096);
  EXPECT_EQ(none.counts.slow, 0u);
  EXPECT_TRUE(none.slow_spans.empty());

  // Threshold below any real latency: every request is slow and traced.
  s.slow_ms = 1e-6;
  const MachineLoadResult all = RunLoadMachine(s, 0, /*trace_capacity=*/4096);
  EXPECT_EQ(all.counts.slow, all.counts.requests);
  EXPECT_EQ(all.slow_spans.size(), all.counts.requests);
  EXPECT_GT(all.counts.requests, 0u);
  for (const obs::TraceEvent& e : all.slow_spans) {
    EXPECT_STREQ(e.name, "slow_request");
    EXPECT_GT(e.dur_ns, 0u);
  }
}

TEST(LoadMachine, TracingIsPassive) {
  LoadScenario s = TestScenario();
  s.machines = 1;
  s.slow_ms = 1e-6;  // force span emission on the traced run
  const MachineLoadResult traced = RunLoadMachine(s, 0, /*trace_capacity=*/4096);
  const MachineLoadResult untraced = RunLoadMachine(s, 0, /*trace_capacity=*/0);
  EXPECT_EQ(traced.digest, untraced.digest);
  EXPECT_EQ(traced.counts, untraced.counts);
  EXPECT_EQ(traced.virtual_time, untraced.virtual_time);
  EXPECT_TRUE(untraced.slow_spans.empty());
}

// ---- chaos ----------------------------------------------------------------

TEST(LoadMachine, ChaosArmedRunCompletesWithBoundedErrors) {
  LoadScenario s = TestScenario();
  s.machines = 1;
  s.chaos = 0.5;
  const MachineLoadResult a = RunLoadMachine(s, 0);
  EXPECT_GT(a.counts.requests, 0u);
  EXPECT_LE(a.counts.errors, a.counts.requests);
  EXPECT_LE(a.counts.ok + a.counts.errors, 2 * a.counts.requests);
  // Chaos draws from a derived seed, so even a heavily interfered run
  // replays bit-identically.
  const MachineLoadResult b = RunLoadMachine(s, 0);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.counts, b.counts);
}

}  // namespace
