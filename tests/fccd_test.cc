#include "src/gray/fccd/fccd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/gray/fccd/sled_oracle.h"
#include "src/gray/sim_sys.h"
#include "src/workloads/filegen.h"

namespace gray {
namespace {

using graysim::MachineConfig;
using graysim::Os;
using graysim::PlatformProfile;

constexpr std::uint64_t kMb = 1024 * 1024;

struct Fixture {
  explicit Fixture(MachineConfig cfg = MachineConfig{})
      : os(PlatformProfile::Linux22(), cfg), sys(&os, os.default_pid()) {}
  Os os;
  SimSys sys;
};

TEST(FccdTest, PlanCoversWholeFile) {
  Fixture f;
  ASSERT_TRUE(graywork::MakeFile(f.os, f.os.default_pid(), "/d0/file", 55 * kMb));
  Fccd fccd(&f.sys);
  const auto plan = fccd.PlanFile("/d0/file");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->TotalBytes(), 55 * kMb);
  // Extents must partition [0, size): sort by offset and check adjacency.
  std::vector<Extent> extents;
  for (const UnitPlan& u : plan->units) {
    extents.push_back(u.extent);
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  std::uint64_t expect = 0;
  for (const Extent& e : extents) {
    EXPECT_EQ(e.offset, expect);
    expect += e.length;
  }
  EXPECT_EQ(expect, 55 * kMb);
}

TEST(FccdTest, MissingFileYieldsNullopt) {
  Fixture f;
  Fccd fccd(&f.sys);
  EXPECT_FALSE(fccd.PlanFile("/d0/absent").has_value());
}

TEST(FccdTest, CachedHalfIsOrderedFirst) {
  // Warm the first half of a file; the plan must visit those units first.
  Fixture f;
  const graysim::Pid pid = f.os.default_pid();
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/file", 200 * kMb));
  f.os.FlushFileCache();
  const int fd = f.os.Open(pid, "/d0/file");
  ASSERT_GE(fd, 0);
  ASSERT_EQ(f.os.Pread(pid, fd, {}, 100 * kMb, 0), static_cast<std::int64_t>(100 * kMb));
  ASSERT_EQ(f.os.Close(pid, fd), 0);

  Fccd fccd(&f.sys);
  const auto plan = fccd.PlanFile("/d0/file");
  ASSERT_TRUE(plan.has_value());
  // The first half of the plan (by position in the ordering) should be the
  // cached units, i.e. offsets < 100 MB.
  const std::size_t half = plan->units.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_LT(plan->units[i].extent.offset, 100 * kMb)
        << "unit " << i << " predicted fast but is in the cold half";
  }
  for (std::size_t i = half; i < plan->units.size(); ++i) {
    EXPECT_GE(plan->units[i].extent.offset, 100 * kMb);
  }
}

TEST(FccdTest, PredictionMatchesGroundTruth) {
  // Warm a scattered set of access units and check per-unit agreement with
  // the simulator's presence bitmap.
  Fixture f;
  const graysim::Pid pid = f.os.default_pid();
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/file", 400 * kMb));
  f.os.FlushFileCache();
  const int fd = f.os.Open(pid, "/d0/file");
  // Warm units 0, 2, 5, 9, 13 (20 MB each).
  for (const std::uint64_t u : {0, 2, 5, 9, 13}) {
    ASSERT_EQ(f.os.Pread(pid, fd, {}, 20 * kMb, u * 20 * kMb),
              static_cast<std::int64_t>(20 * kMb));
  }
  ASSERT_EQ(f.os.Close(pid, fd), 0);

  Fccd fccd(&f.sys);
  const auto plan = fccd.PlanFile("/d0/file");
  ASSERT_TRUE(plan.has_value());
  // The five warmed units must be the five fastest.
  std::vector<std::uint64_t> first_five;
  for (std::size_t i = 0; i < 5; ++i) {
    first_five.push_back(plan->units[i].extent.offset / (20 * kMb));
  }
  std::sort(first_five.begin(), first_five.end());
  EXPECT_EQ(first_five, (std::vector<std::uint64_t>{0, 2, 5, 9, 13}));
}

TEST(FccdTest, AlignmentRespected) {
  Fixture f;
  ASSERT_TRUE(graywork::MakeFile(f.os, f.os.default_pid(), "/d0/file", 50 * kMb));
  FccdOptions options;
  options.align = 100;  // fastsort records
  Fccd fccd(&f.sys, options);
  const auto plan = fccd.PlanFile("/d0/file");
  ASSERT_TRUE(plan.has_value());
  for (std::size_t i = 0; i < plan->units.size(); ++i) {
    EXPECT_EQ(plan->units[i].extent.offset % 100, 0u);
  }
  EXPECT_EQ(plan->TotalBytes(), 50 * kMb);
}

TEST(FccdTest, SubPageFileGetsFakeHighTimeWithoutProbing) {
  Fixture f;
  ASSERT_TRUE(graywork::MakeFile(f.os, f.os.default_pid(), "/d0/tiny", 100));
  f.os.FlushFileCache();
  Fccd fccd(&f.sys);
  const auto plan = fccd.PlanFile("/d0/tiny");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->units.size(), 1u);
  EXPECT_EQ(plan->units[0].probes, 0);
  EXPECT_EQ(plan->units[0].probe_time, fccd.options().fake_high_time);
  // Heisenberg guard: the file must NOT have been faulted in.
  EXPECT_FALSE(f.os.PageResidentPath("/d0/tiny", 0));
}

TEST(FccdTest, EmptyFilePlansNoUnits) {
  Fixture f;
  const int fd = f.os.Creat(f.os.default_pid(), "/d0/empty");
  ASSERT_GE(fd, 0);
  ASSERT_EQ(f.os.Close(f.os.default_pid(), fd), 0);
  Fccd fccd(&f.sys);
  const auto plan = fccd.PlanFile("/d0/empty");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->units.empty());
}

TEST(FccdTest, OrderFilesPutsCachedFilesFirst) {
  Fixture f;
  const graysim::Pid pid = f.os.default_pid();
  const std::vector<std::string> paths =
      graywork::MakeFileSet(f.os, pid, "/d0/set", 10, 10 * kMb);
  f.os.FlushFileCache();
  // Warm files 3 and 7.
  for (const int i : {3, 7}) {
    const int fd = f.os.Open(pid, paths[static_cast<std::size_t>(i)]);
    ASSERT_EQ(f.os.Pread(pid, fd, {}, 10 * kMb, 0), static_cast<std::int64_t>(10 * kMb));
    ASSERT_EQ(f.os.Close(pid, fd), 0);
  }
  Fccd fccd(&f.sys);
  const std::vector<RankedFile> ranked = fccd.OrderFiles(paths);
  ASSERT_EQ(ranked.size(), paths.size());
  std::vector<std::string> first_two = {ranked[0].path, ranked[1].path};
  std::sort(first_two.begin(), first_two.end());
  EXPECT_EQ(first_two[0], "/d0/set/f3");
  EXPECT_EQ(first_two[1], "/d0/set/f7");
}

TEST(FccdTest, ProbeCountMatchesPredictionUnits) {
  Fixture f;
  ASSERT_TRUE(graywork::MakeFile(f.os, f.os.default_pid(), "/d0/file", 40 * kMb));
  Fccd fccd(&f.sys);
  const auto plan = fccd.PlanFile("/d0/file");
  ASSERT_TRUE(plan.has_value());
  // 40 MB / 5 MB prediction unit = 8 probes.
  EXPECT_EQ(fccd.probes_issued(), 8u);
  int total_probes = 0;
  for (const UnitPlan& u : plan->units) {
    total_probes += u.probes;
  }
  EXPECT_EQ(total_probes, 8);
}

TEST(FccdTest, RepoSuppliesAccessUnit) {
  Fixture f;
  ParamRepository repo;
  repo.Set(params::kFccdAccessUnitBytes, static_cast<double>(10 * kMb));
  Fccd fccd(&f.sys, FccdOptions{}, &repo);
  EXPECT_EQ(fccd.options().access_unit, 10 * kMb);
}

TEST(FccdTest, ExplicitOptionBeatsRepo) {
  Fixture f;
  ParamRepository repo;
  repo.Set(params::kFccdAccessUnitBytes, static_cast<double>(10 * kMb));
  FccdOptions options;
  options.access_unit = 40 * kMb;
  Fccd fccd(&f.sys, options, &repo);
  EXPECT_EQ(fccd.options().access_unit, 40 * kMb);
}

TEST(FccdTest, GrayBoxScanBeatsLinearScanOnWarmCache) {
  // End-to-end mini version of Fig 2's key claim: with a file larger than
  // the cache, repeated gray-box scans beat repeated linear scans.
  MachineConfig cfg;
  cfg.phys_mem_bytes = 256 * kMb;
  cfg.kernel_reserved_bytes = 32 * kMb;  // 224 MB cache
  Fixture f(cfg);
  const graysim::Pid pid = f.os.default_pid();
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/big", 320 * kMb));
  f.os.FlushFileCache();

  auto linear_scan = [&] {
    const int fd = f.os.Open(pid, "/d0/big");
    const graysim::Nanos t0 = f.os.Now();
    (void)f.os.Pread(pid, fd, {}, 320 * kMb, 0);
    (void)f.os.Close(pid, fd);
    return f.os.Now() - t0;
  };
  auto gray_scan = [&] {
    const graysim::Nanos t0 = f.os.Now();
    Fccd fccd(&f.sys);
    const auto plan = fccd.PlanFile("/d0/big");
    const int fd = f.os.Open(pid, "/d0/big");
    for (const UnitPlan& u : plan->units) {
      (void)f.os.Pread(pid, fd, {}, u.extent.length, u.extent.offset);
    }
    (void)f.os.Close(pid, fd);
    return f.os.Now() - t0;
  };

  // Warm up each mode, then measure steady state.
  (void)linear_scan();
  const graysim::Nanos linear = linear_scan();
  f.os.FlushFileCache();
  (void)gray_scan();
  const graysim::Nanos gray_time = gray_scan();
  EXPECT_LT(gray_time * 2, linear) << "gray scan should be >2x faster on a warm cache";
}

TEST(FccdTest, TracksSledOracleQuality) {
  // The paper's claim vs Van Meter & Gao: "a great deal of the utility of
  // their proposed system can be obtained without any modification to the
  // operating system." Compare the gray-box plan against the perfect-
  // information SLED oracle on the same cache state.
  Fixture f;
  const graysim::Pid pid = f.os.default_pid();
  ASSERT_TRUE(graywork::MakeFile(f.os, pid, "/d0/file", 400 * kMb));
  f.os.FlushFileCache();
  // Warm ten scattered 20 MB units.
  const int fd = f.os.Open(pid, "/d0/file");
  for (const std::uint64_t u : {0, 3, 4, 7, 9, 11, 14, 15, 17, 19}) {
    ASSERT_EQ(f.os.Pread(pid, fd, {}, 20 * kMb, u * 20 * kMb),
              static_cast<std::int64_t>(20 * kMb));
  }
  ASSERT_EQ(f.os.Close(pid, fd), 0);

  gray::SledOracle oracle(&f.os);
  const auto oracle_plan = oracle.PlanFile("/d0/file");
  Fccd fccd(&f.sys);
  const auto gray_plan = fccd.PlanFile("/d0/file");
  ASSERT_TRUE(oracle_plan.has_value());
  ASSERT_TRUE(gray_plan.has_value());

  // The set of units each planner puts in its first half must agree (the
  // order within the half may differ; both are "cached-first").
  auto first_half_offsets = [](const FilePlan& plan) {
    std::vector<std::uint64_t> offsets;
    for (std::size_t i = 0; i < plan.units.size() / 2; ++i) {
      offsets.push_back(plan.units[i].extent.offset);
    }
    std::sort(offsets.begin(), offsets.end());
    return offsets;
  };
  EXPECT_EQ(first_half_offsets(*gray_plan), first_half_offsets(*oracle_plan))
      << "gray-box plan should match the kernel-interface oracle's split";
  // The oracle costs no probes; the FCCD paid 80 (one per 5 MB).
  EXPECT_EQ(fccd.probes_issued(), 80u);
}

}  // namespace
}  // namespace gray
