#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/gray/sim_sys.h"
#include "src/gray/toolbox/microbench.h"
#include "src/gray/toolbox/param_repository.h"
#include "src/gray/toolbox/stopwatch.h"
#include "src/gray/toolbox/techniques.h"

namespace gray {
namespace {

using graysim::Os;
using graysim::PlatformProfile;

TEST(ParamRepositoryTest, SetGetRoundTrip) {
  ParamRepository repo;
  EXPECT_FALSE(repo.Get("x").has_value());
  repo.Set("x", 3.5);
  EXPECT_DOUBLE_EQ(repo.Get("x").value(), 3.5);
  EXPECT_DOUBLE_EQ(repo.GetOr("missing", 7.0), 7.0);
}

TEST(ParamRepositoryTest, SerializeDeserializeRoundTrip) {
  ParamRepository repo;
  repo.Set(params::kDiskSeqBandwidthMbs, 19.75);
  repo.Set(params::kMemTouchNs, 150.0);
  ParamRepository copy;
  ASSERT_TRUE(copy.Deserialize(repo.Serialize()));
  EXPECT_DOUBLE_EQ(copy.Get(params::kDiskSeqBandwidthMbs).value(), 19.75);
  EXPECT_DOUBLE_EQ(copy.Get(params::kMemTouchNs).value(), 150.0);
}

TEST(ParamRepositoryTest, DeserializeSkipsCommentsRejectsGarbage) {
  ParamRepository repo;
  EXPECT_TRUE(repo.Deserialize("# comment\nkey 1.5\n\n"));
  EXPECT_DOUBLE_EQ(repo.Get("key").value(), 1.5);
  ParamRepository bad;
  EXPECT_FALSE(bad.Deserialize("key notanumber\n"));
}

TEST(ParamRepositoryTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gb_params_test.txt";
  ParamRepository repo;
  repo.Set("a.b", 42.0);
  ASSERT_TRUE(repo.SaveToFile(path));
  ParamRepository loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));
  EXPECT_DOUBLE_EQ(loaded.Get("a.b").value(), 42.0);
  std::remove(path.c_str());
}

TEST(StopwatchTest, MeasuresVirtualTime) {
  graysim::MachineConfig cfg;
  cfg.timing_jitter = 0.0;  // exact expectations below
  Os os(PlatformProfile::Linux22(), cfg);
  SimSys sys(&os, os.default_pid());
  Stopwatch sw(&sys);
  os.Compute(os.default_pid(), graysim::Millis(3.0));
  EXPECT_EQ(sw.Elapsed(), graysim::Millis(3.0));
  sw.Restart();
  EXPECT_EQ(sw.Elapsed(), 0u);
}

TEST(TechniqueUsageTest, RecordsAndDescribes) {
  TechniqueUsage usage;
  EXPECT_FALSE(usage.used(Technique::kProbes));
  usage.Record(Technique::kProbes, 5);
  usage.Describe(Technique::kProbes, "1-byte reads");
  EXPECT_TRUE(usage.used(Technique::kProbes));
  EXPECT_EQ(usage.count(Technique::kProbes), 5u);
  EXPECT_EQ(usage.note(Technique::kProbes), "1-byte reads");
}

TEST(MicrobenchTest, MeasuresSaneParameters) {
  Os os(PlatformProfile::Linux22());
  SimSys sys(&os, os.default_pid());
  MicrobenchOptions options;
  options.mem_hint_bytes = os.config().phys_mem_bytes;
  options.disk_test_bytes = 64ULL * 1024 * 1024;  // keep the test quick
  Microbench bench(&sys, options);
  ParamRepository repo;
  ASSERT_TRUE(bench.RunAll(&repo));

  // Disk sequential bandwidth should be near the modeled media rate.
  const double bw = repo.Get(params::kDiskSeqBandwidthMbs).value();
  EXPECT_GT(bw, 10.0);
  EXPECT_LT(bw, 25.0);
  // Random page access is milliseconds.
  const double rnd = repo.Get(params::kDiskRandomAccessNs).value();
  EXPECT_GT(rnd, 1e6);
  EXPECT_LT(rnd, 20e6);
  // Memory copy far faster than disk.
  const double copy = repo.Get(params::kMemCopyMbs).value();
  EXPECT_GT(copy, bw * 5);
  // Touch is sub-microsecond; zero-fill is microseconds but far below disk.
  EXPECT_LT(repo.Get(params::kMemTouchNs).value(), 1000.0);
  EXPECT_GT(repo.Get(params::kMemZeroFillNs).value(),
            repo.Get(params::kMemTouchNs).value());
  EXPECT_LT(repo.Get(params::kMemZeroFillNs).value(), 100'000.0);
  // Probe hit is microseconds.
  EXPECT_LT(repo.Get(params::kCacheProbeHitNs).value(), 20'000.0);
  // Calibrated access unit lands in a plausible band (the paper found 20 MB).
  const double au = repo.Get(params::kFccdAccessUnitBytes).value();
  EXPECT_GE(au, 1.0 * 1024 * 1024);
  EXPECT_LE(au, 40.0 * 1024 * 1024);

  bench.Cleanup();
}

}  // namespace
}  // namespace gray
