#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/gray/sim_sys.h"
#include "src/gray/toolbox/microbench.h"
#include "src/gray/toolbox/param_repository.h"
#include "src/gray/toolbox/stopwatch.h"
#include "src/gray/toolbox/techniques.h"

namespace gray {
namespace {

using graysim::Os;
using graysim::PlatformProfile;

TEST(ParamRepositoryTest, SetGetRoundTrip) {
  ParamRepository repo;
  EXPECT_FALSE(repo.Get("x").has_value());
  repo.Set("x", 3.5);
  EXPECT_DOUBLE_EQ(repo.Get("x").value(), 3.5);
  EXPECT_DOUBLE_EQ(repo.GetOr("missing", 7.0), 7.0);
}

TEST(ParamRepositoryTest, SerializeDeserializeRoundTrip) {
  ParamRepository repo;
  repo.Set(params::kDiskSeqBandwidthMbs, 19.75);
  repo.Set(params::kMemTouchNs, 150.0);
  ParamRepository copy;
  ASSERT_TRUE(copy.Deserialize(repo.Serialize()));
  EXPECT_DOUBLE_EQ(copy.Get(params::kDiskSeqBandwidthMbs).value(), 19.75);
  EXPECT_DOUBLE_EQ(copy.Get(params::kMemTouchNs).value(), 150.0);
}

TEST(ParamRepositoryTest, DeserializeSkipsCommentsRejectsGarbage) {
  ParamRepository repo;
  EXPECT_TRUE(repo.Deserialize("# comment\nkey 1.5\n\n"));
  EXPECT_DOUBLE_EQ(repo.Get("key").value(), 1.5);
  ParamRepository bad;
  EXPECT_FALSE(bad.Deserialize("key notanumber\n"));
}

TEST(ParamRepositoryTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gb_params_test.txt";
  ParamRepository repo;
  repo.Set("a.b", 42.0);
  ASSERT_TRUE(repo.SaveToFile(path));
  ParamRepository loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));
  EXPECT_DOUBLE_EQ(loaded.Get("a.b").value(), 42.0);
  std::remove(path.c_str());
}

TEST(ParamRepositoryTest, SaveLeavesNoTempFileBehind) {
  const std::string path = ::testing::TempDir() + "/gb_params_atomic.txt";
  ParamRepository repo;
  repo.Set("k", 1.0);
  ASSERT_TRUE(repo.SaveToFile(path));
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file must be renamed away";
  std::remove(path.c_str());
}

// The corruption-recovery contract: a truncated or mangled repository file
// (crash mid-save before SaveToFile was atomic, disk error, stray editor)
// must never half-load. LoadFromFile reports failure and leaves the
// in-memory repository exactly as it was, so the ICLs fall back to their
// built-in defaults instead of mixing measured and garbage thresholds.
TEST(ParamRepositoryTest, LoadRejectsTruncatedFileAndKeepsDefaults) {
  const std::string path = ::testing::TempDir() + "/gb_params_trunc.txt";
  ParamRepository repo;
  repo.Set("disk.seq_bandwidth_mbs", 19.75);
  repo.Set("mem.touch_ns", 150.0);
  ASSERT_TRUE(repo.SaveToFile(path));

  // Simulate a crash mid-write: keep only the first half of the bytes
  // (which also cuts off the end trailer).
  std::string full;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    full = buf.str();
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << full.substr(0, full.size() / 2);
  }

  ParamRepository loaded;
  loaded.Set("preexisting", 7.0);
  EXPECT_FALSE(loaded.LoadFromFile(path));
  EXPECT_EQ(loaded.size(), 1u) << "failed load must not leak partial entries";
  EXPECT_DOUBLE_EQ(loaded.GetOr("preexisting", 0.0), 7.0);
  std::remove(path.c_str());
}

TEST(ParamRepositoryTest, LoadRejectsMissingTrailerAndGarbage) {
  const std::string path = ::testing::TempDir() + "/gb_params_bad.txt";
  // Legacy-style file without the trailer: complete-looking but unverifiable.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "a.b 1.5\n";
  }
  ParamRepository repo;
  EXPECT_FALSE(repo.LoadFromFile(path));
  EXPECT_EQ(repo.size(), 0u);
  // Trailer present but the count disagrees (a spliced file).
  {
    std::ofstream out(path, std::ios::trunc);
    out << "a.b 1.5\n# gbparams-end n=2\n";
  }
  EXPECT_FALSE(repo.LoadFromFile(path));
  // A malformed value line fails even with a correct trailer.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "a.b notanumber\n# gbparams-end n=1\n";
  }
  EXPECT_FALSE(repo.LoadFromFile(path));
  EXPECT_EQ(repo.size(), 0u);
  std::remove(path.c_str());
}

TEST(ParamRepositoryTest, DeserializeIsAllOrNothing) {
  ParamRepository repo;
  repo.Set("keep", 1.0);
  EXPECT_FALSE(repo.Deserialize("good 2.0\nbad line here x\n"));
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_FALSE(repo.Has("good")) << "entries before the error must not leak in";
  // Trailer/count mismatch is rejected too (Serialize always writes one).
  EXPECT_FALSE(repo.Deserialize("good 2.0\n# gbparams-end n=5\n"));
  EXPECT_FALSE(repo.Has("good"));
}

TEST(StopwatchTest, MeasuresVirtualTime) {
  graysim::MachineConfig cfg;
  cfg.timing_jitter = 0.0;  // exact expectations below
  Os os(PlatformProfile::Linux22(), cfg);
  SimSys sys(&os, os.default_pid());
  Stopwatch sw(&sys);
  os.Compute(os.default_pid(), graysim::Millis(3.0));
  EXPECT_EQ(sw.Elapsed(), graysim::Millis(3.0));
  sw.Restart();
  EXPECT_EQ(sw.Elapsed(), 0u);
}

TEST(TechniqueUsageTest, RecordsAndDescribes) {
  TechniqueUsage usage;
  EXPECT_FALSE(usage.used(Technique::kProbes));
  usage.Record(Technique::kProbes, 5);
  usage.Describe(Technique::kProbes, "1-byte reads");
  EXPECT_TRUE(usage.used(Technique::kProbes));
  EXPECT_EQ(usage.count(Technique::kProbes), 5u);
  EXPECT_EQ(usage.note(Technique::kProbes), "1-byte reads");
}

TEST(MicrobenchTest, MeasuresSaneParameters) {
  Os os(PlatformProfile::Linux22());
  SimSys sys(&os, os.default_pid());
  MicrobenchOptions options;
  options.mem_hint_bytes = os.config().phys_mem_bytes;
  options.disk_test_bytes = 64ULL * 1024 * 1024;  // keep the test quick
  Microbench bench(&sys, options);
  ParamRepository repo;
  ASSERT_TRUE(bench.RunAll(&repo));

  // Disk sequential bandwidth should be near the modeled media rate.
  const double bw = repo.Get(params::kDiskSeqBandwidthMbs).value();
  EXPECT_GT(bw, 10.0);
  EXPECT_LT(bw, 25.0);
  // Random page access is milliseconds.
  const double rnd = repo.Get(params::kDiskRandomAccessNs).value();
  EXPECT_GT(rnd, 1e6);
  EXPECT_LT(rnd, 20e6);
  // Memory copy far faster than disk.
  const double copy = repo.Get(params::kMemCopyMbs).value();
  EXPECT_GT(copy, bw * 5);
  // Touch is sub-microsecond; zero-fill is microseconds but far below disk.
  EXPECT_LT(repo.Get(params::kMemTouchNs).value(), 1000.0);
  EXPECT_GT(repo.Get(params::kMemZeroFillNs).value(),
            repo.Get(params::kMemTouchNs).value());
  EXPECT_LT(repo.Get(params::kMemZeroFillNs).value(), 100'000.0);
  // Probe hit is microseconds.
  EXPECT_LT(repo.Get(params::kCacheProbeHitNs).value(), 20'000.0);
  // Calibrated access unit lands in a plausible band (the paper found 20 MB).
  const double au = repo.Get(params::kFccdAccessUnitBytes).value();
  EXPECT_GE(au, 1.0 * 1024 * 1024);
  EXPECT_LE(au, 40.0 * 1024 * 1024);

  bench.Cleanup();
}

}  // namespace
}  // namespace gray
