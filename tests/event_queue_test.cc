// Differential tests pinning the timer-wheel EventQueue's dispatch order to
// the reference binary heap (src/sim/ref_event_heap.h — the pre-wheel
// implementation, kept verbatim as an oracle). Both queues draw tie values
// from identically seeded RNGs, so feeding them the same schedule in the
// same order must produce the exact same (when, band, tie, seq) dispatch
// sequence — including same-instant band/tie collisions, events scheduled
// from within running closures, schedule-into-the-past, and far-future
// events that cross the wheel's overflow horizon.
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/ref_event_heap.h"
#include "src/sim/rng.h"

namespace graysim {
namespace {

using Band = EventQueue::Band;

constexpr std::uint64_t kTieSeed = 0x7E57C0DE5EEDULL;

// Drives one queue implementation through a seeded random schedule and
// returns the token sequence in dispatch order. The script RNG is consumed
// inside closures too (fan-out decisions), so two Driver instances stay in
// lockstep exactly as long as their dispatch orders match — which is the
// property under test.
template <typename Queue>
class Driver {
 public:
  Driver(std::uint64_t tie_seed, std::uint64_t script_seed, int fanout_percent)
      : queue_(tie_seed), rng_(script_seed), fanout_percent_(fanout_percent) {}

  void ScheduleRandom(Nanos base, Nanos spread) {
    const Nanos when = base + rng_.Below(spread);
    const Band band = rng_.Below(2) == 0 ? Band::kCompletion : Band::kWake;
    Schedule(when, band);
  }

  void Schedule(Nanos when, Band band) {
    const std::uint64_t token = ++next_token_;
    Driver* self = this;
    queue_.ScheduleAt(when, band, EventFn([self, token, when] {
                        self->log_.push_back(token);
                        if (self->fanout_percent_ > 0 &&
                            self->rng_.Below(100) <
                                static_cast<std::uint64_t>(self->fanout_percent_)) {
                          // Children land at or after the parent's instant,
                          // exercising schedule-from-within-closure on both
                          // the current tick and nearby future ticks.
                          self->ScheduleRandom(when, 5000);
                        }
                      }));
  }

  std::vector<std::uint64_t> Drain() {
    SimClock clock;
    while (queue_.RunNext(&clock)) {
    }
    return log_;
  }

  [[nodiscard]] Queue& queue() { return queue_; }

 private:
  Queue queue_;
  Rng rng_;
  int fanout_percent_;
  std::uint64_t next_token_ = 0;
  std::vector<std::uint64_t> log_;
};

// Runs the same seeded script through the wheel and the heap and expects
// identical dispatch sequences.
void ExpectSameOrder(std::uint64_t script_seed, int initial, Nanos spread,
                     int fanout_percent) {
  Driver<EventQueue> wheel(kTieSeed, script_seed, fanout_percent);
  Driver<RefEventHeap> heap(kTieSeed, script_seed, fanout_percent);
  for (int i = 0; i < initial; ++i) {
    wheel.ScheduleRandom(0, spread);
  }
  for (int i = 0; i < initial; ++i) {
    heap.ScheduleRandom(0, spread);
  }
  const std::vector<std::uint64_t> wheel_log = wheel.Drain();
  const std::vector<std::uint64_t> heap_log = heap.Drain();
  ASSERT_EQ(wheel_log.size(), heap_log.size());
  EXPECT_EQ(wheel_log, heap_log) << "script_seed=" << script_seed;
}

TEST(EventQueueDifferential, RandomizedSchedulesMatchHeap) {
  // Spreads chosen to exercise every placement path: one tick, one level-0
  // rotation, deep wheel levels, and the overflow horizon (> 2^42 ns).
  const Nanos spreads[] = {1024, 1 << 18, 1ull << 30, 1ull << 44};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const Nanos spread : spreads) {
      ExpectSameOrder(seed * 0x9E3779B9ULL, /*initial=*/512, spread,
                      /*fanout_percent=*/0);
    }
  }
}

TEST(EventQueueDifferential, ScheduleFromWithinClosureMatchesHeap) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ExpectSameOrder(seed * 0xBF58476DULL, /*initial=*/256, /*spread=*/1 << 20,
                    /*fanout_percent=*/60);
  }
}

TEST(EventQueueDifferential, SameInstantBandAndTieCollisionsMatchHeap) {
  Driver<EventQueue> wheel(kTieSeed, 0, 0);
  Driver<RefEventHeap> heap(kTieSeed, 0, 0);
  // Many events at the same instants with alternating bands: ordering is
  // decided purely by (band, tie, seq), never by container internals.
  const Nanos instants[] = {0, 1023, 1024, 4096, 1ull << 33, (1ull << 44) + 512};
  for (int rep = 0; rep < 32; ++rep) {
    for (const Nanos when : instants) {
      wheel.Schedule(when, rep % 2 == 0 ? Band::kCompletion : Band::kWake);
    }
  }
  for (int rep = 0; rep < 32; ++rep) {
    for (const Nanos when : instants) {
      heap.Schedule(when, rep % 2 == 0 ? Band::kCompletion : Band::kWake);
    }
  }
  EXPECT_EQ(wheel.Drain(), heap.Drain());
}

TEST(EventQueueDifferential, NextTimeIsExactAtEveryStep) {
  EventQueue wheel(kTieSeed);
  RefEventHeap heap(kTieSeed);
  Rng rng(0x5EED5EED);
  std::uint64_t sink = 0;
  SimClock wheel_clock;
  SimClock heap_clock;
  for (int round = 0; round < 400; ++round) {
    const int burst = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < burst; ++i) {
      // Absolute times, sometimes in the past of the advancing clocks.
      const Nanos when = rng.Below(1ull << 44);
      const Band band = rng.Below(2) == 0 ? Band::kCompletion : Band::kWake;
      wheel.ScheduleAt(when, band, EventFn([&sink] { ++sink; }));
      heap.ScheduleAt(when, band, EventFn([&sink] { ++sink; }));
    }
    ASSERT_EQ(wheel.next_time(), heap.next_time()) << "round " << round;
    ASSERT_EQ(wheel.size(), heap.size());
    (void)wheel.RunNext(&wheel_clock);
    (void)heap.RunNext(&heap_clock);
    ASSERT_EQ(wheel_clock.now(), heap_clock.now()) << "round " << round;
  }
  while (wheel.RunNext(&wheel_clock)) {
  }
  while (heap.RunNext(&heap_clock)) {
  }
  EXPECT_EQ(wheel_clock.now(), heap_clock.now());
  EXPECT_TRUE(wheel.empty());
  EXPECT_TRUE(heap.empty());
}

TEST(EventQueueDifferential, RunDueHonorsDeadlineLikeHeap) {
  Driver<EventQueue> wheel(kTieSeed, 0, 0);
  Driver<RefEventHeap> heap(kTieSeed, 0, 0);
  for (int i = 0; i < 200; ++i) {
    const Nanos when = static_cast<Nanos>(i) * 700;
    wheel.Schedule(when, Band::kCompletion);
  }
  for (int i = 0; i < 200; ++i) {
    const Nanos when = static_cast<Nanos>(i) * 700;
    heap.Schedule(when, Band::kCompletion);
  }
  // Partial drains at arbitrary deadlines must release the same prefix.
  for (const Nanos deadline : {Nanos{100}, Nanos{7000}, Nanos{7001}, Nanos{50000}}) {
    wheel.queue().RunDue(deadline);
    heap.queue().RunDue(deadline);
    ASSERT_EQ(wheel.queue().size(), heap.queue().size()) << "deadline " << deadline;
  }
  EXPECT_EQ(wheel.Drain(), heap.Drain());
}

}  // namespace
}  // namespace graysim
