// Property-style parameterized tests: invariants that must hold across
// policy/parameter sweeps, exercised with randomized (seeded) inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "src/disk/disk.h"
#include "src/fs/ffs.h"
#include "src/gray/toolbox/stats.h"
#include "src/mem/mem_system.h"
#include "src/sim/rng.h"
#include "tests/test_util.h"

namespace graysim {
namespace {

// ---------- MemSystem invariants across policies ----------

class MemPolicyProperty : public ::testing::TestWithParam<MemPolicy> {};

TEST_P(MemPolicyProperty, AccountingSurvivesRandomOperations) {
  MemSystem::Config config{128, GetParam(), 32};
  MemSystem mem(config);
  std::uint64_t evicted = 0;
  FnEviction handler([&](const Page&) {
    ++evicted;
    return Nanos{0};
  });
  mem.set_evict_handler(&handler);

  // Phase 1 — below capacity: insert/touch/remove with live references; no
  // evictions may occur, and accounting must balance exactly.
  Rng rng(GetParam() == MemPolicy::kUnifiedLru ? 11 : 22);
  std::vector<MemSystem::PageRef> live;
  std::uint64_t seq = 0;
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t op = rng.Below(10);
    const std::uint64_t soft_cap = 24;  // stay under every partition limit
    if (op < 5 && live.size() < soft_cap) {
      const PageKind kind = rng.Chance(0.5) ? PageKind::kFile : PageKind::kAnon;
      Nanos cost = 0;
      auto ref = mem.Insert(Page{kind, rng.Below(4), seq++}, &cost);
      ASSERT_NE(ref, kNoFrame);
      live.push_back(ref);
    } else if (op < 8 && !live.empty()) {
      mem.Touch(live[rng.Below(live.size())]);
    } else if (!live.empty()) {
      const std::size_t victim = rng.Below(live.size());
      mem.Remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_EQ(evicted, 0u) << "no eviction may happen below capacity";
    ASSERT_EQ(mem.used_pages(), live.size());
    ASSERT_EQ(mem.used_pages(), mem.file_pages() + mem.anon_pages());
  }
  for (const auto& ref : live) {
    mem.Remove(ref);
  }
  ASSERT_EQ(mem.used_pages(), 0u);

  // Phase 2 — hammer past capacity with inserts only: the pool must never
  // exceed its limits, and inserted == resident + evicted + denied.
  std::uint64_t inserted = 0;
  std::uint64_t denied = 0;
  for (int step = 0; step < 2000; ++step) {
    const PageKind kind = rng.Chance(0.5) ? PageKind::kFile : PageKind::kAnon;
    Nanos cost = 0;
    if (mem.Insert(Page{kind, rng.Below(4), seq++}, &cost) != kNoFrame) {
      ++inserted;
    } else {
      ++denied;
    }
    ASSERT_LE(mem.used_pages(), mem.total_pages());
    ASSERT_EQ(mem.used_pages(), mem.file_pages() + mem.anon_pages());
    ASSERT_EQ(inserted, mem.used_pages() + evicted);
    if (GetParam() == MemPolicy::kPartitionedFixedFile) {
      ASSERT_LE(mem.file_pages(), config.file_cache_pages);
    }
  }
  // Denials only ever happen under the sticky policy.
  if (GetParam() != MemPolicy::kStickyFile) {
    EXPECT_EQ(denied, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MemPolicyProperty,
                         ::testing::Values(MemPolicy::kUnifiedLru,
                                           MemPolicy::kPartitionedFixedFile,
                                           MemPolicy::kStickyFile));

// ---------- FFS allocation invariants across allocators ----------

class FfsAllocatorProperty : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(FfsAllocatorProperty, FreeBlockAccountingUnderChurn) {
  FsParams params;
  params.allocator = GetParam();
  Ffs fs(params, 2ULL * 1024 * 1024 * 1024);
  const std::uint64_t initial_free = fs.free_blocks();

  Rng rng(7);
  std::vector<std::pair<std::string, std::uint64_t>> files;  // path, size
  std::uint64_t next_name = 0;
  std::uint64_t live_blocks = 0;
  for (int step = 0; step < 2000; ++step) {
    if (files.size() < 50 && rng.Chance(0.6)) {
      const std::string path = "/f" + std::to_string(next_name++);
      Inum inum = kInvalidInum;
      ASSERT_EQ(fs.Create(path, &inum), FsErr::kOk);
      const std::uint64_t size = (1 + rng.Below(64)) * 4096;
      ASSERT_EQ(fs.Resize(inum, size, 0), FsErr::kOk);
      files.emplace_back(path, size);
      live_blocks += size / 4096;
    } else if (!files.empty()) {
      const std::size_t victim = rng.Below(files.size());
      live_blocks -= files[victim].second / 4096;
      ASSERT_EQ(fs.Unlink(files[victim].first), FsErr::kOk);
      files.erase(files.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_EQ(fs.free_blocks(), initial_free - live_blocks);
  }
  // Delete everything: all blocks must return.
  for (const auto& [path, size] : files) {
    ASSERT_EQ(fs.Unlink(path), FsErr::kOk);
  }
  EXPECT_EQ(fs.free_blocks(), initial_free);
}

TEST_P(FfsAllocatorProperty, NoTwoFilesShareABlock) {
  FsParams params;
  params.allocator = GetParam();
  Ffs fs(params, 1ULL * 1024 * 1024 * 1024);
  Rng rng(13);
  std::vector<Inum> inums;
  for (int i = 0; i < 60; ++i) {
    Inum inum = kInvalidInum;
    ASSERT_EQ(fs.Create("/f" + std::to_string(i), &inum), FsErr::kOk);
    ASSERT_EQ(fs.Resize(inum, (1 + rng.Below(32)) * 4096, 0), FsErr::kOk);
    inums.push_back(inum);
    if (i % 5 == 4) {  // churn to create holes
      ASSERT_EQ(fs.Unlink("/f" + std::to_string(i - 2)), FsErr::kOk);
      std::erase(inums, inums[inums.size() - 3]);
    }
  }
  std::vector<std::uint64_t> blocks;
  for (const Inum inum : inums) {
    InodeAttr attr;
    ASSERT_EQ(fs.GetAttr(inum, &attr), FsErr::kOk);
    for (std::uint64_t b = 0; b < attr.blocks; ++b) {
      std::uint64_t disk_block = 0;
      ASSERT_EQ(fs.BlockOf(inum, b, &disk_block), FsErr::kOk);
      blocks.push_back(disk_block);
    }
  }
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(std::adjacent_find(blocks.begin(), blocks.end()), blocks.end())
      << "two files own the same disk block";
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, FfsAllocatorProperty,
                         ::testing::Values(AllocatorKind::kPacked,
                                           AllocatorKind::kSparse));

// ---------- disk model properties across geometries ----------

class DiskGeometryProperty : public ::testing::TestWithParam<double> {};

TEST_P(DiskGeometryProperty, CostsPositiveAndSeekBounded) {
  DiskGeometry geometry = DiskGeometry::Ibm9Lzx();
  geometry.transfer_mb_per_s *= GetParam();
  Disk disk(geometry, 0);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t offset =
        rng.Below(geometry.capacity_bytes - 64 * 1024);
    const std::uint64_t bytes = (1 + rng.Below(16)) * 4096;
    const Nanos t = disk.Access(offset, bytes, rng.Chance(0.5));
    ASSERT_GT(t, 0u);
    ASSERT_LT(t, Millis(geometry.full_stroke_seek_ms) + Millis(60.0 / geometry.rpm * 1000.0) +
                     disk.TransferTime(bytes) + Millis(1.0) +
                     Micros(geometry.controller_overhead_us));
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, DiskGeometryProperty, ::testing::Values(0.5, 1.0, 8.0));

// ---------- statistics properties over random samples ----------

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, PearsonWithinBounds) {
  Rng rng(GetParam());
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.NextDouble() * 100.0);
    ys.push_back(rng.NextDouble() * 100.0 + (rng.Chance(0.5) ? xs.back() : 0.0));
  }
  const double r = gray::Pearson(xs, ys);
  EXPECT_GE(r, -1.0 - 1e-12);
  EXPECT_LE(r, 1.0 + 1e-12);
}

TEST_P(StatsProperty, MedianBetweenMinAndMax) {
  Rng rng(GetParam() * 31);
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) {
    xs.push_back(rng.NextDouble() * 1000.0 - 500.0);
  }
  const double med = gray::Median(xs);
  EXPECT_GE(med, *std::min_element(xs.begin(), xs.end()));
  EXPECT_LE(med, *std::max_element(xs.begin(), xs.end()));
}

TEST_P(StatsProperty, TwoMeansThresholdSeparatesKnownMixture) {
  Rng rng(GetParam() * 97);
  std::vector<double> xs;
  const double low_center = 1000.0;
  const double high_center = 1'000'000.0;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(low_center * (0.8 + 0.4 * rng.NextDouble()));
    xs.push_back(high_center * (0.8 + 0.4 * rng.NextDouble()));
  }
  const gray::Clusters c = gray::TwoMeans(xs);
  ASSERT_TRUE(c.separated);
  EXPECT_GT(c.threshold, low_center * 1.2);
  EXPECT_LT(c.threshold, high_center * 0.8);
  EXPECT_EQ(c.low_count, 60u);
  EXPECT_EQ(c.high_count, 60u);
}

TEST_P(StatsProperty, RunningStatsMatchesBatchComputation) {
  Rng rng(GetParam() * 131);
  gray::RunningStats running;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 1e6 - 5e5;
    xs.push_back(x);
    running.Add(x);
  }
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) {
    m2 += (x - mean) * (x - mean);
  }
  EXPECT_NEAR(running.mean(), mean, 1e-6);
  EXPECT_NEAR(running.variance(), m2 / static_cast<double>(xs.size() - 1), 1e-3);
}

TEST_P(StatsProperty, DiscardOutliersNeverDropsMajority) {
  Rng rng(GetParam() * 17);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(100.0 + rng.NextDouble() * 10.0);
  }
  xs.push_back(1e9);  // one wild outlier
  const std::vector<double> kept = gray::DiscardOutliers(xs);
  EXPECT_GE(kept.size(), xs.size() / 2);
  EXPECT_EQ(std::count(kept.begin(), kept.end(), 1e9), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(1u, 42u, 777u, 31337u));

// ---------- RNG sanity ----------

TEST(RngProperty, BelowIsAlwaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t bound = 1 + (static_cast<std::uint64_t>(i) % 1000);
    ASSERT_LT(rng.Below(bound), bound);
  }
}

TEST(RngProperty, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngProperty, RoughlyUniform) {
  Rng rng(12345);
  std::vector<int> buckets(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.Below(10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);
  }
}

}  // namespace
}  // namespace graysim
