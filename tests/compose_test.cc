#include "src/gray/compose/compose.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/gray/sim_sys.h"
#include "src/workloads/filegen.h"

namespace gray {
namespace {

using graysim::Os;
using graysim::Pid;
using graysim::PlatformProfile;

constexpr std::uint64_t kMb = 1024 * 1024;

TEST(ComposeTest, CachedFilesFirstThenInodeOrder) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  const std::vector<std::string> paths =
      graywork::MakeFileSet(os, pid, "/d0/dir", 12, 10 * kMb);
  os.FlushFileCache();
  // Warm files 9 and 4 (deliberately out of i-number order).
  for (const int i : {9, 4}) {
    const int fd = os.Open(pid, paths[static_cast<std::size_t>(i)]);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(os.Pread(pid, fd, {}, 10 * kMb, 0), static_cast<std::int64_t>(10 * kMb));
    ASSERT_EQ(os.Close(pid, fd), 0);
  }
  SimSys sys(&os, pid);
  Compose compose(&sys);
  const ComposedOrder result = compose.OrderFiles(paths);
  ASSERT_EQ(result.order.size(), paths.size());
  EXPECT_TRUE(result.clustered);
  EXPECT_EQ(result.predicted_in_cache, 2u);
  // The two cached files come first — and in i-number (creation) order,
  // i.e. f4 before f9.
  EXPECT_EQ(result.order[0], "/d0/dir/f4");
  EXPECT_EQ(result.order[1], "/d0/dir/f9");
  // The rest are in creation order too.
  std::vector<std::string> rest(result.order.begin() + 2, result.order.end());
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (i != 4 && i != 9) {
      expected.push_back(paths[i]);
    }
  }
  EXPECT_EQ(rest, expected);
}

TEST(ComposeTest, AllColdFallsBackToInodeOrder) {
  Os os(PlatformProfile::Linux22());
  const Pid pid = os.default_pid();
  const std::vector<std::string> paths =
      graywork::MakeFileSet(os, pid, "/d0/dir", 8, 10 * kMb);
  os.FlushFileCache();
  SimSys sys(&os, pid);
  Compose compose(&sys);
  // Shuffle the input to prove ordering comes from i-numbers.
  std::vector<std::string> shuffled = {paths[5], paths[1], paths[7], paths[0],
                                       paths[3], paths[6], paths[2], paths[4]};
  const ComposedOrder result = compose.OrderFiles(shuffled);
  ASSERT_EQ(result.order.size(), paths.size());
  // Probes fault pages in as they go (Heisenberg), so some later files may
  // cluster as "cached"; regardless, every group must be inode-sorted.
  std::vector<std::string> expected(paths.begin(), paths.end());
  if (!result.clustered) {
    EXPECT_EQ(result.order, expected);
  } else {
    // Verify both segments are subsequences in creation order.
    auto in_creation_order = [&](auto begin, auto end) {
      std::size_t last = 0;
      for (auto it = begin; it != end; ++it) {
        const auto pos = std::find(paths.begin(), paths.end(), *it) - paths.begin();
        if (it != begin && static_cast<std::size_t>(pos) < last) {
          return false;
        }
        last = static_cast<std::size_t>(pos);
      }
      return true;
    };
    const auto split = result.order.begin() +
                       static_cast<std::ptrdiff_t>(result.predicted_in_cache);
    EXPECT_TRUE(in_creation_order(result.order.begin(), split));
    EXPECT_TRUE(in_creation_order(split, result.order.end()));
  }
}

TEST(ComposeTest, EmptyInput) {
  Os os(PlatformProfile::Linux22());
  SimSys sys(&os, os.default_pid());
  Compose compose(&sys);
  const ComposedOrder result = compose.OrderFiles({});
  EXPECT_TRUE(result.order.empty());
}

}  // namespace
}  // namespace gray
