// SimDevice: the generic device-queue layer both DiskQueue and NetDevice
// are built on.
//
// Two angles:
//  (1) Unit tests against a fake ServiceModel pin the queueing discipline
//      itself — FCFS busy-timeline serialization, contiguous-run
//      coalescing, depth accounting through completion events, and the
//      jitter/service-scale hook order.
//  (2) A differential golden test pins the DiskQueue-on-SimDevice rebase:
//      a mixed read/write multi-process workload must reproduce the exact
//      kernel counters captured from the pre-refactor DiskQueue, on every
//      platform profile. Any timing drift in the extraction — a reordered
//      completion, a lost coalesce — moves these numbers.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/os/machine.h"
#include "src/os/os.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_device.h"

namespace graysim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;

// ---- (1) unit tests: fake physics, real queueing ----

// Fixed service time per request; records what the queue told it.
class FakeModel : public SimDevice::ServiceModel {
 public:
  explicit FakeModel(Nanos service) : service_(service) {}

  Nanos Service(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                bool coalesce) override {
    calls.push_back(Call{offset, bytes, is_write, coalesce});
    return coalesce ? service_ / 2 : service_;
  }

  struct Call {
    std::uint64_t offset;
    std::uint64_t bytes;
    bool is_write;
    bool coalesce;
  };
  std::vector<Call> calls;

 private:
  Nanos service_;
};

struct DeviceRig {
  SimClock clock;
  EventQueue events{/*tie_seed=*/1};
  FakeModel model{Micros(100.0)};
  SimDevice dev{&model, &clock, &events};

  void DrainTo(Nanos t) {
    clock.AdvanceTo(t);
    events.RunDue(t);
  }
};

TEST(SimDeviceQueue, RequestsSerializeFcfsOnTheBusyTimeline) {
  DeviceRig rig;
  // Non-contiguous offsets so coalescing never triggers.
  const Nanos c1 = rig.dev.Submit(0, 512, /*is_write=*/false, nullptr);
  const Nanos c2 = rig.dev.Submit(kMb, 512, /*is_write=*/false, nullptr);
  EXPECT_EQ(c1, Micros(100.0));
  EXPECT_EQ(c2, Micros(200.0)) << "second request must queue behind the first";
  EXPECT_EQ(rig.dev.busy_until(), c2);
  EXPECT_EQ(rig.dev.depth(), 2u);
  EXPECT_EQ(rig.dev.max_depth(), 2u);
  EXPECT_EQ(rig.dev.total_requests(), 2u);

  // An idle gap resets the timeline start but keeps the counters.
  rig.DrainTo(Micros(500.0));
  EXPECT_EQ(rig.dev.depth(), 0u) << "completion events must decrement depth";
  const Nanos c3 = rig.dev.Submit(2 * kMb, 512, false, nullptr);
  EXPECT_EQ(c3, Micros(600.0)) << "idle device starts service at now, not busy_until";
  EXPECT_EQ(rig.dev.max_depth(), 2u);
}

TEST(SimDeviceQueue, ContiguousSameDirectionRunsCoalesce) {
  DeviceRig rig;
  (void)rig.dev.Submit(0, 4096, /*is_write=*/true, nullptr);
  (void)rig.dev.Submit(4096, 4096, /*is_write=*/true, nullptr);  // extends the tail
  (void)rig.dev.Submit(8192, 4096, /*is_write=*/false, nullptr);  // direction flip
  (void)rig.dev.Submit(16384, 4096, /*is_write=*/false, nullptr);  // gap
  ASSERT_EQ(rig.model.calls.size(), 4u);
  EXPECT_FALSE(rig.model.calls[0].coalesce);
  EXPECT_TRUE(rig.model.calls[1].coalesce) << "contiguous same-direction extends the tail";
  EXPECT_FALSE(rig.model.calls[2].coalesce) << "a read does not merge into a write run";
  EXPECT_FALSE(rig.model.calls[3].coalesce) << "a gap breaks the run";
  EXPECT_EQ(rig.dev.coalesced_requests(), 1u);
  EXPECT_EQ(rig.dev.total_requests(), 4u);
}

TEST(SimDeviceQueue, CoalescingCanBeDisabled) {
  DeviceRig rig;
  rig.dev.set_coalescing(false);  // the net link has no seek/stream distinction
  (void)rig.dev.Submit(0, 4096, true, nullptr);
  (void)rig.dev.Submit(4096, 4096, true, nullptr);
  EXPECT_FALSE(rig.model.calls[1].coalesce);
  EXPECT_EQ(rig.dev.coalesced_requests(), 0u);
}

TEST(SimDeviceQueue, AnIdleDeviceNeverCoalescesIntoACompletedRun) {
  DeviceRig rig;
  (void)rig.dev.Submit(0, 4096, true, nullptr);
  rig.DrainTo(Micros(150.0));  // request completed; device idle
  (void)rig.dev.Submit(4096, 4096, true, nullptr);
  EXPECT_FALSE(rig.model.calls[1].coalesce)
      << "the controller cannot keep streaming into a run that already finished";
}

TEST(SimDeviceQueue, JitterThenScaleAppliesInOrder) {
  DeviceRig rig;
  rig.dev.set_jitter([](Nanos service) { return service + Micros(10.0); });
  rig.dev.set_service_scale([](Nanos service) { return service * 2; });
  // (100us + 10us) * 2: the chaos scale multiplies the already-jittered time.
  EXPECT_EQ(rig.dev.Submit(0, 512, false, nullptr), Micros(220.0));
}

TEST(SimDeviceQueue, CompletionCallbackRunsAtTheCompletionInstant) {
  DeviceRig rig;
  Nanos fired_at = 0;
  const Nanos completion =
      rig.dev.Submit(0, 512, false, [&rig, &fired_at] { fired_at = rig.clock.now(); });
  rig.DrainTo(completion);
  EXPECT_EQ(fired_at, completion);
  EXPECT_EQ(rig.dev.service_hist().count(), 1u);
}

// ---- (2) differential golden: DiskQueue on SimDevice ----

// Counters captured from the pre-SimDevice DiskQueue implementation running
// the workload below. The rebase contract is ZERO movement: same virtual
// time, same syscall/cache/disk totals, same per-disk queue statistics.
struct DiskGolden {
  Nanos virtual_time;
  std::uint64_t syscalls, cache_hits, cache_misses, disk_reads, disk_writes;
  std::uint64_t readahead_pages, writeback_pages, queued_disk_requests;
  struct PerDisk {
    std::uint64_t total_requests, coalesced_requests, max_depth;
    Nanos busy_until;
  } disk[2];
};

// The disk timing tables are profile-independent (profiles differ in cache
// and scheduling policy knobs this workload does not reach), so all three
// platforms land on the same counters — itself a pinned fact.
constexpr DiskGolden kDiskGolden = {1138983046ull,
                                    93ull,
                                    771ull,
                                    49ull,
                                    40ull,
                                    5ull,
                                    0ull,
                                    3840ull,
                                    45ull,
                                    {{25ull, 0ull, 2ull, 1138981546ull},
                                     {20ull, 0ull, 1ull, 971216004ull}}};

MachineConfig DiffConfig() {
  MachineConfig cfg;
  cfg.phys_mem_bytes = 96 * kMb;
  cfg.kernel_reserved_bytes = 24 * kMb;
  cfg.num_disks = 2;
  return cfg;
}

void MakeFile(Os& os, Pid pid, const std::string& path, std::uint64_t bytes) {
  const int fd = os.Creat(pid, path);
  ASSERT_GE(fd, 0) << path;
  for (std::uint64_t off = 0; off < bytes; off += kMb) {
    (void)os.Pwrite(pid, fd, std::min(kMb, bytes - off), off);
  }
  (void)os.Fsync(pid, fd);
  (void)os.Close(pid, fd);
}

class DiskQueueDifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DiskQueueDifferentialTest, RebasedDiskQueueReproducesCapturedCounters) {
  const std::string name = GetParam();
  const PlatformProfile profile = name == "linux2.2"    ? PlatformProfile::Linux22()
                                  : name == "netbsd1.5" ? PlatformProfile::NetBsd15()
                                                        : PlatformProfile::Solaris7();
  Machine m(profile, DiffConfig());
  Os& os = m.os();
  const Pid pid = os.default_pid();
  for (int d = 0; d < os.num_disks(); ++d) {
    MakeFile(os, pid, "/d" + std::to_string(d) + "/input", 6 * kMb);
  }
  os.FlushFileCache();

  std::vector<std::function<void(Pid)>> bodies;
  for (int i = 0; i < 3; ++i) {
    bodies.push_back([&os, i](Pid p) {
      const std::string input = "/d" + std::to_string(i % os.num_disks()) + "/input";
      const int fd = os.Open(p, input);
      std::uint64_t off = static_cast<std::uint64_t>(i) * 512 * 1024;
      for (int k = 0; k < 16; ++k) {
        (void)os.Pread(p, fd, {}, 256 * 1024, off % (6 * kMb));
        off += 256 * 1024;
      }
      (void)os.Close(p, fd);
      const int out = os.Creat(p, "/d" + std::to_string(i % os.num_disks()) + "/diffout" +
                                      std::to_string(i));
      for (int k = 0; k < 4; ++k) {
        (void)os.Pwrite(p, out, 256 * 1024, static_cast<std::uint64_t>(k) * 256 * 1024);
      }
      (void)os.Fsync(p, out);
      (void)os.Close(p, out);
    });
  }
  os.RunProcesses(bodies);

  const OsStats& s = os.stats();
  EXPECT_EQ(os.Now(), kDiskGolden.virtual_time);
  EXPECT_EQ(s.syscalls, kDiskGolden.syscalls);
  EXPECT_EQ(s.cache_hits, kDiskGolden.cache_hits);
  EXPECT_EQ(s.cache_misses, kDiskGolden.cache_misses);
  EXPECT_EQ(s.disk_reads, kDiskGolden.disk_reads);
  EXPECT_EQ(s.disk_writes, kDiskGolden.disk_writes);
  EXPECT_EQ(s.readahead_pages, kDiskGolden.readahead_pages);
  EXPECT_EQ(s.writeback_pages, kDiskGolden.writeback_pages);
  EXPECT_EQ(s.queued_disk_requests, kDiskGolden.queued_disk_requests);
  for (int d = 0; d < 2; ++d) {
    const DiskQueue& q = os.disk_queue(d);
    EXPECT_EQ(q.total_requests(), kDiskGolden.disk[d].total_requests) << "disk " << d;
    EXPECT_EQ(q.coalesced_requests(), kDiskGolden.disk[d].coalesced_requests)
        << "disk " << d;
    EXPECT_EQ(q.max_depth(), kDiskGolden.disk[d].max_depth) << "disk " << d;
    EXPECT_EQ(q.busy_until(), kDiskGolden.disk[d].busy_until) << "disk " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Platforms, DiskQueueDifferentialTest,
                         ::testing::Values("linux2.2", "netbsd1.5", "solaris7"));

}  // namespace
}  // namespace graysim
