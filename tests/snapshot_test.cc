// Machine snapshot/fork bit-identity tests.
//
// A fork (Machine::Fork of a Machine::Snapshot image) must not merely be
// "equivalent" to the original — its subsequent execution must be
// bit-identical: same virtual times, same OsStats, same chaos decisions,
// same trace. These tests pin that property across all three platform
// profiles with chaos armed, with pending events in flight at the snapshot
// instant (device completions, daemon wakeups, chaos ticks, undelivered
// net messages), through double forks, and through snapshot-of-fork
// round trips. Labeled `snapshot`: CI runs this suite under ASan+UBSan.
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/trace.h"
#include "src/os/machine.h"
#include "src/os/machine_image_io.h"
#include "src/workloads/filegen.h"

namespace graysim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;
constexpr double kChaosIntensity = 0.6;

// Order-sensitive digest of a trace: every retained event's virtual
// timing, payload, track, phase, and name bytes (host_ns excluded — wall
// time legitimately differs between two bit-identical executions).
std::uint64_t TraceDigest(const obs::TraceSink& trace) {
  std::vector<obs::TraceEvent> events;
  trace.Snapshot(&events);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  for (const obs::TraceEvent& e : events) {
    mix(e.virtual_ns);
    mix(e.dur_ns);
    mix(e.arg);
    mix(e.track);
    mix(static_cast<std::uint64_t>(e.phase));
    for (const char c : std::string_view(e.name == nullptr ? "" : e.name)) {
      mix(static_cast<std::uint64_t>(c));
    }
  }
  mix(events.size());
  return h;
}

// Builds cached state worth forking: a file with a warm stripe, dirty
// pages awaiting write-behind, undelivered net messages, and (armed by the
// caller) chaos ticks — so the snapshot instant has real pending events.
void Warm(Machine& machine) {
  Os& os = machine.os();
  const Pid pid = os.default_pid();
  (void)graywork::MakeFile(os, pid, "/d0/warm", 24 * kMb);
  const int fd = os.Open(pid, "/d0/warm");
  for (std::uint64_t off = 0; off < 12 * kMb; off += 512 * 1024) {
    (void)os.Pread(pid, fd, {}, 512 * 1024, off);
  }
  // Dirty without fsync: flush-daemon work and writeback completions stay
  // pending across the snapshot.
  for (std::uint64_t off = 0; off < 4 * kMb; off += 256 * 1024) {
    (void)os.Pwrite(pid, fd, 256 * 1024, 16 * kMb + off);
  }
  (void)os.Close(pid, fd);
  // Two endpoints with messages still on the wire at snapshot time.
  const int a = os.NetEndpoint(pid);
  const int b = os.NetEndpoint(pid);
  (void)os.NetSend(pid, a, b, 48 * 1024, /*tag=*/7);
  (void)os.NetSend(pid, a, b, 16 * 1024, /*tag=*/8);
}

// The divergence detector: a deterministic mixed workload (file reads,
// writes + fsync, anonymous memory, sleeps, net receive) run identically
// on two machines that are supposed to be bit-identical.
void RunContinuation(Machine& machine) {
  Os& os = machine.os();
  machine.RunProcesses({[&os](Pid pid) {
    const int fd = os.Open(pid, "/d0/warm");
    for (std::uint64_t off = 0; off < 20 * kMb; off += 128 * 1024) {
      (void)os.Pread(pid, fd, {}, 128 * 1024, off);
    }
    for (std::uint64_t off = 0; off < 2 * kMb; off += 64 * 1024) {
      (void)os.Pwrite(pid, fd, 64 * 1024, off);
    }
    (void)os.Fsync(pid, fd);
    (void)os.Close(pid, fd);
    const VmAreaId area = os.VmAlloc(pid, 8 * kMb);
    for (std::uint64_t p = 0; p < 8 * kMb / 4096; ++p) {
      os.VmTouch(pid, area, p, /*write=*/true);
    }
    os.VmFree(pid, area);
    os.Sleep(pid, Millis(250.0));
  }});
}

struct Fingerprint {
  Nanos now = 0;
  OsStats stats;
  ChaosStats chaos;
  std::uint64_t trace_digest = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint FingerprintOf(const Machine& machine) {
  return Fingerprint{machine.Now(), machine.os().stats(), machine.os().chaos_stats(),
                     TraceDigest(machine.os().trace())};
}

// Warm + arm chaos + run a little so the snapshot lands mid-chaos with
// events in flight; returns the machine ready to snapshot.
std::unique_ptr<Machine> WarmChaoticMachine(PlatformProfile profile) {
  auto machine = std::make_unique<Machine>(profile);
  Warm(*machine);
  machine->os().ArmChaos(FaultPlan::Interference(kChaosIntensity));
  Os& os = machine->os();
  const Pid pid = os.default_pid();
  const int fd = os.Open(pid, "/d0/warm");
  for (std::uint64_t off = 0; off < 6 * kMb; off += 256 * 1024) {
    (void)os.Pread(pid, fd, {}, 256 * 1024, off);
  }
  (void)os.Close(pid, fd);
  return machine;
}

TEST(SnapshotTest, ForkReplaysBitIdenticallyOnAllProfilesWithChaos) {
  const PlatformProfile profiles[] = {PlatformProfile::Linux22(),
                                      PlatformProfile::NetBsd15(),
                                      PlatformProfile::Solaris7()};
  for (const PlatformProfile& profile : profiles) {
    SCOPED_TRACE(profile.name);
    std::unique_ptr<Machine> original = WarmChaoticMachine(profile);
    const MachineImage image = original->Snapshot();
    const std::unique_ptr<Machine> fork = Machine::Fork(image);

    ASSERT_EQ(fork->Now(), original->Now());
    ASSERT_TRUE(fork->os().stats() == original->os().stats());
    ASSERT_EQ(fork->os().config().chaos.enabled,
              original->os().config().chaos.enabled);

    original->os().trace().Enable();
    fork->os().trace().Enable();
    RunContinuation(*original);
    RunContinuation(*fork);
    EXPECT_EQ(FingerprintOf(*fork), FingerprintOf(*original));
    EXPECT_NE(TraceDigest(original->os().trace()), 0u);
  }
}

TEST(SnapshotTest, ForkAtMidRunCarriesPendingEvents) {
  std::unique_ptr<Machine> original = WarmChaoticMachine(PlatformProfile::Linux22());
  const MachineImage image = original->Snapshot();

  // The snapshot instant is mid-flight: chaos ticks are always pending
  // once armed, and the warm phase left write-behind and net deliveries
  // undone. Every captured event must carry a rebuildable descriptor.
  ASSERT_FALSE(image.os.events.empty());
  for (const EventQueue::RawEvent& ev : image.os.events) {
    EXPECT_NE(ev.desc.kind, static_cast<std::uint32_t>(EventKind::kNone));
  }
  EXPECT_GT(image.os.ApproxBytes(), sizeof(Os::Image));

  const std::unique_ptr<Machine> fork = Machine::Fork(image);
  // Receiving the in-flight messages must behave identically on both:
  // the deliveries live in the image as kNetDeliver descriptors.
  auto drain_net = [](Machine& m) {
    Os& os = m.os();
    const Pid pid = os.default_pid();
    NetMessage msg;
    std::uint64_t got = 0;
    while (os.NetRecv(pid, /*endpoint=*/1, Millis(50.0), &msg) > 0) {
      got = got * 131 + msg.tag;
    }
    return got;
  };
  const std::uint64_t original_msgs = drain_net(*original);
  const std::uint64_t fork_msgs = drain_net(*fork);
  EXPECT_EQ(fork_msgs, original_msgs);
  EXPECT_NE(fork_msgs, 0u);
  EXPECT_EQ(fork->Now(), original->Now());
}

TEST(SnapshotTest, DoubleForkReplaysDivergenceFree) {
  std::unique_ptr<Machine> original = WarmChaoticMachine(PlatformProfile::Linux22());
  const MachineImage image = original->Snapshot();
  const std::unique_ptr<Machine> fork_a = Machine::Fork(image);
  const std::unique_ptr<Machine> fork_b = Machine::Fork(image);
  RunContinuation(*fork_a);
  RunContinuation(*fork_b);
  RunContinuation(*original);
  EXPECT_EQ(FingerprintOf(*fork_a), FingerprintOf(*fork_b));
  EXPECT_EQ(FingerprintOf(*fork_a), FingerprintOf(*original));
}

TEST(SnapshotTest, SnapshotOfForkRoundTrips) {
  std::unique_ptr<Machine> original = WarmChaoticMachine(PlatformProfile::Linux22());
  const MachineImage image = original->Snapshot();
  const std::unique_ptr<Machine> fork = Machine::Fork(image);
  RunContinuation(*fork);

  // Snapshot the fork mid-sequence and fork again: the grandchild must
  // replay the fork's own future bit-identically.
  const MachineImage second = fork->Snapshot();
  EXPECT_EQ(second.id, image.id);
  const std::unique_ptr<Machine> grandchild = Machine::Fork(second);
  ASSERT_EQ(grandchild->Now(), fork->Now());
  RunContinuation(*fork);
  RunContinuation(*grandchild);
  EXPECT_EQ(FingerprintOf(*grandchild), FingerprintOf(*fork));
}

TEST(SnapshotTest, ResumedFromDiskReplaysBitIdenticallyOnAllProfilesWithChaos) {
  // The durable variant of the fork pin: Snapshot → SaveMachineImage →
  // LoadMachineImage → Fork must replay exactly like the in-memory
  // original, on every platform profile, with chaos armed at the
  // checkpoint instant.
  const PlatformProfile profiles[] = {PlatformProfile::Linux22(),
                                      PlatformProfile::NetBsd15(),
                                      PlatformProfile::Solaris7()};
  int index = 0;
  for (const PlatformProfile& profile : profiles) {
    SCOPED_TRACE(profile.name);
    std::unique_ptr<Machine> original = WarmChaoticMachine(profile);
    const MachineImage image = original->Snapshot();

    const std::string path =
        ::testing::TempDir() + "/resume_" + std::to_string(index++) + ".gsim";
    std::string error;
    ASSERT_TRUE(SaveMachineImage(image, path, &error)) << error;
    MachineImage loaded;
    ASSERT_TRUE(LoadMachineImage(path, &loaded, &error)) << error;

    const std::unique_ptr<Machine> resumed = Machine::Fork(loaded);
    ASSERT_EQ(resumed->Now(), original->Now());
    ASSERT_TRUE(resumed->os().stats() == original->os().stats());

    original->os().trace().Enable();
    resumed->os().trace().Enable();
    RunContinuation(*original);
    RunContinuation(*resumed);
    EXPECT_EQ(FingerprintOf(*resumed), FingerprintOf(*original));
    EXPECT_NE(TraceDigest(resumed->os().trace()), 0u);
  }
}

TEST(SnapshotTest, ForkPreservesIdentityAndSeedDerivation) {
  Machine original(PlatformProfile::Linux22(), MachineConfig{}, /*machine_id=*/7,
                   /*seed=*/0xFEEDFACE);
  Warm(original);
  const MachineImage image = original.Snapshot();
  const std::unique_ptr<Machine> fork = Machine::Fork(image);
  EXPECT_EQ(fork->id(), original.id());
  EXPECT_EQ(fork->root_seed(), original.root_seed());
  // Caller-visible derived streams (workload RNG seeds) must match too.
  EXPECT_EQ(fork->DeriveSeed(42), original.DeriveSeed(42));
}

}  // namespace
}  // namespace graysim
