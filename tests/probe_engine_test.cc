// Equivalence of the batched observation path with the scalar loop.
//
// The batch calls exist to cross the system boundary once per batch, not to
// change what is observed: for the same request sequence they must return
// the same results and leave the machine in the same end state (file-cache
// residency, VM frames) as a scalar loop, on every platform profile.

#include "src/gray/probe/probe_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/gray/interpose/interposer.h"
#include "src/gray/sim_sys.h"
#include "src/workloads/filegen.h"

namespace gray {
namespace {

using graysim::Os;
using graysim::Pid;
using graysim::PlatformProfile;

constexpr std::uint64_t kMb = 1024 * 1024;

PlatformProfile ProfileByName(const std::string& name) {
  if (name == "NetBsd15") {
    return PlatformProfile::NetBsd15();
  }
  if (name == "Solaris7") {
    return PlatformProfile::Solaris7();
  }
  return PlatformProfile::Linux22();
}

// Two identically-configured machines: `scalar` executes loops of scalar
// calls, `batched` the equivalent batch calls. Identical op sequences must
// produce identical end states (the simulation is deterministic).
struct TwinFixture {
  explicit TwinFixture(const std::string& profile)
      : scalar(ProfileByName(profile)),
        batched(ProfileByName(profile)),
        sys_scalar(&scalar, scalar.default_pid()),
        sys_batched(&batched, batched.default_pid()) {}

  Os scalar;
  Os batched;
  SimSys sys_scalar;
  SimSys sys_batched;
};

class BatchEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchEquivalenceTest, PreadBatchMatchesScalarLoop) {
  TwinFixture f(GetParam());
  for (Os* os : {&f.scalar, &f.batched}) {
    ASSERT_TRUE(graywork::MakeFile(*os, os->default_pid(), "/d0/file", 8 * kMb));
    os->FlushFileCache();
  }
  const int fd_s = f.sys_scalar.Open("/d0/file");
  const int fd_b = f.sys_batched.Open("/d0/file");
  ASSERT_GE(fd_s, 0);
  ASSERT_EQ(fd_s, fd_b);

  // Probe every second page (misses), then the first 16 again (hits).
  const std::uint32_t ps = f.sys_scalar.PageSize();
  std::vector<PreadOp> ops;
  for (std::uint64_t p = 0; p < 8 * kMb / ps; p += 2) {
    ops.push_back(PreadOp{fd_b, 1, p * ps});
  }
  for (std::uint64_t p = 0; p < 32; p += 2) {
    ops.push_back(PreadOp{fd_b, 1, p * ps});
  }

  std::vector<std::int64_t> scalar_rcs;
  for (const PreadOp& op : ops) {
    scalar_rcs.push_back(f.sys_scalar.Pread(fd_s, {}, op.len, op.offset));
  }
  std::vector<BatchResult> out(ops.size());
  f.sys_batched.PreadBatch(ops, out);

  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(out[i].rc, scalar_rcs[i]) << "op " << i;
  }
  // Identical cache end state: same resident count, same per-page residency.
  EXPECT_EQ(f.scalar.FileCachePages(), f.batched.FileCachePages());
  for (std::uint64_t p = 0; p < 8 * kMb / ps; ++p) {
    ASSERT_EQ(f.scalar.PageResidentPath("/d0/file", p),
              f.batched.PageResidentPath("/d0/file", p))
        << "page " << p;
  }
  // The batch's reason to exist: the whole sequence entered the kernel once.
  EXPECT_EQ(f.batched.stats().batched_ops, ops.size());
  EXPECT_LT(f.batched.stats().syscalls, f.scalar.stats().syscalls);
}

TEST_P(BatchEquivalenceTest, MemTouchBatchMatchesScalarLoop) {
  TwinFixture f(GetParam());
  const std::uint64_t pages = 128;
  const MemHandle h_s = f.sys_scalar.MemAlloc(pages * f.sys_scalar.PageSize());
  const MemHandle h_b = f.sys_batched.MemAlloc(pages * f.sys_batched.PageSize());
  ASSERT_NE(h_s, kInvalidMem);
  ASSERT_EQ(h_s, h_b);

  std::vector<MemTouchOp> ops;
  for (std::uint64_t i = 0; i < pages; ++i) {
    ops.push_back(MemTouchOp{h_b, i, /*write=*/true});
  }
  for (const MemTouchOp& op : ops) {
    f.sys_scalar.MemTouch(h_s, op.page_index, op.write);
  }
  std::vector<BatchResult> out(ops.size());
  f.sys_batched.MemTouchBatch(ops, out);

  for (const BatchResult& r : out) {
    EXPECT_EQ(r.rc, 0);
  }
  EXPECT_EQ(f.scalar.VmResidentPages(f.scalar.default_pid()),
            f.batched.VmResidentPages(f.batched.default_pid()));
}

TEST_P(BatchEquivalenceTest, StatBatchMatchesScalarLoop) {
  TwinFixture f(GetParam());
  std::vector<std::string> paths;
  for (Os* os : {&f.scalar, &f.batched}) {
    paths = graywork::MakeFileSet(*os, os->default_pid(), "/d0/set", 6, 1 * kMb);
  }
  paths.push_back("/d0/absent");  // failures must match too

  std::vector<FileInfo> scalar_infos(paths.size());
  std::vector<std::int64_t> scalar_rcs;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    scalar_rcs.push_back(f.sys_scalar.Stat(paths[i], &scalar_infos[i]));
  }
  std::vector<FileInfo> infos(paths.size());
  std::vector<BatchResult> out(paths.size());
  f.sys_batched.StatBatch(paths, infos, out);

  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(out[i].rc, scalar_rcs[i]) << paths[i];
    if (out[i].rc == 0) {
      EXPECT_EQ(infos[i].inum, scalar_infos[i].inum) << paths[i];
      EXPECT_EQ(infos[i].size, scalar_infos[i].size) << paths[i];
      EXPECT_EQ(infos[i].mtime, scalar_infos[i].mtime) << paths[i];
      EXPECT_EQ(infos[i].is_dir, scalar_infos[i].is_dir) << paths[i];
    }
  }
}

TEST_P(BatchEquivalenceTest, EngineStrategiesAgreeAndAccount) {
  TwinFixture f(GetParam());
  for (Os* os : {&f.scalar, &f.batched}) {
    ASSERT_TRUE(graywork::MakeFile(*os, os->default_pid(), "/d0/file", 4 * kMb));
    os->FlushFileCache();
  }
  const int fd_s = f.sys_scalar.Open("/d0/file");
  const int fd_b = f.sys_batched.Open("/d0/file");
  ASSERT_EQ(fd_s, fd_b);

  ProbeEngine scalar_engine(&f.sys_scalar,
                            ProbeEngineOptions{ProbeStrategy::kScalar});
  // A small max_batch so the run exercises sub-batch chunking.
  ProbeEngine batched_engine(&f.sys_batched,
                             ProbeEngineOptions{ProbeStrategy::kBatched, 7});

  const std::uint32_t ps = f.sys_scalar.PageSize();
  std::vector<TimedPread> reqs;
  for (std::uint64_t p = 0; p < 100; ++p) {
    reqs.push_back(TimedPread{fd_b, 1, p * 3 * ps});
  }
  const auto scalar_samples = scalar_engine.RunPreads(reqs);
  const auto batched_samples = batched_engine.RunPreads(reqs);

  ASSERT_EQ(scalar_samples.size(), batched_samples.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(scalar_samples[i].rc, batched_samples[i].rc) << "req " << i;
  }
  EXPECT_EQ(f.scalar.FileCachePages(), f.batched.FileCachePages());

  EXPECT_EQ(scalar_engine.report().probes, reqs.size());
  EXPECT_EQ(batched_engine.report().probes, reqs.size());
  EXPECT_EQ(scalar_engine.report().batches, 0u);
  EXPECT_EQ(batched_engine.report().batches, (reqs.size() + 6) / 7);
  EXPECT_EQ(scalar_engine.report().pread_probes, reqs.size());
  EXPECT_EQ(scalar_engine.report().bytes_touched, reqs.size());  // 1-byte probes
  EXPECT_EQ(scalar_engine.latency_stats().count(), reqs.size());
  EXPECT_GT(scalar_engine.report().probe_time, 0u);
}

INSTANTIATE_TEST_SUITE_P(Platforms, BatchEquivalenceTest,
                         ::testing::Values("Linux22", "NetBsd15", "Solaris7"));

// A batch must not be a blind spot for the interposition agent: every
// constituent read feeds the passive cache model (paper §4.1.1).
TEST(InterposerBatchTest, BatchedReadsFeedTheCacheModel) {
  Os os(PlatformProfile::Linux22());
  SimSys sys(&os, os.default_pid());
  ASSERT_TRUE(graywork::MakeFile(os, os.default_pid(), "/d0/file", 4 * kMb));
  os.FlushFileCache();

  CacheModel model(64 * kMb, sys.PageSize());
  Interposer interposed(&sys, &model);
  const int fd = interposed.Open("/d0/file");
  ASSERT_GE(fd, 0);

  const std::uint32_t ps = sys.PageSize();
  std::vector<PreadOp> ops;
  for (std::uint64_t p = 0; p < 10; ++p) {
    ops.push_back(PreadOp{fd, 1, p * ps});
  }
  std::vector<BatchResult> out(ops.size());
  interposed.PreadBatch(ops, out);

  EXPECT_EQ(interposed.observed_calls(), ops.size());
  for (std::uint64_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(model.PageResident("/d0/file", p)) << "page " << p;
  }
}

// The engine is strategy-agnostic even on top of a decorator: batches routed
// through the Interposer keep the model in sync with the real cache.
TEST(InterposerBatchTest, EngineRunsThroughInterposer) {
  Os os(PlatformProfile::Linux22());
  SimSys sys(&os, os.default_pid());
  ASSERT_TRUE(graywork::MakeFile(os, os.default_pid(), "/d0/file", 4 * kMb));
  os.FlushFileCache();

  CacheModel model(64 * kMb, sys.PageSize());
  Interposer interposed(&sys, &model);
  ProbeEngine engine(&interposed);
  const int fd = interposed.Open("/d0/file");
  ASSERT_GE(fd, 0);

  std::vector<TimedPread> reqs;
  for (std::uint64_t p = 0; p < 16; ++p) {
    reqs.push_back(TimedPread{fd, 1, p * sys.PageSize()});
  }
  const auto samples = engine.RunPreads(reqs);
  ASSERT_EQ(samples.size(), reqs.size());
  EXPECT_EQ(interposed.observed_calls(), reqs.size());
  EXPECT_EQ(engine.report().probes, reqs.size());
}

// --- failure-aware probing (chaos hardening) ---
//
// These pin the contract every hardened ICL leans on: failed probes never
// reach the latency statistics, transient failures are retried with backoff,
// and a mostly-failed run raises the per-run degraded signal.

class FailureAwareProbeTest : public ::testing::Test {
 protected:
  FailureAwareProbeTest()
      : os_(graysim::PlatformProfile::Linux22()), sys_(&os_, os_.default_pid()) {
    EXPECT_TRUE(graywork::MakeFile(os_, os_.default_pid(), "/d0/file", 4 * kMb));
    fd_ = sys_.Open("/d0/file");
    EXPECT_GE(fd_, 0);
  }

  void ArmAllReadsFail() {
    graysim::FaultPlan plan;
    plan.enabled = true;
    plan.read_eio_prob = 1.0;
    plan.eio_latency = graysim::Millis(25.0);
    os_.ArmChaos(plan);
  }

  std::vector<TimedPread> PageProbes(std::size_t n) {
    std::vector<TimedPread> reqs;
    for (std::size_t p = 0; p < n; ++p) {
      reqs.push_back(TimedPread{fd_, 1, p * sys_.PageSize()});
    }
    return reqs;
  }

  Os os_;
  SimSys sys_;
  int fd_ = -1;
};

TEST_F(FailureAwareProbeTest, FailedProbesAreExcludedFromLatencyStats) {
  ArmAllReadsFail();
  ProbeEngineOptions options;
  options.max_retries = 0;  // all failures are final
  ProbeEngine engine(&sys_, options);
  const auto samples = engine.RunPreads(PageProbes(16));
  for (const ProbeSample& s : samples) {
    EXPECT_LT(s.rc, 0);
  }
  // The error path is SLOW by design (25 ms each) — folding it into the
  // stats would bury every real hit/miss signal. Nothing may land there.
  EXPECT_EQ(engine.latency_stats().count(), 0u);
  EXPECT_EQ(engine.report().failed_probes, 16u);
  EXPECT_EQ(engine.report().probes, 16u);
  EXPECT_GT(engine.report().probe_time, 0u) << "failures still cost probe time";
}

TEST_F(FailureAwareProbeTest, TransientFailuresAreRetriedWithBackoff) {
  graysim::FaultPlan plan;
  plan.enabled = true;
  plan.read_eio_prob = 0.5;  // every probe recovers within a few attempts
  plan.eio_latency = graysim::Millis(1.0);
  os_.ArmChaos(plan);
  ProbeEngine engine(&sys_);  // default: max_retries = 2
  const auto samples = engine.RunPreads(PageProbes(64));
  EXPECT_GT(engine.report().retried_probes, 0u);
  std::size_t failed = 0;
  for (const ProbeSample& s : samples) {
    failed += s.rc < 0 ? 1 : 0;
  }
  // p(fail) after retries is 0.5^3 per probe; the run overwhelmingly
  // recovers, and the stats see exactly the successes.
  EXPECT_LT(failed, 16u);
  EXPECT_EQ(engine.report().failed_probes, failed);
  EXPECT_EQ(engine.latency_stats().count(), samples.size() - failed);
}

TEST_F(FailureAwareProbeTest, RetryDisabledReproducesLegacySingleShot) {
  ArmAllReadsFail();
  ProbeEngineOptions options;
  options.max_retries = 0;
  ProbeEngine engine(&sys_, options);
  (void)engine.RunPreads(PageProbes(8));
  EXPECT_EQ(engine.report().retried_probes, 0u);
  EXPECT_EQ(engine.report().probes, 8u);
}

TEST_F(FailureAwareProbeTest, DegradedSignalRaisesAndClears) {
  ArmAllReadsFail();
  ProbeEngineOptions options;
  options.max_retries = 0;
  ProbeEngine engine(&sys_, options);
  (void)engine.RunPreads(PageProbes(8));
  EXPECT_TRUE(engine.last_run_degraded());
  os_.DisarmChaos();
  (void)engine.RunPreads(PageProbes(8));
  EXPECT_FALSE(engine.last_run_degraded());
}

TEST_F(FailureAwareProbeTest, SimSysClassifiesOnlyIoAsTransient) {
  EXPECT_TRUE(sys_.IsTransientError(
      -static_cast<std::int64_t>(graysim::FsErr::kIo)));
  EXPECT_FALSE(sys_.IsTransientError(
      -static_cast<std::int64_t>(graysim::FsErr::kNotFound)));
  EXPECT_FALSE(sys_.IsTransientError(0));
  // A definitive error must never be retried: stats on absent paths fail
  // once, with zero retry attempts burned.
  ProbeEngine engine(&sys_);
  std::vector<TimedStat> reqs(3);
  for (auto& r : reqs) {
    r.path = "/d0/definitely-absent";
  }
  std::vector<FileInfo> infos;
  (void)engine.RunStats(reqs, &infos);
  EXPECT_EQ(engine.report().retried_probes, 0u);
  EXPECT_EQ(engine.report().failed_probes, 3u);
}

}  // namespace
}  // namespace gray
