// Functional tests of the POSIX SysApi binding against the real host
// filesystem (a temp directory). NO timing assertions: CI machines make
// them meaningless — the paper's microbenchmarks "likely require a
// dedicated system". What matters here is that the binding is faithful
// enough that the gray library's logic runs unchanged on a real OS.

#include "src/gray/posix_sys.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/gray/fccd/fccd.h"
#include "src/gray/fldc/fldc.h"

namespace gray {
namespace {

class PosixSysTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("gb_posix_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_EQ(sys_.Mkdir(dir_), 0);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  PosixSys sys_;
  std::string dir_;
};

TEST_F(PosixSysTest, CreateWriteStatReadRoundTrip) {
  const int fd = sys_.Creat(Path("f"));
  ASSERT_GE(fd, 0);
  EXPECT_EQ(sys_.Pwrite(fd, 10000, 0), 10000);
  ASSERT_EQ(sys_.Fsync(fd), 0);
  ASSERT_EQ(sys_.Close(fd), 0);

  FileInfo info;
  ASSERT_EQ(sys_.Stat(Path("f"), &info), 0);
  EXPECT_EQ(info.size, 10000u);
  EXPECT_FALSE(info.is_dir);
  EXPECT_GT(info.inum, 0u);

  const int rfd = sys_.Open(Path("f"));
  ASSERT_GE(rfd, 0);
  std::vector<std::uint8_t> buf(64, 0xFF);
  EXPECT_EQ(sys_.Pread(rfd, buf, 64, 0), 64);
  EXPECT_EQ(buf[0], 0) << "Pwrite writes zeros";
  // Timing-only read (empty buffer) still reports bytes crossed.
  EXPECT_EQ(sys_.Pread(rfd, {}, 10000, 0), 10000);
  EXPECT_EQ(sys_.Pread(rfd, {}, 500, 9900), 100) << "clamped at EOF";
  ASSERT_EQ(sys_.Close(rfd), 0);
}

TEST_F(PosixSysTest, OpenMissingFails) {
  EXPECT_LT(sys_.Open(Path("missing")), 0);
  FileInfo info;
  EXPECT_LT(sys_.Stat(Path("missing"), &info), 0);
}

TEST_F(PosixSysTest, ReadDirListsCreatedFiles) {
  for (const char* name : {"a", "b", "c"}) {
    const int fd = sys_.Creat(Path(name));
    ASSERT_GE(fd, 0);
    ASSERT_EQ(sys_.Close(fd), 0);
  }
  ASSERT_EQ(sys_.Mkdir(Path("sub")), 0);
  std::vector<DirEntry> entries;
  ASSERT_EQ(sys_.ReadDir(dir_, &entries), 0);
  EXPECT_EQ(entries.size(), 4u);
  const auto sub = std::find_if(entries.begin(), entries.end(),
                                [](const DirEntry& e) { return e.name == "sub"; });
  ASSERT_NE(sub, entries.end());
  EXPECT_TRUE(sub->is_dir);
}

TEST_F(PosixSysTest, RenameUnlinkRmdir) {
  const int fd = sys_.Creat(Path("x"));
  ASSERT_GE(fd, 0);
  ASSERT_EQ(sys_.Close(fd), 0);
  ASSERT_EQ(sys_.Rename(Path("x"), Path("y")), 0);
  EXPECT_LT(sys_.Open(Path("x")), 0);
  ASSERT_EQ(sys_.Unlink(Path("y")), 0);
  ASSERT_EQ(sys_.Mkdir(Path("d")), 0);
  ASSERT_EQ(sys_.Rmdir(Path("d")), 0);
}

TEST_F(PosixSysTest, UtimesRoundTripsMtime) {
  const int fd = sys_.Creat(Path("t"));
  ASSERT_GE(fd, 0);
  ASSERT_EQ(sys_.Close(fd), 0);
  const Nanos mtime = 1'500'000'000ULL * 1'000'000'000ULL;  // 2017-07-14
  ASSERT_EQ(sys_.Utimes(Path("t"), mtime, mtime), 0);
  FileInfo info;
  ASSERT_EQ(sys_.Stat(Path("t"), &info), 0);
  EXPECT_EQ(info.mtime, mtime);
}

TEST_F(PosixSysTest, MemAllocTouchFree) {
  const MemHandle h = sys_.MemAlloc(16 * sys_.PageSize());
  ASSERT_NE(h, kInvalidMem);
  for (std::uint64_t p = 0; p < 16; ++p) {
    sys_.MemTouch(h, p, /*write=*/true);
    sys_.MemTouch(h, p, /*write=*/false);
  }
  sys_.MemFree(h);
  EXPECT_EQ(sys_.MemAlloc(0), kInvalidMem);
}

TEST_F(PosixSysTest, MincoreReportsResidencyBitmap) {
  const int fd = sys_.Creat(Path("m"));
  ASSERT_GE(fd, 0);
  const std::uint64_t bytes = 8ULL * sys_.PageSize();
  ASSERT_EQ(sys_.Pwrite(fd, bytes, 0), static_cast<std::int64_t>(bytes));
  ASSERT_EQ(sys_.Fsync(fd), 0);
  std::vector<bool> resident;
  ASSERT_EQ(sys_.Mincore(fd, 0, bytes, &resident), 0);
  EXPECT_EQ(resident.size(), 8u);
  // Just-written pages are resident on any sane host (no assertion on
  // individual pages beyond the size — CI kernels may reclaim).
  ASSERT_EQ(sys_.Close(fd), 0);
}

TEST_F(PosixSysTest, ClockIsMonotonic) {
  const Nanos a = sys_.Now();
  sys_.SleepNs(1'000'000);  // 1 ms
  const Nanos b = sys_.Now();
  EXPECT_GT(b, a);
}

// The actual point: the gray-box library runs unchanged on the real OS.
TEST_F(PosixSysTest, FldcOrdersRealFilesByInode) {
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    const std::string path = Path("file" + std::to_string(i));
    const int fd = sys_.Creat(path);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(sys_.Pwrite(fd, 4096, 0), 4096);
    ASSERT_EQ(sys_.Close(fd), 0);
    paths.push_back(path);
  }
  Fldc fldc(&sys_);
  const auto ordered = fldc.OrderByInode(paths);
  ASSERT_EQ(ordered.size(), paths.size());
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    EXPECT_LE(ordered[i - 1].inum, ordered[i].inum) << "must be sorted by inum";
    EXPECT_TRUE(ordered[i].stat_ok);
  }
}

TEST_F(PosixSysTest, FccdPlansARealFile) {
  const std::string path = Path("big");
  const int fd = sys_.Creat(path);
  ASSERT_GE(fd, 0);
  const std::uint64_t bytes = 4ULL * 1024 * 1024;
  ASSERT_EQ(sys_.Pwrite(fd, bytes, 0), static_cast<std::int64_t>(bytes));
  ASSERT_EQ(sys_.Close(fd), 0);

  FccdOptions options;
  options.access_unit = 1024 * 1024;
  options.prediction_unit = 512 * 1024;
  Fccd fccd(&sys_, options);
  const auto plan = fccd.PlanFile(path);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->TotalBytes(), bytes);
  EXPECT_EQ(plan->units.size(), 4u);
  EXPECT_GT(fccd.probes_issued(), 0u);

  // And the mincore path works against the real kernel too.
  FccdOptions mc = options;
  mc.try_mincore = true;
  Fccd fccd_mc(&sys_, mc);
  const auto plan_mc = fccd_mc.PlanFile(path);
  ASSERT_TRUE(plan_mc.has_value());
  EXPECT_TRUE(fccd_mc.last_plan_used_mincore());
  EXPECT_EQ(fccd_mc.probes_issued(), 0u);
}

}  // namespace
}  // namespace gray
