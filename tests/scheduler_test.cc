// Deterministic fiber scheduler: fairness, sleeping, determinism, and
// scaling across process counts (TEST_P sweep). Sleep/wake goes through the
// discrete-event queue, so every fixture pairs the scheduler with one.

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "src/os/scheduler.h"
#include "src/sim/event_queue.h"

namespace graysim {
namespace {

constexpr std::uint64_t kTieSeed = 0x5eed;

TEST(SchedulerTest, SingleProcessRunsToCompletion) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  bool ran = false;
  sched.Run({[&](int) {
    sched.Charge(0, Millis(25.0));
    ran = true;
  }});
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.now(), Millis(25.0));
}

TEST(SchedulerTest, EmptyRunIsANoOp) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  sched.Run({});
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_FALSE(sched.active());
}

TEST(SchedulerTest, ChargesAccumulateAcrossProcesses) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  sched.Run({
      [&](int p) { sched.Charge(p, Millis(30.0)); },
      [&](int p) { sched.Charge(p, Millis(20.0)); },
  });
  EXPECT_EQ(clock.now(), Millis(50.0));
}

TEST(SchedulerTest, RoundRobinInterleavesFairly) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  // Each process records the time at which it performs each step; with
  // round-robin slices, neither can run two full slices back to back while
  // the other is runnable.
  std::vector<Nanos> finish(2, 0);
  sched.Run({
      [&](int p) {
        for (int i = 0; i < 10; ++i) {
          sched.Charge(p, Millis(10.0));
        }
        finish[0] = clock.now();
      },
      [&](int p) {
        for (int i = 0; i < 10; ++i) {
          sched.Charge(p, Millis(10.0));
        }
        finish[1] = clock.now();
      },
  });
  const Nanos gap = finish[1] > finish[0] ? finish[1] - finish[0] : finish[0] - finish[1];
  EXPECT_LE(gap, Millis(10.0)) << "both should finish within one slice of each other";
}

TEST(SchedulerTest, SleepWakesAtDeadline) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  Nanos woke_at = 0;
  sched.Run({[&](int p) {
    sched.Sleep(p, Seconds(3.0));
    woke_at = clock.now();
  }});
  EXPECT_GE(woke_at, Seconds(3.0));
}

TEST(SchedulerTest, SleeperYieldsToRunnableProcess) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  Nanos worker_done = 0;
  Nanos sleeper_done = 0;
  sched.Run({
      [&](int p) {
        sched.Sleep(p, Millis(500.0));
        sleeper_done = clock.now();
      },
      [&](int p) {
        sched.Charge(p, Millis(100.0));  // runs while the other sleeps
        worker_done = clock.now();
      },
  });
  EXPECT_LE(worker_done, Millis(120.0)) << "worker shouldn't wait for the sleeper";
  EXPECT_GE(sleeper_done, Millis(500.0));
}

TEST(SchedulerTest, AllSleepingAdvancesClock) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  sched.Run({
      [&](int p) { sched.Sleep(p, Millis(100.0)); },
      [&](int p) { sched.Sleep(p, Millis(250.0)); },
  });
  EXPECT_GE(clock.now(), Millis(250.0));
}

TEST(SchedulerTest, YieldRotatesWithoutCharging) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  std::vector<int> order;
  sched.Run({
      [&](int p) {
        order.push_back(0);
        sched.Yield(p);
        order.push_back(0);
      },
      [&](int p) {
        order.push_back(1);
        sched.Yield(p);
        order.push_back(1);
      },
  });
  EXPECT_EQ(clock.now(), 0u);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // yield handed the turn over
}

TEST(SchedulerTest, DispatchDrainsEventQueueWhileAllSleep) {
  SimClock clock;
  EventQueue events(kTieSeed);
  Scheduler sched(&clock, &events, Millis(10.0));
  // A "device completion" scheduled mid-run must fire before a process that
  // sleeps past it resumes (completions run in the earlier band).
  Nanos completion_at = 0;
  Nanos woke_at = 0;
  sched.Run({[&](int p) {
    events.ScheduleAt(clock.now() + Millis(5.0), EventQueue::Band::kCompletion,
                      [&] { completion_at = clock.now(); });
    sched.Sleep(p, Millis(5.0));
    woke_at = clock.now();
  }});
  EXPECT_EQ(completion_at, Millis(5.0));
  EXPECT_GE(woke_at, completion_at);
}

class SchedulerScaling : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerScaling, ManyProcessesAllFinishDeterministically) {
  const int n = GetParam();
  auto run = [n] {
    SimClock clock;
    EventQueue events(kTieSeed);
    Scheduler sched(&clock, &events, Millis(10.0));
    std::vector<std::function<void(int)>> bodies;
    std::vector<Nanos> finish(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      bodies.push_back([&sched, &clock, &finish, i](int p) {
        for (int k = 0; k < 5 + i; ++k) {
          sched.Charge(p, Millis(3.0 + i));
        }
        if (i % 3 == 0) {
          sched.Sleep(p, Millis(17.0));
        }
        finish[static_cast<std::size_t>(i)] = clock.now();
      });
    }
    sched.Run(bodies);
    return std::make_pair(clock.now(), finish);
  };
  const auto [t1, f1] = run();
  const auto [t2, f2] = run();
  EXPECT_EQ(t1, t2) << "scheduler must be deterministic";
  EXPECT_EQ(f1, f2);
  for (const Nanos t : f1) {
    EXPECT_GT(t, 0u) << "every process finished";
  }
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, SchedulerScaling, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace graysim
